package ares_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	ares "github.com/ares-storage/ares"
	"github.com/ares-storage/ares/internal/history"
)

func treasCfg(id ares.ConfigID, prefix string, n, k, delta int) ares.Config {
	c := ares.Config{ID: id, Algorithm: ares.TREAS, K: k, Delta: delta}
	for i := 1; i <= n; i++ {
		c.Servers = append(c.Servers, ares.ProcessID(fmt.Sprintf("%s-s%d", prefix, i)))
	}
	return c
}

func abdCfg(id ares.ConfigID, prefix string, n int) ares.Config {
	c := ares.Config{ID: id, Algorithm: ares.ABD}
	for i := 1; i <= n; i++ {
		c.Servers = append(c.Servers, ares.ProcessID(fmt.Sprintf("%s-s%d", prefix, i)))
	}
	return c
}

func TestQuickstartFlow(t *testing.T) {
	t.Parallel()
	net := ares.NewSimNetwork()
	cluster, err := ares.NewCluster(treasCfg("c0", "q", 5, 3, 4), net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ctx := context.Background()
	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(ctx, ares.Value("public api")); err != nil {
		t.Fatal(err)
	}
	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}
	v, err := ares.ReadValue(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "public api" {
		t.Fatalf("read %q", v)
	}
}

func TestTCPEndToEnd(t *testing.T) {
	t.Parallel()
	// Full multi-process-shaped deployment over real TCP loopback: 5 TREAS
	// servers plus 3 replacement servers, a reconfiguration mid-stream.
	c0 := treasCfg("c0", "tcp0", 5, 3, 4)
	c1 := abdCfg("c1", "tcp1", 3)

	book := ares.AddressBook{}
	var servers []*ares.Server
	defer func() {
		for _, s := range servers {
			if err := s.Close(); err != nil {
				t.Errorf("close %s: %v", s.ID(), err)
			}
		}
	}()

	allIDs := append(append([]ares.ProcessID{}, c0.Servers...), c1.Servers...)
	// Two-phase start: bind all listeners first so the address book is
	// complete before any server needs to dial a peer.
	for _, id := range allIDs {
		srv, err := ares.NewServer(id, "127.0.0.1:0", book)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		book[id] = srv.Addr()
	}
	for _, srv := range servers {
		if err := srv.Install(c0); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	wRPC := ares.NewTCPClient("w1", book)
	defer wRPC.Close()
	w, err := ares.NewRemoteClient("w1", c0, wRPC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(ctx, ares.Value("over tcp")); err != nil {
		t.Fatal(err)
	}

	gRPC := ares.NewTCPClient("g1", book)
	defer gRPC.Close()
	g, err := ares.NewRemoteReconfigurer("g1", c0, gRPC, ares.ReconOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Reconfig(ctx, c1); err != nil {
		t.Fatal(err)
	}

	rRPC := ares.NewTCPClient("r1", book)
	defer rRPC.Close()
	r, err := ares.NewRemoteClient("r1", c0, rRPC)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := r.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(pair.Value) != "over tcp" {
		t.Fatalf("read %q after TCP reconfiguration", pair.Value)
	}
}

// TestLinearizabilityUnderChurn is the end-to-end safety test: concurrent
// readers and writers, server crashes within the fault bound, and live
// reconfigurations — the recorded history must satisfy atomicity (A1–A3).
func TestLinearizabilityUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	t.Parallel()
	c0 := treasCfg("c0", "lin0", 5, 3, 8)
	c1 := treasCfg("c1", "lin1", 5, 3, 8)
	c2 := abdCfg("c2", "lin2", 3)
	net := ares.NewSimNetwork(ares.WithDelayRange(0, time.Millisecond), ares.WithSeed(11))
	cluster, err := ares.NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	for _, c := range []ares.Config{c1, c2} {
		for _, s := range c.Servers {
			cluster.AddHost(s)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	rec := history.NewRecorder()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers with unique values.
	const writers = 3
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := ares.ProcessID(fmt.Sprintf("w%d", i))
			client, err := cluster.NewClient(id)
			if err != nil {
				t.Error(err)
				return
			}
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				v := ares.Value(fmt.Sprintf("%s-%d", id, seq))
				done := rec.Start(history.Write, id)
				tag, err := client.Write(ctx, v)
				if err != nil {
					if ctx.Err() == nil {
						t.Errorf("%s write: %v", id, err)
					}
					return
				}
				done(tag, v)
			}
		}()
	}

	// Readers.
	const readers = 3
	for i := 0; i < readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := ares.ProcessID(fmt.Sprintf("r%d", i))
			client, err := cluster.NewClient(id)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				done := rec.Start(history.Read, id)
				pair, err := client.Read(ctx)
				if err != nil {
					if ctx.Err() == nil {
						t.Errorf("%s read: %v", id, err)
					}
					return
				}
				done(pair.Tag, pair.Value)
			}
		}()
	}

	// Churn: one crash within the fault bound, then two reconfigurations.
	g, err := cluster.NewReconfigurer("g1", ares.ReconOptions{DirectTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	net.Crash(c0.Servers[4]) // f = (5-3)/2 = 1 crash allowed
	time.Sleep(50 * time.Millisecond)
	if _, err := g.Reconfig(ctx, c1); err != nil {
		t.Fatalf("reconfig c1: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, err := g.Reconfig(ctx, c2); err != nil {
		t.Fatalf("reconfig c2: %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	ops := rec.Ops()
	if len(ops) < 20 {
		t.Fatalf("only %d operations recorded; churn starved the workload", len(ops))
	}
	if violations := history.Check(ops); len(violations) > 0 {
		for _, v := range violations[:minInt(len(violations), 5)] {
			t.Error(v)
		}
		t.Fatalf("%d atomicity violations in %d operations", len(violations), len(ops))
	}
	if rep := history.Verify(ops, history.CheckOptions{}); !rep.Linearizable {
		for _, v := range rep.Violations[:minInt(len(rep.Violations), 5)] {
			t.Error(v)
		}
		t.Fatalf("history of %d operations not linearizable by value (%s)", len(ops), rep.Method)
	}
	t.Logf("atomic history of %d operations across 3 configurations", len(ops))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
