package ares_test

import (
	"context"
	"fmt"
	"log"

	ares "github.com/ares-storage/ares"
)

// Example demonstrates the basic write/read cycle against an erasure-coded
// deployment.
func Example() {
	ctx := context.Background()
	c0 := ares.Config{
		ID:        "c0",
		Algorithm: ares.TREAS,
		Servers:   []ares.ProcessID{"ex-s1", "ex-s2", "ex-s3", "ex-s4", "ex-s5"},
		K:         3,
		Delta:     4,
	}
	cluster, err := ares.NewCluster(c0, ares.NewSimNetwork())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	w, err := cluster.NewClient("writer")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := w.Write(ctx, ares.Value("atomic")); err != nil {
		log.Fatal(err)
	}
	r, err := cluster.NewClient("reader")
	if err != nil {
		log.Fatal(err)
	}
	pair, err := r.Read(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (tag %v)\n", string(pair.Value), pair.Tag)
	// Output: atomic (tag (1,writer))
}

// ExampleReconfigurer_reconfig migrates a live register from replication to
// erasure coding without interrupting the service.
func ExampleReconfigurer_reconfig() {
	ctx := context.Background()
	c0 := ares.Config{
		ID:        "c0",
		Algorithm: ares.ABD,
		Servers:   []ares.ProcessID{"mg-a1", "mg-a2", "mg-a3"},
	}
	cluster, err := ares.NewCluster(c0, ares.NewSimNetwork())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	w, err := cluster.NewClient("writer")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := w.Write(ctx, ares.Value("survives migration")); err != nil {
		log.Fatal(err)
	}

	c1 := ares.Config{
		ID:        "c1",
		Algorithm: ares.TREAS,
		Servers:   []ares.ProcessID{"mg-t1", "mg-t2", "mg-t3", "mg-t4", "mg-t5"},
		K:         3,
		Delta:     4,
	}
	for _, s := range c1.Servers {
		cluster.AddHost(s)
	}
	g, err := cluster.NewReconfigurer("admin", ares.ReconOptions{})
	if err != nil {
		log.Fatal(err)
	}
	installed, err := g.Reconfig(ctx, c1)
	if err != nil {
		log.Fatal(err)
	}

	r, err := cluster.NewClient("reader")
	if err != nil {
		log.Fatal(err)
	}
	pair, err := r.Read(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed %s: %s\n", installed.ID, string(pair.Value))
	// Output: installed c1: survives migration
}

// ExampleObjectStore composes independent atomic registers into a key-value
// store.
func ExampleObjectStore() {
	ctx := context.Background()
	servers := []ares.ProcessID{"kv-s1", "kv-s2", "kv-s3", "kv-s4", "kv-s5"}
	cluster, err := ares.NewCluster(ares.Config{
		ID: "kv/root", Algorithm: ares.ABD, Servers: servers[:3],
	}, ares.NewSimNetwork(), servers...)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	store, err := ares.NewObjectStore(cluster, ares.Config{
		Algorithm: ares.TREAS,
		Servers:   servers,
		K:         3,
		Delta:     4,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Put(ctx, "greeting", ares.Value("hello")); err != nil {
		log.Fatal(err)
	}
	v, err := store.Get(ctx, "greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(v))
	// Output: hello
}
