package ares_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCmdBinariesEndToEnd builds ares-server and ares-cli and exercises a
// real multi-process deployment over TCP loopback: three server processes,
// a write, a read, a reconfiguration onto three more processes, and a final
// read through the new configuration.
func TestCmdBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs subprocesses")
	}
	t.Parallel()

	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		return out
	}
	serverBin := build("ares-server")
	cliBin := build("ares-cli")

	// Fixed loopback ports for a static address book.
	base := 17710
	ids := []string{"s1", "s2", "s3", "s4", "s5", "s6"}
	var bookParts []string
	addr := make(map[string]string, len(ids))
	for i, id := range ids {
		addr[id] = fmt.Sprintf("127.0.0.1:%d", base+i)
		bookParts = append(bookParts, id+"="+addr[id])
	}
	book := strings.Join(bookParts, ",")
	rootSpec := "id=c0;alg=treas;servers=s1,s2,s3;k=2;delta=4"
	nextSpec := "id=c1;alg=treas;servers=s4,s5,s6;k=2;delta=4"

	var servers []*exec.Cmd
	defer func() {
		for _, s := range servers {
			if s.Process != nil {
				_ = s.Process.Kill()
			}
			_ = s.Wait()
		}
	}()
	opsAddr := fmt.Sprintf("127.0.0.1:%d", base+100)
	for _, id := range ids {
		args := []string{"-id", id, "-listen", addr[id], "-peers", book}
		if id == "s1" || id == "s2" || id == "s3" {
			args = append(args, "-bootstrap", rootSpec)
		}
		if id == "s1" {
			args = append(args, "-ops-addr", opsAddr)
		}
		cmd := exec.Command(serverBin, args...)
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", id, err)
		}
		servers = append(servers, cmd)
	}
	// Wait for listeners.
	time.Sleep(300 * time.Millisecond)

	cli := func(clientID string, extra ...string) string {
		args := append([]string{"-id", clientID, "-peers", book, "-root", rootSpec, "-timeout", "20s"}, extra...)
		cmd := exec.Command(cliBin, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("ares-cli %v: %v\n%s", extra, err, out)
		}
		return string(out)
	}

	if out := cli("w1", "write", "multi process"); !strings.Contains(out, "ok tag=") {
		t.Fatalf("write output: %s", out)
	}
	if out := cli("r1", "read"); !strings.Contains(out, `value="multi process"`) {
		t.Fatalf("read output: %s", out)
	}
	if out := cli("g1", "-direct", "reconfig", nextSpec); !strings.Contains(out, "ok installed=c1") {
		t.Fatalf("reconfig output: %s", out)
	}
	// A fresh client rooted at c0 discovers c1 and reads through it.
	if out := cli("r2", "read"); !strings.Contains(out, `value="multi process"`) {
		t.Fatalf("read after reconfig: %s", out)
	}

	// The ops surface of s1, scraped through the CLI's metrics verb: the
	// traffic above must show up as nonzero wire counters on the server.
	out := cli("m1", "-ops", opsAddr, "metrics")
	if !strings.Contains(out, "ares_wire_encodes_total") || strings.Contains(out, "ares_wire_encodes_total 0\n") {
		t.Fatalf("ops metrics scrape missing live wire counters:\n%s", out)
	}
}

// TestCmdKillDashNineAndRecover is the end-to-end durability test: real
// ares-server processes with -data-dir are killed with SIGKILL — no shutdown
// hook, no flush — and restarted on the same directories. Every write the
// cluster acknowledged before the kill must be readable afterwards, recovered
// purely from WAL + snapshot state on disk.
func TestCmdKillDashNineAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs subprocesses")
	}
	t.Parallel()

	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		return out
	}
	serverBin := build("ares-server")
	cliBin := build("ares-cli")

	base := 17750
	ids := []string{"s1", "s2", "s3"}
	var bookParts []string
	addr := make(map[string]string, len(ids))
	for i, id := range ids {
		addr[id] = fmt.Sprintf("127.0.0.1:%d", base+i)
		bookParts = append(bookParts, id+"="+addr[id])
	}
	book := strings.Join(bookParts, ",")
	rootSpec := "id=c0;alg=treas;servers=s1,s2,s3;k=2;delta=4"
	dataRoot := t.TempDir()

	var servers []*exec.Cmd
	kill := func() {
		for _, s := range servers {
			if s.Process != nil {
				_ = s.Process.Signal(syscall.SIGKILL)
			}
			_ = s.Wait()
		}
		servers = nil
	}
	defer kill()
	spawn := func() {
		for _, id := range ids {
			cmd := exec.Command(serverBin,
				"-id", id, "-listen", addr[id], "-peers", book,
				"-bootstrap", rootSpec,
				"-data-dir", filepath.Join(dataRoot, id), "-fsync=false")
			if err := cmd.Start(); err != nil {
				t.Fatalf("starting %s: %v", id, err)
			}
			servers = append(servers, cmd)
		}
		time.Sleep(300 * time.Millisecond) // wait for recovery + listeners
	}

	cli := func(clientID string, extra ...string) string {
		args := append([]string{"-id", clientID, "-peers", book, "-root", rootSpec, "-timeout", "20s"}, extra...)
		cmd := exec.Command(cliBin, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("ares-cli %v: %v\n%s", extra, err, out)
		}
		return string(out)
	}

	spawn()
	// A few acknowledged writes; the last one is what a read must return.
	for i := 0; i < 5; i++ {
		if out := cli("w1", "write", fmt.Sprintf("durable-%d", i)); !strings.Contains(out, "ok tag=") {
			t.Fatalf("write %d output: %s", i, out)
		}
	}

	// SIGKILL every server — the processes get no chance to flush or say
	// goodbye — then restart them on the same data directories.
	kill()
	spawn()

	if out := cli("r1", "read"); !strings.Contains(out, `value="durable-4"`) {
		t.Fatalf("read after kill -9 + recovery: %s", out)
	}
	// The recovered cluster keeps taking writes.
	if out := cli("w2", "write", "post-recovery"); !strings.Contains(out, "ok tag=") {
		t.Fatalf("post-recovery write output: %s", out)
	}
	if out := cli("r2", "read"); !strings.Contains(out, `value="post-recovery"`) {
		t.Fatalf("post-recovery read output: %s", out)
	}
}
