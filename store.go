package ares

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ares-storage/ares/internal/adaptive"
	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/core"
	"github.com/ares-storage/ares/internal/keystate"
	"github.com/ares-storage/ares/internal/obs"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/treas"
)

// ObjectStore composes many independent ARES registers — one per object key
// — over a shared server pool. This is the paper's §1 composability claim
// made concrete: "atomic objects are composable, enabling the creation of
// large shared memory systems from individual atomic data objects".
//
// Each key owns its own configuration chain, so per-key operations are
// atomic, keys never contend, and each key can be reconfigured (even to a
// different algorithm or code) independently. Hosting is keyspace-native:
// servers run one service per algorithm family and derive each key's
// configuration from a template installed once at store construction, so a
// key's first operation triggers no installation round-trips and its
// steady-state server cost is a map entry, not a service stack.
//
// The store's own bookkeeping is sharded: keys hash onto one of N shards,
// each with its own lock and client map, so unrelated keys never serialize
// on store metadata either. Register clients draw their network identity
// from a fixed endpoint pool instead of claiming one per key, and MultiPut
// / MultiGet fan batched operations out across shards with bounded
// parallelism.
type ObjectStore struct {
	cluster  *Cluster
	name     string
	template Config
	pool     *core.EndpointPool

	shards   []storeShard
	batchPar int
	idleTTL  time.Duration
	now      func() time.Time

	// Adaptive reconfiguration (nil unless WithAdaptive was given): every
	// operation records into telemetry, and controller periodically drains
	// it, classifies keys, and drives ReconfigureKey through the cached
	// per-key reconfigurers.
	telemetry  *adaptive.Sampler
	controller *adaptive.Controller
	adaptGen   atomic.Int64
}

// storeShard holds the per-key state of one hash shard.
type storeShard struct {
	mu        sync.Mutex
	clients   map[string]*clientEntry
	recons    map[string]*reconEntry
	lastSweep time.Time
}

// clientEntry wraps a per-key register client with the bookkeeping idle
// eviction needs: when it was last handed out, and how many operations are
// in flight on it. Entries with in-flight operations are never evicted, so a
// replacement client (with a possibly different pooled endpoint identity)
// can never mint tags concurrently with its predecessor.
type clientEntry struct {
	client   *Client
	lastUse  time.Time
	inflight int
}

// reconEntry is the reconfigurer counterpart of clientEntry. Its derived
// process identity ("<store>-recon/<key>") is the consensus proposer
// identity, so the in-flight guard doubles as ballot-uniqueness protection:
// a key never has two live proposers under that identity.
type reconEntry struct {
	recon    *Reconfigurer
	lastUse  time.Time
	inflight int
}

const (
	defaultShardCount  = 16
	defaultPoolSize    = 16
	defaultBatchFanout = 16
)

// storeConfig collects option values before the store is assembled.
type storeConfig struct {
	name     string
	shards   int
	poolSize int
	batchPar int
	idleTTL  time.Duration
	adaptive *AdaptiveSpec
}

// AdaptiveSpec configures a store's self-driving reconfiguration loop: the
// telemetry-fed controller that moves each key between configuration
// profiles as its live workload shifts.
type AdaptiveSpec struct {
	// Interval is the controller's sampling window and tick cadence
	// (default 500ms).
	Interval time.Duration
	// Policy holds classification thresholds and damping (zero-value fields
	// take the documented adaptive.Policy defaults).
	Policy adaptive.Policy
	// Profiles maps each class the controller may emit to the target
	// configuration (Servers, Algorithm, K, Delta; the ID is derived per
	// key and move). A class without a profile is never moved to.
	Profiles map[adaptive.Class]Config
	// Recon is passed through to each reconfiguration.
	Recon ReconOptions
	// MoveTimeout bounds one reconfiguration (default 10s), so a
	// partitioned quorum cannot wedge the controller's tick loop.
	MoveTimeout time.Duration
	// OnMove, when set, observes every attempted move (benches and tests).
	OnMove func(key string, to adaptive.Class, err error)
	// Logf routes controller decisions to a logger (default silent).
	Logf func(format string, args ...any)
}

// WithAdaptive enables the self-driving reconfiguration loop. The store
// samples every operation's key, size, latency, rounds, and faults into a
// lock-free per-key sampler; a background controller drains it each Interval
// and — with hysteresis, per-key cooldown, and a per-tick move budget —
// reconfigures keys whose workload class changed (small hot → ABD n=3
// style profiles, large cold → wide TREAS, fault spikes → more redundancy).
// Call Close to stop the controller.
func WithAdaptive(spec AdaptiveSpec) StoreOption {
	return func(c *storeConfig) { c.adaptive = &spec }
}

// StoreOption configures an ObjectStore.
type StoreOption func(*storeConfig)

// WithStoreName sets the namespace the store's per-key configuration IDs
// are derived under (default "store"). Two ObjectStores over one cluster
// must use distinct names (or identical templates): each name owns one
// template, and registering a different template under an existing name
// fails at construction rather than silently aliasing keys onto the first
// store's parameters.
func WithStoreName(name string) StoreOption {
	return func(c *storeConfig) { c.name = name }
}

// WithShardCount sets the number of metadata shards (default 16). More
// shards reduce contention on first-touch instantiation when many distinct
// keys arrive concurrently.
func WithShardCount(n int) StoreOption {
	return func(c *storeConfig) { c.shards = n }
}

// WithEndpointPoolSize sets how many network endpoints the store's register
// clients share (default 16).
func WithEndpointPoolSize(n int) StoreOption {
	return func(c *storeConfig) { c.poolSize = n }
}

// WithBatchConcurrency bounds the parallelism of MultiPut and MultiGet
// (default 16): at most n per-key operations are in flight per batch call.
func WithBatchConcurrency(n int) StoreOption {
	return func(c *storeConfig) { c.batchPar = n }
}

// WithClientIdleTTL bounds the store's per-key client cache by idleness: a
// register client (and the key's reconfigurer) unused for at least ttl is
// eligible for eviction, performed opportunistically as other keys in the
// same shard are touched (amortized — at most one sweep per shard per ttl).
// The default (0) keeps clients forever, the right call for bounded
// keyspaces; a store that touches millions of keys should set a TTL so it
// does not pin millions of clients. Eviction is invisible to correctness: a
// re-touched key rebuilds its client, which rediscovers the key's current
// configuration chain through read-config.
func WithClientIdleTTL(ttl time.Duration) StoreOption {
	return func(c *storeConfig) { c.idleTTL = ttl }
}

// NewObjectStore builds a store whose per-key registers are instantiated
// from template: the template's Servers, Algorithm, and parameters apply to
// every key's initial configuration; the ID field is derived per key.
//
// The template is installed on the server pool exactly once, here. A fresh
// key's first operation performs zero installation round-trips: servers
// derive the key's configuration from the installed template and materialize
// its state on the first message that names it, so per-key cost is one map
// entry per server rather than an installed service stack.
func NewObjectStore(cluster *Cluster, template Config, opts ...StoreOption) (*ObjectStore, error) {
	sc := storeConfig{name: "store", shards: defaultShardCount, poolSize: defaultPoolSize, batchPar: defaultBatchFanout}
	for _, opt := range opts {
		opt(&sc)
	}
	if sc.name == "" {
		sc.name = "store"
	}
	if sc.shards < 1 {
		sc.shards = 1
	}
	if sc.batchPar < 1 {
		sc.batchPar = 1
	}
	tmpl := template
	tmpl.ID = ConfigID(sc.name + "/" + cfg.KeyPlaceholder + "/c0")
	if err := cfg.ValidateTemplate(tmpl); err != nil {
		return nil, fmt.Errorf("ares: object store template: %w", err)
	}
	// Installed once; a second store re-registering the same name with a
	// different template is rejected by the hosts (conflicting ID).
	if err := cluster.InstallConfiguration(tmpl); err != nil {
		return nil, fmt.Errorf("ares: installing object store template: %w", err)
	}
	s := &ObjectStore{
		cluster:  cluster,
		name:     sc.name,
		template: tmpl,
		pool:     cluster.NewEndpointPool(sc.name+"-client", sc.poolSize),
		shards:   make([]storeShard, sc.shards),
		batchPar: sc.batchPar,
		idleTTL:  sc.idleTTL,
		now:      time.Now,
	}
	for i := range s.shards {
		s.shards[i].clients = make(map[string]*clientEntry)
		s.shards[i].recons = make(map[string]*reconEntry)
	}
	// Per-store cached-client gauge, polled at scrape time. A re-created
	// store with the same name simply re-points the gauge (last wins).
	obs.Default.GaugeFunc(`ares_store_clients{store="`+sc.name+`"}`,
		"Cached per-key clients and reconfigurers, by store",
		func() int64 { return int64(s.ClientCount()) })
	if sc.adaptive != nil {
		if err := s.startAdaptive(*sc.adaptive); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// startAdaptive validates the spec and launches the controller loop.
func (s *ObjectStore) startAdaptive(spec AdaptiveSpec) error {
	if len(spec.Profiles) == 0 {
		return fmt.Errorf("ares: WithAdaptive requires at least one class profile")
	}
	for class, profile := range spec.Profiles {
		if len(profile.Servers) == 0 {
			return fmt.Errorf("ares: adaptive profile %s has no servers", class)
		}
	}
	moveTimeout := spec.MoveTimeout
	if moveTimeout <= 0 {
		moveTimeout = 10 * time.Second
	}
	s.telemetry = adaptive.NewSampler()
	apply := func(ctx context.Context, key string, class adaptive.Class) error {
		profile, ok := spec.Profiles[class]
		if !ok {
			// No profile for this class: hold the key where it is. Not an
			// error — the controller would retry a failure forever.
			return nil
		}
		next := profile
		// Every move mints a fresh configuration ID: the chain is
		// append-only even when a key revisits a class.
		next.ID = ConfigID(fmt.Sprintf("%s/%s/auto%d", s.name, key, s.adaptGen.Add(1)))
		mctx, cancel := context.WithTimeout(ctx, moveTimeout)
		err := s.ReconfigureKey(mctx, key, next, spec.Recon)
		cancel()
		if spec.OnMove != nil {
			spec.OnMove(key, class, err)
		}
		return err
	}
	var opts []adaptive.ControllerOption
	if spec.Logf != nil {
		opts = append(opts, adaptive.WithLogf(spec.Logf))
	}
	s.controller = adaptive.NewController(s.telemetry, spec.Policy, apply, opts...)
	s.controller.Start(context.Background(), spec.Interval)
	return nil
}

// Close stops the adaptive controller, waiting out any in-flight tick. The
// store holds no other background resources; Close on a non-adaptive store
// is a no-op. The cluster's lifetime is the caller's concern.
func (s *ObjectStore) Close() {
	if s.controller != nil {
		s.controller.Stop()
	}
}

// AdaptiveMoves reports how many automatic reconfigurations the controller
// has applied (0 without WithAdaptive).
func (s *ObjectStore) AdaptiveMoves() int64 {
	if s.controller == nil {
		return 0
	}
	return s.controller.Moves()
}

// AdaptiveClass reports the controller's current class for key
// (adaptive.ClassDefault without WithAdaptive).
func (s *ObjectStore) AdaptiveClass(key string) adaptive.Class {
	if s.controller == nil {
		return adaptive.ClassDefault
	}
	return s.controller.Class(key)
}

// Telemetry exposes the per-key sampler (nil without WithAdaptive) for
// benches and tests that want to inspect or augment the controller's input.
func (s *ObjectStore) Telemetry() *adaptive.Sampler { return s.telemetry }

// shard maps a key to its metadata shard. keystate.HashString is an inlined
// FNV-1a loop: hash/fnv's New32a allocates its hasher on the heap, which
// this lookup — on the path of every store operation — must not.
func (s *ObjectStore) shard(key string) *storeShard {
	return &s.shards[keystate.HashString(key)%uint32(len(s.shards))]
}

// keyConfig derives the initial configuration for a key by instantiating
// the installed template — the same derivation every server performs, so
// client and servers agree on the configuration without talking.
func (s *ObjectStore) keyConfig(key string) Config {
	return s.template.ForKey(key)
}

// register returns (instantiating on first use) the register client for key,
// pinned against eviction until release is called. Only keys in the same
// shard contend on the instantiation lock. No installation happens here —
// the servers already know the template.
func (s *ObjectStore) register(key string) (*Client, func(), error) {
	sh := s.shard(key)
	now := s.now()
	sh.mu.Lock()
	s.sweepLocked(sh, now)
	e, ok := sh.clients[key]
	if !ok {
		id, rpc := s.pool.Get()
		client, err := s.cluster.NewClientVia(id, s.keyConfig(key), rpc)
		if err != nil {
			sh.mu.Unlock()
			return nil, nil, err
		}
		if s.telemetry != nil {
			// Per-key attribution of the client's round/retry counters: the
			// sink is installed under the shard lock, before the client is
			// ever shared.
			k := key
			client.SetOpSink(func(st core.OpStats) {
				if st.Read {
					s.telemetry.RecordReadRounds(k, st.Rounds, st.FastPath)
				}
				s.telemetry.RecordRetries(k, st.Retries)
			})
		}
		e = &clientEntry{client: client}
		sh.clients[key] = e
	}
	e.lastUse = now
	e.inflight++
	sh.mu.Unlock()

	release := func() {
		sh.mu.Lock()
		// The entry may have been replaced after a Forget raced with this
		// operation; only decrement the entry this operation pinned.
		if cur, ok := sh.clients[key]; ok && cur == e {
			cur.inflight--
			cur.lastUse = s.now()
		} else {
			e.inflight--
		}
		sh.mu.Unlock()
	}
	return e.client, release, nil
}

// sweepLocked opportunistically evicts the shard's idle entries. It runs at
// most once per idleTTL per shard (so a hot shard pays one map scan per TTL
// window, not per operation) and skips entries with operations in flight.
// Callers hold sh.mu.
func (s *ObjectStore) sweepLocked(sh *storeShard, now time.Time) {
	if s.idleTTL <= 0 || now.Sub(sh.lastSweep) < s.idleTTL {
		return
	}
	sh.lastSweep = now
	evicted := int64(0)
	for k, e := range sh.clients {
		if e.inflight == 0 && now.Sub(e.lastUse) >= s.idleTTL {
			delete(sh.clients, k)
			evicted++
		}
	}
	for k, e := range sh.recons {
		if e.inflight == 0 && now.Sub(e.lastUse) >= s.idleTTL {
			delete(sh.recons, k)
			evicted++
		}
	}
	if evicted > 0 {
		storeEvictions.Add(evicted)
	}
}

// Put atomically sets key to value.
func (s *ObjectStore) Put(ctx context.Context, key string, value Value) error {
	_, err := s.WriteKey(ctx, key, value)
	return err
}

// WriteKey is Put returning the tag assigned to the written value — the
// handle linearizability checkers need.
func (s *ObjectStore) WriteKey(ctx context.Context, key string, value Value) (Tag, error) {
	c, release, err := s.register(key)
	if err != nil {
		return Tag{}, err
	}
	defer release()
	start := time.Now()
	t, err := c.Write(ctx, value)
	if err != nil {
		storeFailures.Inc()
		if s.telemetry != nil {
			s.telemetry.RecordFailure(key)
		}
		return t, err
	}
	storeWrites.Inc()
	if s.telemetry != nil {
		s.telemetry.RecordWrite(key, len(value), time.Since(start))
	}
	return t, err
}

// Get atomically reads key. A never-written key returns the register's
// initial (empty) value.
func (s *ObjectStore) Get(ctx context.Context, key string) (Value, error) {
	pair, err := s.ReadKey(ctx, key)
	if err != nil {
		return nil, err
	}
	return pair.Value, nil
}

// ReadKey is Get returning the full tag-value pair.
func (s *ObjectStore) ReadKey(ctx context.Context, key string) (Pair, error) {
	c, release, err := s.register(key)
	if err != nil {
		return Pair{}, err
	}
	defer release()
	start := time.Now()
	pair, err := c.Read(ctx)
	if err != nil {
		storeFailures.Inc()
		if s.telemetry != nil {
			s.telemetry.RecordFailure(key)
		}
		return pair, err
	}
	storeReads.Inc()
	if s.telemetry != nil {
		s.telemetry.RecordRead(key, len(pair.Value), time.Since(start))
	}
	return pair, err
}

// KeyError couples a key with the error its per-key operation returned.
type KeyError struct {
	Key string
	Err error
}

// BatchError aggregates the per-key failures of a MultiPut or MultiGet.
// Keys absent from Failed completed successfully.
type BatchError struct {
	// Op names the batch operation ("multiput" or "multiget").
	Op string
	// Failed lists the failed keys in lexical order.
	Failed []KeyError
}

// FailedKeys returns just the failed keys, in lexical order. Callers that
// cannot name the BatchError type (e.g. internal packages matching via an
// interface) use it to tell a partial failure from a total one.
func (e *BatchError) FailedKeys() []string {
	keys := make([]string, len(e.Failed))
	for i, ke := range e.Failed {
		keys[i] = ke.Key
	}
	return keys
}

// Error summarizes the aggregated failures.
func (e *BatchError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ares: %s: %d key(s) failed:", e.Op, len(e.Failed))
	for i, ke := range e.Failed {
		if i == 3 {
			fmt.Fprintf(&b, " … (%d more)", len(e.Failed)-i)
			break
		}
		fmt.Fprintf(&b, " %q: %v;", ke.Key, ke.Err)
	}
	return strings.TrimSuffix(b.String(), ";")
}

// batch fans per-key operations out with bounded parallelism and collects
// failures into a BatchError (nil if every key succeeded).
func (s *ObjectStore) batch(op string, keys []string, apply func(key string) error) error {
	sem := make(chan struct{}, s.batchPar)
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		failed []KeyError
	)
	for _, key := range keys {
		key := key
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if err := apply(key); err != nil {
				mu.Lock()
				failed = append(failed, KeyError{Key: key, Err: err})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(failed) == 0 {
		return nil
	}
	sort.Slice(failed, func(i, j int) bool { return failed[i].Key < failed[j].Key })
	return &BatchError{Op: op, Failed: failed}
}

// MultiPut atomically sets each key of kv to its value, fanning the per-key
// writes out across shards with bounded parallelism. Each key's write is
// individually atomic (the batch as a whole is not a transaction). On
// partial failure the returned error is a *BatchError naming exactly the
// keys that failed; the rest are durably written.
func (s *ObjectStore) MultiPut(ctx context.Context, kv map[string]Value) error {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return s.batch("multiput", keys, func(key string) error {
		return s.Put(ctx, key, kv[key])
	})
}

// MultiGet atomically reads each key, fanning the per-key reads out across
// shards with bounded parallelism. Duplicate keys are read once. The
// returned map holds a value for every key whose read succeeded (a
// never-written key succeeds with the initial empty value); on partial
// failure the error is a *BatchError naming the keys that failed.
func (s *ObjectStore) MultiGet(ctx context.Context, keys ...string) (map[string]Value, error) {
	uniq := make([]string, 0, len(keys))
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, k)
		}
	}
	var mu sync.Mutex
	out := make(map[string]Value, len(uniq))
	err := s.batch("multiget", uniq, func(key string) error {
		v, err := s.Get(ctx, key)
		if err != nil {
			return err
		}
		mu.Lock()
		out[key] = v
		mu.Unlock()
		return nil
	})
	return out, err
}

// ReconfigureKey migrates one key's register to a new configuration while
// reads and writes on that key (and all others) continue.
func (s *ObjectStore) ReconfigureKey(ctx context.Context, key string, next Config, opts ReconOptions) error {
	_, release, err := s.register(key)
	if err != nil {
		return err
	}
	defer release()
	// The reconfigurer is created under the shard lock: its derived process
	// ID is the consensus proposer identity, and ballot uniqueness requires
	// that concurrent proposers never share one — racing first calls must
	// not each build a live "store-recon/<key>" proposer. The in-flight pin
	// extends the same guarantee across eviction: an entry mid-Reconfig is
	// never swept, so the identity is never duplicated.
	sh := s.shard(key)
	sh.mu.Lock()
	e, ok := sh.recons[key]
	if !ok {
		g, err := s.cluster.NewReconfigurerFor(ProcessID(s.name+"-recon/"+key), s.keyConfig(key), opts)
		if err != nil {
			sh.mu.Unlock()
			return err
		}
		e = &reconEntry{recon: g}
		sh.recons[key] = e
	}
	e.lastUse = s.now()
	e.inflight++
	sh.mu.Unlock()
	defer func() {
		sh.mu.Lock()
		e.inflight--
		e.lastUse = s.now()
		sh.mu.Unlock()
	}()
	for _, srv := range next.Servers {
		s.cluster.AddHost(srv)
	}
	// Bind the proposal to this key (ForKey also expands a template ID), so
	// its messages route to this key's state on every server.
	if _, err := e.recon.Reconfig(ctx, next.ForKey(key)); err != nil {
		return fmt.Errorf("ares: reconfiguring key %q: %w", key, err)
	}
	return nil
}

// Forget drops key's cached register client and reconfigurer, if any,
// reporting whether anything was dropped — the explicit counterpart of idle
// eviction for callers that know a key has gone cold (mirrors
// dap.Cache.Retain's role one layer down). Like the idle sweeps, Forget
// skips entries with operations in flight: the entry's identity (a pooled
// endpoint for clients, the derived consensus-proposer process ID for
// reconfigurers) must never be live twice, so an in-flight entry survives
// and a later Forget — or the TTL sweep — collects it once it quiesces.
func (s *ObjectStore) Forget(key string) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	dropped := false
	if e, ok := sh.clients[key]; ok && e.inflight == 0 {
		delete(sh.clients, key)
		dropped = true
	}
	if e, ok := sh.recons[key]; ok && e.inflight == 0 {
		delete(sh.recons, key)
		dropped = true
	}
	if dropped {
		storeForgets.Inc()
	}
	return dropped
}

// EvictIdle immediately evicts every cached client and reconfigurer idle for
// at least olderThan (zero evicts everything not in flight), returning how
// many entries were dropped. It complements the TTL's opportunistic, amortized
// sweeps with an explicit full sweep — e.g. after a bulk load, or from a
// memory-pressure hook.
func (s *ObjectStore) EvictIdle(olderThan time.Duration) int {
	now := s.now()
	evicted := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, e := range sh.clients {
			if e.inflight == 0 && now.Sub(e.lastUse) >= olderThan {
				delete(sh.clients, k)
				evicted++
			}
		}
		for k, e := range sh.recons {
			if e.inflight == 0 && now.Sub(e.lastUse) >= olderThan {
				delete(sh.recons, k)
				evicted++
			}
		}
		sh.mu.Unlock()
	}
	storeEvictions.Add(int64(evicted))
	return evicted
}

// ClientCount reports how many per-key clients and reconfigurers the store
// currently caches (for tests and capacity monitoring).
func (s *ObjectStore) ClientCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.clients) + len(sh.recons)
		sh.mu.Unlock()
	}
	return n
}

// Keys returns the keys with instantiated registers, in no particular order.
func (s *ObjectStore) Keys() []string {
	var keys []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.clients {
			keys = append(keys, k)
		}
		sh.mu.Unlock()
	}
	return keys
}

// ReadRoundStats is a process-wide snapshot of the one-round read fast
// path's effect: how many reads completed, how many data rounds (get-data +
// put-data quorum phases) they spent in total, and how many skipped the
// write-back because the get-data quorum proved the max tag propagated.
// Counters are process-wide and cumulative; benches snapshot before/after a
// phase and subtract.
type ReadRoundStats struct {
	Ops       int64
	Rounds    int64
	FastPaths int64
}

// AvgRounds is Rounds/Ops (0 when no reads completed). On a quiescent key
// it approaches 1.0; every read below 2.0 average is write-back traffic the
// fast path saved.
func (s ReadRoundStats) AvgRounds() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.Rounds) / float64(s.Ops)
}

// ReadRounds reports the fast-path counters accumulated by every Client and
// ObjectStore read in this process.
func ReadRounds() ReadRoundStats {
	u := transport.CodecStats()
	return ReadRoundStats{Ops: u.ReadOps, Rounds: u.ReadRounds, FastPaths: u.ReadFastPaths}
}

// RepairServer reconstructs the coded elements missing at one server of a
// TREAS configuration — recovery from state loss without a reconfiguration
// (the paper's "efficient repair" future-work direction). It returns how
// many elements were installed. rpc is the repairing process's endpoint
// (e.g. net.Client("repairer") or a TCP client).
func RepairServer(ctx context.Context, rpc transport.Client, c Config, target ProcessID) (int, error) {
	return treas.Repair(ctx, rpc, c, target)
}
