package ares

import (
	"context"
	"fmt"
	"sync"

	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/treas"
)

// ObjectStore composes many independent ARES registers — one per object key
// — over a shared server pool. This is the paper's §1 composability claim
// made concrete: "atomic objects are composable, enabling the creation of
// large shared memory systems from individual atomic data objects".
//
// Each key owns its own configuration chain, so per-key operations are
// atomic, keys never contend, and each key can be reconfigured (even to a
// different algorithm or code) independently.
type ObjectStore struct {
	cluster  *Cluster
	template Config

	mu      sync.Mutex
	clients map[string]*Client
	recons  map[string]*Reconfigurer
	nextID  int
}

// StoreOption configures an ObjectStore.
type StoreOption func(*ObjectStore)

// NewObjectStore builds a store whose per-key registers are instantiated
// from template: the template's Servers, Algorithm, and parameters apply to
// every key's initial configuration; the ID field is derived per key.
func NewObjectStore(cluster *Cluster, template Config, opts ...StoreOption) (*ObjectStore, error) {
	probe := template
	probe.ID = "store/template-validation"
	if err := probe.Validate(); err != nil {
		return nil, fmt.Errorf("ares: object store template: %w", err)
	}
	s := &ObjectStore{
		cluster:  cluster,
		template: template,
		clients:  make(map[string]*Client),
		recons:   make(map[string]*Reconfigurer),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// keyConfig derives the initial configuration for a key.
func (s *ObjectStore) keyConfig(key string) Config {
	conf := s.template
	conf.ID = ConfigID("store/" + key + "/c0")
	return conf
}

// register returns (instantiating on first use) the register client for key.
func (s *ObjectStore) register(key string) (*Client, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.clients[key]; ok {
		return c, nil
	}
	conf := s.keyConfig(key)
	if err := s.cluster.InstallConfiguration(conf); err != nil {
		return nil, fmt.Errorf("ares: installing register for key %q: %w", key, err)
	}
	s.nextID++
	client, err := s.cluster.NewClientFor(ProcessID(fmt.Sprintf("store-client-%d", s.nextID)), conf)
	if err != nil {
		return nil, err
	}
	s.clients[key] = client
	return client, nil
}

// Put atomically sets key to value.
func (s *ObjectStore) Put(ctx context.Context, key string, value Value) error {
	c, err := s.register(key)
	if err != nil {
		return err
	}
	return c.WriteValue(ctx, value)
}

// Get atomically reads key. A never-written key returns the register's
// initial (empty) value.
func (s *ObjectStore) Get(ctx context.Context, key string) (Value, error) {
	c, err := s.register(key)
	if err != nil {
		return nil, err
	}
	return c.ReadValue(ctx)
}

// ReconfigureKey migrates one key's register to a new configuration while
// reads and writes on that key (and all others) continue.
func (s *ObjectStore) ReconfigureKey(ctx context.Context, key string, next Config, opts ReconOptions) error {
	if _, err := s.register(key); err != nil {
		return err
	}
	s.mu.Lock()
	g, ok := s.recons[key]
	s.mu.Unlock()
	if !ok {
		var err error
		g, err = s.cluster.NewReconfigurerFor(ProcessID("store-recon/"+key), s.keyConfig(key), opts)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.recons[key] = g
		s.mu.Unlock()
	}
	for _, srv := range next.Servers {
		s.cluster.AddHost(srv)
	}
	if _, err := g.Reconfig(ctx, next); err != nil {
		return fmt.Errorf("ares: reconfiguring key %q: %w", key, err)
	}
	return nil
}

// Keys returns the keys with instantiated registers.
func (s *ObjectStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.clients))
	for k := range s.clients {
		keys = append(keys, k)
	}
	return keys
}

// RepairServer reconstructs the coded elements missing at one server of a
// TREAS configuration — recovery from state loss without a reconfiguration
// (the paper's "efficient repair" future-work direction). It returns how
// many elements were installed. rpc is the repairing process's endpoint
// (e.g. net.Client("repairer") or a TCP client).
func RepairServer(ctx context.Context, rpc transport.Client, c Config, target ProcessID) (int, error) {
	return treas.Repair(ctx, rpc, c, target)
}
