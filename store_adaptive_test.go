package ares_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	ares "github.com/ares-storage/ares"
)

// adaptiveFixture builds a 5-server cluster whose store starts every key on
// TREAS [5, 3] and runs the self-driving controller with fast test cadence.
func adaptiveFixture(t *testing.T, policy ares.AdaptivePolicy, onMove func(key string, to ares.AdaptiveClass, err error)) (*ares.ObjectStore, []ares.ProcessID) {
	t.Helper()
	servers := []ares.ProcessID{"ad-s1", "ad-s2", "ad-s3", "ad-s4", "ad-s5"}
	root := ares.Config{ID: "ad/root", Algorithm: ares.ABD, Servers: servers[:3]}
	cluster, err := ares.NewCluster(root, ares.NewSimNetwork(), servers...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	store, err := ares.NewObjectStore(cluster,
		ares.Config{Algorithm: ares.TREAS, Servers: servers, K: 3, Delta: 8},
		ares.WithAdaptive(ares.AdaptiveSpec{
			Interval: 25 * time.Millisecond,
			Policy:   policy,
			Profiles: map[ares.AdaptiveClass]ares.Config{
				ares.ClassDefault:   {Algorithm: ares.TREAS, Servers: servers, K: 3, Delta: 8},
				ares.ClassSmallHot:  {Algorithm: ares.ABD, Servers: servers[:3]},
				ares.ClassLargeCold: {Algorithm: ares.TREAS, Servers: servers, K: 3, Delta: 8},
				ares.ClassFaulty:    {Algorithm: ares.ABD, Servers: servers},
			},
			OnMove: onMove,
		}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	return store, servers
}

// TestAdaptiveStoreMovesWithWorkload drives the full closed loop end to end:
// small hot traffic must move the key to the ABD profile, a shift to large
// values must move it on to the wide TREAS profile, and the value written
// before each automatic reconfiguration must survive it.
func TestAdaptiveStoreMovesWithWorkload(t *testing.T) {
	t.Parallel()
	var (
		mu    sync.Mutex
		moves []ares.AdaptiveClass
	)
	store, _ := adaptiveFixture(t,
		ares.AdaptivePolicy{ConfirmWindows: 2, Cooldown: 50 * time.Millisecond, HotOps: 8},
		func(key string, to ares.AdaptiveClass, err error) {
			if err != nil {
				t.Errorf("move %s → %s failed: %v", key, to, err)
				return
			}
			mu.Lock()
			moves = append(moves, to)
			mu.Unlock()
		})
	ctx := context.Background()

	awaitClass := func(want ares.AdaptiveClass, drive func(i int)) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for i := 0; store.AdaptiveClass("obj") != want; i++ {
			if time.Now().After(deadline) {
				t.Fatalf("controller never classified obj as %s", want)
			}
			drive(i)
		}
	}

	if err := store.Put(ctx, "obj", ares.Value("seed-value")); err != nil {
		t.Fatal(err)
	}
	awaitClass(ares.ClassSmallHot, func(i int) {
		if _, err := store.Get(ctx, "obj"); err != nil {
			t.Fatal(err)
		}
		if i%8 == 0 {
			if err := store.Put(ctx, "obj", ares.Value(fmt.Sprintf("small-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
	})
	// The value written before the automatic TREAS→ABD move is still there
	// (or a later small-N write is — never garbage, never the initial value).
	v, err := store.Get(ctx, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) == 0 {
		t.Fatal("value lost across automatic reconfiguration")
	}

	large := make(ares.Value, 64<<10)
	copy(large, "large-payload")
	awaitClass(ares.ClassLargeCold, func(i int) {
		if err := store.Put(ctx, "obj", large); err != nil {
			t.Fatal(err)
		}
	})
	got, err := store.Get(ctx, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(large) {
		t.Fatalf("large value truncated across reconfiguration: %d bytes", len(got))
	}

	if n := store.AdaptiveMoves(); n < 2 {
		t.Fatalf("AdaptiveMoves = %d, want ≥ 2", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(moves) < 2 || moves[0] != ares.ClassSmallHot {
		t.Fatalf("move sequence = %v", moves)
	}
}

// TestAdaptiveStoreStableWorkloadDoesNotChurn pins the hysteresis claim at
// the store level: after the one legitimate move, a steady workload causes no
// further reconfigurations no matter how long it runs.
func TestAdaptiveStoreStableWorkloadDoesNotChurn(t *testing.T) {
	t.Parallel()
	store, _ := adaptiveFixture(t,
		ares.AdaptivePolicy{ConfirmWindows: 2, Cooldown: 50 * time.Millisecond, HotOps: 8},
		nil)
	ctx := context.Background()
	if err := store.Put(ctx, "steady", ares.Value("v")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for store.AdaptiveMoves() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("controller never moved the steady key")
		}
		if _, err := store.Get(ctx, "steady"); err != nil {
			t.Fatal(err)
		}
	}
	// Keep the same workload going through many more controller windows.
	settle := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(settle) {
		if _, err := store.Get(ctx, "steady"); err != nil {
			t.Fatal(err)
		}
	}
	if n := store.AdaptiveMoves(); n != 1 {
		t.Fatalf("stable workload caused %d moves, want exactly 1", n)
	}
}

// TestAdaptiveStoreTelemetryAttribution checks the per-key plumbing: sizes,
// mix, and read rounds land under the right key in the sampler.
func TestAdaptiveStoreTelemetryAttribution(t *testing.T) {
	t.Parallel()
	store, _ := adaptiveFixture(t, ares.AdaptivePolicy{
		// Thresholds high enough that the controller never moves anything:
		// this test is about the sampler, not the policy.
		HotOps: 1 << 30, ConfirmWindows: 1 << 30,
	}, nil)
	ctx := context.Background()
	if err := store.Put(ctx, "a", make(ares.Value, 100)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := store.Get(ctx, "a"); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Put(ctx, "b", make(ares.Value, 2000)); err != nil {
		t.Fatal(err)
	}
	snap := store.Telemetry().Snapshot()
	a, b := snap["a"], snap["b"]
	if a.Writes < 1 || a.Reads < 3 {
		t.Fatalf("a ops = %d/%d", a.Reads, a.Writes)
	}
	if a.WriteBytes < 100 || a.ReadBytes < 300 {
		t.Fatalf("a bytes = %d/%d", a.ReadBytes, a.WriteBytes)
	}
	if a.ReadRounds < 3 {
		t.Fatalf("a read rounds = %d, want ≥ 3 (per-key attribution missing)", a.ReadRounds)
	}
	if b.WriteBytes < 2000 || b.Reads != 0 {
		t.Fatalf("b = %+v", b)
	}
}
