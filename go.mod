module github.com/ares-storage/ares

go 1.22
