// Command rolling-reconfig demonstrates the paper's headline capability:
// rotating the entire server fleet — and even switching the storage
// algorithm from replication (ABD) to erasure coding (TREAS) — while
// readers and writers keep operating without interruption.
//
// The output reports, per epoch, how many operations completed during the
// migration and verifies the freshest value survived every hop.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	ares "github.com/ares-storage/ares"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Epoch 0: a replicated deployment on "generation 0" hardware.
	epochs := []ares.Config{
		{ID: "c0", Algorithm: ares.ABD,
			Servers: srv("gen0", 3)},
		{ID: "c1", Algorithm: ares.TREAS, K: 3, Delta: 8,
			Servers: srv("gen1", 5)},
		{ID: "c2", Algorithm: ares.TREAS, K: 5, Delta: 8,
			Servers: srv("gen2", 7)},
		{ID: "c3", Algorithm: ares.ABD,
			Servers: srv("gen3", 3)},
	}

	net := ares.NewSimNetwork(ares.WithDelayRange(200*time.Microsecond, time.Millisecond))
	cluster, err := ares.NewCluster(epochs[0], net)
	if err != nil {
		return err
	}
	defer cluster.Close()
	for _, c := range epochs[1:] {
		for _, s := range c.Servers {
			cluster.AddHost(s)
		}
	}

	// Background traffic: one writer, two readers.
	var ops atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	writer, err := cluster.NewClient("w1")
	if err != nil {
		return err
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := writer.WriteValue(ctx, ares.Value(fmt.Sprintf("update-%d", i))); err != nil {
				if ctx.Err() == nil {
					log.Printf("write: %v", err)
				}
				return
			}
			ops.Add(1)
		}
	}()
	for r := 0; r < 2; r++ {
		reader, err := cluster.NewClient(ares.ProcessID(fmt.Sprintf("r%d", r)))
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := reader.ReadValue(ctx); err != nil {
					if ctx.Err() == nil {
						log.Printf("read: %v", err)
					}
					return
				}
				ops.Add(1)
			}
		}()
	}

	// Roll through the epochs while traffic flows.
	admin, err := cluster.NewReconfigurer("admin", ares.ReconOptions{DirectTransfer: true})
	if err != nil {
		return err
	}
	for _, next := range epochs[1:] {
		before := ops.Load()
		start := time.Now()
		if _, err := admin.Reconfig(ctx, next); err != nil {
			return fmt.Errorf("reconfig to %s: %w", next.ID, err)
		}
		fmt.Printf("epoch %s installed in %v; %d ops completed during migration\n",
			next.ID, time.Since(start).Round(time.Millisecond), ops.Load()-before)
		time.Sleep(100 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// The freshest value must be readable from the final configuration.
	verifier, err := cluster.NewClient("verifier")
	if err != nil {
		return err
	}
	pair, err := verifier.Read(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("final state: %q (tag %v) after %d total ops across %d epochs\n",
		string(pair.Value), pair.Tag, ops.Load(), len(epochs))
	return nil
}

func srv(prefix string, n int) []ares.ProcessID {
	out := make([]ares.ProcessID, n)
	for i := range out {
		out[i] = ares.ProcessID(fmt.Sprintf("%s-s%d", prefix, i+1))
	}
	return out
}
