// Command erasure-vs-replication measures the paper's §1 motivating
// numbers: storing a 1 MiB object on a replicated (ABD) versus an
// erasure-coded (TREAS) deployment, comparing storage at rest and bytes on
// the wire per operation.
//
// The paper's example: with 3 servers, ABD stores 3× the data and moves a
// full copy per operation, while an [3, 2] MDS code stores 1.5× and moves
// ~n/k fragments.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	ares "github.com/ares-storage/ares"
	"github.com/ares-storage/ares/internal/benchutil"
)

const valueSize = 1 << 20 // 1 MiB

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	table := benchutil.NewTable("deployment", "storage (MiB)", "write wire (MiB)", "read wire (MiB)")

	deployments := []struct {
		name string
		conf ares.Config
	}{
		{"ABD n=3 (replication)", ares.Config{
			ID: "c0", Algorithm: ares.ABD,
			Servers: []ares.ProcessID{"a1", "a2", "a3"},
		}},
		{"TREAS [3,2] δ=1", ares.Config{
			ID: "c0", Algorithm: ares.TREAS, K: 2, Delta: 1,
			Servers: []ares.ProcessID{"t1", "t2", "t3"},
		}},
		{"TREAS [5,3] δ=1", ares.Config{
			ID: "c0", Algorithm: ares.TREAS, K: 3, Delta: 1,
			Servers: []ares.ProcessID{"u1", "u2", "u3", "u4", "u5"},
		}},
	}

	for _, d := range deployments {
		net := ares.NewSimNetwork()
		cluster, err := ares.NewCluster(d.conf, net)
		if err != nil {
			return err
		}
		defer cluster.Close()
		client, err := cluster.NewClient("w1")
		if err != nil {
			return err
		}
		value := make(ares.Value, valueSize)

		// One write, measured.
		net.Counters().Reset()
		if err := client.WriteValue(ctx, value); err != nil {
			return err
		}
		writeBytes := net.Counters().TotalBytes(string(d.conf.Algorithm))

		// One read, measured.
		net.Counters().Reset()
		if _, err := client.ReadValue(ctx); err != nil {
			return err
		}
		readBytes := net.Counters().TotalBytes(string(d.conf.Algorithm))

		// Storage at rest across all servers.
		var storage int
		for _, s := range d.conf.Servers {
			host, ok := cluster.Host(s)
			if !ok {
				continue
			}
			storage += host.StorageBytes()
		}

		table.AddRow(d.name, mib(storage), mib(int(writeBytes)), mib(int(readBytes)))
	}

	fmt.Printf("object size: 1 MiB\n\n")
	table.Render(os.Stdout)
	fmt.Println("\nreplication stores n copies and ships full values;")
	fmt.Println("TREAS stores (δ+1)·n/k fragments and ships n/k per write (Theorem 3).")
	return nil
}

func mib(b int) float64 { return float64(b) / (1 << 20) }
