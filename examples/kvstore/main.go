// Command kvstore composes many ARES registers into an atomic key-value
// store — the §1 motivation: "atomic objects are composable, enabling the
// creation of large shared memory systems from individual atomic data
// objects".
//
// Each key owns an independent register (its own configuration chain over
// the shared server pool), so per-key operations are atomic, keys never
// contend, and individual keys can be migrated to new servers or codes
// without touching the rest — demonstrated at the end by reconfiguring one
// hot key onto bigger hardware while the others stay put.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	ares "github.com/ares-storage/ares"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	servers := []ares.ProcessID{"s1", "s2", "s3", "s4", "s5", "s6"}

	// Bootstrap the cluster; per-key registers are installed on demand over
	// the same hosts from the store's template configuration.
	root := ares.Config{ID: "kv/root", Algorithm: ares.ABD, Servers: servers[:3]}
	cluster, err := ares.NewCluster(root, ares.NewSimNetwork(), servers...)
	if err != nil {
		return err
	}
	defer cluster.Close()
	store, err := ares.NewObjectStore(cluster, ares.Config{
		Algorithm: ares.TREAS,
		Servers:   servers,
		K:         4, // k = ⌈2n/3⌉ for n = 6
		Delta:     4,
	})
	if err != nil {
		return err
	}

	// Concurrent writers on distinct keys do not interfere.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("user:%d", i%4)
			if err := store.Put(ctx, key, ares.Value(fmt.Sprintf("profile-%d", i))); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("user:%d", i)
		v, err := store.Get(ctx, key)
		if err != nil {
			return err
		}
		fmt.Printf("%s = %q\n", key, string(v))
	}

	// Absent keys return the register's initial (empty) value.
	v, err := store.Get(ctx, "missing")
	if err != nil {
		return err
	}
	fmt.Printf("missing = %q (initial value)\n", string(v))

	// Migrate one hot key to a dedicated server set — the other keys keep
	// their registers untouched.
	hot := "user:0"
	bigIron := ares.Config{
		ID:        ares.ConfigID("store/" + hot + "/c1"),
		Algorithm: ares.TREAS,
		Servers:   []ares.ProcessID{"big1", "big2", "big3", "big4", "big5", "big6", "big7"},
		K:         5,
		Delta:     4,
	}
	if err := store.ReconfigureKey(ctx, hot, bigIron, ares.ReconOptions{DirectTransfer: true}); err != nil {
		return err
	}
	v, err = store.Get(ctx, hot)
	if err != nil {
		return err
	}
	fmt.Printf("%s = %q (now on dedicated [7,5] hardware)\n", hot, string(v))
	return nil
}
