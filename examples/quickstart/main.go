// Command quickstart is the smallest end-to-end ARES program: deploy a
// five-server erasure-coded configuration on an in-memory network, write a
// value, read it back, then reconfigure to a fresh server set while the
// register stays available.
package main

import (
	"context"
	"fmt"
	"log"

	ares "github.com/ares-storage/ares"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// A TREAS configuration: 5 servers, [n=5, k=3] MDS code, and δ=4
	// concurrent writes tolerated before reads may have to retry.
	c0 := ares.Config{
		ID:        "c0",
		Algorithm: ares.TREAS,
		Servers:   []ares.ProcessID{"s1", "s2", "s3", "s4", "s5"},
		K:         3,
		Delta:     4,
	}

	net := ares.NewSimNetwork()
	cluster, err := ares.NewCluster(c0, net)
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Write and read through separate clients: the register is multi-writer
	// multi-reader and atomic.
	writer, err := cluster.NewClient("writer-1")
	if err != nil {
		return err
	}
	tag, err := writer.Write(ctx, ares.Value("hello, reconfigurable storage"))
	if err != nil {
		return err
	}
	fmt.Printf("wrote value with tag %v\n", tag)

	reader, err := cluster.NewClient("reader-1")
	if err != nil {
		return err
	}
	pair, err := reader.Read(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("read  %q (tag %v)\n", string(pair.Value), pair.Tag)

	// Reconfigure to a brand-new server set — an [7, 5] code this time —
	// without interrupting the service.
	c1 := ares.Config{
		ID:        "c1",
		Algorithm: ares.TREAS,
		Servers:   []ares.ProcessID{"t1", "t2", "t3", "t4", "t5", "t6", "t7"},
		K:         5,
		Delta:     4,
	}
	for _, s := range c1.Servers {
		cluster.AddHost(s)
	}
	g, err := cluster.NewReconfigurer("admin-1", ares.ReconOptions{DirectTransfer: true})
	if err != nil {
		return err
	}
	if _, err := g.Reconfig(ctx, c1); err != nil {
		return err
	}
	fmt.Println("reconfigured c0 → c1 (5 servers → 7 servers, k 3 → 5)")

	pair, err = reader.Read(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("read  %q from the new configuration\n", string(pair.Value))
	return nil
}
