package ares_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	ares "github.com/ares-storage/ares"
)

func storeFixture(t *testing.T) (*ares.ObjectStore, *ares.Cluster, []ares.ProcessID) {
	t.Helper()
	servers := []ares.ProcessID{"os-s1", "os-s2", "os-s3", "os-s4", "os-s5"}
	root := ares.Config{ID: "os/root", Algorithm: ares.ABD, Servers: servers[:3]}
	cluster, err := ares.NewCluster(root, ares.NewSimNetwork(), servers...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	store, err := ares.NewObjectStore(cluster, ares.Config{
		Algorithm: ares.TREAS,
		Servers:   servers,
		K:         3,
		Delta:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return store, cluster, servers
}

func TestObjectStorePutGet(t *testing.T) {
	t.Parallel()
	store, _, _ := storeFixture(t)
	ctx := context.Background()
	if err := store.Put(ctx, "alpha", ares.Value("1")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ctx, "beta", ares.Value("2")); err != nil {
		t.Fatal(err)
	}
	v, err := store.Get(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "1" {
		t.Fatalf("alpha = %q", v)
	}
	v, err = store.Get(ctx, "beta")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "2" {
		t.Fatalf("beta = %q", v)
	}
	// Unwritten key returns the initial value.
	v, err = store.Get(ctx, "ghost")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("ghost = %q", v)
	}
	if got := len(store.Keys()); got != 3 {
		t.Fatalf("Keys() has %d entries, want 3", got)
	}
}

func TestObjectStoreConcurrentKeys(t *testing.T) {
	t.Parallel()
	store, _, _ := storeFixture(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%4)
			if err := store.Put(ctx, key, ares.Value(fmt.Sprintf("v%d", i))); err != nil {
				errs <- fmt.Errorf("put %s: %w", key, err)
				return
			}
			if _, err := store.Get(ctx, key); err != nil {
				errs <- fmt.Errorf("get %s: %w", key, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestObjectStoreReconfigureOneKey(t *testing.T) {
	t.Parallel()
	store, cluster, _ := storeFixture(t)
	ctx := context.Background()
	if err := store.Put(ctx, "movable", ares.Value("payload")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ctx, "static", ares.Value("stays")); err != nil {
		t.Fatal(err)
	}

	next := ares.Config{
		ID:        "store/movable/c1",
		Algorithm: ares.TREAS,
		Servers:   []ares.ProcessID{"os-n1", "os-n2", "os-n3", "os-n4", "os-n5"},
		K:         3,
		Delta:     4,
	}
	for _, s := range next.Servers {
		cluster.AddHost(s)
	}
	if err := store.ReconfigureKey(ctx, "movable", next, ares.ReconOptions{DirectTransfer: true}); err != nil {
		t.Fatal(err)
	}

	v, err := store.Get(ctx, "movable")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "payload" {
		t.Fatalf("movable = %q after key reconfiguration", v)
	}
	// The other key is untouched.
	v, err = store.Get(ctx, "static")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "stays" {
		t.Fatalf("static = %q", v)
	}
}

func TestObjectStoreConcurrentFirstTouchSameKey(t *testing.T) {
	t.Parallel()
	store, _, _ := storeFixture(t)
	ctx := context.Background()
	const writers = 32
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := store.Put(ctx, "hot", ares.Value(fmt.Sprintf("v%d", i))); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All racers must have landed on one register.
	if keys := store.Keys(); len(keys) != 1 || keys[0] != "hot" {
		t.Fatalf("Keys() = %v after racing first-touch", keys)
	}
	v, err := store.Get(ctx, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) < 2 || v[0] != 'v' {
		t.Fatalf("hot = %q, not one of the racers' values", v)
	}
}

func TestObjectStoreTaggedOperations(t *testing.T) {
	t.Parallel()
	store, _, _ := storeFixture(t)
	ctx := context.Background()
	tg, err := store.WriteKey(ctx, "tagged", ares.Value("one"))
	if err != nil {
		t.Fatal(err)
	}
	if tg == (ares.Tag{}) {
		t.Fatal("write returned the zero tag")
	}
	pair, err := store.ReadKey(ctx, "tagged")
	if err != nil {
		t.Fatal(err)
	}
	if pair.Tag != tg || string(pair.Value) != "one" {
		t.Fatalf("read %v/%q after write %v", pair.Tag, pair.Value, tg)
	}
	// A second write's tag strictly increases.
	tg2, err := store.WriteKey(ctx, "tagged", ares.Value("two"))
	if err != nil {
		t.Fatal(err)
	}
	if !tg.Less(tg2) {
		t.Fatalf("tags not monotonic: %v then %v", tg, tg2)
	}
}

func TestObjectStoreMultiGetMixedKeys(t *testing.T) {
	t.Parallel()
	store, _, _ := storeFixture(t)
	ctx := context.Background()
	if err := store.MultiPut(ctx, map[string]ares.Value{
		"written-1": ares.Value("a"),
		"written-2": ares.Value("b"),
	}); err != nil {
		t.Fatal(err)
	}
	// Mix of written, never-written, and duplicate keys.
	got, err := store.MultiGet(ctx, "written-1", "ghost-1", "written-2", "ghost-2", "written-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("MultiGet returned %d entries: %v", len(got), got)
	}
	if string(got["written-1"]) != "a" || string(got["written-2"]) != "b" {
		t.Fatalf("written keys = %q, %q", got["written-1"], got["written-2"])
	}
	for _, ghost := range []string{"ghost-1", "ghost-2"} {
		v, ok := got[ghost]
		if !ok {
			t.Fatalf("never-written key %q missing from results", ghost)
		}
		if len(v) != 0 {
			t.Fatalf("%s = %q, want initial empty value", ghost, v)
		}
	}
}

func TestObjectStoreMultiPutPartialFailure(t *testing.T) {
	t.Parallel()
	store, cluster, _ := storeFixture(t)
	ctx := context.Background()

	// Strand one key on its own 3-server ABD configuration, then crash two
	// of those servers: a majority quorum for that key is unreachable, while
	// every other key (on the healthy template servers) keeps working.
	doomedServers := []ares.ProcessID{"os-d1", "os-d2", "os-d3"}
	next := ares.Config{ID: "store/doomed/c1", Algorithm: ares.ABD, Servers: doomedServers}
	if err := store.Put(ctx, "doomed", ares.Value("before")); err != nil {
		t.Fatal(err)
	}
	if err := store.ReconfigureKey(ctx, "doomed", next, ares.ReconOptions{}); err != nil {
		t.Fatal(err)
	}
	cluster.Network().Crash("os-d1")
	cluster.Network().Crash("os-d2")

	opCtx, cancel := context.WithTimeout(ctx, 750*time.Millisecond)
	defer cancel()
	err := store.MultiPut(opCtx, map[string]ares.Value{
		"healthy-1": ares.Value("h1"),
		"doomed":    ares.Value("after"),
		"healthy-2": ares.Value("h2"),
	})
	var batchErr *ares.BatchError
	if !errors.As(err, &batchErr) {
		t.Fatalf("err = %v, want *ares.BatchError", err)
	}
	if len(batchErr.Failed) != 1 || batchErr.Failed[0].Key != "doomed" {
		t.Fatalf("failed keys = %+v, want exactly [doomed]", batchErr.Failed)
	}
	if batchErr.Failed[0].Err == nil || batchErr.Error() == "" {
		t.Fatalf("batch error lacks detail: %+v", batchErr)
	}
	// The healthy keys were durably written despite the partial failure.
	got, err := store.MultiGet(ctx, "healthy-1", "healthy-2")
	if err != nil {
		t.Fatal(err)
	}
	if string(got["healthy-1"]) != "h1" || string(got["healthy-2"]) != "h2" {
		t.Fatalf("healthy keys after partial failure = %v", got)
	}
}

func TestObjectStoreValidatesTemplate(t *testing.T) {
	t.Parallel()
	cluster, err := ares.NewCluster(ares.Config{
		ID: "c0", Algorithm: ares.ABD, Servers: []ares.ProcessID{"v-s1"},
	}, ares.NewSimNetwork())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	cases := map[string]ares.Config{
		"bogus-algorithm": {Algorithm: "bogus", Servers: []ares.ProcessID{"v-s1"}},
		"no-servers":      {Algorithm: ares.ABD},
		"treas-k-exceeds-n": {
			Algorithm: ares.TREAS,
			Servers:   []ares.ProcessID{"v-s1", "v-s2"},
			K:         5, Delta: 1,
		},
	}
	for name, template := range cases {
		if _, err := ares.NewObjectStore(cluster, template); err == nil {
			t.Errorf("%s: invalid template accepted", name)
		}
	}
}

func TestRepairServerPublicAPI(t *testing.T) {
	t.Parallel()
	servers := []ares.ProcessID{"rp-s1", "rp-s2", "rp-s3", "rp-s4", "rp-s5"}
	c0 := ares.Config{ID: "c0", Algorithm: ares.TREAS, Servers: servers, K: 3, Delta: 2}
	net := ares.NewSimNetwork()
	cluster, err := ares.NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ctx := context.Background()
	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValue(ctx, ares.Value("repairable")); err != nil {
		t.Fatal(err)
	}
	// A healthy server repairs to zero installs — the public wrapper wires
	// through to the TREAS repair path (loss scenarios are covered in
	// internal/treas).
	n, err := ares.RepairServer(ctx, net.Client("fixer"), c0, servers[0])
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("repaired %d on healthy server", n)
	}
}
