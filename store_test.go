package ares_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	ares "github.com/ares-storage/ares"
)

func storeFixture(t *testing.T) (*ares.ObjectStore, *ares.Cluster, []ares.ProcessID) {
	t.Helper()
	servers := []ares.ProcessID{"os-s1", "os-s2", "os-s3", "os-s4", "os-s5"}
	root := ares.Config{ID: "os/root", Algorithm: ares.ABD, Servers: servers[:3]}
	cluster, err := ares.NewCluster(root, ares.NewSimNetwork(), servers...)
	if err != nil {
		t.Fatal(err)
	}
	store, err := ares.NewObjectStore(cluster, ares.Config{
		Algorithm: ares.TREAS,
		Servers:   servers,
		K:         3,
		Delta:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return store, cluster, servers
}

func TestObjectStorePutGet(t *testing.T) {
	t.Parallel()
	store, _, _ := storeFixture(t)
	ctx := context.Background()
	if err := store.Put(ctx, "alpha", ares.Value("1")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ctx, "beta", ares.Value("2")); err != nil {
		t.Fatal(err)
	}
	v, err := store.Get(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "1" {
		t.Fatalf("alpha = %q", v)
	}
	v, err = store.Get(ctx, "beta")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "2" {
		t.Fatalf("beta = %q", v)
	}
	// Unwritten key returns the initial value.
	v, err = store.Get(ctx, "ghost")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("ghost = %q", v)
	}
	if got := len(store.Keys()); got != 3 {
		t.Fatalf("Keys() has %d entries, want 3", got)
	}
}

func TestObjectStoreConcurrentKeys(t *testing.T) {
	t.Parallel()
	store, _, _ := storeFixture(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%4)
			if err := store.Put(ctx, key, ares.Value(fmt.Sprintf("v%d", i))); err != nil {
				errs <- fmt.Errorf("put %s: %w", key, err)
				return
			}
			if _, err := store.Get(ctx, key); err != nil {
				errs <- fmt.Errorf("get %s: %w", key, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestObjectStoreReconfigureOneKey(t *testing.T) {
	t.Parallel()
	store, cluster, _ := storeFixture(t)
	ctx := context.Background()
	if err := store.Put(ctx, "movable", ares.Value("payload")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ctx, "static", ares.Value("stays")); err != nil {
		t.Fatal(err)
	}

	next := ares.Config{
		ID:        "store/movable/c1",
		Algorithm: ares.TREAS,
		Servers:   []ares.ProcessID{"os-n1", "os-n2", "os-n3", "os-n4", "os-n5"},
		K:         3,
		Delta:     4,
	}
	for _, s := range next.Servers {
		cluster.AddHost(s)
	}
	if err := store.ReconfigureKey(ctx, "movable", next, ares.ReconOptions{DirectTransfer: true}); err != nil {
		t.Fatal(err)
	}

	v, err := store.Get(ctx, "movable")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "payload" {
		t.Fatalf("movable = %q after key reconfiguration", v)
	}
	// The other key is untouched.
	v, err = store.Get(ctx, "static")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "stays" {
		t.Fatalf("static = %q", v)
	}
}

func TestObjectStoreValidatesTemplate(t *testing.T) {
	t.Parallel()
	cluster, err := ares.NewCluster(ares.Config{
		ID: "c0", Algorithm: ares.ABD, Servers: []ares.ProcessID{"v-s1"},
	}, ares.NewSimNetwork())
	if err != nil {
		t.Fatal(err)
	}
	_, err = ares.NewObjectStore(cluster, ares.Config{Algorithm: "bogus"})
	if err == nil {
		t.Fatal("invalid template accepted")
	}
}

func TestRepairServerPublicAPI(t *testing.T) {
	t.Parallel()
	servers := []ares.ProcessID{"rp-s1", "rp-s2", "rp-s3", "rp-s4", "rp-s5"}
	c0 := ares.Config{ID: "c0", Algorithm: ares.TREAS, Servers: servers, K: 3, Delta: 2}
	net := ares.NewSimNetwork()
	cluster, err := ares.NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValue(ctx, ares.Value("repairable")); err != nil {
		t.Fatal(err)
	}
	// A healthy server repairs to zero installs — the public wrapper wires
	// through to the TREAS repair path (loss scenarios are covered in
	// internal/treas).
	n, err := ares.RepairServer(ctx, net.Client("fixer"), c0, servers[0])
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("repaired %d on healthy server", n)
	}
}
