package ares

import (
	"context"
	"fmt"
	"hash/fnv"
	"testing"
	"time"
)

// newShardProbe builds a minimally-initialized store for shard-placement
// tests (no cluster needed; shard touches only s.shards).
func newShardProbe(n int) *ObjectStore {
	return &ObjectStore{shards: make([]storeShard, n)}
}

// TestShardMatchesFNV1a pins that the inlined loop computes exactly what the
// previous hash/fnv implementation did, so key→shard placement is unchanged
// across the optimization.
func TestShardMatchesFNV1a(t *testing.T) {
	t.Parallel()
	s := newShardProbe(16)
	for _, key := range []string{"", "a", "user:42", "π-κλειδί", "a-much-longer-object-key/with/segments"} {
		h := fnv.New32a()
		h.Write([]byte(key))
		want := &s.shards[h.Sum32()%uint32(len(s.shards))]
		if got := s.shard(key); got != want {
			t.Errorf("shard(%q) diverged from FNV-1a placement", key)
		}
	}
}

// TestShardZeroAllocs is the satellite assertion: the per-operation shard
// lookup allocates nothing (hash/fnv's New32a used to heap-allocate a hasher
// per call).
func TestShardZeroAllocs(t *testing.T) {
	s := newShardProbe(16)
	allocs := testing.AllocsPerRun(1000, func() {
		s.shard("benchmark-key/with-some-length")
	})
	if allocs != 0 {
		t.Fatalf("shard lookup allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkStoreShardLookup(b *testing.B) {
	s := newShardProbe(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.shard("benchmark-key/with-some-length")
	}
}

// TestClientIdleTTLEvictsOpportunistically pins the bounded client cache
// with a fake clock: entries idle past the TTL are swept as the shard is
// re-touched, at most once per TTL window, and in-flight entries survive.
func TestClientIdleTTLEvictsOpportunistically(t *testing.T) {
	t.Parallel()
	now := time.Unix(1000, 0)
	s := &ObjectStore{
		shards:  make([]storeShard, 1),
		idleTTL: time.Minute,
		now:     func() time.Time { return now },
	}
	s.shards[0].clients = map[string]*clientEntry{
		"idle":     {lastUse: now.Add(-2 * time.Minute)},
		"fresh":    {lastUse: now.Add(-time.Second)},
		"inflight": {lastUse: now.Add(-time.Hour), inflight: 1},
	}
	s.shards[0].recons = map[string]*reconEntry{
		"idle": {lastUse: now.Add(-2 * time.Minute)},
	}

	sh := &s.shards[0]
	sh.mu.Lock()
	s.sweepLocked(sh, now)
	sh.mu.Unlock()
	if _, ok := sh.clients["idle"]; ok {
		t.Fatal("idle client survived the sweep")
	}
	if _, ok := sh.recons["idle"]; ok {
		t.Fatal("idle reconfigurer survived the sweep")
	}
	if _, ok := sh.clients["fresh"]; !ok {
		t.Fatal("fresh client evicted")
	}
	if _, ok := sh.clients["inflight"]; !ok {
		t.Fatal("in-flight client evicted — tag-uniqueness guard broken")
	}

	// The sweep is amortized: within the same TTL window another pass is a
	// no-op even for newly idle entries.
	sh.clients["idle2"] = &clientEntry{lastUse: now.Add(-2 * time.Minute)}
	sh.mu.Lock()
	s.sweepLocked(sh, now.Add(time.Second))
	sh.mu.Unlock()
	if _, ok := sh.clients["idle2"]; !ok {
		t.Fatal("second sweep ran inside the same TTL window")
	}
	// Past the window it evicts again.
	now = now.Add(2 * time.Minute)
	sh.mu.Lock()
	s.sweepLocked(sh, now)
	sh.mu.Unlock()
	if _, ok := sh.clients["idle2"]; ok {
		t.Fatal("idle client survived the next-window sweep")
	}
}

// TestReconfigureKeyReusesCachedReconfigurer pins the per-key reconfigurer
// cache the adaptive controller's cadence depends on: repeated ReconfigureKey
// calls on one key must reuse the same cached *Reconfigurer (no per-call
// setup, and — more importantly — never a second live consensus proposer
// under the derived identity), and the cache stays bounded through the
// idle-TTL/EvictIdle machinery.
func TestReconfigureKeyReusesCachedReconfigurer(t *testing.T) {
	t.Parallel()
	servers := []ProcessID{"rc-s1", "rc-s2", "rc-s3", "rc-s4", "rc-s5"}
	root := Config{ID: "rc/root", Algorithm: ABD, Servers: servers[:3]}
	cluster, err := NewCluster(root, NewSimNetwork(), servers...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	store, err := NewObjectStore(cluster, Config{Algorithm: ABD, Servers: servers[:3]})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := store.Put(ctx, "k", Value("v0")); err != nil {
		t.Fatal(err)
	}

	reconFor := func(key string) *Reconfigurer {
		sh := store.shard(key)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		e, ok := sh.recons[key]
		if !ok {
			return nil
		}
		if e.inflight != 0 {
			t.Fatalf("reconfigurer inflight = %d after Reconfig returned", e.inflight)
		}
		return e.recon
	}

	walk := func(n int) {
		next := Config{
			ID:        ConfigID(fmt.Sprintf("store/k/walk%d", n)),
			Algorithm: TREAS, Servers: servers, K: 3, Delta: 8,
		}
		if err := store.ReconfigureKey(ctx, "k", next, ReconOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	walk(1)
	first := reconFor("k")
	if first == nil {
		t.Fatal("no cached reconfigurer after first ReconfigureKey")
	}
	walk(2)
	walk(3)
	if again := reconFor("k"); again != first {
		t.Fatal("ReconfigureKey rebuilt the reconfigurer instead of reusing the cache")
	}
	if v, err := store.Get(ctx, "k"); err != nil || string(v) != "v0" {
		t.Fatalf("value after walks = %q, %v", v, err)
	}

	// The cache is bounded: an explicit eviction drops the idle entry, and
	// the next reconfiguration transparently rebuilds a fresh one.
	if n := store.EvictIdle(0); n == 0 {
		t.Fatal("EvictIdle dropped nothing")
	}
	if reconFor("k") != nil {
		t.Fatal("reconfigurer survived EvictIdle(0)")
	}
	walk(4)
	if rebuilt := reconFor("k"); rebuilt == nil || rebuilt == first {
		t.Fatal("post-eviction walk did not rebuild a fresh reconfigurer")
	}
}
