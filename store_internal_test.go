package ares

import (
	"hash/fnv"
	"testing"
)

// newShardProbe builds a minimally-initialized store for shard-placement
// tests (no cluster needed; shard touches only s.shards).
func newShardProbe(n int) *ObjectStore {
	return &ObjectStore{shards: make([]storeShard, n)}
}

// TestShardMatchesFNV1a pins that the inlined loop computes exactly what the
// previous hash/fnv implementation did, so key→shard placement is unchanged
// across the optimization.
func TestShardMatchesFNV1a(t *testing.T) {
	t.Parallel()
	s := newShardProbe(16)
	for _, key := range []string{"", "a", "user:42", "π-κλειδί", "a-much-longer-object-key/with/segments"} {
		h := fnv.New32a()
		h.Write([]byte(key))
		want := &s.shards[h.Sum32()%uint32(len(s.shards))]
		if got := s.shard(key); got != want {
			t.Errorf("shard(%q) diverged from FNV-1a placement", key)
		}
	}
}

// TestShardZeroAllocs is the satellite assertion: the per-operation shard
// lookup allocates nothing (hash/fnv's New32a used to heap-allocate a hasher
// per call).
func TestShardZeroAllocs(t *testing.T) {
	s := newShardProbe(16)
	allocs := testing.AllocsPerRun(1000, func() {
		s.shard("benchmark-key/with-some-length")
	})
	if allocs != 0 {
		t.Fatalf("shard lookup allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkStoreShardLookup(b *testing.B) {
	s := newShardProbe(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.shard("benchmark-key/with-some-length")
	}
}
