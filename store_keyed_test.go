package ares_test

import (
	"context"
	"fmt"
	"testing"

	ares "github.com/ares-storage/ares"
)

// keyedFixture deploys a TREAS-template store over a counting simnet.
func keyedFixture(t *testing.T) (*ares.ObjectStore, *ares.Cluster, *ares.Network) {
	t.Helper()
	servers := []ares.ProcessID{"kf-s1", "kf-s2", "kf-s3", "kf-s4", "kf-s5"}
	root := ares.Config{ID: "kf/root", Algorithm: ares.TREAS, Servers: servers, K: 3, Delta: 8}
	net := ares.NewSimNetwork()
	cluster, err := ares.NewCluster(root, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	template := ares.Config{Algorithm: ares.TREAS, Servers: servers, K: 3, Delta: 8}
	store, err := ares.NewObjectStore(cluster, template)
	if err != nil {
		t.Fatal(err)
	}
	return store, cluster, net
}

// TestFirstTouchPerformsZeroInstallRPCs pins the tentpole invariant: the
// first operation on a fresh key triggers no installation round-trips — no
// control-service ("ctl") message crosses the wire, ever, for any number of
// fresh keys. The template registered at store construction is all the
// servers need.
func TestFirstTouchPerformsZeroInstallRPCs(t *testing.T) {
	t.Parallel()
	store, _, net := keyedFixture(t)
	ctx := context.Background()
	net.Counters().Reset()

	const keys = 32
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("fresh-%d", i)
		if err := store.Put(ctx, key, ares.Value("v-"+key)); err != nil {
			t.Fatalf("first touch of %s: %v", key, err)
		}
		if _, err := store.Get(ctx, key); err != nil {
			t.Fatal(err)
		}
	}
	if got := net.Counters().TotalMessages(ares.CtlServiceName); got != 0 {
		t.Fatalf("%d install RPCs crossed the wire for %d fresh keys, want 0", got, keys)
	}
	// The store really did traffic (this is not a dead network).
	if total := net.Counters().TotalMessages(""); total == 0 {
		t.Fatal("no traffic recorded at all; counter test is vacuous")
	}
}

// TestServiceInstancesConstantInKeys pins the hosting model: touching many
// keys grows no per-key service instances — the node-level footprint stays
// exactly what it was at deployment.
func TestServiceInstancesConstantInKeys(t *testing.T) {
	t.Parallel()
	store, cluster, _ := keyedFixture(t)
	ctx := context.Background()
	before := cluster.ServiceInstances()

	const keys = 64
	for i := 0; i < keys; i++ {
		if err := store.Put(ctx, fmt.Sprintf("grow-%d", i), ares.Value("x")); err != nil {
			t.Fatal(err)
		}
	}
	after := cluster.ServiceInstances()
	if after != before {
		t.Fatalf("service instances grew %d → %d across %d keys; hosting must be O(1) in keys", before, after, keys)
	}
}

// TestSecondStoreConflictingTemplateRejected: two ObjectStores on one
// cluster must not silently alias keys onto the first store's template —
// same name + different template fails construction; a distinct name (or an
// identical template) works.
func TestSecondStoreConflictingTemplateRejected(t *testing.T) {
	t.Parallel()
	_, cluster, _ := keyedFixture(t)
	servers := []ares.ProcessID{"kf-s1", "kf-s2", "kf-s3"}
	abdTemplate := ares.Config{Algorithm: ares.ABD, Servers: servers}

	if _, err := ares.NewObjectStore(cluster, abdTemplate); err == nil {
		t.Fatal("conflicting template under the default store name accepted")
	}
	second, err := ares.NewObjectStore(cluster, abdTemplate, ares.WithStoreName("abd-store"))
	if err != nil {
		t.Fatalf("distinct-name store rejected: %v", err)
	}
	ctx := context.Background()
	if err := second.Put(ctx, "k", ares.Value("v")); err != nil {
		t.Fatal(err)
	}
	got, err := second.Get(ctx, "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("second store read %q err=%v", got, err)
	}
}

// TestInstallRejectsEmptyConfiguration: a configuration with no members
// must fail installation up front, not dissolve into a no-op.
func TestInstallRejectsEmptyConfiguration(t *testing.T) {
	t.Parallel()
	_, cluster, _ := keyedFixture(t)
	if err := cluster.InstallConfiguration(ares.Config{ID: "empty", Algorithm: ares.ABD}); err == nil {
		t.Fatal("memberless configuration installed as a silent no-op")
	}
}

// TestKeyedReconfigureStillIndependent exercises the reconfiguration path
// under keyed hosting: one key migrates to a new configuration while another
// key's data stays put and both remain readable.
func TestKeyedReconfigureStillIndependent(t *testing.T) {
	t.Parallel()
	store, _, _ := keyedFixture(t)
	ctx := context.Background()
	if err := store.Put(ctx, "stay", ares.Value("stay-v1")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ctx, "move", ares.Value("move-v1")); err != nil {
		t.Fatal(err)
	}
	next := ares.Config{
		ID:        "kf/move/c1",
		Algorithm: ares.ABD,
		Servers:   []ares.ProcessID{"kf-n1", "kf-n2", "kf-n3"},
	}
	if err := store.ReconfigureKey(ctx, "move", next, ares.ReconOptions{}); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{"stay": "stay-v1", "move": "move-v1"} {
		got, err := store.Get(ctx, key)
		if err != nil {
			t.Fatalf("read %s after reconfig: %v", key, err)
		}
		if string(got) != want {
			t.Fatalf("%s = %q, want %q", key, got, want)
		}
	}
	// The migrated key keeps working for writes against the new chain.
	if err := store.Put(ctx, "move", ares.Value("move-v2")); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(ctx, "move")
	if err != nil || string(got) != "move-v2" {
		t.Fatalf("post-migration write: %q err=%v", got, err)
	}
}
