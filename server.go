package ares

import (
	"fmt"
	"time"

	"github.com/ares-storage/ares/internal/core"
	"github.com/ares-storage/ares/internal/keystate"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/transport"
)

// Server is a standalone ARES server process listening on TCP: the
// multi-process deployment unit started by cmd/ares-server. It hosts the
// per-configuration services (store, reconfiguration pointer, consensus
// acceptor) and a control service through which reconfigurers provision new
// configurations.
type Server struct {
	host *core.Host
	tcp  *transport.TCPServer
	out  *transport.TCPClient
	// admin caches per-key reconfiguration clients for the ops surface's
	// admin verbs (see ops.go). Zero value ready; guarded by its own lock.
	admin opsAdmin
}

// AddressBook resolves process IDs to TCP addresses. Multi-process
// deployments distribute a static book (flag/file) to every process.
type AddressBook = map[ProcessID]string

// TCPOption tunes the TCP data plane (wire format, dial timeout, handler
// bounds, queue depths) of NewServer and NewTCPClient.
type TCPOption = transport.TCPOption

// WireFormat selects the TCP frame encoding: WireBinary (compact
// length-prefixed framing, the default) or WireGob (legacy gob streams).
// Every process of a deployment must use the same format.
type WireFormat = transport.WireFormat

const (
	// WireBinary is the compact length-prefixed binary wire format.
	WireBinary = transport.WireBinary
	// WireGob is the legacy gob stream wire format.
	WireGob = transport.WireGob
)

// WithWireFormat selects the wire format for a server or client.
func WithWireFormat(f WireFormat) TCPOption { return transport.WithWireFormat(f) }

// WithBatching toggles cross-key envelope coalescing on the TCP data plane
// (default on): a connection's writer packs every queued envelope for its
// peer — across keys and phases — into batched frames and flushes once per
// burst. Disable it for the unbatched baseline (ares-server -nobatch): one
// frame and one flush per envelope.
func WithBatching(enabled bool) TCPOption { return transport.WithBatching(enabled) }

// WithBatchLimits caps one batched frame at maxEnvelopes envelopes and
// approximately maxBytes of payload (defaults 64 and 128 KiB).
func WithBatchLimits(maxEnvelopes, maxBytes int) TCPOption {
	return transport.WithBatchLimits(maxEnvelopes, maxBytes)
}

// WithFlushInterval switches the data-plane writers from flush-per-burst to
// timer-paced flushing: an open batch is held until a WithBatchLimits cap is
// hit or d has elapsed since its first envelope. Bounded added latency (at
// most d per op) buys bigger batches under trickling load; zero (the
// default) keeps the burst-drain behavior.
func WithFlushInterval(d time.Duration) TCPOption { return transport.WithFlushInterval(d) }

// ParseWireFormat converts a flag value ("binary", "gob") into a WireFormat.
func ParseWireFormat(s string) (WireFormat, error) { return transport.ParseWireFormat(s) }

// Durability configures the server's persistent state. A zero Dir leaves the
// server in-memory (the pre-durability behavior); a non-zero Dir makes every
// acknowledged mutation durable under it — write-ahead logged before the
// reply leaves, snapshotted in the background, and recovered on the next
// start before the listener accepts its first connection.
type Durability struct {
	// Dir is the server's data directory, created if missing. Each server
	// process needs its own.
	Dir string
	// Fsync syncs the WAL on every group commit (the crash-safe default when
	// durability is on). Disabling it trades power-loss safety for
	// throughput: acknowledged writes survive a process kill but not a
	// machine crash.
	Fsync bool
	// NoFsyncCoalesce disables cross-stripe fsync batching (on by default
	// whenever Fsync is): with coalescing, stripe group commits hand their
	// barriers to a shared coalescer that syncs each log file once per
	// window, so concurrent stripes share fsync cost instead of each paying
	// one barrier per burst. Acknowledgments still strictly follow the sync;
	// disabling only restores the inline sync-per-burst baseline.
	NoFsyncCoalesce bool
}

// RecoveryStats describes what a server start replayed from its data
// directory.
type RecoveryStats = keystate.RecoveryStats

// NewServer starts an ARES server for process id on addr ("host:port"; use
// port 0 to auto-assign and discover via Addr). book must cover every server
// this process will talk to (peers of its configurations). Configurations
// are installed remotely by reconfigurers through the control service, or
// locally with Install.
func NewServer(id ProcessID, addr string, book AddressBook, opts ...TCPOption) (*Server, error) {
	s, _, err := NewServerWithDurability(id, addr, book, Durability{}, opts...)
	return s, err
}

// NewServerWithDurability starts an ARES server with a durability layer
// rooted at dur.Dir (no layer when dur.Dir is empty; see Durability).
// Recovery — snapshot restore plus log-tail replay — completes before the
// TCP listener starts, so the node never answers an envelope from
// pre-recovery state. The returned stats describe the recovery pass.
func NewServerWithDurability(id ProcessID, addr string, book AddressBook, dur Durability, opts ...TCPOption) (*Server, RecoveryStats, error) {
	out := transport.NewTCPClient(id, transport.StaticBook(book), opts...)
	host := core.NewHost(node.New(id), out)
	var stats RecoveryStats
	if dur.Dir != "" {
		var err error
		stats, err = host.EnableDurability(dur.Dir,
			keystate.WithFsync(dur.Fsync), keystate.WithFsyncCoalescing(!dur.NoFsyncCoalesce))
		if err != nil {
			out.Close()
			return nil, stats, fmt.Errorf("ares: starting server %s: %w", id, err)
		}
	}
	tcp, err := transport.NewTCPServer(id, addr, host.Node(), opts...)
	if err != nil {
		_ = host.Close()
		out.Close()
		return nil, stats, fmt.Errorf("ares: starting server %s: %w", id, err)
	}
	return &Server{host: host, tcp: tcp, out: out}, stats, nil
}

// Addr returns the server's bound TCP address.
func (s *Server) Addr() string { return s.tcp.Addr() }

// ID returns the server's process ID.
func (s *Server) ID() ProcessID { return s.host.ID() }

// Install provisions a configuration's services locally (bootstrap of c0;
// subsequent configurations usually arrive through reconfigurers).
func (s *Server) Install(c Config) error {
	return s.host.InstallConfiguration(c)
}

// Close stops the listener and all connections, then flushes and closes the
// durability layer (when one is attached).
func (s *Server) Close() error {
	s.out.Close()
	tcpErr := s.tcp.Close()
	if err := s.host.Close(); err != nil {
		return err
	}
	return tcpErr
}

// NewTCPClient returns a transport client for a client-side process (reader,
// writer, or reconfigurer) resolving servers through book. Pass the result
// to NewRemoteClient or NewRemoteReconfigurer.
func NewTCPClient(self ProcessID, book AddressBook, opts ...TCPOption) *transport.TCPClient {
	return transport.NewTCPClient(self, transport.StaticBook(book), opts...)
}
