// Command ares-server runs one ARES server process over TCP — the unit of a
// local multi-process deployment.
//
// Usage:
//
//	ares-server -id s1 -listen 127.0.0.1:7001 \
//	  -peers "s1=127.0.0.1:7001,s2=127.0.0.1:7002,s3=127.0.0.1:7003" \
//	  -bootstrap "id=c0;alg=treas;servers=s1,s2,s3;k=2;delta=4"
//
// The -bootstrap flag installs the initial configuration locally; later
// configurations are provisioned remotely by reconfiguration clients through
// the control service. Omit -bootstrap for spare servers that will join
// through a future reconfiguration.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	ares "github.com/ares-storage/ares"
	"github.com/ares-storage/ares/internal/ops"
	"github.com/ares-storage/ares/internal/spec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		id        = flag.String("id", "", "process ID of this server (required)")
		listen    = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		peers     = flag.String("peers", "", "address book: id=addr,id=addr,... (required)")
		bootstrap = flag.String("bootstrap", "", "initial configuration spec (optional; see package doc)")
		wire      = flag.String("wire", "binary", "wire format: binary (compact framing) or gob (legacy); must match peers and clients")
		nobatch   = flag.Bool("nobatch", false, "disable cross-key envelope coalescing (one frame per envelope); the bench's unbatched baseline")
		dataDir   = flag.String("data-dir", "", "data directory for WAL + snapshots (empty = in-memory server, no crash recovery)")
		fsync     = flag.Bool("fsync", true, "fsync the WAL on every group commit (only meaningful with -data-dir)")
		coalesce  = flag.Bool("fsync-coalesce", true, "batch fsync barriers across WAL stripes (only meaningful with -fsync); false restores sync-per-burst")
		opsAddr   = flag.String("ops-addr", "", "ops HTTP listen address: /metrics, /metrics.json, pprof, /healthz, and the /admin API (empty = disabled)")
	)
	flag.Parse()
	if *id == "" || *peers == "" {
		flag.Usage()
		return fmt.Errorf("-id and -peers are required")
	}

	book, err := spec.ParseBook(*peers)
	if err != nil {
		return err
	}
	wireFormat, err := ares.ParseWireFormat(*wire)
	if err != nil {
		return err
	}

	// The ops listener binds before recovery so probes can distinguish a
	// server replaying a long WAL (healthz 503 "starting", metrics live)
	// from a dead one. Readiness flips when the data plane is up.
	var bindOps func(*ares.Server)
	if *opsAddr != "" {
		surface, bind := ares.NewOpsServer()
		bound, stopOps, err := ops.Listen(*opsAddr, surface)
		if err != nil {
			return err
		}
		defer stopOps()
		bindOps = bind
		log.Printf("ops surface on http://%s", bound)
	}

	srv, stats, err := ares.NewServerWithDurability(ares.ProcessID(*id), *listen, book,
		ares.Durability{Dir: *dataDir, Fsync: *fsync, NoFsyncCoalesce: !*coalesce},
		ares.WithWireFormat(wireFormat), ares.WithBatching(!*nobatch))
	if err != nil {
		return err
	}
	defer func() {
		if err := srv.Close(); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	if *dataDir != "" {
		log.Printf("recovered from %s: %d snapshot states, %d installs, %d retires, %d applies (%d skipped, %d torn segments truncated)",
			*dataDir, stats.SnapshotStates, stats.Installs, stats.Retires, stats.Applies, stats.Skipped, stats.TornSegments)
	}
	log.Printf("ares-server %s listening on %s", srv.ID(), srv.Addr())

	if *bootstrap != "" {
		c0, err := spec.Parse(*bootstrap)
		if err != nil {
			return err
		}
		if err := srv.Install(c0); err != nil {
			return err
		}
		log.Printf("installed bootstrap configuration %s (%s, n=%d)", c0.ID, c0.Algorithm, c0.N())
	}
	if bindOps != nil {
		bindOps(srv)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("ares-server %s shutting down", srv.ID())
	return nil
}
