// Command ares-cli is the client companion of ares-server: it performs a
// write, read, or reconfiguration against a running multi-process
// deployment.
//
// Usage:
//
//	ares-cli -id w1 -peers "s1=...,s2=...,s3=..." \
//	  -root "id=c0;alg=treas;servers=s1,s2,s3;k=2;delta=4" \
//	  write "hello world"
//
//	ares-cli -id r1 -peers ... -root ... read
//
//	ares-cli -id g1 -peers ... -root ... -direct \
//	  reconfig "id=c1;alg=treas;servers=s4,s5,s6;k=2;delta=4"
//
// Against a server started with -ops-addr, the ops verbs talk to the admin
// HTTP API instead of the data plane (no -peers/-root needed):
//
//	ares-cli -ops 127.0.0.1:9090 metrics
//	ares-cli -ops 127.0.0.1:9090 chain k1
//	ares-cli -ops 127.0.0.1:9090 keystate k1
//	ares-cli -ops 127.0.0.1:9090 reconfigure k1 "id=c1-k1;alg=abd;servers=s1,s2,s3"
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	ares "github.com/ares-storage/ares"
	"github.com/ares-storage/ares/internal/spec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		id      = flag.String("id", "cli", "process ID of this client")
		peers   = flag.String("peers", "", "address book: id=addr,... (required)")
		root    = flag.String("root", "", "bootstrap configuration spec (required)")
		direct  = flag.Bool("direct", false, "use §5 direct state transfer for reconfig")
		timeout = flag.Duration("timeout", 30*time.Second, "operation timeout")
		opsAddr = flag.String("ops", "", "ops HTTP address of a server started with -ops-addr (for metrics|chain|keystate|reconfigure)")
	)
	flag.Parse()

	// The ops verbs go over the admin HTTP API and need only -ops.
	switch flag.Arg(0) {
	case "metrics", "chain", "keystate", "reconfigure":
		if *opsAddr == "" {
			return fmt.Errorf("%s requires -ops (the server's -ops-addr address)", flag.Arg(0))
		}
		return runOps(*opsAddr, *timeout, flag.Args())
	}

	if *peers == "" || *root == "" || flag.NArg() < 1 {
		flag.Usage()
		return fmt.Errorf("-peers, -root and an operation (write|read|reconfig) are required")
	}

	book, err := spec.ParseBook(*peers)
	if err != nil {
		return err
	}
	c0, err := spec.Parse(*root)
	if err != nil {
		return err
	}
	rpc := ares.NewTCPClient(ares.ProcessID(*id), book)
	defer rpc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch op := flag.Arg(0); op {
	case "write":
		if flag.NArg() < 2 {
			return fmt.Errorf("write requires a value argument")
		}
		client, err := ares.NewRemoteClient(ares.ProcessID(*id), c0, rpc)
		if err != nil {
			return err
		}
		t, err := client.Write(ctx, ares.Value(flag.Arg(1)))
		if err != nil {
			return err
		}
		fmt.Printf("ok tag=%v\n", t)
	case "read":
		client, err := ares.NewRemoteClient(ares.ProcessID(*id), c0, rpc)
		if err != nil {
			return err
		}
		pair, err := client.Read(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("tag=%v value=%q\n", pair.Tag, string(pair.Value))
	case "reconfig":
		if flag.NArg() < 2 {
			return fmt.Errorf("reconfig requires a configuration spec argument")
		}
		next, err := spec.Parse(flag.Arg(1))
		if err != nil {
			return err
		}
		g, err := ares.NewRemoteReconfigurer(ares.ProcessID(*id), c0, rpc, ares.ReconOptions{DirectTransfer: *direct})
		if err != nil {
			return err
		}
		installed, err := g.Reconfig(ctx, next)
		if err != nil {
			return err
		}
		fmt.Printf("ok installed=%s sequence=%v\n", installed.ID, g.Sequence())
	default:
		return fmt.Errorf("unknown operation %q (want write|read|reconfig, or an ops verb with -ops)", op)
	}
	return nil
}

// runOps executes one admin-API verb against a server's ops surface.
func runOps(addr string, timeout time.Duration, args []string) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: timeout}

	get := func(path string, q url.Values) ([]byte, int, error) {
		u := base + path
		if len(q) > 0 {
			u += "?" + q.Encode()
		}
		resp, err := client.Get(u)
		if err != nil {
			return nil, 0, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return body, resp.StatusCode, err
	}

	verb := args[0]
	switch verb {
	case "metrics":
		body, status, err := get("/metrics", nil)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("metrics: HTTP %d", status)
		}
		_, err = os.Stdout.Write(body)
		return err
	case "chain", "keystate":
		if len(args) < 2 {
			return fmt.Errorf("%s requires a key argument", verb)
		}
		body, _, err := get("/admin/"+verb, url.Values{"key": {args[1]}})
		if err != nil {
			return err
		}
		return printAdminResult(body)
	case "reconfigure":
		if len(args) < 3 {
			return fmt.Errorf("reconfigure requires key and spec arguments")
		}
		resp, err := client.PostForm(base+"/admin/reconfigure",
			url.Values{"key": {args[1]}, "spec": {args[2]}})
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		return printAdminResult(body)
	}
	return fmt.Errorf("unknown ops verb %q", verb)
}

// printAdminResult renders one admin verb response: the result JSON
// (indented) on success, the error message as a failure otherwise.
func printAdminResult(body []byte) error {
	var vr struct {
		OK     bool            `json:"ok"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &vr); err != nil {
		return fmt.Errorf("malformed admin response %q: %w", body, err)
	}
	if !vr.OK {
		return fmt.Errorf("admin: %s", vr.Error)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, vr.Result, "", "  "); err != nil {
		return err
	}
	fmt.Println(pretty.String())
	return nil
}
