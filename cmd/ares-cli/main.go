// Command ares-cli is the client companion of ares-server: it performs a
// write, read, or reconfiguration against a running multi-process
// deployment.
//
// Usage:
//
//	ares-cli -id w1 -peers "s1=...,s2=...,s3=..." \
//	  -root "id=c0;alg=treas;servers=s1,s2,s3;k=2;delta=4" \
//	  write "hello world"
//
//	ares-cli -id r1 -peers ... -root ... read
//
//	ares-cli -id g1 -peers ... -root ... -direct \
//	  reconfig "id=c1;alg=treas;servers=s4,s5,s6;k=2;delta=4"
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	ares "github.com/ares-storage/ares"
	"github.com/ares-storage/ares/internal/spec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		id      = flag.String("id", "cli", "process ID of this client")
		peers   = flag.String("peers", "", "address book: id=addr,... (required)")
		root    = flag.String("root", "", "bootstrap configuration spec (required)")
		direct  = flag.Bool("direct", false, "use §5 direct state transfer for reconfig")
		timeout = flag.Duration("timeout", 30*time.Second, "operation timeout")
	)
	flag.Parse()
	if *peers == "" || *root == "" || flag.NArg() < 1 {
		flag.Usage()
		return fmt.Errorf("-peers, -root and an operation (write|read|reconfig) are required")
	}

	book, err := spec.ParseBook(*peers)
	if err != nil {
		return err
	}
	c0, err := spec.Parse(*root)
	if err != nil {
		return err
	}
	rpc := ares.NewTCPClient(ares.ProcessID(*id), book)
	defer rpc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch op := flag.Arg(0); op {
	case "write":
		if flag.NArg() < 2 {
			return fmt.Errorf("write requires a value argument")
		}
		client, err := ares.NewRemoteClient(ares.ProcessID(*id), c0, rpc)
		if err != nil {
			return err
		}
		t, err := client.Write(ctx, ares.Value(flag.Arg(1)))
		if err != nil {
			return err
		}
		fmt.Printf("ok tag=%v\n", t)
	case "read":
		client, err := ares.NewRemoteClient(ares.ProcessID(*id), c0, rpc)
		if err != nil {
			return err
		}
		pair, err := client.Read(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("tag=%v value=%q\n", pair.Tag, string(pair.Value))
	case "reconfig":
		if flag.NArg() < 2 {
			return fmt.Errorf("reconfig requires a configuration spec argument")
		}
		next, err := spec.Parse(flag.Arg(1))
		if err != nil {
			return err
		}
		g, err := ares.NewRemoteReconfigurer(ares.ProcessID(*id), c0, rpc, ares.ReconOptions{DirectTransfer: *direct})
		if err != nil {
			return err
		}
		installed, err := g.Reconfig(ctx, next)
		if err != nil {
			return err
		}
		fmt.Printf("ok installed=%s sequence=%v\n", installed.ID, g.Sequence())
	default:
		return fmt.Errorf("unknown operation %q (want write|read|reconfig)", op)
	}
	return nil
}
