package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	ares "github.com/ares-storage/ares"
	"github.com/ares-storage/ares/internal/benchutil"
)

// The adaptive suite measures the tentpole claim end to end: the workload
// drifts mid-run from uniformly small-and-hot to per-key heterogeneous —
// half the keys flip to large write-heavy values while the other half stay
// small and hot. After the flip no single static [algorithm, n, k] serves
// both key groups: narrow ABD pays full-value transfers on the large keys,
// a wide TREAS pays extra quorum latency on the small ones. A store whose
// per-key configuration is driven by the telemetry controller serves each
// key with its specialist. Each leg runs the identical workload on an
// isolated cluster over the same bandwidth-modelled network; the only
// variable is who picks the configurations.
const (
	adaptiveKeys = 8
	// Small-hot traffic: quorum round-trips dominate, so a narrow
	// full-replication ABD wins.
	adaptiveSmallBytes = 64
	adaptiveP1Reads    = 0.9
	// Large write-heavy traffic: transfer time dominates (the network
	// charges per byte), so a wide erasure code moving ~size/k per server
	// wins.
	adaptiveLargeBytes = 64 << 10
	adaptiveP2Reads    = 0.1
	// adaptivePerByte is the simulated per-byte transfer cost: 1µs/B makes a
	// 64KiB full-replica transfer ~66ms against a ~22ms coded shard.
	adaptivePerByte = time.Microsecond
)

// largeKey reports whether key index i joins the large/write-heavy group
// after the phase flip (the odd half; even keys stay small and hot).
func largeKey(i int) bool { return i%2 == 1 }

// adaptiveLeg is one contender's outcome over the drifting workload.
type adaptiveLeg struct {
	Name       string  `json:"name"`
	Ops        int64   `json:"ops"`
	Errors     int64   `json:"errors"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Phase1Ops  int64   `json:"phase1_ops"`
	Phase2Ops  int64   `json:"phase2_ops"`
	Phase1Rate float64 `json:"phase1_ops_per_sec"`
	Phase2Rate float64 `json:"phase2_ops_per_sec"`
	AutoMoves  int64   `json:"auto_moves,omitempty"`
	// Final controller classes for one key from each group — the small-hot
	// group should settle on SmallHot, the flipped group on LargeCold.
	FinalClassSmall string `json:"final_class_small_key,omitempty"`
	FinalClassLarge string `json:"final_class_large_key,omitempty"`
	Description     string `json:"description"`
}

// adaptiveSummary is the BENCH_adaptive.json artifact: the controller leg
// against every static leg, plus the headline ratio CI asserts on.
type adaptiveSummary struct {
	Generated     string        `json:"generated"`
	Suite         string        `json:"suite"`
	DurationMS    int64         `json:"duration_ms_per_leg"`
	Workers       int           `json:"workers"`
	Keys          int           `json:"keys"`
	Seed          int64         `json:"seed"`
	Legs          []adaptiveLeg `json:"legs"`
	BestStatic    string        `json:"best_static"`
	BestStaticOps float64       `json:"best_static_ops_per_sec"`
	ControllerOps float64       `json:"controller_ops_per_sec"`
	// AdaptiveGain is controller ops/s ÷ best static ops/s — ≥ 1 means
	// self-driving reconfiguration beat every fixed choice.
	AdaptiveGain float64 `json:"adaptive_gain"`
}

type adaptiveSuiteParams struct {
	duration time.Duration
	workers  int
	seed     int64
	jsonPath string
}

// adaptiveServers names the suite's five servers under a leg prefix.
func adaptiveServers(prefix string, n int) []ares.ProcessID {
	out := make([]ares.ProcessID, n)
	for i := range out {
		out[i] = ares.ProcessID(fmt.Sprintf("%s-s%d", prefix, i+1))
	}
	return out
}

func adaptiveABD(prefix string, n int) ares.Config {
	return ares.Config{Algorithm: ares.ABD, Servers: adaptiveServers(prefix, n)}
}

func adaptiveTREAS(prefix string, n, k int) ares.Config {
	return ares.Config{Algorithm: ares.TREAS, Servers: adaptiveServers(prefix, n), K: k, Delta: 32}
}

// runAdaptiveLeg deploys an isolated cluster + store (adaptive or static)
// and drives the two-phase drifting workload against it.
func runAdaptiveLeg(name, desc string, p adaptiveSuiteParams, template ares.Config, storeOpts ...ares.StoreOption) (adaptiveLeg, error) {
	leg := adaptiveLeg{Name: name, Description: desc}
	root := template
	root.ID = ares.ConfigID("bench-adaptive-" + name + "/root")
	net := ares.NewSimNetwork(
		ares.WithDelayRange(time.Millisecond, 4*time.Millisecond),
		ares.WithBandwidth(adaptivePerByte),
		ares.WithSeed(p.seed),
	)
	cluster, err := ares.NewCluster(root, net)
	if err != nil {
		return leg, err
	}
	defer cluster.Close()
	store, err := ares.NewObjectStore(cluster, template, storeOpts...)
	if err != nil {
		return leg, err
	}
	defer store.Close()

	ctx := context.Background()
	keys := make([]string, adaptiveKeys)
	small := make(ares.Value, adaptiveSmallBytes)
	large := make(ares.Value, adaptiveLargeBytes)
	for i := range keys {
		keys[i] = fmt.Sprintf("ad-%03d", i)
		// Pre-touch outside the timed window so phase-1 reads hit real state.
		if err := store.Put(ctx, keys[i], small); err != nil {
			return leg, fmt.Errorf("pre-touch %s: %w", keys[i], err)
		}
	}

	var phase1Ops, phase2Ops, errs atomic.Int64
	start := time.Now()
	flip := start.Add(p.duration / 2)
	deadline := start.Add(p.duration)
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(p.seed + int64(w)*7919))
			for {
				now := time.Now()
				if !now.Before(deadline) {
					return
				}
				phase2 := !now.Before(flip)
				ki := rng.Intn(len(keys))
				key := keys[ki]
				// After the flip only the odd keys turn large and
				// write-heavy; even keys keep their small-hot traffic.
				readP, value := adaptiveP1Reads, small
				if phase2 && largeKey(ki) {
					readP, value = adaptiveP2Reads, large
				}
				var err error
				if rng.Float64() < readP {
					_, err = store.Get(ctx, key)
				} else {
					err = store.Put(ctx, key, value)
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				// Ops completing after the deadline don't count: rates are
				// per fixed wall-clock window, so a single slow tail op
				// can't skew one leg's denominator.
				if time.Now().After(deadline) {
					return
				}
				if phase2 {
					phase2Ops.Add(1)
				} else {
					phase1Ops.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	half := (p.duration / 2).Seconds()
	leg.Phase1Ops = phase1Ops.Load()
	leg.Phase2Ops = phase2Ops.Load()
	leg.Ops = leg.Phase1Ops + leg.Phase2Ops
	leg.Errors = errs.Load()
	leg.OpsPerSec = float64(leg.Ops) / p.duration.Seconds()
	leg.Phase1Rate = float64(leg.Phase1Ops) / half
	leg.Phase2Rate = float64(leg.Phase2Ops) / half
	leg.AutoMoves = store.AdaptiveMoves()
	if leg.AutoMoves > 0 {
		leg.FinalClassSmall = store.AdaptiveClass(keys[0]).String()
		leg.FinalClassLarge = store.AdaptiveClass(keys[1]).String()
	}
	return leg, nil
}

// runAdaptiveSuite runs the controller leg and every static leg over the
// identical drifting workload and writes BENCH_adaptive.json.
func runAdaptiveSuite(p adaptiveSuiteParams) error {
	if p.workers < 1 {
		p.workers = 8
	}
	if p.duration <= 0 {
		p.duration = 8 * time.Second
	}

	adaptiveTemplate := adaptiveTREAS("ad", 5, 3)
	spec := ares.AdaptiveSpec{
		Interval: 100 * time.Millisecond,
		Policy: ares.AdaptivePolicy{
			SmallObjectBytes: 512,
			LargeObjectBytes: 4 << 10,
			HotOps:           4,
			ConfirmWindows:   2,
			Cooldown:         300 * time.Millisecond,
			MaxMovesPerTick:  adaptiveKeys,
		},
		Profiles: map[ares.AdaptiveClass]ares.Config{
			ares.ClassDefault:   adaptiveTREAS("ad", 5, 3),
			ares.ClassSmallHot:  {Algorithm: ares.ABD, Servers: adaptiveServers("ad", 5)[:3]},
			ares.ClassLargeCold: adaptiveTREAS("ad", 5, 3),
			ares.ClassFaulty:    adaptiveABD("ad", 5),
		},
		Recon: ares.ReconOptions{DirectTransfer: true},
	}

	type legSpec struct {
		name, desc string
		template   ares.Config
		opts       []ares.StoreOption
	}
	legs := []legSpec{
		{"adaptive", "telemetry controller: starts TREAS [5,3], follows the workload", adaptiveTemplate,
			[]ares.StoreOption{ares.WithAdaptive(spec)}},
		{"static-abd3", "fixed ABD n=3 (the small-hot specialist)", adaptiveABD("st3", 3), nil},
		{"static-abd5", "fixed ABD n=5 (max redundancy)", adaptiveABD("st5", 5), nil},
		{"static-treas53", "fixed TREAS [5,3] (the large-value specialist)", adaptiveTREAS("stt", 5, 3), nil},
	}

	summary := adaptiveSummary{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Suite:      "adaptive-vs-static",
		DurationMS: p.duration.Milliseconds(),
		Workers:    p.workers,
		Keys:       adaptiveKeys,
		Seed:       p.seed,
	}
	fmt.Printf("\n== ADAPTIVE: controller vs static configurations over a drifting workload\n")
	fmt.Printf("   phase 1 (%v): all keys %dB values, %.0f%% reads — phase 2 (%v): odd keys flip to %dKiB, %.0f%%reads; even keys stay small-hot\n\n",
		p.duration/2, adaptiveSmallBytes, adaptiveP1Reads*100, p.duration/2, adaptiveLargeBytes>>10, adaptiveP2Reads*100)
	table := benchutil.NewTable("leg", "ops", "errs", "ops/s", "phase1 ops/s", "phase2 ops/s", "moves")
	for _, ls := range legs {
		leg, err := runAdaptiveLeg(ls.name, ls.desc, p, ls.template, ls.opts...)
		if err != nil {
			return fmt.Errorf("adaptive suite: leg %s: %w", ls.name, err)
		}
		table.AddRow(leg.Name, leg.Ops, leg.Errors,
			fmt.Sprintf("%.0f", leg.OpsPerSec), fmt.Sprintf("%.0f", leg.Phase1Rate),
			fmt.Sprintf("%.0f", leg.Phase2Rate), leg.AutoMoves)
		summary.Legs = append(summary.Legs, leg)
	}
	table.Render(os.Stdout)

	statics := summary.Legs[1:]
	sort.Slice(statics, func(i, j int) bool { return statics[i].OpsPerSec > statics[j].OpsPerSec })
	summary.BestStatic = statics[0].Name
	summary.BestStaticOps = statics[0].OpsPerSec
	summary.ControllerOps = summary.Legs[0].OpsPerSec
	if summary.BestStaticOps > 0 {
		summary.AdaptiveGain = summary.ControllerOps / summary.BestStaticOps
	}
	fmt.Printf("\n  controller %.0f ops/s vs best static (%s) %.0f ops/s → adaptive gain %.2fx\n",
		summary.ControllerOps, summary.BestStatic, summary.BestStaticOps, summary.AdaptiveGain)
	if summary.Legs[0].AutoMoves == 0 {
		return fmt.Errorf("adaptive suite: the controller never moved a key — telemetry loop is dead")
	}

	if p.jsonPath != "" {
		data, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(p.jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  → %s\n", p.jsonPath)
	}
	return nil
}
