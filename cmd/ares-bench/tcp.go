package main

// The -tcp suite: the real-network counterpart of -store. It spawns an
// actual multi-process ares-server cluster on loopback TCP (one OS process
// per server, wired through the same -peers/-bootstrap flags an operator
// would use), then drives it through named phases and emits BENCH_tcp.json.
//
// The suite definition follows golang/benchmarks bent's suites.toml shape:
// a versioned suite with named entries and their defaults, so the JSON
// trajectory stays comparable run over run:
//
//   - smoke-rw: one write+read on the bootstrap register, end to end.
//   - pipelining: concurrent Invokes multiplexed over ONE connection; the
//     speedup of N workers over 1 is the evidence that the data plane
//     pipelines instead of serializing on a per-connection lock.
//   - codec: an identical fixed operation mix against a binary-wire cluster
//     and a gob-wire cluster, attributing client-side wire bytes per
//     operation to each format via transport.CodecStats. The binary codec
//     must come out smaller.
//   - workloads: the store workload phases (uniform/zipfian, read/write
//     mixes) from the simnet suite, over real sockets.
//   - coalescing: multi-key MultiPut/MultiGet sweeps — per-key put-data and
//     get-data DAP fan-outs with every key in flight at once — against a
//     batched cluster and a -nobatch baseline, in interleaved timed slices;
//     batched ops/s above unbatched is the evidence the FrameBatch writer
//     path pays off when many keys share a connection.
//   - fast-read: keys written once, then read repeatedly; the ReadRounds
//     counters must show ~1 data round per read (the one-round fast path
//     skipping the put-data write-back).

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ares "github.com/ares-storage/ares"
	"github.com/ares-storage/ares/internal/abd"
	"github.com/ares-storage/ares/internal/benchutil"
	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/core"
	"github.com/ares-storage/ares/internal/obs"
	"github.com/ares-storage/ares/internal/spec"
	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
	"github.com/ares-storage/ares/internal/workload"
)

// tcpSuiteVersion versions the BENCH_tcp.json schema (bent-style: the suite
// is a name plus a version, so downstream tooling can detect shape changes).
// v2 added per-phase obs-registry counter deltas ("phases") and the
// mid-bench ops-surface scrape (METRICS_snapshot.json).
const tcpSuiteVersion = 2

// tcpSuiteParams parameterizes one -tcp invocation.
type tcpSuiteParams struct {
	servers   int
	duration  time.Duration
	workers   int
	keys      int
	valSize   int
	seed      int64
	jsonPath  string
	serverBin string
	verbose   bool
}

// tcpWorkloads is the named workload matrix the suite runs over real
// sockets — a subset of the simnet storeSuite (real RTTs make each op ~two
// orders of magnitude slower than simnet, so the suite keeps the three
// mixes that span the space).
var tcpWorkloads = []storeWorkload{
	{Name: "tcp-read-heavy-uniform", WriteRatio: 0.05},
	{Name: "tcp-balanced-zipfian", WriteRatio: 0.50, Theta: 0.99},
	{Name: "tcp-write-heavy-uniform", WriteRatio: 0.95},
}

// tcpPipelineWorkers is the concurrency of the pipelining phase's parallel
// leg (its sequential leg is always 1 worker).
const tcpPipelineWorkers = 32

// codecOpsPerKind fixes the operation count of the codec-comparison phase:
// identical traffic against both wire formats, so bytes/op is attributable
// to the codec alone.
const codecOpsPerKind = 300

// tcpSmokeResult records the end-to-end write/read on the bootstrap
// register.
type tcpSmokeResult struct {
	WriteMicros float64 `json:"write_us"`
	ReadMicros  float64 `json:"read_us"`
}

// tcpPipelineResult demonstrates multiplexing: ops/s of N concurrent
// invokers over one connection vs a single sequential invoker.
type tcpPipelineResult struct {
	Workers             int     `json:"workers"`
	SequentialOpsPerSec float64 `json:"workers_1_ops_per_sec"`
	PipelinedOpsPerSec  float64 `json:"workers_n_ops_per_sec"`
	Speedup             float64 `json:"speedup"`
}

// tcpCodecSample is one wire format's measured cost for the fixed op mix.
type tcpCodecSample struct {
	Ops           int     `json:"ops"`
	WireOutBytes  int64   `json:"wire_out_bytes"`
	WireInBytes   int64   `json:"wire_in_bytes"`
	OutBytesPerOp float64 `json:"out_bytes_per_op"`
	InBytesPerOp  float64 `json:"in_bytes_per_op"`
	FramesPerOp   float64 `json:"frames_per_op"`
	SecondsTotal  float64 `json:"seconds_total"`
}

// tcpCodecResult is the binary-vs-gob comparison; savings_ratio is
// gob/binary on client→server encoded bytes (>1 means binary is smaller).
type tcpCodecResult struct {
	Binary       tcpCodecSample `json:"binary"`
	Gob          tcpCodecSample `json:"gob"`
	SavingsRatio float64        `json:"savings_ratio"`
}

// tcpCoalescingSample is one side of the coalescing comparison: an identical
// multi-key sweep workload measured with envelope batching on or off, on both
// the servers (-nobatch) and the bench client (WithBatching).
type tcpCoalescingSample struct {
	Ops           int64   `json:"ops"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	OutBytesPerOp float64 `json:"out_bytes_per_op"`
	FramesPerOp   float64 `json:"frames_per_op"`
	FramesBatched int64   `json:"frames_batched"`
	SecondsTotal  float64 `json:"seconds_total"`
}

// tcpCoalescingResult compares batched against unbatched ops/s for the same
// multi-key sweep; speedup > 1 means cross-key coalescing paid off.
type tcpCoalescingResult struct {
	Keys      int                 `json:"keys"`
	Batched   tcpCoalescingSample `json:"batched"`
	Unbatched tcpCoalescingSample `json:"unbatched"`
	Speedup   float64             `json:"speedup"`
}

// tcpFastReadResult reports the one-round read fast path over real sockets:
// quiescent keys are written once, then read repeatedly; avg_rounds < 2 (and
// fast_path_rate near 1) is the evidence the write-back round is skipped.
type tcpFastReadResult struct {
	Keys         int     `json:"keys"`
	Reads        int64   `json:"reads"`
	AvgRounds    float64 `json:"avg_rounds"`
	FastPathRate float64 `json:"fast_path_rate"`
	OpsPerSec    float64 `json:"ops_per_sec"`
}

// tcpDurabilitySample is one leg of the durability comparison: an identical
// write-heavy sweep workload measured against servers that are in-memory,
// journaling without fsync, or journaling with fsync-per-group-commit.
type tcpDurabilitySample struct {
	Ops          int64   `json:"ops"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	SecondsTotal float64 `json:"seconds_total"`
}

// tcpDurabilityResult is the durability phase's artifact: write throughput
// across the three persistence modes (interleaved timed slices, so host
// drift hits all legs alike), plus a crash-recovery measurement — the
// fsync-off cluster is SIGKILLed with a known value acknowledged on every
// key, respawned on the same data directories, and timed until it serves
// again; recovered_reads_ok says every key read back its pre-crash value.
type tcpDurabilityResult struct {
	Keys     int                 `json:"keys"`
	InMemory tcpDurabilitySample `json:"in_memory"`
	FsyncOff tcpDurabilitySample `json:"fsync_off"`
	FsyncOn  tcpDurabilitySample `json:"fsync_on"`
	// FsyncNoCoalesce runs fsync with cross-stripe barrier coalescing
	// disabled (-fsync-coalesce=false): each stripe's burst syncs alone.
	FsyncNoCoalesce      tcpDurabilitySample `json:"fsync_nocoalesce"`
	FsyncOffRatio        float64             `json:"fsync_off_ratio"`
	FsyncOnRatio         float64             `json:"fsync_on_ratio"`
	FsyncNoCoalesceRatio float64             `json:"fsync_nocoalesce_ratio"`
	// CoalescingGain is coalesced fsync ops/s ÷ uncoalesced fsync ops/s —
	// what sharing one barrier across stripes buys under concurrent writers.
	CoalescingGain float64 `json:"fsync_coalescing_gain"`
	RecoveryMillis float64 `json:"recovery_ms"`
	RecoveredReads bool    `json:"recovered_reads_ok"`
}

// tcpSuiteSummary is the machine-readable artifact -tcp -json emits.
type tcpSuiteSummary struct {
	Generated  string               `json:"generated"`
	Suite      string               `json:"suite"`
	Version    int                  `json:"version"`
	Servers    int                  `json:"servers"`
	Wire       string               `json:"wire"`
	DurationMS int64                `json:"duration_ms_per_workload"`
	Workers    int                  `json:"workers"`
	Keys       int                  `json:"keys"`
	ValueSize  int                  `json:"value_size"`
	Seed       int64                `json:"seed"`
	Smoke      *tcpSmokeResult      `json:"smoke,omitempty"`
	Pipelining *tcpPipelineResult   `json:"pipelining,omitempty"`
	Codec      *tcpCodecResult      `json:"codec,omitempty"`
	Coalescing *tcpCoalescingResult `json:"coalescing,omitempty"`
	FastRead   *tcpFastReadResult   `json:"fast_read,omitempty"`
	Durability *tcpDurabilityResult `json:"durability,omitempty"`
	Workloads  []workloadResult     `json:"workloads"`
	// Phases maps each phase name to the bench-process obs-registry counter
	// deltas it produced (zero deltas dropped). Counter attribution is
	// exact: a snapshot is taken at every phase boundary, so e.g. the
	// fast-read phase's wire bytes are its own, not the suite's total.
	Phases map[string]map[string]int64 `json:"phases,omitempty"`
}

// --- multi-process cluster management ---

// tcpCluster is a set of spawned ares-server processes plus the address
// book to reach them.
type tcpCluster struct {
	ids   []types.ProcessID
	book  map[types.ProcessID]string
	wire  ares.WireFormat
	procs []*exec.Cmd
	logs  []*strings.Builder
	// bin and argv record how each server was started so the durability
	// phase can kill the processes and respawn them on the same ports and
	// data directories.
	bin  string
	argv [][]string
}

// freeLoopbackAddrs reserves n distinct loopback ports by binding and
// immediately releasing them. The tiny window before the server rebinds is
// acceptable on a bench host.
func freeLoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range listeners {
			_ = ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

// resolveServerBin returns the ares-server binary to spawn: the -server-bin
// flag if given, else a fresh `go build` into dir (the bench always runs
// from the module root in CI and local use).
func resolveServerBin(flagValue, dir string) (string, error) {
	if flagValue != "" {
		return flagValue, nil
	}
	bin := filepath.Join(dir, "ares-server")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/ares-server")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("tcp suite: building ares-server (pass -server-bin to skip): %v\n%s", err, out)
	}
	return bin, nil
}

// spawnTCPCluster starts n ares-server processes with a shared address book
// and the given bootstrap spec, and waits until every one answers on its
// control service. A non-empty opsAddr puts the first server's ops HTTP
// surface (-ops-addr) there, so the suite can scrape /metrics mid-run. A
// non-empty dataRoot gives each server its own data directory
// dataRoot/<id> — per server, because WAL segment names collide if two
// processes share one directory. extraArgs are appended to every server's
// command line (the coalescing phase passes -nobatch for its baseline
// cluster; the durability legs pass their -fsync flags).
func spawnTCPCluster(p tcpSuiteParams, bin string, wire ares.WireFormat, bootstrap, opsAddr, dataRoot string, extraArgs ...string) (*tcpCluster, error) {
	addrs, err := freeLoopbackAddrs(p.servers)
	if err != nil {
		return nil, err
	}
	c := &tcpCluster{book: make(map[types.ProcessID]string, p.servers), wire: wire}
	var peers []string
	for i, addr := range addrs {
		id := types.ProcessID(fmt.Sprintf("s%d", i+1))
		c.ids = append(c.ids, id)
		c.book[id] = addr
		peers = append(peers, fmt.Sprintf("%s=%s", id, addr))
	}
	peersFlag := strings.Join(peers, ",")

	c.bin = bin
	for i, id := range c.ids {
		args := []string{
			"-id", string(id),
			"-listen", addrs[i],
			"-peers", peersFlag,
			"-wire", string(wire),
		}
		if bootstrap != "" {
			args = append(args, "-bootstrap", bootstrap)
		}
		if i == 0 && opsAddr != "" {
			args = append(args, "-ops-addr", opsAddr)
		}
		if dataRoot != "" {
			args = append(args, "-data-dir", filepath.Join(dataRoot, string(id)))
		}
		args = append(args, extraArgs...)
		c.argv = append(c.argv, args)
		cmd := exec.Command(bin, args...)
		logBuf := &strings.Builder{}
		if p.verbose {
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
		} else {
			cmd.Stdout = logBuf
			cmd.Stderr = logBuf
		}
		if err := cmd.Start(); err != nil {
			c.stop()
			return nil, fmt.Errorf("tcp suite: starting %s: %w", id, err)
		}
		c.procs = append(c.procs, cmd)
		c.logs = append(c.logs, logBuf)
	}

	if err := c.awaitReady(p); err != nil {
		logs := c.tail()
		c.stop()
		return nil, fmt.Errorf("%w\nserver output:\n%s", err, logs)
	}
	return c, nil
}

// kill SIGKILLs every server process — no shutdown hook, no flush — and
// reaps them. The durability phase uses it to model a crash before measuring
// recovery.
func (c *tcpCluster) kill() {
	for _, cmd := range c.procs {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}
	for _, cmd := range c.procs {
		_ = cmd.Wait()
	}
	c.procs = nil
}

// respawn restarts every server with its original command line (same ports,
// same data directories) and waits until all answer — which, for servers
// with -data-dir, means recovery replayed before the listener came up.
func (c *tcpCluster) respawn(p tcpSuiteParams) error {
	if len(c.procs) != 0 {
		return fmt.Errorf("tcp suite: respawn with %d processes still tracked", len(c.procs))
	}
	c.logs = nil
	for i, args := range c.argv {
		cmd := exec.Command(c.bin, args...)
		logBuf := &strings.Builder{}
		if p.verbose {
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
		} else {
			cmd.Stdout = logBuf
			cmd.Stderr = logBuf
		}
		if err := cmd.Start(); err != nil {
			c.stop()
			return fmt.Errorf("tcp suite: respawning %s: %w", c.ids[i], err)
		}
		c.procs = append(c.procs, cmd)
		c.logs = append(c.logs, logBuf)
	}
	if err := c.awaitReady(p); err != nil {
		logs := c.tail()
		c.stop()
		return fmt.Errorf("%w\nserver output:\n%s", err, logs)
	}
	return nil
}

// awaitReady pings every server's control service until it answers (any
// response, including an application error, proves the data plane is up).
func (c *tcpCluster) awaitReady(p tcpSuiteParams) error {
	rpc := ares.NewTCPClient("bench-probe", c.book, ares.WithWireFormat(c.wire))
	defer rpc.Close()
	deadline := time.Now().Add(15 * time.Second)
	for _, id := range c.ids {
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
			_, err := rpc.Invoke(ctx, id, transport.Request{
				Service: core.CtlServiceName, Config: core.CtlConfigKey, Type: "ping",
			})
			cancel()
			if err == nil {
				break // a response arrived; the server is serving
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("tcp suite: server %s not ready after 15s: %v", id, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return nil
}

// tail returns the accumulated (non-verbose) server output for diagnostics.
func (c *tcpCluster) tail() string {
	var b strings.Builder
	for i, lb := range c.logs {
		if lb != nil && lb.Len() > 0 {
			fmt.Fprintf(&b, "--- %s ---\n%s", c.ids[i], lb.String())
		}
	}
	return b.String()
}

// stop terminates the processes (SIGTERM, then SIGKILL after a grace
// period) and reaps them.
func (c *tcpCluster) stop() {
	for _, cmd := range c.procs {
		if cmd.Process != nil {
			_ = cmd.Process.Signal(os.Interrupt)
		}
	}
	done := make(chan struct{})
	go func() {
		for _, cmd := range c.procs {
			_ = cmd.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		for _, cmd := range c.procs {
			if cmd.Process != nil {
				_ = cmd.Process.Kill()
			}
		}
		<-done
	}
}

// --- the TCP-backed multi-key store the workload driver runs against ---

// tcpKeyStore adapts per-key remote register clients to workload.Store.
// It is the client-side shape of a real deployment: each key's client
// discovers its configuration chain from the installed template, over the
// shared TCP transport.
type tcpKeyStore struct {
	template ares.Config
	rpc      transport.Client

	mu      sync.Mutex
	clients map[string]*ares.Client
}

func newTCPKeyStore(template ares.Config, rpc transport.Client) *tcpKeyStore {
	return &tcpKeyStore{template: template, rpc: rpc, clients: make(map[string]*ares.Client)}
}

func (s *tcpKeyStore) client(key string) (*ares.Client, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.clients[key]; ok {
		return c, nil
	}
	c, err := ares.NewRemoteClient(types.ProcessID("bench-tcp/"+key), s.template.ForKey(key), s.rpc)
	if err != nil {
		return nil, err
	}
	s.clients[key] = c
	return c, nil
}

func (s *tcpKeyStore) Put(ctx context.Context, key string, v types.Value) error {
	c, err := s.client(key)
	if err != nil {
		return err
	}
	return c.WriteValue(ctx, v)
}

func (s *tcpKeyStore) Get(ctx context.Context, key string) (types.Value, error) {
	c, err := s.client(key)
	if err != nil {
		return nil, err
	}
	return c.ReadValue(ctx)
}

// --- phases ---

// tcpTemplateFor builds the per-key template the suite installs remotely:
// ABD over every spawned server (quorum ⌈(n+1)/2⌉ — with 3+ servers the
// cluster is the paper's minimum fault-tolerant deployment).
func tcpTemplateFor(c *tcpCluster) ares.Config {
	return ares.Config{
		ID:        ares.ConfigID("tcpbench/" + cfg.KeyPlaceholder + "/c0"),
		Algorithm: ares.ABD,
		Servers:   append([]types.ProcessID(nil), c.ids...),
	}
}

// tcpBootstrapSpec is the -bootstrap flag value for the default register:
// the same ABD server set, provisioned at process start through the flag
// path (the suite's smoke phase reads and writes this register).
func tcpBootstrapSpec(ids []types.ProcessID) (string, ares.Config) {
	c := cfg.Configuration{
		ID:        "tcpbench/c0",
		Algorithm: cfg.ABD,
		Servers:   append([]types.ProcessID(nil), ids...),
	}
	return spec.Format(c), c
}

// runTCPSmoke does one write and one read on the bootstrap register.
func runTCPSmoke(rpc transport.Client, c0 ares.Config) (*tcpSmokeResult, error) {
	client, err := ares.NewRemoteClient("bench-smoke", c0, rpc)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := client.WriteValue(ctx, types.Value("hello over tcp")); err != nil {
		return nil, fmt.Errorf("smoke write: %w", err)
	}
	wrote := time.Since(start)
	start = time.Now()
	v, err := client.ReadValue(ctx)
	if err != nil {
		return nil, fmt.Errorf("smoke read: %w", err)
	}
	if string(v) != "hello over tcp" {
		return nil, fmt.Errorf("smoke read returned %q", v)
	}
	return &tcpSmokeResult{
		WriteMicros: float64(wrote) / float64(time.Microsecond),
		ReadMicros:  float64(time.Since(start)) / float64(time.Microsecond),
	}, nil
}

// pingOps drives control-service pings at a server for d with the given
// concurrency, all multiplexed over the client's single connection to that
// server, and returns completed ops.
func pingOps(rpc transport.Client, dst types.ProcessID, workers int, d time.Duration) (int64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	var ops atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				_, err := rpc.Invoke(ctx, dst, transport.Request{
					Service: core.CtlServiceName, Config: core.CtlConfigKey, Type: "ping",
				})
				if err != nil {
					if ctx.Err() == nil {
						firstErr.CompareAndSwap(nil, err)
					}
					return
				}
				ops.Add(1)
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, err
	}
	return ops.Load(), nil
}

// runTCPPipelining measures single-connection multiplexing: N workers'
// aggregate ops/s over one connection vs a lone sequential caller. A data
// plane that serializes requests per connection (the pre-PR 6 design under
// load) cannot beat the sequential rate by much; a pipelined one scales
// until the server saturates.
func runTCPPipelining(rpc transport.Client, dst types.ProcessID, d time.Duration) (*tcpPipelineResult, error) {
	if d > time.Second {
		d = time.Second
	}
	// Warm the connection so neither leg pays the dial.
	if _, err := pingOps(rpc, dst, 1, 50*time.Millisecond); err != nil {
		return nil, err
	}
	solo, err := pingOps(rpc, dst, 1, d)
	if err != nil {
		return nil, err
	}
	piped, err := pingOps(rpc, dst, tcpPipelineWorkers, d)
	if err != nil {
		return nil, err
	}
	res := &tcpPipelineResult{
		Workers:             tcpPipelineWorkers,
		SequentialOpsPerSec: float64(solo) / d.Seconds(),
		PipelinedOpsPerSec:  float64(piped) / d.Seconds(),
	}
	if solo > 0 {
		res.Speedup = float64(piped) / float64(solo)
	}
	return res, nil
}

// runCodecLeg spawns a cluster in one wire format, installs the template,
// runs the fixed op mix, and attributes the client-side wire-counter deltas
// to it.
func runCodecLeg(p tcpSuiteParams, bin string, wire ares.WireFormat) (*tcpCodecSample, error) {
	cluster, err := spawnTCPCluster(p, bin, wire, "", "", "") // keyed template only; no bootstrap register
	if err != nil {
		return nil, err
	}
	defer cluster.stop()

	rpc := ares.NewTCPClient("bench-codec", cluster.book, ares.WithWireFormat(wire))
	defer rpc.Close()
	template := tcpTemplateFor(cluster)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := core.RemoteInstaller(rpc)(ctx, template); err != nil {
		return nil, fmt.Errorf("installing template (%s): %w", wire, err)
	}
	store := newTCPKeyStore(template, rpc)
	value := make(types.Value, p.valSize)
	keys := p.keys
	if keys > 32 {
		keys = 32 // the codec phase wants steady-state traffic, not first-touch churn
	}

	before := transport.CodecStats()
	start := time.Now()
	var ops int
	for i := 0; i < codecOpsPerKind; i++ {
		key := fmt.Sprintf("codec-%04d", i%keys)
		if err := store.Put(ctx, key, value); err != nil {
			return nil, fmt.Errorf("codec put (%s): %w", wire, err)
		}
		ops++
		if _, err := store.Get(ctx, key); err != nil {
			return nil, fmt.Errorf("codec get (%s): %w", wire, err)
		}
		ops++
	}
	elapsed := time.Since(start)
	after := transport.CodecStats()

	s := &tcpCodecSample{
		Ops:          ops,
		WireOutBytes: after.WireEncodedBytes - before.WireEncodedBytes,
		WireInBytes:  after.WireDecodedBytes - before.WireDecodedBytes,
		SecondsTotal: elapsed.Seconds(),
	}
	s.OutBytesPerOp = float64(s.WireOutBytes) / float64(ops)
	s.InBytesPerOp = float64(s.WireInBytes) / float64(ops)
	s.FramesPerOp = float64(after.WireEncodes-before.WireEncodes) / float64(ops)
	return s, nil
}

// runTCPCodecComparison runs the fixed mix against both formats and checks
// the binary codec's bytes/op beats gob's.
func runTCPCodecComparison(p tcpSuiteParams, bin string) (*tcpCodecResult, error) {
	binary, err := runCodecLeg(p, bin, ares.WireBinary)
	if err != nil {
		return nil, err
	}
	gob, err := runCodecLeg(p, bin, ares.WireGob)
	if err != nil {
		return nil, err
	}
	res := &tcpCodecResult{Binary: *binary, Gob: *gob}
	if binary.OutBytesPerOp > 0 {
		res.SavingsRatio = gob.OutBytesPerOp / binary.OutBytesPerOp
	}
	if binary.OutBytesPerOp >= gob.OutBytesPerOp {
		return res, fmt.Errorf("codec phase: binary wire %.1f B/op is not smaller than gob %.1f B/op",
			binary.OutBytesPerOp, gob.OutBytesPerOp)
	}
	return res, nil
}

// coalescingKeys is the key-space width of the coalescing phase: enough
// concurrent per-key clients that every server connection carries cross-key
// traffic for the writer path to pack (the acceptance regime is ≥64 keys).
const coalescingKeys = 96

// sweepKeys runs fn once per key, all keys concurrently, and returns the
// first error — one multi-key MultiPut/MultiGet-style fan-out wave.
func sweepKeys(keys []string, fn func(key string) error) error {
	var (
		wg       sync.WaitGroup
		firstErr atomic.Value
	)
	for _, key := range keys {
		key := key
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(key); err != nil {
				firstErr.CompareAndSwap(nil, err)
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	return nil
}

// coalescingRounds is how many interleaved slice pairs the phase runs. Both
// legs stay alive for the whole phase and their timed slices alternate (order
// swapped every round), so host drift — CPU frequency, page cache, a noisy
// neighbor on a small runner — hits both sides alike instead of whichever leg
// happened to run second.
const coalescingRounds = 6

// coalesceLeg is one live side of the comparison: a spawned cluster (batched
// or -nobatch), a client wired to match, one per-key ABD DAP client for each
// key in the sweep, and the running totals the slices fold into. The phase
// drives the DAP layer directly — a MultiPut is the put-data fan-out across
// all keys, a MultiGet the get-data fan-out — because that is the traffic
// shape coalescing exists for: hundreds of same-instant envelopes per
// connection. (The full two-phase client stack costs ~20 RPC legs per store
// op; at that per-op CPU the wire is a rounding error and the comparison
// drowns in scheduler noise.)
type coalesceLeg struct {
	batched bool
	cluster *tcpCluster
	rpc     *transport.TCPClient
	daps    map[string]*abd.Client
	seq     int64

	ops           int64
	elapsed       time.Duration
	encodedBytes  int64
	encodes       int64
	framesBatched int64
}

func (l *coalesceLeg) close() {
	if l.rpc != nil {
		l.rpc.Close()
	}
	if l.cluster != nil {
		l.cluster.stop()
	}
}

// sample folds the accumulated slice totals into the JSON shape.
func (l *coalesceLeg) finish() tcpCoalescingSample {
	s := tcpCoalescingSample{
		Ops:           l.ops,
		FramesBatched: l.framesBatched,
		SecondsTotal:  l.elapsed.Seconds(),
	}
	if l.elapsed > 0 {
		s.OpsPerSec = float64(l.ops) / l.elapsed.Seconds()
	}
	if l.ops > 0 {
		s.OutBytesPerOp = float64(l.encodedBytes) / float64(l.ops)
		s.FramesPerOp = float64(l.encodes) / float64(l.ops)
	}
	return s
}

// setupCoalesceLeg spawns one cluster, installs the keyed template, and warms
// every key so first-touch state materialization stays out of the timed
// slices.
func setupCoalesceLeg(p tcpSuiteParams, bin string, batched bool, keys []string, value types.Value) (*coalesceLeg, error) {
	var serverArgs []string
	var clientOpts []ares.TCPOption
	name := types.ProcessID("bench-co-batched")
	if !batched {
		name = "bench-co-nobatch"
		serverArgs = append(serverArgs, "-nobatch")
		clientOpts = append(clientOpts, ares.WithBatching(false))
	}
	cluster, err := spawnTCPCluster(p, bin, ares.WireBinary, "", "", "", serverArgs...)
	if err != nil {
		return nil, err
	}
	leg := &coalesceLeg{batched: batched, cluster: cluster}
	leg.rpc = ares.NewTCPClient(name, cluster.book, clientOpts...)
	template := tcpTemplateFor(cluster)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := core.RemoteInstaller(leg.rpc)(ctx, template); err != nil {
		leg.close()
		return nil, fmt.Errorf("installing template (batched=%v): %w", batched, err)
	}
	leg.daps = make(map[string]*abd.Client, len(keys))
	for _, key := range keys {
		c, err := abd.NewClient(template.ForKey(key), leg.rpc)
		if err != nil {
			leg.close()
			return nil, fmt.Errorf("coalescing DAP client (batched=%v, key %s): %w", batched, key, err)
		}
		leg.daps[key] = c
	}
	// Warm sweep: first-touch state materialization stays out of the timed
	// slices.
	if err := leg.multiPut(ctx, keys, value); err != nil {
		leg.close()
		return nil, fmt.Errorf("coalescing warmup (batched=%v): %w", batched, err)
	}
	return leg, nil
}

// multiPut is one MultiPut: a put-data fan-out across every key with a fresh
// monotonic tag, all keys in flight at once.
func (l *coalesceLeg) multiPut(ctx context.Context, keys []string, value types.Value) error {
	l.seq++
	p := tag.Pair{Tag: tag.Tag{Z: l.seq, W: "bench-coalesce"}, Value: value}
	return sweepKeys(keys, func(key string) error { return l.daps[key].PutData(ctx, p) })
}

// multiGet is one MultiGet: a get-data fan-out across every key.
func (l *coalesceLeg) multiGet(ctx context.Context, keys []string) error {
	return sweepKeys(keys, func(key string) error {
		_, err := l.daps[key].GetData(ctx)
		return err
	})
}

// runCoalesceSlice alternates MultiPut and MultiGet sweeps against the leg
// for one timed slice and folds the per-key op counts and client-side
// codec-counter deltas into the leg's totals. Every sweep puts all keys in
// flight at once, so each of the leg's three connections sees a burst of
// ~coalescingKeys same-instant envelopes — the regime the writer path packs.
// A sweep completes before the next begins, so the deltas are clean: nothing
// from this slice bleeds into the next one.
func runCoalesceSlice(l *coalesceLeg, keys []string, value types.Value, slice time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	before := transport.CodecStats()
	start := time.Now()
	deadline := start.Add(slice)
	var ops int64
	for time.Now().Before(deadline) {
		if err := l.multiPut(ctx, keys, value); err != nil {
			return err
		}
		ops += int64(len(keys))
		if err := l.multiGet(ctx, keys); err != nil {
			return err
		}
		ops += int64(len(keys))
	}
	elapsed := time.Since(start)
	after := transport.CodecStats()

	l.ops += ops
	l.elapsed += elapsed
	l.encodedBytes += after.WireEncodedBytes - before.WireEncodedBytes
	l.encodes += after.WireEncodes - before.WireEncodes
	l.framesBatched += after.FramesBatched - before.FramesBatched
	return nil
}

// runTCPCoalescing spawns both clusters up front, alternates timed slices
// between them, and sanity-checks that the batched leg actually coalesced
// and the -nobatch leg never did (the CI job asserts the throughput ordering
// from the JSON).
func runTCPCoalescing(p tcpSuiteParams, bin string) (*tcpCoalescingResult, error) {
	keys := make([]string, coalescingKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("co-%04d", i)
	}
	value := make(types.Value, p.valSize)

	batched, err := setupCoalesceLeg(p, bin, true, keys, value)
	if err != nil {
		return nil, err
	}
	defer batched.close()
	unbatched, err := setupCoalesceLeg(p, bin, false, keys, value)
	if err != nil {
		return nil, err
	}
	defer unbatched.close()

	window := p.duration
	if window > 2*time.Second {
		window = 2 * time.Second
	}
	slice := window / coalescingRounds
	if slice < 100*time.Millisecond {
		slice = 100 * time.Millisecond
	}
	for round := 0; round < coalescingRounds; round++ {
		pair := [2]*coalesceLeg{batched, unbatched}
		if round%2 == 1 {
			pair[0], pair[1] = pair[1], pair[0]
		}
		for _, leg := range pair {
			if err := runCoalesceSlice(leg, keys, value, slice); err != nil {
				return nil, fmt.Errorf("coalescing slice (round %d, batched=%v): %w", round, leg.batched, err)
			}
		}
	}

	res := &tcpCoalescingResult{Keys: coalescingKeys, Batched: batched.finish(), Unbatched: unbatched.finish()}
	if res.Unbatched.OpsPerSec > 0 {
		res.Speedup = res.Batched.OpsPerSec / res.Unbatched.OpsPerSec
	}
	if res.Batched.FramesBatched == 0 {
		return res, fmt.Errorf("coalescing phase: %d-key workload produced zero batched frames", coalescingKeys)
	}
	if res.Unbatched.FramesBatched != 0 {
		return res, fmt.Errorf("coalescing phase: -nobatch baseline emitted %d batched frames", res.Unbatched.FramesBatched)
	}
	return res, nil
}

// fastReadKeys sizes the fast-read phase's key set.
const fastReadKeys = 32

// runTCPFastRead writes fastReadKeys keys once on the main cluster, lets the
// straggler put-data deliveries land, then reads for the timed window and
// attributes the ReadRounds counter deltas: quiescent keys must read in ~1
// data round via the confirmed-propagation fast path.
func runTCPFastRead(rpc transport.Client, template ares.Config, d time.Duration) (*tcpFastReadResult, error) {
	store := newTCPKeyStore(template, rpc)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	value := make(types.Value, 256)
	keys := make([]string, fastReadKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("fr-%04d", i)
	}
	if err := sweepKeys(keys, func(key string) error { return store.Put(ctx, key, value) }); err != nil {
		return nil, fmt.Errorf("fast-read writes: %w", err)
	}
	// A write completes on a quorum; give the straggler put-data frames a
	// moment to land so every server holds the tag and reads confirm.
	time.Sleep(150 * time.Millisecond)

	window := d
	if window > time.Second {
		window = time.Second
	}
	before := transport.CodecStats()
	start := time.Now()
	deadline := start.Add(window)
	for time.Now().Before(deadline) {
		if err := sweepKeys(keys, func(key string) error {
			_, err := store.Get(ctx, key)
			return err
		}); err != nil {
			return nil, fmt.Errorf("fast-read reads: %w", err)
		}
	}
	elapsed := time.Since(start)
	after := transport.CodecStats()

	reads := after.ReadOps - before.ReadOps
	if reads == 0 {
		return nil, fmt.Errorf("fast-read phase: no reads completed in %v", window)
	}
	res := &tcpFastReadResult{
		Keys:         fastReadKeys,
		Reads:        reads,
		AvgRounds:    float64(after.ReadRounds-before.ReadRounds) / float64(reads),
		FastPathRate: float64(after.ReadFastPaths-before.ReadFastPaths) / float64(reads),
		OpsPerSec:    float64(reads) / elapsed.Seconds(),
	}
	if res.AvgRounds >= 2 {
		return res, fmt.Errorf("fast-read phase: %.2f data rounds per quiescent read, want < 2 (fast path not firing)", res.AvgRounds)
	}
	return res, nil
}

// durabilityKeys sizes the durability phase's key set: enough concurrent
// writers that the group-commit writer has bursts to batch.
const durabilityKeys = 16

// durabilityRounds is how many interleaved slice triples the phase runs
// (same drift-fairness rationale as coalescingRounds).
const durabilityRounds = 3

// durabilityLeg is one persistence mode under measurement: a spawned
// cluster, a client, and the running totals its timed slices fold into.
type durabilityLeg struct {
	name    string
	cluster *tcpCluster
	rpc     *transport.TCPClient
	store   *tcpKeyStore
	ops     int64
	elapsed time.Duration
}

func (l *durabilityLeg) close() {
	if l.rpc != nil {
		l.rpc.Close()
	}
	if l.cluster != nil {
		l.cluster.stop()
	}
}

func (l *durabilityLeg) finish() tcpDurabilitySample {
	s := tcpDurabilitySample{Ops: l.ops, SecondsTotal: l.elapsed.Seconds()}
	if l.elapsed > 0 {
		s.OpsPerSec = float64(l.ops) / l.elapsed.Seconds()
	}
	return s
}

// setupDurabilityLeg spawns one cluster with the given persistence flags
// (each server journals under its own dataRoot/<id> when dataRoot is set),
// installs the keyed template, and warms every key.
func setupDurabilityLeg(p tcpSuiteParams, bin, name, dataRoot string, keys []string, value types.Value, serverArgs ...string) (*durabilityLeg, error) {
	cluster, err := spawnTCPCluster(p, bin, ares.WireBinary, "", "", dataRoot, serverArgs...)
	if err != nil {
		return nil, err
	}
	leg := &durabilityLeg{name: name, cluster: cluster}
	leg.rpc = ares.NewTCPClient(types.ProcessID("bench-dur-"+name), cluster.book)
	template := tcpTemplateFor(cluster)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := core.RemoteInstaller(leg.rpc)(ctx, template); err != nil {
		leg.close()
		return nil, fmt.Errorf("installing template (%s): %w", name, err)
	}
	leg.store = newTCPKeyStore(template, leg.rpc)
	if err := sweepKeys(keys, func(key string) error { return leg.store.Put(ctx, key, value) }); err != nil {
		leg.close()
		return nil, fmt.Errorf("durability warmup (%s): %w", name, err)
	}
	return leg, nil
}

// runDurabilitySlice drives concurrent per-key writes — the operation the
// WAL sits under — against the leg for one timed slice.
func runDurabilitySlice(l *durabilityLeg, keys []string, value types.Value, slice time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	start := time.Now()
	deadline := start.Add(slice)
	var ops int64
	for time.Now().Before(deadline) {
		if err := sweepKeys(keys, func(key string) error { return l.store.Put(ctx, key, value) }); err != nil {
			return err
		}
		ops += int64(len(keys))
	}
	l.ops += ops
	l.elapsed += time.Since(start)
	return nil
}

// runTCPDurability measures what durability costs and what it buys: write
// ops/s for in-memory vs fsync-off vs fsync-on servers in interleaved
// slices, then a SIGKILL + respawn of the fsync-off cluster timed until it
// serves again, with every key's pre-crash value read back and verified.
func runTCPDurability(p tcpSuiteParams, bin, tmpDir string) (*tcpDurabilityResult, error) {
	keys := make([]string, durabilityKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("dur-%04d", i)
	}
	value := make(types.Value, p.valSize)

	mem, err := setupDurabilityLeg(p, bin, "mem", "", keys, value)
	if err != nil {
		return nil, err
	}
	defer mem.close()
	off, err := setupDurabilityLeg(p, bin, "nofsync", filepath.Join(tmpDir, "dur-nofsync"), keys, value,
		"-fsync=false")
	if err != nil {
		return nil, err
	}
	defer off.close()
	on, err := setupDurabilityLeg(p, bin, "fsync", filepath.Join(tmpDir, "dur-fsync"), keys, value,
		"-fsync=true")
	if err != nil {
		return nil, err
	}
	defer on.close()
	noco, err := setupDurabilityLeg(p, bin, "fsync-nocoalesce", filepath.Join(tmpDir, "dur-fsync-nocoalesce"), keys, value,
		"-fsync=true", "-fsync-coalesce=false")
	if err != nil {
		return nil, err
	}
	defer noco.close()

	window := p.duration
	if window > 2*time.Second {
		window = 2 * time.Second
	}
	slice := window / durabilityRounds
	if slice < 100*time.Millisecond {
		slice = 100 * time.Millisecond
	}
	legs := []*durabilityLeg{mem, off, on, noco}
	for round := 0; round < durabilityRounds; round++ {
		for i := 0; i < len(legs); i++ {
			leg := legs[(round+i)%len(legs)] // rotate the order every round
			if err := runDurabilitySlice(leg, keys, value, slice); err != nil {
				return nil, fmt.Errorf("durability slice (round %d, %s): %w", round, leg.name, err)
			}
		}
	}

	res := &tcpDurabilityResult{
		Keys:            durabilityKeys,
		InMemory:        mem.finish(),
		FsyncOff:        off.finish(),
		FsyncOn:         on.finish(),
		FsyncNoCoalesce: noco.finish(),
	}
	if res.InMemory.OpsPerSec > 0 {
		res.FsyncOffRatio = res.FsyncOff.OpsPerSec / res.InMemory.OpsPerSec
		res.FsyncOnRatio = res.FsyncOn.OpsPerSec / res.InMemory.OpsPerSec
		res.FsyncNoCoalesceRatio = res.FsyncNoCoalesce.OpsPerSec / res.InMemory.OpsPerSec
	}
	if res.FsyncNoCoalesce.OpsPerSec > 0 {
		res.CoalescingGain = res.FsyncOn.OpsPerSec / res.FsyncNoCoalesce.OpsPerSec
	}

	// Recovery: acknowledge a known value on every key, SIGKILL the
	// fsync-off cluster, respawn it on the same data directories, and time
	// until it answers (recovery replays before the listener accepts).
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sentinel := types.Value("recovered-after-kill")
	if err := sweepKeys(keys, func(key string) error { return off.store.Put(ctx, key, sentinel) }); err != nil {
		return res, fmt.Errorf("durability sentinel writes: %w", err)
	}
	off.rpc.Close()
	off.rpc = nil
	off.cluster.kill()
	start := time.Now()
	if err := off.cluster.respawn(p); err != nil {
		return res, fmt.Errorf("durability recovery respawn: %w", err)
	}
	res.RecoveryMillis = float64(time.Since(start)) / float64(time.Millisecond)

	rpc := ares.NewTCPClient("bench-dur-verify", off.cluster.book)
	defer rpc.Close()
	verify := newTCPKeyStore(tcpTemplateFor(off.cluster), rpc)
	res.RecoveredReads = true
	for _, key := range keys {
		v, err := verify.Get(ctx, key)
		if err != nil {
			res.RecoveredReads = false
			return res, fmt.Errorf("durability phase: reading %s after recovery: %w", key, err)
		}
		if string(v) != string(sentinel) {
			res.RecoveredReads = false
			return res, fmt.Errorf("durability phase: key %s read %q after recovery, want %q — an acknowledged write was lost", key, v, sentinel)
		}
	}
	return res, nil
}

// writeOpsSnapshot scrapes the server's /metrics.json and writes the
// METRICS_snapshot.json artifact: the server-process registry snapshot
// paired with the bench-process one, each attributed to its side.
func writeOpsSnapshot(opsAddr, path string) error {
	httpc := &http.Client{Timeout: 10 * time.Second}
	resp, err := httpc.Get("http://" + opsAddr + "/metrics.json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics.json: HTTP %d", resp.StatusCode)
	}
	var server obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&server); err != nil {
		return fmt.Errorf("decoding /metrics.json: %w", err)
	}
	artifact := struct {
		Generated string       `json:"generated"`
		Server    obs.Snapshot `json:"server"`
		Client    obs.Snapshot `json:"client"`
	}{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Server:    server,
		Client:    obs.Default.Snapshot(),
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runTCPSuite is the -tcp entry point.
func runTCPSuite(p tcpSuiteParams) error {
	if p.servers < 3 {
		p.servers = 3 // the minimum fault-tolerant quorum deployment
	}
	if p.workers < 1 {
		p.workers = 1
	}
	tmpDir, err := os.MkdirTemp("", "ares-bench-tcp-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmpDir)
	bin, err := resolveServerBin(p.serverBin, tmpDir)
	if err != nil {
		return err
	}

	summary := tcpSuiteSummary{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Suite:      "tcp-multiprocess",
		Version:    tcpSuiteVersion,
		Servers:    p.servers,
		Wire:       string(ares.WireBinary),
		DurationMS: p.duration.Milliseconds(),
		Workers:    p.workers,
		Keys:       p.keys,
		ValueSize:  p.valSize,
		Seed:       p.seed,
	}

	// Main cluster: binary wire, bootstrap register installed through the
	// -bootstrap flag on every server. spawnTCPCluster names servers
	// s1..sN, so the spec can be built up front.
	ids := make([]types.ProcessID, p.servers)
	for i := range ids {
		ids[i] = types.ProcessID(fmt.Sprintf("s%d", i+1))
	}
	bootstrapSpec, c0 := tcpBootstrapSpec(ids)

	fmt.Printf("== TCP: multi-process suite (%d ares-server processes on loopback, wire=%s)\n",
		p.servers, summary.Wire)
	// The main cluster is durable (per-server WAL dirs, fsync on) and
	// exposes s1's ops surface, so the mid-run scrape sees live wire AND
	// WAL counters from a real server process.
	opsAddrs, err := freeLoopbackAddrs(1)
	if err != nil {
		return err
	}
	opsAddr := opsAddrs[0]
	cluster, err := spawnTCPCluster(p, bin, ares.WireBinary, bootstrapSpec, opsAddr,
		filepath.Join(tmpDir, "main"), "-fsync=true")
	if err != nil {
		return err
	}
	defer cluster.stop()

	rpc := ares.NewTCPClient("bench-tcp", cluster.book)
	defer rpc.Close()

	// Per-phase counter attribution: snapshot the bench-process registry at
	// every phase boundary and record the deltas under the phase's name.
	summary.Phases = make(map[string]map[string]int64)
	phaseSnap := obs.Default.Snapshot()
	markPhase := func(name string) {
		cur := obs.Default.Snapshot()
		summary.Phases[name] = obs.CounterDelta(phaseSnap, cur)
		phaseSnap = cur
	}

	// Phase: smoke.
	smoke, err := runTCPSmoke(rpc, c0)
	if err != nil {
		return fmt.Errorf("tcp suite smoke: %w\n%s", err, cluster.tail())
	}
	summary.Smoke = smoke
	markPhase("smoke-rw")
	fmt.Printf("  smoke-rw: write %.0fµs, read %.0fµs (bootstrap register, %d-server ABD quorum)\n",
		smoke.WriteMicros, smoke.ReadMicros, p.servers)

	// Phase: pipelining.
	pipe, err := runTCPPipelining(rpc, cluster.ids[0], p.duration)
	if err != nil {
		return fmt.Errorf("tcp suite pipelining: %w", err)
	}
	summary.Pipelining = pipe
	markPhase("pipelining")
	fmt.Printf("  pipelining: 1 worker %.0f ops/s → %d workers %.0f ops/s over one connection (%.1fx)\n",
		pipe.SequentialOpsPerSec, pipe.Workers, pipe.PipelinedOpsPerSec, pipe.Speedup)

	// Phase: workloads over the keyed template.
	template := tcpTemplateFor(cluster)
	installCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = core.RemoteInstaller(rpc)(installCtx, template)
	cancel()
	if err != nil {
		return fmt.Errorf("tcp suite: installing template: %w", err)
	}
	table := benchutil.NewTable("workload", "ops", "errs", "ops/s", "keys", "read p50", "read p99", "write p50", "write p99")
	for _, w := range tcpWorkloads {
		store := newTCPKeyStore(template, rpc)
		readLat := benchutil.NewLatencyRecorder()
		writeLat := benchutil.NewLatencyRecorder()
		d := workload.MultiDriver{
			Workers:    p.workers,
			WriteRatio: w.WriteRatio,
			Duration:   p.duration,
			ValueSize:  p.valSize,
			Keys:       p.keys,
			Theta:      w.Theta,
			Seed:       p.seed,
			OnLatency: func(write bool, lat time.Duration) {
				if write {
					writeLat.Record(lat)
				} else {
					readLat.Record(lat)
				}
			},
		}
		stats, err := d.Run(context.Background(), store)
		if err != nil {
			return fmt.Errorf("tcp suite %s: %w", w.Name, err)
		}
		rs, ws := readLat.Summarize(), writeLat.Summarize()
		table.AddRow(w.Name, stats.Ops(), stats.ReadErrs+stats.WriteErrs, stats.Throughput(),
			stats.KeysTouched, rs.P50, rs.P99, ws.P50, ws.P99)
		summary.Workloads = append(summary.Workloads, workloadResult{
			Name:        w.Name,
			WriteRatio:  w.WriteRatio,
			Theta:       w.Theta,
			Ops:         stats.Ops(),
			Errors:      stats.ReadErrs + stats.WriteErrs,
			OpsPerSec:   stats.Throughput(),
			KeysTouched: stats.KeysTouched,
			Read:        toLatencySummary(rs),
			Write:       toLatencySummary(ws),
		})
	}
	fmt.Println()
	table.Render(os.Stdout)
	markPhase("workloads")

	// Phase: fast-read (on the main cluster, over the installed template;
	// counter attribution is by delta, so earlier phases don't pollute it).
	fastRead, err := runTCPFastRead(rpc, template, p.duration)
	if fastRead != nil {
		summary.FastRead = fastRead
		fmt.Printf("\n  fast-read: %d reads over %d quiescent keys — %.3f data rounds/read, %.0f%% fast path, %.0f ops/s\n",
			fastRead.Reads, fastRead.Keys, fastRead.AvgRounds, 100*fastRead.FastPathRate, fastRead.OpsPerSec)
	}
	if err != nil {
		return fmt.Errorf("tcp suite: %w", err)
	}
	markPhase("fast-read")

	// Mid-run ops scrape: the suite is still going (codec, coalescing and
	// durability follow), so s1's counters are live, not post-mortem. The
	// artifact pairs the server-side snapshot with the bench process's own
	// registry — wire and WAL activity live on the server, client rounds
	// and fast-path counters live here.
	if p.jsonPath != "" {
		snapPath := filepath.Join(filepath.Dir(p.jsonPath), "METRICS_snapshot.json")
		if err := writeOpsSnapshot(opsAddr, snapPath); err != nil {
			return fmt.Errorf("tcp suite: ops scrape: %w", err)
		}
		fmt.Printf("\n  ops scrape: s1 /metrics.json (mid-run) → %s\n", snapPath)
	}

	// Phase: codec comparison (spawns its own clusters, one per format, so
	// the main cluster's traffic doesn't pollute the counters).
	codec, err := runTCPCodecComparison(p, bin)
	if codec != nil {
		summary.Codec = codec
		fmt.Printf("\n  codec: binary %.0f B/op out (%.1f frames/op) vs gob %.0f B/op — %.2fx smaller on the wire\n",
			codec.Binary.OutBytesPerOp, codec.Binary.FramesPerOp, codec.Gob.OutBytesPerOp, codec.SavingsRatio)
	}
	if err != nil {
		return fmt.Errorf("tcp suite: %w", err)
	}
	markPhase("codec")

	// Phase: coalescing comparison (its own batched and -nobatch clusters).
	coalescing, err := runTCPCoalescing(p, bin)
	if coalescing != nil {
		summary.Coalescing = coalescing
		fmt.Printf("  coalescing (%d keys): batched %.0f ops/s (%.2f frames/op, %d batch frames) vs unbatched %.0f ops/s (%.2f frames/op) — %.2fx\n",
			coalescing.Keys, coalescing.Batched.OpsPerSec, coalescing.Batched.FramesPerOp, coalescing.Batched.FramesBatched,
			coalescing.Unbatched.OpsPerSec, coalescing.Unbatched.FramesPerOp, coalescing.Speedup)
	}
	if err != nil {
		return fmt.Errorf("tcp suite: %w", err)
	}
	markPhase("coalescing")

	// Phase: durability (its own in-memory, fsync-off, fsync-on, and
	// fsync-uncoalesced clusters, plus a SIGKILL + recovery measurement on
	// the fsync-off one).
	durability, err := runTCPDurability(p, bin, tmpDir)
	if durability != nil {
		summary.Durability = durability
		fmt.Printf("  durability (%d keys): in-memory %.0f ops/s, wal %.0f ops/s (%.2fx), wal+fsync %.0f ops/s (%.2fx), wal+fsync uncoalesced %.0f ops/s (%.2fx, coalescing gain %.2fx); kill -9 recovery %.0fms, recovered reads ok=%v\n",
			durability.Keys, durability.InMemory.OpsPerSec,
			durability.FsyncOff.OpsPerSec, durability.FsyncOffRatio,
			durability.FsyncOn.OpsPerSec, durability.FsyncOnRatio,
			durability.FsyncNoCoalesce.OpsPerSec, durability.FsyncNoCoalesceRatio, durability.CoalescingGain,
			durability.RecoveryMillis, durability.RecoveredReads)
	}
	if err != nil {
		return fmt.Errorf("tcp suite: %w", err)
	}
	markPhase("durability")

	if p.jsonPath != "" {
		data, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(p.jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  → %s\n", p.jsonPath)
	}
	return nil
}
