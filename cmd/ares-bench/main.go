// Command ares-bench regenerates the paper's evaluation artifacts. Each
// experiment prints the table/series the corresponding paper table, theorem,
// or latency lemma reports, measured against this implementation.
//
// Usage:
//
//	ares-bench -exp all            # run everything (several minutes)
//	ares-bench -exp e1,e4,f1       # selected experiments
//	ares-bench -exp f5 -csv out/   # also write CSV series for plotting
//
// See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/ares-storage/ares/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		exp    = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		csvDir = flag.String("csv", "", "directory to write per-experiment CSV files (optional)")
	)
	flag.Parse()

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id != "" {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("no experiments selected")
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	for _, id := range ids {
		start := time.Now()
		result, err := experiments.Run(id)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Printf("\n== %s: %s  (ran in %v)\n\n", strings.ToUpper(result.ID), result.Title, time.Since(start).Round(time.Millisecond))
		result.Table.Render(os.Stdout)
		for _, note := range result.Notes {
			fmt.Printf("  • %s\n", note)
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, result.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			result.Table.RenderCSV(f)
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("  → %s\n", path)
		}
	}
	return nil
}
