// Command ares-bench regenerates the paper's evaluation artifacts and runs
// the multi-key ObjectStore workload suite. Each experiment prints the
// table/series the corresponding paper table, theorem, or latency lemma
// reports, measured against this implementation; the store suite drives
// YCSB-style multi-key workloads (uniform/zipfian key choice, read/write
// mixes, batched and key-at-a-time access) against a sharded ObjectStore.
//
// Usage:
//
//	ares-bench -exp all                  # run every paper experiment
//	ares-bench -exp e1,e4,f1             # selected experiments
//	ares-bench -exp f5 -csv out/         # also write CSV series for plotting
//	ares-bench -store                    # run the store workload suite
//	ares-bench -store -json bench.json   # …and write the JSON summary
//	ares-bench -chaos                    # run the chaos scenario matrix
//	ares-bench -chaos -scenario reconfig-under-drop -seed 42 -json v.json
//
// The chaos suite executes the adversarial scenario matrix of
// internal/chaos (partitions, asymmetric links, message drop/duplication,
// crash-restart, reconfiguration under loss) and reports a value-based
// linearizability verdict per scenario; a non-linearizable verdict exits
// non-zero. The seed can be pinned via -seed or the ARES_CHAOS_SEED
// environment variable for exact replay.
//
// See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	ares "github.com/ares-storage/ares"
	"github.com/ares-storage/ares/internal/benchutil"
	"github.com/ares-storage/ares/internal/chaos"
	"github.com/ares-storage/ares/internal/experiments"
	"github.com/ares-storage/ares/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		csvDir    = flag.String("csv", "", "directory to write per-experiment CSV files (optional)")
		store     = flag.Bool("store", false, "run the multi-key ObjectStore workload suite instead of the paper experiments")
		jsonPath  = flag.String("json", "", "file to write the selected suite's machine-readable JSON summary (implies -store unless -chaos)")
		duration  = flag.Duration("duration", 2*time.Second, "store suite: duration of each workload")
		workers   = flag.Int("workers", 8, "store suite: concurrent workers per workload")
		keys      = flag.Int("keys", 128, "store suite: key-space size")
		valSize   = flag.Int("valuesize", 1024, "store suite: value size in bytes")
		seed      = flag.Int64("seed", 1, "store/chaos suite: workload and fault-sampling seed (chaos: ARES_CHAOS_SEED overrides)")
		chaosRun  = flag.Bool("chaos", false, "run the adversarial chaos scenario matrix with linearizability verdicts")
		scenarios = flag.String("scenario", "", "chaos suite: comma-separated scenario names (default: the whole matrix)")
		stretch   = flag.Float64("stretch", 1, "chaos suite: scenario duration multiplier (soaks use > 1)")
		verbose   = flag.Bool("v", false, "chaos suite: log applied fault events and reconfigurations")
	)
	flag.Parse()

	if *chaosRun {
		return runChaosSuite(*scenarios, chaos.SeedFromEnv(*seed), *stretch, *jsonPath, *verbose)
	}
	if *store || *jsonPath != "" {
		return runStoreSuite(storeSuiteParams{
			duration: *duration,
			workers:  *workers,
			keys:     *keys,
			valSize:  *valSize,
			seed:     *seed,
			jsonPath: *jsonPath,
		})
	}
	return runExperiments(*exp, *csvDir)
}

// chaosSummary is the machine-readable artifact -chaos -json emits: the
// scenario → verdict matrix CI archives.
type chaosSummary struct {
	Generated string          `json:"generated"`
	Suite     string          `json:"suite"`
	Seed      int64           `json:"seed"`
	Stretch   float64         `json:"stretch"`
	Verdicts  []chaos.Verdict `json:"verdicts"`
}

func runChaosSuite(filter string, seed int64, stretch float64, jsonPath string, verbose bool) error {
	var selected []chaos.Scenario
	if filter == "" {
		selected = chaos.Matrix()
	} else {
		for _, name := range strings.Split(filter, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			sc, ok := chaos.Find(name)
			if !ok {
				return fmt.Errorf("chaos: unknown scenario %q", name)
			}
			selected = append(selected, sc)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("chaos: no scenarios selected")
	}

	logf := func(string, ...any) {}
	if verbose {
		logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	summary := chaosSummary{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Suite:     "chaos-scenarios",
		Seed:      seed,
		Stretch:   stretch,
	}
	table := benchutil.NewTable("scenario", "ops", "incomplete", "op errs", "reconfigs", "method", "verdict")
	failed := 0
	for _, sc := range selected {
		v, err := chaos.Run(sc, chaos.Options{Seed: seed, Stretch: stretch, Logf: logf})
		if err != nil {
			return fmt.Errorf("chaos: scenario %s: %w", sc.Name, err)
		}
		verdict := "LINEARIZABLE"
		if !v.Linearizable {
			verdict = "VIOLATION"
			failed++
		}
		// Keys may fall back to the tag check independently; the row shows
		// the per-key methods honestly rather than just the first key's.
		method := ""
		for _, kv := range v.Keys {
			switch {
			case method == "":
				method = kv.Method
			case method != kv.Method:
				method = "mixed"
			}
		}
		table.AddRow(v.Scenario, v.Ops, v.Incomplete, v.OpErrors, v.Reconfigs, method, verdict)
		summary.Verdicts = append(summary.Verdicts, v)
	}

	fmt.Printf("\n== CHAOS: adversarial scenario matrix (seed %d, stretch %.1f)\n\n", seed, stretch)
	table.Render(os.Stdout)

	if jsonPath != "" {
		data, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  → %s\n", jsonPath)
	}
	if failed > 0 {
		for _, v := range summary.Verdicts {
			if !v.Linearizable {
				fmt.Printf("  replay: %s\n", v.Replay())
			}
		}
		return fmt.Errorf("chaos: %d of %d scenarios NOT linearizable (seed %d)", failed, len(selected), seed)
	}
	return nil
}

func runExperiments(exp, csvDir string) error {
	var ids []string
	if exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(exp, ",") {
			id = strings.TrimSpace(id)
			if id != "" {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("no experiments selected")
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}

	for _, id := range ids {
		start := time.Now()
		result, err := experiments.Run(id)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Printf("\n== %s: %s  (ran in %v)\n\n", strings.ToUpper(result.ID), result.Title, time.Since(start).Round(time.Millisecond))
		result.Table.Render(os.Stdout)
		for _, note := range result.Notes {
			fmt.Printf("  • %s\n", note)
		}
		if csvDir != "" {
			path := filepath.Join(csvDir, result.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			result.Table.RenderCSV(f)
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("  → %s\n", path)
		}
	}
	return nil
}

// storeSuiteParams parameterizes one store-suite invocation.
type storeSuiteParams struct {
	duration time.Duration
	workers  int
	keys     int
	valSize  int
	seed     int64
	jsonPath string
}

// storeWorkload names one workload of the suite.
type storeWorkload struct {
	Name       string
	WriteRatio float64
	Theta      float64 // 0 = uniform
	BatchSize  int     // ≤1 = key-at-a-time
}

// storeSuite is the fixed workload matrix: key distribution × mix ×
// batching. Batched rows exercise MultiGet/MultiPut fan-out; the rest the
// per-key path.
var storeSuite = []storeWorkload{
	{Name: "read-heavy-uniform", WriteRatio: 0.05},
	{Name: "read-heavy-zipfian", WriteRatio: 0.05, Theta: 0.99},
	{Name: "balanced-zipfian", WriteRatio: 0.50, Theta: 0.99},
	{Name: "write-heavy-uniform", WriteRatio: 0.95},
	{Name: "batched-read-16", WriteRatio: 0.05, BatchSize: 16},
	{Name: "batched-write-16", WriteRatio: 0.95, BatchSize: 16},
}

// latencySummary is the JSON shape of one latency distribution.
type latencySummary struct {
	Count    int     `json:"count"`
	P50Micro float64 `json:"p50_us"`
	P95Micro float64 `json:"p95_us"`
	P99Micro float64 `json:"p99_us"`
}

func toLatencySummary(s benchutil.Summary) latencySummary {
	return latencySummary{
		Count:    s.Count,
		P50Micro: float64(s.P50) / float64(time.Microsecond),
		P95Micro: float64(s.P95) / float64(time.Microsecond),
		P99Micro: float64(s.P99) / float64(time.Microsecond),
	}
}

// workloadResult is the JSON shape of one workload's outcome.
type workloadResult struct {
	Name        string         `json:"name"`
	WriteRatio  float64        `json:"write_ratio"`
	Theta       float64        `json:"theta"`
	BatchSize   int            `json:"batch_size"`
	Ops         int            `json:"ops"`
	Errors      int            `json:"errors"`
	OpsPerSec   float64        `json:"ops_per_sec"`
	KeysTouched int            `json:"keys_touched"`
	Read        latencySummary `json:"read"`
	Write       latencySummary `json:"write"`
}

// firstTouchResult reports the high-cardinality first-touch phase: the cost
// of the very first operation on N fresh keys under keyed hosting. The
// install_rpcs field pins the zero-installation invariant; heap bytes/key
// and service_instances are the per-key footprint the keyed refactor turned
// from "installed service stack" into "map entries".
type firstTouchResult struct {
	Keys             int            `json:"keys"`
	Latency          latencySummary `json:"latency"`
	OpsPerSec        float64        `json:"ops_per_sec"`
	HeapBytesPerKey  float64        `json:"heap_bytes_per_key"`
	ServiceInstances int            `json:"service_instances"`
	InstallRPCs      int64          `json:"install_rpcs"`
}

// suiteSummary is the machine-readable artifact -json emits, shaped to seed
// the BENCH_*.json perf trajectory.
type suiteSummary struct {
	Generated  string            `json:"generated"`
	Suite      string            `json:"suite"`
	DurationMS int64             `json:"duration_ms_per_workload"`
	Workers    int               `json:"workers"`
	Keys       int               `json:"keys"`
	ValueSize  int               `json:"value_size"`
	Seed       int64             `json:"seed"`
	FirstTouch *firstTouchResult `json:"first_touch,omitempty"`
	Workloads  []workloadResult  `json:"workloads"`
}

// newSuiteStore deploys a fresh cluster + sharded ObjectStore for one
// workload, isolated so workloads don't warm each other's registers.
func newSuiteStore(prefix string, opts ...ares.NetworkOption) (*ares.ObjectStore, *ares.Cluster, *ares.Network, error) {
	const n, k, delta = 5, 3, 32
	template := ares.Config{Algorithm: ares.TREAS, K: k, Delta: delta}
	for i := 1; i <= n; i++ {
		template.Servers = append(template.Servers, ares.ProcessID(fmt.Sprintf("%s-s%d", prefix, i)))
	}
	root := template
	root.ID = ares.ConfigID(prefix + "/root")
	net := ares.NewSimNetwork(opts...)
	cluster, err := ares.NewCluster(root, net)
	if err != nil {
		return nil, nil, nil, err
	}
	store, err := ares.NewObjectStore(cluster, template)
	if err != nil {
		return nil, nil, nil, err
	}
	return store, cluster, net, nil
}

// runFirstTouch drives one Put against each of p.keys fresh keys with
// p.workers concurrent workers over a zero-delay network, so the recorded
// latency is the system's own first-touch cost (state materialization, not
// simulated wire time). It verifies on the way that no install RPC crossed
// the wire and that the service-instance count stayed flat.
func runFirstTouch(p storeSuiteParams) (*firstTouchResult, error) {
	store, cluster, net, err := newSuiteStore("bench-firsttouch")
	if err != nil {
		return nil, err
	}
	instancesBefore := cluster.ServiceInstances()
	net.Counters().Reset()
	lat := benchutil.NewLatencyRecorder()
	value := make(ares.Value, p.valSize)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	ctx := context.Background()
	workers := p.workers
	if workers < 1 {
		workers = 1
	}
	var (
		wg      sync.WaitGroup
		latMu   sync.Mutex
		firstEr error
		erMu    sync.Mutex
	)
	next := make(chan string, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for key := range next {
				opStart := time.Now()
				err := store.Put(ctx, key, value)
				d := time.Since(opStart)
				if err != nil {
					erMu.Lock()
					if firstEr == nil {
						firstEr = fmt.Errorf("first touch of %s: %w", key, err)
					}
					erMu.Unlock()
					continue
				}
				latMu.Lock()
				lat.Record(d)
				latMu.Unlock()
			}
		}()
	}
	for i := 0; i < p.keys; i++ {
		next <- fmt.Sprintf("ft-%07d", i)
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)
	if firstEr != nil {
		return nil, firstEr
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	heapPerKey := float64(int64(after.HeapAlloc)-int64(before.HeapAlloc)) / float64(p.keys)

	if rpcs := net.Counters().TotalMessages(ares.CtlServiceName); rpcs != 0 {
		return nil, fmt.Errorf("first-touch phase performed %d install RPCs, want 0", rpcs)
	}
	if got := cluster.ServiceInstances(); got != instancesBefore {
		return nil, fmt.Errorf("service instances grew %d → %d across %d keys", instancesBefore, got, p.keys)
	}
	return &firstTouchResult{
		Keys:             p.keys,
		Latency:          toLatencySummary(lat.Summarize()),
		OpsPerSec:        float64(p.keys) / elapsed.Seconds(),
		HeapBytesPerKey:  heapPerKey,
		ServiceInstances: cluster.ServiceInstances(),
		InstallRPCs:      0,
	}, nil
}

func runStoreSuite(p storeSuiteParams) error {
	summary := suiteSummary{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Suite:      "objectstore-multikey",
		DurationMS: p.duration.Milliseconds(),
		Workers:    p.workers,
		Keys:       p.keys,
		ValueSize:  p.valSize,
		Seed:       p.seed,
	}
	table := benchutil.NewTable("workload", "ops", "errs", "ops/s", "keys", "read p50", "read p99", "write p50", "write p99")

	// High-cardinality first-touch phase: p.keys fresh keys, no installs.
	ft, err := runFirstTouch(p)
	if err != nil {
		return fmt.Errorf("store suite first-touch: %w", err)
	}
	summary.FirstTouch = ft

	for _, w := range storeSuite {
		store, _, _, err := newSuiteStore("bench-"+w.Name,
			ares.WithDelayRange(100*time.Microsecond, 300*time.Microsecond))
		if err != nil {
			return fmt.Errorf("store suite %s: %w", w.Name, err)
		}
		readLat := benchutil.NewLatencyRecorder()
		writeLat := benchutil.NewLatencyRecorder()
		d := workload.MultiDriver{
			Workers:    p.workers,
			WriteRatio: w.WriteRatio,
			Duration:   p.duration,
			ValueSize:  p.valSize,
			Keys:       p.keys,
			Theta:      w.Theta,
			BatchSize:  w.BatchSize,
			Seed:       p.seed,
			OnLatency: func(write bool, lat time.Duration) {
				if write {
					writeLat.Record(lat)
				} else {
					readLat.Record(lat)
				}
			},
		}
		stats, err := d.Run(context.Background(), store)
		if err != nil {
			return fmt.Errorf("store suite %s: %w", w.Name, err)
		}
		rs, ws := readLat.Summarize(), writeLat.Summarize()
		table.AddRow(w.Name, stats.Ops(), stats.ReadErrs+stats.WriteErrs, stats.Throughput(),
			stats.KeysTouched, rs.P50, rs.P99, ws.P50, ws.P99)
		summary.Workloads = append(summary.Workloads, workloadResult{
			Name:        w.Name,
			WriteRatio:  w.WriteRatio,
			Theta:       w.Theta,
			BatchSize:   w.BatchSize,
			Ops:         stats.Ops(),
			Errors:      stats.ReadErrs + stats.WriteErrs,
			OpsPerSec:   stats.Throughput(),
			KeysTouched: stats.KeysTouched,
			Read:        toLatencySummary(rs),
			Write:       toLatencySummary(ws),
		})
	}

	fmt.Printf("\n== STORE: multi-key ObjectStore workload suite (%v per workload, %d workers, %d keys)\n\n",
		p.duration, p.workers, p.keys)
	table.Render(os.Stdout)
	fmt.Printf("\n  first-touch (%d fresh keys): p50 %.0fµs p99 %.0fµs, %.0f ops/s, %.0f heap B/key, %d service instances, %d install RPCs\n",
		ft.Keys, ft.Latency.P50Micro, ft.Latency.P99Micro, ft.OpsPerSec, ft.HeapBytesPerKey, ft.ServiceInstances, ft.InstallRPCs)

	if p.jsonPath != "" {
		data, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(p.jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  → %s\n", p.jsonPath)
	}
	return nil
}
