// Command ares-bench regenerates the paper's evaluation artifacts and runs
// the multi-key ObjectStore workload suite. Each experiment prints the
// table/series the corresponding paper table, theorem, or latency lemma
// reports, measured against this implementation; the store suite drives
// YCSB-style multi-key workloads (uniform/zipfian key choice, read/write
// mixes, batched and key-at-a-time access) against a sharded ObjectStore.
//
// Usage:
//
//	ares-bench -exp all                  # run every paper experiment
//	ares-bench -exp e1,e4,f1             # selected experiments
//	ares-bench -exp f5 -csv out/         # also write CSV series for plotting
//	ares-bench -store                    # run the store workload suite
//	ares-bench -store -json bench.json   # …and write the JSON summary
//	ares-bench -chaos                    # run the chaos scenario matrix
//	ares-bench -chaos -scenario reconfig-under-drop -seed 42 -json v.json
//
// The chaos suite executes the adversarial scenario matrix of
// internal/chaos (partitions, asymmetric links, message drop/duplication,
// crash-restart, reconfiguration under loss) and reports a value-based
// linearizability verdict per scenario; a non-linearizable verdict exits
// non-zero. The seed can be pinned via -seed or the ARES_CHAOS_SEED
// environment variable for exact replay.
//
// See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ares "github.com/ares-storage/ares"
	"github.com/ares-storage/ares/internal/benchutil"
	"github.com/ares-storage/ares/internal/chaos"
	"github.com/ares-storage/ares/internal/experiments"
	"github.com/ares-storage/ares/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		csvDir    = flag.String("csv", "", "directory to write per-experiment CSV files (optional)")
		store     = flag.Bool("store", false, "run the multi-key ObjectStore workload suite instead of the paper experiments")
		jsonPath  = flag.String("json", "", "file to write the selected suite's machine-readable JSON summary (implies -store unless -chaos)")
		duration  = flag.Duration("duration", 2*time.Second, "store suite: duration of each workload")
		workers   = flag.Int("workers", 8, "store suite: concurrent workers per workload")
		keys      = flag.Int("keys", 128, "store suite: key-space size")
		valSize   = flag.Int("valuesize", 1024, "store suite: value size in bytes")
		seed      = flag.Int64("seed", 1, "store/chaos suite: workload and fault-sampling seed (chaos: ARES_CHAOS_SEED overrides)")
		chaosRun  = flag.Bool("chaos", false, "run the adversarial chaos scenario matrix with linearizability verdicts")
		scenarios = flag.String("scenario", "", "chaos suite: comma-separated scenario names (default: the whole matrix)")
		stretch   = flag.Float64("stretch", 1, "chaos suite: scenario duration multiplier (soaks use > 1)")
		verbose   = flag.Bool("v", false, "chaos/tcp suite: log fault events (chaos) or server output (tcp)")
		tcpRun    = flag.Bool("tcp", false, "run the real-network suite against a spawned multi-process ares-server cluster")
		tcpSrvs   = flag.Int("tcp-servers", 3, "tcp suite: number of ares-server processes to spawn (min 3)")
		serverBin = flag.String("server-bin", "", "tcp suite: prebuilt ares-server binary (default: go build from the module)")
		adaptRun  = flag.Bool("adaptive", false, "run the adaptive-vs-static suite: the telemetry controller against fixed configurations over a drifting workload")
		adaptDur  = flag.Duration("adaptive-duration", 8*time.Second, "adaptive suite: duration of each leg (two workload phases per leg); ~8s amortizes the controller's adaptation lag")
	)
	flag.Parse()

	if *chaosRun {
		return runChaosSuite(*scenarios, chaos.SeedFromEnv(*seed), *stretch, *jsonPath, *verbose)
	}
	if *adaptRun {
		return runAdaptiveSuite(adaptiveSuiteParams{
			duration: *adaptDur,
			workers:  *workers,
			seed:     *seed,
			jsonPath: *jsonPath,
		})
	}
	if *tcpRun {
		return runTCPSuite(tcpSuiteParams{
			servers:   *tcpSrvs,
			duration:  *duration,
			workers:   *workers,
			keys:      *keys,
			valSize:   *valSize,
			seed:      *seed,
			jsonPath:  *jsonPath,
			serverBin: *serverBin,
			verbose:   *verbose,
		})
	}
	if *store || *jsonPath != "" {
		return runStoreSuite(storeSuiteParams{
			duration: *duration,
			workers:  *workers,
			keys:     *keys,
			valSize:  *valSize,
			seed:     *seed,
			jsonPath: *jsonPath,
		})
	}
	return runExperiments(*exp, *csvDir)
}

// chaosSummary is the machine-readable artifact -chaos -json emits: the
// scenario → verdict matrix CI archives.
type chaosSummary struct {
	Generated string          `json:"generated"`
	Suite     string          `json:"suite"`
	Seed      int64           `json:"seed"`
	Stretch   float64         `json:"stretch"`
	Verdicts  []chaos.Verdict `json:"verdicts"`
}

func runChaosSuite(filter string, seed int64, stretch float64, jsonPath string, verbose bool) error {
	var selected []chaos.Scenario
	if filter == "" {
		selected = chaos.Matrix()
	} else {
		for _, name := range strings.Split(filter, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			sc, ok := chaos.Find(name)
			if !ok {
				return fmt.Errorf("chaos: unknown scenario %q", name)
			}
			selected = append(selected, sc)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("chaos: no scenarios selected")
	}

	logf := func(string, ...any) {}
	if verbose {
		logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	summary := chaosSummary{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Suite:     "chaos-scenarios",
		Seed:      seed,
		Stretch:   stretch,
	}
	table := benchutil.NewTable("scenario", "ops", "incomplete", "op errs", "reconfigs", "states", "retired", "method", "verdict")
	failed := 0
	for _, sc := range selected {
		v, err := chaos.Run(sc, chaos.Options{Seed: seed, Stretch: stretch, Logf: logf})
		if err != nil {
			return fmt.Errorf("chaos: scenario %s: %w", sc.Name, err)
		}
		verdict := "LINEARIZABLE"
		if !v.Linearizable {
			verdict = "VIOLATION"
			failed++
		} else if v.StateBoundExceeded {
			// The lifecycle GC let per-server state grow past the scenario's
			// bound: an unbounded-leak regression, failed like a safety one.
			verdict = "STATE-LEAK"
			failed++
		} else if sc.AdaptiveProfiles != nil && v.AutoReconfigs == 0 {
			// A workload-shift scenario where the controller never moved a
			// key means the telemetry loop is dead — fail it even though the
			// (static) history stayed linearizable.
			verdict = "NO-ADAPT"
			failed++
		}
		// Keys may fall back to the tag check independently; the row shows
		// the per-key methods honestly rather than just the first key's.
		method := ""
		for _, kv := range v.Keys {
			switch {
			case method == "":
				method = kv.Method
			case method != kv.Method:
				method = "mixed"
			}
		}
		table.AddRow(v.Scenario, v.Ops, v.Incomplete, v.OpErrors,
			fmt.Sprintf("%d+%da", v.Reconfigs, v.AutoReconfigs),
			v.ServerStates, v.RetiredStates, method, verdict)
		summary.Verdicts = append(summary.Verdicts, v)
	}

	fmt.Printf("\n== CHAOS: adversarial scenario matrix (seed %d, stretch %.1f)\n\n", seed, stretch)
	table.Render(os.Stdout)

	if jsonPath != "" {
		data, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  → %s\n", jsonPath)
	}
	if failed > 0 {
		for _, v := range summary.Verdicts {
			if !v.Linearizable || v.StateBoundExceeded {
				fmt.Printf("  replay: %s\n", v.Replay())
			}
		}
		return fmt.Errorf("chaos: %d of %d scenarios failed (linearizability or state bound; seed %d)", failed, len(selected), seed)
	}
	return nil
}

func runExperiments(exp, csvDir string) error {
	var ids []string
	if exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(exp, ",") {
			id = strings.TrimSpace(id)
			if id != "" {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("no experiments selected")
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}

	for _, id := range ids {
		start := time.Now()
		result, err := experiments.Run(id)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Printf("\n== %s: %s  (ran in %v)\n\n", strings.ToUpper(result.ID), result.Title, time.Since(start).Round(time.Millisecond))
		result.Table.Render(os.Stdout)
		for _, note := range result.Notes {
			fmt.Printf("  • %s\n", note)
		}
		if csvDir != "" {
			path := filepath.Join(csvDir, result.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			result.Table.RenderCSV(f)
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("  → %s\n", path)
		}
	}
	return nil
}

// storeSuiteParams parameterizes one store-suite invocation.
type storeSuiteParams struct {
	duration time.Duration
	workers  int
	keys     int
	valSize  int
	seed     int64
	jsonPath string
}

// storeWorkload names one workload of the suite.
type storeWorkload struct {
	Name       string
	WriteRatio float64
	Theta      float64 // 0 = uniform
	BatchSize  int     // ≤1 = key-at-a-time
}

// storeSuite is the fixed workload matrix: key distribution × mix ×
// batching. Batched rows exercise MultiGet/MultiPut fan-out; the rest the
// per-key path.
var storeSuite = []storeWorkload{
	{Name: "read-heavy-uniform", WriteRatio: 0.05},
	{Name: "read-heavy-zipfian", WriteRatio: 0.05, Theta: 0.99},
	{Name: "balanced-zipfian", WriteRatio: 0.50, Theta: 0.99},
	{Name: "write-heavy-uniform", WriteRatio: 0.95},
	{Name: "batched-read-16", WriteRatio: 0.05, BatchSize: 16},
	{Name: "batched-write-16", WriteRatio: 0.95, BatchSize: 16},
}

// latencySummary is the JSON shape of one latency distribution.
type latencySummary struct {
	Count    int     `json:"count"`
	P50Micro float64 `json:"p50_us"`
	P95Micro float64 `json:"p95_us"`
	P99Micro float64 `json:"p99_us"`
}

func toLatencySummary(s benchutil.Summary) latencySummary {
	return latencySummary{
		Count:    s.Count,
		P50Micro: float64(s.P50) / float64(time.Microsecond),
		P95Micro: float64(s.P95) / float64(time.Microsecond),
		P99Micro: float64(s.P99) / float64(time.Microsecond),
	}
}

// workloadResult is the JSON shape of one workload's outcome.
type workloadResult struct {
	Name        string         `json:"name"`
	WriteRatio  float64        `json:"write_ratio"`
	Theta       float64        `json:"theta"`
	BatchSize   int            `json:"batch_size"`
	Ops         int            `json:"ops"`
	Errors      int            `json:"errors"`
	OpsPerSec   float64        `json:"ops_per_sec"`
	KeysTouched int            `json:"keys_touched"`
	Read        latencySummary `json:"read"`
	Write       latencySummary `json:"write"`
}

// firstTouchResult reports the high-cardinality first-touch phase: the cost
// of the very first operation on N fresh keys under keyed hosting. The
// install_rpcs field pins the zero-installation invariant; heap bytes/key
// and service_instances are the per-key footprint the keyed refactor turned
// from "installed service stack" into "map entries".
type firstTouchResult struct {
	Keys             int            `json:"keys"`
	Latency          latencySummary `json:"latency"`
	OpsPerSec        float64        `json:"ops_per_sec"`
	HeapBytesPerKey  float64        `json:"heap_bytes_per_key"`
	ServiceInstances int            `json:"service_instances"`
	InstallRPCs      int64          `json:"install_rpcs"`
}

// reconfigChurnResult reports the reconfiguration-churn phase: every key's
// register walks through a chain of configurations, and the
// finalization-driven lifecycle GC must retire the superseded per-(key,
// config) server state. retired_states pins that GC fired; live_states /
// live_states_per_key pin that retained state is O(live configs), not
// O(walks); heap_bytes_per_key (measured after evicting the store's idle
// per-key clients and a runtime GC) against the no-churn baseline pins that
// the reclaimed memory is real. The phase fails the run when GC never fires,
// when live state grows with walks, or when post-churn heap exceeds 1.5× the
// baseline.
type reconfigChurnResult struct {
	Keys                    int     `json:"keys"`
	WalksPerKey             int     `json:"walks_per_key"`
	Reconfigs               int     `json:"reconfigs"`
	RetiredStates           int64   `json:"retired_states"`
	LiveStates              int     `json:"live_states"`
	LiveStatesPerKey        float64 `json:"live_states_per_key"`
	BaselineHeapBytesPerKey float64 `json:"baseline_heap_bytes_per_key"`
	HeapBytesPerKey         float64 `json:"heap_bytes_per_key"`
	HeapRatio               float64 `json:"heap_ratio"`
	ClientsEvicted          int     `json:"clients_evicted"`
	SecondsTotal            float64 `json:"seconds_total"`
}

// suiteSummary is the machine-readable artifact -json emits, shaped to seed
// the BENCH_*.json perf trajectory.
type suiteSummary struct {
	Generated     string               `json:"generated"`
	Suite         string               `json:"suite"`
	DurationMS    int64                `json:"duration_ms_per_workload"`
	Workers       int                  `json:"workers"`
	Keys          int                  `json:"keys"`
	ValueSize     int                  `json:"value_size"`
	Seed          int64                `json:"seed"`
	FirstTouch    *firstTouchResult    `json:"first_touch,omitempty"`
	ReconfigChurn *reconfigChurnResult `json:"reconfig_churn,omitempty"`
	Workloads     []workloadResult     `json:"workloads"`
}

// newSuiteStore deploys a fresh cluster + sharded ObjectStore for one
// workload, isolated so workloads don't warm each other's registers.
func newSuiteStore(prefix string, opts ...ares.NetworkOption) (*ares.ObjectStore, *ares.Cluster, *ares.Network, error) {
	const n, k, delta = 5, 3, 32
	template := ares.Config{Algorithm: ares.TREAS, K: k, Delta: delta}
	for i := 1; i <= n; i++ {
		template.Servers = append(template.Servers, ares.ProcessID(fmt.Sprintf("%s-s%d", prefix, i)))
	}
	root := template
	root.ID = ares.ConfigID(prefix + "/root")
	net := ares.NewSimNetwork(opts...)
	cluster, err := ares.NewCluster(root, net)
	if err != nil {
		return nil, nil, nil, err
	}
	store, err := ares.NewObjectStore(cluster, template)
	if err != nil {
		return nil, nil, nil, err
	}
	return store, cluster, net, nil
}

// runFirstTouch drives one Put against each of p.keys fresh keys with
// p.workers concurrent workers over a zero-delay network, so the recorded
// latency is the system's own first-touch cost (state materialization, not
// simulated wire time). It verifies on the way that no install RPC crossed
// the wire and that the service-instance count stayed flat.
func runFirstTouch(p storeSuiteParams) (*firstTouchResult, error) {
	store, cluster, net, err := newSuiteStore("bench-firsttouch")
	if err != nil {
		return nil, err
	}
	instancesBefore := cluster.ServiceInstances()
	net.Counters().Reset()
	lat := benchutil.NewLatencyRecorder()
	value := make(ares.Value, p.valSize)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	ctx := context.Background()
	workers := p.workers
	if workers < 1 {
		workers = 1
	}
	var (
		wg      sync.WaitGroup
		latMu   sync.Mutex
		firstEr error
		erMu    sync.Mutex
	)
	next := make(chan string, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for key := range next {
				opStart := time.Now()
				err := store.Put(ctx, key, value)
				d := time.Since(opStart)
				if err != nil {
					erMu.Lock()
					if firstEr == nil {
						firstEr = fmt.Errorf("first touch of %s: %w", key, err)
					}
					erMu.Unlock()
					continue
				}
				latMu.Lock()
				lat.Record(d)
				latMu.Unlock()
			}
		}()
	}
	for i := 0; i < p.keys; i++ {
		next <- fmt.Sprintf("ft-%07d", i)
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)
	if firstEr != nil {
		return nil, firstEr
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	heapPerKey := float64(int64(after.HeapAlloc)-int64(before.HeapAlloc)) / float64(p.keys)

	if rpcs := net.Counters().TotalMessages(ares.CtlServiceName); rpcs != 0 {
		return nil, fmt.Errorf("first-touch phase performed %d install RPCs, want 0", rpcs)
	}
	if got := cluster.ServiceInstances(); got != instancesBefore {
		return nil, fmt.Errorf("service instances grew %d → %d across %d keys", instancesBefore, got, p.keys)
	}
	result := &firstTouchResult{
		Keys:             p.keys,
		Latency:          toLatencySummary(lat.Summarize()),
		OpsPerSec:        float64(p.keys) / elapsed.Seconds(),
		HeapBytesPerKey:  heapPerKey,
		ServiceInstances: cluster.ServiceInstances(),
		InstallRPCs:      0,
	}
	cluster.Close()
	return result, nil
}

// Reconfig-churn phase constants: ≥1k walks across ≥100 keys (the lifecycle
// GC acceptance regime), sized independently of the workload flags so every
// run pins the same invariant.
const (
	churnKeys        = 100
	churnWalksPerKey = 10
	// churnMaxLivePerKey bounds retained server state per key after churn
	// settles. Live window ≈ tail DAP + tail pointer across 5 servers (~10)
	// plus stragglers; without GC the 11-config chain retains 100+.
	churnMaxLivePerKey = 60.0
	// churnMaxHeapRatio bounds post-GC heap per key against the no-churn
	// baseline.
	churnMaxHeapRatio = 1.5
)

// churnHeapPerKey measures the store-side steady heap per key: touch every
// key once and report the GC-settled heap delta divided by the key count.
func churnHeapPerKey(store *ares.ObjectStore, keys []string, value ares.Value, workers int) (float64, error) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := touchKeys(store, keys, value, workers); err != nil {
		return 0, err
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return float64(int64(after.HeapAlloc)-int64(before.HeapAlloc)) / float64(len(keys)), nil
}

// forEachKey runs fn for every key with bounded parallelism, returning the
// first error. After a failure the remaining keys are still drained (but
// skipped) so the feeder never blocks on a full channel.
func forEachKey(keys []string, workers int, fn func(key string) error) error {
	var (
		wg      sync.WaitGroup
		erMu    sync.Mutex
		firstEr error
	)
	failed := func() bool {
		erMu.Lock()
		defer erMu.Unlock()
		return firstEr != nil
	}
	next := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for key := range next {
				if failed() {
					continue
				}
				if err := fn(key); err != nil {
					erMu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					erMu.Unlock()
				}
			}
		}()
	}
	for _, k := range keys {
		next <- k
	}
	close(next)
	wg.Wait()
	return firstEr
}

// touchKeys puts value to every key with bounded parallelism.
func touchKeys(store *ares.ObjectStore, keys []string, value ares.Value, workers int) error {
	ctx := context.Background()
	return forEachKey(keys, workers, func(key string) error {
		if err := store.Put(ctx, key, value); err != nil {
			return fmt.Errorf("touch %s: %w", key, err)
		}
		return nil
	})
}

// runReconfigChurn drives churnWalksPerKey reconfiguration walks on each of
// churnKeys keys and checks the lifecycle-GC invariants (see
// reconfigChurnResult). The no-churn baseline comes from an identical store
// that only touches its keys.
func runReconfigChurn(p storeSuiteParams) (*reconfigChurnResult, error) {
	workers := p.workers
	if workers < 1 {
		workers = 1
	}
	value := make(ares.Value, 128)
	keys := make([]string, churnKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("ck-%04d", i)
	}

	// Baseline: same shape, no churn.
	baseStore, baseCluster, _, err := newSuiteStore("bench-churnbase")
	if err != nil {
		return nil, err
	}
	baselineHeap, err := churnHeapPerKey(baseStore, keys, value, workers)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	baseCluster.Close()

	store, cluster, _, err := newSuiteStore("bench-churn")
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	// The walk targets reuse the suite's server set (same shape as
	// newSuiteStore's template).
	var servers []ares.ProcessID
	for i := 1; i <= 5; i++ {
		servers = append(servers, ares.ProcessID(fmt.Sprintf("bench-churn-s%d", i)))
	}

	// Heap census start: everything from here to the post-churn census —
	// per-key server state across 10 walks, tombstones, archives — lands in
	// the delta, measured exactly like the baseline's.
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := touchKeys(store, keys, value, workers); err != nil {
		return nil, err
	}

	start := time.Now()
	ctx := context.Background()
	var reconfigs atomic.Int64
	err = forEachKey(keys, workers, func(key string) error {
		for i := 1; i <= churnWalksPerKey; i++ {
			target := ares.Config{
				ID:      ares.ConfigID(fmt.Sprintf("bench-churn/%s/c%d", key, i)),
				Servers: servers,
			}
			if i%2 == 0 {
				target.Algorithm = ares.ABD
			} else {
				target.Algorithm = ares.TREAS
				target.K = 3
				target.Delta = 32
			}
			if err := store.ReconfigureKey(ctx, key, target, ares.ReconOptions{}); err != nil {
				return fmt.Errorf("churn walk %d of %s: %w", i, key, err)
			}
			reconfigs.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// One post-churn read per key exercises the redirect path end to end
	// (clients re-discover the chain tail; retired configs answer from the
	// archive) before the state census.
	for _, k := range keys {
		if _, err := store.Get(ctx, k); err != nil {
			return nil, fmt.Errorf("post-churn read of %s: %w", k, err)
		}
	}

	// Let asynchronous finalization gossip settle, then census.
	deadline := time.Now().Add(3 * time.Second)
	live := cluster.MaterializedStates()
	for float64(live) > churnMaxLivePerKey*float64(len(keys)) && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
		live = cluster.MaterializedStates()
	}
	retired := cluster.RetiredStates()

	// Client-side bound: evict the store's idle per-key clients (each pins a
	// full configuration-sequence history) so the census measures retained
	// server state plus compact tombstones, the terms this phase bounds.
	evicted := store.EvictIdle(0)
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	heapPerKey := float64(int64(after.HeapAlloc)-int64(before.HeapAlloc)) / float64(len(keys))

	result := &reconfigChurnResult{
		Keys:                    len(keys),
		WalksPerKey:             churnWalksPerKey,
		Reconfigs:               int(reconfigs.Load()),
		RetiredStates:           retired,
		LiveStates:              live,
		LiveStatesPerKey:        float64(live) / float64(len(keys)),
		BaselineHeapBytesPerKey: baselineHeap,
		HeapBytesPerKey:         heapPerKey,
		ClientsEvicted:          evicted,
		SecondsTotal:            time.Since(start).Seconds(),
	}
	if baselineHeap > 0 {
		result.HeapRatio = heapPerKey / baselineHeap
	}

	fmt.Printf("  [churn census] live=%d (%.1f/key) retired=%d evicted=%d heap %.0f → %.0f B/key (%.2fx)\n",
		live, result.LiveStatesPerKey, retired, evicted, baselineHeap, heapPerKey, result.HeapRatio)

	if retired == 0 {
		return nil, fmt.Errorf("reconfig churn: %d walks completed but retired_states = 0 — lifecycle GC never fired", reconfigs.Load())
	}
	if result.LiveStatesPerKey > churnMaxLivePerKey {
		return nil, fmt.Errorf("reconfig churn: %.1f live states per key after %d walks/key (bound %.0f) — retained state grows with walks",
			result.LiveStatesPerKey, churnWalksPerKey, churnMaxLivePerKey)
	}
	if baselineHeap > 0 && result.HeapRatio > churnMaxHeapRatio {
		return nil, fmt.Errorf("reconfig churn: post-GC heap %.0f B/key is %.2fx the no-churn baseline %.0f B/key (bound %.1fx)",
			heapPerKey, result.HeapRatio, baselineHeap, churnMaxHeapRatio)
	}
	return result, nil
}

func runStoreSuite(p storeSuiteParams) error {
	summary := suiteSummary{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Suite:      "objectstore-multikey",
		DurationMS: p.duration.Milliseconds(),
		Workers:    p.workers,
		Keys:       p.keys,
		ValueSize:  p.valSize,
		Seed:       p.seed,
	}
	table := benchutil.NewTable("workload", "ops", "errs", "ops/s", "keys", "read p50", "read p99", "write p50", "write p99")

	// High-cardinality first-touch phase: p.keys fresh keys, no installs.
	ft, err := runFirstTouch(p)
	if err != nil {
		return fmt.Errorf("store suite first-touch: %w", err)
	}
	summary.FirstTouch = ft

	// Reconfiguration-churn phase: 1k walks across 100 keys must leave
	// retired_states > 0, O(live) retained state, and bounded post-GC heap.
	churn, err := runReconfigChurn(p)
	if err != nil {
		return fmt.Errorf("store suite reconfig-churn: %w", err)
	}
	summary.ReconfigChurn = churn

	for _, w := range storeSuite {
		store, wlCluster, _, err := newSuiteStore("bench-"+w.Name,
			ares.WithDelayRange(100*time.Microsecond, 300*time.Microsecond))
		if err != nil {
			return fmt.Errorf("store suite %s: %w", w.Name, err)
		}
		readLat := benchutil.NewLatencyRecorder()
		writeLat := benchutil.NewLatencyRecorder()
		d := workload.MultiDriver{
			Workers:    p.workers,
			WriteRatio: w.WriteRatio,
			Duration:   p.duration,
			ValueSize:  p.valSize,
			Keys:       p.keys,
			Theta:      w.Theta,
			BatchSize:  w.BatchSize,
			Seed:       p.seed,
			OnLatency: func(write bool, lat time.Duration) {
				if write {
					writeLat.Record(lat)
				} else {
					readLat.Record(lat)
				}
			},
		}
		stats, err := d.Run(context.Background(), store)
		wlCluster.Close()
		if err != nil {
			return fmt.Errorf("store suite %s: %w", w.Name, err)
		}
		rs, ws := readLat.Summarize(), writeLat.Summarize()
		table.AddRow(w.Name, stats.Ops(), stats.ReadErrs+stats.WriteErrs, stats.Throughput(),
			stats.KeysTouched, rs.P50, rs.P99, ws.P50, ws.P99)
		summary.Workloads = append(summary.Workloads, workloadResult{
			Name:        w.Name,
			WriteRatio:  w.WriteRatio,
			Theta:       w.Theta,
			BatchSize:   w.BatchSize,
			Ops:         stats.Ops(),
			Errors:      stats.ReadErrs + stats.WriteErrs,
			OpsPerSec:   stats.Throughput(),
			KeysTouched: stats.KeysTouched,
			Read:        toLatencySummary(rs),
			Write:       toLatencySummary(ws),
		})
	}

	fmt.Printf("\n== STORE: multi-key ObjectStore workload suite (%v per workload, %d workers, %d keys)\n\n",
		p.duration, p.workers, p.keys)
	table.Render(os.Stdout)
	fmt.Printf("\n  first-touch (%d fresh keys): p50 %.0fµs p99 %.0fµs, %.0f ops/s, %.0f heap B/key, %d service instances, %d install RPCs\n",
		ft.Keys, ft.Latency.P50Micro, ft.Latency.P99Micro, ft.OpsPerSec, ft.HeapBytesPerKey, ft.ServiceInstances, ft.InstallRPCs)
	fmt.Printf("  reconfig-churn (%d keys × %d walks in %.1fs): %d states retired, %.1f live states/key, heap %.0f → %.0f B/key (%.2fx), %d clients evicted\n",
		churn.Keys, churn.WalksPerKey, churn.SecondsTotal, churn.RetiredStates, churn.LiveStatesPerKey,
		churn.BaselineHeapBytesPerKey, churn.HeapBytesPerKey, churn.HeapRatio, churn.ClientsEvicted)

	if p.jsonPath != "" {
		data, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(p.jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  → %s\n", p.jsonPath)
	}
	return nil
}
