package ares_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	ares "github.com/ares-storage/ares"
	"github.com/ares-storage/ares/internal/history"
)

// linScenario describes one randomized linearizability soak.
type linScenario struct {
	name     string
	initial  ares.Config
	chain    []ares.Config
	writers  int
	readers  int
	crash    int // servers of the initial configuration to crash
	direct   bool
	seed     int64
	duration time.Duration
}

// runLinScenario drives concurrent clients against a cluster under the
// scenario's churn and checks the recorded history for atomicity.
func runLinScenario(t *testing.T, sc linScenario) {
	t.Helper()
	net := ares.NewSimNetwork(ares.WithDelayRange(0, time.Millisecond), ares.WithSeed(sc.seed))
	cluster, err := ares.NewCluster(sc.initial, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	for _, c := range sc.chain {
		for _, s := range c.Servers {
			cluster.AddHost(s)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	rec := history.NewRecorder()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for i := 0; i < sc.writers; i++ {
		id := ares.ProcessID(fmt.Sprintf("w%d", i))
		client, err := cluster.NewClient(id)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id ares.ProcessID, client *ares.Client) {
			defer wg.Done()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				v := ares.Value(fmt.Sprintf("%s/%d", id, seq))
				p := rec.BeginWrite(id, v)
				tg, err := client.Write(ctx, v)
				if err != nil {
					p.Fail() // retained as incomplete: the write may have landed
					if ctx.Err() == nil {
						t.Errorf("%s write: %v", id, err)
					}
					return
				}
				p.Done(tg, v)
			}
		}(id, client)
	}
	for i := 0; i < sc.readers; i++ {
		id := ares.ProcessID(fmt.Sprintf("r%d", i))
		client, err := cluster.NewClient(id)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id ares.ProcessID, client *ares.Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := rec.BeginRead(id)
				pair, err := client.Read(ctx)
				if err != nil {
					p.Fail()
					if ctx.Err() == nil {
						t.Errorf("%s read: %v", id, err)
					}
					return
				}
				p.Done(pair.Tag, pair.Value)
			}
		}(id, client)
	}

	// Churn: crashes then reconfigurations, spread over the run.
	for i := 0; i < sc.crash; i++ {
		time.Sleep(sc.duration / 4)
		net.Crash(sc.initial.Servers[len(sc.initial.Servers)-1-i])
	}
	if len(sc.chain) > 0 {
		g, err := cluster.NewReconfigurer("g1", ares.ReconOptions{DirectTransfer: sc.direct})
		if err != nil {
			t.Fatal(err)
		}
		for _, next := range sc.chain {
			time.Sleep(sc.duration / time.Duration(len(sc.chain)+1))
			if _, err := g.Reconfig(ctx, next); err != nil {
				t.Fatalf("reconfig to %s: %v", next.ID, err)
			}
		}
	}
	time.Sleep(sc.duration / 4)
	close(stop)
	wg.Wait()

	ops := rec.Ops()
	if len(ops) < 5 {
		t.Fatalf("only %d operations recorded", len(ops))
	}
	if violations := history.Check(ops); len(violations) > 0 {
		for i, v := range violations {
			if i >= 3 {
				break
			}
			t.Error(v)
		}
		t.Fatalf("%d atomicity violations in %d ops (seed %d)", len(violations), len(ops), sc.seed)
	}
	rep := history.Verify(ops, history.CheckOptions{})
	if !rep.Linearizable {
		for i, v := range rep.Violations {
			if i >= 3 {
				break
			}
			t.Error(v)
		}
		t.Fatalf("%s: history of %d ops not linearizable by value (%s, seed %d)", sc.name, len(ops), rep.Method, sc.seed)
	}
	t.Logf("%s: %d atomic operations, value-checked via %s (seed %d)", sc.name, len(ops), rep.Method, sc.seed)
}

// TestLinearizabilityMatrix soaks a grid of deployments and churn patterns.
func TestLinearizabilityMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("soak matrix")
	}
	t.Parallel()
	scenarios := []linScenario{
		{
			name:    "abd-static",
			initial: abdCfg("c0", "lm-a", 5),
			writers: 3, readers: 3,
			seed: 1, duration: 400 * time.Millisecond,
		},
		{
			name:    "treas-static-crash",
			initial: treasCfg("c0", "lm-b", 5, 3, 8),
			writers: 2, readers: 3, crash: 1,
			seed: 2, duration: 400 * time.Millisecond,
		},
		{
			name:    "treas-recon-direct",
			initial: treasCfg("c0", "lm-c", 5, 3, 8),
			chain: []ares.Config{
				treasCfg("c1", "lm-c1", 5, 3, 8),
				treasCfg("c2", "lm-c2", 7, 5, 8),
			},
			writers: 2, readers: 2, direct: true,
			seed: 3, duration: 600 * time.Millisecond,
		},
		{
			name:    "mixed-algorithms",
			initial: abdCfg("c0", "lm-d", 3),
			chain: []ares.Config{
				treasCfg("c1", "lm-d1", 5, 3, 8),
				abdCfg("c2", "lm-d2", 3),
			},
			writers: 3, readers: 2,
			seed: 4, duration: 600 * time.Millisecond,
		},
		{
			name:    "many-writers-small-delta",
			initial: treasCfg("c0", "lm-e", 5, 3, 16),
			writers: 6, readers: 2,
			seed: 5, duration: 400 * time.Millisecond,
		},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			runLinScenario(t, sc)
		})
	}
}

// TestStoreLinearizabilityMultiKeySoak is the ObjectStore end-to-end safety
// test: concurrent writers and readers over several keys of one sharded
// store, a per-key reconfiguration moving one key to fresh servers, and a
// server crash (within every key's fault bound) mid-run. Each key is an
// independent register, so each key's recorded history must independently
// satisfy atomicity (A1–A3).
func TestStoreLinearizabilityMultiKeySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	t.Parallel()
	template := treasCfg("", "smk", 5, 3, 8)
	root := template
	root.ID = "smk/root"
	net := ares.NewSimNetwork(ares.WithDelayRange(0, time.Millisecond), ares.WithSeed(21))
	cluster, err := ares.NewCluster(root, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	store, err := ares.NewObjectStore(cluster, template, ares.WithShardCount(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	keys := []string{"alpha", "beta", "gamma", "delta"}
	recorders := make(map[string]*history.Recorder, len(keys))
	for _, k := range keys {
		recorders[k] = history.NewRecorder()
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Two writers and two readers per key; writes on one key funnel through
	// that key's pooled client, which serializes them under unique tags.
	for _, key := range keys {
		key := key
		rec := recorders[key]
		for i := 0; i < 2; i++ {
			id := ares.ProcessID(fmt.Sprintf("soak-w%d/%s", i, key))
			wg.Add(1)
			go func(id ares.ProcessID) {
				defer wg.Done()
				for seq := 0; ; seq++ {
					select {
					case <-stop:
						return
					default:
					}
					v := ares.Value(fmt.Sprintf("%s/%d", id, seq))
					p := rec.BeginWrite(id, v)
					tg, err := store.WriteKey(ctx, key, v)
					if err != nil {
						p.Fail()
						if ctx.Err() == nil {
							t.Errorf("%s write: %v", id, err)
						}
						return
					}
					p.Done(tg, v)
				}
			}(id)
		}
		for i := 0; i < 2; i++ {
			id := ares.ProcessID(fmt.Sprintf("soak-r%d/%s", i, key))
			wg.Add(1)
			go func(id ares.ProcessID) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					p := rec.BeginRead(id)
					pair, err := store.ReadKey(ctx, key)
					if err != nil {
						p.Fail()
						if ctx.Err() == nil {
							t.Errorf("%s read: %v", id, err)
						}
						return
					}
					p.Done(pair.Tag, pair.Value)
				}
			}(id)
		}
	}

	// Churn: move one key onto fresh servers mid-run, then crash one of the
	// template servers — f = (5-3)/2 = 1 crash is tolerated by every key
	// still on the template set, and "alpha" has already left it.
	time.Sleep(150 * time.Millisecond)
	next := treasCfg("store/alpha/c1", "smk-n", 5, 3, 8)
	if err := store.ReconfigureKey(ctx, "alpha", next, ares.ReconOptions{DirectTransfer: true}); err != nil {
		t.Fatalf("per-key reconfiguration: %v", err)
	}
	time.Sleep(150 * time.Millisecond)
	net.Crash(template.Servers[len(template.Servers)-1])
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()

	totalOps := 0
	for _, key := range keys {
		ops := recorders[key].Ops()
		totalOps += len(ops)
		if len(ops) < 5 {
			t.Errorf("key %s: only %d operations recorded", key, len(ops))
			continue
		}
		if violations := history.Check(ops); len(violations) > 0 {
			for i, v := range violations {
				if i >= 3 {
					break
				}
				t.Errorf("key %s: %v", key, v)
			}
			t.Errorf("key %s: %d atomicity violations in %d ops", key, len(violations), len(ops))
		}
		// Each key is an independent register, so the value-based check is
		// per-key partitioned: every key's history must independently
		// linearize.
		if rep := history.Verify(ops, history.CheckOptions{}); !rep.Linearizable {
			for i, v := range rep.Violations {
				if i >= 3 {
					break
				}
				t.Errorf("key %s: %v", key, v)
			}
			t.Errorf("key %s: not linearizable by value (%s)", key, rep.Method)
		}
	}
	t.Logf("multi-key soak: %d atomic operations across %d keys", totalOps, len(keys))
}

// TestWorkloadDriverOverPublicAPI integrates the workload driver with the
// public client surface (the shape cmd/ares-bench uses) and sanity-checks
// throughput accounting.
func TestWorkloadDriverOverPublicAPI(t *testing.T) {
	t.Parallel()
	c0 := treasCfg("c0", "wd", 5, 3, 8)
	cluster, err := ares.NewCluster(c0, ares.NewSimNetwork())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ctx := context.Background()
	w1, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	w2, err := cluster.NewClient("w2")
	if err != nil {
		t.Fatal(err)
	}
	_ = ctx
	// Drive both clients concurrently for a fixed window.
	stopAt := time.Now().Add(200 * time.Millisecond)
	var wg sync.WaitGroup
	var ops [2]int
	for i, c := range []*ares.Client{w1, w2} {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stopAt) {
				if err := c.WriteValue(context.Background(), ares.Value("x")); err != nil {
					t.Error(err)
					return
				}
				ops[i]++
			}
		}()
	}
	wg.Wait()
	if ops[0] == 0 || ops[1] == 0 {
		t.Fatalf("ops = %v", ops)
	}
}
