// Package ares is a Go implementation of ARES — Adaptive, Reconfigurable,
// Erasure-coded, atomic Storage (Cadambe, Nicolaou, Konwar, Prakash, Lynch,
// Médard; ICDCS 2019) — together with TREAS, the paper's two-round
// erasure-coded algorithm for multi-writer multi-reader atomic registers.
//
// # What this library provides
//
//   - An atomic (linearizable) read/write register emulated over a set of
//     crash-prone servers connected by an asynchronous network.
//   - Three interchangeable per-configuration storage algorithms, expressed
//     as data access primitives (DAPs): ABD (replication), TREAS (erasure
//     coding with ⌈(n+k)/2⌉ quorums and bounded server state), and LDR
//     (directory/replica separation for large objects).
//   - Live reconfiguration: the server set, the algorithm, and the code
//     parameters can all change while reads and writes continue, with
//     consensus (Paxos) deciding each successor configuration.
//   - The ARES-TREAS optimization (§5 of the paper): during reconfiguration,
//     coded state moves directly between old and new servers without passing
//     through the reconfiguration client.
//   - ObjectStore, the §1 composability claim as a multi-object layer: one
//     independent register (its own configuration chain) per key over a
//     shared server pool, with sharded bookkeeping, pooled client
//     endpoints, batched MultiPut/MultiGet fan-out, and per-key live
//     reconfiguration.
//
// # Quick start
//
//	net := ares.NewSimNetwork()
//	c0 := ares.Config{
//		ID:        "c0",
//		Algorithm: ares.TREAS,
//		Servers:   []ares.ProcessID{"s1", "s2", "s3", "s4", "s5"},
//		K:         3,
//		Delta:     4,
//	}
//	cluster, err := ares.NewCluster(c0, net)
//	// handle err
//	defer cluster.Close()
//	w, _ := cluster.NewClient("w1")
//	tag, err := w.Write(ctx, ares.Value("hello"))
//	r, _ := cluster.NewClient("r1")
//	pair, err := r.Read(ctx)
//
// See the examples directory for reconfiguration, a composed key-value
// store, and the replication-versus-erasure-coding cost comparison; see
// DESIGN.md for the architecture and EXPERIMENTS.md for the reproduction of
// the paper's analytical results.
package ares
