package ares_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/ares-storage/ares"
	"github.com/ares-storage/ares/internal/ops"
)

// TestOpsAdminRoundTrip runs the full operational loop against a live TCP
// deployment: start three durable servers with a per-key template, serve
// the ops surface off one of them, then drive chain → reconfigure → chain
// through the admin HTTP API and confirm the data plane agrees — a value
// written before the admin reconfiguration must still read back after it.
func TestOpsAdminRoundTrip(t *testing.T) {
	t.Parallel()
	tmpl := ares.Config{
		ID:        "opsrt/{key}/c0",
		Algorithm: ares.ABD,
		Servers:   []ares.ProcessID{"opsrt-s1", "opsrt-s2", "opsrt-s3"},
	}

	book := ares.AddressBook{}
	var servers []*ares.Server
	defer func() {
		for _, s := range servers {
			if err := s.Close(); err != nil {
				t.Errorf("close %s: %v", s.ID(), err)
			}
		}
	}()
	for _, id := range tmpl.Servers {
		// Durability on: the scrape assertions below want live WAL counters.
		srv, _, err := ares.NewServerWithDurability(id, "127.0.0.1:0", book,
			ares.Durability{Dir: t.TempDir(), Fsync: false})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		book[id] = srv.Addr()
	}
	for _, srv := range servers {
		if err := srv.Install(tmpl); err != nil {
			t.Fatal(err)
		}
	}

	opsAddr, stopOps, err := ops.Listen("127.0.0.1:0", servers[0].OpsServer(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer stopOps()
	base := "http://" + opsAddr

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A value through the ordinary data plane, rooted at the key's derived
	// initial configuration — the same derivation the admin verbs use.
	const key = "k1"
	c0 := tmpl.ForKey(key)
	wRPC := ares.NewTCPClient("opsrt-w1", book)
	defer wRPC.Close()
	w, err := ares.NewRemoteClient("opsrt-w1", c0, wRPC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(ctx, ares.Value("before admin reconfig")); err != nil {
		t.Fatal(err)
	}

	// Chain verb: one finalized entry, the derived c0.
	chain := adminCall(t, http.MethodGet, base+"/admin/chain", url.Values{"key": {key}})
	if !strings.Contains(string(chain), "opsrt/k1/c0") || !strings.Contains(string(chain), "finalized") {
		t.Fatalf("initial chain = %s", chain)
	}

	// Reconfigure verb: propose a concrete successor through the admin API.
	next := "id=opsrt-k1-c1;alg=abd;servers=opsrt-s1,opsrt-s2,opsrt-s3"
	rec := adminCall(t, http.MethodPost, base+"/admin/reconfigure",
		url.Values{"key": {key}, "spec": {next}})
	if !strings.Contains(string(rec), "opsrt-k1-c1") {
		t.Fatalf("reconfigure result = %s", rec)
	}

	// The chain verb must now see the successor...
	chain = adminCall(t, http.MethodGet, base+"/admin/chain", url.Values{"key": {key}})
	if !strings.Contains(string(chain), "opsrt-k1-c1") {
		t.Fatalf("post-reconfig chain = %s", chain)
	}
	// ...and the data plane must still serve the pre-reconfig value.
	rRPC := ares.NewTCPClient("opsrt-r1", book)
	defer rRPC.Close()
	r, err := ares.NewRemoteClient("opsrt-r1", c0, rRPC)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := r.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(pair.Value) != "before admin reconfig" {
		t.Fatalf("read %q after admin reconfiguration", pair.Value)
	}

	// KeyState verb reports the server-local view.
	ks := adminCall(t, http.MethodGet, base+"/admin/keystate", url.Values{"key": {key}})
	if !strings.Contains(string(ks), "opsrt-s1") || !strings.Contains(string(ks), "initial_config") {
		t.Fatalf("keystate = %s", ks)
	}

	// Forget drops the cached admin client; a follow-up chain rebuilds one.
	fg := adminCall(t, http.MethodPost, base+"/admin/forget", url.Values{"key": {key}})
	if !strings.Contains(string(fg), "true") {
		t.Fatalf("forget = %s", fg)
	}
	chain = adminCall(t, http.MethodGet, base+"/admin/chain", url.Values{"key": {key}})
	if !strings.Contains(string(chain), "opsrt-k1-c1") {
		t.Fatalf("chain after forget = %s", chain)
	}

	// The acceptance bar for the metrics surface: one scrape shows live
	// instruments from at least five packages (transport, core, keystate,
	// adaptive, store) because the whole process shares one registry.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{
		"ares_codec_encodes_total",      // transport
		"ares_client_write_ops_total",   // core
		"ares_wal_appends_total",        // keystate
		"ares_adaptive_moves_total",     // adaptive
		"ares_store_read_ops_total",     // store
		"ares_phase_seconds",            // transport broadcast histograms
		"ares_host_materialized_states", // core host gauges
	} {
		if !strings.Contains(string(body), name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	// The write and the WAL really happened, so their counters are nonzero.
	for _, prefix := range []string{"ares_client_write_ops_total ", "ares_wal_appends_total "} {
		if !scrapeNonzero(string(body), prefix) {
			t.Errorf("/metrics has zero %s", strings.TrimSpace(prefix))
		}
	}
}

// TestOpsLateBinding covers the ares-server startup order: the ops surface
// serves before the Server exists (healthz 503, admin 400, metrics live),
// and flips ready once bind attaches a started server.
func TestOpsLateBinding(t *testing.T) {
	t.Parallel()
	surface, bind := ares.NewOpsServer()
	addr, stop, err := ops.Listen("127.0.0.1:0", surface)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	base := "http://" + addr

	status := func(path string) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/healthz"); got != http.StatusServiceUnavailable {
		t.Fatalf("pre-bind healthz = %d, want 503", got)
	}
	if got := status("/admin/chain?key=k"); got != http.StatusBadRequest {
		t.Fatalf("pre-bind admin = %d, want 400", got)
	}
	if got := status("/metrics"); got != http.StatusOK {
		t.Fatalf("pre-bind metrics = %d, want 200", got)
	}

	srv, err := ares.NewServer("opslb-s1", "127.0.0.1:0", ares.AddressBook{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	bind(srv)
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("post-bind healthz = %d, want 200", got)
	}
}

// adminCall performs one admin verb and returns the raw result JSON,
// failing the test on transport errors or ok=false.
func adminCall(t *testing.T, method, u string, form url.Values) json.RawMessage {
	t.Helper()
	var (
		resp *http.Response
		err  error
	)
	if method == http.MethodPost {
		resp, err = http.PostForm(u, form)
	} else {
		resp, err = http.Get(u + "?" + form.Encode())
	}
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vr struct {
		OK     bool            `json:"ok"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatalf("decoding %s: %v", u, err)
	}
	if resp.StatusCode != http.StatusOK || !vr.OK {
		t.Fatalf("%s %s: status=%d error=%q", method, u, resp.StatusCode, vr.Error)
	}
	return vr.Result
}

// scrapeNonzero reports whether the exposition contains a sample for the
// exact series prefix with a value other than 0.
func scrapeNonzero(body, prefix string) bool {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix); ok {
			return strings.TrimSpace(rest) != "0"
		}
	}
	return false
}
