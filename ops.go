package ares

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/core"
	"github.com/ares-storage/ares/internal/obs"
	"github.com/ares-storage/ares/internal/ops"
	"github.com/ares-storage/ares/internal/recon"
	"github.com/ares-storage/ares/internal/spec"
)

// This file binds the hook-based internal/ops HTTP surface to a live Server.
// Every admin verb routes through the ordinary client paths — chain is a
// read-config, reconfigure and retire are Paxos reconfigurations through
// recon.Client, keystate is the host's own introspection — so the admin API
// can never put a server into a state normal operation couldn't.

// OpsServer builds the server's operational HTTP surface: /metrics (the
// process-wide obs registry), pprof, /healthz gated on ready, and the admin
// verbs bound to this server. Serve it with ops.Listen / ops.Serve; a nil
// ready reads as always-ready.
func (s *Server) OpsServer(ready func() bool) *ops.Server {
	return &ops.Server{
		Registry: obs.Default,
		Ready:    ready,
		Info: func() map[string]any {
			return map[string]any{
				"id":   string(s.ID()),
				"addr": s.Addr(),
			}
		},
		Admin: ops.AdminHooks{
			Chain:       s.adminChain,
			KeyState:    s.adminKeyState,
			Reconfigure: s.adminReconfigure,
			Retire:      s.adminRetire,
			Forget:      s.adminForget,
		},
	}
}

// NewOpsServer builds an ops surface that can be served before the data
// plane exists — the lifecycle in which the ops listener binds first, so a
// probe can tell "starting" from "dead" while WAL recovery runs. /metrics
// and pprof work immediately (recovery counters are exactly what an
// operator wants to watch during a long replay); /healthz answers 503 and
// the admin verbs answer 400 until bind attaches the started Server.
func NewOpsServer() (surface *ops.Server, bind func(*Server)) {
	var live atomic.Pointer[Server]
	get := func() (*Server, error) {
		if s := live.Load(); s != nil {
			return s, nil
		}
		return nil, ops.BadRequestError{Msg: "server still starting"}
	}
	surface = &ops.Server{
		Registry: obs.Default,
		Ready:    func() bool { return live.Load() != nil },
		Info: func() map[string]any {
			info := map[string]any{}
			if s := live.Load(); s != nil {
				info["id"] = string(s.ID())
				info["addr"] = s.Addr()
			}
			return info
		},
		Admin: ops.AdminHooks{
			Chain: func(ctx context.Context, key string) (any, error) {
				s, err := get()
				if err != nil {
					return nil, err
				}
				return s.adminChain(ctx, key)
			},
			KeyState: func(key string) (any, error) {
				s, err := get()
				if err != nil {
					return nil, err
				}
				return s.adminKeyState(key)
			},
			Reconfigure: func(ctx context.Context, key, specStr string) (any, error) {
				s, err := get()
				if err != nil {
					return nil, err
				}
				return s.adminReconfigure(ctx, key, specStr)
			},
			Retire: func(ctx context.Context, key string) (any, error) {
				s, err := get()
				if err != nil {
					return nil, err
				}
				return s.adminRetire(ctx, key)
			},
			Forget: func(key string) (any, error) {
				s, err := get()
				if err != nil {
					return nil, err
				}
				return s.adminForget(key)
			},
		},
	}
	return surface, func(s *Server) { live.Store(s) }
}

// opsAdmin holds the server's admin-verb state: one cached reconfiguration
// client per key. Caching is not an optimization — a recon client owns a
// consensus proposer identity per configuration, and the same identity must
// never be live twice, so each (server, key) pair gets exactly one client
// for its lifetime (until Forget drops it).
type opsAdmin struct {
	mu     sync.Mutex
	recons map[string]*recon.Client
}

// reconFor returns (building if needed) the admin reconfiguration client
// for key, rooted at the key's initial configuration derived from the first
// installed template. The client rides the server's own outbound transport;
// its proposer identity is derived from the server ID and key, so admin
// proposals from different servers never collide.
func (s *Server) reconFor(key string) (*recon.Client, error) {
	s.admin.mu.Lock()
	defer s.admin.mu.Unlock()
	if rc, ok := s.admin.recons[key]; ok {
		return rc, nil
	}
	templates := s.host.Resolver().Templates()
	if len(templates) == 0 {
		return nil, ops.BadRequestError{Msg: "no configuration template installed on this server"}
	}
	c0 := templates[0].ForKey(key)
	self := ProcessID(fmt.Sprintf("%s-admin/%s", s.ID(), key))
	rc, err := recon.NewClient(self, c0, s.out, core.NewRegistry(), core.RemoteInstaller(s.out), recon.Options{})
	if err != nil {
		return nil, err
	}
	if s.admin.recons == nil {
		s.admin.recons = make(map[string]*recon.Client)
	}
	s.admin.recons[key] = rc
	return rc, nil
}

// adminChain reads key's configuration chain through the ordinary
// read-config path and renders each entry as its spec string plus status.
func (s *Server) adminChain(ctx context.Context, key string) (any, error) {
	rc, err := s.reconFor(key)
	if err != nil {
		return nil, err
	}
	seq, err := rc.ReadConfig(ctx, rc.Sequence())
	if err != nil {
		return nil, err
	}
	return renderChain(key, seq), nil
}

func renderChain(key string, seq cfg.Sequence) map[string]any {
	entries := make([]map[string]any, len(seq))
	for i, e := range seq {
		status := "pending"
		if e.Status == cfg.Finalized {
			status = "finalized"
		}
		entries[i] = map[string]any{
			"id":     string(e.Cfg.ID),
			"spec":   spec.Format(e.Cfg),
			"status": status,
		}
	}
	return map[string]any{
		"key":   key,
		"mu":    seq.Mu(),
		"nu":    seq.Nu(),
		"chain": entries,
	}
}

// adminKeyState reports the server-local view: host-wide state counters
// plus the key's derived initial configuration and any locally-recorded
// retirement redirect for it.
func (s *Server) adminKeyState(key string) (any, error) {
	res := s.host.Resolver()
	exact, templates := res.Known()
	info := map[string]any{
		"key":                 key,
		"server":              string(s.ID()),
		"materialized_states": s.host.MaterializedStates(),
		"retired_states":      s.host.RetiredStates(),
		"service_instances":   s.host.ServiceInstances(),
		"storage_bytes":       s.host.StorageBytes(),
		"known_configs":       exact,
		"known_templates":     templates,
		"retired_configs":     s.host.RetiredConfigs(),
	}
	if ts := res.Templates(); len(ts) > 0 {
		c0 := ts[0].ForKey(key)
		info["initial_config"] = string(c0.ID)
		// Follow the local tombstone trail so an operator sees where the
		// chain went without a quorum round. Bounded: the successor record
		// is per-key and tombstones only accrete forward.
		id := c0.ID
		var trail []string
		for i := 0; i < 16; i++ {
			succ, ok := res.RetiredSuccessor(key, id)
			if !ok || succ == "" || succ == id {
				break
			}
			trail = append(trail, string(succ))
			id = succ
		}
		if len(trail) > 0 {
			info["retired_trail"] = trail
		}
	}
	return info, nil
}

// adminReconfigure proposes the spec string as key's next configuration
// through the ordinary Paxos path and reports what consensus decided (which
// may be another reconfigurer's concurrent proposal).
func (s *Server) adminReconfigure(ctx context.Context, key, specStr string) (any, error) {
	if specStr == "" {
		return nil, ops.BadRequestError{Msg: "missing ?spec="}
	}
	proposal, err := spec.Parse(specStr)
	if err != nil {
		return nil, ops.BadRequestError{Msg: err.Error()}
	}
	rc, err := s.reconFor(key)
	if err != nil {
		return nil, err
	}
	decided, err := rc.Reconfig(ctx, proposal.ForKey(key))
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"proposed": string(proposal.ForKey(key).ID),
		"decided":  string(decided.ID),
		"spec":     spec.Format(decided),
	}, nil
}

// adminRetire re-proposes key's current configuration parameters under a
// fresh ID. Installing the twin finalizes it through the ordinary
// reconfiguration path, which retires the predecessor — state transfer,
// tombstone, GC — exactly as any planned migration would.
func (s *Server) adminRetire(ctx context.Context, key string) (any, error) {
	rc, err := s.reconFor(key)
	if err != nil {
		return nil, err
	}
	seq, err := rc.ReadConfig(ctx, rc.Sequence())
	if err != nil {
		return nil, err
	}
	last := seq[seq.Nu()].Cfg
	proposal := last
	proposal.ID = cfg.ID(fmt.Sprintf("%s/retire-%d", last.ID, seq.Nu()+1))
	proposal.Key = key
	decided, err := rc.Reconfig(ctx, proposal)
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"retired": string(last.ID),
		"decided": string(decided.ID),
	}, nil
}

// adminForget drops the cached admin reconfiguration client for key, so a
// later verb rebuilds one from the chain's current state. The proposer
// identity it retires is never reused concurrently: the drop happens under
// the same lock that builds clients.
func (s *Server) adminForget(key string) (any, error) {
	s.admin.mu.Lock()
	defer s.admin.mu.Unlock()
	_, ok := s.admin.recons[key]
	delete(s.admin.recons, key)
	return map[string]any{"dropped": ok}, nil
}
