package ares

import (
	"context"
	"time"

	"github.com/ares-storage/ares/internal/adaptive"
	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/core"
	"github.com/ares-storage/ares/internal/recon"
	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// Core identifier and data types, aliased from the internal packages so the
// public surface and the implementation share one definition.
type (
	// ProcessID names a client or server process.
	ProcessID = types.ProcessID
	// Value is the object value domain; values are opaque byte strings.
	Value = types.Value
	// Tag is the logical timestamp (z, writer) ordering all writes.
	Tag = tag.Tag
	// Pair couples a tag with a value, as returned by Read.
	Pair = tag.Pair
	// Config describes one configuration: servers, algorithm, parameters.
	Config = cfg.Configuration
	// ConfigID uniquely names a configuration.
	ConfigID = cfg.ID
	// Algorithm selects a configuration's atomic-memory implementation.
	Algorithm = cfg.Algorithm
	// ConfigSequence is a local view of the global configuration sequence.
	ConfigSequence = cfg.Sequence
)

// The storage algorithms shipped with the library.
const (
	// ABD replicates the full value on every server (majority quorums).
	ABD = cfg.ABD
	// TREAS erasure-codes the value with an [n, k] MDS code (⌈(n+k)/2⌉
	// quorums, δ-bounded server lists) — the paper's contribution.
	TREAS = cfg.TREAS
	// LDR separates directory metadata from replica data (large objects).
	LDR = cfg.LDR
)

// CtlServiceName names the node-scoped control service through which
// configurations are provisioned remotely. Exposed so operational tooling
// (and tests) can account install traffic separately from data traffic.
const CtlServiceName = core.CtlServiceName

// Client is an ARES reader/writer. Obtain one from Cluster.NewClient (or
// assemble over TCP with NewTCPClient + NewRemoteClient).
type Client = core.Client

// Reconfigurer drives configuration changes. Obtain one from
// Cluster.NewReconfigurer or NewRemoteReconfigurer.
type Reconfigurer = recon.Client

// ReconOptions tunes a reconfigurer; DirectTransfer enables the §5
// server-to-server state migration.
type ReconOptions = recon.Options

// Cluster is a single-process deployment over a simulated network, the
// starting point for tests, experiments, and the examples.
type Cluster = core.Cluster

// Network is the in-memory simulated network with configurable [d, D]
// message-delay bounds, crash and partition injection, and traffic counters.
type Network = transport.Simnet

// NetworkOption configures NewSimNetwork.
type NetworkOption = transport.SimnetOption

// NewSimNetwork creates an in-memory network. With no options delivery is
// immediate; pass WithDelayRange to emulate latency.
func NewSimNetwork(opts ...NetworkOption) *Network {
	return transport.NewSimnet(opts...)
}

// WithDelayRange sets the default one-way message delay to a uniform draw
// from [min, max] — the d and D of the paper's latency analysis.
func WithDelayRange(min, max time.Duration) NetworkOption {
	return transport.WithDelayRange(min, max)
}

// WithSeed makes the network's delay sampling reproducible.
func WithSeed(seed int64) NetworkOption {
	return transport.WithSeed(seed)
}

// WithBandwidth adds a size-dependent term to every simulated delivery:
// perByte per payload byte, on both the request and the response leg. It
// models link bandwidth the way the delay range models propagation, and is
// what makes large-object experiments honest — an erasure-coded fragment
// (≈ size/k) genuinely costs less to move than a full replica copy.
func WithBandwidth(perByte time.Duration) NetworkOption {
	return transport.WithBandwidth(perByte)
}

// Self-driving reconfiguration surface: the per-key telemetry classes and
// policy of internal/adaptive, re-exported for WithAdaptive callers.
type (
	// AdaptiveClass is the controller's verdict on how a key should be
	// configured; AdaptiveSpec.Profiles maps classes to configurations.
	AdaptiveClass = adaptive.Class
	// AdaptivePolicy holds the controller's thresholds and damping.
	AdaptivePolicy = adaptive.Policy
	// AdaptiveKeyStats is one key's telemetry over a sampling window.
	AdaptiveKeyStats = adaptive.KeyStats
)

// The workload classes the adaptive controller distinguishes.
const (
	// ClassDefault keeps the deployment template's configuration.
	ClassDefault = adaptive.ClassDefault
	// ClassSmallHot marks small, hot objects (→ e.g. ABD n=3).
	ClassSmallHot = adaptive.ClassSmallHot
	// ClassLargeCold marks large objects (→ e.g. wide TREAS [n, k]).
	ClassLargeCold = adaptive.ClassLargeCold
	// ClassFaulty marks keys under a fault spike (→ more redundancy).
	ClassFaulty = adaptive.ClassFaulty
)

// NewCluster deploys the initial configuration c0 on net and returns the
// cluster handle. Additional servers named in later configurations must be
// added with Cluster.AddHost before reconfiguring to them.
func NewCluster(c0 Config, net *Network, extraServers ...ProcessID) (*Cluster, error) {
	return core.NewCluster(c0, net, extraServers...)
}

// NewRemoteClient builds a reader/writer against an arbitrary transport
// (e.g. a TCP client from NewTCPClient), rooted at configuration c0.
func NewRemoteClient(self ProcessID, c0 Config, rpc transport.Client) (*Client, error) {
	return core.NewClient(self, c0, rpc, core.NewRegistry())
}

// NewRemoteReconfigurer builds a reconfigurer against an arbitrary
// transport, provisioning new configurations through the servers' control
// services.
func NewRemoteReconfigurer(self ProcessID, c0 Config, rpc transport.Client, opts ReconOptions) (*Reconfigurer, error) {
	return recon.NewClient(self, c0, rpc, core.NewRegistry(), core.RemoteInstaller(rpc), opts)
}

// ReadValue returns just the value of a Read — convenience for callers that
// do not need the tag. It is a free function (rather than a method) so the
// Client alias stays identical to the internal implementation.
func ReadValue(ctx context.Context, c *Client) (Value, error) {
	pair, err := c.Read(ctx)
	if err != nil {
		return nil, err
	}
	return pair.Value, nil
}
