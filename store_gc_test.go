package ares_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	ares "github.com/ares-storage/ares"
)

// Bounded-client-cache and lifecycle-GC tests against the public ObjectStore
// surface.

func gcStoreFixture(t *testing.T, name string, opts ...ares.StoreOption) (*ares.ObjectStore, *ares.Cluster, []ares.ProcessID) {
	t.Helper()
	var servers []ares.ProcessID
	for i := 1; i <= 5; i++ {
		servers = append(servers, ares.ProcessID(fmt.Sprintf("%s-s%d", name, i)))
	}
	root := ares.Config{ID: ares.ConfigID(name + "/root"), Algorithm: ares.ABD, Servers: servers}
	cluster, err := ares.NewCluster(root, ares.NewSimNetwork())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	template := ares.Config{Algorithm: ares.TREAS, K: 3, Delta: 4, Servers: servers}
	store, err := ares.NewObjectStore(cluster, template, append([]ares.StoreOption{ares.WithStoreName(name)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return store, cluster, servers
}

// TestObjectStoreEvictAndForget pins the explicit halves of the bounded
// client cache: ClientCount tracks instantiated clients, EvictIdle(0) drops
// everything idle, Forget drops one key, and a re-touched key works again.
func TestObjectStoreEvictAndForget(t *testing.T) {
	t.Parallel()
	store, _, _ := gcStoreFixture(t, "evict")
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if err := store.Put(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.ClientCount(); got != 8 {
		t.Fatalf("ClientCount = %d after touching 8 keys, want 8", got)
	}
	if !store.Forget("k0") {
		t.Fatal("Forget of a cached key reported nothing dropped")
	}
	if store.Forget("k0") {
		t.Fatal("second Forget reported a drop")
	}
	if got := store.ClientCount(); got != 7 {
		t.Fatalf("ClientCount = %d after Forget, want 7", got)
	}
	if evicted := store.EvictIdle(0); evicted != 7 {
		t.Fatalf("EvictIdle(0) dropped %d, want 7", evicted)
	}
	if got := store.ClientCount(); got != 0 {
		t.Fatalf("ClientCount = %d after EvictIdle(0), want 0", got)
	}
	// Evicted keys rebuild transparently and still see their data.
	v, err := store.Get(ctx, "k3")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v" {
		t.Fatalf("post-eviction read = %q, want %q", v, "v")
	}
}

// TestObjectStoreEvictionSurvivesReconfigChurn is the end-to-end lifecycle
// story: a key's chain walks several configurations, its client is evicted
// (the lagging-client shape), and the rebuilt client must recover through
// the retired initial configuration's archive — reading the latest value,
// never rematerialized v₀ state — while the cluster's retained server state
// stays O(live configs).
func TestObjectStoreEvictionSurvivesReconfigChurn(t *testing.T) {
	t.Parallel()
	store, cluster, servers := gcStoreFixture(t, "churnstore")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const key, walks = "hot", 6
	want := []byte("latest-value")
	if err := store.Put(ctx, key, want); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= walks; i++ {
		next := ares.Config{
			ID:      ares.ConfigID(fmt.Sprintf("churnstore/%s/c%d", key, i)),
			Servers: servers,
		}
		if i%2 == 0 {
			next.Algorithm = ares.TREAS
			next.K = 3
			next.Delta = 4
		} else {
			next.Algorithm = ares.ABD
		}
		if err := store.ReconfigureKey(ctx, key, next, ares.ReconOptions{}); err != nil {
			t.Fatalf("walk %d: %v", i, err)
		}
	}
	if retired := cluster.RetiredStates(); retired == 0 {
		t.Fatal("no server state retired across the walks")
	}

	// Evict the key's client and reconfigurer: the next reader starts from
	// the template-derived (and long-retired) initial configuration.
	if evicted := store.EvictIdle(0); evicted == 0 {
		t.Fatal("nothing evicted")
	}
	got, err := store.Get(ctx, key)
	if err != nil {
		t.Fatalf("post-churn, post-eviction read: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("post-churn read = %q, want %q (v0/stale data from a retired configuration)", got, want)
	}

	// Retained server state for the key: live window, not one entry per walk.
	deadline := time.Now().Add(5 * time.Second)
	states := cluster.MaterializedStates()
	bound := 3 * len(servers)
	for states > bound && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		states = cluster.MaterializedStates()
	}
	if states > bound {
		t.Fatalf("retained %d states after %d walks, want ≤ %d", states, walks, bound)
	}

	// The key remains fully writable through the rebuilt client.
	if err := store.Put(ctx, key, []byte("written-after-churn")); err != nil {
		t.Fatal(err)
	}
	got, err = store.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "written-after-churn" {
		t.Fatalf("read-your-write after churn = %q", got)
	}
}

// TestObjectStoreIdleTTLBoundsCache pins the TTL path end to end: with a
// tiny TTL, touching fresh keys sweeps cold ones, so the cache tracks the
// working set instead of every key ever touched.
func TestObjectStoreIdleTTLBoundsCache(t *testing.T) {
	t.Parallel()
	store, _, _ := gcStoreFixture(t, "ttl", ares.WithClientIdleTTL(time.Millisecond), ares.WithShardCount(1))
	ctx := context.Background()
	if err := store.Put(ctx, "cold", []byte("v")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	// Touching another key in the same shard sweeps the cold entry.
	if err := store.Put(ctx, "warm", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := store.ClientCount(); got > 1+1 { // warm client (+ its in-flight sibling at most)
		t.Fatalf("ClientCount = %d with 1ms TTL, want ≤ 2", got)
	}
	// The swept key still reads correctly through a rebuilt client.
	v, err := store.Get(ctx, "cold")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v" {
		t.Fatalf("swept key read = %q, want %q", v, "v")
	}
}
