package ares

import "github.com/ares-storage/ares/internal/obs"

// Store-layer instruments, aggregated across every ObjectStore in the
// process. Each store additionally registers a per-store cached-client
// gauge under its own name label in NewObjectStore.
var (
	storeReads = obs.Default.Counter("ares_store_read_ops_total",
		"Completed ObjectStore reads")
	storeWrites = obs.Default.Counter("ares_store_write_ops_total",
		"Completed ObjectStore writes")
	storeFailures = obs.Default.Counter("ares_store_failures_total",
		"ObjectStore operations that returned an error")
	storeEvictions = obs.Default.Counter("ares_store_evictions_total",
		"Cached per-key clients and reconfigurers evicted (TTL sweep or EvictIdle)")
	storeForgets = obs.Default.Counter("ares_store_forgets_total",
		"Explicit Forget calls that dropped cached per-key entries")
)
