package consensus

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/transport"
)

func TestProposerBlockedByPartitionResumesAfterHeal(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	servers, _ := deploy(t, net, "c0", 3)

	// Partition the proposer from two of three acceptors: no majority.
	net.BlockLink("g1", servers[0])
	net.BlockLink("g1", servers[1])
	p, err := NewProposer("g1", "", "c0", servers, net.Client("g1"))
	if err != nil {
		t.Fatal(err)
	}
	blockedCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	if _, err := p.Propose(blockedCtx, []byte("v")); err == nil {
		cancel()
		t.Fatal("Propose succeeded across a majority partition")
	}
	cancel()

	// Heal and retry: the instance decides.
	net.UnblockLink("g1", servers[0])
	net.UnblockLink("g1", servers[1])
	got, err := p.Propose(context.Background(), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v" {
		t.Fatalf("decided %q", got)
	}
}

func TestDecisionVisibleAcrossPartitionedLearner(t *testing.T) {
	t.Parallel()
	// One proposer decides while a second is partitioned away; after the
	// heal the second proposer must learn (not overwrite) the decision.
	net := transport.NewSimnet()
	servers, _ := deploy(t, net, "c0", 5)
	p1, err := NewProposer("g1", "", "c0", servers, net.Client("g1"))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range servers {
		net.BlockLink("g2", s)
	}
	decided, err := p1.Propose(context.Background(), []byte("winner"))
	if err != nil {
		t.Fatal(err)
	}

	for _, s := range servers {
		net.UnblockLink("g2", s)
	}
	p2, err := NewProposer("g2", "", "c0", servers, net.Client("g2"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.Propose(context.Background(), []byte("loser"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, decided) {
		t.Fatalf("late proposer decided %q, want %q", got, decided)
	}
}

func TestDecideSpreadsToLateAcceptors(t *testing.T) {
	t.Parallel()
	// An acceptor partitioned during the decide broadcast still converges:
	// a later Learn through any proposer finds the decision via the others,
	// and broadcastDecide re-spreads it.
	net := transport.NewSimnet()
	servers, services := deploy(t, net, "c0", 3)
	late := servers[2]
	net.BlockLink("g1", late)
	p, err := NewProposer("g1", "", "c0", servers, net.Client("g1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Propose(context.Background(), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := services[late].Decided("", "c0"); ok {
		t.Fatal("partitioned acceptor learned the decision impossibly")
	}
	net.UnblockLink("g1", late)

	// A second proposer's prepare hits the decided majority and re-broadcasts.
	p2, err := NewProposer("g2", "", "c0", servers, net.Client("g2"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.Propose(context.Background(), []byte("other"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v" {
		t.Fatalf("decided %q", got)
	}
}
