package consensus

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// deploy installs a Paxos instance for configID on n servers.
func deploy(t *testing.T, net *transport.Simnet, configID string, n int) ([]types.ProcessID, map[types.ProcessID]*Service) {
	t.Helper()
	var servers []types.ProcessID
	for i := 0; i < n; i++ {
		servers = append(servers, types.ProcessID(fmt.Sprintf("s%d", i+1)))
	}
	c := cfg.Configuration{ID: cfg.ID(configID), Algorithm: cfg.ABD, Servers: servers}
	services := make(map[types.ProcessID]*Service, n)
	for _, id := range servers {
		src := cfg.NewResolver()
		src.Add(c)
		nd := node.New(id)
		svc := NewService(id, src)
		nd.InstallKeyed(ServiceName, svc)
		net.Register(id, nd)
		services[id] = svc
	}
	return servers, services
}

// soloAcceptor returns a one-server service and its materialized acceptor
// for direct protocol-state tests.
func soloAcceptor(t *testing.T) (*Service, *acceptor) {
	t.Helper()
	c := cfg.Configuration{ID: "solo", Algorithm: cfg.ABD, Servers: []types.ProcessID{"s1"}}
	src := cfg.NewResolver()
	src.Add(c)
	svc := NewService("s1", src)
	st, err := svc.state("", "solo")
	if err != nil {
		t.Fatal(err)
	}
	return svc, st
}

func TestSingleProposerDecides(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	servers, _ := deploy(t, net, "c0", 3)
	p, err := NewProposer("g1", "", "c0", servers, net.Client("g1"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Propose(context.Background(), []byte("cfg-1"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "cfg-1" {
		t.Fatalf("decided %q, want cfg-1", got)
	}
}

func TestAgreementUnderContention(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet(transport.WithDelayRange(0, 2*time.Millisecond), transport.WithSeed(42))
	servers, _ := deploy(t, net, "c0", 5)

	const proposers = 6
	results := make([][]byte, proposers)
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < proposers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := types.ProcessID(fmt.Sprintf("g%d", i))
			p, err := NewProposer(id, "", "c0", servers, net.Client(id))
			if err != nil {
				t.Error(err)
				return
			}
			got, err := p.Propose(ctx, []byte(fmt.Sprintf("proposal-%d", i)))
			if err != nil {
				t.Errorf("proposer %d: %v", i, err)
				return
			}
			results[i] = got
		}()
	}
	wg.Wait()

	// Agreement: all proposers decided the same value.
	for i := 1; i < proposers; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("proposer 0 decided %q, proposer %d decided %q: agreement violated", results[0], i, results[i])
		}
	}
	// Validity: the decided value is one of the proposals.
	valid := false
	for i := 0; i < proposers; i++ {
		if string(results[0]) == fmt.Sprintf("proposal-%d", i) {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("decided %q was never proposed: validity violated", results[0])
	}
}

func TestDecisionSurvivesProposerCrashMidway(t *testing.T) {
	t.Parallel()
	// Proposer 1 gets a value accepted by a majority but crashes before
	// broadcasting the decision (we simulate by running only the attempt).
	net := transport.NewSimnet()
	servers, _ := deploy(t, net, "c0", 3)
	p1, err := NewProposer("g1", "", "c0", servers, net.Client("g1"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Run a full attempt (accepts land) but drop the decide by cancelling
	// right after: emulate via attempt() directly.
	if _, ok, err := p1.attempt(ctx, 1, []byte("from-g1")); err != nil || !ok {
		t.Fatalf("attempt: ok=%v err=%v", ok, err)
	}

	// A second proposer must decide the same value (it adopts the accepted
	// proposal from the promise quorum).
	p2, err := NewProposer("g2", "", "c0", servers, net.Client("g2"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.Propose(ctx, []byte("from-g2"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "from-g1" {
		t.Fatalf("second proposer decided %q, want from-g1 (agreement with accepted value)", got)
	}
}

func TestToleratesMinorityCrash(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	servers, _ := deploy(t, net, "c0", 5)
	net.Crash(servers[0])
	net.Crash(servers[1])
	p, err := NewProposer("g1", "", "c0", servers, net.Client("g1"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got, err := p.Propose(ctx, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v" {
		t.Fatalf("decided %q", got)
	}
}

func TestBlocksWithoutMajority(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	servers, _ := deploy(t, net, "c0", 3)
	net.Crash(servers[0])
	net.Crash(servers[1])
	p, err := NewProposer("g1", "", "c0", servers, net.Client("g1"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := p.Propose(ctx, []byte("v")); err == nil {
		t.Fatal("Propose succeeded without a majority")
	}
}

func TestLearn(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	servers, _ := deploy(t, net, "c0", 3)
	p, err := NewProposer("g1", "", "c0", servers, net.Client("g1"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Nothing decided yet.
	if _, ok, err := p.Learn(ctx); err != nil || ok {
		t.Fatalf("Learn before decision: ok=%v err=%v", ok, err)
	}
	if _, err := p.Propose(ctx, []byte("decided")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := p.Learn(ctx)
	if err != nil || !ok || string(v) != "decided" {
		t.Fatalf("Learn after decision: %q ok=%v err=%v", v, ok, err)
	}
}

func TestBallotOrdering(t *testing.T) {
	t.Parallel()
	cases := []struct {
		a, b Ballot
		want bool
	}{
		{Ballot{1, 5}, Ballot{2, 1}, true},
		{Ballot{2, 1}, Ballot{1, 5}, false},
		{Ballot{1, 1}, Ballot{1, 2}, true},
		{Ballot{1, 2}, Ballot{1, 2}, false},
	}
	for _, tc := range cases {
		if got := tc.a.Less(tc.b); got != tc.want {
			t.Errorf("%v.Less(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAcceptorRejectsStaleBallots(t *testing.T) {
	t.Parallel()
	_, svc := soloAcceptor(t)
	newer := Ballot{Round: 5, Proposer: 1}
	older := Ballot{Round: 3, Proposer: 9}

	resp := svc.prepare(prepareReq{Ballot: newer})
	if !resp.Promised {
		t.Fatal("fresh prepare rejected")
	}
	if got := svc.prepare(prepareReq{Ballot: older}); got.Promised {
		t.Fatal("stale prepare promised")
	}
	if got := svc.accept(acceptReq{Ballot: older, Value: []byte("x")}); got.Accepted {
		t.Fatal("stale accept accepted")
	}
	if got := svc.accept(acceptReq{Ballot: newer, Value: []byte("y")}); !got.Accepted {
		t.Fatal("promised-ballot accept rejected")
	}
}

func TestDecideIsIdempotentAndSticky(t *testing.T) {
	t.Parallel()
	svc, st := soloAcceptor(t)
	st.decide([]byte("first"))
	st.decide([]byte("second")) // must be ignored
	v, ok := svc.Decided("", "solo")
	if !ok || string(v) != "first" {
		t.Fatalf("Decided = %q ok=%v, want first", v, ok)
	}
	// prepare after decision reports the decision.
	resp := st.prepare(prepareReq{Ballot: Ballot{Round: 99}})
	if !resp.Decided || string(resp.DecidedValue) != "first" {
		t.Fatalf("prepare after decide = %+v", resp)
	}
}

func TestSequentialInstancesIndependent(t *testing.T) {
	t.Parallel()
	// Two consensus instances for different configurations on the same
	// servers must not interfere.
	net := transport.NewSimnet()
	var servers []types.ProcessID
	for i := 0; i < 3; i++ {
		servers = append(servers, types.ProcessID(fmt.Sprintf("s%d", i+1)))
	}
	c0 := cfg.Configuration{ID: "c0", Algorithm: cfg.ABD, Servers: servers}
	c1 := cfg.Configuration{ID: "c1", Algorithm: cfg.ABD, Servers: servers}
	for _, id := range servers {
		src := cfg.NewResolver()
		src.Add(c0)
		src.Add(c1)
		nd := node.New(id)
		nd.InstallKeyed(ServiceName, NewService(id, src))
		net.Register(id, nd)
	}
	ctx := context.Background()
	p0, err := NewProposer("g1", "", "c0", servers, net.Client("g1"))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := NewProposer("g1", "", "c1", servers, net.Client("g1"))
	if err != nil {
		t.Fatal(err)
	}
	v0, err := p0.Propose(ctx, []byte("for-c0"))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := p1.Propose(ctx, []byte("for-c1"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v0) != "for-c0" || string(v1) != "for-c1" {
		t.Fatalf("instances interfered: %q %q", v0, v1)
	}
}
