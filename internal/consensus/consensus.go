// Package consensus implements the external consensus service c.Con that
// ARES attaches to every configuration (§4.1, Definition 41): a single-decree,
// multi-proposer Paxos instance running on the configuration's servers.
//
// ARES uses one instance per (key, configuration) to agree on the next
// configuration in that key's global sequence GL. The service guarantees:
//
//   - Agreement: no two processes decide different values;
//   - Validity: a decided value was proposed by some process;
//   - Termination: every correct proposer eventually decides (ensured here
//     by randomized exponential backoff under contention, the standard
//     partial-synchrony escape from the FLP impossibility).
//
// Values are opaque byte strings; ARES proposes gob-encoded configurations.
// A node hosts a single acceptor Service for the whole keyspace: each
// (key, config) Paxos instance is one lazily-created entry in a striped-lock
// map, so per-key reconfiguration chains need no per-key installation.
package consensus

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/keystate"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/quorum"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// ServiceName keys the Paxos acceptor service on nodes.
const ServiceName = "paxos"

// Message types.
const (
	msgPrepare = "prepare"
	msgAccept  = "accept"
	msgDecide  = "decide"
	msgLearn   = "learn"
)

// Ballot orders proposal attempts. Rounds break ties through the proposer
// component, so concurrent proposers never share a ballot.
type Ballot struct {
	Round    int64
	Proposer uint64
}

// Less orders ballots lexicographically on (Round, Proposer).
func (b Ballot) Less(other Ballot) bool {
	if b.Round != other.Round {
		return b.Round < other.Round
	}
	return b.Proposer < other.Proposer
}

// proposerID derives a stable numeric proposer identity from a process ID.
func proposerID(id types.ProcessID) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return h.Sum64()
}

// Wire bodies.
type (
	prepareReq struct {
		Ballot Ballot
	}
	prepareResp struct {
		Promised bool
		// HasAccepted reports a previously accepted proposal that the new
		// proposer must adopt.
		HasAccepted    bool
		AcceptedBallot Ballot
		AcceptedValue  []byte
		// Decided short-circuits: the instance already has an outcome.
		Decided      bool
		DecidedValue []byte
	}
	acceptReq struct {
		Ballot Ballot
		Value  []byte
	}
	acceptResp struct {
		Accepted bool
	}
	decideReq struct {
		Value []byte
	}
	learnResp struct {
		Decided bool
		Value   []byte
	}
)

// acceptor is the acceptor/learner state of one (key, config) Paxos
// instance on one server.
type acceptor struct {
	mu            sync.Mutex
	promised      Ballot
	hasPromised   bool
	accepted      Ballot
	hasAccepted   bool
	acceptedValue []byte
	decided       bool
	decidedValue  []byte
}

// Service hosts every Paxos acceptor of one node.
type Service struct {
	self   types.ProcessID
	cfgs   cfg.Source
	states *keystate.Map[*acceptor]
	// journal, when attached, write-ahead-logs prepare/accept/decide before
	// they mutate (see durable.go); nil for in-memory operation.
	journal atomic.Pointer[keystate.Journal]
}

// NewService returns the node-wide acceptor service for server self; each
// per-(key, config) instance starts fresh on first touch.
func NewService(self types.ProcessID, cfgs cfg.Source) *Service {
	return &Service{
		self:   self,
		cfgs:   cfgs,
		states: keystate.New[*acceptor](keystate.DefaultShards),
	}
}

var _ node.KeyedService = (*Service)(nil)

// state returns (creating on first touch) the acceptor for (key, configID).
func (s *Service) state(key, configID string) (*acceptor, error) {
	return keystate.Materialize(s.states, s.cfgs, ServiceName, s.self, key, configID,
		func(c cfg.Configuration) (*acceptor, error) {
			if _, ok := c.ServerIndex(s.self); !ok {
				return nil, fmt.Errorf("consensus: server %s is not a member of %s", s.self, c.ID)
			}
			return &acceptor{}, nil
		})
}

// HandleKeyed implements node.KeyedService.
func (s *Service) HandleKeyed(_ types.ProcessID, key, configID, msgType string, payload []byte) (any, error) {
	st, err := s.state(key, configID)
	if err != nil {
		return nil, err
	}
	switch msgType {
	case msgPrepare:
		var req prepareReq
		if err := transport.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		// The promise must be durable before the reply leaves: a re-started
		// acceptor that forgot a promise could split a decision.
		release, err := s.journalOp(key, configID, opPrepare, payload)
		if err != nil {
			return nil, err
		}
		defer release()
		return st.prepare(req), nil
	case msgAccept:
		var req acceptReq
		if err := transport.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		release, err := s.journalOp(key, configID, opAccept, payload)
		if err != nil {
			return nil, err
		}
		defer release()
		return st.accept(req), nil
	case msgDecide:
		var req decideReq
		if err := transport.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		release, err := s.journalOp(key, configID, opDecide, payload)
		if err != nil {
			return nil, err
		}
		defer release()
		st.decide(req.Value)
		return nil, nil
	case msgLearn:
		st.mu.Lock()
		defer st.mu.Unlock()
		return learnResp{Decided: st.decided, Value: st.decidedValue}, nil
	default:
		return nil, fmt.Errorf("consensus: unknown message type %q", msgType)
	}
}

func (st *acceptor) prepare(req prepareReq) prepareResp {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.decided {
		return prepareResp{Decided: true, DecidedValue: st.decidedValue}
	}
	if st.hasPromised && !st.promised.Less(req.Ballot) {
		return prepareResp{Promised: false}
	}
	st.promised = req.Ballot
	st.hasPromised = true
	return prepareResp{
		Promised:       true,
		HasAccepted:    st.hasAccepted,
		AcceptedBallot: st.accepted,
		AcceptedValue:  st.acceptedValue,
	}
}

func (st *acceptor) accept(req acceptReq) acceptResp {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.decided {
		// An accept after decision is stale; reject so the proposer learns
		// the decided value through its next prepare.
		return acceptResp{Accepted: false}
	}
	if st.hasPromised && req.Ballot.Less(st.promised) {
		return acceptResp{Accepted: false}
	}
	st.promised = req.Ballot
	st.hasPromised = true
	st.accepted = req.Ballot
	st.acceptedValue = req.Value
	st.hasAccepted = true
	return acceptResp{Accepted: true}
}

func (st *acceptor) decide(value []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.decided {
		st.decided = true
		st.decidedValue = value
	}
}

// States reports how many (key, config) acceptors have been materialized
// (for tests).
func (s *Service) States() int { return s.states.Len() }

// RetireConfig drops the acceptor for (key, configID), reporting whether one
// existed. Safe once the configuration's successor is finalized: the
// instance's outcome is then durably recorded in the quorum's nextC pointers,
// which never change after finalization (Lemma 46), so no future proposer
// needs this acceptor's promises.
func (s *Service) RetireConfig(key, configID string) bool {
	return s.states.Delete(keystate.Ref{Key: key, Config: configID})
}

// Decided reports the learned outcome of the (key, configID) instance (for
// tests). ok is false when the instance is undecided or not materialized.
func (s *Service) Decided(key, configID string) (value []byte, ok bool) {
	st, found := s.states.Get(keystate.Ref{Key: key, Config: configID})
	if !found {
		return nil, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.decidedValue, st.decided
}

// Proposer drives the propose protocol against one instance.
type Proposer struct {
	self     types.ProcessID
	key      string
	configID string
	servers  []types.ProcessID
	q        quorum.System
	rpc      transport.Client

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewProposer constructs a proposer for the instance hosted on servers,
// addressed by (key, configID).
func NewProposer(self types.ProcessID, key, configID string, servers []types.ProcessID, rpc transport.Client) (*Proposer, error) {
	q, err := quorum.Majority(len(servers))
	if err != nil {
		return nil, fmt.Errorf("consensus: %w", err)
	}
	seed := int64(proposerID(self)) ^ time.Now().UnixNano()
	return &Proposer{
		self:     self,
		key:      key,
		configID: configID,
		servers:  servers,
		q:        q,
		rpc:      rpc,
		rng:      rand.New(rand.NewSource(seed)),
	}, nil
}

// Propose runs Paxos until a value is decided and returns it. The returned
// value may differ from the proposal when another proposer won (Validity
// still holds: it was proposed by someone).
func (p *Proposer) Propose(ctx context.Context, value []byte) ([]byte, error) {
	for attempt := int64(1); ; attempt++ {
		decided, ok, err := p.attempt(ctx, attempt, value)
		if err != nil {
			return nil, err
		}
		if ok {
			return decided, nil
		}
		// Contention: back off a randomized, growing amount before retrying.
		if err := p.backoff(ctx, attempt); err != nil {
			return nil, err
		}
	}
}

// attempt runs one ballot. It returns (decidedValue, true, nil) on success
// and (nil, false, nil) when preempted by a higher ballot.
func (p *Proposer) attempt(ctx context.Context, round int64, value []byte) ([]byte, bool, error) {
	ballot := Ballot{Round: round, Proposer: proposerID(p.self)}

	// Phase 1: prepare.
	promises, err := transport.Broadcast(ctx, p.rpc, p.servers,
		transport.Phase[prepareResp]{Service: ServiceName, Key: p.key, Config: p.configID, Type: msgPrepare, Body: prepareReq{Ballot: ballot}},
		func(got []transport.GatherResult[prepareResp]) bool {
			// Stop early on a decided report or a promise quorum.
			promised := 0
			for _, g := range got {
				if g.Value.Decided {
					return true
				}
				if g.Value.Promised {
					promised++
				}
			}
			return promised >= p.q.Size()
		},
	)
	if cfg.IsRetired(err) {
		// The instance's configuration was garbage-collected: its outcome is
		// already durable in the finalized nextC pointers. Retrying ballots
		// here would livelock; surface the redirect so the reconfigurer
		// re-runs read-config and proposes on the live tail.
		return nil, false, fmt.Errorf("consensus: prepare on %s: %w", p.configID, err)
	}
	if errorsIs(err, transport.ErrQuorumUnavailable) {
		return nil, false, nil // every server answered; rejections dominate: preempted
	}
	if err != nil {
		return nil, false, fmt.Errorf("consensus: prepare on %s: %w", p.configID, err)
	}
	chosen := value
	var highest Ballot
	var adopted bool
	promisedCount := 0
	for _, g := range promises {
		if g.Value.Decided {
			// Instance already decided: help spread the outcome, then done.
			p.broadcastDecide(ctx, g.Value.DecidedValue)
			return g.Value.DecidedValue, true, nil
		}
		if !g.Value.Promised {
			continue
		}
		promisedCount++
		if g.Value.HasAccepted && (!adopted || highest.Less(g.Value.AcceptedBallot)) {
			highest = g.Value.AcceptedBallot
			chosen = g.Value.AcceptedValue
			adopted = true
		}
	}
	if promisedCount < p.q.Size() {
		return nil, false, nil // preempted
	}

	// Phase 2: accept. The accept body carries the (possibly large) proposed
	// value to every acceptor; the phase engine encodes it once.
	accepts, err := transport.Broadcast(ctx, p.rpc, p.servers,
		transport.Phase[acceptResp]{Service: ServiceName, Key: p.key, Config: p.configID, Type: msgAccept, Body: acceptReq{Ballot: ballot, Value: chosen}},
		func(got []transport.GatherResult[acceptResp]) bool {
			accepted := 0
			for _, g := range got {
				if g.Value.Accepted {
					accepted++
				}
			}
			return accepted >= p.q.Size()
		},
	)
	if cfg.IsRetired(err) {
		return nil, false, fmt.Errorf("consensus: accept on %s: %w", p.configID, err)
	}
	if errorsIs(err, transport.ErrQuorumUnavailable) {
		return nil, false, nil // preempted by a higher ballot
	}
	if err != nil {
		return nil, false, fmt.Errorf("consensus: accept on %s: %w", p.configID, err)
	}
	acceptedCount := 0
	for _, g := range accepts {
		if g.Value.Accepted {
			acceptedCount++
		}
	}
	if acceptedCount < p.q.Size() {
		return nil, false, nil // preempted
	}

	// Decided: spread the outcome.
	p.broadcastDecide(ctx, chosen)
	return chosen, true, nil
}

// broadcastDecide informs servers of the decision, awaiting a majority so a
// later proposer's prepare quorum intersects a decided acceptor.
func (p *Proposer) broadcastDecide(ctx context.Context, value []byte) {
	_, _ = transport.Broadcast(ctx, p.rpc, p.servers,
		transport.Phase[struct{}]{Service: ServiceName, Key: p.key, Config: p.configID, Type: msgDecide, Body: decideReq{Value: value}},
		transport.AtLeast[struct{}](p.q.Size()),
	)
}

// Learn polls the servers for an existing decision without proposing.
func (p *Proposer) Learn(ctx context.Context) ([]byte, bool, error) {
	got, err := transport.Broadcast(ctx, p.rpc, p.servers,
		transport.Phase[learnResp]{Service: ServiceName, Key: p.key, Config: p.configID, Type: msgLearn, Body: struct{}{}},
		func(got []transport.GatherResult[learnResp]) bool {
			for _, g := range got {
				if g.Value.Decided {
					return true
				}
			}
			return len(got) >= p.q.Size()
		},
	)
	if err != nil {
		return nil, false, fmt.Errorf("consensus: learn on %s: %w", p.configID, err)
	}
	for _, g := range got {
		if g.Value.Decided {
			return g.Value.Value, true, nil
		}
	}
	return nil, false, nil
}

// backoff sleeps a randomized duration growing with the attempt number.
func (p *Proposer) backoff(ctx context.Context, attempt int64) error {
	const base = 2 * time.Millisecond
	max := base * time.Duration(1<<min64(attempt, 6))
	p.rngMu.Lock()
	d := time.Duration(p.rng.Int63n(int64(max)))
	p.rngMu.Unlock()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func errorsIs(err, target error) bool { return errors.Is(err, target) }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
