package consensus

// Durability hooks. A Paxos acceptor's promises are the one state in this
// system that MUST survive a crash for safety (not just liveness): an
// acceptor that forgets a promise can accept a conflicting older ballot and
// split a decision. Prepare, accept, and decide therefore all journal before
// they mutate — and before the reply leaves the server. Replay re-runs the
// same ballot-monotone transitions, so records and snapshots compose
// idempotently.

import (
	"fmt"

	"github.com/ares-storage/ares/internal/keystate"
	"github.com/ares-storage/ares/internal/transport"
)

// Journal ops.
const (
	opPrepare byte = 1
	opAccept  byte = 2
	opDecide  byte = 3
)

// acceptorSnap is the snapshot blob of one acceptor.
type acceptorSnap struct {
	Promised      Ballot
	HasPromised   bool
	Accepted      Ballot
	HasAccepted   bool
	AcceptedValue []byte
	Decided       bool
	DecidedValue  []byte
}

var _ keystate.DurableService = (*Service)(nil)

// DurableFamily implements keystate.DurableService.
func (s *Service) DurableFamily() string { return ServiceName }

// SetJournal attaches the write-ahead journal (nil = in-memory).
func (s *Service) SetJournal(j *keystate.Journal) { s.journal.Store(j) }

func (s *Service) journalOp(key, configID string, op byte, payload []byte) (func(), error) {
	jr := s.journal.Load()
	if jr == nil {
		return func() {}, nil
	}
	return jr.Append(key, configID, op, payload)
}

// ReplayApply implements keystate.DurableService.
func (s *Service) ReplayApply(key, configID string, op byte, payload []byte) error {
	st, err := s.state(key, configID)
	if err != nil {
		return err
	}
	switch op {
	case opPrepare:
		var req prepareReq
		if err := transport.Unmarshal(payload, &req); err != nil {
			return err
		}
		st.prepare(req)
	case opAccept:
		var req acceptReq
		if err := transport.Unmarshal(payload, &req); err != nil {
			return err
		}
		st.accept(req)
	case opDecide:
		var req decideReq
		if err := transport.Unmarshal(payload, &req); err != nil {
			return err
		}
		st.decide(req.Value)
	default:
		return fmt.Errorf("consensus: unknown journal op %d", op)
	}
	return nil
}

// SnapshotStates implements keystate.DurableService.
func (s *Service) SnapshotStates(emit func(key, configID string, blob []byte) error) error {
	var outerErr error
	s.states.Range(func(ref keystate.Ref, st *acceptor) bool {
		st.mu.Lock()
		snap := acceptorSnap{
			Promised: st.promised, HasPromised: st.hasPromised,
			Accepted: st.accepted, HasAccepted: st.hasAccepted, AcceptedValue: st.acceptedValue,
			Decided: st.decided, DecidedValue: st.decidedValue,
		}
		st.mu.Unlock()
		blob, err := transport.Marshal(snap)
		if err == nil {
			err = emit(ref.Key, ref.Config, blob)
		}
		outerErr = err
		return err == nil
	})
	return outerErr
}

// RestoreState implements keystate.DurableService. Each component merges
// ballot-monotonically, so a snapshot restored under replayed log records
// never regresses a promise or resurrects a pre-decision state.
func (s *Service) RestoreState(key, configID string, blob []byte) error {
	var snap acceptorSnap
	if err := transport.Unmarshal(blob, &snap); err != nil {
		return err
	}
	st, err := s.state(key, configID)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if snap.HasPromised && (!st.hasPromised || st.promised.Less(snap.Promised)) {
		st.promised = snap.Promised
		st.hasPromised = true
	}
	if snap.HasAccepted && (!st.hasAccepted || st.accepted.Less(snap.Accepted)) {
		st.accepted = snap.Accepted
		st.acceptedValue = snap.AcceptedValue
		st.hasAccepted = true
	}
	if snap.Decided && !st.decided {
		st.decided = true
		st.decidedValue = snap.DecidedValue
	}
	return nil
}
