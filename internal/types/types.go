// Package types holds the primitive identifiers shared by every ARES
// subsystem: process identities and object values.
//
// The paper (§2) models four distinct sets of processes — writers W, readers
// R, reconfiguration clients G, and servers S — communicating over
// asynchronous reliable channels. All of them are identified here by a
// ProcessID.
package types

import "fmt"

// ProcessID uniquely identifies a process (client or server) in the system.
// IDs are ordered lexicographically; writer IDs participate in tag ordering.
type ProcessID string

// Value is the value domain V of the replicated object. Values are opaque
// byte strings; the erasure-coded path splits and encodes them, the
// replicated path stores them verbatim.
type Value []byte

// Clone returns an independent copy of v. Callers that retain a Value across
// goroutine boundaries must clone it (copy slices at boundaries).
func (v Value) Clone() Value {
	if v == nil {
		return nil
	}
	out := make(Value, len(v))
	copy(out, v)
	return out
}

// Equal reports whether two values hold identical bytes. A nil value equals
// an empty value: the register's initial value v0 is the empty byte string.
func (v Value) Equal(other Value) bool {
	if len(v) != len(other) {
		return false
	}
	for i := range v {
		if v[i] != other[i] {
			return false
		}
	}
	return true
}

// String renders a short, human-readable form of the value for logs.
func (v Value) String() string {
	const maxShown = 16
	if len(v) <= maxShown {
		return fmt.Sprintf("Value(%q)", []byte(v))
	}
	return fmt.Sprintf("Value(%q… %dB)", []byte(v[:maxShown]), len(v))
}
