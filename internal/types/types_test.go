package types

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClone(t *testing.T) {
	t.Parallel()
	v := Value("abc")
	c := v.Clone()
	if !v.Equal(c) {
		t.Fatal("clone differs")
	}
	c[0] = 'X'
	if v[0] == 'X' {
		t.Fatal("clone aliases original")
	}
	if Value(nil).Clone() != nil {
		t.Fatal("nil clone not nil")
	}
}

func TestEqual(t *testing.T) {
	t.Parallel()
	cases := []struct {
		a, b Value
		want bool
	}{
		{nil, nil, true},
		{nil, Value{}, true}, // initial value v0 is the empty string
		{Value("a"), Value("a"), true},
		{Value("a"), Value("b"), false},
		{Value("a"), Value("ab"), false},
	}
	for _, tc := range cases {
		if got := tc.a.Equal(tc.b); got != tc.want {
			t.Errorf("%q.Equal(%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestEqualSymmetric(t *testing.T) {
	t.Parallel()
	f := func(a, b []byte) bool {
		return Value(a).Equal(Value(b)) == Value(b).Equal(Value(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	t.Parallel()
	short := Value("short").String()
	if !strings.Contains(short, "short") {
		t.Fatalf("String() = %q", short)
	}
	long := make(Value, 100)
	s := long.String()
	if !strings.Contains(s, "100B") {
		t.Fatalf("long String() = %q, want truncation with size", s)
	}
}
