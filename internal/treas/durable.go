package treas

// Durability hooks. Two mutations journal: put-data (Alg. 3) and the §5
// fwd-elem push — both idempotent under replay (inserts dedup on tag, the
// δ+1 GC re-trims, and re-accumulating a pending decode re-derives the same
// local shard). req-forward is NOT journaled: its local effect is only the
// volatile forward-dedup set, and its outbound sends must not re-fire during
// recovery. Snapshots capture the List (tags, coded elements, ⊥
// placeholders); in-flight §5 transfer state (pending decodes, recon/forward
// dedup) is deliberately volatile — a reconfiguration interrupted by a crash
// re-drives the transfer from the reconfigurer's side.

import (
	"fmt"

	"github.com/ares-storage/ares/internal/keystate"
	"github.com/ares-storage/ares/internal/transport"
)

// Journal ops.
const (
	opPutData byte = 1
	opFwdElem byte = 2
)

// objSnap is the snapshot blob of one object: its List entries.
type objSnap struct {
	Entries []listEntry
}

var _ keystate.DurableService = (*Service)(nil)

// DurableFamily implements keystate.DurableService.
func (s *Service) DurableFamily() string { return ServiceName }

// SetJournal attaches the write-ahead journal (nil = in-memory).
func (s *Service) SetJournal(j *keystate.Journal) { s.journal.Store(j) }

func (s *Service) journalOp(key, configID string, op byte, payload []byte) (func(), error) {
	jr := s.journal.Load()
	if jr == nil {
		return func() {}, nil
	}
	return jr.Append(key, configID, op, payload)
}

// ReplayApply implements keystate.DurableService.
func (s *Service) ReplayApply(key, configID string, op byte, payload []byte) error {
	st, err := s.state(key, configID)
	if err != nil {
		return err
	}
	switch op {
	case opPutData:
		_, err = st.handlePutData(payload)
	case opFwdElem:
		_, err = st.handleFwdElem(payload)
	default:
		return fmt.Errorf("treas: unknown journal op %d", op)
	}
	return err
}

// SnapshotStates implements keystate.DurableService.
func (s *Service) SnapshotStates(emit func(key, configID string, blob []byte) error) error {
	var outerErr error
	s.states.Range(func(ref keystate.Ref, st *objState) bool {
		st.mu.Lock()
		snap := objSnap{Entries: make([]listEntry, 0, len(st.list))}
		for _, e := range st.list {
			snap.Entries = append(snap.Entries, e)
		}
		st.mu.Unlock()
		blob, err := transport.Marshal(snap)
		if err == nil {
			err = emit(ref.Key, ref.Config, blob)
		}
		outerErr = err
		return err == nil
	})
	return outerErr
}

// RestoreState implements keystate.DurableService. Entries merge into the
// List (an element never downgrades to ⊥), then the δ+1 bound re-trims —
// restoring an older snapshot under newer replayed records converges to the
// same List the live run held.
func (s *Service) RestoreState(key, configID string, blob []byte) error {
	var snap objSnap
	if err := transport.Unmarshal(blob, &snap); err != nil {
		return err
	}
	st, err := s.state(key, configID)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, e := range snap.Entries {
		if cur, ok := st.list[e.Tag]; ok && (cur.HasElem || !e.HasElem) {
			continue
		}
		st.list[e.Tag] = e
	}
	st.gcLocked()
	return nil
}
