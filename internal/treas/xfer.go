package treas

import (
	"context"
	"fmt"
	"time"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/erasure"
	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// Server-side half of the §5 optimized state transfer (Alg. 9). The
// reconfiguration client asks the old configuration C to forward the coded
// elements of the maximum tag directly to the new configuration C'; C'
// servers accumulate foreign elements in D, decode once k arrive, re-encode
// under their own [n', k'] code, and store the result in their List. All
// transfer messages carry the object key, so they route to the same per-key
// state the base protocol uses.

// Message types of the transfer protocol.
const (
	// msgReqForward is REQ-FW-CODE-ELEM: delivered via the md-primitive
	// (all-or-none) to the old configuration's servers.
	msgReqForward = "req-fw"
	// msgFwdElem is FWD-CODE-ELEM: an old server pushing its coded element
	// to a new server.
	msgFwdElem = "fwd-elem"
	// msgHasTag is the reconfigurer's completion poll, replacing the
	// paper's server→client ACK push (see DESIGN.md substitutions).
	msgHasTag = "has-tag"
)

// Wire bodies.
type (
	reqForwardReq struct {
		Tag tag.Tag
		// Target is the new configuration C' whose servers receive the
		// elements.
		Target cfg.Configuration
		// RC identifies the reconfiguration operation (Alg. 9's rc).
		RC types.ProcessID
		// Relayed marks echo copies exchanged between peers; they are not
		// relayed again. The first receipt relays to all peers before
		// acting, implementing the md-primitive's all-or-none delivery.
		Relayed bool
	}
	fwdElemReq struct {
		Tag      tag.Tag
		SrcIndex int
		Elem     []byte
		ValueLen int
		// SrcN and SrcK are the source configuration's code parameters,
		// needed to decode foreign elements before re-encoding locally.
		SrcN int
		SrcK int
		RC   types.ProcessID
	}
	hasTagReq  struct{ Tag tag.Tag }
	hasTagResp struct{ Done bool }
)

// sendTimeout bounds each server-to-server push. A lost push is harmless:
// completion needs only ⌈(n'+k')/2⌉ new servers to hold the tag, and the
// md-relay means every live old server attempts its own pushes.
const sendTimeout = 10 * time.Second

// handleReqForward implements the old-configuration side of Alg. 9
// (REQ-FW-CODE-ELEM): relay to peers on first receipt (md-primitive), then
// push the local coded element for the tag to every server of the target.
func (s *Service) handleReqForward(st *objState, payload []byte) (any, error) {
	if s.rpc == nil {
		return nil, fmt.Errorf("treas: %s has no transport for forwarding", s.self)
	}
	var req reqForwardReq
	if err := transport.Unmarshal(payload, &req); err != nil {
		return nil, err
	}

	dedupKey := fmt.Sprintf("%v/%s/%s", req.Tag, req.RC, req.Target.ID)
	st.mu.Lock()
	if st.forwarded == nil {
		st.forwarded = make(map[string]bool)
	}
	if st.forwarded[dedupKey] {
		st.mu.Unlock()
		return nil, nil
	}
	st.forwarded[dedupKey] = true
	entry, haveElem := st.list[req.Tag]
	st.mu.Unlock()

	// md-primitive echo: relay the request to every peer before acting, so
	// that delivery is all-or-none across non-faulty servers even when the
	// reconfigurer crashes after reaching a single server. Sends run in the
	// background (a server never blocks its reply on a peer's liveness);
	// they are tracked by s.sends so tests and shutdown can drain them.
	if !req.Relayed {
		relay := req
		relay.Relayed = true
		relayPayload := transport.MustMarshal(relay)
		for _, peer := range st.cfg.Servers {
			if peer == s.self {
				continue
			}
			peer := peer
			s.sends.Add(1)
			go func() {
				defer s.sends.Done()
				ctx, cancel := context.WithTimeout(context.Background(), sendTimeout)
				defer cancel()
				_, _ = s.rpc.Invoke(ctx, peer, transport.Request{
					Service: ServiceName,
					Key:     st.cfg.Key,
					Config:  string(st.cfg.ID),
					Type:    msgReqForward,
					Payload: relayPayload,
				})
			}()
		}
	}

	// Push the local element (if the tag is present with its element) to
	// every server of the target configuration.
	if haveElem && entry.HasElem {
		fwd := fwdElemReq{
			Tag:      req.Tag,
			SrcIndex: st.index,
			Elem:     entry.Elem,
			ValueLen: entry.ValueLen,
			SrcN:     st.cfg.N(),
			SrcK:     st.cfg.K,
			RC:       req.RC,
		}
		fwdPayload := transport.MustMarshal(fwd)
		for _, dst := range req.Target.Servers {
			dst := dst
			s.sends.Add(1)
			go func() {
				defer s.sends.Done()
				ctx, cancel := context.WithTimeout(context.Background(), sendTimeout)
				defer cancel()
				_, _ = s.rpc.Invoke(ctx, dst, transport.Request{
					Service: ServiceName,
					Key:     req.Target.Key,
					Config:  string(req.Target.ID),
					Type:    msgFwdElem,
					Payload: fwdPayload,
				})
			}()
		}
	}
	return nil, nil
}

// handleFwdElem implements the new-configuration side of Alg. 9
// (FWD-CODE-ELEM): accumulate foreign elements in D; once srcK arrive,
// decode the value with the source code, re-encode with the local code, and
// insert the local coded element into the List.
func (st *objState) handleFwdElem(payload []byte) (any, error) {
	var req fwdElemReq
	if err := transport.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()

	if st.recons[req.RC] {
		return nil, nil // rc already served by this server (Alg. 9 line 9)
	}
	if _, ok := st.list[req.Tag]; ok {
		// Tag already present locally: nothing to decode (Alg. 9 line 10/20).
		st.recons[req.RC] = true
		return nil, nil
	}

	pd, ok := st.pendingD[req.Tag]
	if !ok {
		pd = &pendingDecode{
			srcK:     req.SrcK,
			valueLen: req.ValueLen,
			elems:    make(map[int][]byte),
		}
		st.pendingD[req.Tag] = pd
	}
	pd.elems[req.SrcIndex] = req.Elem

	if len(pd.elems) < pd.srcK {
		return nil, nil // not yet decodable (Alg. 9 line 12)
	}

	srcCode, err := erasure.New(req.SrcN, req.SrcK)
	if err != nil {
		return nil, fmt.Errorf("treas: foreign code [%d,%d]: %w", req.SrcN, req.SrcK, err)
	}
	value, err := srcCode.Decode(pd.elems, pd.valueLen)
	if err != nil {
		return nil, fmt.Errorf("treas: decoding forwarded tag %v: %w", req.Tag, err)
	}
	delete(st.pendingD, req.Tag) // D ← D − {⟨t, ei⟩} (Alg. 9 line 14)

	shards, err := st.code.Encode(value)
	if err != nil {
		return nil, fmt.Errorf("treas: re-encoding forwarded tag %v: %w", req.Tag, err)
	}
	st.insertLocked(req.Tag, shards[st.index], pd.valueLen)
	st.recons[req.RC] = true // Alg. 9 lines 20–21
	return nil, nil
}

// DrainSends blocks until every background relay/forward send this service
// started has completed or timed out. Tests use it for deterministic
// assertions on target state.
func (s *Service) DrainSends() {
	s.sends.Wait()
}

// handleHasTag answers the reconfigurer's completion poll: whether the tag
// has been installed in this server's List.
func (st *objState) handleHasTag(payload []byte) (any, error) {
	var req hasTagReq
	if err := transport.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.list[req.Tag]
	return hasTagResp{Done: ok}, nil
}

// RequestForward is the reconfigurer-side entry point of
// forward-code-element (Alg. 8): deliver REQ-FW-CODE-ELEM to the source
// configuration via the md-primitive (here: send to all; servers echo), then
// poll the target until ⌈(n'+k')/2⌉ of its servers hold the tag.
func RequestForward(
	ctx context.Context,
	rpc transport.Client,
	rc types.ProcessID,
	src, dst cfg.Configuration,
	t tag.Tag,
) error {
	// Send to every source server; the md-relay in handleReqForward makes
	// delivery all-or-none even if only one copy lands.
	sent, err := transport.Broadcast(ctx, rpc, src.Servers,
		transport.Phase[struct{}]{
			Service: ServiceName, Key: src.Key, Config: string(src.ID), Type: msgReqForward,
			Body: reqForwardReq{Tag: t, Target: dst, RC: rc, Relayed: false},
		},
		transport.AtLeast[struct{}](1),
	)
	if err != nil || len(sent) == 0 {
		return fmt.Errorf("treas: request-forward to %s: %w", src.ID, err)
	}

	// Poll the target configuration for completion.
	need := dst.Quorum().Size()
	for {
		done := 0
		got, err := transport.Broadcast(ctx, rpc, dst.Servers,
			transport.Phase[hasTagResp]{Service: ServiceName, Key: dst.Key, Config: string(dst.ID), Type: msgHasTag, Body: hasTagReq{Tag: t}},
			transport.AtLeast[hasTagResp](need),
		)
		if err != nil {
			return fmt.Errorf("treas: transfer poll on %s: %w", dst.ID, err)
		}
		for _, g := range got {
			if g.Value.Done {
				done++
			}
		}
		if done >= need {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}
