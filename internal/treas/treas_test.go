package treas

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/dap"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// deploy installs a TREAS configuration on a fresh simnet.
func deploy(t *testing.T, id cfg.ID, n, k, delta int, net *transport.Simnet) (cfg.Configuration, map[types.ProcessID]*Service) {
	t.Helper()
	c := cfg.Configuration{ID: id, Algorithm: cfg.TREAS, K: k, Delta: delta}
	for i := 0; i < n; i++ {
		c.Servers = append(c.Servers, types.ProcessID(fmt.Sprintf("%s-s%d", id, i+1)))
	}
	services := make(map[types.ProcessID]*Service, n)
	for _, sid := range c.Servers {
		src := cfg.NewResolver()
		src.Add(c)
		nd := node.New(sid)
		svc := NewService(sid, src, net.Client(sid))
		nd.InstallKeyed(ServiceName, svc)
		net.Register(sid, nd)
		services[sid] = svc
	}
	return c, services
}

func TestWriteThenRead(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	c, _ := deploy(t, "c0", 5, 3, 2, net)
	client, err := NewClient(c, net.Client("w1"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	value := types.Value("erasure coded atomic storage with two rounds")
	wTag, err := dap.WriteA1(ctx, client, "w1", value)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := dap.ReadA1(ctx, client)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Tag != wTag || !pair.Value.Equal(value) {
		t.Fatalf("read = (%v, %q)", pair.Tag, pair.Value)
	}
}

func TestReadInitialValue(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	c, _ := deploy(t, "c0", 5, 3, 2, net)
	client, err := NewClient(c, net.Client("r1"))
	if err != nil {
		t.Fatal(err)
	}
	pair, err := dap.ReadA1(context.Background(), client)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Tag != tag.Zero || len(pair.Value) != 0 {
		t.Fatalf("initial read = (%v, %q), want (t0, empty)", pair.Tag, pair.Value)
	}
}

func TestLargeUnalignedValue(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	c, _ := deploy(t, "c0", 7, 5, 2, net)
	client, err := NewClient(c, net.Client("w1"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	value := make(types.Value, 64*1024+13)
	for i := range value {
		value[i] = byte(i * 131)
	}
	if _, err := dap.WriteA1(ctx, client, "w1", value); err != nil {
		t.Fatal(err)
	}
	pair, err := dap.ReadA1(ctx, client)
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Value.Equal(value) {
		t.Fatal("large value corrupted through encode/transfer/decode")
	}
}

func TestToleratesFCrashes(t *testing.T) {
	t.Parallel()
	// [n=5, k=3] tolerates f = (n-k)/2 = 1 crash.
	net := transport.NewSimnet()
	c, _ := deploy(t, "c0", 5, 3, 2, net)
	net.Crash(c.Servers[0])
	client, err := NewClient(c, net.Client("w1"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := dap.WriteA1(ctx, client, "w1", types.Value("survives")); err != nil {
		t.Fatalf("write with 1 crash: %v", err)
	}
	pair, err := dap.ReadA1(ctx, client)
	if err != nil {
		t.Fatalf("read with 1 crash: %v", err)
	}
	if string(pair.Value) != "survives" {
		t.Fatalf("read %q", pair.Value)
	}
}

func TestBlocksBeyondFaultBound(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	c, _ := deploy(t, "c0", 5, 3, 2, net)
	net.Crash(c.Servers[0])
	net.Crash(c.Servers[1]) // 2 > f = 1
	client, err := NewClient(c, net.Client("w1"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := client.GetTag(ctx); err == nil {
		t.Fatal("get-tag succeeded beyond the fault bound")
	}
}

// TestGarbageCollectionBound checks Alg. 3's δ+1 rule: at most δ+1 tags
// retain coded elements, older tags keep only the ⊥ placeholder, and tags
// themselves are never removed.
func TestGarbageCollectionBound(t *testing.T) {
	t.Parallel()
	const delta = 2
	net := transport.NewSimnet()
	c, services := deploy(t, "c0", 5, 3, delta, net)
	client, err := NewClient(c, net.Client("w1"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const writes = 10
	for i := 1; i <= writes; i++ {
		p := tag.Pair{Tag: tag.Tag{Z: int64(i), W: "w1"}, Value: types.Value(fmt.Sprintf("value-%02d", i))}
		if err := client.PutData(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	net.Quiesce() // reliable channels: stragglers still receive every write
	for id, svc := range services {
		tags, withElems := svc.ListSize("", string(c.ID))
		if withElems > delta+1 {
			t.Errorf("%s retains %d coded elements, want <= δ+1 = %d", id, withElems, delta+1)
		}
		// t0 + the writes that reached this server; every tag is retained.
		if tags < delta+1 {
			t.Errorf("%s retains %d tags, fewer than δ+1", id, tags)
		}
		if got := svc.MaxTag("", string(c.ID)); got.Z != writes {
			t.Errorf("%s max tag = %v, want z = %d", id, got, writes)
		}
	}
}

// TestStorageCostTheorem3 validates Theorem 3(i): total storage is
// (δ+1)·(n/k) value sizes once lists are full.
func TestStorageCostTheorem3(t *testing.T) {
	t.Parallel()
	const (
		n, k, delta = 6, 4, 2
		valueSize   = 4 * 1024
	)
	net := transport.NewSimnet()
	c, services := deploy(t, "c0", n, k, delta, net)
	client, err := NewClient(c, net.Client("w1"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 1; i <= delta+3; i++ { // enough writes to fill every list
		v := make(types.Value, valueSize)
		if err := client.PutData(ctx, tag.Pair{Tag: tag.Tag{Z: int64(i), W: "w1"}, Value: v}); err != nil {
			t.Fatal(err)
		}
	}
	net.Quiesce() // reliable channels: let straggler deliveries land
	total := 0
	for _, svc := range services {
		total += svc.StorageBytes()
	}
	want := (delta + 1) * n * (valueSize / k)
	// Allow slack for ceil() striping and the tiny t0 element.
	if total < want || total > want+n*(delta+2) {
		t.Fatalf("total storage = %d bytes, want ~%d = (δ+1)·n/k · |v|", total, want)
	}
}

// TestDAPPropertyC1 checks Definition 31 C1 for the TREAS DAP (Lemma 5).
func TestDAPPropertyC1(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	c, _ := deploy(t, "c0", 5, 3, 4, net)
	w, err := NewClient(c, net.Client("w1"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewClient(c, net.Client("r1"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	written := tag.Tag{Z: 3, W: "w1"}
	if err := w.PutData(ctx, tag.Pair{Tag: written, Value: types.Value("c1-check")}); err != nil {
		t.Fatal(err)
	}
	gotTag, err := r.GetTag(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gotTag.Less(written) {
		t.Fatalf("get-tag %v < completed put-data tag %v: C1 violated", gotTag, written)
	}
	pair, err := r.GetData(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Tag.Less(written) {
		t.Fatalf("get-data %v < completed put-data tag %v: C1 violated", pair.Tag, written)
	}
	if string(pair.Value) != "c1-check" {
		t.Fatalf("get-data value %q", pair.Value)
	}
}

// TestDAPPropertyC2 checks Definition 31 C2: returned pairs were actually
// written (values decode to what some put-data carried).
func TestDAPPropertyC2(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	c, _ := deploy(t, "c0", 5, 3, 8, net)
	w, err := NewClient(c, net.Client("w1"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewClient(c, net.Client("r1"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	put := map[tag.Tag]string{}
	for i := 1; i <= 6; i++ {
		p := tag.Pair{Tag: tag.Tag{Z: int64(i), W: "w1"}, Value: types.Value(fmt.Sprintf("v%d", i))}
		put[p.Tag] = string(p.Value)
		if err := w.PutData(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	pair, err := r.GetData(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Tag == tag.Zero {
		return
	}
	want, ok := put[pair.Tag]
	if !ok || want != string(pair.Value) {
		t.Fatalf("get-data returned unwritten pair (%v, %q): C2 violated", pair.Tag, pair.Value)
	}
}

// TestConcurrencyWithinDeltaStaysLive is Theorem 9's liveness condition:
// with concurrent writers bounded by δ, reads keep completing.
func TestConcurrencyWithinDeltaStaysLive(t *testing.T) {
	t.Parallel()
	const writers = 4
	net := transport.NewSimnet(WithJitter())
	c, _ := deploy(t, "c0", 5, 3, writers+1, net)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := types.ProcessID(fmt.Sprintf("w%d", i))
			client, err := NewClient(c, net.Client(id))
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := dap.WriteA1(ctx, client, id, types.Value(fmt.Sprintf("%s-%d", id, j))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	r, err := NewClient(c, net.Client("r1"))
	if err != nil {
		t.Fatal(err)
	}
	success := 0
	for i := 0; i < 20; i++ {
		if _, err := dap.ReadA1(ctx, r); err != nil {
			if errors.Is(err, ErrNotDecodable) {
				continue // allowed transiently; must not persist
			}
			t.Fatal(err)
		}
		success++
	}
	close(stop)
	wg.Wait()
	if success == 0 {
		t.Fatal("no read completed despite concurrency within δ")
	}
}

func TestNewClientValidation(t *testing.T) {
	t.Parallel()
	bad := cfg.Configuration{ID: "x", Algorithm: cfg.ABD, Servers: []types.ProcessID{"s1"}}
	if _, err := NewClient(bad, nil); err == nil {
		t.Fatal("NewClient accepted an ABD configuration")
	}
	badK := cfg.Configuration{ID: "x", Algorithm: cfg.TREAS, Servers: []types.ProcessID{"s1", "s2"}, K: 5}
	if _, err := NewClient(badK, nil); err == nil {
		t.Fatal("NewClient accepted k > n")
	}
}

func TestServiceMembershipValidation(t *testing.T) {
	t.Parallel()
	c := cfg.Configuration{ID: "x", Algorithm: cfg.TREAS, Servers: []types.ProcessID{"s1", "s2", "s3"}, K: 2}
	src := cfg.NewResolver()
	src.Add(c)
	outsider := NewService("outsider", src, nil)
	if _, err := outsider.HandleKeyed("q", "", "x", msgQueryTag, nil); err == nil {
		t.Fatal("non-member server materialized state")
	}
	if outsider.States() != 0 {
		t.Fatal("rejected message left state behind")
	}
	member := NewService("s1", src, nil)
	if _, err := member.HandleKeyed("q", "", "x", msgQueryTag, nil); err != nil {
		t.Fatalf("member first touch: %v", err)
	}
	if member.States() != 1 {
		t.Fatalf("member States = %d, want 1", member.States())
	}
}

func TestServiceUnknownConfig(t *testing.T) {
	t.Parallel()
	svc := NewService("s1", cfg.NewResolver(), nil)
	_, err := svc.HandleKeyed("q", "", "ghost", msgQueryTag, nil)
	if !errors.Is(err, cfg.ErrUnknownConfig) {
		t.Fatalf("err = %v, want ErrUnknownConfig", err)
	}
}

func TestServiceUnknownMessage(t *testing.T) {
	t.Parallel()
	c := cfg.Configuration{ID: "x", Algorithm: cfg.TREAS, Servers: []types.ProcessID{"s1"}, K: 1}
	src := cfg.NewResolver()
	src.Add(c)
	svc := NewService("s1", src, nil)
	if _, err := svc.HandleKeyed("q", "", "x", "bogus", nil); err == nil {
		t.Fatal("unknown message type accepted")
	}
}

// WithJitter gives the simnet a small random delay so concurrent operations
// genuinely interleave.
func WithJitter() transport.SimnetOption {
	return transport.WithDelayRange(100*time.Microsecond, 2*time.Millisecond)
}
