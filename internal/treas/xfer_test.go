package treas

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// objOf returns (materializing if needed) a service's per-object state, for
// white-box assertions on Lists and §5 bookkeeping.
func objOf(t *testing.T, svc *Service, key, configID string) *objState {
	t.Helper()
	st, err := svc.state(key, configID)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// deployPair installs two TREAS configurations (source and target) on one
// simnet and returns their services.
func deployPair(t *testing.T, net *transport.Simnet, srcN, srcK, dstN, dstK int) (src, dst cfg.Configuration, srcSvcs, dstSvcs map[types.ProcessID]*Service) {
	t.Helper()
	src, srcSvcs = deploy(t, "src", srcN, srcK, 2, net)
	dst, dstSvcs = deploy(t, "dst", dstN, dstK, 2, net)
	return src, dst, srcSvcs, dstSvcs
}

// drainAll waits for background relay/forward sends on every service, twice:
// a relayed request's handler registers new sends on the receiving service,
// so one pass per relay depth (the echo relay has depth 2) suffices.
func drainAll(net *transport.Simnet, groups ...map[types.ProcessID]*Service) {
	for pass := 0; pass < 2; pass++ {
		for _, svcs := range groups {
			for _, svc := range svcs {
				svc.DrainSends()
			}
		}
		net.Quiesce()
	}
}

// writeTo puts a tagged value into a configuration and quiesces the network.
func writeTo(t *testing.T, net *transport.Simnet, c cfg.Configuration, tg tag.Tag, v types.Value) {
	t.Helper()
	client, err := NewClient(c, net.Client("w1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.PutData(context.Background(), tag.Pair{Tag: tg, Value: v}); err != nil {
		t.Fatal(err)
	}
	net.Quiesce()
}

func TestRequestForwardMovesState(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	src, dst, _, _ := deployPair(t, net, 5, 3, 5, 3)
	written := tag.Tag{Z: 4, W: "w1"}
	payload := make(types.Value, 12*1024)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	writeTo(t, net, src, written, payload)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := RequestForward(ctx, net.Client("rc1"), "rc1", src, dst, written); err != nil {
		t.Fatal(err)
	}

	// The target configuration must now decode the value natively.
	reader, err := NewClient(dst, net.Client("r1"))
	if err != nil {
		t.Fatal(err)
	}
	pair, err := reader.GetData(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Tag != written || !pair.Value.Equal(payload) {
		t.Fatalf("target returned (%v, %d bytes)", pair.Tag, len(pair.Value))
	}
}

func TestRequestForwardReencodesAcrossCodes(t *testing.T) {
	t.Parallel()
	// [5,3] → [8,6]: target shards must be re-encoded, not copied.
	net := transport.NewSimnet()
	src, dst, _, dstSvcs := deployPair(t, net, 5, 3, 8, 6)
	written := tag.Tag{Z: 2, W: "w1"}
	payload := make(types.Value, 6*1024+5) // unaligned for both codes
	for i := range payload {
		payload[i] = byte(i*13 + 1)
	}
	writeTo(t, net, src, written, payload)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := RequestForward(ctx, net.Client("rc1"), "rc1", src, dst, written); err != nil {
		t.Fatal(err)
	}
	drainAll(net, dstSvcs)

	// Every target server that received the tag stores a [8,6] shard of the
	// right size.
	wantShard := (len(payload) + 5) / 6
	holders := 0
	for id, svc := range dstSvcs {
		st := objOf(t, svc, "", string(dst.ID))
		st.mu.Lock()
		entry, ok := st.list[written]
		st.mu.Unlock()
		if !ok {
			continue
		}
		holders++
		if entry.HasElem && len(entry.Elem) != wantShard {
			t.Errorf("%s shard = %d bytes, want %d ([8,6] re-encode)", id, len(entry.Elem), wantShard)
		}
	}
	if holders < dst.Quorum().Size() {
		t.Fatalf("only %d target servers hold the tag, want >= %d", holders, dst.Quorum().Size())
	}

	reader, err := NewClient(dst, net.Client("r1"))
	if err != nil {
		t.Fatal(err)
	}
	pair, err := reader.GetData(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Value.Equal(payload) {
		t.Fatal("value corrupted across re-encoding")
	}
}

// TestMdPrimitiveAllOrNone is the §5 md-primitive property: if the
// reconfigurer's request reaches even a single source server, every
// non-faulty source server relays it, so the transfer completes although the
// reconfigurer crashed after one send.
func TestMdPrimitiveAllOrNone(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	src, dst, srcSvcs, dstSvcs := deployPair(t, net, 5, 3, 5, 3)
	written := tag.Tag{Z: 7, W: "w1"}
	payload := make(types.Value, 9*1024)
	writeTo(t, net, src, written, payload)

	// Simulate the reconfigurer crashing after reaching exactly one source
	// server: deliver REQ-FW to src.Servers[0] only, directly.
	req := reqForwardReq{Tag: written, Target: dst, RC: "rc-crashed", Relayed: false}
	resp, err := net.Client("rc-crashed").Invoke(context.Background(), src.Servers[0], transport.Request{
		Service: ServiceName,
		Config:  string(src.ID),
		Type:    msgReqForward,
		Payload: transport.MustMarshal(req),
	})
	if err != nil || !resp.OK {
		t.Fatalf("single delivery failed: %v %s", err, resp.Err)
	}
	drainAll(net, srcSvcs, dstSvcs)

	// Despite the crash, the echo-relay must have spread the request and the
	// target must hold a decodable copy.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reader, err := NewClient(dst, net.Client("r1"))
	if err != nil {
		t.Fatal(err)
	}
	pair, err := reader.GetData(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Tag != written || !pair.Value.Equal(payload) {
		t.Fatalf("target state after relayed transfer: (%v, %d bytes)", pair.Tag, len(pair.Value))
	}
}

func TestForwardDedup(t *testing.T) {
	t.Parallel()
	// Repeated REQ-FW deliveries (client retry + echoes) must not multiply
	// work or corrupt state.
	net := transport.NewSimnet()
	src, dst, _, _ := deployPair(t, net, 5, 3, 5, 3)
	written := tag.Tag{Z: 1, W: "w1"}
	payload := make(types.Value, 3*1024)
	writeTo(t, net, src, written, payload)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		if err := RequestForward(ctx, net.Client("rc1"), "rc1", src, dst, written); err != nil {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	net.Quiesce()
	reader, err := NewClient(dst, net.Client("r1"))
	if err != nil {
		t.Fatal(err)
	}
	pair, err := reader.GetData(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Value.Equal(payload) {
		t.Fatal("value corrupted by repeated transfers")
	}
}

func TestForwardWithSourceCrashWithinBound(t *testing.T) {
	t.Parallel()
	// [5,3] tolerates f=1: transfer must succeed with one source server down
	// (k=3 elements still reachable).
	net := transport.NewSimnet()
	src, dst, _, _ := deployPair(t, net, 5, 3, 5, 3)
	written := tag.Tag{Z: 3, W: "w1"}
	payload := make(types.Value, 5*1024)
	writeTo(t, net, src, written, payload)
	net.Crash(src.Servers[0])

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := RequestForward(ctx, net.Client("rc1"), "rc1", src, dst, written); err != nil {
		t.Fatal(err)
	}
	reader, err := NewClient(dst, net.Client("r1"))
	if err != nil {
		t.Fatal(err)
	}
	pair, err := reader.GetData(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Value.Equal(payload) {
		t.Fatal("transfer under source crash corrupted value")
	}
}

func TestHandleFwdElemIgnoresServedReconfigurer(t *testing.T) {
	t.Parallel()
	c := cfg.Configuration{ID: "x", Algorithm: cfg.TREAS, K: 2, Delta: 2,
		Servers: []types.ProcessID{"s1", "s2", "s3"}}
	src := cfg.NewResolver()
	src.Add(c)
	svc := NewService("s1", src, nil)
	st := objOf(t, svc, "", "x")
	// Mark rc as served, then send a forwarded element: it must be ignored
	// (Alg. 9 line 9) and leave no pending state behind.
	st.mu.Lock()
	st.recons["rc1"] = true
	st.mu.Unlock()
	req := fwdElemReq{Tag: tag.Tag{Z: 9, W: "w"}, SrcIndex: 0, Elem: []byte{1}, ValueLen: 1, SrcN: 3, SrcK: 1, RC: "rc1"}
	if _, err := svc.HandleKeyed("peer", "", "x", msgFwdElem, transport.MustMarshal(req)); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	_, inList := st.list[req.Tag]
	pending := len(st.pendingD)
	st.mu.Unlock()
	if inList || pending != 0 {
		t.Fatal("served reconfigurer's element was processed")
	}
}

func TestHasTagReportsInstallation(t *testing.T) {
	t.Parallel()
	c := cfg.Configuration{ID: "x", Algorithm: cfg.TREAS, K: 1, Delta: 2,
		Servers: []types.ProcessID{"s1"}}
	src := cfg.NewResolver()
	src.Add(c)
	svc := NewService("s1", src, nil)
	st := objOf(t, svc, "", "x")
	query := func(tg tag.Tag) bool {
		out, err := svc.HandleKeyed("rc", "", "x", msgHasTag, transport.MustMarshal(hasTagReq{Tag: tg}))
		if err != nil {
			t.Fatal(err)
		}
		return out.(hasTagResp).Done
	}
	if query(tag.Tag{Z: 5, W: "w"}) {
		t.Fatal("has-tag true before installation")
	}
	if !query(tag.Zero) {
		t.Fatal("has-tag false for t0")
	}
	st.mu.Lock()
	st.insertLocked(tag.Tag{Z: 5, W: "w"}, []byte{1}, 1)
	st.mu.Unlock()
	if !query(tag.Tag{Z: 5, W: "w"}) {
		t.Fatal("has-tag false after installation")
	}
}

func TestRequestForwardNoRPCOnService(t *testing.T) {
	t.Parallel()
	// A service constructed without a transport cannot forward; the request
	// must fail loudly rather than silently dropping state.
	c := cfg.Configuration{ID: "x", Algorithm: cfg.TREAS, K: 1, Delta: 2,
		Servers: []types.ProcessID{"s1"}}
	src := cfg.NewResolver()
	src.Add(c)
	svc := NewService("s1", src, nil)
	req := reqForwardReq{Tag: tag.Zero, Target: c, RC: "rc"}
	if _, err := svc.HandleKeyed("rc", "", "x", msgReqForward, transport.MustMarshal(req)); err == nil {
		t.Fatal("forward without transport succeeded")
	}
}

func TestTransferPreservesListBound(t *testing.T) {
	t.Parallel()
	// Forwarded state obeys the same δ+1 GC rule as written state.
	net := transport.NewSimnet()
	src, dst, _, dstSvcs := deployPair(t, net, 5, 3, 5, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 1; i <= 5; i++ {
		tg := tag.Tag{Z: int64(i), W: "w1"}
		writeTo(t, net, src, tg, make(types.Value, 2048))
		if err := RequestForward(ctx, net.Client(types.ProcessID(fmt.Sprintf("rc%d", i))), types.ProcessID(fmt.Sprintf("rc%d", i)), src, dst, tg); err != nil {
			t.Fatal(err)
		}
	}
	net.Quiesce()
	for id, svc := range dstSvcs {
		_, withElems := svc.ListSize("", string(dst.ID))
		if withElems > dst.Delta+1 {
			t.Errorf("%s holds %d elements after transfers, want <= δ+1 = %d", id, withElems, dst.Delta+1)
		}
	}
}
