package treas

import (
	"context"
	"fmt"
	"testing"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// benchDeploy is the benchmark twin of deploy (no *testing.T).
func benchDeploy(b *testing.B, id cfg.ID, n, k, delta int, net *transport.Simnet) cfg.Configuration {
	b.Helper()
	c := cfg.Configuration{ID: id, Algorithm: cfg.TREAS, K: k, Delta: delta}
	for i := 0; i < n; i++ {
		c.Servers = append(c.Servers, types.ProcessID(fmt.Sprintf("%s-s%d", id, i+1)))
	}
	for _, sid := range c.Servers {
		src := cfg.NewResolver()
		src.Add(c)
		nd := node.New(sid)
		nd.InstallKeyed(ServiceName, NewService(sid, src, net.Client(sid)))
		net.Register(sid, nd)
	}
	return c
}

func BenchmarkPutData64KiB(b *testing.B) {
	net := transport.NewSimnet()
	c := benchDeploy(b, "c0", 5, 3, 2, net)
	client, err := NewClient(c, net.Client("w1"))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	v := make(types.Value, 64*1024)
	b.SetBytes(int64(len(v)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.PutData(ctx, tag.Pair{Tag: tag.Tag{Z: int64(i + 1), W: "w1"}, Value: v}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetData64KiB(b *testing.B) {
	net := transport.NewSimnet()
	c := benchDeploy(b, "c0", 5, 3, 2, net)
	client, err := NewClient(c, net.Client("w1"))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	v := make(types.Value, 64*1024)
	if err := client.PutData(ctx, tag.Pair{Tag: tag.Tag{Z: 1, W: "w1"}, Value: v}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(v)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.GetData(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetTag(b *testing.B) {
	net := transport.NewSimnet()
	c := benchDeploy(b, "c0", 5, 3, 2, net)
	client, err := NewClient(c, net.Client("w1"))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.GetTag(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepairOneServer(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := transport.NewSimnet()
		c := benchDeploy(b, cfg.ID(fmt.Sprintf("c%d", i)), 5, 3, 2, net)
		client, err := NewClient(c, net.Client("w1"))
		if err != nil {
			b.Fatal(err)
		}
		for j := 1; j <= 3; j++ {
			if err := client.PutData(ctx, tag.Pair{Tag: tag.Tag{Z: int64(j), W: "w1"}, Value: make(types.Value, 64*1024)}); err != nil {
				b.Fatal(err)
			}
		}
		net.Quiesce()
		// Wipe one server.
		lost := c.Servers[2]
		src := cfg.NewResolver()
		src.Add(c)
		nd := node.New(lost)
		nd.InstallKeyed(ServiceName, NewService(lost, src, net.Client(lost)))
		net.Register(lost, nd)
		b.StartTimer()
		if _, err := Repair(ctx, net.Client("fixer"), c, lost); err != nil {
			b.Fatal(err)
		}
	}
}
