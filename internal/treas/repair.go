package treas

import (
	"context"
	"fmt"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/erasure"
	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// Repair reconstructs the coded elements a target server is missing — the
// paper's stated future work ("adding efficient repair"). A server that
// restarted empty (or a fresh replacement installed under the same identity)
// rejoins the configuration without a full reconfiguration:
//
//  1. read Lists from a ⌈(n+k)/2⌉ quorum of the configuration,
//  2. decode every tag with at least k surviving coded elements,
//  3. re-encode the target's element Φ_target(v) for each tag it lacks,
//  4. install the elements at the target.
//
// Repair is idempotent and safe to run concurrently with reads and writes:
// it only inserts (tag, element) pairs the protocol could have delivered,
// and the server's δ+1 garbage collection applies as usual.
//
// It returns the number of elements installed at the target.
func Repair(ctx context.Context, rpc transport.Client, c cfg.Configuration, target types.ProcessID) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, fmt.Errorf("treas: repair: %w", err)
	}
	if c.Algorithm != cfg.TREAS {
		return 0, fmt.Errorf("treas: repair applies to TREAS configurations, not %q", c.Algorithm)
	}
	targetIdx, ok := c.ServerIndex(target)
	if !ok {
		return 0, fmt.Errorf("treas: repair target %s is not a member of %s", target, c.ID)
	}
	code, err := erasure.New(c.N(), c.K)
	if err != nil {
		return 0, err
	}

	// 1a. Ask the target what it already holds (it must be reachable — a
	// crashed server cannot be repaired, only reconfigured away).
	targetList, err := transport.InvokeTyped[listResp](ctx, rpc, target,
		transport.Addr{Service: ServiceName, Key: c.Key, Config: string(c.ID), Type: msgQueryList}, struct{}{})
	if err != nil {
		return 0, fmt.Errorf("treas: repair target %s unreachable: %w", target, err)
	}
	targetHas := make(map[tag.Tag]bool, len(targetList.Entries))
	for _, e := range targetList.Entries {
		if e.HasElem {
			targetHas[e.Tag] = true
		}
	}

	// 1b. Collect lists from a quorum (the donors).
	q := c.Quorum()
	got, err := transport.Broadcast(ctx, rpc, c.Servers,
		transport.Phase[listResp]{Service: ServiceName, Key: c.Key, Config: string(c.ID), Type: msgQueryList, Body: struct{}{}},
		transport.AtLeast[listResp](q.Size()),
	)
	if err != nil {
		return 0, fmt.Errorf("treas: repair list collection on %s: %w", c.ID, err)
	}

	// Index donor elements per tag.
	type tagState struct {
		valueLen int
		elems    map[int][]byte
	}
	donors := make(map[tag.Tag]*tagState)
	for _, g := range got {
		if g.Value.Index == targetIdx {
			continue
		}
		for _, e := range g.Value.Entries {
			if !e.HasElem {
				continue
			}
			ts, ok := donors[e.Tag]
			if !ok {
				ts = &tagState{valueLen: e.ValueLen, elems: make(map[int][]byte)}
				donors[e.Tag] = ts
			}
			ts.elems[g.Value.Index] = e.Elem
		}
	}

	// 2–4. Decode, re-encode the target's shard, install.
	repaired := 0
	for t, ts := range donors {
		if targetHas[t] || len(ts.elems) < c.K {
			continue
		}
		value, err := code.Decode(ts.elems, ts.valueLen)
		if err != nil {
			return repaired, fmt.Errorf("treas: repair decode of tag %v: %w", t, err)
		}
		shards, err := code.Encode(value)
		if err != nil {
			return repaired, fmt.Errorf("treas: repair re-encode of tag %v: %w", t, err)
		}
		req := putDataReq{Tag: t, Elem: shards[targetIdx], ValueLen: ts.valueLen}
		if _, err := transport.InvokeTyped[struct{}](ctx, rpc, target,
			transport.Addr{Service: ServiceName, Key: c.Key, Config: string(c.ID), Type: msgPutData}, req); err != nil {
			return repaired, fmt.Errorf("treas: repair install of tag %v at %s: %w", t, target, err)
		}
		repaired++
	}
	return repaired, nil
}
