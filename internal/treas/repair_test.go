package treas

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/dap"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// wipeServer replaces a server's state with a fresh, empty service —
// modelling a server that lost its disk and rejoined under the same ID.
func wipeServer(t *testing.T, net *transport.Simnet, c cfg.Configuration, id types.ProcessID) *Service {
	t.Helper()
	src := cfg.NewResolver()
	src.Add(c)
	nd := node.New(id)
	svc := NewService(id, src, net.Client(id))
	nd.InstallKeyed(ServiceName, svc)
	net.Register(id, nd) // replaces the previous handler
	// Touch the object so the wiped server starts from the initial List
	// (t0 only), exactly as a disk-lost server rejoining would.
	if _, err := svc.state("", string(c.ID)); err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestRepairRestoresLostElements(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	c, _ := deploy(t, "c0", 5, 3, 3, net)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	w, err := NewClient(c, net.Client("w1"))
	if err != nil {
		t.Fatal(err)
	}
	values := map[tag.Tag]types.Value{}
	for i := 1; i <= 3; i++ {
		tg := tag.Tag{Z: int64(i), W: "w1"}
		v := make(types.Value, 4096)
		for j := range v {
			v[j] = byte(i*31 + j)
		}
		values[tg] = v
		if err := w.PutData(ctx, tag.Pair{Tag: tg, Value: v}); err != nil {
			t.Fatal(err)
		}
	}
	net.Quiesce()

	// Server s3 loses everything.
	lost := c.Servers[2]
	fresh := wipeServer(t, net, c, lost)
	if tags, _ := fresh.ListSize("", string(c.ID)); tags != 1 {
		t.Fatalf("wiped server holds %d tags, want 1 (t0)", tags)
	}

	repaired, err := Repair(ctx, net.Client("repairer"), c, lost)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 3 {
		t.Fatalf("repaired %d elements, want 3", repaired)
	}
	_, withElems := fresh.ListSize("", string(c.ID))
	if withElems != 4 { // t0 + 3 repaired (δ+1 = 4 bound)
		t.Fatalf("target holds %d elements after repair, want 4", withElems)
	}

	// The repaired server must serve decodable elements: crash two OTHER
	// servers so reads now depend on the repaired one ([5,3] quorum = 4).
	net.Crash(c.Servers[0])
	r, err := NewClient(c, net.Client("r1"))
	if err != nil {
		t.Fatal(err)
	}
	pair, err := r.GetData(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := values[tag.Tag{Z: 3, W: "w1"}]
	if !pair.Value.Equal(want) {
		t.Fatal("read through repaired server returned wrong value")
	}
}

func TestRepairIsIdempotent(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	c, _ := deploy(t, "c0", 5, 3, 2, net)
	ctx := context.Background()
	w, err := NewClient(c, net.Client("w1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.PutData(ctx, tag.Pair{Tag: tag.Tag{Z: 1, W: "w1"}, Value: types.Value("x")}); err != nil {
		t.Fatal(err)
	}
	net.Quiesce()

	// Repairing a healthy server installs nothing.
	repaired, err := Repair(ctx, net.Client("repairer"), c, c.Servers[1])
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 0 {
		t.Fatalf("repair of healthy server installed %d elements", repaired)
	}
}

func TestRepairValidatesInput(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	c, _ := deploy(t, "c0", 3, 2, 1, net)
	ctx := context.Background()
	if _, err := Repair(ctx, net.Client("x"), c, "not-a-member"); err == nil {
		t.Fatal("repair of non-member accepted")
	}
	abd := cfg.Configuration{ID: "a", Algorithm: cfg.ABD, Servers: []types.ProcessID{"s1"}}
	if _, err := Repair(ctx, net.Client("x"), abd, "s1"); err == nil {
		t.Fatal("repair of ABD configuration accepted")
	}
}

func TestRepairConcurrentWithWrites(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet(transport.WithDelayRange(0, time.Millisecond))
	c, _ := deploy(t, "c0", 5, 3, 6, net)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	w, err := NewClient(c, net.Client("w1"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := w.PutData(ctx, tag.Pair{Tag: tag.Tag{Z: int64(i), W: "w1"}, Value: make(types.Value, 2048)}); err != nil {
			t.Fatal(err)
		}
	}
	lost := c.Servers[4]
	wipeServer(t, net, c, lost)

	// Writes continue while the repair runs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 4; i <= 8; i++ {
			if err := w.PutData(ctx, tag.Pair{Tag: tag.Tag{Z: int64(i), W: "w1"}, Value: make(types.Value, 2048)}); err != nil {
				return
			}
		}
	}()
	if _, err := Repair(ctx, net.Client("repairer"), c, lost); err != nil {
		t.Fatal(err)
	}
	<-done
	net.Quiesce()

	// System-wide read still works and returns the freshest write.
	r, err := NewClient(c, net.Client("r1"))
	if err != nil {
		t.Fatal(err)
	}
	pair, err := dap.ReadA1(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Tag.Z < 3 {
		t.Fatalf("read tag %v after repair + writes", pair.Tag)
	}
}

func TestRepairWithDonorCrash(t *testing.T) {
	t.Parallel()
	// Repair works while one donor is down ([5,3] tolerates f=1).
	net := transport.NewSimnet()
	c, _ := deploy(t, "c0", 5, 3, 2, net)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	w, err := NewClient(c, net.Client("w1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.PutData(ctx, tag.Pair{Tag: tag.Tag{Z: 1, W: "w1"}, Value: make(types.Value, 1024)}); err != nil {
		t.Fatal(err)
	}
	net.Quiesce()
	lost := c.Servers[0]
	fresh := wipeServer(t, net, c, lost)
	net.Crash(c.Servers[1])

	repaired, err := Repair(ctx, net.Client("repairer"), c, lost)
	if err != nil {
		t.Fatal(err)
	}
	if repaired == 0 {
		t.Fatal("nothing repaired despite recoverable state")
	}
	if _, withElems := fresh.ListSize("", string(c.ID)); withElems < 2 {
		t.Fatalf("target has %d elements", withElems)
	}
}

func TestRepairLargeState(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	c, _ := deploy(t, "c0", 7, 5, 4, net)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	w, err := NewClient(c, net.Client("w1"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		v := make(types.Value, 64*1024+i)
		for j := range v {
			v[j] = byte(i + j*3)
		}
		if err := w.PutData(ctx, tag.Pair{Tag: tag.Tag{Z: int64(i), W: "w1"}, Value: v}); err != nil {
			t.Fatal(err)
		}
	}
	net.Quiesce()
	lost := c.Servers[3]
	wipeServer(t, net, c, lost)
	repaired, err := Repair(ctx, net.Client("repairer"), c, lost)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 5 {
		t.Fatalf("repaired %d, want 5 (δ+1 elements minus t0 overlap: all 5 writes held)", repaired)
	}
	// Full read validates the re-encoded shards integrate correctly.
	r, err := NewClient(c, net.Client(types.ProcessID(fmt.Sprintf("r-%d", 1))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dap.ReadA1(ctx, r); err != nil {
		t.Fatal(err)
	}
}
