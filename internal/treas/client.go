package treas

import (
	"context"
	"errors"
	"fmt"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/dap"
	"github.com/ares-storage/ares/internal/erasure"
	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// ErrNotDecodable reports a get-data whose maximum witnessed tag t*max is
// not yet decodable (t*max ≠ tdecmax in Alg. 2). The paper's read simply
// does not complete in this case; callers retry. Theorem 9 guarantees this
// cannot persist when concurrent writes stay within the δ bound and
// k > n/3.
var ErrNotDecodable = errors.New("treas: highest witnessed tag not yet decodable")

// Client implements dap.Client with the TREAS protocols of Alg. 2.
type Client struct {
	cfg  cfg.Configuration
	rpc  transport.Client
	code *erasure.Code
}

// NewClient builds the TREAS DAP client for configuration c.
func NewClient(c cfg.Configuration, rpc transport.Client) (*Client, error) {
	if c.Algorithm != cfg.TREAS {
		return nil, fmt.Errorf("treas: configuration %s uses algorithm %q", c.ID, c.Algorithm)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	code, err := erasure.New(c.N(), c.K)
	if err != nil {
		return nil, err
	}
	return &Client{cfg: c, rpc: rpc, code: code}, nil
}

// Factory adapts NewClient to the dap.Factory shape.
func Factory(c cfg.Configuration, rpc transport.Client) (dap.Client, error) {
	return NewClient(c, rpc)
}

var (
	_ dap.Client          = (*Client)(nil)
	_ dap.ConfirmedReader = (*Client)(nil)
)

// GetTag queries all servers for their highest tags and returns the maximum
// among ⌈(n+k)/2⌉ responses (Alg. 2 get-tag).
func (c *Client) GetTag(ctx context.Context) (tag.Tag, error) {
	q := c.cfg.Quorum()
	got, err := transport.Broadcast(ctx, c.rpc, c.cfg.Servers,
		transport.Phase[tagResp]{Service: ServiceName, Key: c.cfg.Key, Config: string(c.cfg.ID), Type: msgQueryTag, Body: struct{}{}},
		transport.AtLeast[tagResp](q.Size()),
	)
	if err != nil {
		return tag.Tag{}, fmt.Errorf("treas: get-tag on %s: %w", c.cfg.ID, err)
	}
	max := tag.Zero
	for _, g := range got {
		max = tag.Max(max, g.Value.Tag)
	}
	return max, nil
}

// GetData retrieves Lists from ⌈(n+k)/2⌉ servers and decodes the highest
// tag that (i) appears in at least k lists and (ii) has coded elements in at
// least k lists; both maxima must coincide (Alg. 2 get-data lines 11–17).
func (c *Client) GetData(ctx context.Context) (tag.Pair, error) {
	p, _, err := c.GetDataConfirmed(ctx)
	return p, err
}

// GetDataConfirmed implements dap.ConfirmedReader. The decoded tag is
// confirmed when every list in the gathered quorum carries its coded
// element: the coding parameters then always permit skipping the
// write-back, because with q = ⌈(n+k)/2⌉ any two quorums intersect in
// 2q − n ≥ k servers, so every later get-data quorum finds at least k
// elements of this tag (or of a larger one — element lists are
// tag-monotone) and can decode it.
func (c *Client) GetDataConfirmed(ctx context.Context) (tag.Pair, bool, error) {
	q := c.cfg.Quorum()
	got, err := transport.Broadcast(ctx, c.rpc, c.cfg.Servers,
		transport.Phase[listResp]{Service: ServiceName, Key: c.cfg.Key, Config: string(c.cfg.ID), Type: msgQueryList, Body: struct{}{}},
		transport.AtLeast[listResp](q.Size()),
	)
	if err != nil {
		return tag.Pair{}, false, fmt.Errorf("treas: get-data on %s: %w", c.cfg.ID, err)
	}

	// Count, per tag: in how many lists it appears, and in how many it
	// appears with a coded element. Collect elements by shard index.
	type tagInfo struct {
		seen     int
		withElem int
		valueLen int
		elems    map[int][]byte
	}
	info := make(map[tag.Tag]*tagInfo)
	for _, g := range got {
		for _, e := range g.Value.Entries {
			ti, ok := info[e.Tag]
			if !ok {
				ti = &tagInfo{elems: make(map[int][]byte)}
				info[e.Tag] = ti
			}
			ti.seen++
			if e.HasElem {
				ti.withElem++
				ti.valueLen = e.ValueLen
				ti.elems[g.Value.Index] = e.Elem
			}
		}
	}

	k := c.cfg.K
	tStarMax, tDecMax := tag.Tag{}, tag.Tag{}
	foundStar, foundDec := false, false
	for t, ti := range info {
		if ti.seen >= k && (!foundStar || tStarMax.Less(t)) {
			tStarMax, foundStar = t, true
		}
		if ti.withElem >= k && (!foundDec || tDecMax.Less(t)) {
			tDecMax, foundDec = t, true
		}
	}
	if !foundStar || !foundDec {
		// Concurrent writes beyond δ can garbage-collect every common
		// decodable tag out of this quorum's lists. The paper's read simply
		// does not complete yet — report the retryable condition.
		return tag.Pair{}, false, fmt.Errorf("%w: no tag decodable from %d lists on %s", ErrNotDecodable, k, c.cfg.ID)
	}
	if tStarMax != tDecMax {
		return tag.Pair{}, false, fmt.Errorf("%w: t*max=%v tdecmax=%v on %s", ErrNotDecodable, tStarMax, tDecMax, c.cfg.ID)
	}
	ti := info[tDecMax]
	value, err := c.code.Decode(ti.elems, ti.valueLen)
	if err != nil {
		return tag.Pair{}, false, fmt.Errorf("treas: get-data decode on %s: %w", c.cfg.ID, err)
	}
	return tag.Pair{Tag: tDecMax, Value: value}, ti.withElem >= q.Size(), nil
}

// PutData encodes the value and sends each server its coded element,
// completing on ⌈(n+k)/2⌉ acks (Alg. 2 put-data). The bodies are inherently
// per-destination (server i receives Φ_i(v)), so this is the one phase that
// pays one encode per server — via the Phase.BodyFor hook.
func (c *Client) PutData(ctx context.Context, p tag.Pair) error {
	shards, err := c.code.Encode(p.Value)
	if err != nil {
		return fmt.Errorf("treas: put-data encode on %s: %w", c.cfg.ID, err)
	}
	q := c.cfg.Quorum()
	_, err = transport.Broadcast(ctx, c.rpc, c.cfg.Servers,
		transport.Phase[struct{}]{
			Service: ServiceName, Key: c.cfg.Key, Config: string(c.cfg.ID), Type: msgPutData,
			BodyFor: func(dst types.ProcessID) (any, error) {
				idx, ok := c.cfg.ServerIndex(dst)
				if !ok {
					return nil, fmt.Errorf("treas: %s not in configuration", dst)
				}
				return putDataReq{Tag: p.Tag, Elem: shards[idx], ValueLen: len(p.Value)}, nil
			},
		},
		transport.AtLeast[struct{}](q.Size()),
	)
	if err != nil {
		return fmt.Errorf("treas: put-data on %s: %w", c.cfg.ID, err)
	}
	return nil
}
