// Package treas implements TREAS (§3), the paper's two-round erasure-coded
// algorithm for MWMR atomic storage, as a DAP implementation.
//
// Each server si keeps a List of (tag, coded-element) pairs, bounded so that
// only the δ+1 highest tags retain their coded elements; older tags keep a ⊥
// placeholder (Alg. 3). Clients operate against ⌈(n+k)/2⌉ threshold quorums:
// any two such quorums intersect in at least k servers, which makes a tag
// written to one quorum decodable by every later reader quorum (Lemma 5).
//
// The package also carries the server-side half of the §5 optimized state
// transfer (ARES-TREAS): handlers that forward coded elements directly from
// an old configuration's servers to a new configuration's servers, decoding
// and re-encoding across code parameters without routing values through the
// reconfiguration client. See xfer.go.
package treas

import (
	"fmt"
	"sort"
	"sync"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/erasure"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// ServiceName keys the TREAS store service on nodes and in request routing.
const ServiceName = "treas"

// Message types of the base protocol (Alg. 2/3).
const (
	msgQueryTag  = "query-tag"
	msgQueryList = "query-list"
	msgPutData   = "put-data"
)

// listEntry is one (tag, coded-element) pair in a server's List. A nil
// Elem with HasElem false is the paper's ⊥ placeholder left by garbage
// collection.
type listEntry struct {
	Tag      tag.Tag
	Elem     []byte
	HasElem  bool
	ValueLen int
}

// Wire bodies.
type (
	tagResp struct {
		Tag tag.Tag
	}
	listResp struct {
		// Index is the responding server's shard index within the
		// configuration, i.e. it stores Φ_Index(v).
		Index   int
		Entries []listEntry
	}
	putDataReq struct {
		Tag      tag.Tag
		Elem     []byte
		ValueLen int
	}
)

// Service is the per-configuration TREAS server state.
type Service struct {
	cfg   cfg.Configuration
	self  types.ProcessID
	index int // this server's shard index in cfg.Servers
	code  *erasure.Code
	rpc   transport.Client // used only by the §5 forwarding path; may be nil

	mu   sync.Mutex
	list map[tag.Tag]listEntry

	// §5 state: pending foreign coded elements keyed by tag, the set of
	// reconfigurers already served (Alg. 9's D and Recons variables), and
	// the forward requests already relayed (md-primitive dedup).
	pendingD  map[tag.Tag]*pendingDecode
	recons    map[types.ProcessID]bool
	forwarded map[string]bool
	sends     sync.WaitGroup
}

// pendingDecode accumulates coded elements of a foreign configuration until
// k of them allow decoding (Alg. 9).
type pendingDecode struct {
	srcK     int
	valueLen int
	elems    map[int][]byte
}

// NewService constructs the TREAS store for server self in configuration c.
// rpc is the server's own network endpoint, needed only for the §5
// server-to-server forwarding; pass nil when reconfiguration transfer is not
// exercised.
func NewService(c cfg.Configuration, self types.ProcessID, rpc transport.Client) (*Service, error) {
	if c.Algorithm != cfg.TREAS {
		return nil, fmt.Errorf("treas: configuration %s uses algorithm %q", c.ID, c.Algorithm)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	idx, ok := c.ServerIndex(self)
	if !ok {
		return nil, fmt.Errorf("treas: server %s is not a member of %s", self, c.ID)
	}
	code, err := erasure.New(c.N(), c.K)
	if err != nil {
		return nil, err
	}
	svc := &Service{
		cfg:      c,
		self:     self,
		index:    idx,
		code:     code,
		rpc:      rpc,
		list:     make(map[tag.Tag]listEntry),
		pendingD: make(map[tag.Tag]*pendingDecode),
		recons:   make(map[types.ProcessID]bool),
	}
	// List is initialized with (t0, Φi(v0)): the coded element of the empty
	// initial value, so reads before any write decode v0.
	shards, err := code.Encode(nil)
	if err != nil {
		return nil, err
	}
	svc.list[tag.Zero] = listEntry{Tag: tag.Zero, Elem: shards[idx], HasElem: true, ValueLen: 0}
	return svc, nil
}

var _ node.Service = (*Service)(nil)

// Handle implements node.Service.
func (s *Service) Handle(from types.ProcessID, msgType string, payload []byte) (any, error) {
	switch msgType {
	case msgQueryTag:
		return s.handleQueryTag()
	case msgQueryList:
		return s.handleQueryList()
	case msgPutData:
		return s.handlePutData(payload)
	case msgReqForward:
		return s.handleReqForward(payload)
	case msgFwdElem:
		return s.handleFwdElem(payload)
	case msgHasTag:
		return s.handleHasTag(payload)
	default:
		return nil, fmt.Errorf("treas: unknown message type %q", msgType)
	}
}

// handleQueryTag returns the maximum tag in the List (Alg. 3 QUERY-TAG).
func (s *Service) handleQueryTag() (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := tag.Zero
	for t := range s.list {
		max = tag.Max(max, t)
	}
	return tagResp{Tag: max}, nil
}

// handleQueryList returns the whole List (Alg. 3 QUERY-LIST).
func (s *Service) handleQueryList() (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := make([]listEntry, 0, len(s.list))
	for _, e := range s.list {
		entries = append(entries, e)
	}
	// Deterministic order for reproducible wire traffic and tests.
	sort.Slice(entries, func(i, j int) bool { return entries[i].Tag.Less(entries[j].Tag) })
	return listResp{Index: s.index, Entries: entries}, nil
}

// handlePutData inserts the pair and garbage-collects old coded elements
// (Alg. 3 PUT-DATA).
func (s *Service) handlePutData(payload []byte) (any, error) {
	var req putDataReq
	if err := transport.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(req.Tag, req.Elem, req.ValueLen)
	return nil, nil // ACK
}

// insertLocked adds (t, elem) to the List and enforces the δ+1 bound:
// coded elements of all but the δ+1 highest tags are replaced by ⊥, while
// the tags themselves are retained (Alg. 3 lines 12–15). Callers hold s.mu.
func (s *Service) insertLocked(t tag.Tag, elem []byte, valueLen int) {
	if existing, ok := s.list[t]; ok && existing.HasElem {
		return // already stored with its element; inserts are idempotent
	}
	s.list[t] = listEntry{Tag: t, Elem: elem, HasElem: true, ValueLen: valueLen}
	s.gcLocked()
}

// gcLocked trims coded elements beyond the δ+1 highest tags.
func (s *Service) gcLocked() {
	withElem := make([]tag.Tag, 0, len(s.list))
	for t, e := range s.list {
		if e.HasElem {
			withElem = append(withElem, t)
		}
	}
	keep := s.cfg.Delta + 1
	if len(withElem) <= keep {
		return
	}
	// Sort descending; null out elements past the δ+1 highest.
	sort.Slice(withElem, func(i, j int) bool { return withElem[j].Less(withElem[i]) })
	for _, t := range withElem[keep:] {
		e := s.list[t]
		e.Elem = nil
		e.HasElem = false
		s.list[t] = e
	}
}

// StorageBytes reports the coded-element bytes at rest — the storage-cost
// metric of Theorem 3(i): at most (δ+1)·(value size)/k per server.
func (s *Service) StorageBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, e := range s.list {
		total += len(e.Elem)
	}
	return total
}

// ListSize returns how many tags the List holds and how many retain coded
// elements (for tests asserting the GC bound).
func (s *Service) ListSize() (tags, withElems int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.list {
		tags++
		if e.HasElem {
			withElems++
		}
	}
	return tags, withElems
}

// MaxTag returns the largest tag in the List (for tests).
func (s *Service) MaxTag() tag.Tag {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := tag.Zero
	for t := range s.list {
		max = tag.Max(max, t)
	}
	return max
}
