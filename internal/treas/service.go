// Package treas implements TREAS (§3), the paper's two-round erasure-coded
// algorithm for MWMR atomic storage, as a DAP implementation.
//
// Each server si keeps, per object, a List of (tag, coded-element) pairs,
// bounded so that only the δ+1 highest tags retain their coded elements;
// older tags keep a ⊥ placeholder (Alg. 3). Clients operate against
// ⌈(n+k)/2⌉ threshold quorums: any two such quorums intersect in at least k
// servers, which makes a tag written to one quorum decodable by every later
// reader quorum (Lemma 5).
//
// A node hosts a single Service for the whole keyspace: each (key, config)
// object is one lazily-created entry in a striped-lock map, materialized by
// the first message that names the pair (no per-key installation). Erasure
// codecs and the coded elements of the empty initial value are shared across
// all objects with the same [n, k] parameters, so first touch costs a map
// entry, not a matrix inversion.
//
// The package also carries the server-side half of the §5 optimized state
// transfer (ARES-TREAS): handlers that forward coded elements directly from
// an old configuration's servers to a new configuration's servers, decoding
// and re-encoding across code parameters without routing values through the
// reconfiguration client. See xfer.go.
package treas

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/erasure"
	"github.com/ares-storage/ares/internal/keystate"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// ServiceName keys the TREAS store service on nodes and in request routing.
const ServiceName = "treas"

// Message types of the base protocol (Alg. 2/3).
const (
	msgQueryTag  = "query-tag"
	msgQueryList = "query-list"
	msgPutData   = "put-data"
)

// listEntry is one (tag, coded-element) pair in a server's List. A nil
// Elem with HasElem false is the paper's ⊥ placeholder left by garbage
// collection.
type listEntry struct {
	Tag      tag.Tag
	Elem     []byte
	HasElem  bool
	ValueLen int
}

// Wire bodies.
type (
	tagResp struct {
		Tag tag.Tag
	}
	listResp struct {
		// Index is the responding server's shard index within the
		// configuration, i.e. it stores Φ_Index(v).
		Index   int
		Entries []listEntry
	}
	putDataReq struct {
		Tag      tag.Tag
		Elem     []byte
		ValueLen int
	}
)

// objState is the per-(key, config) TREAS server state: the configuration it
// was resolved against, this server's shard index in it, and the List.
type objState struct {
	cfg   cfg.Configuration
	index int // this server's shard index in cfg.Servers
	code  *erasure.Code

	mu   sync.Mutex
	list map[tag.Tag]listEntry

	// §5 state: pending foreign coded elements keyed by tag, the set of
	// reconfigurers already served (Alg. 9's D and Recons variables), and
	// the forward requests already relayed (md-primitive dedup).
	pendingD  map[tag.Tag]*pendingDecode
	recons    map[types.ProcessID]bool
	forwarded map[string]bool
}

// pendingDecode accumulates coded elements of a foreign configuration until
// k of them allow decoding (Alg. 9).
type pendingDecode struct {
	srcK     int
	valueLen int
	elems    map[int][]byte
}

// codeParams identify one [n, k] erasure code.
type codeParams struct{ n, k int }

// sharedCode couples a codec with the coded elements of the empty initial
// value — both immutable and shared by every object using the same
// parameters.
type sharedCode struct {
	code       *erasure.Code
	zeroShards [][]byte
}

// Service hosts every TREAS object of one node. rpc is the server's own
// network endpoint, needed only for the §5 server-to-server forwarding; it
// may be nil when reconfiguration transfer is not exercised.
type Service struct {
	self   types.ProcessID
	cfgs   cfg.Source
	rpc    transport.Client
	states *keystate.Map[*objState]

	codeMu sync.Mutex
	codes  map[codeParams]*sharedCode

	sends sync.WaitGroup

	// journal, when attached, write-ahead-logs put-data and fwd-elem before
	// they apply (see durable.go); nil for in-memory operation.
	journal atomic.Pointer[keystate.Journal]
}

// NewService returns the node-wide TREAS store for server self. cfgs
// resolves the configurations messages address; state for unresolvable or
// non-member configurations is never created.
func NewService(self types.ProcessID, cfgs cfg.Source, rpc transport.Client) *Service {
	return &Service{
		self:   self,
		cfgs:   cfgs,
		rpc:    rpc,
		states: keystate.New[*objState](keystate.DefaultShards),
		codes:  make(map[codeParams]*sharedCode),
	}
}

var _ node.KeyedService = (*Service)(nil)

// codeFor returns the shared codec (and initial-value shards) for [n, k],
// building it once per parameter pair.
func (s *Service) codeFor(n, k int) (*sharedCode, error) {
	s.codeMu.Lock()
	defer s.codeMu.Unlock()
	if sc, ok := s.codes[codeParams{n, k}]; ok {
		return sc, nil
	}
	code, err := erasure.New(n, k)
	if err != nil {
		return nil, err
	}
	// List is initialized with (t0, Φi(v0)): the coded elements of the empty
	// initial value, so reads before any write decode v0.
	shards, err := code.Encode(nil)
	if err != nil {
		return nil, err
	}
	sc := &sharedCode{code: code, zeroShards: shards}
	s.codes[codeParams{n, k}] = sc
	return sc, nil
}

// state returns (creating on first touch) the object state for
// (key, configID).
func (s *Service) state(key, configID string) (*objState, error) {
	return keystate.Materialize(s.states, s.cfgs, ServiceName, s.self, key, configID,
		func(c cfg.Configuration) (*objState, error) {
			if c.Algorithm != cfg.TREAS {
				return nil, fmt.Errorf("treas: configuration %s uses algorithm %q", c.ID, c.Algorithm)
			}
			idx, ok := c.ServerIndex(s.self)
			if !ok {
				return nil, fmt.Errorf("treas: server %s is not a member of %s", s.self, c.ID)
			}
			sc, err := s.codeFor(c.N(), c.K)
			if err != nil {
				return nil, err
			}
			st := &objState{
				cfg:       c,
				index:     idx,
				code:      sc.code,
				list:      make(map[tag.Tag]listEntry),
				pendingD:  make(map[tag.Tag]*pendingDecode),
				recons:    make(map[types.ProcessID]bool),
				forwarded: make(map[string]bool),
			}
			st.list[tag.Zero] = listEntry{Tag: tag.Zero, Elem: sc.zeroShards[idx], HasElem: true, ValueLen: 0}
			return st, nil
		})
}

// HandleKeyed implements node.KeyedService.
func (s *Service) HandleKeyed(_ types.ProcessID, key, configID, msgType string, payload []byte) (any, error) {
	st, err := s.state(key, configID)
	if err != nil {
		return nil, err
	}
	switch msgType {
	case msgQueryTag:
		return st.handleQueryTag()
	case msgQueryList:
		return st.handleQueryList()
	case msgPutData:
		release, err := s.journalOp(key, configID, opPutData, payload)
		if err != nil {
			return nil, err
		}
		defer release()
		return st.handlePutData(payload)
	case msgReqForward:
		return s.handleReqForward(st, payload)
	case msgFwdElem:
		release, err := s.journalOp(key, configID, opFwdElem, payload)
		if err != nil {
			return nil, err
		}
		defer release()
		return st.handleFwdElem(payload)
	case msgHasTag:
		return st.handleHasTag(payload)
	default:
		return nil, fmt.Errorf("treas: unknown message type %q", msgType)
	}
}

// handleQueryTag returns the maximum tag in the List (Alg. 3 QUERY-TAG).
func (st *objState) handleQueryTag() (any, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	max := tag.Zero
	for t := range st.list {
		max = tag.Max(max, t)
	}
	return tagResp{Tag: max}, nil
}

// handleQueryList returns the whole List (Alg. 3 QUERY-LIST).
func (st *objState) handleQueryList() (any, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	entries := make([]listEntry, 0, len(st.list))
	for _, e := range st.list {
		entries = append(entries, e)
	}
	// Deterministic order for reproducible wire traffic and tests.
	sort.Slice(entries, func(i, j int) bool { return entries[i].Tag.Less(entries[j].Tag) })
	return listResp{Index: st.index, Entries: entries}, nil
}

// handlePutData inserts the pair and garbage-collects old coded elements
// (Alg. 3 PUT-DATA).
func (st *objState) handlePutData(payload []byte) (any, error) {
	var req putDataReq
	if err := transport.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.insertLocked(req.Tag, req.Elem, req.ValueLen)
	return nil, nil // ACK
}

// insertLocked adds (t, elem) to the List and enforces the δ+1 bound:
// coded elements of all but the δ+1 highest tags are replaced by ⊥, while
// the tags themselves are retained (Alg. 3 lines 12–15). Callers hold st.mu.
func (st *objState) insertLocked(t tag.Tag, elem []byte, valueLen int) {
	if existing, ok := st.list[t]; ok && existing.HasElem {
		return // already stored with its element; inserts are idempotent
	}
	st.list[t] = listEntry{Tag: t, Elem: elem, HasElem: true, ValueLen: valueLen}
	st.gcLocked()
}

// gcLocked trims coded elements beyond the δ+1 highest tags.
func (st *objState) gcLocked() {
	withElem := make([]tag.Tag, 0, len(st.list))
	for t, e := range st.list {
		if e.HasElem {
			withElem = append(withElem, t)
		}
	}
	keep := st.cfg.Delta + 1
	if len(withElem) <= keep {
		return
	}
	// Sort descending; null out elements past the δ+1 highest.
	sort.Slice(withElem, func(i, j int) bool { return withElem[j].Less(withElem[i]) })
	for _, t := range withElem[keep:] {
		e := st.list[t]
		e.Elem = nil
		e.HasElem = false
		st.list[t] = e
	}
}

// StorageBytes reports the coded-element bytes at rest across every object —
// the storage-cost metric of Theorem 3(i): at most (δ+1)·(value size)/k per
// object per server.
func (s *Service) StorageBytes() int {
	total := 0
	s.states.Range(func(_ keystate.Ref, st *objState) bool {
		st.mu.Lock()
		for _, e := range st.list {
			total += len(e.Elem)
		}
		st.mu.Unlock()
		return true
	})
	return total
}

// States reports how many (key, config) objects have been materialized (for
// tests asserting lazy creation and O(1)-in-keys service hosting).
func (s *Service) States() int { return s.states.Len() }

// RetireConfig drops the object state for (key, configID) — List, pending
// decodes, forward dedup — reporting whether state existed. The lifecycle GC
// calls it once the configuration's finalized successor proves it quiescent.
func (s *Service) RetireConfig(key, configID string) bool {
	return s.states.Delete(keystate.Ref{Key: key, Config: configID})
}

// ListSize returns how many tags one object's List holds and how many retain
// coded elements (for tests asserting the GC bound). Missing objects report
// zeros.
func (s *Service) ListSize(key, configID string) (tags, withElems int) {
	st, ok := s.states.Get(keystate.Ref{Key: key, Config: configID})
	if !ok {
		return 0, 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, e := range st.list {
		tags++
		if e.HasElem {
			withElems++
		}
	}
	return tags, withElems
}

// MaxTag returns the largest tag in one object's List (for tests).
func (s *Service) MaxTag(key, configID string) tag.Tag {
	st, ok := s.states.Get(keystate.Ref{Key: key, Config: configID})
	if !ok {
		return tag.Zero
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	max := tag.Zero
	for t := range st.list {
		max = tag.Max(max, t)
	}
	return max
}
