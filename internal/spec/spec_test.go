package spec

import (
	"strings"
	"testing"

	"github.com/ares-storage/ares/internal/cfg"
)

func TestParseTreas(t *testing.T) {
	t.Parallel()
	c, err := Parse("id=c0;alg=treas;servers=s1,s2,s3,s4,s5;k=3;delta=4")
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != "c0" || c.Algorithm != cfg.TREAS || len(c.Servers) != 5 || c.K != 3 || c.Delta != 4 {
		t.Fatalf("parsed %+v", c)
	}
}

func TestParseABD(t *testing.T) {
	t.Parallel()
	c, err := Parse("id=c1;alg=abd;servers=a1,a2,a3")
	if err != nil {
		t.Fatal(err)
	}
	if c.Algorithm != cfg.ABD || len(c.Servers) != 3 {
		t.Fatalf("parsed %+v", c)
	}
}

func TestParseLDR(t *testing.T) {
	t.Parallel()
	c, err := Parse("id=c2;alg=ldr;servers=r1,r2,r3;dirs=d1,d2,d3;f=1")
	if err != nil {
		t.Fatal(err)
	}
	if c.Algorithm != cfg.LDR || len(c.Directories) != 3 || c.FReplicas != 1 {
		t.Fatalf("parsed %+v", c)
	}
}

func TestParseWhitespaceTolerant(t *testing.T) {
	t.Parallel()
	c, err := Parse(" id = c0 ; alg = abd ; servers = s1 , s2 , s3 ")
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != "c0" || len(c.Servers) != 3 || c.Servers[1] != "s2" {
		t.Fatalf("parsed %+v", c)
	}
}

func TestParseErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name, in, wantErr string
	}{
		{"not key=value", "id=c0;bogus", "not key=value"},
		{"unknown field", "id=c0;alg=abd;servers=s1;color=red", "unknown field"},
		{"bad k", "id=c0;alg=treas;servers=s1;k=three", "k:"},
		{"bad delta", "id=c0;alg=treas;servers=s1;k=1;delta=x", "delta:"},
		{"bad f", "id=c0;alg=ldr;servers=s1;dirs=d1;f=x", "f:"},
		{"invalid config", "id=c0;alg=treas;servers=s1;k=5", "out of range"},
		{"missing id", "alg=abd;servers=s1", "empty ID"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, err := Parse(tc.in)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Parse(%q) err = %v, want containing %q", tc.in, err, tc.wantErr)
			}
		})
	}
}

func TestFormatRoundTrip(t *testing.T) {
	t.Parallel()
	inputs := []string{
		"id=c0;alg=treas;servers=s1,s2,s3,s4,s5;k=3;delta=4",
		"id=c1;alg=abd;servers=a1,a2,a3",
		"id=c2;alg=ldr;servers=r1,r2,r3;dirs=d1,d2,d3;f=1",
	}
	for _, in := range inputs {
		c1, err := Parse(in)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := Parse(Format(c1))
		if err != nil {
			t.Fatalf("re-parsing %q: %v", Format(c1), err)
		}
		if c1.ID != c2.ID || c1.Algorithm != c2.Algorithm || len(c1.Servers) != len(c2.Servers) ||
			c1.K != c2.K || c1.Delta != c2.Delta || c1.FReplicas != c2.FReplicas {
			t.Fatalf("round trip changed config: %+v vs %+v", c1, c2)
		}
	}
}

func TestParseBook(t *testing.T) {
	t.Parallel()
	book, err := ParseBook("s1=127.0.0.1:7001, s2=127.0.0.1:7002")
	if err != nil {
		t.Fatal(err)
	}
	if book["s1"] != "127.0.0.1:7001" || book["s2"] != "127.0.0.1:7002" {
		t.Fatalf("book = %v", book)
	}
	if _, err := ParseBook(""); err == nil {
		t.Fatal("empty book accepted")
	}
	if _, err := ParseBook("s1:no-equals"); err == nil {
		t.Fatal("malformed peer accepted")
	}
}
