// Package spec parses the compact textual configuration descriptions used
// by the command-line tools, so a configuration can be passed as a single
// flag value:
//
//	id=c0;alg=treas;servers=s1,s2,s3,s4,s5;k=3;delta=4
//	id=c1;alg=abd;servers=a1,a2,a3
//	id=c2;alg=ldr;servers=r1,r2,r3;dirs=d1,d2,d3;f=1
package spec

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/types"
)

// Parse converts a configuration spec string into a Configuration and
// validates it.
func Parse(s string) (cfg.Configuration, error) {
	var c cfg.Configuration
	for _, field := range strings.Split(s, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, value, found := strings.Cut(field, "=")
		if !found {
			return cfg.Configuration{}, fmt.Errorf("spec: field %q is not key=value", field)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		switch key {
		case "id":
			c.ID = cfg.ID(value)
		case "alg", "algorithm":
			c.Algorithm = cfg.Algorithm(value)
		case "servers":
			c.Servers = parseIDs(value)
		case "dirs", "directories":
			c.Directories = parseIDs(value)
		case "k":
			k, err := strconv.Atoi(value)
			if err != nil {
				return cfg.Configuration{}, fmt.Errorf("spec: k: %w", err)
			}
			c.K = k
		case "delta":
			d, err := strconv.Atoi(value)
			if err != nil {
				return cfg.Configuration{}, fmt.Errorf("spec: delta: %w", err)
			}
			c.Delta = d
		case "f":
			f, err := strconv.Atoi(value)
			if err != nil {
				return cfg.Configuration{}, fmt.Errorf("spec: f: %w", err)
			}
			c.FReplicas = f
		default:
			return cfg.Configuration{}, fmt.Errorf("spec: unknown field %q", key)
		}
	}
	if err := c.Validate(); err != nil {
		return cfg.Configuration{}, fmt.Errorf("spec: %w", err)
	}
	return c, nil
}

// Format renders a Configuration back into its spec string (Parse∘Format is
// the identity on the fields Parse reads).
func Format(c cfg.Configuration) string {
	parts := []string{
		"id=" + string(c.ID),
		"alg=" + string(c.Algorithm),
		"servers=" + joinIDs(c.Servers),
	}
	if len(c.Directories) > 0 {
		parts = append(parts, "dirs="+joinIDs(c.Directories))
	}
	switch c.Algorithm {
	case cfg.TREAS:
		parts = append(parts, fmt.Sprintf("k=%d", c.K), fmt.Sprintf("delta=%d", c.Delta))
	case cfg.LDR:
		parts = append(parts, fmt.Sprintf("f=%d", c.FReplicas))
	}
	return strings.Join(parts, ";")
}

// ParseBook parses an address book of the form "s1=host:port,s2=host:port".
func ParseBook(s string) (map[types.ProcessID]string, error) {
	book := make(map[types.ProcessID]string)
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		id, addr, found := strings.Cut(field, "=")
		if !found {
			return nil, fmt.Errorf("spec: peer %q is not id=addr", field)
		}
		book[types.ProcessID(strings.TrimSpace(id))] = strings.TrimSpace(addr)
	}
	if len(book) == 0 {
		return nil, fmt.Errorf("spec: empty address book")
	}
	return book, nil
}

func parseIDs(s string) []types.ProcessID {
	var out []types.ProcessID
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, types.ProcessID(part))
		}
	}
	return out
}

func joinIDs(ids []types.ProcessID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, ",")
}
