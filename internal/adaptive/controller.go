package adaptive

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Class is the controller's verdict on how a key should be configured. The
// caller maps classes to concrete configurations (e.g. ClassSmallHot → ABD
// n=3, ClassLargeCold → a wide TREAS [n, k], ClassFaulty → maximum
// redundancy); the controller only decides which class a key is in.
type Class uint8

const (
	// ClassDefault is every key's starting class — whatever configuration
	// the deployment template chose.
	ClassDefault Class = iota
	// ClassSmallHot marks small objects under heavy traffic: latency is all
	// quorum round-trips, so full replication over few replicas (ABD n=3)
	// wins.
	ClassSmallHot
	// ClassLargeCold marks large objects: bandwidth dominates, so a wide
	// erasure code (TREAS [n, k], each replica storing ~size/k) wins.
	ClassLargeCold
	// ClassFaulty marks keys whose operations are fighting faults (retries,
	// errors): more redundancy buys availability until the spike clears.
	ClassFaulty
)

// String names the class for logs and JSON verdicts.
func (c Class) String() string {
	switch c {
	case ClassDefault:
		return "default"
	case ClassSmallHot:
		return "small-hot"
	case ClassLargeCold:
		return "large-cold"
	case ClassFaulty:
		return "faulty"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Policy holds the controller's thresholds and damping. The zero value is
// usable: every field falls back to the documented default.
type Policy struct {
	// SmallObjectBytes: average value size ≤ this reads as "small"
	// (default 1 KiB).
	SmallObjectBytes int64
	// LargeObjectBytes: average value size ≥ this reads as "large"
	// (default 8 KiB).
	LargeObjectBytes int64
	// HotOps: a key with at least this many operations per window is "hot"
	// (default 16).
	HotOps int64
	// FaultRatio: (retries+failures)/attempts at or above this reads as a
	// fault spike (default 0.2).
	FaultRatio float64
	// ConfirmWindows is the hysteresis depth: a key must classify into the
	// same new class for this many consecutive non-idle windows before the
	// controller moves it (default 2). A stable workload therefore causes at
	// most one move per key, ever; a borderline workload that alternates
	// classes window to window never moves at all.
	ConfirmWindows int
	// Cooldown is the minimum time between two moves of the same key
	// (default 2s) — the per-key damper that keeps controller churn inside
	// the reconfiguration-GC envelope.
	Cooldown time.Duration
	// MaxMovesPerTick budgets reconfigurations per tick (default 4), so a
	// mass workload shift rolls through the keyspace at a bounded rate
	// instead of reconfiguring every key at once.
	MaxMovesPerTick int
	// IdleEvictWindows: a key observed idle for this many consecutive
	// windows has its controller state and sampler counters dropped
	// (default 16; the store's client-cache TTL machinery handles the
	// client side).
	IdleEvictWindows int
	// P99Degraded, when positive, adds tail latency to the fault signal: a
	// key whose windowed p99 reaches this threshold (with at least
	// MinP99Samples operations backing the estimate) classifies as faulty
	// even when its retry/failure ratio is clean — a degraded replica
	// often shows up as tail latency long before it shows up as errors.
	// Zero disables the signal (the default; it is opt-in per deployment).
	P99Degraded time.Duration
	// MinP99Samples is the minimum window operation count before the
	// P99Degraded signal fires (default 20): a bucketed p99 over a handful
	// of samples is one straggler, not a tail.
	MinP99Samples int64
}

// withDefaults fills unset fields.
func (p Policy) withDefaults() Policy {
	if p.SmallObjectBytes <= 0 {
		p.SmallObjectBytes = 1024
	}
	if p.LargeObjectBytes <= 0 {
		p.LargeObjectBytes = 8192
	}
	if p.HotOps <= 0 {
		p.HotOps = 16
	}
	if p.FaultRatio <= 0 {
		p.FaultRatio = 0.2
	}
	if p.ConfirmWindows <= 0 {
		p.ConfirmWindows = 2
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 2 * time.Second
	}
	if p.MaxMovesPerTick <= 0 {
		p.MaxMovesPerTick = 4
	}
	if p.IdleEvictWindows <= 0 {
		p.IdleEvictWindows = 16
	}
	if p.MinP99Samples <= 0 {
		p.MinP99Samples = 20
	}
	return p
}

// classify maps one window of telemetry to a class. With no strong signal the
// key keeps its current class — moving costs a reconfiguration, staying is
// free, so the burden of proof is on change.
func (p Policy) classify(st KeyStats, current Class) Class {
	if st.Ops() == 0 && st.Failures == 0 {
		return current
	}
	if st.FaultRatio() >= p.FaultRatio {
		return ClassFaulty
	}
	if p.P99Degraded > 0 && st.Ops() >= p.MinP99Samples && st.P99() >= p.P99Degraded {
		return ClassFaulty
	}
	avg := st.AvgBytes()
	switch {
	case avg >= p.LargeObjectBytes:
		return ClassLargeCold
	case avg <= p.SmallObjectBytes && st.Ops() >= p.HotOps:
		return ClassSmallHot
	}
	if current == ClassFaulty {
		// The spike cleared and the traffic carries no size/heat signal:
		// step back to the default rather than pinning extra redundancy
		// forever.
		return ClassDefault
	}
	return current
}

// Move records one applied (or attempted) reconfiguration decision.
type Move struct {
	Key      string
	From, To Class
	// Stats is the telemetry window that confirmed the move.
	Stats KeyStats
	// Err is the apply hook's failure, if any; failed moves stay in the
	// candidate state and are retried on a later tick.
	Err error `json:"Err,omitempty"`
}

// TickReport summarizes one controller tick for logs, benches, and verdicts.
type TickReport struct {
	// Keys is how many keys had traffic this window.
	Keys int
	// Moves lists the reconfigurations applied (or attempted) this tick.
	Moves []Move
	// Deferred counts keys whose confirmed move was pushed to a later tick
	// by the MaxMovesPerTick budget or the per-key cooldown.
	Deferred int
	// Evicted counts idle keys whose tracking state was dropped.
	Evicted int
}

// keyTrack is the controller's per-key hysteresis state.
type keyTrack struct {
	current   Class
	candidate Class
	streak    int
	lastMove  time.Time
	idle      int
}

// Controller periodically drains a Sampler, classifies every active key, and
// — after hysteresis, cooldown, and budget damping — calls the apply hook to
// reconfigure keys whose class changed. It is the paper's "boutique
// per-object configuration" claim made self-driving: measurement → decision
// → reconfiguration, safe to run continuously because the damping keeps
// churn inside the lifecycle-GC envelope.
type Controller struct {
	sampler *Sampler
	policy  Policy
	apply   func(ctx context.Context, key string, class Class) error
	logf    func(format string, args ...any)
	now     func() time.Time

	tickMu sync.Mutex // serializes Tick: at most one decision round in flight

	mu    sync.Mutex
	state map[string]*keyTrack
	moves int64

	startOnce sync.Once
	stopOnce  sync.Once
	stopped   chan struct{}
	done      chan struct{}
}

// ControllerOption customizes a Controller.
type ControllerOption func(*Controller)

// WithLogf routes controller decisions to a logger (default: silent).
func WithLogf(logf func(format string, args ...any)) ControllerOption {
	return func(c *Controller) {
		if logf != nil {
			c.logf = logf
		}
	}
}

// withNow injects a clock (tests).
func withNow(now func() time.Time) ControllerOption {
	return func(c *Controller) { c.now = now }
}

// NewController builds a controller over sampler. apply is called once per
// confirmed class change — typically a closure over ObjectStore.ReconfigureKey
// or a cached Reconfigurer — and must be safe for sequential calls from the
// controller's tick goroutine.
func NewController(sampler *Sampler, policy Policy, apply func(ctx context.Context, key string, class Class) error, opts ...ControllerOption) *Controller {
	c := &Controller{
		sampler: sampler,
		policy:  policy.withDefaults(),
		apply:   apply,
		logf:    func(string, ...any) {},
		now:     time.Now,
		state:   make(map[string]*keyTrack),
		stopped: make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Policy returns the controller's effective (default-filled) policy.
func (c *Controller) Policy() Policy { return c.policy }

// Class reports the controller's current class for key.
func (c *Controller) Class(key string) Class {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.state[key]; ok {
		return t.current
	}
	return ClassDefault
}

// Moves reports how many reconfigurations the controller has applied
// successfully since construction.
func (c *Controller) Moves() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.moves
}

// Tick runs one decision round: drain the sampler, classify, damp, apply.
// It is what Start calls on its cadence; tests and benches may call it
// directly for deterministic control.
func (c *Controller) Tick(ctx context.Context) TickReport {
	c.tickMu.Lock()
	defer c.tickMu.Unlock()

	window := c.sampler.Drain()
	now := c.now()
	rep := TickReport{Keys: len(window)}

	type pendingMove struct {
		key   string
		track *keyTrack
		move  Move
	}
	var pending []pendingMove

	c.mu.Lock()
	// Deterministic key order so budget deferral is stable under test seeds.
	keys := make([]string, 0, len(window))
	for key := range window {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		st := window[key]
		t, ok := c.state[key]
		if !ok {
			t = &keyTrack{current: ClassDefault, candidate: ClassDefault}
			c.state[key] = t
		}
		t.idle = 0
		want := c.policy.classify(st, t.current)
		if want == t.current {
			t.candidate = t.current
			t.streak = 0
			continue
		}
		if want != t.candidate {
			t.candidate = want
			t.streak = 1
		} else {
			t.streak++
		}
		if t.streak < c.policy.ConfirmWindows {
			continue
		}
		if !t.lastMove.IsZero() && now.Sub(t.lastMove) < c.policy.Cooldown {
			rep.Deferred++
			continue
		}
		if len(pending) >= c.policy.MaxMovesPerTick {
			rep.Deferred++
			continue
		}
		pending = append(pending, pendingMove{key: key, track: t, move: Move{Key: key, From: t.current, To: want, Stats: st}})
	}
	// Idle bookkeeping: keys tracked but silent this window.
	for key, t := range c.state {
		if _, active := window[key]; active {
			continue
		}
		t.idle++
		if t.idle >= c.policy.IdleEvictWindows {
			delete(c.state, key)
			c.sampler.Forget(key)
			rep.Evicted++
		}
	}
	c.mu.Unlock()

	// Apply outside the state lock: a reconfiguration is quorum rounds of
	// real work, and recorders must not stall behind it.
	for _, p := range pending {
		err := c.apply(ctx, p.key, p.move.To)
		p.move.Err = err
		rep.Moves = append(rep.Moves, p.move)
		c.mu.Lock()
		if err == nil {
			p.track.current = p.move.To
			p.track.candidate = p.move.To
			p.track.streak = 0
			p.track.lastMove = now
			c.moves++
		}
		c.mu.Unlock()
		if err != nil {
			c.logf("adaptive: move %q %s→%s failed: %v", p.key, p.move.From, p.move.To, err)
		} else {
			c.logf("adaptive: moved %q %s→%s (ops=%d avg=%dB fault=%.2f)",
				p.key, p.move.From, p.move.To, p.move.Stats.Ops(), p.move.Stats.AvgBytes(), p.move.Stats.FaultRatio())
		}
	}

	controllerDeferred.Add(int64(rep.Deferred))
	controllerEvicted.Add(int64(rep.Evicted))
	counts := make(map[Class]int64, len(classKeys))
	c.mu.Lock()
	for _, t := range c.state {
		counts[t.current]++
	}
	c.mu.Unlock()
	for cls, g := range classKeys {
		g.Set(counts[cls])
	}
	for _, m := range rep.Moves {
		if m.Err == nil {
			controllerMoves.Inc()
		} else {
			controllerMoveFailures.Inc()
		}
	}
	return rep
}

// Start launches the controller's tick loop on the given cadence. Stop (or
// ctx cancellation) ends it; Start is idempotent.
func (c *Controller) Start(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	c.startOnce.Do(func() {
		go func() {
			defer close(c.done)
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-c.stopped:
					return
				case <-ctx.Done():
					return
				case <-ticker.C:
					c.Tick(ctx)
				}
			}
		}()
	})
}

// Stop ends the tick loop and waits for any in-flight tick to finish. Safe
// to call multiple times, and safe without a prior Start.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stopped) })
	c.startOnce.Do(func() { close(c.done) }) // never started: nothing to wait for
	<-c.done
}
