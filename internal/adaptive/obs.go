package adaptive

import "github.com/ares-storage/ares/internal/obs"

// Process-wide adaptive-loop instruments, aggregated across every sampler
// and controller in the process. The per-class key gauges reflect the
// most recent controller tick (one controller per server process).
var (
	samplerDrains = obs.Default.Counter("ares_adaptive_drains_total",
		"Sampler drain windows harvested")
	samplerDrainedKeys = obs.Default.Counter("ares_adaptive_drained_keys_total",
		"Keys with traffic across all drain windows")
	controllerMoves = obs.Default.Counter("ares_adaptive_moves_total",
		"Reconfigurations applied by controllers")
	controllerMoveFailures = obs.Default.Counter("ares_adaptive_move_failures_total",
		"Controller reconfiguration attempts that failed")
	controllerDeferred = obs.Default.Counter("ares_adaptive_deferred_total",
		"Confirmed moves pushed to a later tick by budget or cooldown")
	controllerEvicted = obs.Default.Counter("ares_adaptive_evicted_total",
		"Idle keys whose tracking state was dropped")
	classKeys = func() map[Class]*obs.Gauge {
		m := make(map[Class]*obs.Gauge)
		for _, c := range []Class{ClassDefault, ClassSmallHot, ClassLargeCold, ClassFaulty} {
			m[c] = obs.Default.Gauge(
				`ares_adaptive_keys{class="`+c.String()+`"}`,
				"Tracked keys by current class, as of the last controller tick")
		}
		return m
	}()
)
