// Package adaptive closes ARES's measurement → decision → reconfiguration
// loop: a lock-free per-key telemetry sampler feeds a policy controller that
// drives per-key reconfiguration (ABD ↔ TREAS, narrow ↔ wide [n, k]) on a
// budgeted cadence. The package is deliberately generic — it knows nothing
// about configurations or clusters; callers hand it an apply hook and it
// hands back class decisions — so the store layer, the chaos harness, and
// tests can all wire it to their own reconfiguration machinery.
package adaptive

import (
	"sync"
	"sync/atomic"
	"time"
)

// samplerStripes fixes the sampler's stripe count. Telemetry is recorded on
// the hot path of every store operation, so per-key counters live in striped
// maps (lookup under RLock, counters bumped with atomics) exactly like the
// keystate server maps one layer down.
const samplerStripes = 64

// LatBucketCount is the number of per-key latency buckets (the last is
// the implicit +Inf overflow bucket).
const LatBucketCount = len(latBounds) + 1

// latBounds are the per-key latency bucket upper bounds in nanoseconds.
// Deliberately coarser than the registry's histogram bounds: the sampler
// pays these counters per key, and the policy only needs to resolve "is
// this key's tail above the degraded threshold", not a full distribution.
var latBounds = [...]int64{
	500_000, 1_000_000, 2_500_000, 5_000_000,
	10_000_000, 25_000_000, 50_000_000, 100_000_000, 500_000_000,
}

// latBucket maps one observed latency to its bucket index.
func latBucket(d time.Duration) int {
	for i, b := range latBounds {
		if int64(d) <= b {
			return i
		}
	}
	return len(latBounds)
}

// keyCounters is the live, atomically-updated record for one key. Fields are
// cumulative between drains; Drain swaps each to zero, so every recorded
// sample lands in exactly one drain window (increments racing a drain are
// counted in the next window, never lost).
type keyCounters struct {
	reads      atomic.Int64
	writes     atomic.Int64
	readBytes  atomic.Int64
	writeBytes atomic.Int64
	readNanos  atomic.Int64
	writeNanos atomic.Int64
	readRounds atomic.Int64
	fastReads  atomic.Int64
	retries    atomic.Int64
	failures   atomic.Int64
	lat        [LatBucketCount]atomic.Int64
}

// KeyStats is one key's telemetry over a sampling window — the policy
// controller's entire input.
type KeyStats struct {
	// Reads and Writes count completed operations.
	Reads, Writes int64
	// ReadBytes and WriteBytes total the value sizes moved.
	ReadBytes, WriteBytes int64
	// ReadNanos and WriteNanos total observed operation latency.
	ReadNanos, WriteNanos int64
	// ReadRounds totals data rounds spent by reads; FastReads counts reads
	// that took the one-round fast path (per-key attribution of the
	// process-wide transport.CodecStats read counters).
	ReadRounds, FastReads int64
	// Retries counts transient in-operation retries (e.g. TREAS
	// not-yet-decodable get-data rounds); Failures counts operations that
	// returned an error. Together they are the key's fault signal.
	Retries, Failures int64
	// LatBuckets histograms operation latency over latBounds (last bucket
	// is the +Inf overflow) — the input to the policy's tail-latency
	// signal. A fixed array so KeyStats stays comparable and copyable.
	LatBuckets [LatBucketCount]int64
}

// Ops is the number of completed operations in the window.
func (s KeyStats) Ops() int64 { return s.Reads + s.Writes }

// AvgBytes is the mean value size moved per operation (0 when idle).
func (s KeyStats) AvgBytes() int64 {
	if s.Ops() == 0 {
		return 0
	}
	return (s.ReadBytes + s.WriteBytes) / s.Ops()
}

// ReadRatio is Reads/Ops (0 when idle).
func (s KeyStats) ReadRatio() float64 {
	if s.Ops() == 0 {
		return 0
	}
	return float64(s.Reads) / float64(s.Ops())
}

// FaultRatio is (Retries+Failures) per attempted operation — the fraction of
// work the window spent fighting faults or contention.
func (s KeyStats) FaultRatio() float64 {
	attempts := s.Ops() + s.Failures
	if attempts == 0 {
		return 0
	}
	return float64(s.Retries+s.Failures) / float64(attempts)
}

// AvgLatency is the mean operation latency over the window (0 when idle).
func (s KeyStats) AvgLatency() time.Duration {
	if s.Ops() == 0 {
		return 0
	}
	return time.Duration((s.ReadNanos + s.WriteNanos) / s.Ops())
}

// LatencyQuantile estimates the q-quantile (0 < q <= 1) of the window's
// operation latency from the bucket counts, reported as the upper bound
// of the bucket where the cumulative count crosses q. Samples in the
// overflow bucket report the last finite bound — a floor, which is all
// the degraded-tail policy signal needs. Zero when the window is idle.
func (s KeyStats) LatencyQuantile(q float64) time.Duration {
	var total int64
	for _, n := range s.LatBuckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range s.LatBuckets {
		cum += n
		if cum >= rank {
			if i < len(latBounds) {
				return time.Duration(latBounds[i])
			}
			break
		}
	}
	return time.Duration(latBounds[len(latBounds)-1])
}

// P99 is the window's tail latency: LatencyQuantile(0.99).
func (s KeyStats) P99() time.Duration { return s.LatencyQuantile(0.99) }

// merge adds o into s.
func (s *KeyStats) merge(o KeyStats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.ReadBytes += o.ReadBytes
	s.WriteBytes += o.WriteBytes
	s.ReadNanos += o.ReadNanos
	s.WriteNanos += o.WriteNanos
	s.ReadRounds += o.ReadRounds
	s.FastReads += o.FastReads
	s.Retries += o.Retries
	s.Failures += o.Failures
	for i := range s.LatBuckets {
		s.LatBuckets[i] += o.LatBuckets[i]
	}
}

// zero reports whether the window recorded nothing at all.
func (s KeyStats) zero() bool { return s == KeyStats{} }

// samplerStripe is one lock domain of the sampler.
type samplerStripe struct {
	mu sync.RWMutex
	m  map[string]*keyCounters
}

// Sampler accumulates per-key telemetry with lock-free counter updates.
// Recording takes one RLock'd map lookup plus atomic adds; only a key's
// first-ever sample takes the stripe write lock.
type Sampler struct {
	stripes [samplerStripes]samplerStripe
}

// NewSampler returns an empty sampler.
func NewSampler() *Sampler {
	s := &Sampler{}
	for i := range s.stripes {
		s.stripes[i].m = make(map[string]*keyCounters)
	}
	return s
}

// hashString is the same inlined FNV-1a the keyed server maps use —
// hash/fnv's heap-allocated hasher has no place on the per-operation path.
func hashString(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

func (s *Sampler) stripe(key string) *samplerStripe {
	return &s.stripes[hashString(key)%samplerStripes]
}

// counters returns key's live counters, materializing them on first touch.
func (s *Sampler) counters(key string) *keyCounters {
	st := s.stripe(key)
	st.mu.RLock()
	c := st.m[key]
	st.mu.RUnlock()
	if c != nil {
		return c
	}
	st.mu.Lock()
	c = st.m[key]
	if c == nil {
		c = &keyCounters{}
		st.m[key] = c
	}
	st.mu.Unlock()
	return c
}

// RecordRead records one completed read of bytes value bytes taking d.
func (s *Sampler) RecordRead(key string, bytes int, d time.Duration) {
	c := s.counters(key)
	c.reads.Add(1)
	c.readBytes.Add(int64(bytes))
	c.readNanos.Add(int64(d))
	c.lat[latBucket(d)].Add(1)
}

// RecordWrite records one completed write of bytes value bytes taking d.
func (s *Sampler) RecordWrite(key string, bytes int, d time.Duration) {
	c := s.counters(key)
	c.writes.Add(1)
	c.writeBytes.Add(int64(bytes))
	c.writeNanos.Add(int64(d))
	c.lat[latBucket(d)].Add(1)
}

// RecordReadRounds attributes one read's data-round count (and whether it
// took the one-round fast path) to key.
func (s *Sampler) RecordReadRounds(key string, rounds int, fastPath bool) {
	c := s.counters(key)
	c.readRounds.Add(int64(rounds))
	if fastPath {
		c.fastReads.Add(1)
	}
}

// RecordRetries adds n transient retries to key's fault signal.
func (s *Sampler) RecordRetries(key string, n int) {
	if n <= 0 {
		return
	}
	s.counters(key).retries.Add(int64(n))
}

// RecordFailure records one failed operation on key.
func (s *Sampler) RecordFailure(key string) {
	s.counters(key).failures.Add(1)
}

// Drain atomically harvests and resets every key's window. Each counter is
// swapped to zero individually, so a sample racing the drain is never lost —
// it lands in this window or the next. Keys whose window is entirely zero are
// omitted from the result (but stay materialized until Forget).
func (s *Sampler) Drain() map[string]KeyStats {
	out := make(map[string]KeyStats)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for key, c := range st.m {
			ks := KeyStats{
				Reads:      c.reads.Swap(0),
				Writes:     c.writes.Swap(0),
				ReadBytes:  c.readBytes.Swap(0),
				WriteBytes: c.writeBytes.Swap(0),
				ReadNanos:  c.readNanos.Swap(0),
				WriteNanos: c.writeNanos.Swap(0),
				ReadRounds: c.readRounds.Swap(0),
				FastReads:  c.fastReads.Swap(0),
				Retries:    c.retries.Swap(0),
				Failures:   c.failures.Swap(0),
			}
			for i := range c.lat {
				ks.LatBuckets[i] = c.lat[i].Swap(0)
			}
			if !ks.zero() {
				prev := out[key]
				prev.merge(ks)
				out[key] = prev
			}
		}
		st.mu.RUnlock()
	}
	samplerDrains.Inc()
	samplerDrainedKeys.Add(int64(len(out)))
	return out
}

// Snapshot reads every key's current window without resetting it.
func (s *Sampler) Snapshot() map[string]KeyStats {
	out := make(map[string]KeyStats)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for key, c := range st.m {
			ks := KeyStats{
				Reads:      c.reads.Load(),
				Writes:     c.writes.Load(),
				ReadBytes:  c.readBytes.Load(),
				WriteBytes: c.writeBytes.Load(),
				ReadNanos:  c.readNanos.Load(),
				WriteNanos: c.writeNanos.Load(),
				ReadRounds: c.readRounds.Load(),
				FastReads:  c.fastReads.Load(),
				Retries:    c.retries.Load(),
				Failures:   c.failures.Load(),
			}
			for i := range c.lat {
				ks.LatBuckets[i] = c.lat[i].Load()
			}
			if !ks.zero() {
				out[key] = ks
			}
		}
		st.mu.RUnlock()
	}
	return out
}

// Forget drops key's materialized counters. Only call for keys known to be
// quiesced (the controller evicts after several idle windows): a recorder
// racing a Forget loses at most that one sample.
func (s *Sampler) Forget(key string) bool {
	st := s.stripe(key)
	st.mu.Lock()
	_, ok := st.m[key]
	delete(st.m, key)
	st.mu.Unlock()
	return ok
}

// KeyCount reports how many keys have materialized counters (for tests and
// capacity monitoring).
func (s *Sampler) KeyCount() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		n += len(st.m)
		st.mu.RUnlock()
	}
	return n
}
