package adaptive

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// testController builds a controller over a fresh sampler with a fake clock
// and an apply hook that records every move.
func testController(t *testing.T, p Policy) (*Sampler, *Controller, *[]Move, func(d time.Duration)) {
	t.Helper()
	s := NewSampler()
	var (
		mu    sync.Mutex
		moves []Move
	)
	clock := time.Unix(1000, 0)
	var clockMu sync.Mutex
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		clock = clock.Add(d)
		clockMu.Unlock()
	}
	c := NewController(s, p, func(_ context.Context, key string, class Class) error {
		mu.Lock()
		moves = append(moves, Move{Key: key, To: class})
		mu.Unlock()
		return nil
	}, withNow(now))
	return s, c, &moves, advance
}

// smallHotWindow records a window that unambiguously classifies as small-hot.
func smallHotWindow(s *Sampler, key string) {
	for i := 0; i < 64; i++ {
		s.RecordRead(key, 64, time.Millisecond)
	}
}

// largeWindow records a window that unambiguously classifies as large-cold.
func largeWindow(s *Sampler, key string) {
	for i := 0; i < 4; i++ {
		s.RecordWrite(key, 64<<10, 10*time.Millisecond)
	}
}

// TestHysteresisNoOscillationOnStableWorkload is the satellite's core claim:
// a stable workload causes at most one move per key, ever — the controller
// must not oscillate.
func TestHysteresisNoOscillationOnStableWorkload(t *testing.T) {
	s, c, moves, advance := testController(t, Policy{ConfirmWindows: 2, Cooldown: time.Second})
	ctx := context.Background()

	for tick := 0; tick < 50; tick++ {
		smallHotWindow(s, "k")
		c.Tick(ctx)
		advance(500 * time.Millisecond)
	}
	if len(*moves) != 1 {
		t.Fatalf("stable workload produced %d moves, want exactly 1: %+v", len(*moves), *moves)
	}
	if (*moves)[0].To != ClassSmallHot {
		t.Fatalf("moved to %s, want small-hot", (*moves)[0].To)
	}
	if got := c.Class("k"); got != ClassSmallHot {
		t.Fatalf("class = %s", got)
	}
}

// TestHysteresisConfirmWindows: a class change must hold for ConfirmWindows
// consecutive windows before the controller acts, so a single-window blip
// never triggers a reconfiguration.
func TestHysteresisConfirmWindows(t *testing.T) {
	s, c, moves, advance := testController(t, Policy{ConfirmWindows: 3, Cooldown: time.Millisecond})
	ctx := context.Background()

	// One blip, then back to unclassifiable traffic: no move.
	smallHotWindow(s, "k")
	c.Tick(ctx)
	advance(time.Second)
	for i := 0; i < 5; i++ {
		s.RecordRead("k", 4096, time.Millisecond) // mid-size, below HotOps
		c.Tick(ctx)
		advance(time.Second)
	}
	if len(*moves) != 0 {
		t.Fatalf("blip caused moves: %+v", *moves)
	}

	// Three consecutive confirming windows: exactly one move, on the third.
	for i := 0; i < 3; i++ {
		if len(*moves) != 0 {
			t.Fatalf("moved after %d windows, want 3", i)
		}
		smallHotWindow(s, "k")
		c.Tick(ctx)
		advance(time.Second)
	}
	if len(*moves) != 1 {
		t.Fatalf("moves = %d, want 1", len(*moves))
	}
}

// TestHysteresisAlternatingNeverMoves: a borderline workload flapping between
// classes window to window never accumulates a streak, so it never moves.
func TestHysteresisAlternatingNeverMoves(t *testing.T) {
	s, c, moves, advance := testController(t, Policy{ConfirmWindows: 2, Cooldown: time.Millisecond})
	ctx := context.Background()
	for tick := 0; tick < 40; tick++ {
		if tick%2 == 0 {
			smallHotWindow(s, "k")
		} else {
			largeWindow(s, "k")
		}
		c.Tick(ctx)
		advance(time.Second)
	}
	if len(*moves) != 0 {
		t.Fatalf("alternating workload moved %d times: %+v", len(*moves), *moves)
	}
}

// TestCooldownDefersRepeatMoves: after a move, a genuinely shifted workload
// must wait out the per-key cooldown before moving again.
func TestCooldownDefersRepeatMoves(t *testing.T) {
	s, c, moves, advance := testController(t, Policy{ConfirmWindows: 1, Cooldown: 10 * time.Second})
	ctx := context.Background()

	smallHotWindow(s, "k")
	c.Tick(ctx)
	if len(*moves) != 1 {
		t.Fatalf("first move missing: %+v", *moves)
	}
	// Shifted workload inside the cooldown: confirmed but deferred.
	for i := 0; i < 5; i++ {
		advance(time.Second)
		largeWindow(s, "k")
		rep := c.Tick(ctx)
		if len(rep.Moves) != 0 {
			t.Fatalf("moved inside cooldown at tick %d", i)
		}
		if rep.Deferred != 1 {
			t.Fatalf("tick %d deferred = %d, want 1", i, rep.Deferred)
		}
	}
	advance(6 * time.Second) // past the cooldown
	largeWindow(s, "k")
	c.Tick(ctx)
	if len(*moves) != 2 || (*moves)[1].To != ClassLargeCold {
		t.Fatalf("post-cooldown move missing: %+v", *moves)
	}
}

// TestMoveBudgetRollsThroughKeyspace: a mass shift reconfigures at most
// MaxMovesPerTick keys per tick, deterministically, until all have moved.
func TestMoveBudgetRollsThroughKeyspace(t *testing.T) {
	s, c, moves, advance := testController(t, Policy{ConfirmWindows: 1, Cooldown: time.Millisecond, MaxMovesPerTick: 3})
	ctx := context.Background()
	const keys = 10
	feed := func() {
		for i := 0; i < keys; i++ {
			smallHotWindow(s, fmt.Sprintf("k%02d", i))
		}
	}
	feed()
	rep := c.Tick(ctx)
	if len(rep.Moves) != 3 || rep.Deferred != 7 {
		t.Fatalf("tick 1: moves=%d deferred=%d, want 3/7", len(rep.Moves), rep.Deferred)
	}
	for tick := 0; tick < 4; tick++ {
		advance(time.Second)
		feed()
		c.Tick(ctx)
	}
	if len(*moves) != keys {
		t.Fatalf("total moves = %d, want %d", len(*moves), keys)
	}
	seen := map[string]int{}
	for _, m := range *moves {
		seen[m.Key]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %s moved %d times", k, n)
		}
	}
}

// TestFaultSpikeAndRecovery: a fault spike classifies the key faulty; once
// the spike clears and traffic carries no other signal, the controller steps
// the key back to default (after hysteresis) instead of pinning extra
// redundancy forever.
func TestFaultSpikeAndRecovery(t *testing.T) {
	s, c, moves, advance := testController(t, Policy{ConfirmWindows: 2, Cooldown: time.Millisecond})
	ctx := context.Background()

	faulty := func() {
		for i := 0; i < 20; i++ {
			s.RecordRead("k", 4096, time.Millisecond)
		}
		s.RecordRetries("k", 10)
		s.RecordFailure("k")
	}
	for i := 0; i < 3; i++ {
		faulty()
		c.Tick(ctx)
		advance(time.Second)
	}
	if len(*moves) != 1 || (*moves)[0].To != ClassFaulty {
		t.Fatalf("fault spike moves = %+v", *moves)
	}
	for i := 0; i < 4; i++ {
		s.RecordRead("k", 4096, time.Millisecond) // clean, signal-free traffic
		c.Tick(ctx)
		advance(time.Second)
	}
	if len(*moves) != 2 || (*moves)[1].To != ClassDefault {
		t.Fatalf("recovery moves = %+v", *moves)
	}
}

// TestApplyFailureRetried: a failed apply leaves the key in its old class and
// the controller retries on a later tick.
func TestApplyFailureRetried(t *testing.T) {
	s := NewSampler()
	fails := 2
	var applied []Class
	c := NewController(s, Policy{ConfirmWindows: 1, Cooldown: time.Millisecond}, func(_ context.Context, key string, class Class) error {
		if fails > 0 {
			fails--
			return errors.New("quorum unavailable")
		}
		applied = append(applied, class)
		return nil
	})
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		smallHotWindow(s, "k")
		rep := c.Tick(ctx)
		if fails > 0 && len(rep.Moves) > 0 && rep.Moves[0].Err == nil {
			t.Fatal("failed move reported as success")
		}
	}
	if len(applied) != 1 || c.Class("k") != ClassSmallHot {
		t.Fatalf("applied=%v class=%s", applied, c.Class("k"))
	}
	if c.Moves() != 1 {
		t.Fatalf("moves counter = %d", c.Moves())
	}
}

// TestIdleEviction: keys silent for IdleEvictWindows windows are dropped from
// both controller state and sampler, bounding live state per key under
// continuous operation.
func TestIdleEviction(t *testing.T) {
	s, c, _, advance := testController(t, Policy{ConfirmWindows: 1, Cooldown: time.Millisecond, IdleEvictWindows: 3})
	ctx := context.Background()
	smallHotWindow(s, "k")
	c.Tick(ctx)
	if s.KeyCount() != 1 {
		t.Fatalf("key count = %d", s.KeyCount())
	}
	evicted := 0
	for i := 0; i < 4; i++ {
		advance(time.Second)
		evicted += c.Tick(ctx).Evicted
	}
	if evicted != 1 || s.KeyCount() != 0 {
		t.Fatalf("evicted=%d keyCount=%d, want 1/0", evicted, s.KeyCount())
	}
	if c.Class("k") != ClassDefault {
		t.Fatalf("evicted key class = %s", c.Class("k"))
	}
}

// TestStartStop: the background loop ticks on its cadence and Stop is
// idempotent, including without a Start.
func TestStartStop(t *testing.T) {
	s := NewSampler()
	var ticks sync.WaitGroup
	ticks.Add(1)
	var once sync.Once
	c := NewController(s, Policy{ConfirmWindows: 1, Cooldown: time.Millisecond}, func(context.Context, string, Class) error {
		once.Do(ticks.Done)
		return nil
	})
	c.Start(context.Background(), 5*time.Millisecond)
	c.Start(context.Background(), 5*time.Millisecond) // idempotent
	smallHotWindow(s, "k")
	go func() {
		for i := 0; i < 200; i++ {
			smallHotWindow(s, "k")
			time.Sleep(time.Millisecond)
		}
	}()
	ticks.Wait()
	c.Stop()
	c.Stop()

	// Stop without Start must not hang.
	c2 := NewController(NewSampler(), Policy{}, func(context.Context, string, Class) error { return nil })
	c2.Stop()
}
