package adaptive

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSamplerRecordAndSnapshot(t *testing.T) {
	s := NewSampler()
	s.RecordRead("a", 100, 2*time.Millisecond)
	s.RecordRead("a", 300, 4*time.Millisecond)
	s.RecordWrite("a", 50, 6*time.Millisecond)
	s.RecordReadRounds("a", 1, true)
	s.RecordReadRounds("a", 2, false)
	s.RecordRetries("a", 3)
	s.RecordFailure("a")
	s.RecordWrite("b", 8192, time.Millisecond)

	snap := s.Snapshot()
	a := snap["a"]
	if a.Reads != 2 || a.Writes != 1 {
		t.Fatalf("a ops = %d/%d, want 2/1", a.Reads, a.Writes)
	}
	if a.ReadBytes != 400 || a.WriteBytes != 50 {
		t.Fatalf("a bytes = %d/%d, want 400/50", a.ReadBytes, a.WriteBytes)
	}
	if a.ReadRounds != 3 || a.FastReads != 1 {
		t.Fatalf("a rounds = %d fast = %d, want 3/1", a.ReadRounds, a.FastReads)
	}
	if a.Retries != 3 || a.Failures != 1 {
		t.Fatalf("a faults = %d/%d, want 3/1", a.Retries, a.Failures)
	}
	if got := a.AvgBytes(); got != 150 {
		t.Fatalf("a avg bytes = %d, want 150", got)
	}
	if got := a.AvgLatency(); got != 4*time.Millisecond {
		t.Fatalf("a avg latency = %v, want 4ms", got)
	}
	if b := snap["b"]; b.WriteBytes != 8192 || b.AvgBytes() != 8192 {
		t.Fatalf("b = %+v", b)
	}

	// Snapshot does not reset; Drain does.
	if again := s.Snapshot()["a"]; again.Reads != 2 {
		t.Fatalf("snapshot reset the window: %+v", again)
	}
	if d := s.Drain()["a"]; d.Reads != 2 {
		t.Fatalf("drain window = %+v", d)
	}
	if after := s.Drain(); len(after) != 0 {
		t.Fatalf("second drain not empty: %v", after)
	}
	if s.KeyCount() != 2 {
		t.Fatalf("key count = %d, want 2 (drain keeps counters materialized)", s.KeyCount())
	}
	if !s.Forget("a") || s.Forget("a") {
		t.Fatal("Forget should drop a exactly once")
	}
	if s.KeyCount() != 1 {
		t.Fatalf("key count after forget = %d, want 1", s.KeyCount())
	}
}

// TestSamplerDrainConservesUnderRace is the -race stress test the satellite
// asks for: many writers hammer the per-key counters while a drainer loop
// snapshots-and-resets windows concurrently. Every recorded sample must land
// in exactly one drain — the final accumulated totals equal what was written,
// nothing lost to the swap, nothing double-counted.
func TestSamplerDrainConservesUnderRace(t *testing.T) {
	const (
		writers = 8
		keys    = 32
		opsEach = 5000
	)
	s := NewSampler()

	var (
		totalMu sync.Mutex
		total   = map[string]KeyStats{}
	)
	drainInto := func() {
		for key, st := range s.Drain() {
			totalMu.Lock()
			prev := total[key]
			prev.merge(st)
			total[key] = prev
			totalMu.Unlock()
		}
	}

	stop := make(chan struct{})
	var drainers sync.WaitGroup
	for i := 0; i < 2; i++ {
		drainers.Add(1)
		go func() {
			defer drainers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					drainInto()
				}
			}
		}()
	}

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("key-%d", (w*opsEach+i)%keys)
				switch i % 4 {
				case 0:
					s.RecordRead(key, 10, time.Microsecond)
				case 1:
					s.RecordWrite(key, 20, time.Microsecond)
				case 2:
					s.RecordReadRounds(key, 2, true)
				default:
					s.RecordRetries(key, 1)
					s.RecordFailure(key)
				}
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	drainers.Wait()
	drainInto() // final harvest of anything the racing drains missed

	var sum KeyStats
	for _, st := range total {
		sum.merge(st)
	}
	totalOps := int64(writers * opsEach)
	wantReads, wantWrites := totalOps/4, totalOps/4
	if sum.Reads != wantReads || sum.Writes != wantWrites {
		t.Fatalf("conservation failed: reads=%d writes=%d, want %d/%d", sum.Reads, sum.Writes, wantReads, wantWrites)
	}
	if sum.ReadBytes != wantReads*10 || sum.WriteBytes != wantWrites*20 {
		t.Fatalf("byte totals off: %d/%d", sum.ReadBytes, sum.WriteBytes)
	}
	if sum.ReadRounds != totalOps/4*2 || sum.FastReads != totalOps/4 {
		t.Fatalf("round totals off: rounds=%d fast=%d", sum.ReadRounds, sum.FastReads)
	}
	if sum.Retries != totalOps/4 || sum.Failures != totalOps/4 {
		t.Fatalf("fault totals off: retries=%d failures=%d", sum.Retries, sum.Failures)
	}
	if got := len(total); got != keys {
		t.Fatalf("key cardinality = %d, want %d", got, keys)
	}
}

func TestKeyStatsDerived(t *testing.T) {
	st := KeyStats{Reads: 3, Writes: 1, ReadBytes: 300, WriteBytes: 100, Retries: 1, Failures: 1}
	if got := st.Ops(); got != 4 {
		t.Fatalf("ops = %d", got)
	}
	if got := st.ReadRatio(); got != 0.75 {
		t.Fatalf("read ratio = %v", got)
	}
	if got := st.FaultRatio(); got != 0.4 { // (1+1)/(4+1)
		t.Fatalf("fault ratio = %v", got)
	}
	var idle KeyStats
	if idle.AvgBytes() != 0 || idle.ReadRatio() != 0 || idle.FaultRatio() != 0 || idle.AvgLatency() != 0 {
		t.Fatal("idle stats must not divide by zero")
	}
}
