package adaptive

import (
	"context"
	"testing"
	"time"
)

// degradedWindow records a window whose throughput is healthy but whose
// tail is not: 97 fast operations and 3 stragglers, so p99 lands in the
// stragglers' bucket while the average stays low.
func degradedWindow(s *Sampler, key string) {
	for i := 0; i < 97; i++ {
		s.RecordRead(key, 4096, time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		s.RecordRead(key, 4096, 200*time.Millisecond)
	}
}

// healthyWindow records the same traffic with the tail gone.
func healthyWindow(s *Sampler, key string) {
	for i := 0; i < 100; i++ {
		s.RecordRead(key, 4096, time.Millisecond)
	}
}

func TestLatencyQuantileFromBuckets(t *testing.T) {
	s := NewSampler()
	degradedWindow(s, "k")
	st := s.Snapshot()["k"]
	if p50 := st.LatencyQuantile(0.50); p50 != time.Millisecond {
		t.Fatalf("p50 = %v, want 1ms", p50)
	}
	// 3 of 100 samples at 200ms: rank 99 falls among the stragglers, whose
	// bucket upper bound is 500ms.
	if p99 := st.P99(); p99 != 500*time.Millisecond {
		t.Fatalf("p99 = %v, want 500ms", p99)
	}
	if idle := (KeyStats{}).P99(); idle != 0 {
		t.Fatalf("idle p99 = %v, want 0", idle)
	}
}

// TestP99DegradedHysteresis is the satellite's claim: with P99Degraded
// set, a degraded tail counts toward faulty classification — but only
// after ConfirmWindows consecutive degraded windows, and the key steps
// back out of faulty once the tail clears.
func TestP99DegradedHysteresis(t *testing.T) {
	s, c, moves, advance := testController(t, Policy{
		P99Degraded:    50 * time.Millisecond,
		ConfirmWindows: 2,
		Cooldown:       time.Millisecond,
	})
	ctx := context.Background()

	// One degraded window is a blip, not a verdict: no move.
	degradedWindow(s, "k")
	c.Tick(ctx)
	advance(time.Second)
	if len(*moves) != 0 {
		t.Fatalf("single degraded window caused moves: %+v", *moves)
	}

	// The second consecutive degraded window confirms the candidate.
	degradedWindow(s, "k")
	c.Tick(ctx)
	advance(time.Second)
	if len(*moves) != 1 || (*moves)[0].To != ClassFaulty {
		t.Fatalf("moves after confirmation = %+v, want one move to faulty", *moves)
	}
	if got := c.Class("k"); got != ClassFaulty {
		t.Fatalf("class = %s, want faulty", got)
	}

	// Tail clears: the same traffic minus the stragglers steps the key
	// back to default (after the same confirmation depth), not pinned to
	// extra redundancy forever.
	for i := 0; i < 4; i++ {
		healthyWindow(s, "k")
		c.Tick(ctx)
		advance(time.Second)
	}
	if len(*moves) != 2 || (*moves)[1].To != ClassDefault {
		t.Fatalf("moves after recovery = %+v, want a second move to default", *moves)
	}
}

// TestP99NeedsSamples: a handful of slow operations is one straggler, not
// a tail — below MinP99Samples the signal must not fire.
func TestP99NeedsSamples(t *testing.T) {
	s, c, moves, advance := testController(t, Policy{
		P99Degraded:    50 * time.Millisecond,
		ConfirmWindows: 2,
		Cooldown:       time.Millisecond,
		MinP99Samples:  20,
	})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		for j := 0; j < 10; j++ { // 10 ops < MinP99Samples, all slow
			s.RecordRead("k", 4096, 200*time.Millisecond)
		}
		c.Tick(ctx)
		advance(time.Second)
	}
	if len(*moves) != 0 {
		t.Fatalf("sub-sample windows caused moves: %+v", *moves)
	}
}

// TestP99DisabledByDefault: the zero policy must ignore tail latency
// entirely — the signal is opt-in.
func TestP99DisabledByDefault(t *testing.T) {
	s, c, moves, advance := testController(t, Policy{
		ConfirmWindows: 2,
		Cooldown:       time.Millisecond,
	})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		degradedWindow(s, "k")
		c.Tick(ctx)
		advance(time.Second)
	}
	if len(*moves) != 0 {
		t.Fatalf("disabled p99 signal caused moves: %+v", *moves)
	}
}
