package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	t.Parallel()
	cases := []struct {
		a, b, want byte
	}{
		{0, 0, 0},
		{1, 1, 0},
		{0x53, 0xca, 0x99},
		{0xff, 0x0f, 0xf0},
	}
	for _, tc := range cases {
		if got := Add(tc.a, tc.b); got != tc.want {
			t.Errorf("Add(%#x, %#x) = %#x, want %#x", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMulKnownValues(t *testing.T) {
	t.Parallel()
	cases := []struct {
		a, b, want byte
	}{
		{0, 5, 0},
		{5, 0, 0},
		{1, 0xab, 0xab},
		{2, 2, 4},
		{0x80, 2, 0x1d}, // overflow wraps through the reduction polynomial
	}
	for _, tc := range cases {
		if got := Mul(tc.a, tc.b); got != tc.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMulCommutative(t *testing.T) {
	t.Parallel()
	f := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociative(t *testing.T) {
	t.Parallel()
	f := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributivity(t *testing.T) {
	t.Parallel()
	f := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulDivRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(Mul(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInv(t *testing.T) {
	t.Parallel()
	for a := 1; a < 256; a++ {
		if got := Mul(byte(a), Inv(byte(a))); got != 1 {
			t.Fatalf("a * Inv(a) = %#x for a=%#x, want 1", got, a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestDivByZeroPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Div(x, 0) did not panic")
		}
	}()
	Div(7, 0)
}

func TestExpCycle(t *testing.T) {
	t.Parallel()
	// generator^255 = 1, and the powers 0..254 enumerate all non-zero elements.
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator powers produced %d distinct elements, want 255", len(seen))
	}
	if Exp(255) != 1 {
		t.Fatalf("Exp(255) = %#x, want 1", Exp(255))
	}
}

func TestMulSlice(t *testing.T) {
	t.Parallel()
	src := []byte{1, 2, 3, 0, 0xff}
	dst := []byte{0, 0, 0, 0, 0}
	MulSlice(3, src, dst)
	for i := range src {
		if dst[i] != Mul(3, src[i]) {
			t.Errorf("dst[%d] = %#x, want %#x", i, dst[i], Mul(3, src[i]))
		}
	}
	// A second application XORs in the same product, cancelling to zero.
	MulSlice(3, src, dst)
	for i := range dst {
		if dst[i] != 0 {
			t.Errorf("dst[%d] = %#x after double apply, want 0", i, dst[i])
		}
	}
}

func TestMulSliceZeroCoefficient(t *testing.T) {
	t.Parallel()
	src := []byte{9, 9, 9}
	dst := []byte{1, 2, 3}
	MulSlice(0, src, dst)
	want := []byte{1, 2, 3}
	for i := range dst {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %#x, want unchanged %#x", i, dst[i], want[i])
		}
	}
}

func TestMulSliceAssign(t *testing.T) {
	t.Parallel()
	src := []byte{1, 2, 3, 0}
	dst := make([]byte, 4)
	MulSliceAssign(7, src, dst)
	for i := range src {
		if dst[i] != Mul(7, src[i]) {
			t.Errorf("dst[%d] = %#x, want %#x", i, dst[i], Mul(7, src[i]))
		}
	}
	MulSliceAssign(0, src, dst)
	for i := range dst {
		if dst[i] != 0 {
			t.Errorf("dst[%d] = %#x after zero assign, want 0", i, dst[i])
		}
	}
}

func BenchmarkMulSlice(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i * 31)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSlice(0xa7, src, dst)
	}
}
