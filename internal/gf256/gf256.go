// Package gf256 implements arithmetic over the finite field GF(2^8), the
// base field for the [n, k] MDS Reed–Solomon codes used by TREAS (§2,
// "Background on Erasure coding"). Elements are bytes; addition is XOR and
// multiplication is carried out through logarithm/antilogarithm tables built
// from a generator of the field's multiplicative group.
package gf256

// poly is the irreducible polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the
// conventional choice for Reed–Solomon over GF(2^8).
const poly = 0x11d

// generator is a primitive element of GF(2^8) under poly.
const generator = 2

var (
	expTable [512]byte // expTable[i] = generator^i, doubled to skip mod 255.
	logTable [256]byte // logTable[x] = i such that generator^i = x, x != 0.
)

// buildTables populates the log/exp tables. Called lazily through tablesOnce
// from newTables; kept as a plain function so tests can validate it directly.
func buildTables() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[byte(x)] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// The tables are cheap to build; do it eagerly at package load via a
// package-level variable assignment (not init(), per style guidance) so all
// operations are branch-free on the hot path.
var _ = func() struct{} {
	buildTables()
	return struct{}{}
}()

// Add returns a + b in GF(2^8) (XOR). Subtraction is identical.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b in GF(2^8). Division by zero panics: it indicates a
// programming error in matrix manipulation, never a data-dependent state.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	diff := int(logTable[a]) - int(logTable[b])
	if diff < 0 {
		diff += 255
	}
	return expTable[diff]
}

// Inv returns the multiplicative inverse of a. Inverting zero panics.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns generator^n for n >= 0.
func Exp(n int) byte {
	return expTable[n%255]
}

// MulSlice computes dst[i] ^= c * src[i] for all i, the inner loop of
// matrix-vector products in encode/decode. dst and src must be equal length.
func MulSlice(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[logC+int(logTable[s])]
		}
	}
}

// MulSliceAssign computes dst[i] = c * src[i] for all i.
func MulSliceAssign(c byte, src, dst []byte) {
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
		} else {
			dst[i] = expTable[logC+int(logTable[s])]
		}
	}
}
