package gf256

import "testing"

// FuzzFieldLaws checks the GF(2^8) axioms the Reed–Solomon matrices rely
// on, over arbitrary element triples: commutativity, associativity,
// distributivity over XOR-addition, multiplicative inverses, and the
// consistency of the slice kernels with scalar Mul.
func FuzzFieldLaws(f *testing.F) {
	f.Add(byte(0x02), byte(0x8e), byte(0x1d))
	f.Add(byte(0x00), byte(0xff), byte(0x01))
	f.Add(byte(0x53), byte(0xca), byte(0xa7))
	f.Fuzz(func(t *testing.T, a, b, c byte) {
		if Mul(a, b) != Mul(b, a) {
			t.Fatalf("Mul not commutative for %#x, %#x", a, b)
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			t.Fatalf("Mul not associative for %#x, %#x, %#x", a, b, c)
		}
		if Mul(a, Add(b, c)) != Add(Mul(a, b), Mul(a, c)) {
			t.Fatalf("Mul does not distribute over Add for %#x, %#x, %#x", a, b, c)
		}
		if a != 0 {
			if Mul(a, Inv(a)) != 1 {
				t.Fatalf("a · a⁻¹ ≠ 1 for %#x", a)
			}
			if got := Mul(Div(b, a), a); got != b {
				t.Fatalf("(b / a) · a = %#x, want %#x", got, b)
			}
		}

		// The vectorized kernels must agree with scalar Mul:
		// MulSliceAssign assigns dst = c·src, MulSlice accumulates
		// dst ^= c·src.
		src := []byte{a, b, c, Add(a, b), Mul(a, c), 0, 0xff, Add(b, c)}
		dst := make([]byte, len(src))
		MulSliceAssign(c, src, dst)
		for i, s := range src {
			if dst[i] != Mul(c, s) {
				t.Fatalf("MulSliceAssign[%d] = %#x, want Mul(%#x, %#x) = %#x", i, dst[i], c, s, Mul(c, s))
			}
		}
		acc := make([]byte, len(src))
		copy(acc, dst)
		MulSlice(b, src, acc)
		for i, s := range src {
			want := Add(dst[i], Mul(b, s))
			if acc[i] != want {
				t.Fatalf("MulSlice[%d] = %#x, want dst ^ b·src = %#x", i, acc[i], want)
			}
		}
	})
}
