package transport

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/ares-storage/ares/internal/types"
)

// TestGatherWrapsLastFailure pins the diagnosable-quorum-failure contract:
// when the predicate is unsatisfiable, the returned error still matches
// ErrQuorumUnavailable via errors.Is AND carries the last per-destination
// failure's text — the channel through which a systematic rejection (e.g.
// "configuration retired") reaches the caller.
func TestGatherWrapsLastFailure(t *testing.T) {
	t.Parallel()
	dsts := []types.ProcessID{"a", "b", "c"}
	_, err := Gather(context.Background(), dsts,
		func(ctx context.Context, dst types.ProcessID) (struct{}, error) {
			return struct{}{}, errors.New("cfg: configuration retired: boom")
		},
		AtLeast[struct{}](1),
	)
	if !errors.Is(err, ErrQuorumUnavailable) {
		t.Fatalf("err = %v, want ErrQuorumUnavailable", err)
	}
	if !strings.Contains(err.Error(), "configuration retired") {
		t.Fatalf("per-destination failure text lost: %v", err)
	}
	// No destination error at all: the bare sentinel.
	_, err = Gather(context.Background(), dsts,
		func(ctx context.Context, dst types.ProcessID) (int, error) { return 1, nil },
		func(got []GatherResult[int]) bool { return false },
	)
	if err == nil || !errors.Is(err, ErrQuorumUnavailable) {
		t.Fatalf("err = %v, want bare ErrQuorumUnavailable", err)
	}
}
