package transport

// Tests for the FrameBatch coalescing layer: batch framing round trips,
// malformed-batch rejection, the writer path's envelope/byte caps, the
// saturated-send-queue Invoke contract, and race-safety of the process-wide
// codec counters (pinned under -race).

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

// TestWireBatchRoundTrip pins that batched encodes decode into exactly the
// single-frame envelope stream: the decoder is transparent, so read loops
// never learn whether the peer batched. The gob format has no batch framing;
// its per-envelope fallback must produce the same decoded stream.
func TestWireBatchRoundTrip(t *testing.T) {
	t.Parallel()
	for _, format := range []WireFormat{WireBinary, WireGob} {
		format := format
		t.Run(string(format), func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			enc := newFrameEncoder(format, &buf)
			if err := enc.encodeRequestBatch(sampleEnvelopes()); err != nil {
				t.Fatal(err)
			}
			if err := enc.encodeReplyBatch(sampleReplies()); err != nil {
				t.Fatal(err)
			}
			if err := enc.flush(); err != nil {
				t.Fatal(err)
			}

			dec := newFrameDecoder(format, &buf)
			for _, want := range sampleEnvelopes() {
				var got tcpEnvelope
				if err := dec.decodeRequest(&got); err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("batched request round trip:\n got %+v\nwant %+v", got, want)
				}
			}
			for _, want := range sampleReplies() {
				var got tcpReply
				if err := dec.decodeReply(&got); err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("batched reply round trip:\n got %+v\nwant %+v", got, want)
				}
			}
		})
	}
}

// TestWireBatchOfOneIsPlainFrame pins the degenerate case: a batch of one
// emits byte-identical wire to the single-frame encoder, so a lone envelope
// never pays batch framing overhead.
func TestWireBatchOfOneIsPlainFrame(t *testing.T) {
	t.Parallel()
	env := sampleEnvelopes()[0]
	var single, batched bytes.Buffer
	encS := newFrameEncoder(WireBinary, &single)
	if err := encS.encodeRequest(env); err != nil {
		t.Fatal(err)
	}
	if err := encS.flush(); err != nil {
		t.Fatal(err)
	}
	encB := newFrameEncoder(WireBinary, &batched)
	if err := encB.encodeRequestBatch([]tcpEnvelope{env}); err != nil {
		t.Fatal(err)
	}
	if err := encB.flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(single.Bytes(), batched.Bytes()) {
		t.Fatalf("batch of one is not the plain frame:\n single %x\nbatched %x",
			single.Bytes(), batched.Bytes())
	}
}

// rawFrame length-prefixes a hand-built body the way writeFrame would.
func rawFrame(body []byte) []byte {
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(body)))
	return append(prefix[:], body...)
}

// TestWireRejectsMalformedBatchFrames pins that corrupt batch frames fail the
// decode loudly instead of misparsing or over-allocating.
func TestWireRejectsMalformedBatchFrames(t *testing.T) {
	t.Parallel()
	valid := appendRequestBody(nil, sampleEnvelopes()[0])
	cases := map[string][]byte{
		"zero envelopes": binary.AppendUvarint([]byte{frameBatch}, 0),
		"count exceeds frame bytes": append(
			binary.AppendUvarint([]byte{frameBatch}, 1<<20), 1, 2, 3),
		"trailing bytes": append(
			appendWireBytes(binary.AppendUvarint([]byte{frameBatch}, 1), valid), 0xEE),
		"truncated inner body": appendWireBytes(
			binary.AppendUvarint([]byte{frameBatch}, 2), valid),
	}
	for name, body := range cases {
		name, body := name, body
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			dec := newFrameDecoder(WireBinary, bytes.NewReader(rawFrame(body)))
			var env tcpEnvelope
			if err := dec.decodeRequest(&env); err == nil {
				t.Fatalf("malformed batch frame (%s) was accepted", name)
			}
		})
	}
}

// TestWireBatchCountsIntoCodecStats pins the batch observability the bench
// and CI assertions consume: one batched frame advances FramesBatched and the
// right EnvelopesPerFrame bucket, and costs one wire frame, not N.
func TestWireBatchCountsIntoCodecStats(t *testing.T) {
	// Not parallel: codec counters are process-wide.
	envs := sampleEnvelopes()
	before := CodecStats()
	var buf bytes.Buffer
	enc := newFrameEncoder(WireBinary, &buf)
	if err := enc.encodeRequestBatch(envs); err != nil {
		t.Fatal(err)
	}
	if err := enc.flush(); err != nil {
		t.Fatal(err)
	}
	dec := newFrameDecoder(WireBinary, &buf)
	for range envs {
		var env tcpEnvelope
		if err := dec.decodeRequest(&env); err != nil {
			t.Fatal(err)
		}
	}
	after := CodecStats()
	if got := after.FramesBatched - before.FramesBatched; got != 1 {
		t.Fatalf("FramesBatched delta = %d, want 1", got)
	}
	bucket := batchBucket(len(envs))
	if got := after.EnvelopesPerFrame[bucket] - before.EnvelopesPerFrame[bucket]; got != 1 {
		t.Fatalf("EnvelopesPerFrame[%s] delta = %d, want 1", BatchBucketLabels[bucket], got)
	}
	if got := after.WireEncodes - before.WireEncodes; got != 1 {
		t.Fatalf("WireEncodes delta = %d, want 1 (the whole batch is one frame)", got)
	}
	if got := after.WireDecodes - before.WireDecodes; got != 1 {
		t.Fatalf("WireDecodes delta = %d, want 1", got)
	}
}

// TestBatchCaps pins the cap resolution: batching off collapses the count cap
// to 1 (the pre-batching one-frame-per-envelope layout, where the writer also
// flushes each frame individually) without touching the byte cap.
func TestBatchCaps(t *testing.T) {
	t.Parallel()
	o := defaultTCPOptions()
	if env, by := o.batchCaps(); env != defaultBatchEnvelopes || by != defaultBatchBytes {
		t.Fatalf("default caps = (%d, %d), want (%d, %d)", env, by, defaultBatchEnvelopes, defaultBatchBytes)
	}
	WithBatchLimits(3, 4096)(&o)
	if env, by := o.batchCaps(); env != 3 || by != 4096 {
		t.Fatalf("caps after WithBatchLimits(3, 4096) = (%d, %d)", env, by)
	}
	WithBatchLimits(0, -1)(&o) // invalid values are ignored, not applied
	if env, by := o.batchCaps(); env != 3 || by != 4096 {
		t.Fatalf("caps after invalid WithBatchLimits = (%d, %d), want (3, 4096)", env, by)
	}
	WithBatching(false)(&o)
	if env, by := o.batchCaps(); env != 1 || by != 4096 {
		t.Fatalf("unbatched caps = (%d, %d), want (1, 4096)", env, by)
	}
}

// pipeBook dials net.Pipe client halves and hands the server halves to the
// test, which plays the peer directly on the raw stream.
func pipeBook(serverSide chan<- net.Conn) TCPOption {
	return WithDialFunc(func(ctx context.Context, addr string) (net.Conn, error) {
		cs, ss := net.Pipe()
		serverSide <- ss
		return cs, nil
	})
}

// TestTCPWriterSplitsBatchesAcrossCaps drives a burst of concurrent Invokes
// into a writer with tight batch caps and inspects the raw frames: every
// frame respects the cap, at least one FrameBatch appears, and every Invoke
// still resolves. Covers both the envelope-count cap and the byte cap.
func TestTCPWriterSplitsBatchesAcrossCaps(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		limits  TCPOption
		payload int
	}{
		// Cap 2 envelopes: five requests must split into ≥2 batch frames.
		{name: "count-cap", limits: WithBatchLimits(2, 1<<20)},
		// ~1 KiB payloads against a 1500 B cap: the byte cap closes each
		// batch at two envelopes even though the count cap allows 64.
		{name: "byte-cap", limits: WithBatchLimits(64, 1500), payload: 1000},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			serverSide := make(chan net.Conn, 1)
			client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": "pipe"}),
				tc.limits, pipeBook(serverSide))
			defer client.Close()

			const total = 5
			results := make(chan error, total)
			for i := 0; i < total; i++ {
				go func() {
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					resp, err := client.Invoke(ctx, "s1", Request{
						Service: "svc", Type: "op", Payload: bytes.Repeat([]byte{0x5A}, tc.payload),
					})
					if err == nil && !resp.OK {
						err = fmt.Errorf("response not OK: %+v", resp)
					}
					results <- err
				}()
			}
			ss := <-serverSide
			defer ss.Close()
			// Let all five enqueue while the writer is wedged flushing the
			// first frame into the unread pipe, so the drain pass finds
			// cross-request traffic to pack.
			time.Sleep(100 * time.Millisecond)

			// Play the server on the raw stream: tee the bytes for structural
			// assertions while a real decoder yields envelopes to answer.
			var raw bytes.Buffer
			dec := newFrameDecoder(WireBinary, io.TeeReader(ss, &raw))
			enc := newFrameEncoder(WireBinary, ss)
			for seen := 0; seen < total; seen++ {
				var env tcpEnvelope
				if err := dec.decodeRequest(&env); err != nil {
					t.Fatalf("decoding request %d: %v", seen, err)
				}
				if err := enc.encodeReply(tcpReply{ID: env.ID, Resp: OKResponse(nil)}); err != nil {
					t.Fatal(err)
				}
				if err := enc.flush(); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < total; i++ {
				if err := <-results; err != nil {
					t.Fatalf("invoke %d: %v", i, err)
				}
			}

			// Walk the captured stream frame by frame.
			frames, batches, envelopes := 0, 0, 0
			for raw.Len() > 0 {
				var prefix [4]byte
				if _, err := io.ReadFull(&raw, prefix[:]); err != nil {
					t.Fatal(err)
				}
				body := make([]byte, binary.BigEndian.Uint32(prefix[:]))
				if _, err := io.ReadFull(&raw, body); err != nil {
					t.Fatal(err)
				}
				frames++
				if len(body) > 0 && body[0] == frameBatch {
					batches++
					c := wireCursor{b: body[1:]}
					n := int(c.uvarint())
					if c.err != nil {
						t.Fatal(c.err)
					}
					if n > 2 {
						t.Fatalf("batch frame carries %d envelopes, cap is 2", n)
					}
					envelopes += n
				} else {
					envelopes++
				}
			}
			if envelopes != total {
				t.Fatalf("stream carried %d envelopes, want %d", envelopes, total)
			}
			if batches == 0 {
				t.Fatalf("no FrameBatch in %d frames: the writer never coalesced", frames)
			}
		})
	}
}

// TestTCPUnbatchedMatchesBatched pins end-to-end equivalence over real
// sockets: a WithBatching(false) deployment serves the identical concurrent
// traffic (the bench baseline), and — not parallel, so the global counters
// are attributable — produces zero FrameBatch frames.
func TestTCPUnbatchedMatchesBatched(t *testing.T) {
	// Not parallel: asserts on the process-wide FramesBatched counter.
	srv, err := NewTCPServer("s1", "127.0.0.1:0", echoHandler(nil), WithBatching(false))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}), WithBatching(false))
	defer client.Close()

	before := CodecStats()
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("unbatched-%d", i))
			resp, err := client.Invoke(context.Background(), "s1", Request{Service: "svc", Type: "echo", Payload: payload})
			if err != nil {
				errs <- err
				return
			}
			if string(resp.Payload) != string(payload) {
				errs <- fmt.Errorf("response %q for request %q", resp.Payload, payload)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	after := CodecStats()
	if got := after.FramesBatched - before.FramesBatched; got != 0 {
		t.Fatalf("FramesBatched advanced by %d on an unbatched deployment", got)
	}
}

// TestTCPInvokeSaturatedQueueHonorsContext pins the backpressure contract: an
// Invoke that finds the per-connection send queue full waits for its context
// deadline instead of failing fast — a saturated writer is congestion, not a
// dead peer, so the caller must not see ErrUnreachable.
func TestTCPInvokeSaturatedQueueHonorsContext(t *testing.T) {
	t.Parallel()
	serverSide := make(chan net.Conn, 1)
	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": "pipe"}),
		WithSendQueue(1), pipeBook(serverSide))
	defer client.Close()

	background := make(chan error, 2)
	invoke := func() {
		_, err := client.Invoke(context.Background(), "s1", Request{Service: "svc", Type: "op"})
		background <- err
	}
	// First request: the writer drains it and wedges flushing into the
	// never-read pipe.
	go invoke()
	ss := <-serverSide
	defer ss.Close()
	time.Sleep(50 * time.Millisecond)
	// Second request fills the 1-deep queue.
	go invoke()
	time.Sleep(50 * time.Millisecond)

	// Third request meets the saturated queue.
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Invoke(ctx, "s1", Request{Service: "svc", Type: "op"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Invoke under saturated queue = %v, want context.DeadlineExceeded", err)
	}
	if errors.Is(err, ErrUnreachable) {
		t.Fatalf("saturated queue misreported as unreachable: %v", err)
	}
	if waited := time.Since(start); waited < 100*time.Millisecond {
		t.Fatalf("Invoke gave up after %v: failed fast instead of waiting out its deadline", waited)
	}

	// Tear down; the two wedged invokes must resolve (with connection-lost
	// errors), not leak.
	client.Close()
	for i := 0; i < 2; i++ {
		select {
		case <-background:
		case <-time.After(2 * time.Second):
			t.Fatal("wedged invoke did not resolve after Close")
		}
	}
}

// TestCodecStatsSnapshotRace hammers the counters from encoder, recorder,
// snapshot, and reset goroutines simultaneously. The -race CI job pins that
// CodecStats readers never tear against concurrent writers.
func TestCodecStatsSnapshotRace(t *testing.T) {
	// Not parallel: ResetCodecStats would clobber other counter tests' deltas.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			enc := newFrameEncoder(WireBinary, io.Discard)
			envs := sampleEnvelopes()
			for i := 0; i < 300; i++ {
				if err := enc.encodeRequestBatch(envs); err != nil {
					t.Error(err)
					return
				}
				if err := enc.flush(); err != nil {
					t.Error(err)
					return
				}
				RecordReadRounds(1+i%2, i%2 == 0)
			}
		}()
	}
	for r := 0; r < 3; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				u := CodecStats()
				if u.ReadRounds < 0 || u.FramesBatched < 0 {
					t.Errorf("snapshot went negative: %+v", u)
					return
				}
				if r == 0 && i%100 == 99 {
					ResetCodecStats()
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkTCPInvokeConcurrent measures raw concurrent Invoke throughput over
// one real loopback connection, batched vs unbatched — the isolated cost of
// the writer path's coalescing decision, with no storage stack on top.
func BenchmarkTCPInvokeConcurrent(b *testing.B) {
	for _, batching := range []bool{true, false} {
		name := "batched"
		if !batching {
			name = "unbatched"
		}
		b.Run(name, func(b *testing.B) {
			srv, err := NewTCPServer("s1", "127.0.0.1:0", echoHandler(nil), WithBatching(batching))
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}), WithBatching(batching))
			defer client.Close()
			payload := bytes.Repeat([]byte("x"), 256)
			req := Request{Service: "bench", Type: "echo", Payload: payload}
			b.SetParallelism(32)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := client.Invoke(context.Background(), "s1", req); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
