// Package transport provides the asynchronous message-passing substrate the
// ARES model assumes (§2): point-to-point reliable channels between client
// and server processes.
//
// Two implementations are provided:
//
//   - Simnet: an in-memory network with a configurable per-message latency
//     model. Message delays are drawn uniformly from [d, D], matching the
//     minimum/maximum delivery delays the paper's latency analysis (§4.4,
//     Appendix D) is parameterized on. Per-process delay classes, crash
//     failures, partitions, and wire-byte accounting are supported.
//
//   - TCP: a length-delimited gob protocol over real sockets for local
//     multi-process deployments (cmd/ares-server and friends).
//
// All protocol exchanges are request/response: a client invokes a typed
// request against a destination process and receives a response. Quorum
// collection on top of Invoke is provided by Gather.
package transport

import (
	"context"
	"errors"
	"fmt"

	"github.com/ares-storage/ares/internal/types"
)

// Request is a protocol message addressed to a service instance on a server.
type Request struct {
	// Service names the protocol family, e.g. "treas", "abd", "recon", "paxos".
	Service string
	// Key names the object (register) the message concerns. Servers host one
	// keyed service per protocol family and route on (service, key, config);
	// the empty key addresses a deployment's default register.
	Key string
	// Config identifies the configuration whose per-key state is addressed.
	Config string
	// Type is the message type within the service, e.g. "query-tag".
	Type string
	// Payload is the gob-encoded message body.
	Payload []byte
}

// Response carries a service's reply.
type Response struct {
	// OK is false when the service reports an application-level error.
	OK bool
	// Err holds the error text when OK is false.
	Err string
	// Payload is the gob-encoded response body.
	Payload []byte
}

// OKResponse builds a successful response with the given encoded payload.
func OKResponse(payload []byte) Response {
	return Response{OK: true, Payload: payload}
}

// ErrResponse builds a failed response from an error.
func ErrResponse(err error) Response {
	return Response{OK: false, Err: err.Error()}
}

// Client sends requests to remote processes.
type Client interface {
	// Invoke delivers req to dst and waits for its response. It returns an
	// error when the context expires or the destination is unreachable;
	// service-level failures come back inside the Response.
	Invoke(ctx context.Context, dst types.ProcessID, req Request) (Response, error)
}

// Handler processes inbound requests at a server.
type Handler interface {
	HandleRequest(from types.ProcessID, req Request) Response
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from types.ProcessID, req Request) Response

// HandleRequest implements Handler.
func (f HandlerFunc) HandleRequest(from types.ProcessID, req Request) Response {
	return f(from, req)
}

// ErrUnreachable reports that the destination process cannot be contacted
// (crashed, partitioned, or unknown to the network).
var ErrUnreachable = errors.New("transport: destination unreachable")

// ErrServiceFailure wraps an application-level error carried in a Response.
var ErrServiceFailure = errors.New("transport: service failure")

// ResponseError converts a failed Response into an error; it returns nil for
// successful responses.
func ResponseError(resp Response) error {
	if resp.OK {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrServiceFailure, resp.Err)
}
