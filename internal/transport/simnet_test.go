package transport

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

// echoHandler responds with the request payload and records the caller.
func echoHandler(lastFrom *atomic.Value) Handler {
	return HandlerFunc(func(from types.ProcessID, req Request) Response {
		if lastFrom != nil {
			lastFrom.Store(from)
		}
		return OKResponse(req.Payload)
	})
}

func TestSimnetRoundTrip(t *testing.T) {
	t.Parallel()
	net := NewSimnet()
	var from atomic.Value
	net.Register("s1", echoHandler(&from))

	client := net.Client("c1")
	resp, err := client.Invoke(context.Background(), "s1", Request{
		Service: "test", Type: "echo", Payload: []byte("ping"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || string(resp.Payload) != "ping" {
		t.Fatalf("resp = %+v", resp)
	}
	if got := from.Load().(types.ProcessID); got != "c1" {
		t.Fatalf("handler saw sender %q, want c1", got)
	}
}

func TestSimnetUnknownDestinationBlocks(t *testing.T) {
	t.Parallel()
	net := NewSimnet()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := net.Client("c1").Invoke(ctx, "ghost", Request{Service: "t", Type: "x"})
	if err == nil {
		t.Fatal("Invoke to unknown process succeeded, want block until ctx expiry")
	}
}

func TestSimnetCrashAndRestart(t *testing.T) {
	t.Parallel()
	net := NewSimnet()
	net.Register("s1", echoHandler(nil))
	net.Crash("s1")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := net.Client("c1").Invoke(ctx, "s1", Request{}); err == nil {
		t.Fatal("Invoke to crashed server succeeded")
	}

	net.Restart("s1")
	if _, err := net.Client("c1").Invoke(context.Background(), "s1", Request{}); err != nil {
		t.Fatalf("Invoke after restart: %v", err)
	}
}

func TestSimnetBlockLink(t *testing.T) {
	t.Parallel()
	net := NewSimnet()
	net.Register("s1", echoHandler(nil))
	net.BlockLink("c1", "s1")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := net.Client("c1").Invoke(ctx, "s1", Request{}); err == nil {
		t.Fatal("Invoke over blocked link succeeded")
	}
	// Other clients are unaffected.
	if _, err := net.Client("c2").Invoke(context.Background(), "s1", Request{}); err != nil {
		t.Fatalf("unblocked client: %v", err)
	}

	net.UnblockLink("c1", "s1")
	if _, err := net.Client("c1").Invoke(context.Background(), "s1", Request{}); err != nil {
		t.Fatalf("after unblock: %v", err)
	}
}

func TestSimnetDelayBounds(t *testing.T) {
	t.Parallel()
	const d, D = 5 * time.Millisecond, 15 * time.Millisecond
	net := NewSimnet(WithDelayRange(d, D), WithSeed(7))
	net.Register("s1", echoHandler(nil))
	client := net.Client("c1")

	for i := 0; i < 10; i++ {
		start := time.Now()
		if _, err := client.Invoke(context.Background(), "s1", Request{}); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		// A round trip is two one-way delays: within [2d, 2D] plus scheduling.
		if elapsed < 2*d {
			t.Fatalf("round trip %v faster than 2d = %v", elapsed, 2*d)
		}
		if elapsed > 2*D+50*time.Millisecond {
			t.Fatalf("round trip %v much slower than 2D = %v", elapsed, 2*D)
		}
	}
}

func TestSimnetPerProcessDelayOverride(t *testing.T) {
	t.Parallel()
	net := NewSimnet(WithDelayRange(40*time.Millisecond, 40*time.Millisecond))
	net.Register("s1", echoHandler(nil))
	// The fast client models the paper's reconfigurer enjoying delay d while
	// everyone else suffers D.
	net.SetProcessDelay("fast", Fixed(time.Millisecond))

	start := time.Now()
	if _, err := net.Client("fast").Invoke(context.Background(), "s1", Request{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Millisecond {
		t.Fatalf("fast client round trip took %v, want ~2ms", elapsed)
	}

	start = time.Now()
	if _, err := net.Client("slow").Invoke(context.Background(), "s1", Request{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("slow client round trip took %v, want >= 80ms", elapsed)
	}
}

func TestSimnetCounters(t *testing.T) {
	t.Parallel()
	net := NewSimnet()
	net.Register("s1", HandlerFunc(func(types.ProcessID, Request) Response {
		return OKResponse(make([]byte, 100))
	}))
	client := net.Client("c1")
	for i := 0; i < 3; i++ {
		if _, err := client.Invoke(context.Background(), "s1", Request{
			Service: "svc", Type: "op", Payload: make([]byte, 10),
		}); err != nil {
			t.Fatal(err)
		}
	}
	c := net.Counters()
	if got := c.TotalMessages("svc"); got != 6 {
		t.Fatalf("TotalMessages = %d, want 6 (3 requests + 3 responses)", got)
	}
	if got := c.TotalBytes("svc"); got != 3*10+3*100 {
		t.Fatalf("TotalBytes = %d, want 330", got)
	}
	snap := c.Snapshot()
	if snap["svc/op/req"].Messages != 3 || snap["svc/op/resp"].Bytes != 300 {
		t.Fatalf("snapshot = %+v", snap)
	}
	c.Reset()
	if c.TotalMessages("") != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestSimnetContextCancellationDuringDelay(t *testing.T) {
	t.Parallel()
	net := NewSimnet(WithDelayRange(time.Second, time.Second))
	net.Register("s1", echoHandler(nil))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := net.Client("c1").Invoke(ctx, "s1", Request{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("cancellation did not interrupt the delay promptly")
	}
}

func TestResponseError(t *testing.T) {
	t.Parallel()
	if err := ResponseError(OKResponse(nil)); err != nil {
		t.Fatalf("ResponseError(ok) = %v", err)
	}
	err := ResponseError(ErrResponse(errors.New("boom")))
	if !errors.Is(err, ErrServiceFailure) {
		t.Fatalf("err = %v, want ErrServiceFailure", err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	t.Parallel()
	type body struct {
		A int
		B string
		C []byte
	}
	in := body{A: 7, B: "hi", C: []byte{1, 2, 3}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out body
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.A != in.A || out.B != in.B || len(out.C) != 3 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	t.Parallel()
	var out struct{ X int }
	if err := Unmarshal([]byte{0xff, 0x00, 0x13}, &out); err == nil {
		t.Fatal("Unmarshal of garbage succeeded")
	}
}
