package transport

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

// DelayRange bounds one-way message delivery delay: every message takes a
// duration drawn uniformly from [Min, Max]. This realizes the d/D model of
// the paper's latency analysis.
type DelayRange struct {
	Min time.Duration
	Max time.Duration
}

// Fixed returns a degenerate range delivering every message in exactly d.
func Fixed(d time.Duration) DelayRange {
	return DelayRange{Min: d, Max: d}
}

// SimnetOption configures a Simnet.
type SimnetOption func(*Simnet)

// WithDelayRange sets the default per-message delay range [d, D].
func WithDelayRange(min, max time.Duration) SimnetOption {
	return func(n *Simnet) { n.defaultDelay = DelayRange{Min: min, Max: max} }
}

// WithSeed seeds the delay sampler for reproducible executions.
func WithSeed(seed int64) SimnetOption {
	return func(n *Simnet) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithBandwidth adds a deterministic size-dependent term to every delivery:
// perByte per payload byte, applied to the request leg and the response leg
// independently. The [d, D] range models propagation delay; this models link
// bandwidth (1 µs/byte ≈ 8 Mbit/s). It is what makes object-size experiments
// honest on the simulated network: moving a full replica of a large value
// costs proportionally more than moving an erasure-coded fragment of it,
// exactly the trade the ABD-vs-TREAS choice is about.
func WithBandwidth(perByte time.Duration) SimnetOption {
	return func(n *Simnet) { n.perByte = perByte }
}

// WithSimBatching mirrors the TCP cross-key envelope coalescing seam in
// simulated delivery: concurrent requests bound for one destination are
// queued per destination, packed through the real binary FrameBatch
// codec (so simulated runs exercise identical pack/unpack semantics and
// the same CodecStats batch counters), then dispatched individually to the
// handler. The chaos matrix uses it to prove coalescing preserves per-key
// linearizability under faults.
func WithSimBatching() SimnetOption {
	return func(n *Simnet) { n.batching = true }
}

// LinkFaults describes adversarial behaviour injected on a directed link,
// beyond the blunt all-or-nothing of BlockLink. The chaos scheduler
// (internal/chaos) mutates these over time to build nemesis executions.
//
// Drop and Dup are per-message probabilities in [0, 1]. Extra is an
// additional delay range added on top of the link's sampled [d, D] delay —
// the "delay spike beyond [d, D]" the paper's worst-case constructions rely
// on. The zero value injects nothing.
type LinkFaults struct {
	// Drop is the probability a message on the link is lost. A dropped
	// request fails the sender's Invoke immediately with ErrUnreachable
	// (the TCP transport surfaces loss as a reset), so quorum logic routes
	// around it; a dropped response is lost after the handler has already
	// executed — the caller errors but the server-side effect stands.
	Drop float64
	// Dup is the probability a delivered request is delivered a second
	// time (after an independently sampled delay); the duplicate's
	// response is discarded. Protocol handlers must be idempotent.
	Dup float64
	// Extra widens the link's delay: every message additionally waits a
	// duration drawn uniformly from [Extra.Min, Extra.Max].
	Extra DelayRange
}

// Simnet is an in-memory network connecting simulated processes. Handlers
// registered for server processes are invoked on the caller's goroutine
// after the sampled request delay; responses incur an independent delay.
//
// The zero value is not usable; construct with NewSimnet.
type Simnet struct {
	mu            sync.RWMutex
	handlers      map[types.ProcessID]Handler
	crashed       map[types.ProcessID]bool
	processDelay  map[types.ProcessID]DelayRange
	linkBlocked   map[linkKey]bool
	linkFaults    map[linkKey]LinkFaults
	defaultFaults LinkFaults
	defaultDelay  DelayRange
	perByte       time.Duration

	// faultsOn short-circuits the per-message fault lookups: it is true
	// iff any per-link entry or a non-zero default is installed, so the
	// fault-free hot path (every benchmark, most tests) pays one atomic
	// load instead of extra RLock acquisitions per message.
	faultsOn atomic.Bool

	rngMu sync.Mutex
	rng   *rand.Rand

	counters *Counters

	// batching enables the per-destination coalescing seam (see
	// WithSimBatching); batchers holds one lazily created queue per
	// destination.
	batching bool
	batchMu  sync.Mutex
	batchers map[types.ProcessID]*simBatcher

	// inflight tracks background deliveries of messages whose sender gave
	// up waiting (reliable channels still deliver them). Quiesce waits.
	inflight sync.WaitGroup

	// Timer-fidelity pump. Message delays are realized with runtime timers,
	// and timer wakeups become very imprecise when every P in the process is
	// parked — measured overshoot of several hundred µs on sub-ms delays,
	// which swamps the [d, D] model the latency experiments depend on. The
	// pump is one goroutine that stays runnable (yield-spinning) while any
	// delay sleep is pending, so the scheduler keeps checking timer heaps
	// and deliveries fire close to their deadlines. It parks on pumpWake
	// when no sleeps are pending and is never started on zero-delay
	// networks (unit tests), which perform no delay sleeps at all.
	// Without Close, a started pump parks on pumpWake when idle — one
	// parked goroutine pinning the Simnet for the process lifetime, which
	// is fine for test and benchmark processes but wrong for anything
	// long-lived that churns networks.
	sleeping  atomic.Int64
	pumpWake  chan struct{}
	pumpStop  chan struct{}
	pumpOnce  sync.Once
	closeOnce sync.Once
}

type linkKey struct {
	from, to types.ProcessID
}

// NewSimnet constructs an in-memory network. With no options, delivery is
// immediate (zero delay), which is what unit tests want; latency experiments
// configure [d, D] explicitly.
func NewSimnet(opts ...SimnetOption) *Simnet {
	n := &Simnet{
		handlers:     make(map[types.ProcessID]Handler),
		crashed:      make(map[types.ProcessID]bool),
		processDelay: make(map[types.ProcessID]DelayRange),
		linkBlocked:  make(map[linkKey]bool),
		linkFaults:   make(map[linkKey]LinkFaults),
		rng:          rand.New(rand.NewSource(1)),
		counters:     NewCounters(),
		batchers:     make(map[types.ProcessID]*simBatcher),
		pumpWake:     make(chan struct{}, 1),
		pumpStop:     make(chan struct{}),
	}
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// Register installs the handler for a server process. Re-registering
// replaces the previous handler (used when a node restarts).
func (n *Simnet) Register(id types.ProcessID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[id] = h
}

// Deregister removes a process's handler entirely.
func (n *Simnet) Deregister(id types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.handlers, id)
}

// Crash marks a process as crash-failed: requests to it hang until the
// caller's context expires, mirroring a crashed server in the asynchronous
// model (a crashed process is indistinguishable from a slow one).
//
// Crash is idempotent: crashing an already-crashed process is a no-op. The
// process's handler — and therefore all of its state — is retained, so a
// later Restart models crash-recovery with stable storage: the server
// resumes serving exactly the tags/values it held at the crash point.
func (n *Simnet) Crash(id types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Restart clears a crash mark, bringing the process back with the state its
// handler retained (see Crash). Restart is idempotent: restarting a live
// (or never-crashed) process is a no-op.
func (n *Simnet) Restart(id types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

// Crashed reports whether id is currently marked crash-failed.
func (n *Simnet) Crashed(id types.ProcessID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.crashed[id]
}

// BlockLink blocks the directed link from → to: messages from 'from' to
// 'to' are dropped, while the reverse direction to → from is unaffected.
// Blocking is one-way by design — asymmetric faults (requests lost but
// responses deliverable, or vice versa) are exactly the executions that
// distinguish quorum protocols from primary-backup ones. For a symmetric
// cut use Partition. BlockLink is idempotent.
func (n *Simnet) BlockLink(from, to types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkBlocked[linkKey{from, to}] = true
}

// UnblockLink re-enables a previously blocked link (one direction, matching
// BlockLink). Idempotent.
func (n *Simnet) UnblockLink(from, to types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.linkBlocked, linkKey{from, to})
}

// LinkBlocked reports whether the directed link from → to is blocked.
func (n *Simnet) LinkBlocked(from, to types.ProcessID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.linkBlocked[linkKey{from, to}]
}

// Partition cuts every link between a process in groupA and a process in
// groupB, in both directions — the symmetric network partition of the
// nemesis literature. Processes absent from both groups keep full
// connectivity, and links within a group are untouched. Undo with Heal.
func (n *Simnet) Partition(groupA, groupB []types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, a := range groupA {
		for _, b := range groupB {
			n.linkBlocked[linkKey{a, b}] = true
			n.linkBlocked[linkKey{b, a}] = true
		}
	}
}

// Heal removes the cross-group blocks a Partition of the same groups
// installed (both directions). Links blocked individually via BlockLink
// between the groups are unblocked too — Heal means "these two groups can
// talk again".
func (n *Simnet) Heal(groupA, groupB []types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, a := range groupA {
		for _, b := range groupB {
			delete(n.linkBlocked, linkKey{a, b})
			delete(n.linkBlocked, linkKey{b, a})
		}
	}
}

// SetLinkFaults installs drop/duplication/delay-spike faults on the
// directed link from → to, replacing any previous setting for that link.
// The setting overrides the network default (SetDefaultLinkFaults) even
// when zero — a zero LinkFaults shields the link from the default. Remove
// the override with ClearLinkFault.
func (n *Simnet) SetLinkFaults(from, to types.ProcessID, f LinkFaults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkFaults[linkKey{from, to}] = f
	n.recomputeFaultsOn()
}

// ClearLinkFault removes the per-link fault override from → to, returning
// the link to the network default.
func (n *Simnet) ClearLinkFault(from, to types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.linkFaults, linkKey{from, to})
	n.recomputeFaultsOn()
}

// SetDefaultLinkFaults installs faults applied to every link that has no
// per-link override — the "10% global message loss" style of scenario.
// A zero LinkFaults disables the default.
func (n *Simnet) SetDefaultLinkFaults(f LinkFaults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaultFaults = f
	n.recomputeFaultsOn()
}

// ClearLinkFaults removes every per-link fault and the default — the "heal
// everything" step at the end of a fault window. Blocked links and crash
// marks are unaffected.
func (n *Simnet) ClearLinkFaults() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkFaults = make(map[linkKey]LinkFaults)
	n.defaultFaults = LinkFaults{}
	n.recomputeFaultsOn()
}

// recomputeFaultsOn refreshes the hot-path guard; callers hold n.mu.
func (n *Simnet) recomputeFaultsOn() {
	n.faultsOn.Store(len(n.linkFaults) > 0 || n.defaultFaults != LinkFaults{})
}

// faultsFor resolves the faults governing a directed link: the per-link
// setting when present, the network default otherwise. The zero value
// comes back without taking the lock when no faults are installed at all.
func (n *Simnet) faultsFor(from, to types.ProcessID) LinkFaults {
	if !n.faultsOn.Load() {
		return LinkFaults{}
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	if f, ok := n.linkFaults[linkKey{from, to}]; ok {
		return f
	}
	return n.defaultFaults
}

// roll draws a uniform [0, 1) sample from the seeded RNG.
func (n *Simnet) roll() float64 {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rng.Float64()
}

// sampleRange draws from an arbitrary delay range using the seeded RNG.
func (n *Simnet) sampleRange(r DelayRange) time.Duration {
	if r.Max <= r.Min {
		return r.Min
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return r.Min + time.Duration(n.rng.Int63n(int64(r.Max-r.Min)+1))
}

// SetProcessDelay overrides the delay range for every message a process
// sends or receives. This realizes the paper's worst-case constructions
// where reconfiguration clients enjoy delay d while readers/writers suffer D
// (§4.4). The initiator's override wins when both endpoints have one.
func (n *Simnet) SetProcessDelay(id types.ProcessID, r DelayRange) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.processDelay[id] = r
}

// Counters exposes the byte/message accounting for cost experiments.
func (n *Simnet) Counters() *Counters { return n.counters }

// Quiesce blocks until every in-flight background delivery has completed —
// what "the network drains" means for tests asserting on server state that
// quorum-completed operations may still be propagating to stragglers.
func (n *Simnet) Quiesce() {
	n.inflight.Wait()
}

// Client returns the network endpoint for process id. The returned client is
// safe for concurrent use.
func (n *Simnet) Client(id types.ProcessID) Client {
	return &simClient{net: n, self: id}
}

// startSleep registers a pending delay sleep, starting (or waking) the pump.
// Callers must pair it with a deferred endSleep.
func (n *Simnet) startSleep() {
	n.pumpOnce.Do(func() { go n.pumpLoop() })
	if n.sleeping.Add(1) == 1 {
		select {
		case n.pumpWake <- struct{}{}:
		default:
		}
	}
}

func (n *Simnet) endSleep() {
	n.sleeping.Add(-1)
}

// Close retires the network's pump goroutine. The network remains usable,
// but later delay sleeps run without fidelity help; call it only when done
// with the network. Close is safe to call multiple times and without a pump
// ever having started.
func (n *Simnet) Close() {
	n.closeOnce.Do(func() { close(n.pumpStop) })
}

// pumpLoop yield-spins while delay sleeps are pending and parks otherwise.
// See the Simnet field comment for why this exists.
func (n *Simnet) pumpLoop() {
	for {
		if n.sleeping.Load() > 0 {
			runtime.Gosched()
			select {
			case <-n.pumpStop:
				return
			default:
			}
			continue
		}
		select {
		case <-n.pumpWake:
		case <-n.pumpStop:
			return
		}
	}
}

// sleep pauses for d (a sampled message delay) with the pump engaged, unless
// the context expires first. Zero delays return immediately and never touch
// the pump.
func (n *Simnet) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	n.startSleep()
	defer n.endSleep()
	return sleepCtx(ctx, d)
}

// sleepBackground pauses for d with the pump engaged, with no cancellation —
// the background-delivery wait of a message whose sender stopped waiting.
func (n *Simnet) sleepBackground(d time.Duration) {
	if d <= 0 {
		return
	}
	n.startSleep()
	defer n.endSleep()
	time.Sleep(d)
}

// sample draws the base delay for a message travelling from -> to (the
// process-delay resolution keeps the initiator-wins rule of
// SetProcessDelay). Fault-injected delay spikes are directional and added
// per leg via extraFor, because the resolution direction and the message
// direction differ on the response leg.
func (n *Simnet) sample(from, to types.ProcessID) time.Duration {
	n.mu.RLock()
	r, ok := n.processDelay[from]
	if !ok {
		r, ok = n.processDelay[to]
	}
	if !ok {
		r = n.defaultDelay
	}
	n.mu.RUnlock()
	return n.sampleRange(r)
}

// xfer is the bandwidth term for a payload of n bytes (zero without
// WithBandwidth). It is deterministic — bandwidth is a property of the link,
// not a random variable — so replays under one seed stay byte-exact.
func (n *Simnet) xfer(payloadLen int) time.Duration {
	return time.Duration(payloadLen) * n.perByte
}

// extraFor draws the fault-injected delay spike for one message on the
// directed link from → to; zero when the link has no Extra configured.
func (n *Simnet) extraFor(from, to types.ProcessID) time.Duration {
	f := n.faultsFor(from, to)
	if f.Extra.Min <= 0 && f.Extra.Max <= 0 {
		return 0
	}
	return n.sampleRange(f.Extra)
}

func (n *Simnet) lookup(id types.ProcessID) (Handler, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.crashed[id] {
		return nil, false
	}
	h, ok := n.handlers[id]
	return h, ok
}

func (n *Simnet) blocked(from, to types.ProcessID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.crashed[from] || n.linkBlocked[linkKey{from, to}]
}

// simBatcher is one destination's coalescing queue. The first arrival whose
// enqueue finds the batcher idle becomes responsible for starting the
// drainer; everyone waits on their per-delivery channel.
type simBatcher struct {
	mu     sync.Mutex
	queue  []simDelivery
	active bool
}

type simDelivery struct {
	env  tcpEnvelope
	resp chan simResult
}

// simResult mirrors lookup's (Handler, bool): ok is false when the
// destination is crashed or unknown, in which case the caller hangs on its
// context exactly as the unbatched path does.
type simResult struct {
	resp Response
	ok   bool
}

func (n *Simnet) batcherFor(dst types.ProcessID) *simBatcher {
	n.batchMu.Lock()
	defer n.batchMu.Unlock()
	b, ok := n.batchers[dst]
	if !ok {
		b = &simBatcher{}
		n.batchers[dst] = b
	}
	return b
}

// deliver hands a request that survived the send-side delay and fault legs
// to the destination's handler. Without batching it is a direct call on the
// caller's goroutine; with batching the request joins the destination's
// coalescing queue. (Background and duplicate deliveries always use the
// direct path: their senders are gone, so there is nothing to coalesce
// against and no response to route.)
func (n *Simnet) deliver(from, dst types.ProcessID, req Request) (Response, bool) {
	if !n.batching {
		h, ok := n.lookup(dst)
		if !ok {
			return Response{}, false
		}
		return h.HandleRequest(from, req), true
	}
	b := n.batcherFor(dst)
	d := simDelivery{env: tcpEnvelope{From: from, Req: req}, resp: make(chan simResult, 1)}
	b.mu.Lock()
	b.queue = append(b.queue, d)
	drain := !b.active
	if drain {
		b.active = true
	}
	b.mu.Unlock()
	if drain {
		go n.drainBatcher(dst, b)
	}
	r := <-d.resp
	return r.resp, r.ok
}

// drainBatcher repeatedly claims the whole queue — everything concurrent
// callers managed to enqueue, across all keys — and dispatches it in chunks
// bounded by the TCP writer's batch caps, until the queue stays empty.
func (n *Simnet) drainBatcher(dst types.ProcessID, b *simBatcher) {
	for {
		b.mu.Lock()
		queue := b.queue
		b.queue = nil
		if len(queue) == 0 {
			b.active = false
			b.mu.Unlock()
			return
		}
		b.mu.Unlock()
		for len(queue) > 0 {
			chunk := queue
			size := 0
			for i := range chunk {
				if i >= defaultBatchEnvelopes || (i > 0 && size >= defaultBatchBytes) {
					chunk = queue[:i]
					break
				}
				size += requestWireSize(chunk[i].env)
			}
			queue = queue[len(chunk):]
			n.dispatchChunk(dst, chunk)
		}
	}
}

// dispatchChunk runs one chunk through the real binary batch codec — the
// exact pack/unpack the TCP data plane performs, counted in the same
// CodecStats — then invokes the handler once per decoded envelope,
// concurrently, mirroring the TCP server's handler pool.
func (n *Simnet) dispatchChunk(dst types.ProcessID, chunk []simDelivery) {
	envs := make([]tcpEnvelope, len(chunk))
	for i, d := range chunk {
		env := d.env
		env.ID = uint64(i)
		envs[i] = env
	}
	var buf bytes.Buffer
	enc := newFrameEncoder(WireBinary, &buf)
	decoded := make([]tcpEnvelope, len(envs))
	ok := enc.encodeRequestBatch(envs) == nil && enc.flush() == nil
	if ok {
		dec := newFrameDecoder(WireBinary, &buf)
		for i := range decoded {
			if dec.decodeRequest(&decoded[i]) != nil {
				ok = false
				break
			}
		}
	}
	if !ok {
		// A pack/unpack failure here is a codec bug, not a simulated fault;
		// deliver the originals so the simulation fails loudly in the
		// protocol layer instead of wedging every caller.
		copy(decoded, envs)
	}
	for i := range chunk {
		go func(i int) {
			h, hok := n.lookup(dst)
			if !hok {
				chunk[i].resp <- simResult{}
				return
			}
			env := decoded[i]
			chunk[i].resp <- simResult{resp: h.HandleRequest(env.From, env.Req), ok: true}
		}(i)
	}
}

type simClient struct {
	net  *Simnet
	self types.ProcessID
}

var _ Client = (*simClient)(nil)

// Invoke implements Client. A request to a crashed or partitioned process
// blocks until ctx is done — in an asynchronous system the caller can never
// distinguish "crashed" from "slow", so protocols must rely on quorums.
func (c *simClient) Invoke(ctx context.Context, dst types.ProcessID, req Request) (Response, error) {
	// No early ctx check: in the model, sending to all servers is part of
	// the operation's invocation step, so the message departs even when the
	// caller is about to stop waiting; delivery then completes in the
	// background (reliable channels).
	net := c.net
	if net.blocked(c.self, dst) {
		<-ctx.Done()
		return Response{}, fmt.Errorf("%w: %s (send blocked)", ErrUnreachable, dst)
	}
	reqFaults := net.faultsFor(c.self, dst)
	if reqFaults.Drop > 0 && net.roll() < reqFaults.Drop {
		// Request lost on the wire. Fail fast (a detected omission, the way
		// the TCP transport surfaces a reset) so the sender's quorum logic
		// can route around the loss instead of stalling on it.
		return Response{}, fmt.Errorf("%w: %s (request dropped)", ErrUnreachable, dst)
	}
	net.counters.Record(req.Service, req.Type, dirRequest, len(req.Payload))
	if reqFaults.Dup > 0 && net.roll() < reqFaults.Dup {
		// Duplicate delivery: the same request arrives a second time after an
		// independently sampled delay; its response is discarded. Handlers
		// must be idempotent (every ARES service is tag-monotonic).
		dupReq := req
		net.inflight.Add(1)
		go func() {
			defer net.inflight.Done()
			net.sleepBackground(net.sample(c.self, dst) + net.extraFor(c.self, dst) + net.xfer(len(dupReq.Payload)))
			if h, ok := net.lookup(dst); ok {
				net.counters.Record(dupReq.Service, dupReq.Type, dirRequest, len(dupReq.Payload))
				resp := h.HandleRequest(c.self, dupReq)
				net.counters.Record(dupReq.Service, dupReq.Type, dirResponse, len(resp.Payload))
			}
		}()
	}
	reqDelay := net.sample(c.self, dst) + net.extraFor(c.self, dst) + net.xfer(len(req.Payload))
	sendTime := time.Now()
	if err := net.sleep(ctx, reqDelay); err != nil {
		// The channels of the model (§2) are reliable: a message already on
		// the wire reaches its destination even though this sender stopped
		// waiting (e.g. its quorum completed elsewhere). Deliver in the
		// background and discard the response.
		remaining := reqDelay - time.Since(sendTime)
		net.inflight.Add(1)
		go func() {
			defer net.inflight.Done()
			net.sleepBackground(remaining)
			if h, ok := net.lookup(dst); ok {
				resp := h.HandleRequest(c.self, req)
				net.counters.Record(req.Service, req.Type, dirResponse, len(resp.Payload))
			}
		}()
		return Response{}, err
	}
	resp, ok := net.deliver(c.self, dst, req)
	if !ok {
		// Crashed or unknown destination: the message is lost in the void.
		<-ctx.Done()
		return Response{}, fmt.Errorf("%w: %s", ErrUnreachable, dst)
	}
	if net.blocked(dst, c.self) {
		<-ctx.Done()
		return Response{}, fmt.Errorf("%w: %s (response blocked)", ErrUnreachable, dst)
	}
	if respFaults := net.faultsFor(dst, c.self); respFaults.Drop > 0 && net.roll() < respFaults.Drop {
		// Response lost after the handler executed: the server-side effect
		// stands (the message was delivered) but the caller learns nothing —
		// the classic "did my write land?" ambiguity of lossy networks.
		return Response{}, fmt.Errorf("%w: %s (response dropped)", ErrUnreachable, dst)
	}
	net.counters.Record(req.Service, req.Type, dirResponse, len(resp.Payload))
	// The response is a dst → c.self message: its spike comes from that
	// direction's faults (the base delay keeps initiator-first resolution).
	if err := net.sleep(ctx, net.sample(c.self, dst)+net.extraFor(dst, c.self)+net.xfer(len(resp.Payload))); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// sleepCtx sleeps for d unless the context expires first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
