package transport

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

// DelayRange bounds one-way message delivery delay: every message takes a
// duration drawn uniformly from [Min, Max]. This realizes the d/D model of
// the paper's latency analysis.
type DelayRange struct {
	Min time.Duration
	Max time.Duration
}

// Fixed returns a degenerate range delivering every message in exactly d.
func Fixed(d time.Duration) DelayRange {
	return DelayRange{Min: d, Max: d}
}

// SimnetOption configures a Simnet.
type SimnetOption func(*Simnet)

// WithDelayRange sets the default per-message delay range [d, D].
func WithDelayRange(min, max time.Duration) SimnetOption {
	return func(n *Simnet) { n.defaultDelay = DelayRange{Min: min, Max: max} }
}

// WithSeed seeds the delay sampler for reproducible executions.
func WithSeed(seed int64) SimnetOption {
	return func(n *Simnet) { n.rng = rand.New(rand.NewSource(seed)) }
}

// Simnet is an in-memory network connecting simulated processes. Handlers
// registered for server processes are invoked on the caller's goroutine
// after the sampled request delay; responses incur an independent delay.
//
// The zero value is not usable; construct with NewSimnet.
type Simnet struct {
	mu           sync.RWMutex
	handlers     map[types.ProcessID]Handler
	crashed      map[types.ProcessID]bool
	processDelay map[types.ProcessID]DelayRange
	linkBlocked  map[linkKey]bool
	defaultDelay DelayRange

	rngMu sync.Mutex
	rng   *rand.Rand

	counters *Counters

	// inflight tracks background deliveries of messages whose sender gave
	// up waiting (reliable channels still deliver them). Quiesce waits.
	inflight sync.WaitGroup

	// Timer-fidelity pump. Message delays are realized with runtime timers,
	// and timer wakeups become very imprecise when every P in the process is
	// parked — measured overshoot of several hundred µs on sub-ms delays,
	// which swamps the [d, D] model the latency experiments depend on. The
	// pump is one goroutine that stays runnable (yield-spinning) while any
	// delay sleep is pending, so the scheduler keeps checking timer heaps
	// and deliveries fire close to their deadlines. It parks on pumpWake
	// when no sleeps are pending and is never started on zero-delay
	// networks (unit tests), which perform no delay sleeps at all.
	// Without Close, a started pump parks on pumpWake when idle — one
	// parked goroutine pinning the Simnet for the process lifetime, which
	// is fine for test and benchmark processes but wrong for anything
	// long-lived that churns networks.
	sleeping  atomic.Int64
	pumpWake  chan struct{}
	pumpStop  chan struct{}
	pumpOnce  sync.Once
	closeOnce sync.Once
}

type linkKey struct {
	from, to types.ProcessID
}

// NewSimnet constructs an in-memory network. With no options, delivery is
// immediate (zero delay), which is what unit tests want; latency experiments
// configure [d, D] explicitly.
func NewSimnet(opts ...SimnetOption) *Simnet {
	n := &Simnet{
		handlers:     make(map[types.ProcessID]Handler),
		crashed:      make(map[types.ProcessID]bool),
		processDelay: make(map[types.ProcessID]DelayRange),
		linkBlocked:  make(map[linkKey]bool),
		rng:          rand.New(rand.NewSource(1)),
		counters:     NewCounters(),
		pumpWake:     make(chan struct{}, 1),
		pumpStop:     make(chan struct{}),
	}
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// Register installs the handler for a server process. Re-registering
// replaces the previous handler (used when a node restarts).
func (n *Simnet) Register(id types.ProcessID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[id] = h
}

// Deregister removes a process's handler entirely.
func (n *Simnet) Deregister(id types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.handlers, id)
}

// Crash marks a process as crash-failed: requests to it hang until the
// caller's context expires, mirroring a crashed server in the asynchronous
// model (a crashed process is indistinguishable from a slow one).
func (n *Simnet) Crash(id types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Restart clears a crash mark. State at the handler is whatever the service
// retained; ARES servers lose nothing because crash-recovery is out of scope,
// but tests use Restart to model transient unreachability.
func (n *Simnet) Restart(id types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

// BlockLink drops all messages from 'from' to 'to' (one direction).
func (n *Simnet) BlockLink(from, to types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkBlocked[linkKey{from, to}] = true
}

// UnblockLink re-enables a previously blocked link.
func (n *Simnet) UnblockLink(from, to types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.linkBlocked, linkKey{from, to})
}

// SetProcessDelay overrides the delay range for every message a process
// sends or receives. This realizes the paper's worst-case constructions
// where reconfiguration clients enjoy delay d while readers/writers suffer D
// (§4.4). The initiator's override wins when both endpoints have one.
func (n *Simnet) SetProcessDelay(id types.ProcessID, r DelayRange) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.processDelay[id] = r
}

// Counters exposes the byte/message accounting for cost experiments.
func (n *Simnet) Counters() *Counters { return n.counters }

// Quiesce blocks until every in-flight background delivery has completed —
// what "the network drains" means for tests asserting on server state that
// quorum-completed operations may still be propagating to stragglers.
func (n *Simnet) Quiesce() {
	n.inflight.Wait()
}

// Client returns the network endpoint for process id. The returned client is
// safe for concurrent use.
func (n *Simnet) Client(id types.ProcessID) Client {
	return &simClient{net: n, self: id}
}

// startSleep registers a pending delay sleep, starting (or waking) the pump.
// Callers must pair it with a deferred endSleep.
func (n *Simnet) startSleep() {
	n.pumpOnce.Do(func() { go n.pumpLoop() })
	if n.sleeping.Add(1) == 1 {
		select {
		case n.pumpWake <- struct{}{}:
		default:
		}
	}
}

func (n *Simnet) endSleep() {
	n.sleeping.Add(-1)
}

// Close retires the network's pump goroutine. The network remains usable,
// but later delay sleeps run without fidelity help; call it only when done
// with the network. Close is safe to call multiple times and without a pump
// ever having started.
func (n *Simnet) Close() {
	n.closeOnce.Do(func() { close(n.pumpStop) })
}

// pumpLoop yield-spins while delay sleeps are pending and parks otherwise.
// See the Simnet field comment for why this exists.
func (n *Simnet) pumpLoop() {
	for {
		if n.sleeping.Load() > 0 {
			runtime.Gosched()
			select {
			case <-n.pumpStop:
				return
			default:
			}
			continue
		}
		select {
		case <-n.pumpWake:
		case <-n.pumpStop:
			return
		}
	}
}

// sleep pauses for d (a sampled message delay) with the pump engaged, unless
// the context expires first. Zero delays return immediately and never touch
// the pump.
func (n *Simnet) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	n.startSleep()
	defer n.endSleep()
	return sleepCtx(ctx, d)
}

// sleepBackground pauses for d with the pump engaged, with no cancellation —
// the background-delivery wait of a message whose sender stopped waiting.
func (n *Simnet) sleepBackground(d time.Duration) {
	if d <= 0 {
		return
	}
	n.startSleep()
	defer n.endSleep()
	time.Sleep(d)
}

// sample draws a delay for a message travelling from -> to.
func (n *Simnet) sample(from, to types.ProcessID) time.Duration {
	n.mu.RLock()
	r, ok := n.processDelay[from]
	if !ok {
		r, ok = n.processDelay[to]
	}
	if !ok {
		r = n.defaultDelay
	}
	n.mu.RUnlock()
	if r.Max <= r.Min {
		return r.Min
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return r.Min + time.Duration(n.rng.Int63n(int64(r.Max-r.Min)+1))
}

func (n *Simnet) lookup(id types.ProcessID) (Handler, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.crashed[id] {
		return nil, false
	}
	h, ok := n.handlers[id]
	return h, ok
}

func (n *Simnet) blocked(from, to types.ProcessID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.crashed[from] || n.linkBlocked[linkKey{from, to}]
}

type simClient struct {
	net  *Simnet
	self types.ProcessID
}

var _ Client = (*simClient)(nil)

// Invoke implements Client. A request to a crashed or partitioned process
// blocks until ctx is done — in an asynchronous system the caller can never
// distinguish "crashed" from "slow", so protocols must rely on quorums.
func (c *simClient) Invoke(ctx context.Context, dst types.ProcessID, req Request) (Response, error) {
	// No early ctx check: in the model, sending to all servers is part of
	// the operation's invocation step, so the message departs even when the
	// caller is about to stop waiting; delivery then completes in the
	// background (reliable channels).
	net := c.net
	if net.blocked(c.self, dst) {
		<-ctx.Done()
		return Response{}, fmt.Errorf("%w: %s (send blocked)", ErrUnreachable, dst)
	}
	net.counters.Record(req.Service, req.Type, dirRequest, len(req.Payload))
	reqDelay := net.sample(c.self, dst)
	sendTime := time.Now()
	if err := net.sleep(ctx, reqDelay); err != nil {
		// The channels of the model (§2) are reliable: a message already on
		// the wire reaches its destination even though this sender stopped
		// waiting (e.g. its quorum completed elsewhere). Deliver in the
		// background and discard the response.
		remaining := reqDelay - time.Since(sendTime)
		net.inflight.Add(1)
		go func() {
			defer net.inflight.Done()
			net.sleepBackground(remaining)
			if h, ok := net.lookup(dst); ok {
				resp := h.HandleRequest(c.self, req)
				net.counters.Record(req.Service, req.Type, dirResponse, len(resp.Payload))
			}
		}()
		return Response{}, err
	}
	h, ok := net.lookup(dst)
	if !ok {
		// Crashed or unknown destination: the message is lost in the void.
		<-ctx.Done()
		return Response{}, fmt.Errorf("%w: %s", ErrUnreachable, dst)
	}
	resp := h.HandleRequest(c.self, req)
	if net.blocked(dst, c.self) {
		<-ctx.Done()
		return Response{}, fmt.Errorf("%w: %s (response blocked)", ErrUnreachable, dst)
	}
	net.counters.Record(req.Service, req.Type, dirResponse, len(resp.Payload))
	if err := net.sleep(ctx, net.sample(c.self, dst)); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// sleepCtx sleeps for d unless the context expires first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
