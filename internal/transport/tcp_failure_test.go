package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

// startBlockingTCPServer returns a server whose handler parks every request
// until release is closed — the shape needed to hold Invokes in flight.
func startBlockingTCPServer(t *testing.T, id types.ProcessID, addr string, release <-chan struct{}) *TCPServer {
	t.Helper()
	srv, err := NewTCPServer(id, addr, HandlerFunc(func(types.ProcessID, Request) Response {
		<-release
		return OKResponse(nil)
	}))
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestTCPConnectionLossFailsInflightInvokes kills a server while many
// Invokes are outstanding on one multiplexed connection and asserts every
// caller gets ErrUnreachable promptly rather than hanging.
func TestTCPConnectionLossFailsInflightInvokes(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	srv := startBlockingTCPServer(t, "s1", "127.0.0.1:0", release)

	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}))
	defer client.Close()

	const inflight = 8
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			_, err := client.Invoke(context.Background(), "s1", Request{Service: "svc", Type: "op"})
			errs <- err
		}()
	}
	// Let the requests reach the server (its handlers park on release), then
	// tear the connection down underneath them.
	time.Sleep(50 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	for i := 0; i < inflight; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrUnreachable) {
				t.Fatalf("in-flight Invoke returned %v, want ErrUnreachable", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("in-flight Invoke hung after connection loss")
		}
	}
	close(release) // unpark handlers so Close can drain its goroutines
	if err := <-closed; err != nil {
		t.Fatalf("server close: %v", err)
	}
}

// TestTCPClientRedialsAfterConnectionLoss restarts the server on the same
// address and asserts a subsequent Invoke transparently re-establishes the
// connection.
func TestTCPClientRedialsAfterConnectionLoss(t *testing.T) {
	t.Parallel()
	srv, err := NewTCPServer("s1", "127.0.0.1:0", echoHandler(nil))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": addr}))
	defer client.Close()

	ctx := context.Background()
	if _, err := client.Invoke(ctx, "s1", Request{Payload: []byte("warm")}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Rebind the same address. The OS may briefly hold the port; retry.
	var srv2 *TCPServer
	for deadline := time.Now().Add(5 * time.Second); ; {
		srv2, err = NewTCPServer("s1", addr, echoHandler(nil))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer srv2.Close()

	// The first Invoke after the loss may catch the stale connection before
	// the read loop reaps it — that must surface as ErrUnreachable, never a
	// hang — and the client must recover by itself on a later call.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cctx, cancel := context.WithTimeout(ctx, time.Second)
		resp, err := client.Invoke(cctx, "s1", Request{Payload: []byte("again")})
		cancel()
		if err == nil {
			if string(resp.Payload) != "again" {
				t.Fatalf("resp = %+v", resp)
			}
			return // redialed and served
		}
		if !errors.Is(err, ErrUnreachable) && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Invoke after restart: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never redialed; last error: %v", err)
		}
	}
}

// TestTCPConcurrentRedialRace drives many goroutines through Invoke right
// after a connection loss: all must succeed (or fail cleanly and succeed on
// retry), and the race in TCPClient.conn must collapse their dials onto a
// single shared connection.
func TestTCPConcurrentRedialRace(t *testing.T) {
	t.Parallel()
	srv, err := NewTCPServer("s1", "127.0.0.1:0", echoHandler(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()
	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": addr}))
	defer client.Close()

	ctx := context.Background()
	if _, err := client.Invoke(ctx, "s1", Request{}); err != nil {
		t.Fatal(err)
	}
	// Sever the established connection from the client side so the next
	// Invokes all observe a missing conn and race to redial.
	client.mu.Lock()
	stale := client.conns[addr]
	client.mu.Unlock()
	client.dropConn(addr, stale)

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("r-%d", i))
			for attempt := 0; ; attempt++ {
				resp, err := client.Invoke(ctx, "s1", Request{Payload: payload})
				if err == nil {
					if string(resp.Payload) != string(payload) {
						errs <- fmt.Errorf("crossed response %q for %q", resp.Payload, payload)
					}
					return
				}
				if !errors.Is(err, ErrUnreachable) || attempt > 3 {
					errs <- fmt.Errorf("request %d: %w", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	client.mu.Lock()
	open := len(client.conns)
	client.mu.Unlock()
	if open != 1 {
		t.Fatalf("client holds %d connections after concurrent redial, want 1", open)
	}
}

// --- regression tests for the PR 6 TCP data-plane bugfixes ---

// TestTCPDialHonorsContext pins the DialContext fix: a dial that black-holes
// (SYN never answered) must not hang Invoke past its context. The dial is
// injected so the test is hermetic — it parks until the context expires,
// exactly like a dropped SYN.
func TestTCPDialHonorsContext(t *testing.T) {
	t.Parallel()
	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": "192.0.2.1:9"}),
		WithDialFunc(func(ctx context.Context, addr string) (net.Conn, error) {
			<-ctx.Done() // black hole: only the context gets us out
			return nil, ctx.Err()
		}))
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Invoke(ctx, "s1", Request{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Invoke during black-holed dial returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Invoke took %v to honor its context during dial", elapsed)
	}
}

// TestTCPInvokeAfterCloseRejected pins the use-after-Close fix: Close marks
// the client dead, and a later Invoke fails with ErrClosed instead of
// silently re-dialing the peer.
func TestTCPInvokeAfterCloseRejected(t *testing.T) {
	t.Parallel()
	var dials atomic.Int64
	srv, err := NewTCPServer("s1", "127.0.0.1:0", echoHandler(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}),
		WithDialFunc(func(ctx context.Context, addr string) (net.Conn, error) {
			dials.Add(1)
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}))
	if _, err := client.Invoke(context.Background(), "s1", Request{Payload: []byte("pre")}); err != nil {
		t.Fatal(err)
	}
	client.Close()

	if _, err := client.Invoke(context.Background(), "s1", Request{Payload: []byte("post")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Invoke after Close returned %v, want ErrClosed", err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("client re-dialed after Close: %d dials, want 1", got)
	}
	client.Close() // idempotent
}

// TestTCPCloseFailsInflightInvokes pins the Close-drains-pending fix:
// Invokes parked on a slow server when the client closes must fail promptly
// with ErrUnreachable, not wait for the read loop to notice on its own.
func TestTCPCloseFailsInflightInvokes(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	srv := startBlockingTCPServer(t, "s1", "127.0.0.1:0", release)
	// LIFO: unpark the handlers first, then Close can drain its goroutines.
	defer srv.Close()
	defer close(release)

	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}))
	const inflight = 8
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			_, err := client.Invoke(context.Background(), "s1", Request{Service: "svc", Type: "op"})
			errs <- err
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the Invokes reach the parked handlers
	done := make(chan struct{})
	go func() { client.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("client Close hung with Invokes in flight")
	}
	for i := 0; i < inflight; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrUnreachable) {
				t.Fatalf("in-flight Invoke after Close returned %v, want ErrUnreachable", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("in-flight Invoke hung after client Close")
		}
	}
}

// startStuffedPeer listens, accepts, and never reads — with a tiny receive
// buffer, so a few large frames fill the kernel pipes and block the
// client-side writer mid-syscall, the shape of a stalled peer.
func startStuffedPeer(t *testing.T) (addr string, cleanup func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.SetReadBuffer(4 << 10)
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
		}
	}()
	return ln.Addr().String(), func() {
		_ = ln.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			_ = c.Close()
		}
	}
}

// stuffedDialFunc dials for real but shrinks the socket send buffer, so the
// writer goroutine blocks after a handful of large frames.
func stuffedDialFunc(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetWriteBuffer(4 << 10)
	}
	return conn, nil
}

// TestTCPSlowPeerDoesNotStallOthers pins the lock-across-syscall fix: with
// the writer to a stuffed peer blocked in a socket write, (a) an Invoke to
// that peer still honors its context, and (b) Invokes to a healthy peer
// proceed at full speed.
func TestTCPSlowPeerDoesNotStallOthers(t *testing.T) {
	t.Parallel()
	stuffedAddr, cleanup := startStuffedPeer(t)
	defer cleanup()
	healthy, err := NewTCPServer("ok", "127.0.0.1:0", echoHandler(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	client := NewTCPClient("c1",
		StaticBook(map[types.ProcessID]string{"slow": stuffedAddr, "ok": healthy.Addr()}),
		WithDialFunc(stuffedDialFunc),
		WithSendQueue(1))
	defer client.Close()

	// Stuff the slow peer: large frames until the writer is wedged in a
	// syscall and the 1-deep send queue is full.
	payload := bytes.Repeat([]byte{7}, 1<<20)
	var wg sync.WaitGroup
	stuffedErrs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := client.Invoke(context.Background(), "slow", Request{Payload: payload})
			stuffedErrs <- err
		}()
	}
	time.Sleep(100 * time.Millisecond)

	// (a) a fresh Invoke to the stuffed peer returns on its own context.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	start := time.Now()
	_, err = client.Invoke(ctx, "slow", Request{Payload: payload})
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Invoke to stuffed peer returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Invoke to stuffed peer held for %v past its 100ms context", elapsed)
	}

	// (b) the healthy peer is unaffected.
	for i := 0; i < 4; i++ {
		hctx, hcancel := context.WithTimeout(context.Background(), 2*time.Second)
		resp, err := client.Invoke(hctx, "ok", Request{Payload: []byte("hi")})
		hcancel()
		if err != nil || !resp.OK {
			t.Fatalf("healthy peer Invoke %d: %v (resp %+v)", i, err, resp)
		}
	}

	// (c) teardown is not blocked behind the wedged writer.
	closed := make(chan struct{})
	go func() { client.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("client Close blocked behind a stuffed peer")
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		if err := <-stuffedErrs; !errors.Is(err, ErrUnreachable) && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("stuffed Invoke returned %v, want ErrUnreachable", err)
		}
	}
}

// TestTCPServerWriteErrorTearsDownConn pins the serveConn fix: when a reply
// cannot be written (peer vanished), the server tears the connection down
// instead of looping on a dead socket.
func TestTCPServerWriteErrorTearsDownConn(t *testing.T) {
	t.Parallel()
	handled := make(chan struct{}, 64)
	srv, err := NewTCPServer("s1", "127.0.0.1:0", HandlerFunc(func(_ types.ProcessID, req Request) Response {
		handled <- struct{}{}
		return OKResponse(bytes.Repeat([]byte{1}, 1<<16))
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A raw peer that sends one valid request and disappears without
	// reading the reply.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	enc := newFrameEncoder(WireBinary, conn)
	if err := enc.encodeRequest(tcpEnvelope{ID: 1, From: "ghost", Req: Request{Service: "svc", Type: "op"}}); err != nil {
		t.Fatal(err)
	}
	if err := enc.flush(); err != nil {
		t.Fatal(err)
	}
	<-handled // the handler ran; now vanish before the reply drains
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0) // RST instead of FIN so the pending write errors
	}
	_ = conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv.openConns() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server still holds %d connections after peer vanished", srv.openConns())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTCPServerBoundsHandlerConcurrency pins the unbounded-goroutine fix:
// per-connection handler concurrency never exceeds WithMaxHandlers even
// when the client floods far more concurrent requests.
func TestTCPServerBoundsHandlerConcurrency(t *testing.T) {
	t.Parallel()
	const bound = 4
	var inflight, maxSeen atomic.Int64
	srv, err := NewTCPServer("s1", "127.0.0.1:0", HandlerFunc(func(types.ProcessID, Request) Response {
		cur := inflight.Add(1)
		for {
			seen := maxSeen.Load()
			if cur <= seen || maxSeen.CompareAndSwap(seen, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inflight.Add(-1)
		return OKResponse(nil)
	}), WithMaxHandlers(bound))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}))
	defer client.Close()

	const requests = 64
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Invoke(context.Background(), "s1", Request{}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := maxSeen.Load(); got > bound {
		t.Fatalf("observed %d concurrent handlers, bound is %d", got, bound)
	}
}
