package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

// startBlockingTCPServer returns a server whose handler parks every request
// until release is closed — the shape needed to hold Invokes in flight.
func startBlockingTCPServer(t *testing.T, id types.ProcessID, addr string, release <-chan struct{}) *TCPServer {
	t.Helper()
	srv, err := NewTCPServer(id, addr, HandlerFunc(func(types.ProcessID, Request) Response {
		<-release
		return OKResponse(nil)
	}))
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestTCPConnectionLossFailsInflightInvokes kills a server while many
// Invokes are outstanding on one multiplexed connection and asserts every
// caller gets ErrUnreachable promptly rather than hanging.
func TestTCPConnectionLossFailsInflightInvokes(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	srv := startBlockingTCPServer(t, "s1", "127.0.0.1:0", release)

	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}))
	defer client.Close()

	const inflight = 8
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			_, err := client.Invoke(context.Background(), "s1", Request{Service: "svc", Type: "op"})
			errs <- err
		}()
	}
	// Let the requests reach the server (its handlers park on release), then
	// tear the connection down underneath them.
	time.Sleep(50 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	for i := 0; i < inflight; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrUnreachable) {
				t.Fatalf("in-flight Invoke returned %v, want ErrUnreachable", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("in-flight Invoke hung after connection loss")
		}
	}
	close(release) // unpark handlers so Close can drain its goroutines
	if err := <-closed; err != nil {
		t.Fatalf("server close: %v", err)
	}
}

// TestTCPClientRedialsAfterConnectionLoss restarts the server on the same
// address and asserts a subsequent Invoke transparently re-establishes the
// connection.
func TestTCPClientRedialsAfterConnectionLoss(t *testing.T) {
	t.Parallel()
	srv, err := NewTCPServer("s1", "127.0.0.1:0", echoHandler(nil))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": addr}))
	defer client.Close()

	ctx := context.Background()
	if _, err := client.Invoke(ctx, "s1", Request{Payload: []byte("warm")}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Rebind the same address. The OS may briefly hold the port; retry.
	var srv2 *TCPServer
	for deadline := time.Now().Add(5 * time.Second); ; {
		srv2, err = NewTCPServer("s1", addr, echoHandler(nil))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer srv2.Close()

	// The first Invoke after the loss may catch the stale connection before
	// the read loop reaps it — that must surface as ErrUnreachable, never a
	// hang — and the client must recover by itself on a later call.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cctx, cancel := context.WithTimeout(ctx, time.Second)
		resp, err := client.Invoke(cctx, "s1", Request{Payload: []byte("again")})
		cancel()
		if err == nil {
			if string(resp.Payload) != "again" {
				t.Fatalf("resp = %+v", resp)
			}
			return // redialed and served
		}
		if !errors.Is(err, ErrUnreachable) && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Invoke after restart: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never redialed; last error: %v", err)
		}
	}
}

// TestTCPConcurrentRedialRace drives many goroutines through Invoke right
// after a connection loss: all must succeed (or fail cleanly and succeed on
// retry), and the race in TCPClient.conn must collapse their dials onto a
// single shared connection.
func TestTCPConcurrentRedialRace(t *testing.T) {
	t.Parallel()
	srv, err := NewTCPServer("s1", "127.0.0.1:0", echoHandler(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()
	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": addr}))
	defer client.Close()

	ctx := context.Background()
	if _, err := client.Invoke(ctx, "s1", Request{}); err != nil {
		t.Fatal(err)
	}
	// Sever the established connection from the client side so the next
	// Invokes all observe a missing conn and race to redial.
	client.mu.Lock()
	stale := client.conns[addr]
	client.mu.Unlock()
	client.dropConn(addr, stale)

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("r-%d", i))
			for attempt := 0; ; attempt++ {
				resp, err := client.Invoke(ctx, "s1", Request{Payload: payload})
				if err == nil {
					if string(resp.Payload) != string(payload) {
						errs <- fmt.Errorf("crossed response %q for %q", resp.Payload, payload)
					}
					return
				}
				if !errors.Is(err, ErrUnreachable) || attempt > 3 {
					errs <- fmt.Errorf("request %d: %w", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	client.mu.Lock()
	open := len(client.conns)
	client.mu.Unlock()
	if open != 1 {
		t.Fatalf("client holds %d connections after concurrent redial, want 1", open)
	}
}
