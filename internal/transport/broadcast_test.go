package transport

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/ares-storage/ares/internal/types"
)

// recordingClient captures every request it delivers, answering from a
// handler function, with no network and no background goroutines — so codec
// counter deltas observed around a Broadcast are attributable to it alone.
type recordingClient struct {
	mu     sync.Mutex
	reqs   map[types.ProcessID]Request
	handle func(dst types.ProcessID, req Request) (Response, error)
}

func newRecordingClient(handle func(dst types.ProcessID, req Request) (Response, error)) *recordingClient {
	return &recordingClient{reqs: make(map[types.ProcessID]Request), handle: handle}
}

func (c *recordingClient) Invoke(_ context.Context, dst types.ProcessID, req Request) (Response, error) {
	c.mu.Lock()
	c.reqs[dst] = req
	c.mu.Unlock()
	return c.handle(dst, req)
}

type echoBody struct {
	N int
}

var broadcastDsts = []types.ProcessID{"s1", "s2", "s3", "s4", "s5"}

// TestBroadcastMarshalsSharedBodyOnce is the marshal-once invariant guard:
// one Broadcast of a shared body to n servers performs exactly one body
// encode, and every destination receives the very same payload bytes. This
// test must not run in parallel: it reads deltas of the process-wide codec
// counters.
func TestBroadcastMarshalsSharedBodyOnce(t *testing.T) {
	client := newRecordingClient(func(types.ProcessID, Request) (Response, error) {
		return OKResponse(nil), nil
	})
	before := CodecStats()
	_, err := Broadcast(context.Background(), client, broadcastDsts,
		Phase[struct{}]{Service: "svc", Config: "c0", Type: "op", Body: echoBody{N: 7}},
		AtLeast[struct{}](len(broadcastDsts)),
	)
	if err != nil {
		t.Fatal(err)
	}
	after := CodecStats()
	if got := after.Encodes - before.Encodes; got != 1 {
		t.Fatalf("Broadcast to %d servers performed %d body encodes, want exactly 1", len(broadcastDsts), got)
	}

	// All requests must share the same backing payload — not just equal
	// bytes, the same slice — so the guarantee survives even if counting
	// changes.
	var first []byte
	for _, dst := range broadcastDsts {
		payload := client.reqs[dst].Payload
		if first == nil {
			first = payload
			continue
		}
		if !sameSlice(first, payload) {
			t.Fatalf("destination %s received a distinct payload slice", dst)
		}
	}
}

// TestBroadcastPerDestinationBodies pins the other half of the contract:
// a BodyFor phase encodes once per destination, and each server sees its own
// body.
func TestBroadcastPerDestinationBodies(t *testing.T) {
	client := newRecordingClient(func(types.ProcessID, Request) (Response, error) {
		return OKResponse(nil), nil
	})
	before := CodecStats()
	_, err := Broadcast(context.Background(), client, broadcastDsts,
		Phase[struct{}]{
			Service: "svc", Config: "c0", Type: "op",
			BodyFor: func(dst types.ProcessID) (any, error) {
				return echoBody{N: len(dst)}, nil
			},
		},
		AtLeast[struct{}](len(broadcastDsts)),
	)
	if err != nil {
		t.Fatal(err)
	}
	after := CodecStats()
	if got := after.Encodes - before.Encodes; got != int64(len(broadcastDsts)) {
		t.Fatalf("per-destination Broadcast performed %d encodes, want %d", got, len(broadcastDsts))
	}
}

func sameSlice(a, b []byte) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

func TestBroadcastDecodesTypedReplies(t *testing.T) {
	t.Parallel()
	client := newRecordingClient(func(dst types.ProcessID, _ Request) (Response, error) {
		return OKResponse(MustMarshal(echoBody{N: len(dst)})), nil
	})
	got, err := Broadcast(context.Background(), client, broadcastDsts,
		Phase[echoBody]{Service: "svc", Config: "c0", Type: "op", Body: struct{}{}},
		AtLeast[echoBody](len(broadcastDsts)),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range got {
		if g.Value.N != len(g.From) {
			t.Fatalf("reply from %s decoded as %+v", g.From, g.Value)
		}
	}
}

// TestBroadcastCheckCountsAsFailure verifies that a reply rejected by Check
// does not count toward the quorum: with every server rejected, Broadcast
// reports quorum unavailability.
func TestBroadcastCheckCountsAsFailure(t *testing.T) {
	t.Parallel()
	client := newRecordingClient(func(types.ProcessID, Request) (Response, error) {
		return OKResponse(MustMarshal(echoBody{N: 1})), nil
	})
	_, err := Broadcast(context.Background(), client, broadcastDsts,
		Phase[echoBody]{
			Service: "svc", Config: "c0", Type: "op", Body: struct{}{},
			Check: func(from types.ProcessID, resp echoBody) error {
				return fmt.Errorf("stale reply from %s", from)
			},
		},
		AtLeast[echoBody](1),
	)
	if !errors.Is(err, ErrQuorumUnavailable) {
		t.Fatalf("err = %v, want ErrQuorumUnavailable", err)
	}
}

// TestBroadcastServiceFailure folds service-level errors into per-destination
// failures, same as InvokeTyped.
func TestBroadcastServiceFailure(t *testing.T) {
	t.Parallel()
	client := newRecordingClient(func(dst types.ProcessID, _ Request) (Response, error) {
		if dst == "s1" || dst == "s2" {
			return ErrResponse(errors.New("boom")), nil
		}
		return OKResponse(nil), nil
	})
	got, err := Broadcast(context.Background(), client, broadcastDsts,
		Phase[struct{}]{Service: "svc", Config: "c0", Type: "op", Body: struct{}{}},
		AtLeast[struct{}](3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("gathered %d results, want 3", len(got))
	}
}

// TestBroadcastOverSimnet exercises the primitive end to end over the
// simulated network, including request routing fields.
func TestBroadcastOverSimnet(t *testing.T) {
	t.Parallel()
	net := NewSimnet()
	for _, id := range broadcastDsts {
		id := id
		net.Register(id, HandlerFunc(func(_ types.ProcessID, req Request) Response {
			if req.Service != "svc" || req.Config != "c0" || req.Type != "op" {
				return ErrResponse(fmt.Errorf("misrouted: %+v", req))
			}
			var in echoBody
			if err := Unmarshal(req.Payload, &in); err != nil {
				return ErrResponse(err)
			}
			return OKResponse(MustMarshal(echoBody{N: in.N + 1}))
		}))
	}
	got, err := Broadcast(context.Background(), net.Client("w1"), broadcastDsts,
		Phase[echoBody]{Service: "svc", Config: "c0", Type: "op", Body: echoBody{N: 41}},
		AtLeast[echoBody](3),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := echoBody{N: 42}
	for _, g := range got {
		if !reflect.DeepEqual(g.Value, want) {
			t.Fatalf("reply %+v, want %+v", g.Value, want)
		}
	}
}
