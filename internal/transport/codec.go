package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Marshal gob-encodes a message body for use as a Request or Response
// payload. Bodies are concrete structs owned by each protocol package.
func Marshal(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("transport: encoding %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// MustMarshal is Marshal for bodies that cannot fail to encode (plain
// structs of basic types). It panics on error, which indicates a programming
// bug, never bad input.
func MustMarshal(v any) []byte {
	b, err := Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// Unmarshal decodes a payload produced by Marshal into v.
func Unmarshal(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("transport: decoding %T: %w", v, err)
	}
	return nil
}
