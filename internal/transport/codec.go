package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"github.com/ares-storage/ares/internal/obs"
)

// The codec layer is the hot path of every quorum phase: each request and
// response body passes through Marshal/Unmarshal. Two mechanisms keep it
// cheap and observable:
//
//   - encode buffers are pooled, so the amortized cost of a Marshal is one
//     exact-size allocation for the returned payload instead of repeated
//     buffer growth;
//   - every encode/decode is counted (operations and payload bytes), which
//     is what lets tests pin the Broadcast marshal-once invariant and
//     benchmarks attribute wire-byte savings.
//
// Gob encoders themselves cannot be pooled: an encoder is stream-stateful
// (it emits each type's wire description once per stream), while payloads
// must stay independently decodable. Fresh encoder, pooled buffer.

// maxPooledBuffer bounds the capacity of buffers returned to the pool, so a
// single huge value does not pin a huge buffer for the process lifetime.
const maxPooledBuffer = 1 << 20

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// CodecUsage is a point-in-time snapshot of codec work since the last reset.
type CodecUsage struct {
	// Encodes and Decodes count Marshal/Unmarshal operations.
	Encodes int64
	Decodes int64
	// EncodedBytes and DecodedBytes total the payload sizes processed.
	EncodedBytes int64
	DecodedBytes int64
	// WireEncodes and WireDecodes count TCP frames written/read, and
	// WireEncodedBytes/WireDecodedBytes the socket bytes they moved —
	// whole envelopes including framing, not just bodies. The tcp bench
	// compares wire formats (binary vs gob) on these.
	WireEncodes      int64
	WireDecodes      int64
	WireEncodedBytes int64
	WireDecodedBytes int64
	// FramesBatched counts encoded frames that coalesced more than one
	// envelope (FrameBatch frames); EnvelopesPerFrame is a histogram of
	// envelope count per encoded data frame, bucketed per
	// BatchBucketLabels. Together they show how often the writer path
	// found cross-key traffic to pack.
	FramesBatched     int64
	EnvelopesPerFrame [batchBucketCount]int64
	// ReadOps counts completed core.Client reads; ReadRounds the data
	// rounds they took (get-data plus any put-data write-back — metadata
	// read-config rounds are excluded); ReadFastPaths how many skipped the
	// write-back because the get-data quorum confirmed the max tag was
	// already propagated. ReadRounds/ReadOps < 2 proves the one-round fast
	// path fires.
	ReadOps       int64
	ReadRounds    int64
	ReadFastPaths int64
}

// batchBucketCount is the number of EnvelopesPerFrame histogram buckets.
const batchBucketCount = 6

// BatchBucketLabels names the EnvelopesPerFrame buckets, index-aligned with
// CodecUsage.EnvelopesPerFrame.
var BatchBucketLabels = [batchBucketCount]string{"1", "2", "3-4", "5-8", "9-16", "17+"}

func batchBucket(n int) int {
	switch {
	case n <= 1:
		return 0
	case n == 2:
		return 1
	case n <= 4:
		return 2
	case n <= 8:
		return 3
	case n <= 16:
		return 4
	default:
		return 5
	}
}

// recordFrameEnvelopes attributes one encoded data frame carrying n
// envelopes to the batch counters.
func recordFrameEnvelopes(n int) {
	codecStats.envelopesPerFrame[batchBucket(n)].Add(1)
	if n > 1 {
		codecStats.framesBatched.Add(1)
	}
}

// RecordReadRounds attributes one completed read that took the given number
// of data rounds. fastPath reports whether the read skipped the put-data
// write-back on quorum-confirmed propagation.
func RecordReadRounds(rounds int, fastPath bool) {
	codecStats.readOps.Add(1)
	codecStats.readRounds.Add(int64(rounds))
	if fastPath {
		codecStats.readFastPaths.Add(1)
	}
}

// codecCounters holds the transport's named instruments. The fields are
// obs registry handles (resolved once at init), so every hot-path bump
// is the same single atomic add the old hand-rolled struct did; the
// CodecUsage type below is now a thin view over the registry.
type codecCounters struct {
	encodes      *obs.Counter
	decodes      *obs.Counter
	encodedBytes *obs.Counter
	decodedBytes *obs.Counter

	wireEncodes      *obs.Counter
	wireDecodes      *obs.Counter
	wireEncodedBytes *obs.Counter
	wireDecodedBytes *obs.Counter

	framesBatched     *obs.Counter
	envelopesPerFrame [batchBucketCount]*obs.Counter

	readOps       *obs.Counter
	readRounds    *obs.Counter
	readFastPaths *obs.Counter
}

var codecStats = func() codecCounters {
	r := obs.Default
	c := codecCounters{
		encodes:          r.Counter("ares_codec_encodes_total", "Marshal operations (message bodies encoded)"),
		decodes:          r.Counter("ares_codec_decodes_total", "Unmarshal operations (message bodies decoded)"),
		encodedBytes:     r.Counter("ares_codec_encoded_bytes_total", "Payload bytes produced by Marshal"),
		decodedBytes:     r.Counter("ares_codec_decoded_bytes_total", "Payload bytes consumed by Unmarshal"),
		wireEncodes:      r.Counter("ares_wire_encodes_total", "TCP frames written"),
		wireDecodes:      r.Counter("ares_wire_decodes_total", "TCP frames read"),
		wireEncodedBytes: r.Counter("ares_wire_encoded_bytes_total", "Socket bytes written, framing included"),
		wireDecodedBytes: r.Counter("ares_wire_decoded_bytes_total", "Socket bytes read, framing included"),
		framesBatched:    r.Counter("ares_wire_frames_batched_total", "Data frames that coalesced more than one envelope"),
		readOps:          r.Counter("ares_client_read_ops_total", "Completed core.Client reads"),
		readRounds:       r.Counter("ares_client_read_rounds_total", "Data rounds taken by completed reads"),
		readFastPaths:    r.Counter("ares_client_read_fastpaths_total", "Reads that skipped the put-data write-back"),
	}
	for i, label := range BatchBucketLabels {
		c.envelopesPerFrame[i] = r.Counter(
			`ares_wire_envelopes_per_frame_total{envelopes="`+label+`"}`,
			"Encoded data frames by envelope count")
	}
	return c
}()

// CodecStats reports codec work performed process-wide since the last
// ResetCodecStats. The Broadcast marshal-once tests and the bench harness
// read it to verify that one quorum phase costs one body encode.
func CodecStats() CodecUsage {
	u := CodecUsage{
		Encodes:          codecStats.encodes.Load(),
		Decodes:          codecStats.decodes.Load(),
		EncodedBytes:     codecStats.encodedBytes.Load(),
		DecodedBytes:     codecStats.decodedBytes.Load(),
		WireEncodes:      codecStats.wireEncodes.Load(),
		WireDecodes:      codecStats.wireDecodes.Load(),
		WireEncodedBytes: codecStats.wireEncodedBytes.Load(),
		WireDecodedBytes: codecStats.wireDecodedBytes.Load(),
		FramesBatched:    codecStats.framesBatched.Load(),
		ReadOps:          codecStats.readOps.Load(),
		ReadRounds:       codecStats.readRounds.Load(),
		ReadFastPaths:    codecStats.readFastPaths.Load(),
	}
	for i := range codecStats.envelopesPerFrame {
		u.EnvelopesPerFrame[i] = codecStats.envelopesPerFrame[i].Load()
	}
	return u
}

// ResetCodecStats zeroes the codec counters.
func ResetCodecStats() {
	codecStats.encodes.Reset()
	codecStats.decodes.Reset()
	codecStats.encodedBytes.Reset()
	codecStats.decodedBytes.Reset()
	codecStats.wireEncodes.Reset()
	codecStats.wireDecodes.Reset()
	codecStats.wireEncodedBytes.Reset()
	codecStats.wireDecodedBytes.Reset()
	codecStats.framesBatched.Reset()
	for i := range codecStats.envelopesPerFrame {
		codecStats.envelopesPerFrame[i].Reset()
	}
	codecStats.readOps.Reset()
	codecStats.readRounds.Reset()
	codecStats.readFastPaths.Reset()
}

// Marshal gob-encodes a message body for use as a Request or Response
// payload. Bodies are concrete structs owned by each protocol package.
func Marshal(v any) ([]byte, error) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		if buf.Cap() <= maxPooledBuffer {
			bufPool.Put(buf)
		}
		return nil, fmt.Errorf("transport: encoding %T: %w", v, err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	if buf.Cap() <= maxPooledBuffer {
		bufPool.Put(buf)
	}
	codecStats.encodes.Add(1)
	codecStats.encodedBytes.Add(int64(len(out)))
	return out, nil
}

// MustMarshal is Marshal for bodies that cannot fail to encode (plain
// structs of basic types). It panics on error, which indicates a programming
// bug, never bad input.
func MustMarshal(v any) []byte {
	b, err := Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// Unmarshal decodes a payload produced by Marshal into v.
func Unmarshal(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("transport: decoding %T: %w", v, err)
	}
	codecStats.decodes.Add(1)
	codecStats.decodedBytes.Add(int64(len(data)))
	return nil
}
