package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
)

// The codec layer is the hot path of every quorum phase: each request and
// response body passes through Marshal/Unmarshal. Two mechanisms keep it
// cheap and observable:
//
//   - encode buffers are pooled, so the amortized cost of a Marshal is one
//     exact-size allocation for the returned payload instead of repeated
//     buffer growth;
//   - every encode/decode is counted (operations and payload bytes), which
//     is what lets tests pin the Broadcast marshal-once invariant and
//     benchmarks attribute wire-byte savings.
//
// Gob encoders themselves cannot be pooled: an encoder is stream-stateful
// (it emits each type's wire description once per stream), while payloads
// must stay independently decodable. Fresh encoder, pooled buffer.

// maxPooledBuffer bounds the capacity of buffers returned to the pool, so a
// single huge value does not pin a huge buffer for the process lifetime.
const maxPooledBuffer = 1 << 20

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// CodecUsage is a point-in-time snapshot of codec work since the last reset.
type CodecUsage struct {
	// Encodes and Decodes count Marshal/Unmarshal operations.
	Encodes int64
	Decodes int64
	// EncodedBytes and DecodedBytes total the payload sizes processed.
	EncodedBytes int64
	DecodedBytes int64
	// WireEncodes and WireDecodes count TCP frames written/read, and
	// WireEncodedBytes/WireDecodedBytes the socket bytes they moved —
	// whole envelopes including framing, not just bodies. The tcp bench
	// compares wire formats (binary vs gob) on these.
	WireEncodes      int64
	WireDecodes      int64
	WireEncodedBytes int64
	WireDecodedBytes int64
}

type codecCounters struct {
	encodes      atomic.Int64
	decodes      atomic.Int64
	encodedBytes atomic.Int64
	decodedBytes atomic.Int64

	wireEncodes      atomic.Int64
	wireDecodes      atomic.Int64
	wireEncodedBytes atomic.Int64
	wireDecodedBytes atomic.Int64
}

var codecStats codecCounters

// CodecStats reports codec work performed process-wide since the last
// ResetCodecStats. The Broadcast marshal-once tests and the bench harness
// read it to verify that one quorum phase costs one body encode.
func CodecStats() CodecUsage {
	return CodecUsage{
		Encodes:          codecStats.encodes.Load(),
		Decodes:          codecStats.decodes.Load(),
		EncodedBytes:     codecStats.encodedBytes.Load(),
		DecodedBytes:     codecStats.decodedBytes.Load(),
		WireEncodes:      codecStats.wireEncodes.Load(),
		WireDecodes:      codecStats.wireDecodes.Load(),
		WireEncodedBytes: codecStats.wireEncodedBytes.Load(),
		WireDecodedBytes: codecStats.wireDecodedBytes.Load(),
	}
}

// ResetCodecStats zeroes the codec counters.
func ResetCodecStats() {
	codecStats.encodes.Store(0)
	codecStats.decodes.Store(0)
	codecStats.encodedBytes.Store(0)
	codecStats.decodedBytes.Store(0)
	codecStats.wireEncodes.Store(0)
	codecStats.wireDecodes.Store(0)
	codecStats.wireEncodedBytes.Store(0)
	codecStats.wireDecodedBytes.Store(0)
}

// Marshal gob-encodes a message body for use as a Request or Response
// payload. Bodies are concrete structs owned by each protocol package.
func Marshal(v any) ([]byte, error) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		if buf.Cap() <= maxPooledBuffer {
			bufPool.Put(buf)
		}
		return nil, fmt.Errorf("transport: encoding %T: %w", v, err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	if buf.Cap() <= maxPooledBuffer {
		bufPool.Put(buf)
	}
	codecStats.encodes.Add(1)
	codecStats.encodedBytes.Add(int64(len(out)))
	return out, nil
}

// MustMarshal is Marshal for bodies that cannot fail to encode (plain
// structs of basic types). It panics on error, which indicates a programming
// bug, never bad input.
func MustMarshal(v any) []byte {
	b, err := Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// Unmarshal decodes a payload produced by Marshal into v.
func Unmarshal(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("transport: decoding %T: %w", v, err)
	}
	codecStats.decodes.Add(1)
	codecStats.decodedBytes.Add(int64(len(data)))
	return nil
}
