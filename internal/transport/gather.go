package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/ares-storage/ares/internal/types"
)

// ErrQuorumUnavailable reports that every destination responded or failed
// without the gather predicate being satisfied. The returned error wraps the
// last per-destination failure (match with errors.Is on this sentinel), so a
// systematic rejection — e.g. every server answering "configuration retired"
// — surfaces to the caller instead of dissolving into an opaque quorum
// failure.
var ErrQuorumUnavailable = errors.New("transport: quorum predicate unsatisfiable")

// quorumUnavailable builds the wrapped failure; lastErr may be nil when no
// destination reported an error (the predicate was simply never satisfied).
func quorumUnavailable(lastErr error) error {
	if lastErr == nil {
		return ErrQuorumUnavailable
	}
	return fmt.Errorf("%w (last failure: %v)", ErrQuorumUnavailable, lastErr)
}

// GatherResult couples one destination's reply with its origin.
type GatherResult[T any] struct {
	From  types.ProcessID
	Value T
}

// Gather invokes call concurrently against every destination and accumulates
// successful results until enough reports the set is sufficient. It then
// cancels outstanding calls and returns the accumulated results.
//
// This is the client-side quorum pattern every DAP and the reconfiguration
// service are built on: "send to all servers, await responses from ⌈(n+k)/2⌉
// servers / a quorum" (Alg. 2, 4, 12).
//
// Gather returns ErrQuorumUnavailable when all calls have completed (some
// possibly failed) without satisfying enough, and ctx.Err() when the caller's
// context expires first — the behaviour of an operation that never completes
// because too many servers crashed.
func Gather[T any](
	ctx context.Context,
	dsts []types.ProcessID,
	call func(ctx context.Context, dst types.ProcessID) (T, error),
	enough func(got []GatherResult[T]) bool,
) ([]GatherResult[T], error) {
	subCtx, cancel := context.WithCancel(ctx)

	type outcome struct {
		from types.ProcessID
		val  T
		err  error
	}
	ch := make(chan outcome, len(dsts))
	var wg sync.WaitGroup
	for _, dst := range dsts {
		dst := dst
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := call(subCtx, dst)
			select {
			case ch <- outcome{from: dst, val: v, err: err}:
			case <-subCtx.Done():
			}
		}()
	}
	// Ensure no goroutine leaks: cancel outstanding calls first, then drain.
	defer func() {
		cancel()
		wg.Wait()
	}()

	var got []GatherResult[T]
	var failures int
	var lastErr error
	for {
		select {
		case out := <-ch:
			if out.err != nil {
				failures++
				lastErr = out.err
				if failures+len(got) == len(dsts) && !enough(got) {
					return got, quorumUnavailable(lastErr)
				}
				continue
			}
			got = append(got, GatherResult[T]{From: out.from, Value: out.val})
			if enough(got) {
				return got, nil
			}
			if failures+len(got) == len(dsts) {
				return got, quorumUnavailable(lastErr)
			}
		case <-ctx.Done():
			return got, ctx.Err()
		}
	}
}

// AtLeast returns a predicate satisfied once n results have arrived — the
// common "await responses from n servers" rule.
func AtLeast[T any](n int) func([]GatherResult[T]) bool {
	return func(got []GatherResult[T]) bool { return len(got) >= n }
}

// Addr names the remote state a single-destination call addresses: the
// protocol family, the object key, the configuration, and the message type —
// the same four coordinates a Phase carries for quorum fan-outs.
type Addr struct {
	Service string
	Key     string
	Config  string
	Type    string
}

// InvokeTyped sends a request whose body encodes to reqBody and decodes the
// response payload into a fresh RespT. It folds transport and service-level
// failures into a single error, the shape every protocol client wants.
// Quorum fan-outs should use Broadcast instead, which encodes a shared body
// once for the whole phase; InvokeTyped is for single-destination calls.
func InvokeTyped[RespT any](
	ctx context.Context,
	c Client,
	dst types.ProcessID,
	addr Addr,
	reqBody any,
) (RespT, error) {
	payload, err := Marshal(reqBody)
	if err != nil {
		var zero RespT
		return zero, err
	}
	return invokePayload[RespT](ctx, c, dst, addr, payload)
}

// invokePayload delivers one pre-encoded request payload and decodes the
// typed response — the shared tail of InvokeTyped and Broadcast. An empty
// response payload leaves the zero RespT (metadata-only acks).
func invokePayload[RespT any](
	ctx context.Context,
	c Client,
	dst types.ProcessID,
	addr Addr,
	payload []byte,
) (RespT, error) {
	var zero RespT
	resp, err := c.Invoke(ctx, dst, Request{
		Service: addr.Service,
		Key:     addr.Key,
		Config:  addr.Config,
		Type:    addr.Type,
		Payload: payload,
	})
	if err != nil {
		return zero, err
	}
	if err := ResponseError(resp); err != nil {
		return zero, err
	}
	var out RespT
	if len(resp.Payload) > 0 {
		if err := Unmarshal(resp.Payload, &out); err != nil {
			return zero, err
		}
	}
	return out, nil
}
