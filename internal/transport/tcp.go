package transport

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"github.com/ares-storage/ares/internal/types"
)

// The TCP wire protocol: each connection carries a gob stream of envelopes.
// A client opens one connection per destination and multiplexes requests by
// ID; the server answers on the same connection.

type tcpEnvelope struct {
	ID   uint64
	From types.ProcessID
	Req  Request
}

type tcpReply struct {
	ID   uint64
	Resp Response
}

// TCPServer serves a Handler on a TCP listener.
type TCPServer struct {
	id       types.ProcessID
	listener net.Listener
	handler  Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewTCPServer starts listening on addr and serving h for process id. Use
// Addr to discover the bound address when addr has port 0.
func NewTCPServer(id types.ProcessID, addr string, h Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &TCPServer{
		id:       id,
		listener: ln,
		handler:  h,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *TCPServer) Addr() string { return s.listener.Addr().String() }

// Close stops the listener and all connections, waiting for goroutines.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var writeMu sync.Mutex
	var handlerWG sync.WaitGroup
	defer handlerWG.Wait()
	for {
		var env tcpEnvelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		handlerWG.Add(1)
		go func(env tcpEnvelope) {
			defer handlerWG.Done()
			resp := s.handler.HandleRequest(env.From, env.Req)
			writeMu.Lock()
			defer writeMu.Unlock()
			_ = enc.Encode(tcpReply{ID: env.ID, Resp: resp})
		}(env)
	}
}

// TCPClient is a transport Client over TCP. It maintains one connection per
// destination, established lazily, and routes responses by request ID.
type TCPClient struct {
	self types.ProcessID
	book func(types.ProcessID) (string, bool)

	mu    sync.Mutex
	conns map[string]*tcpConn
	next  uint64
}

// NewTCPClient constructs a client for process self that resolves server
// addresses through book (typically a map lookup over a static address book).
func NewTCPClient(self types.ProcessID, book func(types.ProcessID) (string, bool)) *TCPClient {
	return &TCPClient{
		self:  self,
		book:  book,
		conns: make(map[string]*tcpConn),
	}
}

// StaticBook adapts an address map to the resolver shape NewTCPClient wants.
func StaticBook(m map[types.ProcessID]string) func(types.ProcessID) (string, bool) {
	return func(id types.ProcessID) (string, bool) {
		addr, ok := m[id]
		return addr, ok
	}
}

var _ Client = (*TCPClient)(nil)

type tcpConn struct {
	conn net.Conn
	enc  *gob.Encoder

	mu      sync.Mutex
	pending map[uint64]chan Response
	dead    bool
}

// Invoke implements Client.
func (c *TCPClient) Invoke(ctx context.Context, dst types.ProcessID, req Request) (Response, error) {
	addr, ok := c.book(dst)
	if !ok {
		return Response{}, fmt.Errorf("%w: no address for %s", ErrUnreachable, dst)
	}
	tc, err := c.conn(addr)
	if err != nil {
		return Response{}, fmt.Errorf("%w: dialing %s: %v", ErrUnreachable, dst, err)
	}

	c.mu.Lock()
	c.next++
	id := c.next
	c.mu.Unlock()

	ch := make(chan Response, 1)
	tc.mu.Lock()
	if tc.dead {
		tc.mu.Unlock()
		c.dropConn(addr, tc)
		return Response{}, fmt.Errorf("%w: connection to %s lost", ErrUnreachable, dst)
	}
	tc.pending[id] = ch
	err = tc.enc.Encode(tcpEnvelope{ID: id, From: c.self, Req: req})
	tc.mu.Unlock()
	if err != nil {
		c.dropConn(addr, tc)
		return Response{}, fmt.Errorf("%w: sending to %s: %v", ErrUnreachable, dst, err)
	}

	select {
	case resp, open := <-ch:
		if !open {
			return Response{}, fmt.Errorf("%w: connection to %s closed", ErrUnreachable, dst)
		}
		return resp, nil
	case <-ctx.Done():
		tc.mu.Lock()
		delete(tc.pending, id)
		tc.mu.Unlock()
		return Response{}, ctx.Err()
	}
}

// Close tears down all connections.
func (c *TCPClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for addr, tc := range c.conns {
		_ = tc.conn.Close()
		delete(c.conns, addr)
	}
}

func (c *TCPClient) conn(addr string) (*tcpConn, error) {
	c.mu.Lock()
	if tc, ok := c.conns[addr]; ok {
		c.mu.Unlock()
		return tc, nil
	}
	c.mu.Unlock()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	tc := &tcpConn{
		conn:    raw,
		enc:     gob.NewEncoder(raw),
		pending: make(map[uint64]chan Response),
	}

	c.mu.Lock()
	if existing, ok := c.conns[addr]; ok {
		// Lost the race; use the established connection.
		c.mu.Unlock()
		_ = raw.Close()
		return existing, nil
	}
	c.conns[addr] = tc
	c.mu.Unlock()

	go c.readLoop(addr, tc)
	return tc, nil
}

func (c *TCPClient) readLoop(addr string, tc *tcpConn) {
	dec := gob.NewDecoder(tc.conn)
	for {
		var reply tcpReply
		if err := dec.Decode(&reply); err != nil {
			c.dropConn(addr, tc)
			return
		}
		tc.mu.Lock()
		ch, ok := tc.pending[reply.ID]
		delete(tc.pending, reply.ID)
		tc.mu.Unlock()
		if ok {
			ch <- reply.Resp
		}
	}
}

func (c *TCPClient) dropConn(addr string, tc *tcpConn) {
	c.mu.Lock()
	if c.conns[addr] == tc {
		delete(c.conns, addr)
	}
	c.mu.Unlock()

	tc.mu.Lock()
	if !tc.dead {
		tc.dead = true
		for id, ch := range tc.pending {
			close(ch)
			delete(tc.pending, id)
		}
	}
	tc.mu.Unlock()
	_ = tc.conn.Close()
}
