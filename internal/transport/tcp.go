package transport

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

// The TCP data plane. Each client keeps one connection per peer and
// multiplexes every in-flight request over it:
//
//	Invoke ──► pending[id] ──► send queue ──► writer goroutine ──► socket
//	Invoke ◄── pending[id] ◄── read loop   ◄───────────────────── socket
//
// The writer goroutine is the only code that touches the outbound socket:
// Invoke enqueues a frame and waits on its response channel, so no caller
// ever holds a lock across a syscall, a peer with a full send buffer delays
// only callers targeting that peer (and only once the bounded queue fills),
// and teardown never waits behind a blocked write. The writer drains its
// queue before flushing, so concurrent quorum phases share flush syscalls
// — that is the pipelining the bench suite measures. Responses route back
// by request ID; a torn-down connection fails every pending request with
// ErrUnreachable.
//
// Frames are encoded by the wire codec (wire.go): compact length-prefixed
// binary by default, legacy gob streams for comparison/compatibility.

// tcpEnvelope is one request frame: the multiplexing ID, the caller's
// identity, and the request proper.
type tcpEnvelope struct {
	ID   uint64
	From types.ProcessID
	Req  Request
}

// tcpReply is one response frame, routed back by ID.
type tcpReply struct {
	ID   uint64
	Resp Response
}

// ErrClosed reports use of a TCPClient after Close. It is distinct from
// ErrUnreachable: the peer may be fine — this process decided to stop
// talking, and a silent re-dial would resurrect connections behind the
// caller's back.
var ErrClosed = errors.New("transport: tcp client closed")

// Defaults for the data-plane knobs; see the TCPOption constructors.
const (
	defaultDialTimeout    = 5 * time.Second
	defaultMaxHandlers    = 128
	defaultSendQueue      = 256
	defaultBatchEnvelopes = 64
	defaultBatchBytes     = 128 << 10
)

// DialBackoff paces re-dials of an unreachable peer (the same shape as the
// client-level retry policy): after a failed dial, further Invokes to that
// peer fail fast with ErrUnreachable until the backoff window expires, and
// each consecutive failure grows the window exponentially up to Cap. Without
// it a dead peer costs every quorum phase a full dial attempt — hundreds of
// SYNs per second against a host that is down.
type DialBackoff struct {
	// Base is the window after the first failure. Zero or negative falls
	// back to DefaultDialBackoff.Base.
	Base time.Duration
	// Cap bounds the grown window.
	Cap time.Duration
	// Multiplier scales the window per consecutive failure; values below 1
	// are treated as 1 (constant pacing).
	Multiplier float64
	// Jitter is the fraction of each window randomized away, in [0, 1]: the
	// window is drawn uniformly from [w·(1−Jitter), w], so a fleet of
	// clients doesn't re-dial a recovering server in lockstep.
	Jitter float64
	// Seed, when non-zero, seeds the client's private jitter source for
	// reproducible pacing. Zero derives a stable seed from the process ID.
	Seed int64
}

// DefaultDialBackoff is the dial pacing every TCPClient starts with.
var DefaultDialBackoff = DialBackoff{
	Base:       50 * time.Millisecond,
	Cap:        2 * time.Second,
	Multiplier: 2,
	Jitter:     0.5,
}

// normalized fills unset fields from the defaults.
func (b DialBackoff) normalized() DialBackoff {
	if b.Base <= 0 {
		b.Base = DefaultDialBackoff.Base
	}
	if b.Cap < b.Base {
		b.Cap = b.Base
	}
	if b.Multiplier < 1 {
		b.Multiplier = 1
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	if b.Jitter > 1 {
		b.Jitter = 1
	}
	return b
}

// window returns the backoff window after fails consecutive failures.
func (b DialBackoff) window(fails int, rng *rand.Rand) time.Duration {
	w := float64(b.Base)
	for i := 1; i < fails && w < float64(b.Cap); i++ {
		w *= b.Multiplier
	}
	if w > float64(b.Cap) {
		w = float64(b.Cap)
	}
	if b.Jitter > 0 {
		w -= rng.Float64() * b.Jitter * w
	}
	return time.Duration(w)
}

// tcpOptions collects the tunables shared by TCPClient and TCPServer.
type tcpOptions struct {
	wire           WireFormat
	dialTimeout    time.Duration
	maxHandlers    int
	sendQueue      int
	batching       bool
	batchEnvelopes int
	batchBytes     int
	flushInterval  time.Duration
	dial           func(ctx context.Context, addr string) (net.Conn, error)
	backoff        DialBackoff
}

func defaultTCPOptions() tcpOptions {
	return tcpOptions{
		wire:           WireBinary,
		dialTimeout:    defaultDialTimeout,
		maxHandlers:    defaultMaxHandlers,
		sendQueue:      defaultSendQueue,
		batching:       true,
		batchEnvelopes: defaultBatchEnvelopes,
		batchBytes:     defaultBatchBytes,
		backoff:        DefaultDialBackoff,
	}
}

// batchCaps resolves the effective coalescing limits for a writer goroutine.
// With batching disabled the count cap collapses to 1: every envelope rides
// its own frame (the pre-batching wire layout). The writer also flushes after
// every frame in that mode — one frame and one syscall per envelope — so the
// unbatched baseline measures the full cost coalescing removes.
func (o tcpOptions) batchCaps() (envelopes, bytes int) {
	if !o.batching {
		return 1, o.batchBytes
	}
	return o.batchEnvelopes, o.batchBytes
}

// TCPOption tunes a TCPClient or TCPServer.
type TCPOption func(*tcpOptions)

// WithWireFormat selects the frame encoding (default WireBinary). Client
// and server must agree.
func WithWireFormat(f WireFormat) TCPOption {
	return func(o *tcpOptions) {
		if f != "" {
			o.wire = f
		}
	}
}

// WithDialTimeout bounds connection establishment when the caller's context
// has no earlier deadline (default 5s). A black-holed address must never
// hang an Invoke forever.
func WithDialTimeout(d time.Duration) TCPOption {
	return func(o *tcpOptions) {
		if d > 0 {
			o.dialTimeout = d
		}
	}
}

// WithMaxHandlers bounds concurrent request handlers per server connection
// (default 128). Reads from a connection pause while its handler budget is
// exhausted — backpressure instead of unbounded goroutine growth.
func WithMaxHandlers(n int) TCPOption {
	return func(o *tcpOptions) {
		if n > 0 {
			o.maxHandlers = n
		}
	}
}

// WithSendQueue sets the per-connection outbound queue depth (default 256).
// Invokes beyond it wait — respecting their context — for the writer to
// drain.
func WithSendQueue(n int) TCPOption {
	return func(o *tcpOptions) {
		if n > 0 {
			o.sendQueue = n
		}
	}
}

// WithBatching toggles cross-key envelope coalescing (default on). When on,
// a writer goroutine packs every envelope it drains from its queue for one
// peer into FrameBatch frames, up to the WithBatchLimits caps, and flushes
// once per drained burst. Off restores one frame and one flush per envelope —
// the baseline the coalescing bench compares against. Both sides may choose
// independently: decoders always accept both layouts.
func WithBatching(enabled bool) TCPOption {
	return func(o *tcpOptions) {
		o.batching = enabled
	}
}

// WithBatchLimits caps one FrameBatch at maxEnvelopes envelopes and
// (approximately) maxBytes of frame payload (defaults 64 and 128 KiB). A
// batch closes when either cap is hit; the next envelope starts a new one.
func WithBatchLimits(maxEnvelopes, maxBytes int) TCPOption {
	return func(o *tcpOptions) {
		if maxEnvelopes > 0 {
			o.batchEnvelopes = maxEnvelopes
		}
		if maxBytes > 0 {
			o.batchBytes = maxBytes
		}
	}
}

// WithFlushInterval switches the writer goroutines from flush-per-burst to
// timer-paced flushing: an open batch is held until either WithBatchLimits
// cap is hit or d has elapsed since the batch's first envelope, whichever
// comes first, and only then encoded and flushed. Bounded added latency (at
// most d per op) buys bigger batches than the default cooperative-yield drain
// can assemble when callers trickle in slower than the scheduler rotates.
// Zero (the default) keeps the drain-and-yield behavior; the interval is
// ignored while batching is off, since every envelope must ride — and flush —
// its own frame there anyway.
func WithFlushInterval(d time.Duration) TCPOption {
	return func(o *tcpOptions) {
		if d >= 0 {
			o.flushInterval = d
		}
	}
}

// WithDialFunc replaces the network dialer (tests inject hanging or refusing
// dials; custom transports can layer TLS). The function must honor ctx.
func WithDialFunc(dial func(ctx context.Context, addr string) (net.Conn, error)) TCPOption {
	return func(o *tcpOptions) {
		if dial != nil {
			o.dial = dial
		}
	}
}

// WithDialBackoff tunes the per-peer re-dial pacing (default
// DefaultDialBackoff; see DialBackoff).
func WithDialBackoff(b DialBackoff) TCPOption {
	return func(o *tcpOptions) {
		o.backoff = b.normalized()
	}
}

// TCPServer serves a Handler on a TCP listener.
type TCPServer struct {
	id       types.ProcessID
	listener net.Listener
	handler  Handler
	opts     tcpOptions

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewTCPServer starts listening on addr and serving h for process id. Use
// Addr to discover the bound address when addr has port 0.
func NewTCPServer(id types.ProcessID, addr string, h Handler, opts ...TCPOption) (*TCPServer, error) {
	o := defaultTCPOptions()
	for _, opt := range opts {
		opt(&o)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &TCPServer{
		id:       id,
		listener: ln,
		handler:  h,
		opts:     o,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *TCPServer) Addr() string { return s.listener.Addr().String() }

// Close stops the listener and all connections, waiting for goroutines.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

// openConns reports the live connection count (tests poll it to observe
// write-error teardown).
func (s *TCPServer) openConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// serveConn runs one connection: a read loop decoding request frames, a
// bounded pool of handler goroutines, and a dedicated reply writer. Any
// write error is connection-fatal — the writer kills the connection, which
// unblocks the read loop and the handlers, instead of handlers piling more
// replies onto a dead socket.
func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	// done is the connection's death signal; kill is idempotent and safe
	// from any of the goroutines below.
	done := make(chan struct{})
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			close(done)
			_ = conn.Close()
		})
	}
	defer kill()

	replies := make(chan tcpReply, s.opts.sendQueue)
	enc := newFrameEncoder(s.opts.wire, conn)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		defer kill() // a reply-write error tears the connection down
		if d := s.opts.flushInterval; d > 0 && s.opts.batching {
			s.replyLoopTimed(enc, replies, done, d)
			return
		}
		maxEnvelopes, maxBytes := s.opts.batchCaps()
		flushEach := !s.opts.batching
		batch := make([]tcpReply, 0, maxEnvelopes)
		size := 0
		emit := func() error {
			err := enc.encodeReplyBatch(batch)
			batch, size = batch[:0], 0
			if err == nil && flushEach {
				err = enc.flush()
			}
			return err
		}
		for {
			select {
			case rep := <-replies:
				// Coalesce whatever other handlers finished meanwhile —
				// replies for many keys share one frame — then flush once
				// for the burst.
				batch = append(batch, rep)
				size += replyWireSize(rep)
				yielded := false
				for drained := false; !drained; {
					if len(batch) >= maxEnvelopes || size >= maxBytes {
						if err := emit(); err != nil {
							return
						}
					}
					select {
					case rep = <-replies:
						batch = append(batch, rep)
						size += replyWireSize(rep)
					default:
						// Same cooperative yield as the client writer: give
						// handlers that just became runnable one scheduler
						// pass to finish and enqueue, so concurrent replies
						// share a frame instead of trickling out one by one.
						if !yielded && !flushEach {
							yielded = true
							runtime.Gosched()
							continue
						}
						drained = true
					}
				}
				if err := emit(); err != nil {
					return
				}
				if err := enc.flush(); err != nil {
					return
				}
			case <-done:
				return
			}
		}
	}()

	// sem bounds in-flight handlers for this connection; when it is full
	// the read loop pauses, letting TCP flow control push back on the peer.
	sem := make(chan struct{}, s.opts.maxHandlers)
	dec := newFrameDecoder(s.opts.wire, conn)
	var handlerWG sync.WaitGroup
readLoop:
	for {
		var env tcpEnvelope
		if err := dec.decodeRequest(&env); err != nil {
			break
		}
		select {
		case sem <- struct{}{}:
		case <-done:
			break readLoop
		}
		handlerWG.Add(1)
		go func(env tcpEnvelope) {
			defer handlerWG.Done()
			defer func() { <-sem }()
			resp := s.handler.HandleRequest(env.From, env.Req)
			select {
			case replies <- tcpReply{ID: env.ID, Resp: resp}:
			case <-done:
			}
		}(env)
	}
	kill()
	handlerWG.Wait()
	writerWG.Wait()
}

// replyLoopTimed is the reply writer under WithFlushInterval: the open batch
// is held until a cap is hit or the timer — armed when the batch's first
// reply arrives — fires, then encoded and flushed as one burst. The timer
// replaces the cooperative Gosched yield: handlers finishing within the
// window share a frame no matter how the scheduler interleaves them.
func (s *TCPServer) replyLoopTimed(enc frameEncoder, replies <-chan tcpReply, done <-chan struct{}, d time.Duration) {
	maxEnvelopes, maxBytes := s.opts.batchCaps()
	batch := make([]tcpReply, 0, maxEnvelopes)
	size := 0
	timer := time.NewTimer(d)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	armed := false
	disarm := func() {
		if armed {
			armed = false
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
	}
	emit := func() error {
		err := enc.encodeReplyBatch(batch)
		batch, size = batch[:0], 0
		if err == nil {
			err = enc.flush()
		}
		disarm()
		return err
	}
	for {
		var fire <-chan time.Time
		if armed {
			fire = timer.C
		}
		select {
		case rep := <-replies:
			batch = append(batch, rep)
			size += replyWireSize(rep)
			if !armed {
				armed = true
				timer.Reset(d)
			}
			if len(batch) >= maxEnvelopes || size >= maxBytes {
				if err := emit(); err != nil {
					return
				}
			}
		case <-fire:
			armed = false
			if err := emit(); err != nil {
				return
			}
		case <-done:
			return
		}
	}
}

// TCPClient is a transport Client over TCP. It maintains one pipelined
// connection per destination, established lazily, and routes responses by
// request ID.
type TCPClient struct {
	self types.ProcessID
	book func(types.ProcessID) (string, bool)
	opts tcpOptions

	mu     sync.Mutex
	conns  map[string]*tcpConn
	dials  map[string]*dialState
	rng    *rand.Rand
	closed bool
	next   atomic.Uint64
}

// dialState is one peer's re-dial pacing: consecutive failures and the
// instant the next attempt is allowed. Guarded by TCPClient.mu.
type dialState struct {
	fails int
	until time.Time
}

// NewTCPClient constructs a client for process self that resolves server
// addresses through book (typically a map lookup over a static address book).
func NewTCPClient(self types.ProcessID, book func(types.ProcessID) (string, bool), opts ...TCPOption) *TCPClient {
	o := defaultTCPOptions()
	for _, opt := range opts {
		opt(&o)
	}
	seed := o.backoff.Seed
	if seed == 0 {
		h := fnv.New64a()
		_, _ = h.Write([]byte(self))
		seed = int64(h.Sum64())
	}
	return &TCPClient{
		self:  self,
		book:  book,
		opts:  o,
		conns: make(map[string]*tcpConn),
		dials: make(map[string]*dialState),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// StaticBook adapts an address map to the resolver shape NewTCPClient wants.
func StaticBook(m map[types.ProcessID]string) func(types.ProcessID) (string, bool) {
	return func(id types.ProcessID) (string, bool) {
		addr, ok := m[id]
		return addr, ok
	}
}

var _ Client = (*TCPClient)(nil)

// tcpConn is one pipelined peer connection: a bounded send queue owned by a
// writer goroutine, and the pending table the read loop resolves.
type tcpConn struct {
	conn  net.Conn
	sendQ chan tcpEnvelope
	// done closes exactly once when the connection dies; enqueued-but-
	// unwritten requests learn their fate through pending, not sendQ.
	done chan struct{}

	mu      sync.Mutex
	pending map[uint64]chan Response
	dead    bool
}

// Invoke implements Client. The request is registered in the pending table,
// handed to the connection's writer goroutine, and awaited — under no lock.
func (c *TCPClient) Invoke(ctx context.Context, dst types.ProcessID, req Request) (Response, error) {
	addr, ok := c.book(dst)
	if !ok {
		return Response{}, fmt.Errorf("%w: no address for %s", ErrUnreachable, dst)
	}
	tc, err := c.conn(ctx, addr)
	if err != nil {
		if errors.Is(err, ErrClosed) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return Response{}, err
		}
		return Response{}, fmt.Errorf("%w: dialing %s: %v", ErrUnreachable, dst, err)
	}

	id := c.next.Add(1)
	ch := make(chan Response, 1)
	tc.mu.Lock()
	if tc.dead {
		tc.mu.Unlock()
		return Response{}, fmt.Errorf("%w: connection to %s lost", ErrUnreachable, dst)
	}
	tc.pending[id] = ch
	tc.mu.Unlock()

	select {
	case tc.sendQ <- tcpEnvelope{ID: id, From: c.self, Req: req}:
	case <-tc.done:
		c.forget(tc, id)
		return Response{}, fmt.Errorf("%w: connection to %s lost", ErrUnreachable, dst)
	case <-ctx.Done():
		c.forget(tc, id)
		return Response{}, ctx.Err()
	}

	select {
	case resp, open := <-ch:
		if !open {
			return Response{}, fmt.Errorf("%w: connection to %s closed", ErrUnreachable, dst)
		}
		return resp, nil
	case <-ctx.Done():
		c.forget(tc, id)
		return Response{}, ctx.Err()
	}
}

// forget abandons a pending request (context expiry, enqueue failure). A
// response that still arrives finds no channel and is dropped.
func (c *TCPClient) forget(tc *tcpConn, id uint64) {
	tc.mu.Lock()
	delete(tc.pending, id)
	tc.mu.Unlock()
}

// Close tears down all connections, fails every in-flight Invoke with
// ErrUnreachable, and makes subsequent Invokes return ErrClosed.
func (c *TCPClient) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conns := make(map[string]*tcpConn, len(c.conns))
	for addr, tc := range c.conns {
		conns[addr] = tc
	}
	c.mu.Unlock()
	for addr, tc := range conns {
		c.dropConn(addr, tc)
	}
}

// conn returns the live connection for addr, dialing one — under the
// caller's context plus the configured timeout — if none exists. Re-dials of
// a peer that keeps refusing are paced by the dial backoff: inside a peer's
// backoff window conn fails fast instead of dialing, so a dead server costs
// each quorum phase a map lookup, not a SYN + refusal round trip.
func (c *TCPClient) conn(ctx context.Context, addr string) (*tcpConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: invoke after Close", ErrClosed)
	}
	if tc, ok := c.conns[addr]; ok {
		c.mu.Unlock()
		return tc, nil
	}
	if ds, ok := c.dials[addr]; ok {
		if wait := time.Until(ds.until); wait > 0 {
			fails := ds.fails
			c.mu.Unlock()
			return nil, fmt.Errorf("dial backoff after %d failures (next attempt in %v)", fails, wait.Round(time.Millisecond))
		}
	}
	c.mu.Unlock()

	dial := c.opts.dial
	if dial == nil {
		d := net.Dialer{Timeout: c.opts.dialTimeout}
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	raw, err := dial(ctx, addr)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			// The caller gave up, the peer didn't refuse: not a failure to
			// hold against the peer.
			return nil, ctxErr
		}
		c.noteDialFailure(addr)
		return nil, err
	}
	c.clearDialFailures(addr)
	tc := &tcpConn{
		conn:    raw,
		sendQ:   make(chan tcpEnvelope, c.opts.sendQueue),
		done:    make(chan struct{}),
		pending: make(map[uint64]chan Response),
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = raw.Close()
		return nil, fmt.Errorf("%w: invoke after Close", ErrClosed)
	}
	if existing, ok := c.conns[addr]; ok {
		// Lost the race; use the established connection.
		c.mu.Unlock()
		_ = raw.Close()
		return existing, nil
	}
	c.conns[addr] = tc
	c.mu.Unlock()

	go c.writeLoop(addr, tc)
	go c.readLoop(addr, tc)
	return tc, nil
}

// noteDialFailure records one failed dial of addr and opens (or grows) its
// backoff window.
func (c *TCPClient) noteDialFailure(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds := c.dials[addr]
	if ds == nil {
		ds = &dialState{}
		c.dials[addr] = ds
	}
	ds.fails++
	ds.until = time.Now().Add(c.opts.backoff.window(ds.fails, c.rng))
}

// clearDialFailures forgets addr's backoff state after a successful dial.
func (c *TCPClient) clearDialFailures(addr string) {
	c.mu.Lock()
	delete(c.dials, addr)
	c.mu.Unlock()
}

// requestWireSize estimates an envelope's frame cost for the batch byte cap
// (fields plus a generous varint/framing allowance — a cap, not an invoice).
func requestWireSize(env tcpEnvelope) int {
	return 16 + len(env.From) + len(env.Req.Service) + len(env.Req.Key) +
		len(env.Req.Config) + len(env.Req.Type) + len(env.Req.Payload)
}

func replyWireSize(rep tcpReply) int {
	return 16 + len(rep.Resp.Err) + len(rep.Resp.Payload)
}

// writeLoop owns the outbound half of one connection. It drains the send
// queue into FrameBatch frames — all envelopes bound for this peer, whatever
// key they target, pack together up to the batch caps — and flushes once per
// burst (or after every frame when batching is off). It is the only goroutine
// that can block in a socket write; Invoke and Close never do.
func (c *TCPClient) writeLoop(addr string, tc *tcpConn) {
	enc := newFrameEncoder(c.opts.wire, tc.conn)
	defer c.dropConn(addr, tc)
	if d := c.opts.flushInterval; d > 0 && c.opts.batching {
		c.writeLoopTimed(tc, enc, d)
		return
	}
	maxEnvelopes, maxBytes := c.opts.batchCaps()
	flushEach := !c.opts.batching
	batch := make([]tcpEnvelope, 0, maxEnvelopes)
	size := 0
	emit := func() error {
		err := enc.encodeRequestBatch(batch)
		batch, size = batch[:0], 0
		if err == nil && flushEach {
			err = enc.flush()
		}
		return err
	}
	for {
		select {
		case env := <-tc.sendQ:
			batch = append(batch, env)
			size += requestWireSize(env)
			yielded := false
			for drained := false; !drained; {
				if len(batch) >= maxEnvelopes || size >= maxBytes {
					if err := emit(); err != nil {
						return
					}
				}
				select {
				case env = <-tc.sendQ:
					batch = append(batch, env)
					size += requestWireSize(env)
				default:
					// One cooperative yield before closing the batch: the
					// enqueue that woke this writer put it in the scheduler's
					// next slot, ahead of every other caller mid-broadcast —
					// draining now would pack batches of one, forever. A
					// single Gosched lets those callers enqueue first; worst
					// case is one empty reschedule, no timers.
					if !yielded && !flushEach {
						yielded = true
						runtime.Gosched()
						continue
					}
					drained = true
				}
			}
			if err := emit(); err != nil {
				return
			}
			if err := enc.flush(); err != nil {
				return
			}
		case <-tc.done:
			return
		}
	}
}

// writeLoopTimed is writeLoop under WithFlushInterval — the request-side
// mirror of replyLoopTimed: hold the batch open until a cap is hit or d has
// elapsed since its first envelope, then encode and flush once. Worst-case
// added latency per request is d; in exchange, quorum phases that trickle in
// slower than the scheduler rotates still pack into shared frames.
func (c *TCPClient) writeLoopTimed(tc *tcpConn, enc frameEncoder, d time.Duration) {
	maxEnvelopes, maxBytes := c.opts.batchCaps()
	batch := make([]tcpEnvelope, 0, maxEnvelopes)
	size := 0
	timer := time.NewTimer(d)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	armed := false
	disarm := func() {
		if armed {
			armed = false
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
	}
	emit := func() error {
		err := enc.encodeRequestBatch(batch)
		batch, size = batch[:0], 0
		if err == nil {
			err = enc.flush()
		}
		disarm()
		return err
	}
	for {
		var fire <-chan time.Time
		if armed {
			fire = timer.C
		}
		select {
		case env := <-tc.sendQ:
			batch = append(batch, env)
			size += requestWireSize(env)
			if !armed {
				armed = true
				timer.Reset(d)
			}
			if len(batch) >= maxEnvelopes || size >= maxBytes {
				if err := emit(); err != nil {
					return
				}
			}
		case <-fire:
			armed = false
			if err := emit(); err != nil {
				return
			}
		case <-tc.done:
			return
		}
	}
}

// readLoop owns the inbound half: decode reply frames and resolve pending
// requests by ID.
func (c *TCPClient) readLoop(addr string, tc *tcpConn) {
	dec := newFrameDecoder(c.opts.wire, tc.conn)
	defer c.dropConn(addr, tc)
	for {
		var reply tcpReply
		if err := dec.decodeReply(&reply); err != nil {
			return
		}
		tc.mu.Lock()
		ch, ok := tc.pending[reply.ID]
		delete(tc.pending, reply.ID)
		tc.mu.Unlock()
		if ok {
			ch <- reply.Resp
		}
	}
}

// dropConn removes the connection from the client's table (if still
// current), marks it dead, fails every pending request, and closes the
// socket. Idempotent; called from either loop or from Close.
func (c *TCPClient) dropConn(addr string, tc *tcpConn) {
	c.mu.Lock()
	if c.conns[addr] == tc {
		delete(c.conns, addr)
	}
	c.mu.Unlock()

	tc.mu.Lock()
	if !tc.dead {
		tc.dead = true
		close(tc.done)
		for id, ch := range tc.pending {
			close(ch)
			delete(tc.pending, id)
		}
	}
	tc.mu.Unlock()
	_ = tc.conn.Close()
}
