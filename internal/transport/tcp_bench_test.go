package transport

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/ares-storage/ares/internal/types"
)

// benchEchoServer starts an echo server and a client wired to it for one
// benchmark, in the given wire format.
func benchEchoServer(b *testing.B, format WireFormat) (*TCPClient, func()) {
	b.Helper()
	srv, err := NewTCPServer("s1", "127.0.0.1:0", echoHandler(nil), WithWireFormat(format))
	if err != nil {
		b.Fatal(err)
	}
	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}), WithWireFormat(format))
	return client, func() {
		client.Close()
		_ = srv.Close()
	}
}

// BenchmarkTCPInvoke measures request/response round trips over one
// connection, sequentially and with concurrent invokers. The concurrent
// cases are the pipelining demonstration: all goroutines multiplex one
// socket, so ops/s must scale with parallelism instead of serializing
// behind a per-connection lock (the pre-PR 6 behaviour).
func BenchmarkTCPInvoke(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 1024)
	for _, format := range []WireFormat{WireBinary, WireGob} {
		for _, workers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("wire=%s/workers=%d", format, workers), func(b *testing.B) {
				client, cleanup := benchEchoServer(b, format)
				defer cleanup()
				ctx := context.Background()
				// Warm the connection so dial cost stays out of the loop.
				if _, err := client.Invoke(ctx, "s1", Request{Payload: payload}); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(len(payload)))
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / workers
				for w := 0; w < workers; w++ {
					n := per
					if w == 0 {
						n += b.N % workers
					}
					wg.Add(1)
					go func(n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							if _, err := client.Invoke(ctx, "s1", Request{Service: "bench", Type: "echo", Payload: payload}); err != nil {
								b.Error(err)
								return
							}
						}
					}(n)
				}
				wg.Wait()
			})
		}
	}
}
