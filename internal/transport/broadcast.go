package transport

import (
	"context"
	"sync"
	"time"

	"github.com/ares-storage/ares/internal/obs"
	"github.com/ares-storage/ares/internal/types"
)

// phaseHists caches the per-(service, type) quorum-phase latency
// histograms, keyed "service/type". After a phase's first execution the
// lookup is one lock-free sync.Map load; the observation itself is two
// atomic adds, which is noise against a quorum round-trip.
var phaseHists sync.Map // string -> *obs.Histogram

func phaseHist(service, typ string) *obs.Histogram {
	key := service + "/" + typ
	if h, ok := phaseHists.Load(key); ok {
		return h.(*obs.Histogram)
	}
	h := obs.Default.Histogram(
		`ares_phase_seconds{phase="`+key+`"}`,
		"Quorum-phase latency by service/type, Broadcast entry to quorum", nil)
	phaseHists.Store(key, h)
	return h
}

// Phase describes one quorum phase of a protocol: a typed request fanned out
// to a destination set under Gather's cancellation and quorum semantics.
// Every ARES building block — the DAPs' get-tag/get-data/put-data, the
// reconfiguration service's read-config/put-config, and the consensus
// rounds — is an instance of this shape ("send to all servers, await
// responses from ⌈(n+k)/2⌉ servers / a quorum", Alg. 2, 4, 12).
type Phase[RespT any] struct {
	// Service, Key, Config, and Type address the remote per-key state,
	// exactly as in Request.
	Service string
	Key     string
	Config  string
	Type    string

	// Body is the shared request body. Broadcast marshals it exactly once
	// and fans the same payload bytes out to every destination.
	Body any

	// BodyFor, when non-nil, overrides Body with a per-destination body —
	// the shape of TREAS put-data, where each server receives its own coded
	// element. Such a phase costs one encode per destination by necessity.
	BodyFor func(dst types.ProcessID) (any, error)

	// Check, when non-nil, validates a decoded reply. A reply failing Check
	// counts as that destination failing, not as progress toward the quorum
	// — e.g. an LDR replica answering with a stale tag.
	Check func(from types.ProcessID, resp RespT) error
}

// Broadcast runs one quorum phase: it encodes the request body (once for a
// shared Body, per destination for BodyFor), invokes every destination
// concurrently, decodes typed replies, and accumulates successes until
// enough is satisfied, then cancels the stragglers.
//
// Transport failures, service-level failures, and Check rejections all count
// as per-destination failures; Broadcast returns ErrQuorumUnavailable when
// they leave enough unsatisfiable, and ctx.Err() when the caller's context
// expires first (see Gather).
func Broadcast[RespT any](
	ctx context.Context,
	c Client,
	dsts []types.ProcessID,
	p Phase[RespT],
	enough func([]GatherResult[RespT]) bool,
) ([]GatherResult[RespT], error) {
	defer phaseHist(p.Service, p.Type).ObserveSince(time.Now())
	var shared []byte
	if p.BodyFor == nil {
		var err error
		shared, err = Marshal(p.Body)
		if err != nil {
			return nil, err
		}
	}
	return Gather(ctx, dsts,
		func(ctx context.Context, dst types.ProcessID) (RespT, error) {
			var zero RespT
			payload := shared
			if p.BodyFor != nil {
				body, err := p.BodyFor(dst)
				if err != nil {
					return zero, err
				}
				payload, err = Marshal(body)
				if err != nil {
					return zero, err
				}
			}
			out, err := invokePayload[RespT](ctx, c, dst, Addr{Service: p.Service, Key: p.Key, Config: p.Config, Type: p.Type}, payload)
			if err != nil {
				return zero, err
			}
			if p.Check != nil {
				if err := p.Check(dst, out); err != nil {
					return zero, err
				}
			}
			return out, nil
		},
		enough,
	)
}
