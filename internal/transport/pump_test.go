package transport

import (
	"context"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

// TestSimnetCloseRetiresPump exercises the pump lifecycle: delayed Invokes
// work before and after Close, and Close is idempotent.
func TestSimnetCloseRetiresPump(t *testing.T) {
	t.Parallel()
	net := NewSimnet(WithDelayRange(50*time.Microsecond, 100*time.Microsecond))
	net.Register("s1", HandlerFunc(func(types.ProcessID, Request) Response {
		return OKResponse(nil)
	}))
	c := net.Client("w1")
	ctx := context.Background()
	if _, err := c.Invoke(ctx, "s1", Request{Service: "svc", Type: "op"}); err != nil {
		t.Fatal(err)
	}
	net.Close()
	net.Close() // idempotent
	// The network still delivers; only the fidelity helper is gone.
	if _, err := c.Invoke(ctx, "s1", Request{Service: "svc", Type: "op"}); err != nil {
		t.Fatal(err)
	}
	// Closing a never-pumped network is also fine.
	NewSimnet().Close()
}
