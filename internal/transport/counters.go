package transport

import (
	"sort"
	"sync"
)

// Message direction labels used in counter keys.
const (
	dirRequest  = "req"
	dirResponse = "resp"
)

// Counter aggregates traffic for one (service, type, direction) tuple.
type Counter struct {
	// Messages is the number of messages observed.
	Messages int64
	// Bytes is the total payload bytes carried. Metadata-only messages
	// contribute their (small) encoded size; the paper's cost model counts
	// only object data, so experiments subtract a measured metadata baseline.
	Bytes int64
}

// Counters records wire traffic per message kind, implementing the
// communication-cost metric of §2 ("the size of the total data that gets
// transmitted in the messages sent as part of the operation").
type Counters struct {
	mu sync.Mutex
	m  map[string]Counter
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]Counter)}
}

// Record adds one message of the given size.
func (c *Counters) Record(service, msgType, dir string, bytes int) {
	key := service + "/" + msgType + "/" + dir
	c.mu.Lock()
	defer c.mu.Unlock()
	cnt := c.m[key]
	cnt.Messages++
	cnt.Bytes += int64(bytes)
	c.m[key] = cnt
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]Counter {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]Counter, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Reset clears all counters.
func (c *Counters) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[string]Counter)
}

// TotalBytes sums payload bytes over every counter whose key has the given
// service prefix; an empty prefix sums everything.
func (c *Counters) TotalBytes(servicePrefix string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for k, v := range c.m {
		if servicePrefix == "" || hasPrefix(k, servicePrefix+"/") {
			total += v.Bytes
		}
	}
	return total
}

// TotalMessages sums message counts over every counter with the given
// service prefix.
func (c *Counters) TotalMessages(servicePrefix string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for k, v := range c.m {
		if servicePrefix == "" || hasPrefix(k, servicePrefix+"/") {
			total += v.Messages
		}
	}
	return total
}

// Keys returns the sorted counter keys, for stable test and report output.
func (c *Counters) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
