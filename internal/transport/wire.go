package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"github.com/ares-storage/ares/internal/types"
)

// The TCP wire layer frames request/reply envelopes onto a byte stream. Two
// formats are supported:
//
//   - WireBinary (the default): every frame is a 4-byte big-endian length
//     followed by a hand-rolled body — a kind byte, a uvarint request ID,
//     and uvarint-length-prefixed strings/bytes for the envelope fields.
//     Nothing else crosses the wire: no type dictionaries, no field names,
//     no per-stream state. A frame costs its fields plus one varint per
//     field plus 5 bytes of framing.
//
//   - WireGob: the legacy stream format — a persistent gob encoder per
//     connection direction (so type descriptions are emitted once per
//     stream, amortized). Kept as the comparison baseline and as an escape
//     hatch for mixed-version deployments; ares-server selects it with
//     -wire gob.
//
// Both formats count frames and socket bytes into the process-wide
// CodecStats (WireEncodes/WireEncodedBytes/...), which is how the bench
// suite attributes bytes-per-operation to a codec and how tests pin the
// binary format's size advantage. Body payloads inside the envelope remain
// the product of transport.Marshal, so the Broadcast marshal-once
// invariants (one body encode per quorum phase) are unaffected by the wire
// format.

// WireFormat selects the TCP frame encoding.
type WireFormat string

const (
	// WireBinary is the compact length-prefixed binary framing (default).
	WireBinary WireFormat = "binary"
	// WireGob is the legacy per-stream gob framing.
	WireGob WireFormat = "gob"
)

// ParseWireFormat converts a flag value into a WireFormat.
func ParseWireFormat(s string) (WireFormat, error) {
	switch WireFormat(s) {
	case WireBinary, "":
		return WireBinary, nil
	case WireGob:
		return WireGob, nil
	}
	return "", fmt.Errorf("transport: unknown wire format %q (want %q or %q)", s, WireBinary, WireGob)
}

// Frame kinds. The kind byte leads every binary frame body so a peer that
// cross-wires directions (or a corrupted stream) fails loudly instead of
// misparsing.
const (
	frameRequest byte = 0x01
	frameReply   byte = 0x02
)

// maxWireFrame bounds a peer-supplied frame length. A corrupt or hostile
// length prefix must not make the reader allocate gigabytes.
const maxWireFrame = 64 << 20

// frameEncoder writes envelope frames onto a buffered stream. Implementations
// are not safe for concurrent use: exactly one writer goroutine owns each
// encoder (that is the pipelining invariant of the TCP data plane).
type frameEncoder interface {
	encodeRequest(env tcpEnvelope) error
	encodeReply(rep tcpReply) error
	// flush pushes buffered frames onto the socket. The writer goroutine
	// calls it after draining its send queue, so back-to-back frames share
	// one syscall.
	flush() error
}

// frameDecoder reads envelope frames from a stream. One reader goroutine
// owns each decoder.
type frameDecoder interface {
	decodeRequest(env *tcpEnvelope) error
	decodeReply(rep *tcpReply) error
}

// countingWriter counts socket-bound bytes into the wire counters. It sits
// under the bufio layer, so it observes exactly the bytes each flush writes.
type countingWriter struct {
	w io.Writer
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	codecStats.wireEncodedBytes.Add(int64(n))
	return n, err
}

// countingReader counts bytes consumed from the socket. It sits under the
// bufio layer; read-ahead buffering can run slightly ahead of decoded
// frames, which evens out over a stream.
type countingReader struct {
	r io.Reader
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	codecStats.wireDecodedBytes.Add(int64(n))
	return n, err
}

func newFrameEncoder(f WireFormat, w io.Writer) frameEncoder {
	bw := bufio.NewWriter(countingWriter{w})
	if f == WireGob {
		return &gobFrameEncoder{bw: bw, enc: gob.NewEncoder(bw)}
	}
	return &binaryFrameEncoder{bw: bw}
}

func newFrameDecoder(f WireFormat, r io.Reader) frameDecoder {
	br := bufio.NewReader(countingReader{r})
	if f == WireGob {
		return &gobFrameDecoder{dec: gob.NewDecoder(br)}
	}
	return &binaryFrameDecoder{br: br}
}

// --- binary format ---

type binaryFrameEncoder struct {
	bw      *bufio.Writer
	scratch []byte
}

func appendWireString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendWireBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// writeFrame emits the 4-byte length prefix and the body, and counts the
// frame.
func (e *binaryFrameEncoder) writeFrame(body []byte) error {
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(body)))
	if _, err := e.bw.Write(prefix[:]); err != nil {
		return err
	}
	if _, err := e.bw.Write(body); err != nil {
		return err
	}
	codecStats.wireEncodes.Add(1)
	return nil
}

func (e *binaryFrameEncoder) encodeRequest(env tcpEnvelope) error {
	b := e.scratch[:0]
	b = append(b, frameRequest)
	b = binary.AppendUvarint(b, env.ID)
	b = appendWireString(b, string(env.From))
	b = appendWireString(b, env.Req.Service)
	b = appendWireString(b, env.Req.Key)
	b = appendWireString(b, env.Req.Config)
	b = appendWireString(b, env.Req.Type)
	b = appendWireBytes(b, env.Req.Payload)
	e.scratch = b
	return e.writeFrame(b)
}

func (e *binaryFrameEncoder) encodeReply(rep tcpReply) error {
	b := e.scratch[:0]
	b = append(b, frameReply)
	b = binary.AppendUvarint(b, rep.ID)
	if rep.Resp.OK {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendWireString(b, rep.Resp.Err)
	b = appendWireBytes(b, rep.Resp.Payload)
	e.scratch = b
	return e.writeFrame(b)
}

func (e *binaryFrameEncoder) flush() error { return e.bw.Flush() }

type binaryFrameDecoder struct {
	br      *bufio.Reader
	scratch []byte
}

// readFrame reads one length-prefixed frame body into the reused scratch
// buffer. The returned slice is valid until the next readFrame.
func (d *binaryFrameDecoder) readFrame() ([]byte, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(d.br, prefix[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > maxWireFrame {
		return nil, fmt.Errorf("transport: wire frame of %d bytes exceeds limit %d", n, maxWireFrame)
	}
	if cap(d.scratch) < int(n) {
		d.scratch = make([]byte, n)
	}
	body := d.scratch[:n]
	if _, err := io.ReadFull(d.br, body); err != nil {
		return nil, err
	}
	codecStats.wireDecodes.Add(1)
	return body, nil
}

// wireCursor walks a frame body, remembering the first malformation.
type wireCursor struct {
	b   []byte
	err error
}

func (c *wireCursor) fail() {
	if c.err == nil {
		c.err = fmt.Errorf("transport: truncated wire frame")
	}
}

func (c *wireCursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.fail()
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *wireCursor) bytes() []byte {
	n := c.uvarint()
	if c.err != nil {
		return nil
	}
	if uint64(len(c.b)) < n {
		c.fail()
		return nil
	}
	p := c.b[:n]
	c.b = c.b[n:]
	return p
}

// string copies; the frame body is a reused scratch buffer and envelope
// fields outlive the next read.
func (c *wireCursor) string() string { return string(c.bytes()) }

func (c *wireCursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if len(c.b) == 0 {
		c.fail()
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (d *binaryFrameDecoder) decodeRequest(env *tcpEnvelope) error {
	body, err := d.readFrame()
	if err != nil {
		return err
	}
	c := wireCursor{b: body}
	if kind := c.byte(); c.err == nil && kind != frameRequest {
		return fmt.Errorf("transport: expected request frame, got kind 0x%02x", kind)
	}
	env.ID = c.uvarint()
	env.From = types.ProcessID(c.string())
	env.Req.Service = c.string()
	env.Req.Key = c.string()
	env.Req.Config = c.string()
	env.Req.Type = c.string()
	if p := c.bytes(); len(p) > 0 {
		env.Req.Payload = append([]byte(nil), p...)
	} else {
		env.Req.Payload = nil
	}
	return c.err
}

func (d *binaryFrameDecoder) decodeReply(rep *tcpReply) error {
	body, err := d.readFrame()
	if err != nil {
		return err
	}
	c := wireCursor{b: body}
	if kind := c.byte(); c.err == nil && kind != frameReply {
		return fmt.Errorf("transport: expected reply frame, got kind 0x%02x", kind)
	}
	rep.ID = c.uvarint()
	rep.Resp.OK = c.byte() == 1
	rep.Resp.Err = c.string()
	if p := c.bytes(); len(p) > 0 {
		rep.Resp.Payload = append([]byte(nil), p...)
	} else {
		rep.Resp.Payload = nil
	}
	return c.err
}

// --- gob format (legacy) ---

type gobFrameEncoder struct {
	bw  *bufio.Writer
	enc *gob.Encoder
}

func (e *gobFrameEncoder) encodeRequest(env tcpEnvelope) error {
	codecStats.wireEncodes.Add(1)
	return e.enc.Encode(env)
}

func (e *gobFrameEncoder) encodeReply(rep tcpReply) error {
	codecStats.wireEncodes.Add(1)
	return e.enc.Encode(rep)
}

func (e *gobFrameEncoder) flush() error { return e.bw.Flush() }

type gobFrameDecoder struct {
	dec *gob.Decoder
}

func (d *gobFrameDecoder) decodeRequest(env *tcpEnvelope) error {
	*env = tcpEnvelope{}
	if err := d.dec.Decode(env); err != nil {
		return err
	}
	codecStats.wireDecodes.Add(1)
	return nil
}

func (d *gobFrameDecoder) decodeReply(rep *tcpReply) error {
	*rep = tcpReply{}
	if err := d.dec.Decode(rep); err != nil {
		return err
	}
	codecStats.wireDecodes.Add(1)
	return nil
}
