package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"github.com/ares-storage/ares/internal/types"
)

// The TCP wire layer frames request/reply envelopes onto a byte stream. Two
// formats are supported:
//
//   - WireBinary (the default): every frame is a 4-byte big-endian length
//     followed by a hand-rolled body — a kind byte, a uvarint request ID,
//     and uvarint-length-prefixed strings/bytes for the envelope fields.
//     Nothing else crosses the wire: no type dictionaries, no field names,
//     no per-stream state. A frame costs its fields plus one varint per
//     field plus 5 bytes of framing.
//
//   - WireGob: the legacy stream format — a persistent gob encoder per
//     connection direction (so type descriptions are emitted once per
//     stream, amortized). Kept as the comparison baseline and as an escape
//     hatch for mixed-version deployments; ares-server selects it with
//     -wire gob.
//
// Both formats count frames and socket bytes into the process-wide
// CodecStats (WireEncodes/WireEncodedBytes/...), which is how the bench
// suite attributes bytes-per-operation to a codec and how tests pin the
// binary format's size advantage. Body payloads inside the envelope remain
// the product of transport.Marshal, so the Broadcast marshal-once
// invariants (one body encode per quorum phase) are unaffected by the wire
// format.

// WireFormat selects the TCP frame encoding.
type WireFormat string

const (
	// WireBinary is the compact length-prefixed binary framing (default).
	WireBinary WireFormat = "binary"
	// WireGob is the legacy per-stream gob framing.
	WireGob WireFormat = "gob"
)

// ParseWireFormat converts a flag value into a WireFormat.
func ParseWireFormat(s string) (WireFormat, error) {
	switch WireFormat(s) {
	case WireBinary, "":
		return WireBinary, nil
	case WireGob:
		return WireGob, nil
	}
	return "", fmt.Errorf("transport: unknown wire format %q (want %q or %q)", s, WireBinary, WireGob)
}

// Frame kinds. The kind byte leads every binary frame body so a peer that
// cross-wires directions (or a corrupted stream) fails loudly instead of
// misparsing.
const (
	frameRequest byte = 0x01
	frameReply   byte = 0x02
	// frameBatch wraps several request or reply frames in one outer frame:
	// kind byte, uvarint envelope count, then count × (uvarint inner length,
	// inner frame body including its own kind byte). The writer goroutine
	// packs every envelope drained from a send queue in one pass into a
	// single batch, so a multi-key burst to one peer costs one length
	// prefix, one write, and one decode loop instead of one frame each.
	frameBatch byte = 0x03
)

// maxWireFrame bounds a peer-supplied frame length. A corrupt or hostile
// length prefix must not make the reader allocate gigabytes.
const maxWireFrame = 64 << 20

// frameEncoder writes envelope frames onto a buffered stream. Implementations
// are not safe for concurrent use: exactly one writer goroutine owns each
// encoder (that is the pipelining invariant of the TCP data plane).
type frameEncoder interface {
	encodeRequest(env tcpEnvelope) error
	encodeReply(rep tcpReply) error
	// encodeRequestBatch and encodeReplyBatch coalesce several envelopes
	// into one FrameBatch frame (binary format). The gob format has no
	// batch framing — its encoders fall back to a per-envelope loop, so
	// -wire gob keeps working with the batching writer path.
	encodeRequestBatch(envs []tcpEnvelope) error
	encodeReplyBatch(reps []tcpReply) error
	// flush pushes buffered frames onto the socket. The writer goroutine
	// calls it after draining its send queue, so back-to-back frames share
	// one syscall.
	flush() error
}

// frameDecoder reads envelope frames from a stream. One reader goroutine
// owns each decoder.
type frameDecoder interface {
	decodeRequest(env *tcpEnvelope) error
	decodeReply(rep *tcpReply) error
}

// countingWriter counts socket-bound bytes into the wire counters. It sits
// under the bufio layer, so it observes exactly the bytes each flush writes.
type countingWriter struct {
	w io.Writer
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	codecStats.wireEncodedBytes.Add(int64(n))
	return n, err
}

// countingReader counts bytes consumed from the socket. It sits under the
// bufio layer; read-ahead buffering can run slightly ahead of decoded
// frames, which evens out over a stream.
type countingReader struct {
	r io.Reader
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	codecStats.wireDecodedBytes.Add(int64(n))
	return n, err
}

func newFrameEncoder(f WireFormat, w io.Writer) frameEncoder {
	bw := bufio.NewWriter(countingWriter{w})
	if f == WireGob {
		return &gobFrameEncoder{bw: bw, enc: gob.NewEncoder(bw)}
	}
	return &binaryFrameEncoder{bw: bw}
}

func newFrameDecoder(f WireFormat, r io.Reader) frameDecoder {
	br := bufio.NewReader(countingReader{r})
	if f == WireGob {
		return &gobFrameDecoder{dec: gob.NewDecoder(br)}
	}
	return &binaryFrameDecoder{br: br}
}

// --- binary format ---

type binaryFrameEncoder struct {
	bw      *bufio.Writer
	scratch []byte
	// inner is a second reuse buffer for building per-envelope bodies while
	// scratch accumulates the outer batch frame.
	inner []byte
}

func appendWireString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendWireBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// writeFrame emits the 4-byte length prefix and the body, and counts the
// frame.
func (e *binaryFrameEncoder) writeFrame(body []byte) error {
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(body)))
	if _, err := e.bw.Write(prefix[:]); err != nil {
		return err
	}
	if _, err := e.bw.Write(body); err != nil {
		return err
	}
	codecStats.wireEncodes.Add(1)
	return nil
}

func appendRequestBody(b []byte, env tcpEnvelope) []byte {
	b = append(b, frameRequest)
	b = binary.AppendUvarint(b, env.ID)
	b = appendWireString(b, string(env.From))
	b = appendWireString(b, env.Req.Service)
	b = appendWireString(b, env.Req.Key)
	b = appendWireString(b, env.Req.Config)
	b = appendWireString(b, env.Req.Type)
	b = appendWireBytes(b, env.Req.Payload)
	return b
}

func appendReplyBody(b []byte, rep tcpReply) []byte {
	b = append(b, frameReply)
	b = binary.AppendUvarint(b, rep.ID)
	if rep.Resp.OK {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendWireString(b, rep.Resp.Err)
	b = appendWireBytes(b, rep.Resp.Payload)
	return b
}

func (e *binaryFrameEncoder) encodeRequest(env tcpEnvelope) error {
	b := appendRequestBody(e.scratch[:0], env)
	e.scratch = b
	recordFrameEnvelopes(1)
	return e.writeFrame(b)
}

func (e *binaryFrameEncoder) encodeReply(rep tcpReply) error {
	b := appendReplyBody(e.scratch[:0], rep)
	e.scratch = b
	recordFrameEnvelopes(1)
	return e.writeFrame(b)
}

// encodeBatch wraps n pre-built inner bodies (appended via build) into one
// FrameBatch frame. A batch of one degrades to the plain single frame, so
// the wire never pays batch overhead for a lone envelope.
func (e *binaryFrameEncoder) encodeBatch(n int, build func(b []byte, i int) []byte) error {
	if n == 1 {
		b := build(e.scratch[:0], 0)
		e.scratch = b
		recordFrameEnvelopes(1)
		return e.writeFrame(b)
	}
	outer := e.scratch[:0]
	outer = append(outer, frameBatch)
	outer = binary.AppendUvarint(outer, uint64(n))
	for i := 0; i < n; i++ {
		inner := build(e.inner[:0], i)
		e.inner = inner
		outer = appendWireBytes(outer, inner)
	}
	e.scratch = outer
	recordFrameEnvelopes(n)
	return e.writeFrame(outer)
}

func (e *binaryFrameEncoder) encodeRequestBatch(envs []tcpEnvelope) error {
	if len(envs) == 0 {
		return nil
	}
	return e.encodeBatch(len(envs), func(b []byte, i int) []byte {
		return appendRequestBody(b, envs[i])
	})
}

func (e *binaryFrameEncoder) encodeReplyBatch(reps []tcpReply) error {
	if len(reps) == 0 {
		return nil
	}
	return e.encodeBatch(len(reps), func(b []byte, i int) []byte {
		return appendReplyBody(b, reps[i])
	})
}

func (e *binaryFrameEncoder) flush() error { return e.bw.Flush() }

type binaryFrameDecoder struct {
	br      *bufio.Reader
	scratch []byte
	// pending holds the not-yet-consumed inner bodies of the last FrameBatch
	// frame. They alias scratch, which is safe because readFrame only runs
	// again once pending is empty.
	pending [][]byte
}

// readFrame reads one length-prefixed frame body into the reused scratch
// buffer. The returned slice is valid until the next readFrame.
func (d *binaryFrameDecoder) readFrame() ([]byte, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(d.br, prefix[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > maxWireFrame {
		return nil, fmt.Errorf("transport: wire frame of %d bytes exceeds limit %d", n, maxWireFrame)
	}
	if cap(d.scratch) < int(n) {
		d.scratch = make([]byte, n)
	}
	body := d.scratch[:n]
	if _, err := io.ReadFull(d.br, body); err != nil {
		return nil, err
	}
	codecStats.wireDecodes.Add(1)
	return body, nil
}

// nextBody returns the next envelope body: a queued inner body from the last
// batch frame if any remain, otherwise a fresh frame — unpacking it first if
// it is a FrameBatch. Callers see a flat stream of request/reply bodies; the
// read loops never know whether the peer batched.
func (d *binaryFrameDecoder) nextBody() ([]byte, error) {
	if len(d.pending) > 0 {
		body := d.pending[0]
		d.pending = d.pending[1:]
		return body, nil
	}
	body, err := d.readFrame()
	if err != nil {
		return nil, err
	}
	if len(body) == 0 || body[0] != frameBatch {
		return body, nil
	}
	c := wireCursor{b: body[1:]}
	n := c.uvarint()
	if c.err != nil {
		return nil, c.err
	}
	if n == 0 {
		return nil, fmt.Errorf("transport: empty batch frame")
	}
	if n > uint64(len(c.b)) { // every inner body costs ≥1 byte on the wire
		return nil, fmt.Errorf("transport: batch frame claims %d envelopes in %d bytes", n, len(c.b))
	}
	inners := d.pending[:0]
	for i := uint64(0); i < n; i++ {
		inner := c.bytes()
		if c.err != nil {
			return nil, c.err
		}
		inners = append(inners, inner)
	}
	if len(c.b) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after batch frame", len(c.b))
	}
	body = inners[0]
	d.pending = inners[1:]
	return body, nil
}

// wireCursor walks a frame body, remembering the first malformation.
type wireCursor struct {
	b   []byte
	err error
}

func (c *wireCursor) fail() {
	if c.err == nil {
		c.err = fmt.Errorf("transport: truncated wire frame")
	}
}

func (c *wireCursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.fail()
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *wireCursor) bytes() []byte {
	n := c.uvarint()
	if c.err != nil {
		return nil
	}
	if uint64(len(c.b)) < n {
		c.fail()
		return nil
	}
	p := c.b[:n]
	c.b = c.b[n:]
	return p
}

// string copies; the frame body is a reused scratch buffer and envelope
// fields outlive the next read.
func (c *wireCursor) string() string { return string(c.bytes()) }

func (c *wireCursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if len(c.b) == 0 {
		c.fail()
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (d *binaryFrameDecoder) decodeRequest(env *tcpEnvelope) error {
	body, err := d.nextBody()
	if err != nil {
		return err
	}
	c := wireCursor{b: body}
	if kind := c.byte(); c.err == nil && kind != frameRequest {
		return fmt.Errorf("transport: expected request frame, got kind 0x%02x", kind)
	}
	env.ID = c.uvarint()
	env.From = types.ProcessID(c.string())
	env.Req.Service = c.string()
	env.Req.Key = c.string()
	env.Req.Config = c.string()
	env.Req.Type = c.string()
	if p := c.bytes(); len(p) > 0 {
		env.Req.Payload = append([]byte(nil), p...)
	} else {
		env.Req.Payload = nil
	}
	return c.err
}

func (d *binaryFrameDecoder) decodeReply(rep *tcpReply) error {
	body, err := d.nextBody()
	if err != nil {
		return err
	}
	c := wireCursor{b: body}
	if kind := c.byte(); c.err == nil && kind != frameReply {
		return fmt.Errorf("transport: expected reply frame, got kind 0x%02x", kind)
	}
	rep.ID = c.uvarint()
	rep.Resp.OK = c.byte() == 1
	rep.Resp.Err = c.string()
	if p := c.bytes(); len(p) > 0 {
		rep.Resp.Payload = append([]byte(nil), p...)
	} else {
		rep.Resp.Payload = nil
	}
	return c.err
}

// --- gob format (legacy) ---

type gobFrameEncoder struct {
	bw  *bufio.Writer
	enc *gob.Encoder
}

func (e *gobFrameEncoder) encodeRequest(env tcpEnvelope) error {
	codecStats.wireEncodes.Add(1)
	recordFrameEnvelopes(1)
	return e.enc.Encode(env)
}

func (e *gobFrameEncoder) encodeReply(rep tcpReply) error {
	codecStats.wireEncodes.Add(1)
	recordFrameEnvelopes(1)
	return e.enc.Encode(rep)
}

// The gob stream has no batch framing: batching still amortizes the flush
// syscall (one Flush per drained queue), but each envelope is its own gob
// value so the legacy format stays decodable by older peers.
func (e *gobFrameEncoder) encodeRequestBatch(envs []tcpEnvelope) error {
	for _, env := range envs {
		if err := e.encodeRequest(env); err != nil {
			return err
		}
	}
	return nil
}

func (e *gobFrameEncoder) encodeReplyBatch(reps []tcpReply) error {
	for _, rep := range reps {
		if err := e.encodeReply(rep); err != nil {
			return err
		}
	}
	return nil
}

func (e *gobFrameEncoder) flush() error { return e.bw.Flush() }

type gobFrameDecoder struct {
	dec *gob.Decoder
}

func (d *gobFrameDecoder) decodeRequest(env *tcpEnvelope) error {
	*env = tcpEnvelope{}
	if err := d.dec.Decode(env); err != nil {
		return err
	}
	codecStats.wireDecodes.Add(1)
	return nil
}

func (d *gobFrameDecoder) decodeReply(rep *tcpReply) error {
	*rep = tcpReply{}
	if err := d.dec.Decode(rep); err != nil {
		return err
	}
	codecStats.wireDecodes.Add(1)
	return nil
}
