package transport

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"github.com/ares-storage/ares/internal/types"
)

// sampleEnvelopes is a representative mix of quorum-phase traffic: small
// metadata queries, a mid-size put-data, an empty-payload ack request.
func sampleEnvelopes() []tcpEnvelope {
	payload := bytes.Repeat([]byte{0xAB}, 512)
	return []tcpEnvelope{
		{ID: 1, From: "c1", Req: Request{Service: "abd", Key: "obj-1", Config: "store/obj-1/c0", Type: "query-tag", Payload: []byte{1, 2, 3}}},
		{ID: 2, From: "c1", Req: Request{Service: "treas", Key: "obj-2", Config: "store/obj-2/c0", Type: "put-data", Payload: payload}},
		{ID: 3, From: "recon-9", Req: Request{Service: "recon", Key: "obj-1", Config: "store/obj-1/c4", Type: "read-config"}},
	}
}

func sampleReplies() []tcpReply {
	return []tcpReply{
		{ID: 1, Resp: Response{OK: true, Payload: []byte{9, 8, 7}}},
		{ID: 2, Resp: Response{OK: true}},
		{ID: 3, Resp: Response{OK: false, Err: "cfg: configuration retired"}},
	}
}

// TestWireRoundTrip pins that both formats decode exactly what they encoded,
// in both frame directions.
func TestWireRoundTrip(t *testing.T) {
	t.Parallel()
	for _, format := range []WireFormat{WireBinary, WireGob} {
		format := format
		t.Run(string(format), func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			enc := newFrameEncoder(format, &buf)
			for _, env := range sampleEnvelopes() {
				if err := enc.encodeRequest(env); err != nil {
					t.Fatal(err)
				}
			}
			for _, rep := range sampleReplies() {
				if err := enc.encodeReply(rep); err != nil {
					t.Fatal(err)
				}
			}
			if err := enc.flush(); err != nil {
				t.Fatal(err)
			}

			dec := newFrameDecoder(format, &buf)
			for _, want := range sampleEnvelopes() {
				var got tcpEnvelope
				if err := dec.decodeRequest(&got); err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("request round trip:\n got %+v\nwant %+v", got, want)
				}
			}
			for _, want := range sampleReplies() {
				var got tcpReply
				if err := dec.decodeReply(&got); err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("reply round trip:\n got %+v\nwant %+v", got, want)
				}
			}
		})
	}
}

// encodeAll returns the total stream bytes for the sample traffic in one
// format — a stream, not per-frame, so gob's amortized type dictionary is
// charged the way a real connection pays it.
func encodeAll(t *testing.T, format WireFormat, repeat int) int {
	t.Helper()
	var buf bytes.Buffer
	enc := newFrameEncoder(format, &buf)
	id := uint64(0)
	for i := 0; i < repeat; i++ {
		for _, env := range sampleEnvelopes() {
			id++
			env.ID = id
			if err := enc.encodeRequest(env); err != nil {
				t.Fatal(err)
			}
		}
		for _, rep := range sampleReplies() {
			id++
			rep.ID = id
			if err := enc.encodeReply(rep); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := enc.flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Len()
}

// TestWireBinarySmallerThanGob pins the tentpole's size claim: the binary
// format beats the gob stream on bytes per frame — even over a long stream
// where gob's per-stream type dictionary is fully amortized.
func TestWireBinarySmallerThanGob(t *testing.T) {
	t.Parallel()
	const repeat = 100
	frames := repeat * (len(sampleEnvelopes()) + len(sampleReplies()))
	binaryBytes := encodeAll(t, WireBinary, repeat)
	gobBytes := encodeAll(t, WireGob, repeat)
	t.Logf("binary %d B (%d B/frame), gob %d B (%d B/frame)",
		binaryBytes, binaryBytes/frames, gobBytes, gobBytes/frames)
	if binaryBytes >= gobBytes {
		t.Fatalf("binary stream (%d B) not smaller than gob stream (%d B)", binaryBytes, gobBytes)
	}
}

// TestWireCountsIntoCodecStats pins that frame traffic lands in the wire
// counters (bench suites divide these by ops for bytes/op).
func TestWireCountsIntoCodecStats(t *testing.T) {
	// Not parallel: codec counters are process-wide.
	before := CodecStats()
	var buf bytes.Buffer
	enc := newFrameEncoder(WireBinary, &buf)
	for _, env := range sampleEnvelopes() {
		if err := enc.encodeRequest(env); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.flush(); err != nil {
		t.Fatal(err)
	}
	wrote := buf.Len()
	dec := newFrameDecoder(WireBinary, &buf)
	for range sampleEnvelopes() {
		var env tcpEnvelope
		if err := dec.decodeRequest(&env); err != nil {
			t.Fatal(err)
		}
	}
	after := CodecStats()
	if got := after.WireEncodes - before.WireEncodes; got != int64(len(sampleEnvelopes())) {
		t.Fatalf("WireEncodes delta = %d, want %d", got, len(sampleEnvelopes()))
	}
	if got := after.WireEncodedBytes - before.WireEncodedBytes; got != int64(wrote) {
		t.Fatalf("WireEncodedBytes delta = %d, want %d", got, wrote)
	}
	if got := after.WireDecodes - before.WireDecodes; got != int64(len(sampleEnvelopes())) {
		t.Fatalf("WireDecodes delta = %d, want %d", got, len(sampleEnvelopes()))
	}
	if after.WireDecodedBytes-before.WireDecodedBytes <= 0 {
		t.Fatal("WireDecodedBytes did not advance")
	}
}

// TestWireRejectsOversizedFrame pins the length-prefix guard: a corrupt or
// hostile frame length fails the decode instead of allocating gigabytes.
func TestWireRejectsOversizedFrame(t *testing.T) {
	t.Parallel()
	buf := []byte{0xFF, 0xFF, 0xFF, 0xFF} // ~4 GiB frame
	dec := newFrameDecoder(WireBinary, bytes.NewReader(buf))
	var env tcpEnvelope
	if err := dec.decodeRequest(&env); err == nil {
		t.Fatal("oversized frame length was accepted")
	}
}

// TestWireRejectsTruncatedFrame pins that a body shorter than its fields
// claim surfaces as an error, not a misparse.
func TestWireRejectsTruncatedFrame(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	enc := newFrameEncoder(WireBinary, &buf)
	if err := enc.encodeRequest(sampleEnvelopes()[0]); err != nil {
		t.Fatal(err)
	}
	if err := enc.flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Keep the 4-byte length prefix intact but drop the tail of the body.
	cut := append([]byte(nil), full[:len(full)-3]...)
	dec := newFrameDecoder(WireBinary, bytes.NewReader(cut))
	var env tcpEnvelope
	if err := dec.decodeRequest(&env); err == nil {
		t.Fatal("truncated frame was accepted")
	}
}

// TestWireKindMismatch pins the direction check: a reply frame read where a
// request is expected (cross-wired peer) errors out.
func TestWireKindMismatch(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	enc := newFrameEncoder(WireBinary, &buf)
	if err := enc.encodeReply(sampleReplies()[0]); err != nil {
		t.Fatal(err)
	}
	if err := enc.flush(); err != nil {
		t.Fatal(err)
	}
	dec := newFrameDecoder(WireBinary, &buf)
	var env tcpEnvelope
	if err := dec.decodeRequest(&env); err == nil {
		t.Fatal("reply frame decoded as request")
	}
}

// TestParseWireFormat covers the flag surface ares-server exposes.
func TestParseWireFormat(t *testing.T) {
	t.Parallel()
	for in, want := range map[string]WireFormat{"": WireBinary, "binary": WireBinary, "gob": WireGob} {
		got, err := ParseWireFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseWireFormat(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseWireFormat("protobuf"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestTCPGobWireEndToEnd runs a round trip over real sockets with the legacy
// gob framing, pinning that -wire gob remains a working configuration.
func TestTCPGobWireEndToEnd(t *testing.T) {
	t.Parallel()
	srv, err := NewTCPServer("s1", "127.0.0.1:0", echoHandler(nil), WithWireFormat(WireGob))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}), WithWireFormat(WireGob))
	defer client.Close()
	resp, err := client.Invoke(context.Background(), "s1", Request{Service: "svc", Type: "echo", Payload: []byte("gob wire")})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || string(resp.Payload) != "gob wire" {
		t.Fatalf("resp = %+v", resp)
	}
}
