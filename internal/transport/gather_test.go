package transport

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

func ids(n int) []types.ProcessID {
	out := make([]types.ProcessID, n)
	for i := range out {
		out[i] = types.ProcessID(fmt.Sprintf("s%d", i+1))
	}
	return out
}

func TestGatherMajority(t *testing.T) {
	t.Parallel()
	dsts := ids(5)
	got, err := Gather(context.Background(), dsts,
		func(_ context.Context, dst types.ProcessID) (string, error) {
			return string(dst), nil
		},
		AtLeast[string](3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 3 {
		t.Fatalf("gathered %d results, want >= 3", len(got))
	}
}

func TestGatherToleratesFailures(t *testing.T) {
	t.Parallel()
	dsts := ids(5)
	got, err := Gather(context.Background(), dsts,
		func(_ context.Context, dst types.ProcessID) (int, error) {
			if dst == "s1" || dst == "s2" {
				return 0, errors.New("crashed")
			}
			return 1, nil
		},
		AtLeast[int](3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("gathered %d, want 3", len(got))
	}
}

func TestGatherQuorumUnavailable(t *testing.T) {
	t.Parallel()
	dsts := ids(5)
	_, err := Gather(context.Background(), dsts,
		func(_ context.Context, dst types.ProcessID) (int, error) {
			if dst != "s5" {
				return 0, errors.New("down")
			}
			return 1, nil
		},
		AtLeast[int](3),
	)
	if !errors.Is(err, ErrQuorumUnavailable) {
		t.Fatalf("err = %v, want ErrQuorumUnavailable", err)
	}
}

func TestGatherContextExpiry(t *testing.T) {
	t.Parallel()
	dsts := ids(3)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := Gather(ctx, dsts,
		func(ctx context.Context, _ types.ProcessID) (int, error) {
			<-ctx.Done() // all servers hang
			return 0, ctx.Err()
		},
		AtLeast[int](2),
	)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestGatherCancelsStragglers(t *testing.T) {
	t.Parallel()
	var cancelled atomic.Int32
	dsts := ids(5)
	_, err := Gather(context.Background(), dsts,
		func(ctx context.Context, dst types.ProcessID) (int, error) {
			if dst == "s5" {
				// Straggler: should be cancelled once quorum is reached.
				<-ctx.Done()
				cancelled.Add(1)
				return 0, ctx.Err()
			}
			return 1, nil
		},
		AtLeast[int](4),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Gather waits for its goroutines before returning, so the straggler has
	// observed cancellation by now.
	if cancelled.Load() != 1 {
		t.Fatalf("straggler cancelled %d times, want 1", cancelled.Load())
	}
}

func TestGatherCustomPredicate(t *testing.T) {
	t.Parallel()
	// A predicate that needs results from two specific servers, regardless of
	// count — exercising non-threshold quorums.
	dsts := ids(4)
	need := map[types.ProcessID]bool{"s2": true, "s3": true}
	got, err := Gather(context.Background(), dsts,
		func(_ context.Context, dst types.ProcessID) (types.ProcessID, error) {
			return dst, nil
		},
		func(got []GatherResult[types.ProcessID]) bool {
			seen := 0
			for _, g := range got {
				if need[g.From] {
					seen++
				}
			}
			return seen == len(need)
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 {
		t.Fatalf("gathered %d", len(got))
	}
}

func TestInvokeTyped(t *testing.T) {
	t.Parallel()
	type reqBody struct{ X int }
	type respBody struct{ Y int }
	net := NewSimnet()
	net.Register("s1", HandlerFunc(func(_ types.ProcessID, req Request) Response {
		var in reqBody
		if err := Unmarshal(req.Payload, &in); err != nil {
			return ErrResponse(err)
		}
		return OKResponse(MustMarshal(respBody{Y: in.X * 2}))
	}))
	out, err := InvokeTyped[respBody](context.Background(), net.Client("c1"), "s1", Addr{Service: "svc", Key: "k", Config: "cfg", Type: "op"}, reqBody{X: 21})
	if err != nil {
		t.Fatal(err)
	}
	if out.Y != 42 {
		t.Fatalf("Y = %d, want 42", out.Y)
	}
}

func TestInvokeTypedServiceError(t *testing.T) {
	t.Parallel()
	net := NewSimnet()
	net.Register("s1", HandlerFunc(func(types.ProcessID, Request) Response {
		return ErrResponse(errors.New("nope"))
	}))
	_, err := InvokeTyped[struct{}](context.Background(), net.Client("c1"), "s1", Addr{Service: "svc", Config: "cfg", Type: "op"}, struct{}{})
	if !errors.Is(err, ErrServiceFailure) {
		t.Fatalf("err = %v, want ErrServiceFailure", err)
	}
}
