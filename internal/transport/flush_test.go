package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

// TestFlushIntervalCoalescesTrickledRequests is the deterministic pin for
// WithFlushInterval: two Invokes spaced well apart — far beyond what the
// cooperative-yield drain could ever pack together — land inside one flush
// window and must ride a single FrameBatch frame. The test plays the peer on
// the raw stream, so the frame layout is asserted byte by byte.
func TestFlushIntervalCoalescesTrickledRequests(t *testing.T) {
	t.Parallel()
	serverSide := make(chan net.Conn, 1)
	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": "pipe"}),
		WithFlushInterval(300*time.Millisecond), pipeBook(serverSide))
	defer client.Close()

	const total = 2
	results := make(chan error, total)
	invoke := func(i int) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		resp, err := client.Invoke(ctx, "s1", Request{
			Service: "svc", Type: "op", Payload: []byte(fmt.Sprintf("trickle-%d", i)),
		})
		if err == nil && !resp.OK {
			err = fmt.Errorf("response not OK: %+v", resp)
		}
		results <- err
	}
	go invoke(0)
	// The second request arrives mid-window: long after the first enqueued
	// (any drain pass is over), long before the 300 ms timer fires.
	time.Sleep(50 * time.Millisecond)
	go invoke(1)

	ss := <-serverSide
	defer ss.Close()
	var raw bytes.Buffer
	dec := newFrameDecoder(WireBinary, io.TeeReader(ss, &raw))
	enc := newFrameEncoder(WireBinary, ss)
	for seen := 0; seen < total; seen++ {
		var env tcpEnvelope
		if err := dec.decodeRequest(&env); err != nil {
			t.Fatalf("decoding request %d: %v", seen, err)
		}
		if err := enc.encodeReply(tcpReply{ID: env.ID, Resp: OKResponse(nil)}); err != nil {
			t.Fatal(err)
		}
		if err := enc.flush(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total; i++ {
		if err := <-results; err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}

	// Exactly one frame on the wire, and it is a two-envelope batch.
	var prefix [4]byte
	if _, err := io.ReadFull(&raw, prefix[:]); err != nil {
		t.Fatal(err)
	}
	body := make([]byte, binary.BigEndian.Uint32(prefix[:]))
	if _, err := io.ReadFull(&raw, body); err != nil {
		t.Fatal(err)
	}
	if raw.Len() != 0 {
		t.Fatalf("stream carried %d trailing bytes after the first frame: requests were not coalesced", raw.Len())
	}
	if len(body) == 0 || body[0] != frameBatch {
		t.Fatal("the single frame is not a FrameBatch")
	}
	c := wireCursor{b: body[1:]}
	if n := int(c.uvarint()); c.err != nil || n != total {
		t.Fatalf("batch frame carries %d envelopes, want %d (err %v)", n, total, c.err)
	}
}

// TestFlushIntervalCapOverridesTimer pins the early-exit path: when the batch
// caps are hit before the timer fires, the writer must emit immediately — the
// interval bounds added latency, it never delays a full batch.
func TestFlushIntervalCapOverridesTimer(t *testing.T) {
	t.Parallel()
	serverSide := make(chan net.Conn, 1)
	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": "pipe"}),
		WithFlushInterval(10*time.Second), WithBatchLimits(2, 1<<20), pipeBook(serverSide))
	defer client.Close()

	const total = 2
	results := make(chan error, total)
	start := time.Now()
	for i := 0; i < total; i++ {
		i := i
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, err := client.Invoke(ctx, "s1", Request{Service: "svc", Type: "op", Payload: []byte{byte(i)}})
			results <- err
		}()
	}
	ss := <-serverSide
	defer ss.Close()
	dec := newFrameDecoder(WireBinary, ss)
	enc := newFrameEncoder(WireBinary, ss)
	for seen := 0; seen < total; seen++ {
		var env tcpEnvelope
		if err := dec.decodeRequest(&env); err != nil {
			t.Fatalf("decoding request %d: %v", seen, err)
		}
		if err := enc.encodeReply(tcpReply{ID: env.ID, Resp: OKResponse(nil)}); err != nil {
			t.Fatal(err)
		}
		if err := enc.flush(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total; i++ {
		if err := <-results; err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cap-full batch waited %v — the 10 s timer gated it", elapsed)
	}
}

// TestFlushIntervalEndToEnd runs a real server and client with timer-paced
// flushing on both sides: sequential and concurrent echoes all resolve, so
// neither timed writer loses frames, deadlocks, or leaks its timer across
// bursts.
func TestFlushIntervalEndToEnd(t *testing.T) {
	t.Parallel()
	srv, err := NewTCPServer("s1", "127.0.0.1:0", echoHandler(nil), WithFlushInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}),
		WithFlushInterval(5*time.Millisecond))
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ { // sequential: each op rides its own window
		payload := []byte(fmt.Sprintf("seq-%d", i))
		resp, err := client.Invoke(ctx, "s1", Request{Service: "svc", Type: "echo", Payload: payload})
		if err != nil {
			t.Fatalf("sequential invoke %d: %v", i, err)
		}
		if !bytes.Equal(resp.Payload, payload) {
			t.Fatalf("sequential echo %d = %q", i, resp.Payload)
		}
	}
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("conc-%d", i))
			resp, err := client.Invoke(ctx, "s1", Request{Service: "svc", Type: "echo", Payload: payload})
			if err == nil && !bytes.Equal(resp.Payload, payload) {
				err = fmt.Errorf("echo = %q, want %q", resp.Payload, payload)
			}
			if err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
