package transport

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

func TestTCPRoundTrip(t *testing.T) {
	t.Parallel()
	srv, err := NewTCPServer("s1", "127.0.0.1:0", echoHandler(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}))
	defer client.Close()

	resp, err := client.Invoke(context.Background(), "s1", Request{
		Service: "test", Type: "echo", Payload: []byte("over tcp"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || string(resp.Payload) != "over tcp" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestTCPConcurrentRequests(t *testing.T) {
	t.Parallel()
	srv, err := NewTCPServer("s1", "127.0.0.1:0", HandlerFunc(func(_ types.ProcessID, req Request) Response {
		time.Sleep(time.Millisecond) // force interleaving
		return OKResponse(req.Payload)
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}))
	defer client.Close()

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("msg-%d", i))
			resp, err := client.Invoke(context.Background(), "s1", Request{Payload: payload})
			if err != nil {
				errs <- err
				return
			}
			if string(resp.Payload) != string(payload) {
				errs <- fmt.Errorf("response %q for request %q: responses crossed", resp.Payload, payload)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPUnknownDestination(t *testing.T) {
	t.Parallel()
	client := NewTCPClient("c1", StaticBook(nil))
	defer client.Close()
	if _, err := client.Invoke(context.Background(), "nowhere", Request{}); err == nil {
		t.Fatal("Invoke with no address succeeded")
	}
}

func TestTCPServerShutdownFailsPending(t *testing.T) {
	t.Parallel()
	block := make(chan struct{})
	srv, err := NewTCPServer("s1", "127.0.0.1:0", HandlerFunc(func(types.ProcessID, Request) Response {
		<-block
		return OKResponse(nil)
	}))
	if err != nil {
		t.Fatal(err)
	}

	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}))
	defer client.Close()

	done := make(chan error, 1)
	go func() {
		_, err := client.Invoke(context.Background(), "s1", Request{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request arrive
	close(block)                      // release handler so Close can drain
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case <-done:
		// Either a response (handler finished before close) or an error
		// (connection torn down) is acceptable; what matters is no hang.
	case <-time.After(2 * time.Second):
		t.Fatal("pending request hung after server close")
	}
}

func TestTCPContextCancellation(t *testing.T) {
	t.Parallel()
	srv, err := NewTCPServer("s1", "127.0.0.1:0", HandlerFunc(func(types.ProcessID, Request) Response {
		time.Sleep(time.Second)
		return OKResponse(nil)
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}))
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := client.Invoke(ctx, "s1", Request{}); err == nil {
		t.Fatal("Invoke survived context expiry")
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("cancellation was not prompt")
	}
}

func TestTCPGobPayloadTypes(t *testing.T) {
	t.Parallel()
	type body struct {
		Tags  []string
		Blobs map[int][]byte
	}
	srv, err := NewTCPServer("s1", "127.0.0.1:0", HandlerFunc(func(_ types.ProcessID, req Request) Response {
		var in body
		if err := Unmarshal(req.Payload, &in); err != nil {
			return ErrResponse(err)
		}
		in.Tags = append(in.Tags, "handled")
		return OKResponse(MustMarshal(in))
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}))
	defer client.Close()

	out, err := InvokeTyped[body](context.Background(), client, "s1", Addr{Service: "svc", Key: "obj-1", Config: "c0", Type: "op"}, body{
		Tags:  []string{"a"},
		Blobs: map[int][]byte{3: {9, 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tags) != 2 || out.Tags[1] != "handled" || len(out.Blobs[3]) != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}
