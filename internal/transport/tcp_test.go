package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

func TestTCPRoundTrip(t *testing.T) {
	t.Parallel()
	srv, err := NewTCPServer("s1", "127.0.0.1:0", echoHandler(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}))
	defer client.Close()

	resp, err := client.Invoke(context.Background(), "s1", Request{
		Service: "test", Type: "echo", Payload: []byte("over tcp"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || string(resp.Payload) != "over tcp" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestTCPConcurrentRequests(t *testing.T) {
	t.Parallel()
	srv, err := NewTCPServer("s1", "127.0.0.1:0", HandlerFunc(func(_ types.ProcessID, req Request) Response {
		time.Sleep(time.Millisecond) // force interleaving
		return OKResponse(req.Payload)
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}))
	defer client.Close()

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("msg-%d", i))
			resp, err := client.Invoke(context.Background(), "s1", Request{Payload: payload})
			if err != nil {
				errs <- err
				return
			}
			if string(resp.Payload) != string(payload) {
				errs <- fmt.Errorf("response %q for request %q: responses crossed", resp.Payload, payload)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPUnknownDestination(t *testing.T) {
	t.Parallel()
	client := NewTCPClient("c1", StaticBook(nil))
	defer client.Close()
	if _, err := client.Invoke(context.Background(), "nowhere", Request{}); err == nil {
		t.Fatal("Invoke with no address succeeded")
	}
}

func TestTCPServerShutdownFailsPending(t *testing.T) {
	t.Parallel()
	block := make(chan struct{})
	srv, err := NewTCPServer("s1", "127.0.0.1:0", HandlerFunc(func(types.ProcessID, Request) Response {
		<-block
		return OKResponse(nil)
	}))
	if err != nil {
		t.Fatal(err)
	}

	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}))
	defer client.Close()

	done := make(chan error, 1)
	go func() {
		_, err := client.Invoke(context.Background(), "s1", Request{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request arrive
	close(block)                      // release handler so Close can drain
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case <-done:
		// Either a response (handler finished before close) or an error
		// (connection torn down) is acceptable; what matters is no hang.
	case <-time.After(2 * time.Second):
		t.Fatal("pending request hung after server close")
	}
}

func TestTCPContextCancellation(t *testing.T) {
	t.Parallel()
	srv, err := NewTCPServer("s1", "127.0.0.1:0", HandlerFunc(func(types.ProcessID, Request) Response {
		time.Sleep(time.Second)
		return OKResponse(nil)
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}))
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := client.Invoke(ctx, "s1", Request{}); err == nil {
		t.Fatal("Invoke survived context expiry")
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("cancellation was not prompt")
	}
}

// TestTCPDialBackoffLimitsRedials is the regression test for unbounded
// re-dialing: a client hammering a refusing peer must dial only a handful of
// times — attempts inside the backoff window fail fast with ErrUnreachable —
// instead of once per Invoke. Run under -race: the dial counter and the
// backoff state are exercised from 8 goroutines.
func TestTCPDialBackoffLimitsRedials(t *testing.T) {
	t.Parallel()
	var dials atomic.Int64
	refused := errors.New("connection refused")
	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": "127.0.0.1:1"}),
		WithDialFunc(func(context.Context, string) (net.Conn, error) {
			dials.Add(1)
			return nil, refused
		}),
		WithDialBackoff(DialBackoff{Base: 50 * time.Millisecond, Cap: 200 * time.Millisecond, Multiplier: 2, Jitter: 0}),
	)
	defer client.Close()

	const workers = 8
	var attempts atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(300 * time.Millisecond)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				_, err := client.Invoke(context.Background(), "s1", Request{})
				if err == nil {
					t.Error("Invoke against a refusing peer succeeded")
					return
				}
				if !errors.Is(err, ErrUnreachable) {
					t.Errorf("Invoke error = %v, want ErrUnreachable", err)
					return
				}
				attempts.Add(1)
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	wg.Wait()

	// 300ms of hammering with windows 50 → 100 → 200ms allows ~4 dial
	// attempts (plus a small race allowance when several goroutines pass the
	// window check together); without backoff every attempt would dial.
	got, tried := dials.Load(), attempts.Load()
	if tried < 100 {
		t.Fatalf("only %d invoke attempts — fail-fast is not fast", tried)
	}
	if got > 12 {
		t.Fatalf("%d dials for %d invoke attempts — backoff is not limiting re-dials", got, tried)
	}
	if got < 2 {
		t.Fatalf("%d dials — the backoff window never expired and retried", got)
	}
}

// TestTCPDialBackoffResetsOnSuccess pins recovery: once a dial succeeds the
// peer's failure history is forgotten, so the next disconnect starts from
// the base window, not the grown one.
func TestTCPDialBackoffResetsOnSuccess(t *testing.T) {
	t.Parallel()
	srv, err := NewTCPServer("s1", "127.0.0.1:0", echoHandler(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var fail atomic.Bool
	fail.Store(true)
	d := net.Dialer{Timeout: time.Second}
	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}),
		WithDialFunc(func(ctx context.Context, addr string) (net.Conn, error) {
			if fail.Load() {
				return nil, errors.New("connection refused")
			}
			return d.DialContext(ctx, "tcp", addr)
		}),
		WithDialBackoff(DialBackoff{Base: 10 * time.Millisecond, Cap: 20 * time.Millisecond, Multiplier: 2, Jitter: 0}),
	)
	defer client.Close()

	if _, err := client.Invoke(context.Background(), "s1", Request{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("first invoke: err = %v, want ErrUnreachable", err)
	}
	fail.Store(false)
	// Inside the window invokes still fail fast; after it, the dial succeeds.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := client.Invoke(context.Background(), "s1", Request{Type: "echo", Payload: []byte("back")})
		if err == nil {
			if string(resp.Payload) != "back" {
				t.Fatalf("resp = %+v", resp)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer never reconnected after backoff: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTCPGobPayloadTypes(t *testing.T) {
	t.Parallel()
	type body struct {
		Tags  []string
		Blobs map[int][]byte
	}
	srv, err := NewTCPServer("s1", "127.0.0.1:0", HandlerFunc(func(_ types.ProcessID, req Request) Response {
		var in body
		if err := Unmarshal(req.Payload, &in); err != nil {
			return ErrResponse(err)
		}
		in.Tags = append(in.Tags, "handled")
		return OKResponse(MustMarshal(in))
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewTCPClient("c1", StaticBook(map[types.ProcessID]string{"s1": srv.Addr()}))
	defer client.Close()

	out, err := InvokeTyped[body](context.Background(), client, "s1", Addr{Service: "svc", Key: "obj-1", Config: "c0", Type: "op"}, body{
		Tags:  []string{"a"},
		Blobs: map[int][]byte{3: {9, 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tags) != 2 || out.Tags[1] != "handled" || len(out.Blobs[3]) != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}
