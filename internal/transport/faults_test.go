package transport

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

// countingHandler echoes and counts deliveries.
func countingHandler(calls *atomic.Int64) Handler {
	return HandlerFunc(func(from types.ProcessID, req Request) Response {
		calls.Add(1)
		return OKResponse(req.Payload)
	})
}

// invokeShort sends one request with a short deadline and reports success.
func invokeShort(net *Simnet, from, to types.ProcessID) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := net.Client(from).Invoke(ctx, to, Request{Service: "t", Type: "x"})
	return err == nil
}

func TestBlockLinkIsDirectional(t *testing.T) {
	t.Parallel()
	net := NewSimnet()
	var aCalls, bCalls atomic.Int64
	net.Register("a", countingHandler(&aCalls))
	net.Register("b", countingHandler(&bCalls))
	net.BlockLink("a", "b")

	// a → b messages are dropped: a's request never reaches b.
	if invokeShort(net, "a", "b") {
		t.Fatal("a → b should be blocked")
	}
	if bCalls.Load() != 0 {
		t.Fatal("b's handler ran despite the a → b block")
	}
	// The reverse direction carries messages: b's request reaches a (the
	// handler runs), but a's *response* is an a → b message and is dropped,
	// so the RPC still fails at b. One-way blocking is per message, not per
	// RPC.
	if invokeShort(net, "b", "a") {
		t.Fatal("b → a RPC should fail: the response travels the blocked direction")
	}
	if aCalls.Load() != 1 {
		t.Fatalf("a's handler calls = %d, want 1 (b's request travels the open direction)", aCalls.Load())
	}
	if !net.LinkBlocked("a", "b") || net.LinkBlocked("b", "a") {
		t.Fatal("LinkBlocked should report exactly the a → b direction")
	}

	net.UnblockLink("a", "b")
	if !invokeShort(net, "a", "b") {
		t.Fatal("a → b should be open after UnblockLink")
	}
	// Idempotence: repeated block/unblock leaves a consistent state.
	net.UnblockLink("a", "b")
	net.BlockLink("a", "b")
	net.BlockLink("a", "b")
	if invokeShort(net, "a", "b") {
		t.Fatal("a → b should be blocked after repeated BlockLink")
	}
}

func TestPartitionBlocksBothDirectionsAndHeals(t *testing.T) {
	t.Parallel()
	net := NewSimnet()
	for _, id := range []types.ProcessID{"a1", "a2", "b1", "b2", "c1"} {
		net.Register(id, echoHandler(nil))
	}
	net.Partition([]types.ProcessID{"a1", "a2"}, []types.ProcessID{"b1", "b2"})

	if invokeShort(net, "a1", "b1") || invokeShort(net, "b2", "a2") {
		t.Fatal("cross-partition links should be cut in both directions")
	}
	if !invokeShort(net, "a1", "a2") || !invokeShort(net, "b1", "b2") {
		t.Fatal("intra-group links should stay open")
	}
	// A process in neither group keeps full connectivity.
	if !invokeShort(net, "c1", "a1") || !invokeShort(net, "c1", "b1") {
		t.Fatal("a process outside both groups should reach everyone")
	}

	net.Heal([]types.ProcessID{"a1", "a2"}, []types.ProcessID{"b1", "b2"})
	if !invokeShort(net, "a1", "b1") || !invokeShort(net, "b2", "a2") {
		t.Fatal("cross-partition links should be open after Heal")
	}
}

func TestCrashRestartIdempotentAndStatePreserving(t *testing.T) {
	t.Parallel()
	net := NewSimnet()
	var calls atomic.Int64
	net.Register("s1", countingHandler(&calls))

	// Idempotent restart of a never-crashed process is a no-op.
	net.Restart("s1")
	if !invokeShort(net, "c1", "s1") {
		t.Fatal("restart of a live process should be a no-op")
	}

	net.Crash("s1")
	net.Crash("s1") // idempotent
	if !net.Crashed("s1") {
		t.Fatal("Crashed should report the crash")
	}
	if invokeShort(net, "c1", "s1") {
		t.Fatal("crashed server should not respond")
	}

	net.Restart("s1")
	net.Restart("s1") // idempotent
	if net.Crashed("s1") {
		t.Fatal("Crashed should clear after Restart")
	}
	before := calls.Load()
	if !invokeShort(net, "c1", "s1") {
		t.Fatal("restarted server should respond")
	}
	// The handler object survived the crash: same counter keeps counting,
	// i.e. server state is preserved across crash-recovery.
	if calls.Load() != before+1 {
		t.Fatalf("handler state lost across crash-restart: calls %d → %d", before, calls.Load())
	}
}

func TestLinkFaultsDropFailsFast(t *testing.T) {
	t.Parallel()
	net := NewSimnet(WithSeed(7))
	net.Register("s1", echoHandler(nil))
	net.SetLinkFaults("c1", "s1", LinkFaults{Drop: 1.0})

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := net.Client("c1").Invoke(ctx, "s1", Request{Service: "t", Type: "x"}); err == nil {
		t.Fatal("Drop=1 link should fail every request")
	}
	// The failure must be a fast detected omission, not a hang until the
	// context deadline: quorum logic depends on routing around it promptly.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("dropped request took %v, want fast failure", elapsed)
	}

	net.SetLinkFaults("c1", "s1", LinkFaults{}) // zero faults clears the link
	if !invokeShort(net, "c1", "s1") {
		t.Fatal("link should be clean after clearing faults")
	}
}

func TestLinkFaultsResponseDropExecutesHandler(t *testing.T) {
	t.Parallel()
	net := NewSimnet(WithSeed(7))
	var calls atomic.Int64
	net.Register("s1", countingHandler(&calls))
	// Faults on the response direction: requests arrive and execute, the
	// answer is lost.
	net.SetLinkFaults("s1", "c1", LinkFaults{Drop: 1.0})

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := net.Client("c1").Invoke(ctx, "s1", Request{Service: "t", Type: "x"}); err == nil {
		t.Fatal("response-dropped request should error at the caller")
	}
	if calls.Load() != 1 {
		t.Fatalf("handler calls = %d, want 1 (effect must stand when only the response is lost)", calls.Load())
	}
}

func TestLinkFaultsDuplicateDelivery(t *testing.T) {
	t.Parallel()
	net := NewSimnet(WithSeed(7))
	var calls atomic.Int64
	net.Register("s1", countingHandler(&calls))
	net.SetLinkFaults("c1", "s1", LinkFaults{Dup: 1.0})

	const n = 8
	for i := 0; i < n; i++ {
		if !invokeShort(net, "c1", "s1") {
			t.Fatal("duplicated requests must still succeed for the caller")
		}
	}
	net.Quiesce() // duplicates deliver in the background
	if got := calls.Load(); got != 2*n {
		t.Fatalf("handler calls = %d, want %d (every request delivered twice)", got, 2*n)
	}
}

func TestDefaultLinkFaultsAndPerLinkOverride(t *testing.T) {
	t.Parallel()
	net := NewSimnet(WithSeed(7))
	net.Register("s1", echoHandler(nil))
	net.Register("s2", echoHandler(nil))
	net.SetDefaultLinkFaults(LinkFaults{Drop: 1.0})
	// Per-link override wins over the default: a zero-fault override on
	// both directions keeps the c1 ↔ s2 round trip clean.
	net.SetLinkFaults("c1", "s2", LinkFaults{})
	net.SetLinkFaults("s2", "c1", LinkFaults{})

	if invokeShort(net, "c1", "s1") {
		t.Fatal("default Drop=1 should fail un-overridden links")
	}
	if !invokeShort(net, "c1", "s2") {
		t.Fatal("per-link override should shield c1 → s2 from the default")
	}

	net.ClearLinkFaults()
	if !invokeShort(net, "c1", "s1") {
		t.Fatal("ClearLinkFaults should remove the default faults")
	}
}

func TestLinkFaultsDelaySpike(t *testing.T) {
	t.Parallel()
	net := NewSimnet(WithSeed(7))
	net.Register("s1", echoHandler(nil))
	// The spike is directional: configured on c1 → s1 it delays only the
	// request leg of the round trip. The spike is large relative to
	// scheduling noise so the upper bound (strictly below the two-leg
	// floor of 120ms) holds even on loaded race-instrumented CI runners.
	const spike = 60 * time.Millisecond
	net.SetLinkFaults("c1", "s1", LinkFaults{Extra: Fixed(spike)})

	start := time.Now()
	if _, err := net.Client("c1").Invoke(context.Background(), "s1", Request{Service: "t", Type: "x"}); err != nil {
		t.Fatal(err)
	}
	oneWay := time.Since(start)
	if oneWay < spike {
		t.Fatalf("round trip took %v, want ≥ %v with a request-leg spike", oneWay, spike)
	}
	if oneWay > spike+50*time.Millisecond {
		t.Fatalf("round trip took %v: a one-direction spike must not delay the response leg too", oneWay)
	}

	// Spiking the response direction as well delays both legs.
	net.SetLinkFaults("s1", "c1", LinkFaults{Extra: Fixed(spike)})
	start = time.Now()
	if _, err := net.Client("c1").Invoke(context.Background(), "s1", Request{Service: "t", Type: "x"}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*spike {
		t.Fatalf("round trip took %v, want ≥ %v with spikes on both directions", elapsed, 2*spike)
	}
	net.Close()
}
