package transport

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

// These tests pin the reliable-channel semantics of the simulated network:
// once a message departs, it is delivered even if the sender stops waiting
// (§2 assumes reliable asynchronous channels).

func TestInFlightMessageDeliveredAfterSenderGivesUp(t *testing.T) {
	t.Parallel()
	var delivered atomic.Int32
	net := NewSimnet(WithDelayRange(50*time.Millisecond, 50*time.Millisecond))
	net.Register("s1", HandlerFunc(func(types.ProcessID, Request) Response {
		delivered.Add(1)
		return OKResponse(nil)
	}))

	// The sender waits only 10ms of the 50ms delivery delay.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := net.Client("c1").Invoke(ctx, "s1", Request{Service: "t", Type: "x"}); err == nil {
		t.Fatal("Invoke returned before delivery delay elapsed")
	}
	if delivered.Load() != 0 {
		t.Fatal("message delivered before its delay")
	}
	net.Quiesce()
	if delivered.Load() != 1 {
		t.Fatalf("message delivered %d times after quiesce, want 1", delivered.Load())
	}
}

func TestAlreadyCancelledSenderStillSends(t *testing.T) {
	t.Parallel()
	// The model's invocation step sends to all servers atomically with the
	// operation start; a caller whose context is already done still "sent".
	var delivered atomic.Int32
	net := NewSimnet()
	net.Register("s1", HandlerFunc(func(types.ProcessID, Request) Response {
		delivered.Add(1)
		return OKResponse(nil)
	}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := net.Client("c1").Invoke(ctx, "s1", Request{Service: "t", Type: "x"})
	if err == nil {
		t.Fatal("cancelled Invoke reported success")
	}
	net.Quiesce()
	if delivered.Load() != 1 {
		t.Fatalf("delivered %d, want 1 (send happens at invocation)", delivered.Load())
	}
}

func TestBackgroundDeliveryToCrashedServerIsDropped(t *testing.T) {
	t.Parallel()
	var delivered atomic.Int32
	net := NewSimnet(WithDelayRange(20*time.Millisecond, 20*time.Millisecond))
	net.Register("s1", HandlerFunc(func(types.ProcessID, Request) Response {
		delivered.Add(1)
		return OKResponse(nil)
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, _ = net.Client("c1").Invoke(ctx, "s1", Request{})
	net.Crash("s1") // crashes while the message is in flight
	net.Quiesce()
	if delivered.Load() != 0 {
		t.Fatalf("crashed server handled %d messages", delivered.Load())
	}
}

func TestQuiesceIdleReturnsImmediately(t *testing.T) {
	t.Parallel()
	net := NewSimnet()
	done := make(chan struct{})
	go func() {
		net.Quiesce()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Quiesce hung on an idle network")
	}
}
