// Package recon implements the ARES reconfiguration service (§4.1): the
// server-side nextC pointer protocol (Alg. 6), the sequence-traversal
// actions read-next-config / put-config / read-config (Alg. 4), and the
// four-phase reconfig operation (Alg. 5) with both the value-through-client
// state transfer of Alg. 5 and the direct server-to-server transfer of §5
// (ARES-TREAS).
package recon

import (
	"fmt"
	"sync"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// ServiceName keys the reconfiguration pointer service on nodes.
const ServiceName = "recon"

// Message types (Alg. 6).
const (
	msgReadConfig  = "read-config"
	msgWriteConfig = "write-config"
)

// Wire bodies.
type (
	readConfigResp struct {
		HasNext bool
		Next    cfg.Entry
	}
	writeConfigReq struct {
		Next cfg.Entry
	}
)

// Service holds one server's nextC variable for one configuration: the
// pointer to the following configuration in the global sequence GL, with its
// status. nextC starts at ⊥ and, once finalized, never changes (Lemma 46).
type Service struct {
	mu      sync.Mutex
	hasNext bool
	next    cfg.Entry
}

// NewService returns a pointer service with nextC = ⊥.
func NewService() *Service {
	return &Service{}
}

var _ node.Service = (*Service)(nil)

// Handle implements node.Service.
func (s *Service) Handle(_ types.ProcessID, msgType string, payload []byte) (any, error) {
	switch msgType {
	case msgReadConfig:
		s.mu.Lock()
		defer s.mu.Unlock()
		return readConfigResp{HasNext: s.hasNext, Next: s.next}, nil
	case msgWriteConfig:
		var req writeConfigReq
		if err := transport.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		// Alg. 6 lines 10–11: accept when nextC is ⊥ or still pending. A
		// finalized pointer is immutable.
		if !s.hasNext || s.next.Status == cfg.Pending {
			if s.hasNext && !s.next.Cfg.Equal(req.Next.Cfg) {
				// Consensus guarantees a unique successor; a different
				// configuration here is a protocol violation worth surfacing.
				return nil, fmt.Errorf("recon: conflicting next configuration %s (have %s)",
					req.Next.Cfg.ID, s.next.Cfg.ID)
			}
			s.next = req.Next
			s.hasNext = true
		}
		return nil, nil // ACK
	default:
		return nil, fmt.Errorf("recon: unknown message type %q", msgType)
	}
}

// Next reports the current pointer (for tests).
func (s *Service) Next() (cfg.Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next, s.hasNext
}
