// Package recon implements the ARES reconfiguration service (§4.1): the
// server-side nextC pointer protocol (Alg. 6), the sequence-traversal
// actions read-next-config / put-config / read-config (Alg. 4), and the
// four-phase reconfig operation (Alg. 5) with both the value-through-client
// state transfer of Alg. 5 and the direct server-to-server transfer of §5
// (ARES-TREAS).
//
// A node hosts a single pointer Service for the whole keyspace: every
// (key, config) pair owns its own nextC variable, lazily created in a
// striped-lock map — each key's configuration chain advances independently
// (the paper's per-object reconfiguration), without per-key installation.
//
// The pointer service also drives configuration lifecycle GC. The paper's
// finalization step (Algs. 4–5) is the retirement signal: once a
// configuration's successor is finalized, update-config has already
// propagated the freshest state forward, so the old configuration is
// quiescent and its per-key server state — DAP registers and lists, the
// consensus acceptor, the pointer itself — is reclaimed. A compact tombstone
// in the resolver ("superseded by c′") plus a per-key archive of the latest
// finalized successor keep lagging clients correct: their read-config calls
// are answered from the archive (jumping them toward the live window) and
// their DAP calls get an explicit retryable cfg.ErrRetired instead of
// silently rematerializing fresh v₀ state. Finalization is gossiped once to
// the configuration's other members so servers missed by the quorum-bounded
// put-config still retire their state.
package recon

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/keystate"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// ServiceName keys the reconfiguration pointer service on nodes.
const ServiceName = "recon"

// Message types (Alg. 6).
const (
	msgReadConfig  = "read-config"
	msgWriteConfig = "write-config"
)

// gossipTimeout bounds the best-effort finalization fan-out to a
// configuration's other members; maxGossipFanouts bounds how many such
// fan-outs run concurrently per service.
const (
	gossipTimeout    = 2 * time.Second
	maxGossipFanouts = 16
)

// Wire bodies.
type (
	readConfigResp struct {
		HasNext bool
		Next    cfg.Entry
	}
	writeConfigReq struct {
		Next cfg.Entry
	}
)

// pointer holds one server's nextC variable for one (key, configuration):
// the pointer to the following configuration in that key's global sequence
// GL, with its status. nextC starts at ⊥ and, once finalized, never changes
// (Lemma 46).
type pointer struct {
	mu      sync.Mutex
	hasNext bool
	next    cfg.Entry
}

// RetireFunc is the lifecycle fan-out a host registers: retire every keyed
// service's state for (key, configID), superseded by next. It returns how
// many state entries were dropped (for the retired_states accounting).
type RetireFunc func(key, configID string, next cfg.Entry) int

// Service hosts every nextC pointer of one node.
type Service struct {
	self   types.ProcessID
	cfgs   cfg.Source
	states *keystate.Map[*pointer]

	// Lifecycle wiring (SetLifecycle): the host's retire fan-out, the
	// server's own endpoint for finalization gossip, and the retired-state
	// counter. gc is false until a host opts in — a bare pointer service
	// (tests, custom assemblies) keeps every pointer forever.
	gc       bool
	onRetire RetireFunc
	rpc      transport.Client
	retired  atomic.Int64
	sends    sync.WaitGroup
	// Durability wiring (see durable.go): the write-ahead journal for
	// write-config transitions, and the host's hook that journals a
	// retirement before it mutates memory. Both nil for in-memory operation.
	journal   atomic.Pointer[keystate.Journal]
	preRetire PreRetireFunc
	// gossipSlots caps concurrent gossip fan-outs. Gossip is best effort
	// (client traversals re-propagate finalizations anyway), so under
	// saturation — e.g. churn with an unreachable member holding slots for
	// the full timeout — further retirements skip gossip instead of piling
	// up goroutines.
	gossipSlots chan struct{}
}

// NewService returns the node-wide pointer service for server self; every
// per-(key, config) pointer starts at nextC = ⊥ on first touch.
func NewService(self types.ProcessID, cfgs cfg.Source) *Service {
	return &Service{
		self:        self,
		cfgs:        cfgs,
		states:      keystate.New[*pointer](keystate.DefaultShards),
		gossipSlots: make(chan struct{}, maxGossipFanouts),
	}
}

// SetLifecycle enables finalization-driven GC: onRetire is invoked exactly
// once per locally-observed retirement of a (key, config) pair, and rpc —
// when non-nil — is used to gossip the finalization to the configuration's
// other members (put-config only reaches a quorum; gossip closes the gap so
// stragglers retire too). Lifecycle requires the service's cfg.Source to
// implement cfg.Retirer (the standard Resolver does); otherwise retirement
// is skipped entirely.
func (s *Service) SetLifecycle(rpc transport.Client, onRetire RetireFunc) {
	s.gc = true
	s.rpc = rpc
	s.onRetire = onRetire
}

var _ node.KeyedService = (*Service)(nil)

// state returns (creating on first touch) the pointer for (key, configID).
func (s *Service) state(key, configID string) (*pointer, error) {
	return keystate.Materialize(s.states, s.cfgs, ServiceName, s.self, key, configID,
		func(c cfg.Configuration) (*pointer, error) {
			if _, ok := c.ServerIndex(s.self); !ok {
				return nil, fmt.Errorf("recon: server %s is not a member of %s", s.self, c.ID)
			}
			return &pointer{}, nil
		})
}

// archived answers a message addressed to a retired (key, configID): the
// key's latest recorded successor, resolved back to its full configuration.
// No per-walk archive exists — the tombstone is a hash, the successor is one
// ID per key, and the configuration itself lives in the resolver (the latest
// finalized configuration is by construction not retired, hence still
// registered or template-derivable). ok is false when the pair is not
// retired, or — transiently, mid-gossip — when the successor cannot be
// resolved yet; the caller then falls through to the RetiredError path and
// the client retries.
func (s *Service) archived(key, configID string) (cfg.Entry, bool) {
	rs, lifecycle := s.cfgs.(cfg.RetirementSource)
	if !lifecycle {
		return cfg.Entry{}, false
	}
	succ, retired := rs.RetiredSuccessor(key, cfg.ID(configID))
	if !retired || succ == "" || succ == cfg.ID(configID) {
		// No recorded successor, or the key's latest-successor record has
		// (through an out-of-order retirement echo) landed on the queried
		// configuration itself. Serving "next(c) = c" would loop a client's
		// traversal forever; fail the call instead — the client retries
		// against the quorum's other (healthy) members, and the record
		// heals on the key's next retirement.
		return cfg.Entry{}, false
	}
	c, ok := s.cfgs.ResolveConfig(key, succ)
	if !ok {
		return cfg.Entry{}, false
	}
	return cfg.Entry{Cfg: c, Status: cfg.Finalized}, true
}

// HandleKeyed implements node.KeyedService.
func (s *Service) HandleKeyed(_ types.ProcessID, key, configID, msgType string, payload []byte) (any, error) {
	// Retired configurations are served from the archive: read-config
	// returns the latest finalized successor (the chain compacted past its
	// quiescent prefix), and write-config is a no-op ACK — a finalized
	// pointer is immutable, and the retired state behind it is gone.
	if latest, ok := s.archived(key, configID); ok {
		switch msgType {
		case msgReadConfig:
			return readConfigResp{HasNext: true, Next: latest}, nil
		case msgWriteConfig:
			// A finalized pointer is immutable and the state behind it is
			// gone; acknowledge so sequence-propagating traversals complete.
			return nil, nil // ACK
		default:
			return nil, fmt.Errorf("recon: unknown message type %q", msgType)
		}
	}

	st, err := s.state(key, configID)
	if err != nil {
		// Lost the race with a concurrent retirement: answer from the
		// archive after all rather than bouncing the client.
		if cfg.IsRetired(err) {
			if latest, ok := s.archived(key, configID); ok && msgType == msgReadConfig {
				return readConfigResp{HasNext: true, Next: latest}, nil
			}
		}
		return nil, err
	}
	switch msgType {
	case msgReadConfig:
		st.mu.Lock()
		defer st.mu.Unlock()
		return readConfigResp{HasNext: st.hasNext, Next: st.next}, nil
	case msgWriteConfig:
		var req writeConfigReq
		if err := transport.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		// The journal span covers the retire below too: its nested meta-log
		// append is deliberately gate-free (see keystate.AppendRetire), so
		// snapshot rotation can never slip between this record and the
		// retirement it triggers.
		release, err := s.journalWriteConfig(key, configID, payload)
		if err != nil {
			return nil, err
		}
		defer release()
		st.mu.Lock()
		// Alg. 6 lines 10–11: accept when nextC is ⊥ or still pending. A
		// finalized pointer is immutable.
		finalizedNow := false
		if !st.hasNext || st.next.Status == cfg.Pending {
			if st.hasNext && !st.next.Cfg.Equal(req.Next.Cfg) {
				st.mu.Unlock()
				// Consensus guarantees a unique successor; a different
				// configuration here is a protocol violation worth surfacing.
				return nil, fmt.Errorf("recon: conflicting next configuration %s (have %s)",
					req.Next.Cfg.ID, st.next.Cfg.ID)
			}
			st.next = req.Next
			st.hasNext = true
			finalizedNow = req.Next.Status == cfg.Finalized
		}
		st.mu.Unlock()
		if finalizedNow {
			// The pending → finalized transition is the paper's retirement
			// signal for this configuration: its state has propagated to the
			// finalized successor and it is quiescent from here on.
			s.retire(key, configID, req.Next)
		}
		return nil, nil // ACK
	default:
		return nil, fmt.Errorf("recon: unknown message type %q", msgType)
	}
}

// retire garbage-collects (key, configID) after its successor finalized:
// archive the successor, tombstone the pair in the resolver (which also
// prunes the concrete configuration), drop the pointer state, fan out to the
// host's other keyed services, and gossip the finalization to the
// configuration's remaining members.
func (s *Service) retire(key, configID string, next cfg.Entry) {
	if !s.gc {
		return // lifecycle not enabled; keep state
	}
	ret, ok := s.cfgs.(cfg.Retirer)
	if !ok {
		return // lifecycle not supported by this source; keep state
	}
	// Journal the retirement (with its full successor entry) before any
	// in-memory lifecycle mutation, so recovery replays it in meta-log order.
	// A hook failure is survivable: the finalized write-config record is
	// already journaled, and CompleteRetirements re-derives the retirement on
	// the next recovery.
	if s.preRetire != nil {
		_ = s.preRetire(key, configID, next)
	}
	// Capture the member set before the resolver prunes the configuration.
	var peers []types.ProcessID
	if c, resolved := s.cfgs.ResolveConfig(key, cfg.ID(configID)); resolved {
		peers = c.Servers
	}
	// The archive serves read-config on retired pairs by resolving the
	// key's successor. When the chain moved to a different server set, this
	// server never had the successor installed — register it from the
	// finalized entry (which carries the full configuration) so lagging
	// clients can still be redirected. First-wins, and membership is still
	// checked at materialization, so a non-member server only gains routing
	// knowledge, never servable state.
	if _, resolvable := s.cfgs.ResolveConfig(key, next.Cfg.ID); !resolvable {
		if adder, ok := s.cfgs.(interface{ Add(cfg.Configuration) bool }); ok {
			adder.Add(next.Cfg)
		}
	}
	if !ret.Retire(key, cfg.ID(configID), next.Cfg.ID) {
		return // already retired (idempotent replays, gossip echoes)
	}
	if s.states.Delete(keystate.Ref{Key: key, Config: configID}) {
		s.retired.Add(1)
	}
	if s.onRetire != nil {
		s.retired.Add(int64(s.onRetire(key, configID, next)))
	}
	s.gossip(key, configID, next, peers)
}

// gossip forwards the finalized successor entry to the configuration's other
// members, best effort. put-config only guarantees a quorum saw the
// finalization; this one-shot fan-out (each server forwards only on its own
// pending → finalized transition, so the wave self-quenches) lets the
// remaining members retire their state too instead of leaking it forever.
func (s *Service) gossip(key, configID string, next cfg.Entry, peers []types.ProcessID) {
	if s.rpc == nil {
		return
	}
	targets := make([]types.ProcessID, 0, len(peers))
	for _, p := range peers {
		if p != s.self {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return
	}
	select {
	case s.gossipSlots <- struct{}{}:
	default:
		return // saturated: skip, best effort
	}
	s.sends.Add(1)
	go func() {
		defer func() {
			<-s.gossipSlots
			s.sends.Done()
		}()
		body := writeConfigReq{Next: next}
		for _, p := range targets {
			ctx, cancel := context.WithTimeout(context.Background(), gossipTimeout)
			_, _ = transport.InvokeTyped[struct{}](ctx, s.rpc, p,
				transport.Addr{Service: ServiceName, Key: key, Config: configID, Type: msgWriteConfig},
				body)
			cancel()
		}
	}()
}

// WaitGossip blocks until in-flight finalization gossip has drained (tests).
func (s *Service) WaitGossip() { s.sends.Wait() }

// States reports how many (key, config) pointers have been materialized
// (for tests).
func (s *Service) States() int { return s.states.Len() }

// RetiredStates reports how many per-(key, config) state entries this
// server has garbage-collected across all keyed services (pointer entries
// plus the fan-out's count).
func (s *Service) RetiredStates() int64 { return s.retired.Load() }

// Next reports the pointer for (key, configID) (for tests). ok is false when
// the state does not exist and the pair is not retired, or when nextC is
// still ⊥. A retired pointer answers from the archive, exactly as the wire
// read-config does.
func (s *Service) Next(key, configID string) (cfg.Entry, bool) {
	st, found := s.states.Get(keystate.Ref{Key: key, Config: configID})
	if !found {
		return s.archived(key, configID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.next, st.hasNext
}
