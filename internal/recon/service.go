// Package recon implements the ARES reconfiguration service (§4.1): the
// server-side nextC pointer protocol (Alg. 6), the sequence-traversal
// actions read-next-config / put-config / read-config (Alg. 4), and the
// four-phase reconfig operation (Alg. 5) with both the value-through-client
// state transfer of Alg. 5 and the direct server-to-server transfer of §5
// (ARES-TREAS).
//
// A node hosts a single pointer Service for the whole keyspace: every
// (key, config) pair owns its own nextC variable, lazily created in a
// striped-lock map — each key's configuration chain advances independently
// (the paper's per-object reconfiguration), without per-key installation.
package recon

import (
	"fmt"
	"sync"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/keystate"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// ServiceName keys the reconfiguration pointer service on nodes.
const ServiceName = "recon"

// Message types (Alg. 6).
const (
	msgReadConfig  = "read-config"
	msgWriteConfig = "write-config"
)

// Wire bodies.
type (
	readConfigResp struct {
		HasNext bool
		Next    cfg.Entry
	}
	writeConfigReq struct {
		Next cfg.Entry
	}
)

// pointer holds one server's nextC variable for one (key, configuration):
// the pointer to the following configuration in that key's global sequence
// GL, with its status. nextC starts at ⊥ and, once finalized, never changes
// (Lemma 46).
type pointer struct {
	mu      sync.Mutex
	hasNext bool
	next    cfg.Entry
}

// Service hosts every nextC pointer of one node.
type Service struct {
	self   types.ProcessID
	cfgs   cfg.Source
	states *keystate.Map[*pointer]
}

// NewService returns the node-wide pointer service for server self; every
// per-(key, config) pointer starts at nextC = ⊥ on first touch.
func NewService(self types.ProcessID, cfgs cfg.Source) *Service {
	return &Service{
		self:   self,
		cfgs:   cfgs,
		states: keystate.New[*pointer](keystate.DefaultShards),
	}
}

var _ node.KeyedService = (*Service)(nil)

// state returns (creating on first touch) the pointer for (key, configID).
func (s *Service) state(key, configID string) (*pointer, error) {
	return keystate.Materialize(s.states, s.cfgs, ServiceName, s.self, key, configID,
		func(c cfg.Configuration) (*pointer, error) {
			if _, ok := c.ServerIndex(s.self); !ok {
				return nil, fmt.Errorf("recon: server %s is not a member of %s", s.self, c.ID)
			}
			return &pointer{}, nil
		})
}

// HandleKeyed implements node.KeyedService.
func (s *Service) HandleKeyed(_ types.ProcessID, key, configID, msgType string, payload []byte) (any, error) {
	st, err := s.state(key, configID)
	if err != nil {
		return nil, err
	}
	switch msgType {
	case msgReadConfig:
		st.mu.Lock()
		defer st.mu.Unlock()
		return readConfigResp{HasNext: st.hasNext, Next: st.next}, nil
	case msgWriteConfig:
		var req writeConfigReq
		if err := transport.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		st.mu.Lock()
		defer st.mu.Unlock()
		// Alg. 6 lines 10–11: accept when nextC is ⊥ or still pending. A
		// finalized pointer is immutable.
		if !st.hasNext || st.next.Status == cfg.Pending {
			if st.hasNext && !st.next.Cfg.Equal(req.Next.Cfg) {
				// Consensus guarantees a unique successor; a different
				// configuration here is a protocol violation worth surfacing.
				return nil, fmt.Errorf("recon: conflicting next configuration %s (have %s)",
					req.Next.Cfg.ID, st.next.Cfg.ID)
			}
			st.next = req.Next
			st.hasNext = true
		}
		return nil, nil // ACK
	default:
		return nil, fmt.Errorf("recon: unknown message type %q", msgType)
	}
}

// States reports how many (key, config) pointers have been materialized
// (for tests).
func (s *Service) States() int { return s.states.Len() }

// Next reports the pointer for (key, configID) (for tests). ok is false when
// either the state does not exist or nextC is still ⊥.
func (s *Service) Next(key, configID string) (cfg.Entry, bool) {
	st, found := s.states.Get(keystate.Ref{Key: key, Config: configID})
	if !found {
		return cfg.Entry{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.next, st.hasNext
}
