package recon

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/consensus"
	"github.com/ares-storage/ares/internal/dap"
	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/treas"
	"github.com/ares-storage/ares/internal/types"
)

// Installer prepares a configuration's servers to serve it: instantiate the
// store service, the recon pointer service, and the consensus acceptor on
// every member node. Deployments wire this to their provisioning path (the
// core package installs over the wire through each node's control service).
// Installation must be idempotent.
type Installer func(ctx context.Context, c cfg.Configuration) error

// Options configures a reconfiguration client.
type Options struct {
	// DirectTransfer selects the §5 update-config: coded elements move
	// directly between server sets and never through this client. It
	// applies to TREAS→TREAS configuration pairs; other pairs fall back to
	// the Alg. 5 transfer.
	DirectTransfer bool
}

// Client implements the reconfiguration protocol for one reconfigurer
// process (a member of the paper's set G).
type Client struct {
	self    types.ProcessID
	rpc     transport.Client
	daps    *dap.Cache
	install Installer
	opts    Options

	mu        sync.Mutex
	cseq      cfg.Sequence
	proposers map[cfg.ID]*consensus.Proposer
}

// NewClient constructs a reconfiguration client booted from the initial
// configuration c0. install may be nil when every configuration's services
// are provisioned out of band (as tests do).
func NewClient(
	self types.ProcessID,
	c0 cfg.Configuration,
	rpc transport.Client,
	registry *dap.Registry,
	install Installer,
	opts Options,
) (*Client, error) {
	return NewClientWithCache(self, c0, rpc, registry.NewCache(rpc), install, opts)
}

// NewClientWithCache is NewClient over an existing DAP client cache — the
// path core.Client takes so a reader/writer and its embedded reconfiguration
// client memoize per-configuration DAP clients once between them. The cache
// must have been built for the same endpoint rpc.
func NewClientWithCache(
	self types.ProcessID,
	c0 cfg.Configuration,
	rpc transport.Client,
	cache *dap.Cache,
	install Installer,
	opts Options,
) (*Client, error) {
	if err := c0.Validate(); err != nil {
		return nil, fmt.Errorf("recon: initial configuration: %w", err)
	}
	return &Client{
		self:      self,
		rpc:       rpc,
		daps:      cache,
		install:   install,
		opts:      opts,
		cseq:      cfg.NewSequence(c0),
		proposers: make(map[cfg.ID]*consensus.Proposer),
	}, nil
}

// Sequence returns a copy of the client's local configuration sequence.
func (cl *Client) Sequence() cfg.Sequence {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.cseq.Clone()
}

// setSequence merges seq into the local sequence and drops cached DAP
// clients (and consensus proposers) for configurations the merged sequence's
// traversal window [µ, ν] has moved past — they are dead to this process.
func (cl *Client) setSequence(seq cfg.Sequence) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	merged, err := cl.cseq.Merge(seq)
	if err != nil {
		return err
	}
	cl.cseq = merged
	live := merged.LiveIDs()
	for id := range cl.proposers {
		if !live[id] {
			delete(cl.proposers, id)
		}
	}
	cl.daps.Retain(live)
	return nil
}

// ReadNextConfig is get-next-config/read-next-config (Alg. 4 lines 13–22):
// query a quorum of c's servers for their nextC pointers; prefer a finalized
// pointer, then a pending one, else report no successor.
func (cl *Client) ReadNextConfig(ctx context.Context, c cfg.Configuration) (cfg.Entry, bool, error) {
	q := c.Quorum()
	got, err := transport.Broadcast(ctx, cl.rpc, c.Servers,
		transport.Phase[readConfigResp]{Service: ServiceName, Key: c.Key, Config: string(c.ID), Type: msgReadConfig, Body: struct{}{}},
		transport.AtLeast[readConfigResp](q.Size()),
	)
	if err != nil {
		return cfg.Entry{}, false, fmt.Errorf("recon: read-next-config on %s: %w", c.ID, err)
	}
	var pending cfg.Entry
	var havePending bool
	for _, g := range got {
		if !g.Value.HasNext {
			continue
		}
		if g.Value.Next.Status == cfg.Finalized {
			return g.Value.Next, true, nil
		}
		pending, havePending = g.Value.Next, true
	}
	if havePending {
		return pending, true, nil
	}
	return cfg.Entry{}, false, nil
}

// PutConfig is put-config (Alg. 4 lines 23–26): propagate the successor
// entry to a quorum of c's servers.
func (cl *Client) PutConfig(ctx context.Context, c cfg.Configuration, next cfg.Entry) error {
	q := c.Quorum()
	_, err := transport.Broadcast(ctx, cl.rpc, c.Servers,
		transport.Phase[struct{}]{Service: ServiceName, Key: c.Key, Config: string(c.ID), Type: msgWriteConfig, Body: writeConfigReq{Next: next}},
		transport.AtLeast[struct{}](q.Size()),
	)
	if err != nil {
		return fmt.Errorf("recon: put-config on %s: %w", c.ID, err)
	}
	return nil
}

// ReadConfig is read-config (Alg. 4 lines 1–12): starting from the last
// finalized configuration in seq, follow nextC pointers to the end of the
// global sequence, propagating each discovered link to the previous
// configuration's servers so later traversals find it.
func (cl *Client) ReadConfig(ctx context.Context, seq cfg.Sequence) (cfg.Sequence, error) {
	out := seq.Clone()
	i := out.Mu()
	for {
		next, ok, err := cl.ReadNextConfig(ctx, out[i].Cfg)
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		if i+1 < len(out) {
			// Known configuration; promote its status if now finalized
			// (statuses only strengthen: P → F).
			if next.Status == cfg.Finalized {
				out[i+1].Status = cfg.Finalized
			}
		} else {
			out = out.Append(next)
		}
		// Alg. 4 line 8: inform a quorum of the previous configuration.
		if err := cl.PutConfig(ctx, out[i].Cfg, out[i+1]); err != nil {
			return nil, err
		}
		i++
	}
}

// proposer returns (building if needed) the consensus proposer for the
// instance attached to configuration c.
func (cl *Client) proposer(c cfg.Configuration) (*consensus.Proposer, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if p, ok := cl.proposers[c.ID]; ok {
		return p, nil
	}
	p, err := consensus.NewProposer(cl.self, c.Key, string(c.ID), c.Servers, cl.rpc)
	if err != nil {
		return nil, err
	}
	cl.proposers[c.ID] = p
	return p, nil
}

// ErrSameConfiguration reports a proposal to reconfigure into a
// configuration already present in the sequence.
var ErrSameConfiguration = errors.New("recon: configuration already installed")

// Reconfig is the reconfig(c) operation (Alg. 5): read-config, add-config
// (consensus), update-config (state transfer), finalize-config. It returns
// the configuration actually installed — another reconfigurer's proposal
// when consensus decides differently — plus the resulting sequence.
//
// A concurrent reconfigurer may finalize (and thereby garbage-collect) a
// configuration this operation is still addressing; such phases fail with
// the cfg.ErrRetired redirect, and Reconfig restarts from read-config —
// which discovers the live window — a bounded number of times.
func (cl *Client) Reconfig(ctx context.Context, proposal cfg.Configuration) (cfg.Configuration, error) {
	if err := proposal.Validate(); err != nil {
		return cfg.Configuration{}, fmt.Errorf("recon: proposal: %w", err)
	}
	var decided cfg.Configuration
	err := cfg.RetryRetired(ctx, func() (opErr error) {
		decided, opErr = cl.reconfigOnce(ctx, proposal)
		return opErr
	})
	return decided, err
}

func (cl *Client) reconfigOnce(ctx context.Context, proposal cfg.Configuration) (cfg.Configuration, error) {
	// Phase 1: read-config.
	seq, err := cl.ReadConfig(ctx, cl.Sequence())
	if err != nil {
		return cfg.Configuration{}, err
	}
	for _, e := range seq {
		if e.Cfg.Equal(proposal) {
			return cfg.Configuration{}, fmt.Errorf("%w: %s", ErrSameConfiguration, proposal.ID)
		}
	}

	// Phase 2: add-config — run consensus on the last configuration.
	seq, decided, err := cl.addConfig(ctx, seq, proposal)
	if err != nil {
		return cfg.Configuration{}, err
	}

	// Phase 3: update-config — transfer the freshest tag/value forward.
	if err := cl.updateConfig(ctx, seq); err != nil {
		return cfg.Configuration{}, err
	}

	// Phase 4: finalize-config.
	seq, err = cl.finalizeConfig(ctx, seq)
	if err != nil {
		return cfg.Configuration{}, err
	}
	if err := cl.setSequence(seq); err != nil {
		return cfg.Configuration{}, err
	}
	return decided, nil
}

// addConfig is Alg. 5 lines 13–20: propose on the last configuration's
// consensus instance, adopt the decided configuration, and link it with
// put-config.
func (cl *Client) addConfig(ctx context.Context, seq cfg.Sequence, proposal cfg.Configuration) (cfg.Sequence, cfg.Configuration, error) {
	last := seq.Last().Cfg
	// The proposal extends this chain, so it serves this chain's key: bind it
	// before proposing so every server routes the new configuration's
	// messages to the same per-key state the rest of the chain uses.
	proposal.Key = last.Key
	p, err := cl.proposer(last)
	if err != nil {
		return nil, cfg.Configuration{}, err
	}
	encoded, err := transport.Marshal(proposal)
	if err != nil {
		return nil, cfg.Configuration{}, err
	}
	decidedBytes, err := p.Propose(ctx, encoded)
	if err != nil {
		return nil, cfg.Configuration{}, fmt.Errorf("recon: add-config consensus on %s: %w", last.ID, err)
	}
	var decided cfg.Configuration
	if err := transport.Unmarshal(decidedBytes, &decided); err != nil {
		return nil, cfg.Configuration{}, err
	}

	// Provision the decided configuration's servers before making the
	// configuration reachable.
	if cl.install != nil {
		if err := cl.install(ctx, decided); err != nil {
			return nil, cfg.Configuration{}, fmt.Errorf("recon: installing %s: %w", decided.ID, err)
		}
	}

	entry := cfg.Entry{Cfg: decided, Status: cfg.Pending}
	seq = seq.Append(entry)
	if err := cl.PutConfig(ctx, last, entry); err != nil {
		return nil, cfg.Configuration{}, err
	}
	return seq, decided, nil
}

// updateConfig is Alg. 5 lines 21–30 (or Alg. 8 under DirectTransfer):
// collect the maximum tag-value among configurations µ..ν and write it into
// the configuration at ν.
func (cl *Client) updateConfig(ctx context.Context, seq cfg.Sequence) error {
	mu, nu := seq.Mu(), seq.Nu()
	target := seq[nu].Cfg

	if cl.opts.DirectTransfer {
		if err := cl.updateConfigDirect(ctx, seq, mu, nu); err == nil {
			return nil
		} else if !errors.Is(err, errDirectUnsupported) {
			return err
		}
		// Unsupported pair: fall through to the value transfer.
	}

	// Alg. 5: gather ⟨tag, value⟩ from every configuration in [µ, ν].
	best := tag.Pair{}
	for i := mu; i <= nu; i++ {
		client, err := cl.daps.Get(seq[i].Cfg)
		if err != nil {
			return err
		}
		pair, err := client.GetData(ctx)
		if err != nil {
			// A configuration mid-write may be transiently undecodable
			// (TREAS); the freshest finalized state is still covered by the
			// remaining configurations. Skip only that failure mode.
			if errors.Is(err, treas.ErrNotDecodable) {
				continue
			}
			return fmt.Errorf("recon: update-config get-data on %s: %w", seq[i].Cfg.ID, err)
		}
		best = tag.MaxPair(best, pair)
	}
	targetClient, err := cl.daps.Get(target)
	if err != nil {
		return err
	}
	if err := targetClient.PutData(ctx, best); err != nil {
		return fmt.Errorf("recon: update-config put-data on %s: %w", target.ID, err)
	}
	return nil
}

// errDirectUnsupported reports a configuration pair the §5 path cannot
// serve (non-TREAS source or target).
var errDirectUnsupported = errors.New("recon: direct transfer unsupported for configuration pair")

// updateConfigDirect is the §5/Alg. 8 update: discover the maximum tag and
// the configuration holding it using get-tag only, then have that
// configuration's servers forward coded elements directly to the new
// configuration's servers.
func (cl *Client) updateConfigDirect(ctx context.Context, seq cfg.Sequence, mu, nu int) error {
	target := seq[nu].Cfg
	if target.Algorithm != cfg.TREAS {
		return errDirectUnsupported
	}

	bestTag := tag.Zero
	bestIdx := mu
	for i := mu; i <= nu; i++ {
		client, err := cl.daps.Get(seq[i].Cfg)
		if err != nil {
			return err
		}
		t, err := client.GetTag(ctx)
		if err != nil {
			return fmt.Errorf("recon: direct update get-tag on %s: %w", seq[i].Cfg.ID, err)
		}
		if bestTag.Less(t) {
			bestTag, bestIdx = t, i
		}
	}
	src := seq[bestIdx].Cfg
	if src.Equal(target) {
		return nil // freshest tag already lives in the new configuration
	}
	if src.Algorithm != cfg.TREAS {
		return errDirectUnsupported
	}
	if err := treas.RequestForward(ctx, cl.rpc, cl.self, src, target, bestTag); err != nil {
		return fmt.Errorf("recon: forward-code-element %s → %s: %w", src.ID, target.ID, err)
	}
	return nil
}

// finalizeConfig is Alg. 5 lines 31–35: mark the last configuration
// finalized and tell the previous configuration's servers.
func (cl *Client) finalizeConfig(ctx context.Context, seq cfg.Sequence) (cfg.Sequence, error) {
	nu := seq.Nu()
	seq, err := seq.Finalize(nu)
	if err != nil {
		return nil, err
	}
	if err := cl.PutConfig(ctx, seq[nu-1].Cfg, seq[nu]); err != nil {
		return nil, err
	}
	return seq, nil
}
