package recon

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/abd"
	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/consensus"
	"github.com/ares-storage/ares/internal/dap"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/treas"
	"github.com/ares-storage/ares/internal/types"
)

// testWorld is a minimal deployment for recon tests: nodes indexed by ID,
// each hosting one keyed service per family, with an installer that
// registers configurations with the nodes' resolvers.
type testWorld struct {
	net *transport.Simnet
	reg *dap.Registry

	// mu guards nodes: concurrent reconfigurers (e.g.
	// TestConcurrentReconfigsUniqueSuccessor) install configurations — and
	// hence ensure nodes — from racing goroutines.
	mu        sync.Mutex
	nodes     map[types.ProcessID]*node.Node
	resolvers map[types.ProcessID]*cfg.Resolver
	pointers  map[types.ProcessID]*Service
}

func newWorld() *testWorld {
	r := dap.NewRegistry()
	r.Register(cfg.ABD, abd.Factory)
	return &testWorld{
		net:       transport.NewSimnet(),
		nodes:     make(map[types.ProcessID]*node.Node),
		resolvers: make(map[types.ProcessID]*cfg.Resolver),
		pointers:  make(map[types.ProcessID]*Service),
		reg:       r,
	}
}

func (w *testWorld) ensureNode(id types.ProcessID) *node.Node {
	if n, ok := w.nodes[id]; ok {
		return n
	}
	n := node.New(id)
	src := cfg.NewResolver()
	ptr := NewService(id, src)
	n.InstallKeyed(abd.ServiceName, abd.NewService(id, src))
	n.InstallKeyed(treas.ServiceName, treas.NewService(id, src, w.net.Client(id)))
	n.InstallKeyed(ServiceName, ptr)
	n.InstallKeyed(consensus.ServiceName, consensus.NewService(id, src))
	w.nodes[id] = n
	w.resolvers[id] = src
	w.pointers[id] = ptr
	w.net.Register(id, n)
	return n
}

// installLocal registers a configuration with every member's resolver; the
// keyed services materialize per-config state lazily.
func (w *testWorld) installLocal(c cfg.Configuration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, s := range c.Servers {
		w.ensureNode(s)
		w.resolvers[s].Add(c)
	}
}

func (w *testWorld) installer() Installer {
	return func(_ context.Context, c cfg.Configuration) error {
		w.installLocal(c)
		return nil
	}
}

func abdCfg(id cfg.ID, prefix string, n int) cfg.Configuration {
	c := cfg.Configuration{ID: id, Algorithm: cfg.ABD}
	for i := 1; i <= n; i++ {
		c.Servers = append(c.Servers, types.ProcessID(fmt.Sprintf("%s%d", prefix, i)))
	}
	return c
}

func newTestClient(t *testing.T, w *testWorld, id types.ProcessID, c0 cfg.Configuration) *Client {
	t.Helper()
	cl, err := NewClient(id, c0, w.net.Client(id), w.reg, w.installer(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestReadConfigOnFreshSystem(t *testing.T) {
	t.Parallel()
	w := newWorld()
	c0 := abdCfg("c0", "a", 3)
	w.installLocal(c0)
	cl := newTestClient(t, w, "g1", c0)
	seq, err := cl.ReadConfig(context.Background(), cl.Sequence())
	if err != nil {
		t.Fatal(err)
	}
	if seq.Nu() != 0 || seq[0].Cfg.ID != "c0" {
		t.Fatalf("seq = %v", seq)
	}
}

func TestReconfigAppendsAndFinalizes(t *testing.T) {
	t.Parallel()
	w := newWorld()
	c0 := abdCfg("c0", "a", 3)
	c1 := abdCfg("c1", "b", 3)
	w.installLocal(c0)
	cl := newTestClient(t, w, "g1", c0)

	installed, err := cl.Reconfig(context.Background(), c1)
	if err != nil {
		t.Fatal(err)
	}
	if installed.ID != "c1" {
		t.Fatalf("installed %s", installed.ID)
	}
	seq := cl.Sequence()
	if seq.Nu() != 1 || seq[1].Status != cfg.Finalized {
		t.Fatalf("seq = %v, want c1 finalized", seq)
	}

	// The old configuration's servers point at ⟨c1, F⟩ (Lemma 46 makes the
	// pointer immutable from here).
	entry, ok, err := cl.ReadNextConfig(context.Background(), c0)
	if err != nil || !ok {
		t.Fatalf("ReadNextConfig: ok=%v err=%v", ok, err)
	}
	if entry.Cfg.ID != "c1" || entry.Status != cfg.Finalized {
		t.Fatalf("nextC = %v %v", entry.Cfg.ID, entry.Status)
	}
}

func TestReconfigTransfersState(t *testing.T) {
	t.Parallel()
	w := newWorld()
	c0 := abdCfg("c0", "a", 3)
	c1 := abdCfg("c1", "b", 3)
	w.installLocal(c0)
	ctx := context.Background()

	// Put a value directly into c0 via the DAP.
	dapClient, err := w.reg.New(c0, w.net.Client("w1"))
	if err != nil {
		t.Fatal(err)
	}
	written := tag.Pair{Tag: tag.Tag{Z: 9, W: "w1"}, Value: types.Value("carried")}
	if err := dapClient.PutData(ctx, written); err != nil {
		t.Fatal(err)
	}

	cl := newTestClient(t, w, "g1", c0)
	if _, err := cl.Reconfig(ctx, c1); err != nil {
		t.Fatal(err)
	}

	// The new configuration must hold the value (update-config moved it).
	newDap, err := w.reg.New(c1, w.net.Client("r1"))
	if err != nil {
		t.Fatal(err)
	}
	pair, err := newDap.GetData(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Tag != written.Tag || string(pair.Value) != "carried" {
		t.Fatalf("new config holds (%v, %q)", pair.Tag, pair.Value)
	}
}

func TestReconfigRejectsDuplicate(t *testing.T) {
	t.Parallel()
	w := newWorld()
	c0 := abdCfg("c0", "a", 3)
	w.installLocal(c0)
	cl := newTestClient(t, w, "g1", c0)
	if _, err := cl.Reconfig(context.Background(), c0); !errors.Is(err, ErrSameConfiguration) {
		t.Fatalf("err = %v, want ErrSameConfiguration", err)
	}
}

func TestReconfigInvalidProposal(t *testing.T) {
	t.Parallel()
	w := newWorld()
	c0 := abdCfg("c0", "a", 3)
	w.installLocal(c0)
	cl := newTestClient(t, w, "g1", c0)
	bad := cfg.Configuration{ID: "broken", Algorithm: "nope"}
	if _, err := cl.Reconfig(context.Background(), bad); err == nil {
		t.Fatal("invalid proposal accepted")
	}
}

func TestSequentialReconfigsChainPointers(t *testing.T) {
	t.Parallel()
	w := newWorld()
	c0 := abdCfg("c0", "a", 3)
	w.installLocal(c0)
	cl := newTestClient(t, w, "g1", c0)
	ctx := context.Background()

	var chain []cfg.Configuration
	for i := 1; i <= 4; i++ {
		c := abdCfg(cfg.ID(fmt.Sprintf("c%d", i)), fmt.Sprintf("p%d-", i), 3)
		chain = append(chain, c)
		if _, err := cl.Reconfig(ctx, c); err != nil {
			t.Fatalf("reconfig %d: %v", i, err)
		}
	}
	// A fresh client starting from c0 discovers the whole chain.
	fresh := newTestClient(t, w, "g2", c0)
	seq, err := fresh.ReadConfig(ctx, fresh.Sequence())
	if err != nil {
		t.Fatal(err)
	}
	if seq.Nu() != len(chain) {
		t.Fatalf("fresh traversal found %d configurations, want %d", seq.Nu(), len(chain))
	}
	for i, c := range chain {
		if seq[i+1].Cfg.ID != c.ID {
			t.Fatalf("seq[%d] = %s, want %s", i+1, seq[i+1].Cfg.ID, c.ID)
		}
	}
}

func TestConcurrentReconfigsUniqueSuccessor(t *testing.T) {
	t.Parallel()
	// Lemma 47 end-to-end: many concurrent reconfigurers, one successor per
	// slot, all sequences agree per index.
	w := newWorld()
	c0 := abdCfg("c0", "a", 3)
	w.installLocal(c0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const contenders = 4
	clients := make([]*Client, contenders)
	for i := range clients {
		clients[i] = newTestClient(t, w, types.ProcessID(fmt.Sprintf("g%d", i)), c0)
	}
	var wg sync.WaitGroup
	for i := 0; i < contenders; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			proposal := abdCfg(cfg.ID(fmt.Sprintf("cand-%d", i)), fmt.Sprintf("q%d-", i), 3)
			if _, err := clients[i].Reconfig(ctx, proposal); err != nil {
				t.Errorf("reconfigurer %d: %v", i, err)
			}
		}()
	}
	wg.Wait()

	// Compare sequences pairwise on shared prefixes.
	for i := 1; i < contenders; i++ {
		a, b := clients[0].Sequence(), clients[i].Sequence()
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for j := 0; j < n; j++ {
			if a[j].Cfg.ID != b[j].Cfg.ID {
				t.Fatalf("sequences diverge at %d: %s vs %s", j, a[j].Cfg.ID, b[j].Cfg.ID)
			}
		}
	}
}

// soloPointer builds a one-member pointer service for direct handler tests.
func soloPointer() *Service {
	c := abdCfg("solo", "x", 3)
	src := cfg.NewResolver()
	src.Add(c)
	return NewService("x1", src)
}

func TestServicePointerRules(t *testing.T) {
	t.Parallel()
	svc := soloPointer()
	entryP := cfg.Entry{Cfg: abdCfg("c1", "x", 3), Status: cfg.Pending}
	entryF := cfg.Entry{Cfg: abdCfg("c1", "x", 3), Status: cfg.Finalized}

	// ⊥ → P allowed.
	if _, err := svc.HandleKeyed("q", "", "solo", msgWriteConfig, transport.MustMarshal(writeConfigReq{Next: entryP})); err != nil {
		t.Fatal(err)
	}
	// P → F allowed.
	if _, err := svc.HandleKeyed("q", "", "solo", msgWriteConfig, transport.MustMarshal(writeConfigReq{Next: entryF})); err != nil {
		t.Fatal(err)
	}
	// F is immutable: write-back of P leaves F in place.
	if _, err := svc.HandleKeyed("q", "", "solo", msgWriteConfig, transport.MustMarshal(writeConfigReq{Next: entryP})); err != nil {
		t.Fatal(err)
	}
	got, ok := svc.Next("", "solo")
	if !ok || got.Status != cfg.Finalized {
		t.Fatalf("nextC = %+v ok=%v, want finalized", got, ok)
	}
}

func TestServiceRejectsConflictingSuccessor(t *testing.T) {
	t.Parallel()
	svc := soloPointer()
	first := cfg.Entry{Cfg: abdCfg("c1", "x", 3), Status: cfg.Pending}
	conflicting := cfg.Entry{Cfg: abdCfg("cX", "y", 3), Status: cfg.Pending}
	if _, err := svc.HandleKeyed("q", "", "solo", msgWriteConfig, transport.MustMarshal(writeConfigReq{Next: first})); err != nil {
		t.Fatal(err)
	}
	_, err := svc.HandleKeyed("q", "", "solo", msgWriteConfig, transport.MustMarshal(writeConfigReq{Next: conflicting}))
	if err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("err = %v, want conflict report", err)
	}
}

func TestServiceUnknownMessage(t *testing.T) {
	t.Parallel()
	svc := soloPointer()
	if _, err := svc.HandleKeyed("q", "", "solo", "bogus", nil); err == nil {
		t.Fatal("unknown message type accepted")
	}
}

// TestPerKeyPointerIndependence pins the keyed pointer service: two keys'
// chains derived from one template advance independently inside a single
// service instance.
func TestPerKeyPointerIndependence(t *testing.T) {
	t.Parallel()
	tmpl := abdCfg(cfg.ID("store/"+cfg.KeyPlaceholder+"/c0"), "x", 3)
	src := cfg.NewResolver()
	src.Add(tmpl)
	svc := NewService("x1", src)
	next := cfg.Entry{Cfg: abdCfg("c1", "x", 3), Status: cfg.Pending}
	if _, err := svc.HandleKeyed("q", "a", "store/a/c0", msgWriteConfig, transport.MustMarshal(writeConfigReq{Next: next})); err != nil {
		t.Fatal(err)
	}
	if _, ok := svc.Next("b", "store/b/c0"); ok {
		t.Fatal("key b observed key a's pointer")
	}
	if _, ok := svc.Next("a", "store/a/c0"); !ok {
		t.Fatal("key a's pointer lost")
	}
}

func TestReadNextConfigPrefersFinalized(t *testing.T) {
	t.Parallel()
	w := newWorld()
	c0 := abdCfg("c0", "a", 3)
	w.installLocal(c0)
	cl := newTestClient(t, w, "g1", c0)
	ctx := context.Background()

	next := abdCfg("c1", "b", 3)
	// Hand-plant mixed pointer states: one server sees F, others P.
	entryP := cfg.Entry{Cfg: next, Status: cfg.Pending}
	entryF := cfg.Entry{Cfg: next, Status: cfg.Finalized}
	for i, s := range c0.Servers {
		svc := w.pointers[s]
		e := entryP
		if i == 0 {
			e = entryF
		}
		if _, err := svc.HandleKeyed("test", "", string(c0.ID), msgWriteConfig, transport.MustMarshal(writeConfigReq{Next: e})); err != nil {
			t.Fatal(err)
		}
	}
	entry, ok, err := cl.ReadNextConfig(ctx, c0)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	// With all three servers responding, the finalized pointer must win.
	// (A quorum that misses server 0 legitimately returns P; gather waits
	// for a quorum = 2 here, so allow P but require the right config.)
	if entry.Cfg.ID != "c1" {
		t.Fatalf("next = %s", entry.Cfg.ID)
	}
}

func TestReconfigWithoutInstallerFailsCleanly(t *testing.T) {
	t.Parallel()
	w := newWorld()
	c0 := abdCfg("c0", "a", 3)
	c1 := abdCfg("c1", "uninstalled-", 3)
	w.installLocal(c0)
	// Client with nil installer: new servers exist on the network but have
	// no services; update-config on c1 must fail rather than hang forever.
	cl, err := NewClient("g1", c0, w.net.Client("g1"), w.reg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range c1.Servers {
		w.ensureNode(s) // nodes exist, services do not
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := cl.Reconfig(ctx, c1); err == nil {
		t.Fatal("reconfig to unprovisioned configuration succeeded")
	}
}
