package recon

// Durability hooks. The pointer's one mutation — write-config — journals
// before it applies. Retirement persists as a meta-log record written by the
// preRetire hook BEFORE the in-memory tombstone: the record carries the full
// finalized successor entry, so recovery can re-register a successor this
// server never had installed. Replay applies pointer transitions WITHOUT the
// retire side effects (no fan-out, no gossip); retirements replay from the
// meta log instead, and any pointer that reached finalized without its
// retire record landing (crash in the gap) is healed by
// CompleteRetirements after recovery.

import (
	"fmt"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/keystate"
	"github.com/ares-storage/ares/internal/transport"
)

// opWriteConfig journals a msgWriteConfig payload.
const opWriteConfig byte = 1

// pointerSnap is the snapshot blob of one nextC pointer.
type pointerSnap struct {
	HasNext bool
	Next    cfg.Entry
}

// PreRetireFunc journals an imminent retirement of (key, configID),
// superseded by next, before any in-memory lifecycle mutation.
type PreRetireFunc func(key, configID string, next cfg.Entry) error

var _ keystate.DurableService = (*Service)(nil)

// SetPreRetire installs the durability hook run at the top of every
// retirement (nil disables). Errors are deliberately non-fatal to the
// retirement itself: the finalized write-config record IS journaled, so a
// lost retire record is re-derived by CompleteRetirements on the next
// recovery.
func (s *Service) SetPreRetire(fn PreRetireFunc) { s.preRetire = fn }

// DurableFamily implements keystate.DurableService.
func (s *Service) DurableFamily() string { return ServiceName }

// SetJournal attaches the write-ahead journal (nil = in-memory).
func (s *Service) SetJournal(j *keystate.Journal) { s.journal.Store(j) }

func (s *Service) journalWriteConfig(key, configID string, payload []byte) (func(), error) {
	jr := s.journal.Load()
	if jr == nil {
		return func() {}, nil
	}
	return jr.Append(key, configID, opWriteConfig, payload)
}

// ReplayApply implements keystate.DurableService: re-run one write-config
// transition with no retire/gossip side effects.
func (s *Service) ReplayApply(key, configID string, op byte, payload []byte) error {
	if op != opWriteConfig {
		return fmt.Errorf("recon: unknown journal op %d", op)
	}
	var req writeConfigReq
	if err := transport.Unmarshal(payload, &req); err != nil {
		return err
	}
	st, err := s.state(key, configID)
	if err != nil {
		return err
	}
	st.apply(req.Next)
	return nil
}

// SnapshotStates implements keystate.DurableService.
func (s *Service) SnapshotStates(emit func(key, configID string, blob []byte) error) error {
	var outerErr error
	s.states.Range(func(ref keystate.Ref, st *pointer) bool {
		st.mu.Lock()
		blob, err := transport.Marshal(pointerSnap{HasNext: st.hasNext, Next: st.next})
		st.mu.Unlock()
		if err == nil {
			err = emit(ref.Key, ref.Config, blob)
		}
		outerErr = err
		return err == nil
	})
	return outerErr
}

// RestoreState implements keystate.DurableService.
func (s *Service) RestoreState(key, configID string, blob []byte) error {
	var snap pointerSnap
	if err := transport.Unmarshal(blob, &snap); err != nil {
		return err
	}
	if !snap.HasNext {
		return nil
	}
	st, err := s.state(key, configID)
	if err != nil {
		return err
	}
	st.apply(snap.Next)
	return nil
}

// apply merges one observed successor entry into the pointer, monotonically:
// ⊥ adopts anything, pending upgrades to finalized, finalized never changes
// (Lemma 46). Unlike the live handler it tolerates rather than rejects a
// conflicting entry — replay is reconstructing history, not arbitrating it —
// by keeping the finalized (or first) entry.
func (st *pointer) apply(next cfg.Entry) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch {
	case !st.hasNext:
		st.next = next
		st.hasNext = true
	case st.next.Status == cfg.Pending && next.Status == cfg.Finalized:
		st.next = next
	}
}

// CompleteRetirements re-runs the retirement of every pointer whose
// successor is finalized but whose (key, config) pair is not tombstoned —
// the crash window between a finalized write-config landing in the stripe
// log and its retire record landing in the meta log. Call once after
// recovery, before serving traffic. Returns how many retirements ran.
func (s *Service) CompleteRetirements() int {
	ret, ok := s.cfgs.(cfg.RetirementSource)
	if !ok || !s.gc {
		return 0
	}
	type pending struct {
		key, configID string
		next          cfg.Entry
	}
	var todo []pending
	s.states.Range(func(ref keystate.Ref, st *pointer) bool {
		st.mu.Lock()
		finalized := st.hasNext && st.next.Status == cfg.Finalized
		next := st.next
		st.mu.Unlock()
		if !finalized {
			return true
		}
		if _, retired := ret.RetiredSuccessor(ref.Key, cfg.ID(ref.Config)); retired {
			return true
		}
		todo = append(todo, pending{ref.Key, ref.Config, next})
		return true
	})
	for _, p := range todo {
		s.retire(p.key, p.configID, p.next)
	}
	return len(todo)
}
