package recon

import (
	"testing"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/transport"
)

// Pointer-service lifecycle tests: the pending → finalized transition must
// retire the pointer, fan out to the host's services, and keep answering
// read-config for the retired configuration from the resolver-backed
// archive.

// gcWorld builds a one-member pointer service with lifecycle enabled and a
// fan-out recorder.
func gcWorld(t *testing.T) (*Service, *cfg.Resolver, *[]string) {
	t.Helper()
	src := cfg.NewResolver()
	c0 := abdCfg("gc/k/c0", "x", 3)
	c0.Key = "k"
	c1 := abdCfg("gc/k/c1", "x", 3)
	c1.Key = "k"
	src.Add(c0)
	src.Add(c1)
	svc := NewService("x1", src)
	var retired []string
	svc.SetLifecycle(nil, func(key, configID string, next cfg.Entry) int {
		retired = append(retired, key+"/"+configID+"→"+string(next.Cfg.ID))
		return 2 // pretend two service states dropped
	})
	return svc, src, &retired
}

func TestFinalizationRetiresPointer(t *testing.T) {
	t.Parallel()
	svc, src, retired := gcWorld(t)
	c1 := abdCfg("gc/k/c1", "x", 3)
	c1.Key = "k"
	entryP := cfg.Entry{Cfg: c1, Status: cfg.Pending}
	entryF := cfg.Entry{Cfg: c1, Status: cfg.Finalized}

	if _, err := svc.HandleKeyed("q", "k", "gc/k/c0", msgWriteConfig, transport.MustMarshal(writeConfigReq{Next: entryP})); err != nil {
		t.Fatal(err)
	}
	if svc.States() != 1 || len(*retired) != 0 {
		t.Fatalf("pending write: states=%d retired=%v, want 1 state and no retirement", svc.States(), *retired)
	}
	if _, err := svc.HandleKeyed("q", "k", "gc/k/c0", msgWriteConfig, transport.MustMarshal(writeConfigReq{Next: entryF})); err != nil {
		t.Fatal(err)
	}
	if svc.States() != 0 {
		t.Fatalf("finalized write left %d pointer states, want 0 (retired to archive)", svc.States())
	}
	if len(*retired) != 1 || (*retired)[0] != "k/gc/k/c0→gc/k/c1" {
		t.Fatalf("fan-out calls = %v, want exactly the finalized pair", *retired)
	}
	// pointer delete (1) + fan-out's report (2)
	if got := svc.RetiredStates(); got != 3 {
		t.Fatalf("RetiredStates = %d, want 3", got)
	}
	if succ, ok := src.RetiredSuccessor("k", "gc/k/c0"); !ok || succ != "gc/k/c1" {
		t.Fatalf("resolver tombstone = (%q, %v), want (gc/k/c1, true)", succ, ok)
	}

	// read-config on the retired pair is answered from the archive with the
	// finalized successor; write-config is an ACK no-op; replays never
	// re-trigger the fan-out.
	resp, err := svc.HandleKeyed("q", "k", "gc/k/c0", msgReadConfig, nil)
	if err != nil {
		t.Fatalf("read-config on retired: %v", err)
	}
	rc := resp.(readConfigResp)
	if !rc.HasNext || rc.Next.Cfg.ID != "gc/k/c1" || rc.Next.Status != cfg.Finalized {
		t.Fatalf("archived read-config = %+v, want finalized gc/k/c1", rc)
	}
	if _, err := svc.HandleKeyed("q", "k", "gc/k/c0", msgWriteConfig, transport.MustMarshal(writeConfigReq{Next: entryF})); err != nil {
		t.Fatalf("write-config on retired: %v", err)
	}
	if len(*retired) != 1 {
		t.Fatalf("replayed finalization re-triggered the fan-out: %v", *retired)
	}
	// Next answers from the archive too.
	if next, ok := svc.Next("k", "gc/k/c0"); !ok || next.Cfg.ID != "gc/k/c1" {
		t.Fatalf("Next on retired = (%+v, %v), want archived gc/k/c1", next, ok)
	}
}

// TestLifecycleDisabledKeepsPointers pins the opt-in: without SetLifecycle a
// finalization mutates the pointer but retires nothing.
func TestLifecycleDisabledKeepsPointers(t *testing.T) {
	t.Parallel()
	src := cfg.NewResolver()
	c0 := abdCfg("keep/k/c0", "x", 3)
	c0.Key = "k"
	src.Add(c0)
	svc := NewService("x1", src)
	c1 := abdCfg("keep/k/c1", "x", 3)
	c1.Key = "k"
	if _, err := svc.HandleKeyed("q", "k", "keep/k/c0", msgWriteConfig, transport.MustMarshal(writeConfigReq{Next: cfg.Entry{Cfg: c1, Status: cfg.Finalized}})); err != nil {
		t.Fatal(err)
	}
	if svc.States() != 1 {
		t.Fatalf("states = %d, want 1 (no GC without SetLifecycle)", svc.States())
	}
	if src.RetiredCount() != 0 {
		t.Fatalf("resolver tombstones = %d, want 0", src.RetiredCount())
	}
}
