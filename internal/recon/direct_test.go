package recon

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/dap"
	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/treas"
	"github.com/ares-storage/ares/internal/types"
)

// installTreas provisions a TREAS configuration: with keyed services already
// hosted on every node, provisioning is just resolver registration.
func (w *testWorld) installTreas(t *testing.T, c cfg.Configuration) {
	t.Helper()
	w.installLocal(c)
}

func treasCfg(id cfg.ID, prefix string, n, k, delta int) cfg.Configuration {
	c := cfg.Configuration{ID: id, Algorithm: cfg.TREAS, K: k, Delta: delta}
	for i := 1; i <= n; i++ {
		c.Servers = append(c.Servers, types.ProcessID(fmt.Sprintf("%s%d", prefix, i)))
	}
	return c
}

// newTreasWorld builds a world whose installer provisions TREAS configs.
func newTreasWorld(t *testing.T) (*testWorld, Installer) {
	t.Helper()
	w := newWorld()
	w.reg.Register(cfg.TREAS, treas.Factory)
	installer := func(_ context.Context, c cfg.Configuration) error {
		switch c.Algorithm {
		case cfg.TREAS:
			w.installTreas(t, c)
		default:
			w.installLocal(c)
		}
		return nil
	}
	return w, installer
}

func TestReconfigDirectTransferAtReconLevel(t *testing.T) {
	t.Parallel()
	w, installer := newTreasWorld(t)
	c0 := treasCfg("c0", "dx-a", 5, 3, 2)
	c1 := treasCfg("c1", "dx-b", 7, 5, 2)
	w.installTreas(t, c0)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Seed c0 with a value through its DAP.
	d0, err := w.reg.New(c0, w.net.Client("w1"))
	if err != nil {
		t.Fatal(err)
	}
	payload := make(types.Value, 20*1024)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	written := tag.Pair{Tag: tag.Tag{Z: 5, W: "w1"}, Value: payload}
	if err := d0.PutData(ctx, written); err != nil {
		t.Fatal(err)
	}

	cl, err := NewClient("g1", c0, w.net.Client("g1"), w.reg, installer, Options{DirectTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Reconfig(ctx, c1); err != nil {
		t.Fatal(err)
	}

	// The new configuration holds the value and serves it natively.
	d1, err := w.reg.New(c1, w.net.Client("r1"))
	if err != nil {
		t.Fatal(err)
	}
	pair, err := readRetry(ctx, d1)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Tag != written.Tag || !pair.Value.Equal(payload) {
		t.Fatalf("new config holds (%v, %d bytes)", pair.Tag, len(pair.Value))
	}
}

func TestReconfigDirectSkipsWhenFreshestIsTarget(t *testing.T) {
	t.Parallel()
	// When the maximum tag already lives in the newly added configuration
	// (e.g. a concurrent write landed there first), direct update transfers
	// nothing and must still finalize correctly.
	w, installer := newTreasWorld(t)
	c0 := treasCfg("c0", "dy-a", 3, 2, 2)
	c1 := treasCfg("c1", "dy-b", 3, 2, 2)
	w.installTreas(t, c0)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl, err := NewClient("g1", c0, w.net.Client("g1"), w.reg, installer, Options{DirectTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	// c0 holds only t0; after the reconfig the last finalized configuration
	// must serve t0's initial value.
	if _, err := cl.Reconfig(ctx, c1); err != nil {
		t.Fatal(err)
	}
	d1, err := w.reg.New(c1, w.net.Client("r1"))
	if err != nil {
		t.Fatal(err)
	}
	pair, err := readRetry(ctx, d1)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Tag != tag.Zero || len(pair.Value) != 0 {
		t.Fatalf("fresh chain returned (%v, %q)", pair.Tag, pair.Value)
	}
}

func TestSequenceAccessorsAndMergeErrors(t *testing.T) {
	t.Parallel()
	w, _ := newTreasWorld(t)
	c0 := treasCfg("c0", "dz-a", 3, 2, 1)
	w.installTreas(t, c0)
	cl, err := NewClient("g1", c0, w.net.Client("g1"), w.reg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq := cl.Sequence()
	if seq.Nu() != 0 || seq[0].Cfg.ID != "c0" {
		t.Fatalf("initial sequence %v", seq)
	}
	// setSequence with a diverging history must be rejected.
	bad := cfg.NewSequence(treasCfg("cX", "dz-x", 3, 2, 1))
	if err := cl.setSequence(bad); err == nil {
		t.Fatal("diverging sequence merged")
	}
}

// readRetry retries get-data while a TREAS decode is transiently impossible.
func readRetry(ctx context.Context, c dap.Client) (tag.Pair, error) {
	for {
		pair, err := c.GetData(ctx)
		if err == nil {
			return pair, nil
		}
		select {
		case <-ctx.Done():
			return tag.Pair{}, err
		case <-time.After(2 * time.Millisecond):
		}
	}
}
