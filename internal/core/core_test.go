package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/recon"
	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// abdConfig builds an ABD configuration with n fresh servers named
// prefix-s1..sn.
func abdConfig(id cfg.ID, prefix string, n int) cfg.Configuration {
	c := cfg.Configuration{ID: id, Algorithm: cfg.ABD}
	for i := 1; i <= n; i++ {
		c.Servers = append(c.Servers, types.ProcessID(fmt.Sprintf("%s-s%d", prefix, i)))
	}
	return c
}

// treasConfig builds a TREAS configuration.
func treasConfig(id cfg.ID, prefix string, n, k, delta int) cfg.Configuration {
	c := cfg.Configuration{ID: id, Algorithm: cfg.TREAS, K: k, Delta: delta}
	for i := 1; i <= n; i++ {
		c.Servers = append(c.Servers, types.ProcessID(fmt.Sprintf("%s-s%d", prefix, i)))
	}
	return c
}

// addHosts ensures hosts exist for every server of a configuration.
func addHosts(cl *Cluster, c cfg.Configuration) {
	for _, s := range c.Servers {
		cl.AddHost(s)
	}
	for _, d := range c.Directories {
		cl.AddHost(d)
	}
}

func TestWriteReadStatic(t *testing.T) {
	t.Parallel()
	for _, alg := range []struct {
		name string
		c0   cfg.Configuration
	}{
		{"abd", abdConfig("c0", "a", 3)},
		{"treas", treasConfig("c0", "t", 5, 3, 2)},
	} {
		alg := alg
		t.Run(alg.name, func(t *testing.T) {
			t.Parallel()
			cluster, err := NewCluster(alg.c0, transport.NewSimnet())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(cluster.Close)
			w, err := cluster.NewClient("w1")
			if err != nil {
				t.Fatal(err)
			}
			r, err := cluster.NewClient("r1")
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			wTag, err := w.Write(ctx, types.Value("ares"))
			if err != nil {
				t.Fatal(err)
			}
			pair, err := r.Read(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if pair.Tag != wTag || string(pair.Value) != "ares" {
				t.Fatalf("read (%v, %q), want (%v, ares)", pair.Tag, pair.Value, wTag)
			}
		})
	}
}

func TestReconfigSameAlgorithm(t *testing.T) {
	t.Parallel()
	c0 := abdConfig("c0", "old", 3)
	c1 := abdConfig("c1", "new", 3)
	cluster, err := NewCluster(c0, transport.NewSimnet())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	addHosts(cluster, c1)

	ctx := context.Background()
	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(ctx, types.Value("before-recon")); err != nil {
		t.Fatal(err)
	}

	g, err := cluster.NewReconfigurer("g1", recon.Options{})
	if err != nil {
		t.Fatal(err)
	}
	installed, err := g.Reconfig(ctx, c1)
	if err != nil {
		t.Fatal(err)
	}
	if installed.ID != "c1" {
		t.Fatalf("installed %s, want c1", installed.ID)
	}

	// A fresh reader (still rooted at c0) must find the value through the
	// new configuration.
	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}
	pair, err := r.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(pair.Value) != "before-recon" {
		t.Fatalf("read %q after reconfiguration, want before-recon", pair.Value)
	}
	if r.Sequence().Nu() != 1 {
		t.Fatalf("reader sequence %v, want two configurations", r.Sequence())
	}
}

func TestReconfigABDToTREAS(t *testing.T) {
	t.Parallel()
	// The adaptivity headline: migrate live from replication to erasure
	// coding (Remark 22).
	c0 := abdConfig("c0", "rep", 3)
	c1 := treasConfig("c1", "ec", 5, 3, 2)
	cluster, err := NewCluster(c0, transport.NewSimnet())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	addHosts(cluster, c1)
	ctx := context.Background()

	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	payload := make(types.Value, 10*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := w.Write(ctx, payload); err != nil {
		t.Fatal(err)
	}

	g, err := cluster.NewReconfigurer("g1", recon.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Reconfig(ctx, c1); err != nil {
		t.Fatal(err)
	}

	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}
	pair, err := r.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Value.Equal(payload) {
		t.Fatal("value corrupted across ABD→TREAS migration")
	}

	// Writes after migration land in the TREAS configuration.
	if _, err := w.Write(ctx, types.Value("post-migration")); err != nil {
		t.Fatal(err)
	}
	pair, err = r.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(pair.Value) != "post-migration" {
		t.Fatalf("read %q", pair.Value)
	}
}

func TestReconfigChain(t *testing.T) {
	t.Parallel()
	// c0 (ABD) → c1 (TREAS) → c2 (TREAS, different params) → c3 (ABD).
	c0 := abdConfig("c0", "g0", 3)
	chain := []cfg.Configuration{
		treasConfig("c1", "g1", 5, 3, 2),
		treasConfig("c2", "g2", 7, 5, 3),
		abdConfig("c3", "g3", 3),
	}
	cluster, err := NewCluster(c0, transport.NewSimnet())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ctx := context.Background()
	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}
	g, err := cluster.NewReconfigurer("g1", recon.Options{})
	if err != nil {
		t.Fatal(err)
	}

	for i, next := range chain {
		value := types.Value(fmt.Sprintf("epoch-%d", i))
		if _, err := w.Write(ctx, value); err != nil {
			t.Fatalf("write epoch %d: %v", i, err)
		}
		addHosts(cluster, next)
		if _, err := g.Reconfig(ctx, next); err != nil {
			t.Fatalf("reconfig to %s: %v", next.ID, err)
		}
		pair, err := r.Read(ctx)
		if err != nil {
			t.Fatalf("read after %s: %v", next.ID, err)
		}
		if !pair.Value.Equal(value) {
			t.Fatalf("after %s read %q, want %q", next.ID, pair.Value, value)
		}
	}
	if got := g.Sequence().Nu(); got != len(chain) {
		t.Fatalf("sequence length %d, want %d", got, len(chain))
	}
}

func TestConcurrentReconfigurersAgree(t *testing.T) {
	t.Parallel()
	c0 := abdConfig("c0", "base", 3)
	proposalA := abdConfig("cA", "pa", 3)
	proposalB := abdConfig("cB", "pb", 3)
	cluster, err := NewCluster(c0, transport.NewSimnet(transport.WithDelayRange(0, time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	addHosts(cluster, proposalA)
	addHosts(cluster, proposalB)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	gA, err := cluster.NewReconfigurer("gA", recon.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gB, err := cluster.NewReconfigurer("gB", recon.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	installed := make([]cfg.Configuration, 2)
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); installed[0], errs[0] = gA.Reconfig(ctx, proposalA) }()
	go func() { defer wg.Done(); installed[1], errs[1] = gB.Reconfig(ctx, proposalB) }()
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("reconfigurer %d: %v", i, err)
		}
	}
	// Consensus on c0 decides one successor; the loser adopts the winner's
	// configuration at index 1 (Configuration Uniqueness, Lemma 47).
	seqA, seqB := gA.Sequence(), gB.Sequence()
	if seqA[1].Cfg.ID != seqB[1].Cfg.ID {
		t.Fatalf("index 1 differs: %s vs %s", seqA[1].Cfg.ID, seqB[1].Cfg.ID)
	}
	if installed[0].ID != installed[1].ID {
		// Each Reconfig returns what consensus decided for its attempt; the
		// two attempts may land in different slots when the loser retries.
		// What must agree is the sequence prefix, checked above.
		t.Logf("installed %s and %s (distinct slots)", installed[0].ID, installed[1].ID)
	}
}

func TestReadWriteConcurrentWithReconfig(t *testing.T) {
	t.Parallel()
	c0 := treasConfig("c0", "e0", 5, 3, 4)
	c1 := treasConfig("c1", "e1", 5, 3, 4)
	c2 := treasConfig("c2", "e2", 5, 3, 4)
	cluster, err := NewCluster(c0, transport.NewSimnet(transport.WithDelayRange(0, 500*time.Microsecond)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	addHosts(cluster, c1)
	addHosts(cluster, c2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer loop.
	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	var lastWritten int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := w.Write(ctx, types.Value(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			lastWritten = i
		}
	}()

	// Reader loop.
	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := tag.Zero
		for {
			select {
			case <-stop:
				return
			default:
			}
			pair, err := r.Read(ctx)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if pair.Tag.Less(prev) {
				t.Errorf("read tags regressed: %v after %v", pair.Tag, prev)
				return
			}
			prev = pair.Tag
		}
	}()

	// Two reconfigurations while traffic flows.
	g, err := cluster.NewReconfigurer("g1", recon.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, next := range []cfg.Configuration{c1, c2} {
		if _, err := g.Reconfig(ctx, next); err != nil {
			t.Fatalf("reconfig to %s: %v", next.ID, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Final read sees at least the last completed write.
	final, err := r.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lastWritten > 0 && final.Tag == tag.Zero {
		t.Fatal("final read returned the initial value despite completed writes")
	}
}

func TestDirectTransferReconfig(t *testing.T) {
	t.Parallel()
	// §5: TREAS→TREAS with direct server-to-server element forwarding.
	c0 := treasConfig("c0", "x0", 5, 3, 2)
	c1 := treasConfig("c1", "x1", 7, 5, 2)
	cluster, err := NewCluster(c0, transport.NewSimnet())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	addHosts(cluster, c1)
	ctx := context.Background()

	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	payload := make(types.Value, 32*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if _, err := w.Write(ctx, payload); err != nil {
		t.Fatal(err)
	}

	g, err := cluster.NewReconfigurer("g1", recon.Options{DirectTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Reconfig(ctx, c1); err != nil {
		t.Fatal(err)
	}

	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}
	pair, err := r.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Value.Equal(payload) {
		t.Fatal("value corrupted across direct-transfer reconfiguration")
	}
}

func TestDirectTransferKeepsValueOffReconfigurer(t *testing.T) {
	t.Parallel()
	// The §5 claim: object bytes do not flow through the reconfiguration
	// client. We verify by measuring value-bearing DAP traffic during the
	// reconfig: the direct path must move no get-data payloads.
	c0 := treasConfig("c0", "y0", 5, 3, 2)
	c1 := treasConfig("c1", "y1", 5, 3, 2)
	net := transport.NewSimnet()
	cluster, err := NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	addHosts(cluster, c1)
	ctx := context.Background()

	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	payload := make(types.Value, 64*1024)
	if _, err := w.Write(ctx, payload); err != nil {
		t.Fatal(err)
	}

	net.Counters().Reset()
	g, err := cluster.NewReconfigurer("g1", recon.Options{DirectTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Reconfig(ctx, c1); err != nil {
		t.Fatal(err)
	}
	snap := net.Counters().Snapshot()
	// query-list responses carry full lists (values) back to a client; the
	// direct path must not issue any.
	if c, ok := snap["treas/query-list/resp"]; ok && c.Bytes > 0 {
		t.Fatalf("direct transfer moved %d bytes of list data through the client", c.Bytes)
	}
	// The forwarded elements travel server-to-server instead.
	if c := snap["treas/fwd-elem/req"]; c.Messages == 0 {
		t.Fatal("no fwd-elem traffic: direct transfer did not engage")
	}
}

func TestInstallerIdempotent(t *testing.T) {
	t.Parallel()
	c0 := treasConfig("c0", "z", 3, 2, 1)
	cluster, err := NewCluster(c0, transport.NewSimnet())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	h, _ := cluster.Host(c0.Servers[0])
	before := h.Node().Services()
	if err := h.InstallConfiguration(c0); err != nil {
		t.Fatal(err)
	}
	if h.Node().Services() != before {
		t.Fatal("re-install created duplicate services")
	}
}

func TestSequenceConvergenceAcrossClients(t *testing.T) {
	t.Parallel()
	// Configuration Prefix / Progress (Theorem 16): sequences observed by
	// different clients are prefix-ordered with monotone µ.
	c0 := abdConfig("c0", "m0", 3)
	c1 := abdConfig("c1", "m1", 3)
	cluster, err := NewCluster(c0, transport.NewSimnet())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	addHosts(cluster, c1)
	ctx := context.Background()
	g, err := cluster.NewReconfigurer("g1", recon.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Reconfig(ctx, c1); err != nil {
		t.Fatal(err)
	}
	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(ctx); err != nil {
		t.Fatal(err)
	}
	gSeq, rSeq := g.Sequence(), r.Sequence()
	if !gSeq.IsPrefixOf(rSeq) && !rSeq.IsPrefixOf(gSeq) {
		t.Fatalf("sequences not prefix-ordered:\n g: %v\n r: %v", gSeq, rSeq)
	}
}
