package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/ares-storage/ares/internal/abd"
	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/consensus"
	"github.com/ares-storage/ares/internal/ldr"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/recon"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/treas"
	"github.com/ares-storage/ares/internal/types"
)

// Control-service constants: every host exposes a node-level "ctl" service
// through which reconfiguration clients provision configurations remotely.
const (
	CtlServiceName = "ctl"
	// CtlConfigKey is the pseudo-configuration the control service is keyed
	// under (it is node-scoped, not configuration-scoped).
	CtlConfigKey = "node"
	msgInstall   = "install"
)

type installReq struct {
	Cfg cfg.Configuration
}

// Host is a server process: a node plus its own network endpoint, able to
// instantiate per-configuration services on demand. Creating a host installs
// the control service; the caller registers the host's node as the process's
// transport handler.
type Host struct {
	node *node.Node
	rpc  transport.Client

	mu     sync.Mutex
	stores []storageReporter
}

// storageReporter is satisfied by every store service; it reports the bytes
// of object data at rest (the paper's storage-cost metric).
type storageReporter interface {
	StorageBytes() int
}

// NewHost wraps a node and its outbound endpoint. rpc is used by TREAS
// stores for the §5 server-to-server forwarding.
func NewHost(n *node.Node, rpc transport.Client) *Host {
	h := &Host{node: n, rpc: rpc}
	n.Install(CtlServiceName, CtlConfigKey, node.ServiceFunc(h.handleCtl))
	return h
}

// Node returns the underlying node (the transport handler to register).
func (h *Host) Node() *node.Node { return h.node }

// ID returns the host's process ID.
func (h *Host) ID() types.ProcessID { return h.node.ID() }

func (h *Host) handleCtl(_ types.ProcessID, msgType string, payload []byte) (any, error) {
	switch msgType {
	case msgInstall:
		var req installReq
		if err := transport.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		return nil, h.InstallConfiguration(req.Cfg)
	default:
		return nil, fmt.Errorf("core: ctl: unknown message type %q", msgType)
	}
}

// InstallConfiguration instantiates configuration c's services on this host:
// the store service matching c.Algorithm, the reconfiguration pointer
// service, and the consensus acceptor. Non-members install nothing.
// Installation is idempotent (node.Install keeps the first instance).
func (h *Host) InstallConfiguration(c cfg.Configuration) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("core: installing %s on %s: %w", c.ID, h.ID(), err)
	}
	member := false
	if _, ok := c.ServerIndex(h.ID()); ok {
		member = true
		store, name, err := h.buildStore(c)
		if err != nil {
			return err
		}
		if h.node.Install(name, string(c.ID), store) {
			if r, ok := store.(storageReporter); ok {
				h.mu.Lock()
				h.stores = append(h.stores, r)
				h.mu.Unlock()
			}
		}
		h.node.Install(recon.ServiceName, string(c.ID), recon.NewService())
		h.node.Install(consensus.ServiceName, string(c.ID), consensus.NewService())
	}
	// LDR directory servers may coincide with or differ from the replica
	// set; install the directory service on directory members.
	if c.Algorithm == cfg.LDR {
		for _, d := range c.Directories {
			if d == h.ID() {
				h.node.Install(ldr.DirectoryServiceName, string(c.ID), ldr.NewDirectoryService())
				member = true
			}
		}
	}
	_ = member
	return nil
}

// StorageBytes sums the object-data bytes at rest across every store
// service installed on this host.
func (h *Host) StorageBytes() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := 0
	for _, s := range h.stores {
		total += s.StorageBytes()
	}
	return total
}

// buildStore constructs the algorithm-specific store service for c.
func (h *Host) buildStore(c cfg.Configuration) (node.Service, string, error) {
	switch c.Algorithm {
	case cfg.ABD:
		return abd.NewService(), abd.ServiceName, nil
	case cfg.TREAS:
		svc, err := treas.NewService(c, h.ID(), h.rpc)
		if err != nil {
			return nil, "", err
		}
		return svc, treas.ServiceName, nil
	case cfg.LDR:
		return ldr.NewReplicaService(), ldr.ReplicaServiceName, nil
	default:
		return nil, "", fmt.Errorf("core: no store for algorithm %q", c.Algorithm)
	}
}

// RemoteInstaller returns a recon.Installer that provisions a configuration
// by sending install commands to its servers' control services over rpc. It
// requires an acknowledgement from every directory member and a quorum of
// servers: directory majorities are quorums of the (often much smaller)
// directory set, so a crashed directory cannot be papered over by extra
// server acks, while crashed servers beyond the quorum are tolerated (they
// cannot be provisioned, and quorums suffice for every subsequent protocol
// step).
func RemoteInstaller(rpc transport.Client) recon.Installer {
	return func(ctx context.Context, c cfg.Configuration) error {
		targets := append([]types.ProcessID(nil), c.Servers...)
		for _, d := range c.Directories {
			if _, ok := c.ServerIndex(d); !ok {
				targets = append(targets, d)
			}
		}
		// Prefer provisioning every member, but do not hang forever on
		// crashed ones: bound the all-targets wait, then check the acks that
		// did arrive against the per-role requirements.
		installCtx, cancel := context.WithTimeout(ctx, installTimeout)
		defer cancel()
		got, err := transport.Broadcast(installCtx, rpc, targets,
			transport.Phase[struct{}]{Service: CtlServiceName, Config: CtlConfigKey, Type: msgInstall, Body: installReq{Cfg: c}},
			transport.AtLeast[struct{}](len(targets)),
		)
		acked := make(map[types.ProcessID]bool, len(got))
		for _, g := range got {
			acked[g.From] = true
		}
		serverAcks := 0
		for _, s := range c.Servers {
			if acked[s] {
				serverAcks++
			}
		}
		if need := c.Quorum().Size(); serverAcks < need {
			return fmt.Errorf("core: installing %s: %d/%d server acks: %w", c.ID, serverAcks, need, err)
		}
		for _, d := range c.Directories {
			if !acked[d] {
				return fmt.Errorf("core: installing %s: directory %s did not ack (err: %v)", c.ID, d, err)
			}
		}
		return nil
	}
}

// installTimeout bounds RemoteInstaller's wait for acks from every member
// before settling for the per-role requirements. A caller context with an
// earlier deadline wins (tests shorten the wait that way).
const installTimeout = 5 * time.Second
