package core

import (
	"context"
	"fmt"
	"time"

	"github.com/ares-storage/ares/internal/abd"
	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/consensus"
	"github.com/ares-storage/ares/internal/keystate"
	"github.com/ares-storage/ares/internal/ldr"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/recon"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/treas"
	"github.com/ares-storage/ares/internal/types"
)

// Control-service constants: every host exposes a node-level "ctl" service
// through which reconfiguration clients provision configurations remotely.
const (
	CtlServiceName = "ctl"
	// CtlConfigKey is the pseudo-configuration the control service is keyed
	// under (it is node-scoped, not configuration-scoped).
	CtlConfigKey = "node"
	msgInstall   = "install"
)

type installReq struct {
	Cfg cfg.Configuration
}

// Host is a server process: a node hosting one keyed service per algorithm
// family, plus a configuration resolver those services materialize
// per-(key, config) state from. Creating a host installs every family
// service and the control service; installing a configuration (or a per-key
// template) only registers it with the resolver — the first message naming a
// (key, config) pair creates its state, so a fresh key costs one map entry
// and zero installation round-trips.
type Host struct {
	node *node.Node
	rpc  transport.Client
	cfgs *cfg.Resolver

	stores []storageReporter
	recon  *recon.Service
	counts []stateReporter

	// Durability (see durable.go): the keyed services in registration order,
	// and the layer itself once EnableDurability ran (nil = in-memory host).
	durables []keystate.DurableService
	dur      *keystate.Durability
}

// stateReporter is satisfied by every keyed service; it reports how many
// (key, config) state entries are currently materialized.
type stateReporter interface {
	States() int
}

// storageReporter is satisfied by every store service; it reports the bytes
// of object data at rest (the paper's storage-cost metric).
type storageReporter interface {
	StorageBytes() int
}

// NewHost wraps a node and its outbound endpoint. rpc is used by TREAS
// stores for the §5 server-to-server forwarding.
func NewHost(n *node.Node, rpc transport.Client) *Host {
	h := &Host{node: n, rpc: rpc, cfgs: cfg.NewResolver()}
	n.Install(CtlServiceName, CtlConfigKey, node.ServiceFunc(h.handleCtl))

	// One keyed service per algorithm family, for the whole keyspace: this
	// is the entire service footprint of the node, independent of how many
	// keys or configurations it ends up serving.
	abdSvc := abd.NewService(n.ID(), h.cfgs)
	treasSvc := treas.NewService(n.ID(), h.cfgs, rpc)
	ldrRep := ldr.NewReplicaService(n.ID(), h.cfgs)
	ldrDir := ldr.NewDirectoryService(n.ID(), h.cfgs)
	reconSvc := recon.NewService(n.ID(), h.cfgs)
	paxosSvc := consensus.NewService(n.ID(), h.cfgs)
	n.InstallKeyed(abd.ServiceName, abdSvc)
	n.InstallKeyed(treas.ServiceName, treasSvc)
	n.InstallKeyed(ldr.ReplicaServiceName, ldrRep)
	n.InstallKeyed(ldr.DirectoryServiceName, ldrDir)
	n.InstallKeyed(recon.ServiceName, reconSvc)
	n.InstallKeyed(consensus.ServiceName, paxosSvc)
	h.stores = []storageReporter{abdSvc, treasSvc, ldrRep}
	h.recon = reconSvc
	h.counts = []stateReporter{abdSvc, treasSvc, ldrRep, ldrDir, reconSvc, paxosSvc}
	h.durables = []keystate.DurableService{abdSvc, treasSvc, ldrRep, ldrDir, reconSvc, paxosSvc}

	// Configuration-lifecycle GC: when the pointer service witnesses a
	// finalized successor for (key, c), every family retires its (key, c)
	// state — the resolver's tombstone (written by the pointer service)
	// keeps the pair from rematerializing, so a lagging client's call gets
	// an explicit cfg.ErrRetired redirect instead of fresh v₀ state.
	reconSvc.SetLifecycle(rpc, func(key, configID string, _ cfg.Entry) int {
		dropped := 0
		for _, retire := range []func(key, configID string) bool{
			abdSvc.RetireConfig,
			treasSvc.RetireConfig,
			ldrRep.RetireConfig,
			ldrDir.RetireConfig,
			paxosSvc.RetireConfig,
		} {
			if retire(key, configID) {
				dropped++
			}
		}
		return dropped
	})
	registerHostGauges(h)
	return h
}

// Node returns the underlying node (the transport handler to register).
func (h *Host) Node() *node.Node { return h.node }

// ID returns the host's process ID.
func (h *Host) ID() types.ProcessID { return h.node.ID() }

// Resolver returns the host's configuration resolver (for tests and
// introspection).
func (h *Host) Resolver() *cfg.Resolver { return h.cfgs }

func (h *Host) handleCtl(_ types.ProcessID, msgType string, payload []byte) (any, error) {
	switch msgType {
	case msgInstall:
		var req installReq
		if err := transport.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		return nil, h.InstallConfiguration(req.Cfg)
	default:
		return nil, fmt.Errorf("core: ctl: unknown message type %q", msgType)
	}
}

// InstallConfiguration makes configuration c (or a per-key template — a
// configuration whose ID embeds cfg.KeyPlaceholder) servable by this host:
// it validates c and registers it with the resolver. No services are
// instantiated; per-(key, config) state materializes on the first message
// addressing it, and membership is checked at that point. Installation is
// idempotent (the resolver keeps the first registration).
func (h *Host) InstallConfiguration(c cfg.Configuration) error {
	if c.IsTemplate() {
		if err := cfg.ValidateTemplate(c); err != nil {
			return fmt.Errorf("core: installing template %s on %s: %w", c.ID, h.ID(), err)
		}
	} else if err := c.Validate(); err != nil {
		return fmt.Errorf("core: installing %s on %s: %w", c.ID, h.ID(), err)
	}
	// Journal the install before registering it: a configuration a service
	// journaled mutations against must itself resolve on replay. Re-installs
	// journal too (replay's Add is first-wins, so duplicates are harmless).
	if h.dur != nil {
		blob, err := transport.Marshal(c)
		if err != nil {
			return err
		}
		release, err := h.dur.AppendInstall(blob)
		if err != nil {
			return fmt.Errorf("core: journaling install of %s on %s: %w", c.ID, h.ID(), err)
		}
		defer release()
	}
	if !h.cfgs.Add(c) {
		// Already registered: idempotent when identical, an error when a
		// different configuration claims the same ID — first-wins silently
		// aliasing the newcomer onto old parameters would corrupt routing
		// (e.g. two ObjectStores sharing a template ID with different codes).
		if existing, ok := h.cfgs.Registered(c.ID); ok && !existing.Same(c) {
			return fmt.Errorf("core: installing %s on %s: conflicting configuration already registered under this ID", c.ID, h.ID())
		}
	}
	return nil
}

// StorageBytes sums the object-data bytes at rest across every store
// service hosted here.
func (h *Host) StorageBytes() int {
	total := 0
	for _, s := range h.stores {
		total += s.StorageBytes()
	}
	return total
}

// ServiceInstances reports how many service instances the node hosts —
// constant in the number of keys and configurations served (the keyed
// hosting model's O(1) guarantee, pinned by tests and the bench harness).
func (h *Host) ServiceInstances() int { return h.node.Services() }

// MaterializedStates sums the live (key, config) state entries across every
// keyed service hosted here — the quantity the lifecycle GC keeps
// O(live configurations) instead of O(reconfiguration walks).
func (h *Host) MaterializedStates() int {
	total := 0
	for _, s := range h.counts {
		total += s.States()
	}
	return total
}

// RetiredStates reports how many (key, config) state entries this host has
// garbage-collected since construction.
func (h *Host) RetiredStates() int64 { return h.recon.RetiredStates() }

// RetiredConfigs reports how many (key, config) pairs are tombstoned in the
// host's resolver.
func (h *Host) RetiredConfigs() int { return h.cfgs.RetiredCount() }

// RemoteInstaller returns a recon.Installer that provisions a configuration
// by sending install commands to its servers' control services over rpc. It
// requires an acknowledgement from every directory member and a quorum of
// servers: directory majorities are quorums of the (often much smaller)
// directory set, so a crashed directory cannot be papered over by extra
// server acks, while crashed servers beyond the quorum are tolerated (they
// cannot be provisioned, and quorums suffice for every subsequent protocol
// step). This is the once-per-configuration cost of reconfiguration; the
// per-key fan-out of a composed store pays it never — templates are
// installed once and keys materialize lazily.
func RemoteInstaller(rpc transport.Client) recon.Installer {
	return func(ctx context.Context, c cfg.Configuration) error {
		targets := append([]types.ProcessID(nil), c.Servers...)
		for _, d := range c.Directories {
			if _, ok := c.ServerIndex(d); !ok {
				targets = append(targets, d)
			}
		}
		// Prefer provisioning every member, but do not hang forever on
		// crashed ones: bound the all-targets wait, then check the acks that
		// did arrive against the per-role requirements.
		installCtx, cancel := context.WithTimeout(ctx, installTimeout)
		defer cancel()
		got, err := transport.Broadcast(installCtx, rpc, targets,
			transport.Phase[struct{}]{Service: CtlServiceName, Config: CtlConfigKey, Type: msgInstall, Body: installReq{Cfg: c}},
			transport.AtLeast[struct{}](len(targets)),
		)
		acked := make(map[types.ProcessID]bool, len(got))
		for _, g := range got {
			acked[g.From] = true
		}
		serverAcks := 0
		for _, s := range c.Servers {
			if acked[s] {
				serverAcks++
			}
		}
		if need := c.Quorum().Size(); serverAcks < need {
			return fmt.Errorf("core: installing %s: %d/%d server acks: %w", c.ID, serverAcks, need, err)
		}
		for _, d := range c.Directories {
			if !acked[d] {
				return fmt.Errorf("core: installing %s: directory %s did not ack (err: %v)", c.ID, d, err)
			}
		}
		return nil
	}
}

// installTimeout bounds RemoteInstaller's wait for acks from every member
// before settling for the per-role requirements. A caller context with an
// earlier deadline wins (tests shorten the wait that way).
const installTimeout = 5 * time.Second
