package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

func TestRetryPolicyGrowsToCap(t *testing.T) {
	t.Parallel()
	p := RetryPolicy{Base: time.Millisecond, Cap: 8 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		1 * time.Millisecond, // attempt 0
		2 * time.Millisecond,
		4 * time.Millisecond,
		8 * time.Millisecond,
		8 * time.Millisecond, // capped
		8 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := p.delayAt(attempt, 0); got != w {
			t.Errorf("attempt %d: delay %v, want %v", attempt, got, w)
		}
	}
}

func TestRetryPolicyJitterBounds(t *testing.T) {
	t.Parallel()
	p := RetryPolicy{Base: 4 * time.Millisecond, Cap: 64 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
	for attempt := 0; attempt < 6; attempt++ {
		full := p.delayAt(attempt, 0)  // no jitter subtracted
		floor := p.delayAt(attempt, 1) // all jitter subtracted
		if want := full / 2; floor != want {
			t.Errorf("attempt %d: jitter floor %v, want %v", attempt, floor, want)
		}
		for _, frac := range []float64{0.1, 0.5, 0.9} {
			d := p.delayAt(attempt, frac)
			if d < floor || d > full {
				t.Errorf("attempt %d frac %v: delay %v outside [%v, %v]", attempt, frac, d, floor, full)
			}
		}
	}
}

func TestRetryPolicyDegenerateInputs(t *testing.T) {
	t.Parallel()
	// Multiplier below 1 means constant pacing; out-of-range jitter clamps.
	p := RetryPolicy{Base: 3 * time.Millisecond, Cap: 10 * time.Millisecond, Multiplier: 0.5, Jitter: 2}
	if got := p.delayAt(5, 0); got != 3*time.Millisecond {
		t.Errorf("constant pacing: delay %v, want 3ms", got)
	}
	if got := p.delayAt(5, 1); got != 0 {
		t.Errorf("full clamped jitter: delay %v, want 0", got)
	}
	// Zero cap leaves growth unbounded.
	p = RetryPolicy{Base: time.Millisecond, Multiplier: 2}
	if got := p.delayAt(10, 0); got != 1024*time.Millisecond {
		t.Errorf("uncapped growth: delay %v, want 1.024s", got)
	}
	// A zero Base falls back to the default instead of a busy loop.
	p = RetryPolicy{Cap: 32 * time.Millisecond}
	if got := p.delayAt(0, 0); got != DefaultRetryPolicy.Base {
		t.Errorf("zero base: delay %v, want default base %v", got, DefaultRetryPolicy.Base)
	}
}

// TestClientRetryPolicyConfigurable pins the wiring: SetRetryPolicy replaces
// the default pacing a client boots with.
func TestClientRetryPolicyConfigurable(t *testing.T) {
	t.Parallel()
	c0 := treasConfig("c0", "rp", 5, 3, 2)
	cluster, err := NewCluster(c0, transport.NewSimnet())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}
	if r.retry != DefaultRetryPolicy {
		t.Fatalf("boot policy %+v, want default %+v", r.retry, DefaultRetryPolicy)
	}
	custom := RetryPolicy{Base: 100 * time.Microsecond, Cap: time.Millisecond, Multiplier: 1.5, Jitter: 0.25}
	r.SetRetryPolicy(custom)
	if r.retry != custom {
		t.Fatalf("policy after SetRetryPolicy %+v, want %+v", r.retry, custom)
	}
}

// TestRemoteInstallerRequiresDirectoryAcks crashes one LDR directory member
// and asserts installation fails even though every replica (a server quorum
// and then some) acked — the documented contract.
func TestRemoteInstallerRequiresDirectoryAcks(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	c := ldrConfig("cl", "dd", 3, 3, 1)
	c0 := abdConfig("c0", "dd0", 3)
	cluster, err := NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	addHosts(cluster, c)
	net.Crash(c.Directories[2])

	installer := RemoteInstaller(net.Client("g1"))
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	err = installer(ctx, c)
	if err == nil {
		t.Fatal("install with a crashed directory succeeded")
	}
	if !strings.Contains(err.Error(), "directory") {
		t.Fatalf("error does not identify the missing directory: %v", err)
	}
}

// TestRemoteInstallerSettlesForServerQuorum is the counterpart: a crashed
// replica beyond the quorum (directories all up) must not block installation.
func TestRemoteInstallerSettlesForServerQuorum(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	c := ldrConfig("cl", "dq", 3, 3, 1)
	c0 := abdConfig("c0", "dq0", 3)
	cluster, err := NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	addHosts(cluster, c)
	net.Crash(c.Servers[2])

	installer := RemoteInstaller(net.Client("g1"))
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if err := installer(ctx, c); err != nil {
		t.Fatalf("install with one crashed replica (quorum intact): %v", err)
	}
}

// TestRetryJitterPrivateSeededSource pins the retry-RNG fix: each client
// draws jitter from its own source (no global math/rand contention), seeded
// deterministically — same process ID (or explicit RetryPolicy.Seed) ⇒ same
// pacing, so replays reproduce retry timing exactly.
func TestRetryJitterPrivateSeededSource(t *testing.T) {
	t.Parallel()
	c0 := treasConfig("c0", "rj", 5, 3, 2)
	cluster, err := NewCluster(c0, transport.NewSimnet())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	policy := RetryPolicy{Base: time.Millisecond, Cap: 32 * time.Millisecond, Multiplier: 2, Jitter: 0.5, Seed: 42}
	seq := func(id types.ProcessID) []time.Duration {
		c, err := cluster.NewClient(id)
		if err != nil {
			t.Fatal(err)
		}
		c.SetRetryPolicy(policy)
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = c.retryDelay(i)
		}
		return out
	}
	a, b := seq("r1"), seq("r2")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: %v vs %v — explicit Seed did not reproduce pacing", i, a[i], b[i])
		}
	}
	// Default seeding is per-process-ID: distinct clients desynchronize.
	noSeed := policy
	noSeed.Seed = 0
	c1, err := cluster.NewClient("rx1")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cluster.NewClient("rx2")
	if err != nil {
		t.Fatal(err)
	}
	c1.SetRetryPolicy(noSeed)
	c2.SetRetryPolicy(noSeed)
	same := true
	for i := 0; i < 8; i++ {
		if c1.retryDelay(i) != c2.retryDelay(i) {
			same = false
		}
	}
	if same {
		t.Fatal("distinct clients produced identical jitter sequences — per-client seeding broken")
	}
}
