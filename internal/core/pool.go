package core

import (
	"fmt"
	"sync/atomic"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// EndpointPool is a fixed set of client-side network endpoints handed out
// round-robin. A multi-object layer instantiates one register client per
// key; without pooling each of those clients also claims a fresh process
// identity and transport endpoint, so a store serving k keys costs k
// network identities. The pool caps that at a configured size: register
// clients for different keys share endpoints (an endpoint is safe for
// concurrent use), while every key still keeps its own configuration chain.
//
// Sharing a process identity across keys is sound because tags only need
// unique writers per register: operations on different keys land in
// different registers, and concurrent writes on the same key go through
// that key's single pooled client, which serializes its writes.
type EndpointPool struct {
	ids  []types.ProcessID
	rpcs []transport.Client
	next atomic.Uint64
}

// NewEndpointPool builds a pool of size endpoints on net, with process IDs
// derived from prefix. Size is clamped to at least one.
func NewEndpointPool(net *transport.Simnet, prefix string, size int) *EndpointPool {
	if size < 1 {
		size = 1
	}
	p := &EndpointPool{
		ids:  make([]types.ProcessID, size),
		rpcs: make([]transport.Client, size),
	}
	for i := 0; i < size; i++ {
		id := types.ProcessID(fmt.Sprintf("%s-%d", prefix, i))
		p.ids[i] = id
		p.rpcs[i] = net.Client(id)
	}
	return p
}

// Get returns the next endpoint (process identity plus transport client)
// round-robin. Safe for concurrent use.
func (p *EndpointPool) Get() (types.ProcessID, transport.Client) {
	i := int(p.next.Add(1)-1) % len(p.ids)
	return p.ids[i], p.rpcs[i]
}

// Size returns the number of pooled endpoints.
func (p *EndpointPool) Size() int { return len(p.ids) }

// NewEndpointPool builds an endpoint pool on the cluster's network; see
// EndpointPool.
func (c *Cluster) NewEndpointPool(prefix string, size int) *EndpointPool {
	return NewEndpointPool(c.network, prefix, size)
}

// NewClientVia returns a reader/writer rooted at root that reuses an
// existing endpoint instead of claiming a fresh one — the construction path
// for pooled multi-object clients (see EndpointPool).
func (c *Cluster) NewClientVia(id types.ProcessID, root cfg.Configuration, rpc transport.Client) (*Client, error) {
	return NewClient(id, root, rpc, c.daps)
}
