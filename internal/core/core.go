// Package core assembles the ARES system (§4): server hosts that can install
// configurations at runtime, the reader/writer clients of Alg. 7, and the
// deployment helpers gluing the reconfiguration service, the consensus
// service, and the per-configuration DAP implementations together.
package core

import (
	"github.com/ares-storage/ares/internal/abd"
	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/dap"
	"github.com/ares-storage/ares/internal/ldr"
	"github.com/ares-storage/ares/internal/treas"
)

// NewRegistry returns a DAP registry wired with the three algorithms shipped
// in this library: ABD, TREAS, and LDR. Each ARES configuration selects one
// by name (cfg.Configuration.Algorithm), which is the paper's adaptivity —
// different configurations may run different atomic-memory algorithms
// (Remark 22).
func NewRegistry() *dap.Registry {
	r := dap.NewRegistry()
	r.Register(cfg.ABD, abd.Factory)
	r.Register(cfg.TREAS, treas.Factory)
	r.Register(cfg.LDR, ldr.Factory)
	return r
}
