package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/abd"
	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/consensus"
	"github.com/ares-storage/ares/internal/ldr"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/recon"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/treas"
	"github.com/ares-storage/ares/internal/types"
)

// dispatch sends one request directly into a host's node, as the transport
// would.
func dispatch(h *Host, service, key, configID, msgType string) transport.Response {
	return h.Node().HandleRequest("test-client", transport.Request{
		Service: service, Key: key, Config: configID, Type: msgType,
	})
}

func TestInstallConfigurationServices(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	h := NewHost(node.New("s1"), net.Client("s1"))

	c := treasConfig("c9", "hx", 3, 2, 1)
	c.Servers[0] = "s1" // make this host a member
	before := h.ServiceInstances()
	if err := h.InstallConfiguration(c); err != nil {
		t.Fatal(err)
	}
	// Installation registers the configuration but instantiates nothing: the
	// service footprint is fixed at host creation.
	if got := h.ServiceInstances(); got != before {
		t.Fatalf("ServiceInstances = %d after install, want %d (unchanged)", got, before)
	}
	// Messages for the installed configuration now materialize state.
	for _, svc := range []string{treas.ServiceName, recon.ServiceName, consensus.ServiceName} {
		msg := map[string]string{treas.ServiceName: "query-tag", recon.ServiceName: "read-config", consensus.ServiceName: "learn"}[svc]
		if resp := dispatch(h, svc, "", string(c.ID), msg); !resp.OK {
			t.Errorf("service %s rejected installed configuration: %s", svc, resp.Err)
		}
	}
}

func TestInstallSkipsNonMembers(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	h := NewHost(node.New("outsider"), net.Client("outsider"))
	c := abdConfig("c1", "nm", 3)
	if err := h.InstallConfiguration(c); err != nil {
		t.Fatal(err)
	}
	// A non-member rejects the configuration's messages and materializes no
	// state for it.
	if resp := dispatch(h, abd.ServiceName, "", string(c.ID), "query-tag"); resp.OK {
		t.Fatal("non-member served a store request")
	}
}

func TestInstallLDRDirectoryOnlyMember(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	h := NewHost(node.New("dir-1"), net.Client("dir-1"))
	c := cfg.Configuration{
		ID:          "cl",
		Algorithm:   cfg.LDR,
		Servers:     []types.ProcessID{"rep-1", "rep-2", "rep-3"},
		Directories: []types.ProcessID{"dir-1", "dir-2", "dir-3"},
		FReplicas:   1,
	}
	if err := h.InstallConfiguration(c); err != nil {
		t.Fatal(err)
	}
	if resp := dispatch(h, ldr.DirectoryServiceName, "", string(c.ID), "query-tag-location"); !resp.OK {
		t.Fatalf("directory member rejected directory request: %s", resp.Err)
	}
	if resp := dispatch(h, ldr.ReplicaServiceName, "", string(c.ID), "put-data"); resp.OK {
		t.Fatal("directory-only member served a replica request")
	}
}

func TestInstallRejectsInvalidConfiguration(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	h := NewHost(node.New("s1"), net.Client("s1"))
	bad := cfg.Configuration{ID: "bad", Algorithm: "nope", Servers: []types.ProcessID{"s1"}}
	if err := h.InstallConfiguration(bad); err == nil {
		t.Fatal("invalid configuration installed")
	}
}

func TestCtlServiceInstallOverWire(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	h := NewHost(node.New("s1"), net.Client("s1"))
	net.Register("s1", h.Node())

	c := abdConfig("cw", "wire", 3)
	c.Servers[0] = "s1"
	installer := RemoteInstaller(net.Client("g1"))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Two of the three members do not exist on the network; the installer
	// needs a quorum (2) and can only get 1, so it must fail.
	if err := installer(ctx, c); err == nil {
		t.Fatal("install with only 1/3 members reachable succeeded")
	}

	// Add a second member: quorum reachable, install succeeds.
	h2 := NewHost(node.New(c.Servers[1]), net.Client(c.Servers[1]))
	net.Register(c.Servers[1], h2.Node())
	h3 := NewHost(node.New(c.Servers[2]), net.Client(c.Servers[2]))
	net.Register(c.Servers[2], h3.Node())
	if err := installer(ctx, c); err != nil {
		t.Fatal(err)
	}
	if resp := dispatch(h, abd.ServiceName, "", string(c.ID), "query-tag"); !resp.OK {
		t.Fatalf("store request rejected after remote install: %s", resp.Err)
	}
}

func TestCtlRejectsUnknownMessage(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	h := NewHost(node.New("s1"), net.Client("s1"))
	resp := h.Node().HandleRequest("x", transport.Request{
		Service: CtlServiceName, Config: CtlConfigKey, Type: "bogus",
	})
	if resp.OK || !strings.Contains(resp.Err, "unknown message") {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestHostStorageBytesAggregates(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	c0 := abdConfig("c0", "st", 3)
	cluster, err := NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(context.Background(), make(types.Value, 2048)); err != nil {
		t.Fatal(err)
	}
	net.Quiesce()
	h, _ := cluster.Host(c0.Servers[0])
	if got := h.StorageBytes(); got != 2048 {
		t.Fatalf("StorageBytes = %d, want 2048", got)
	}
}

func TestDirectTransferFallsBackForABDTarget(t *testing.T) {
	t.Parallel()
	// DirectTransfer requested but the target is ABD: recon must fall back
	// to the Alg. 5 value transfer and still move the state.
	c0 := treasConfig("c0", "fb0", 5, 3, 2)
	c1 := abdConfig("c1", "fb1", 3)
	net := transport.NewSimnet()
	cluster, err := NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	addHosts(cluster, c1)
	ctx := context.Background()
	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(ctx, types.Value("fallback")); err != nil {
		t.Fatal(err)
	}
	g, err := cluster.NewReconfigurer("g1", recon.Options{DirectTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Reconfig(ctx, c1); err != nil {
		t.Fatal(err)
	}
	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}
	pair, err := r.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(pair.Value) != "fallback" {
		t.Fatalf("read %q", pair.Value)
	}
}

func TestDirectTransferFromABDSourceFallsBack(t *testing.T) {
	t.Parallel()
	// Source holding the freshest tag is ABD, target TREAS: direct transfer
	// cannot forward replicated state as coded elements — fallback applies.
	c0 := abdConfig("c0", "fs0", 3)
	c1 := treasConfig("c1", "fs1", 5, 3, 2)
	net := transport.NewSimnet()
	cluster, err := NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	addHosts(cluster, c1)
	ctx := context.Background()
	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(ctx, types.Value("from-abd")); err != nil {
		t.Fatal(err)
	}
	g, err := cluster.NewReconfigurer("g1", recon.Options{DirectTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Reconfig(ctx, c1); err != nil {
		t.Fatal(err)
	}
	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}
	pair, err := r.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(pair.Value) != "from-abd" {
		t.Fatalf("read %q", pair.Value)
	}
}
