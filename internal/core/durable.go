package core

// Host durability: EnableDurability opens the keystate durability layer for
// this host, registers every keyed service with it, recovers snapshot + log
// tail BEFORE the host serves traffic, and wires the configuration
// lifecycle (installs, retirements) into the meta log. The resolver is the
// host's meta state: its configurations, templates, tombstones, and
// successor records snapshot and restore as one blob.

import (
	"errors"
	"fmt"
	"path/filepath"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/keystate"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// hostMeta adapts the host's resolver (and retire bookkeeping) to
// keystate.DurableMeta.
type hostMeta struct {
	h *Host
}

var _ keystate.DurableMeta = (*hostMeta)(nil)

// ReplayInstall re-registers one journaled configuration; first-wins, so
// replaying over a snapshot-restored resolver is idempotent.
func (m *hostMeta) ReplayInstall(payload []byte) error {
	var c cfg.Configuration
	if err := transport.Unmarshal(payload, &c); err != nil {
		return err
	}
	m.h.cfgs.Add(c)
	return nil
}

// ReplayRetire re-applies one journaled retirement: re-register the
// finalized successor when this server never had it installed (the archive
// needs it to redirect lagging clients), then tombstone the pair. No service
// fan-out runs — meta replay precedes state restore, so the tombstone simply
// keeps the retired pair's state from ever rematerializing.
func (m *hostMeta) ReplayRetire(key, configID string, payload []byte) error {
	var next cfg.Entry
	if err := transport.Unmarshal(payload, &next); err != nil {
		return err
	}
	if _, ok := m.h.cfgs.ResolveConfig(key, next.Cfg.ID); !ok {
		m.h.cfgs.Add(next.Cfg)
	}
	m.h.cfgs.Retire(key, cfg.ID(configID), next.Cfg.ID)
	return nil
}

// SnapshotMeta implements keystate.DurableMeta.
func (m *hostMeta) SnapshotMeta() ([]byte, error) {
	return transport.Marshal(m.h.cfgs.Export())
}

// RestoreMeta implements keystate.DurableMeta.
func (m *hostMeta) RestoreMeta(blob []byte) error {
	var s cfg.ResolverState
	if err := transport.Unmarshal(blob, &s); err != nil {
		return err
	}
	m.h.cfgs.Import(s)
	return nil
}

// EnableDurability attaches a durability layer rooted at dir to this host:
// every keyed service journals its mutations there, configuration installs
// and retirements go to the meta log, and state recovered from a previous
// run is replayed before this call returns. Call before the host's transport
// starts answering envelopes. The returned stats describe the recovery pass.
func (h *Host) EnableDurability(dir string, opts ...keystate.DurOption) (keystate.RecoveryStats, error) {
	if h.dur != nil {
		return keystate.RecoveryStats{}, errors.New("core: durability already enabled")
	}
	d, err := keystate.OpenDurability(dir, opts...)
	if err != nil {
		return keystate.RecoveryStats{}, err
	}
	for _, svc := range h.durables {
		d.Register(svc)
	}
	d.SetMeta(&hostMeta{h: h})
	stats, err := d.Recover()
	if err != nil {
		d.Close()
		return stats, fmt.Errorf("core: recovering %s from %s: %w", h.ID(), dir, err)
	}
	h.dur = d
	// Retirements journal before they mutate memory; the record carries the
	// full successor entry so a restart can re-register it.
	h.recon.SetPreRetire(func(key, configID string, next cfg.Entry) error {
		blob, err := transport.Marshal(next)
		if err != nil {
			return err
		}
		return d.AppendRetire(key, configID, blob)
	})
	// Heal the crash window between a finalized write-config landing in a
	// stripe log and its retire record landing in the meta log, then let the
	// background snapshot scheduler run.
	h.recon.CompleteRetirements()
	d.Start()
	return stats, nil
}

// Durability returns the host's durability layer, nil when not enabled.
func (h *Host) Durability() *keystate.Durability { return h.dur }

// Close releases the host's durability layer (flushing queued appends); a
// host without durability closes trivially.
func (h *Host) Close() error {
	if h.dur == nil {
		return nil
	}
	return h.dur.Close()
}

// EnableDurability turns the cluster durable: every current host (and every
// host added later) journals under dir/<id> and recovers from it on restart.
// The bootstrap configuration is re-installed through the now-journaling
// path so it resolves after a restart even though NewCluster installed it
// before durability existed. Call right after NewCluster, before traffic.
func (c *Cluster) EnableDurability(dir string, opts ...keystate.DurOption) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.durable = true
	c.durDir = dir
	c.durOpts = opts
	for id, h := range c.hosts {
		if h.Durability() != nil {
			continue
		}
		if _, err := h.EnableDurability(filepath.Join(dir, string(id)), opts...); err != nil {
			return err
		}
		if err := h.InstallConfiguration(c.initial); err != nil {
			return err
		}
	}
	return nil
}

// RestartHost simulates a real process crash-restart of one server: the old
// host object (and ALL its volatile keyed state) is discarded, a fresh host
// recovers from its durability directory — or starts amnesiac when the
// cluster is not durable — re-installs the bootstrap configuration, and
// replaces the old handler on the network. This is what the chaos EvRestart
// drives; contrast Simnet.Restart alone, which merely clears the crash flag
// and would hand the dead process its memory back.
func (c *Cluster) RestartHost(id types.ProcessID) (*Host, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old, ok := c.hosts[id]
	if !ok {
		return nil, fmt.Errorf("core: restarting unknown host %s", id)
	}
	// Release the old host's log files before the successor opens them. A
	// kill -9 has no such flush, but the WAL's append path already made every
	// acknowledged record durable (that is the test in the torn-tail suite);
	// Close here is about file handles, not correctness.
	if err := old.Close(); err != nil {
		return nil, fmt.Errorf("core: closing crashed host %s: %w", id, err)
	}
	h := NewHost(node.New(id), c.network.Client(id))
	if c.durable {
		if _, err := h.EnableDurability(filepath.Join(c.durDir, string(id)), c.durOpts...); err != nil {
			return nil, fmt.Errorf("core: recovering host %s: %w", id, err)
		}
	}
	if err := h.InstallConfiguration(c.initial); err != nil {
		return nil, err
	}
	c.network.Register(id, h.Node())
	c.hosts[id] = h
	return h, nil
}
