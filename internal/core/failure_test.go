package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/recon"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

func ldrConfig(id cfg.ID, prefix string, nReplicas, nDirs, f int) cfg.Configuration {
	c := cfg.Configuration{ID: id, Algorithm: cfg.LDR, FReplicas: f}
	for i := 1; i <= nReplicas; i++ {
		c.Servers = append(c.Servers, types.ProcessID(fmt.Sprintf("%s-r%d", prefix, i)))
	}
	for i := 1; i <= nDirs; i++ {
		c.Directories = append(c.Directories, types.ProcessID(fmt.Sprintf("%s-d%d", prefix, i)))
	}
	return c
}

func TestLDRConfigurationInARES(t *testing.T) {
	t.Parallel()
	// Remark 22 in full generality: an ARES chain mixing all three DAP
	// implementations, including LDR with its separate directory servers.
	c0 := abdConfig("c0", "mix0", 3)
	c1 := ldrConfig("c1", "mix1", 3, 3, 1)
	c2 := treasConfig("c2", "mix2", 5, 3, 2)
	cluster, err := NewCluster(c0, transport.NewSimnet())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	addHosts(cluster, c1)
	addHosts(cluster, c2)
	ctx := context.Background()

	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}
	g, err := cluster.NewReconfigurer("g1", recon.Options{})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := w.Write(ctx, types.Value("born-in-abd")); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Reconfig(ctx, c1); err != nil {
		t.Fatalf("reconfig to LDR: %v", err)
	}
	pair, err := r.Read(ctx)
	if err != nil {
		t.Fatalf("read from LDR configuration: %v", err)
	}
	if string(pair.Value) != "born-in-abd" {
		t.Fatalf("read %q", pair.Value)
	}
	if _, err := w.Write(ctx, types.Value("updated-in-ldr")); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Reconfig(ctx, c2); err != nil {
		t.Fatalf("reconfig LDR → TREAS: %v", err)
	}
	pair, err = r.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(pair.Value) != "updated-in-ldr" {
		t.Fatalf("value lost across LDR → TREAS migration: %q", pair.Value)
	}
}

func TestOperationsBlockDuringPartitionAndResume(t *testing.T) {
	t.Parallel()
	c0 := treasConfig("c0", "part", 5, 3, 2)
	net := transport.NewSimnet()
	cluster, err := NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := w.Write(ctx, types.Value("before")); err != nil {
		t.Fatal(err)
	}

	// Partition the writer away from 2 servers: quorum ⌈(5+3)/2⌉ = 4 of 5
	// becomes unreachable (only 3 remain) and the write must block.
	for _, s := range c0.Servers[:2] {
		net.BlockLink("w1", s)
	}
	blockedCtx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	if _, err := w.Write(blockedCtx, types.Value("during")); err == nil {
		cancel()
		t.Fatal("write succeeded without a reachable quorum")
	}
	cancel()

	// Heal the partition: operations resume and the register is consistent.
	for _, s := range c0.Servers[:2] {
		net.UnblockLink("w1", s)
	}
	if _, err := w.Write(ctx, types.Value("after")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}
	pair, err := r.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(pair.Value) != "after" {
		t.Fatalf("read %q after heal", pair.Value)
	}
}

func TestReaderIsolatedFromOldConfigurationAfterRecon(t *testing.T) {
	t.Parallel()
	// After a finalized reconfiguration, a client partitioned from every OLD
	// server can still operate: read-config starts from its last finalized
	// configuration... which for a fresh client is c0. A client that already
	// observed c1 keeps working with c0 completely unreachable.
	c0 := abdConfig("c0", "iso0", 3)
	c1 := abdConfig("c1", "iso1", 3)
	net := transport.NewSimnet()
	cluster, err := NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	addHosts(cluster, c1)
	ctx := context.Background()

	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(ctx, types.Value("v1")); err != nil {
		t.Fatal(err)
	}
	g, err := cluster.NewReconfigurer("g1", recon.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Reconfig(ctx, c1); err != nil {
		t.Fatal(err)
	}
	// Writer observes c1 by completing one operation.
	if _, err := w.Write(ctx, types.Value("v2")); err != nil {
		t.Fatal(err)
	}
	if w.Sequence().Mu() < 1 {
		t.Fatalf("writer has not finalized c1: %v", w.Sequence())
	}

	// Now the entire old configuration crashes. The writer, whose last
	// finalized configuration is c1, keeps operating.
	for _, s := range c0.Servers {
		net.Crash(s)
	}
	opCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if _, err := w.Write(opCtx, types.Value("v3")); err != nil {
		t.Fatalf("write with old configuration dead: %v", err)
	}
}

func TestCrashWithinBoundDuringReconfig(t *testing.T) {
	t.Parallel()
	// A server crash inside the old configuration's fault bound must not
	// prevent the reconfiguration (its quorums remain available).
	c0 := treasConfig("c0", "cr0", 5, 3, 2)
	c1 := treasConfig("c1", "cr1", 5, 3, 2)
	net := transport.NewSimnet()
	cluster, err := NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	addHosts(cluster, c1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(ctx, types.Value("precious")); err != nil {
		t.Fatal(err)
	}
	net.Crash(c0.Servers[4]) // f = 1 for [5,3]

	g, err := cluster.NewReconfigurer("g1", recon.Options{DirectTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Reconfig(ctx, c1); err != nil {
		t.Fatalf("reconfig with crashed old server: %v", err)
	}
	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}
	pair, err := r.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(pair.Value) != "precious" {
		t.Fatalf("value lost: %q", pair.Value)
	}
}

func TestRemoteInstallerToleratesCrashedNewServer(t *testing.T) {
	t.Parallel()
	// One server of the NEW configuration is down. The installer settles
	// for a quorum and the reconfiguration still completes — the new
	// configuration starts life already running with f=1 consumed.
	c0 := treasConfig("c0", "ni0", 5, 3, 2)
	c1 := treasConfig("c1", "ni1", 5, 3, 2)
	net := transport.NewSimnet()
	cluster, err := NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	addHosts(cluster, c1)
	net.Crash(c1.Servers[4])

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	g, err := cluster.NewReconfigurer("g1", recon.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Reconfig(ctx, c1); err != nil {
		t.Fatalf("reconfig with one crashed new server: %v", err)
	}
	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(ctx); err != nil {
		t.Fatalf("read in degraded new configuration: %v", err)
	}
}
