package core

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/recon"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// Configuration-lifecycle GC tests: finalization-driven retirement must keep
// per-server (key, config) state O(live configs) under reconfiguration
// churn, redirect lagging clients instead of serving rematerialized v₀
// state, and the whole thing must hold while operations continue.

// churnWalk drives key's register through n alternating TREAS/ABD
// reconfigurations on the same server set.
func churnWalk(t *testing.T, cluster *Cluster, g *recon.Client, key string, servers []types.ProcessID, n int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 1; i <= n; i++ {
		next := cfg.Configuration{
			ID:      cfg.ID(fmt.Sprintf("gc/%s/c%d", key, i)),
			Key:     key,
			Servers: servers,
		}
		if i%2 == 0 {
			next.Algorithm = cfg.ABD
		} else {
			next.Algorithm = cfg.TREAS
			next.K = 3
			next.Delta = 4
		}
		if _, err := g.Reconfig(ctx, next); err != nil {
			t.Fatalf("walk %d of %s: %v", i, key, err)
		}
	}
}

// settleStates polls until the cluster's retained state count drops to at
// most want (finalization gossip is asynchronous) or the deadline passes,
// returning the final count.
func settleStates(cluster *Cluster, want int, deadline time.Duration) int {
	states := cluster.MaterializedStates()
	until := time.Now().Add(deadline)
	for states > want && time.Now().Before(until) {
		time.Sleep(10 * time.Millisecond)
		states = cluster.MaterializedStates()
	}
	return states
}

// TestChurnKeepsStateFlat pins the tentpole invariant: N reconfiguration
// walks across several keys leave the per-server state census (the sum of
// every keyed service's keystate.Map.Len) at O(live configs), not O(walks),
// while retired_states records the reclamation.
func TestChurnKeepsStateFlat(t *testing.T) {
	t.Parallel()
	const keys, walks = 4, 8
	c0 := treasConfig("gc/seed/c0", "gcf", 5, 3, 4)
	net := transport.NewSimnet()
	cluster, err := NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k%d", k)
		root := c0
		root.ID = cfg.ID("gc/" + key + "/c0")
		root.Key = key
		if err := cluster.InstallConfiguration(root); err != nil {
			t.Fatal(err)
		}
		w, err := cluster.NewClientFor(types.ProcessID("w-"+key), root)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(ctx, []byte("payload-"+key)); err != nil {
			t.Fatal(err)
		}
		g, err := cluster.NewReconfigurerFor(types.ProcessID("g-"+key), root, recon.Options{})
		if err != nil {
			t.Fatal(err)
		}
		churnWalk(t, cluster, g, key, c0.Servers, walks)
	}

	// Live window at rest: tail DAP state + tail pointer per (key, server),
	// plus transient stragglers the settle window lets gossip clear.
	bound := keys * len(c0.Servers) * 3
	states := settleStates(cluster, bound, 5*time.Second)
	if states > bound {
		t.Fatalf("after %d walks × %d keys: %d retained states, want ≤ %d (O(live), not O(walks))",
			walks, keys, states, bound)
	}
	retired := cluster.RetiredStates()
	if retired == 0 {
		t.Fatal("walks completed but no state was retired — lifecycle GC never fired")
	}
	// The floor: at least the walked-past configurations' DAP states on a
	// quorum of servers each.
	if minRetired := int64(keys * walks); retired < minRetired {
		t.Fatalf("retired %d states, want ≥ %d", retired, minRetired)
	}
	t.Logf("retained %d states (bound %d), retired %d", states, bound, retired)
}

// TestLaggingClientRedirectedNotServedV0 pins the tombstone semantics: after
// a key's chain advances and old state is retired, (a) a raw DAP call on the
// retired configuration fails with the explicit cfg.ErrRetired redirect, and
// (b) a fresh client rooted at the retired initial configuration — the shape
// of a lagging or evicted-and-rebuilt client — completes its read against
// the live window and observes the latest value, never a rematerialized v₀.
func TestLaggingClientRedirectedNotServedV0(t *testing.T) {
	t.Parallel()
	c0 := treasConfig("gc/lag/c0", "gcl", 5, 3, 4)
	c0.Key = "lag"
	net := transport.NewSimnet()
	cluster, err := NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	w, err := cluster.NewClientFor("w1", c0)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("the latest value")
	if _, err := w.Write(ctx, want); err != nil {
		t.Fatal(err)
	}
	g, err := cluster.NewReconfigurerFor("g1", c0, recon.Options{})
	if err != nil {
		t.Fatal(err)
	}
	churnWalk(t, cluster, g, "lag", c0.Servers, 4)
	if settleStates(cluster, 2*len(c0.Servers), 5*time.Second) > 3*len(c0.Servers) {
		t.Fatal("state did not settle after churn")
	}

	// (a) Raw DAP call on the retired root: explicit retryable redirect.
	raw, err := cluster.Registry().New(c0, net.Client("lagger"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.GetData(ctx); !cfg.IsRetired(err) {
		t.Fatalf("get-data on retired %s: err = %v, want cfg.ErrRetired redirect", c0.ID, err)
	}

	// (b) A fresh ARES client rooted at the retired configuration recovers
	// through read-config and sees the latest value.
	late, err := cluster.NewClientFor("late-reader", c0)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := late.Read(ctx)
	if err != nil {
		t.Fatalf("late read: %v", err)
	}
	if string(pair.Value) != string(want) {
		t.Fatalf("late read observed %q, want %q (stale/v0 data served from a retired configuration)", pair.Value, want)
	}
	// And its writes land in the live window too.
	if _, err := late.Write(ctx, []byte("still writable")); err != nil {
		t.Fatalf("late write: %v", err)
	}
}

// TestChurnUnderConcurrentReads runs the walks while readers hammer the key,
// pinning that retirement mid-operation surfaces as internal redirect
// retries, not client-visible failures or stale reads.
func TestChurnUnderConcurrentReads(t *testing.T) {
	t.Parallel()
	c0 := treasConfig("gc/conc/c0", "gcc", 5, 3, 4)
	c0.Key = "conc"
	net := transport.NewSimnet()
	cluster, err := NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	w, err := cluster.NewClientFor("w1", c0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(ctx, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	r, err := cluster.NewClientFor("r1", c0)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	readErr := make(chan error, 1)
	go func() {
		defer close(readErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			pair, err := r.Read(ctx)
			if err != nil {
				readErr <- fmt.Errorf("concurrent read: %w", err)
				return
			}
			if len(pair.Value) == 0 {
				readErr <- fmt.Errorf("concurrent read observed empty value after first write")
				return
			}
		}
	}()

	g, err := cluster.NewReconfigurerFor("g1", c0, recon.Options{})
	if err != nil {
		t.Fatal(err)
	}
	churnWalk(t, cluster, g, "conc", c0.Servers, 6)
	close(stop)
	if err := <-readErr; err != nil {
		t.Fatal(err)
	}
}

// TestClusterCloseReleasesPumpGoroutine is the goroutine-leak regression
// test: building clusters whose networks engage the delay pump and closing
// them must not strand pump goroutines (core.Cluster previously never called
// Simnet.Close, leaking one parked goroutine per cluster).
func TestClusterCloseReleasesPumpGoroutine(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	runtime.GC()
	before := runtime.NumGoroutine()
	const clusters = 8
	for i := 0; i < clusters; i++ {
		c0 := abdConfig(cfg.ID(fmt.Sprintf("pump/c%d", i)), fmt.Sprintf("pump%d", i), 3)
		net := transport.NewSimnet(transport.WithDelayRange(time.Microsecond, 20*time.Microsecond))
		cluster, err := NewCluster(c0, net)
		if err != nil {
			t.Fatal(err)
		}
		w, err := cluster.NewClient("w1")
		if err != nil {
			t.Fatal(err)
		}
		// A delayed write engages the pump (it only starts on the first
		// delay sleep).
		if _, err := w.Write(ctx, []byte("x")); err != nil {
			t.Fatal(err)
		}
		cluster.Close()
	}
	// Pump goroutines exit asynchronously after Close; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after %d closed clusters — pump goroutines leaked",
		before, runtime.NumGoroutine(), clusters)
}
