package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/dap"
	"github.com/ares-storage/ares/internal/recon"
	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/treas"
	"github.com/ares-storage/ares/internal/types"
)

// RetryPolicy paces the get-data retries a read performs while a TREAS tag
// is transiently undecodable (concurrent writes beyond the δ bound). Delays
// grow geometrically from Base toward Cap, with a random fraction (Jitter)
// subtracted so competing readers desynchronize instead of re-hitting the
// quorum in lockstep under write contention.
type RetryPolicy struct {
	// Base is the delay before the first retry. Zero or negative values
	// fall back to DefaultRetryPolicy.Base — a retry loop with no pacing
	// at all would hammer the quorum, the exact failure mode this policy
	// exists to prevent.
	Base time.Duration
	// Cap bounds the grown delay.
	Cap time.Duration
	// Multiplier scales the delay each further attempt; values below 1 are
	// treated as 1 (constant pacing).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized away, in
	// [0, 1]: the sleep is drawn uniformly from [d·(1−Jitter), d].
	Jitter float64
	// Seed, when non-zero, seeds the client's private jitter source so a
	// replay reproduces the exact retry pacing. Zero derives a stable
	// per-client seed from the process ID. Each client owns its source:
	// thousands of concurrent per-key clients never contend on the global
	// locked math/rand state.
	Seed int64
}

// DefaultRetryPolicy is the pacing used by NewClient: 1 ms doubling to a
// 32 ms cap with half the delay jittered.
var DefaultRetryPolicy = RetryPolicy{
	Base:       time.Millisecond,
	Cap:        32 * time.Millisecond,
	Multiplier: 2,
	Jitter:     0.5,
}

// delayAt computes the pause before retry number attempt (0-based) with the
// jitter draw supplied — the deterministic core; the client draws frac from
// its own seeded source.
func (p RetryPolicy) delayAt(attempt int, frac float64) time.Duration {
	base := p.Base
	if base <= 0 {
		base = DefaultRetryPolicy.Base
	}
	d := float64(base)
	m := p.Multiplier
	if m < 1 {
		m = 1
	}
	for i := 0; i < attempt; i++ {
		d *= m
		if p.Cap > 0 && d >= float64(p.Cap) {
			break
		}
	}
	if limit := float64(p.Cap); p.Cap > 0 && d > limit {
		d = limit
	}
	j := p.Jitter
	if j < 0 {
		j = 0
	} else if j > 1 {
		j = 1
	}
	d -= d * j * frac
	return time.Duration(d)
}

// OpStats is the per-operation telemetry a client reports through its sink:
// how many data rounds the operation spent, whether a read took the one-round
// fast path, and how many transient retries it burned. The process-wide
// transport.CodecStats counters record the same signals without attribution;
// the sink is what lets an ObjectStore (or the adaptive controller behind it)
// pin them to a key.
type OpStats struct {
	// Read distinguishes reads from writes.
	Read bool
	// Rounds counts quorum data rounds (get-tag/get-data + put-data).
	Rounds int
	// FastPath reports a read that skipped the put-data write-back.
	FastPath bool
	// Retries counts transient in-operation retries (TREAS
	// not-yet-decodable get-data rounds).
	Retries int
}

// Client is an ARES reader/writer process (Alg. 7). A client discovers the
// current configuration sequence through the reconfiguration service's
// read-config action, queries every configuration from the last finalized
// one onward, and propagates the freshest pair into the newest configuration
// until no further configuration appears.
type Client struct {
	self types.ProcessID
	rpc  transport.Client
	daps *dap.Cache
	rec  *recon.Client

	mu   sync.Mutex
	cseq cfg.Sequence

	// wmu serializes Write invocations issued through this client. Tags are
	// (z, writer) pairs and the writer component is this client's process
	// ID, so two in-flight writes from the same client could both observe
	// the same maximum z and mint identical tags — violating write-tag
	// uniqueness (A2). Serializing them restores uniqueness: DAP
	// consistency (C1) guarantees the second write's get-tag observes the
	// first write's completed put-data, hence a strictly larger tag.
	// Clients shared by many goroutines (e.g. the per-key clients an
	// ObjectStore pools) rely on this; reads need no such ordering.
	wmu sync.Mutex

	// retry paces get-data retries while a TREAS tag is transiently
	// undecodable (Theorem 9 guarantees progress within the δ bound).
	// jrng is the client's private jitter source (see RetryPolicy.Seed).
	retry RetryPolicy
	jmu   sync.Mutex
	jrng  *rand.Rand

	// sink, when set, receives one OpStats per completed operation attempt.
	// Like SetRetryPolicy, it must be installed before the client is shared.
	sink func(OpStats)
}

// retrySeed derives the default jitter seed for a client: a stable hash of
// its process ID, so replays of the same deployment reproduce the same
// pacing without any configuration.
func retrySeed(self types.ProcessID) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(self))
	return int64(h.Sum64())
}

// NewClient constructs a reader/writer booted from configuration c0. The
// client and its embedded reconfiguration client share one DAP client cache,
// so each configuration's protocol client (and erasure codec) is built once
// between them.
func NewClient(self types.ProcessID, c0 cfg.Configuration, rpc transport.Client, registry *dap.Registry) (*Client, error) {
	cache := registry.NewCache(rpc)
	rec, err := recon.NewClientWithCache(self, c0, rpc, cache, nil, recon.Options{})
	if err != nil {
		return nil, err
	}
	return &Client{
		self:  self,
		rpc:   rpc,
		daps:  cache,
		rec:   rec,
		cseq:  cfg.NewSequence(c0),
		retry: DefaultRetryPolicy,
		jrng:  rand.New(rand.NewSource(retrySeed(self))),
	}, nil
}

// SetRetryPolicy replaces the pacing of not-yet-decodable read retries.
// Call before sharing the client across goroutines.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.retry = p
	seed := p.Seed
	if seed == 0 {
		seed = retrySeed(c.self)
	}
	c.jrng = rand.New(rand.NewSource(seed))
}

// SetOpSink installs the per-operation telemetry sink. Call before sharing
// the client across goroutines; a nil fn disables reporting.
func (c *Client) SetOpSink(fn func(OpStats)) {
	c.sink = fn
}

// report delivers st to the sink, if any, and mirrors it into the
// process-wide registry (reads are attributed by RecordReadRounds at the
// call sites, so only the write path and retries are counted here).
func (c *Client) report(st OpStats) {
	if !st.Read {
		clientWrites.Inc()
		clientWriteRounds.Add(int64(st.Rounds))
	}
	if st.Retries > 0 {
		clientRetries.Add(int64(st.Retries))
	}
	if c.sink != nil {
		c.sink(st)
	}
}

// retryDelay draws the next paced delay from the client's own jitter source.
func (c *Client) retryDelay(attempt int) time.Duration {
	c.jmu.Lock()
	frac := c.jrng.Float64()
	c.jmu.Unlock()
	return c.retry.delayAt(attempt, frac)
}

// Sequence returns a copy of the client's local configuration sequence.
func (c *Client) Sequence() cfg.Sequence {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cseq.Clone()
}

func (c *Client) localSeq() cfg.Sequence {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cseq.Clone()
}

func (c *Client) storeSeq(seq cfg.Sequence) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	merged, err := c.cseq.Merge(seq)
	if err != nil {
		return err
	}
	c.cseq = merged
	// Configurations behind the merged sequence's µ can never be addressed
	// by a future operation of this client; drop their cached DAP clients.
	c.daps.Retain(merged.LiveIDs())
	return nil
}

// Write performs the ARES write operation (Alg. 7 lines 7–23): discover the
// sequence, collect the maximum tag over configurations µ..ν, increment it,
// and repeatedly put-data into the last configuration until the sequence
// stops growing. It returns the tag assigned to the written value.
func (c *Client) Write(ctx context.Context, value types.Value) (tag.Tag, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var t tag.Tag
	// A configuration a phase addresses may be garbage-collected
	// mid-operation; cfg.RetryRetired re-runs the whole operation, whose
	// read-config then discovers the live window.
	err := cfg.RetryRetired(ctx, func() (opErr error) {
		t, opErr = c.writeOnce(ctx, value)
		return opErr
	})
	return t, err
}

func (c *Client) writeOnce(ctx context.Context, value types.Value) (tag.Tag, error) {
	seq, err := c.rec.ReadConfig(ctx, c.localSeq())
	if err != nil {
		return tag.Tag{}, fmt.Errorf("core: write read-config: %w", err)
	}
	maxTag := tag.Zero
	rounds := 0
	for i := seq.Mu(); i <= seq.Nu(); i++ {
		client, err := c.daps.Get(seq[i].Cfg)
		if err != nil {
			return tag.Tag{}, err
		}
		rounds++
		t, err := client.GetTag(ctx)
		if err != nil {
			return tag.Tag{}, fmt.Errorf("core: write get-tag on %s: %w", seq[i].Cfg.ID, err)
		}
		maxTag = tag.Max(maxTag, t)
	}
	newTag := maxTag.Next(c.self)
	seq, put, err := c.propagate(ctx, seq, tag.Pair{Tag: newTag, Value: value})
	rounds += put
	if err != nil {
		return tag.Tag{}, err
	}
	if err := c.storeSeq(seq); err != nil {
		return tag.Tag{}, err
	}
	c.report(OpStats{Rounds: rounds})
	return newTag, nil
}

// Read performs the ARES read operation (Alg. 7 lines 24–45): discover the
// sequence, collect the maximum tag-value pair over configurations µ..ν,
// and repeatedly put-data that pair into the last configuration until the
// sequence stops growing.
func (c *Client) Read(ctx context.Context) (tag.Pair, error) {
	var p tag.Pair
	err := cfg.RetryRetired(ctx, func() (opErr error) {
		p, opErr = c.readOnce(ctx)
		return opErr
	})
	return p, err
}

func (c *Client) readOnce(ctx context.Context) (tag.Pair, error) {
	seq, err := c.rec.ReadConfig(ctx, c.localSeq())
	if err != nil {
		return tag.Pair{}, fmt.Errorf("core: read read-config: %w", err)
	}
	best := tag.Pair{}
	rounds := 0  // data rounds: get-data + put-data phases (read-config is metadata)
	retries := 0 // transient not-yet-decodable re-rounds within those
	confirmed := false
	for i := seq.Mu(); i <= seq.Nu(); i++ {
		pair, conf, n, err := c.getDataRetry(ctx, seq[i].Cfg)
		rounds += n
		retries += n - 1
		if err != nil {
			return tag.Pair{}, fmt.Errorf("core: read get-data on %s: %w", seq[i].Cfg.ID, err)
		}
		if i == seq.Nu() {
			// The propagation proof only helps when ν's own pair is the
			// overall maximum: a larger tag surfaced by an older
			// configuration still needs the write-back to reach ν.
			confirmed = conf && !pair.Tag.Less(best.Tag)
		}
		best = tag.MaxPair(best, pair)
	}
	if confirmed {
		// One-round fast path: the get-data quorum of ν proved best's tag is
		// already propagated to a quorum, so the put-data write-back is
		// redundant — if the sequence hasn't grown. Re-read it: if ν is still
		// last, any configuration appended later starts its state transfer
		// after this check, i.e. after the confirmation, so its get-data
		// quorum intersects the confirming quorum and carries a tag ≥ best
		// forward. If a new configuration did appear, fall back to the full
		// write-back loop, which chases the sequence to its end.
		next, err := c.rec.ReadConfig(ctx, seq)
		if err != nil {
			return tag.Pair{}, fmt.Errorf("core: read read-config: %w", err)
		}
		if next.Nu() == seq.Nu() {
			if err := c.storeSeq(next); err != nil {
				return tag.Pair{}, err
			}
			transport.RecordReadRounds(rounds, true)
			c.report(OpStats{Read: true, Rounds: rounds, FastPath: true, Retries: retries})
			return best, nil
		}
		seq = next
	}
	seq, wb, err := c.propagate(ctx, seq, best)
	rounds += wb
	if err != nil {
		return tag.Pair{}, err
	}
	if err := c.storeSeq(seq); err != nil {
		return tag.Pair{}, err
	}
	transport.RecordReadRounds(rounds, false)
	c.report(OpStats{Read: true, Rounds: rounds, Retries: retries})
	return best, nil
}

// WriteValue is Write discarding the assigned tag — the surface workload
// drivers and simple applications want.
func (c *Client) WriteValue(ctx context.Context, value types.Value) error {
	_, err := c.Write(ctx, value)
	return err
}

// ReadValue is Read returning only the value.
func (c *Client) ReadValue(ctx context.Context) (types.Value, error) {
	pair, err := c.Read(ctx)
	if err != nil {
		return nil, err
	}
	return pair.Value, nil
}

// getDataRetry runs get-data, retrying with backoff while a TREAS read is
// transiently undecodable. The paper's read simply does not complete until
// decodable; the context bounds the wait. It reports the pair, whether the
// DAP proved the pair's tag propagated to a quorum (always false for
// implementations without dap.ConfirmedReader, e.g. LDR), and how many
// get-data rounds it spent (retries are real quorum rounds).
func (c *Client) getDataRetry(ctx context.Context, conf cfg.Configuration) (tag.Pair, bool, int, error) {
	client, err := c.daps.Get(conf)
	if err != nil {
		return tag.Pair{}, false, 0, err
	}
	cr, _ := client.(dap.ConfirmedReader)
	rounds := 0
	for attempt := 0; ; attempt++ {
		var (
			pair      tag.Pair
			confirmed bool
			err       error
		)
		rounds++
		if cr != nil {
			pair, confirmed, err = cr.GetDataConfirmed(ctx)
		} else {
			pair, err = client.GetData(ctx)
		}
		if err == nil {
			return pair, confirmed, rounds, nil
		}
		if !errors.Is(err, treas.ErrNotDecodable) {
			return tag.Pair{}, false, rounds, err
		}
		clientBackoffs.Inc()
		select {
		case <-ctx.Done():
			return tag.Pair{}, false, rounds, fmt.Errorf("%w (last: %v)", ctx.Err(), err)
		case <-time.After(c.retryDelay(attempt)):
		}
	}
}

// propagate is the shared tail of read and write (Alg. 7 lines 14–22 /
// 36–44): put-data into the last configuration, re-read the sequence, and
// repeat whenever a new configuration appeared meanwhile. It reports how
// many put-data rounds it performed (the read path adds them to ReadRounds).
func (c *Client) propagate(ctx context.Context, seq cfg.Sequence, p tag.Pair) (cfg.Sequence, int, error) {
	rounds := 0
	for {
		last := seq.Last().Cfg
		client, err := c.daps.Get(last)
		if err != nil {
			return nil, rounds, err
		}
		rounds++
		if err := client.PutData(ctx, p); err != nil {
			return nil, rounds, fmt.Errorf("core: put-data on %s: %w", last.ID, err)
		}
		next, err := c.rec.ReadConfig(ctx, seq)
		if err != nil {
			return nil, rounds, fmt.Errorf("core: propagate read-config: %w", err)
		}
		if next.Nu() == seq.Nu() {
			return next, rounds, nil
		}
		seq = next
	}
}
