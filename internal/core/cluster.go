package core

import (
	"fmt"
	"path/filepath"
	"sync"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/dap"
	"github.com/ares-storage/ares/internal/keystate"
	"github.com/ares-storage/ares/internal/node"
	"github.com/ares-storage/ares/internal/recon"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// Cluster is a single-process ARES deployment over a simulated network:
// hosts for every server, an initial configuration installed, and factories
// for readers, writers, and reconfigurers. Tests, benchmarks, and examples
// build on it; the multi-process path assembles the same pieces over TCP in
// cmd/ares-server.
type Cluster struct {
	network *transport.Simnet
	daps    *dap.Registry
	initial cfg.Configuration

	mu    sync.Mutex
	hosts map[types.ProcessID]*Host

	// Durability (see durable.go): once EnableDurability ran, every current
	// and future host journals under durDir/<id>, and RestartHost recovers
	// from there instead of preserving in-memory state.
	durable bool
	durDir  string
	durOpts []keystate.DurOption
}

// NewCluster deploys the initial configuration c0 on net: it creates a host
// per server (plus any extras), installs c0's services, and returns the
// cluster handle.
func NewCluster(c0 cfg.Configuration, net *transport.Simnet, extraServers ...types.ProcessID) (*Cluster, error) {
	if err := c0.Validate(); err != nil {
		return nil, fmt.Errorf("core: cluster bootstrap: %w", err)
	}
	cl := &Cluster{
		network: net,
		daps:    NewRegistry(),
		initial: c0,
		hosts:   make(map[types.ProcessID]*Host),
	}
	members := append([]types.ProcessID(nil), c0.Servers...)
	members = append(members, c0.Directories...)
	members = append(members, extraServers...)
	for _, id := range members {
		cl.AddHost(id)
	}
	for _, h := range cl.hosts {
		if err := h.InstallConfiguration(c0); err != nil {
			return nil, err
		}
	}
	return cl, nil
}

// AddHost spins up (or returns) the host for a server process, registering
// it on the network. New servers destined for future configurations are
// added this way before a reconfig proposes them.
func (c *Cluster) AddHost(id types.ProcessID) *Host {
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.hosts[id]; ok {
		return h
	}
	h := NewHost(node.New(id), c.network.Client(id))
	if c.durable {
		// Recovery runs before the host is registered (hence reachable):
		// this is the Simnet analogue of a server replaying its logs before
		// its listener accepts. A host failing recovery would be a
		// programming error in tests; surface it loudly.
		if _, err := h.EnableDurability(filepath.Join(c.durDir, string(id)), c.durOpts...); err != nil {
			panic(fmt.Sprintf("core: enabling durability for %s: %v", id, err))
		}
	}
	c.network.Register(id, h.Node())
	c.hosts[id] = h
	return h
}

// Host returns the host for id, if present.
func (c *Cluster) Host(id types.ProcessID) (*Host, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hosts[id]
	return h, ok
}

// Network returns the underlying simulated network.
func (c *Cluster) Network() *transport.Simnet { return c.network }

// Initial returns the bootstrap configuration c0.
func (c *Cluster) Initial() cfg.Configuration { return c.initial }

// Registry returns the cluster's DAP registry.
func (c *Cluster) Registry() *dap.Registry { return c.daps }

// InstallConfiguration provisions conf on the cluster: hosts are created for
// any new servers and the configuration registered with every member's
// resolver. conf may be a concrete configuration or a per-key template (ID
// embedding cfg.KeyPlaceholder) — a template registered once serves every
// key, with per-key state materialized lazily on first touch. Used to
// bootstrap independent registers outside the reconfiguration path.
func (c *Cluster) InstallConfiguration(conf cfg.Configuration) error {
	// Validate up front: a malformed configuration (e.g. no servers at all)
	// must fail here, not dissolve into an empty member loop, and must not
	// leave hosts created for some members before another member's
	// validation fails.
	if conf.IsTemplate() {
		if err := cfg.ValidateTemplate(conf); err != nil {
			return err
		}
	} else if err := conf.Validate(); err != nil {
		return err
	}
	members := append([]types.ProcessID(nil), conf.Servers...)
	members = append(members, conf.Directories...)
	for _, id := range members {
		if err := c.AddHost(id).InstallConfiguration(conf); err != nil {
			return err
		}
	}
	return nil
}

// ServiceInstances sums the hosted service instances across every host —
// the quantity the keyed hosting model keeps O(1) in keys (for tests and
// the bench harness).
func (c *Cluster) ServiceInstances() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, h := range c.hosts {
		total += h.ServiceInstances()
	}
	return total
}

// MaterializedStates sums the live (key, config) state entries across every
// host — the quantity the lifecycle GC keeps O(live configurations) rather
// than O(reconfiguration walks) (for tests and the bench harness).
func (c *Cluster) MaterializedStates() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, h := range c.hosts {
		total += h.MaterializedStates()
	}
	return total
}

// RetiredStates sums the garbage-collected (key, config) state entries
// across every host.
func (c *Cluster) RetiredStates() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, h := range c.hosts {
		total += h.RetiredStates()
	}
	return total
}

// Close releases the cluster's background resources — today, the simulated
// network's timer-fidelity pump goroutine. Every constructed cluster should
// be closed when done (tests, benches, examples): an unclosed cluster
// strands a parked goroutine for the life of the process. Close is
// idempotent, and the cluster remains usable afterwards (delay sleeps merely
// lose pump fidelity).
func (c *Cluster) Close() {
	c.mu.Lock()
	for _, h := range c.hosts {
		_ = h.Close()
	}
	c.mu.Unlock()
	c.network.Close()
}

// NewClient returns an ARES reader/writer rooted at c0.
func (c *Cluster) NewClient(id types.ProcessID) (*Client, error) {
	return c.NewClientFor(id, c.initial)
}

// NewClientFor returns a reader/writer rooted at an arbitrary configuration
// — the bootstrap hook for registers other than the cluster's default (a
// composed key-value store keeps one register, hence one configuration
// chain, per key).
func (c *Cluster) NewClientFor(id types.ProcessID, root cfg.Configuration) (*Client, error) {
	return NewClient(id, root, c.network.Client(id), c.daps)
}

// NewReconfigurer returns a reconfiguration client rooted at c0, wired to
// provision new configurations through the hosts' control services.
func (c *Cluster) NewReconfigurer(id types.ProcessID, opts recon.Options) (*recon.Client, error) {
	return c.NewReconfigurerFor(id, c.initial, opts)
}

// NewReconfigurerFor returns a reconfigurer rooted at an arbitrary
// configuration (see NewClientFor).
func (c *Cluster) NewReconfigurerFor(id types.ProcessID, root cfg.Configuration, opts recon.Options) (*recon.Client, error) {
	rpc := c.network.Client(id)
	return recon.NewClient(id, root, rpc, c.daps, RemoteInstaller(rpc), opts)
}
