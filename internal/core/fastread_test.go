package core

// Tests for the one-round read fast path: a quiescent key costs one data
// round (get-data only, write-back skipped), while a read that observes a
// tag not yet propagated to a full quorum — the concurrent-write window —
// still pays the put-data write-back. Round counts are asserted through the
// process-wide transport.CodecStats read counters, the same surface the
// bench and CI consume.
//
// None of these tests are parallel: the read-round counters are process-wide.

import (
	"context"
	"testing"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// readRoundDeltas runs one read and returns the (ops, rounds, fastPaths)
// counter deltas it produced, failing the test on read error or value
// mismatch.
func readRoundDeltas(t *testing.T, r *Client, want string) (ops, rounds, fast int64) {
	t.Helper()
	before := transport.CodecStats()
	pair, err := r.Read(context.Background())
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(pair.Value) != want {
		t.Fatalf("read %q, want %q", pair.Value, want)
	}
	after := transport.CodecStats()
	return after.ReadOps - before.ReadOps,
		after.ReadRounds - before.ReadRounds,
		after.ReadFastPaths - before.ReadFastPaths
}

// TestReadFastPathQuiescent pins the tentpole's headline: once a write has
// settled on every server, a read is one data round — the get-data quorum
// unanimously holds the max tag, so the put-data write-back is skipped and
// ReadFastPaths advances.
func TestReadFastPathQuiescent(t *testing.T) {
	// Not parallel: asserts on process-wide read-round counters.
	for _, alg := range []struct {
		name string
		c0   cfg.Configuration
	}{
		{"abd", abdConfig("c0", "fpq-a", 3)},
		{"treas", treasConfig("c0", "fpq-t", 5, 3, 2)},
	} {
		alg := alg
		t.Run(alg.name, func(t *testing.T) {
			net := transport.NewSimnet()
			cluster, err := NewCluster(alg.c0, net)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(cluster.Close)
			w, err := cluster.NewClient("w1")
			if err != nil {
				t.Fatal(err)
			}
			r, err := cluster.NewClient("r1")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write(context.Background(), types.Value("settled")); err != nil {
				t.Fatal(err)
			}
			// Let the write's straggler put-data deliveries (beyond its
			// quorum) land, so every server holds the tag and any get-data
			// quorum confirms it.
			net.Quiesce()

			for i := 0; i < 3; i++ {
				ops, rounds, fast := readRoundDeltas(t, r, "settled")
				if ops != 1 || rounds != 1 || fast != 1 {
					t.Fatalf("quiescent read %d: ops/rounds/fastpaths deltas = %d/%d/%d, want 1/1/1",
						i, ops, rounds, fast)
				}
			}
		})
	}
}

// TestReadWritesBackStaleTag pins the guard rail of the fast path: a read
// whose quorum does NOT unanimously hold the max tag — here because a server
// was cut off from the writer, the deterministic image of the concurrent-
// write window — must still run the put-data write-back (2 rounds, no fast
// path). Once that write-back has repaired the quorum, the next read is one
// round again.
func TestReadWritesBackStaleTag(t *testing.T) {
	// Not parallel: asserts on process-wide read-round counters.
	c0 := abdConfig("c0", "fps", 3)
	s1, s3 := c0.Servers[0], c0.Servers[2]
	net := transport.NewSimnet()
	cluster, err := NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)

	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}

	// The writer cannot reach s3: its put-data lands only on {s1, s2},
	// leaving s3 stale. The reader cannot reach s1: its quorum is forced to
	// {s2, s3}, where only s2 holds the new tag.
	net.BlockLink("w1", s3)
	net.BlockLink("r1", s1)
	if _, err := w.Write(context.Background(), types.Value("half-propagated")); err != nil {
		t.Fatal(err)
	}

	// First read: max tag held by 1 of the 2-server quorum → not confirmed →
	// get-data plus put-data write-back (which repairs s3 through the
	// reader's reachable servers).
	ops, rounds, fast := readRoundDeltas(t, r, "half-propagated")
	if ops != 1 || rounds != 2 || fast != 0 {
		t.Fatalf("stale read: ops/rounds/fastpaths deltas = %d/%d/%d, want 1/2/0", ops, rounds, fast)
	}

	// Second read: the write-back put the tag on both of {s2, s3}, so the
	// same forced quorum now confirms it — one round, fast path.
	ops, rounds, fast = readRoundDeltas(t, r, "half-propagated")
	if ops != 1 || rounds != 1 || fast != 1 {
		t.Fatalf("repaired read: ops/rounds/fastpaths deltas = %d/%d/%d, want 1/1/1", ops, rounds, fast)
	}
}

// TestReadWritesBackStaleTagTREAS is the erasure-coded analogue: n=5, k=3,
// q=⌈(n+k)/2⌉=4. The writer misses s5, so only 3 of the reader's 4-server
// quorum carry the coded element — decodable (3 ≥ k) but not confirmed
// (3 < q), forcing the write-back; after it, the same quorum confirms.
func TestReadWritesBackStaleTagTREAS(t *testing.T) {
	// Not parallel: asserts on process-wide read-round counters.
	c0 := treasConfig("c0", "fpt", 5, 3, 2)
	s1, s5 := c0.Servers[0], c0.Servers[4]
	net := transport.NewSimnet()
	cluster, err := NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)

	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}

	net.BlockLink("w1", s5)
	net.BlockLink("r1", s1)
	if _, err := w.Write(context.Background(), types.Value("coded-stale")); err != nil {
		t.Fatal(err)
	}

	ops, rounds, fast := readRoundDeltas(t, r, "coded-stale")
	if ops != 1 || rounds != 2 || fast != 0 {
		t.Fatalf("stale coded read: ops/rounds/fastpaths deltas = %d/%d/%d, want 1/2/0", ops, rounds, fast)
	}
	ops, rounds, fast = readRoundDeltas(t, r, "coded-stale")
	if ops != 1 || rounds != 1 || fast != 1 {
		t.Fatalf("repaired coded read: ops/rounds/fastpaths deltas = %d/%d/%d, want 1/1/1", ops, rounds, fast)
	}
}
