package core

import "github.com/ares-storage/ares/internal/obs"

// Client-side operation instruments. Read ops/rounds/fast-paths are
// attributed by transport.RecordReadRounds (the view CodecStats exposes);
// these cover the write path and the retry machinery.
var (
	clientWrites = obs.Default.Counter("ares_client_write_ops_total",
		"Completed core.Client writes")
	clientWriteRounds = obs.Default.Counter("ares_client_write_rounds_total",
		"Data rounds taken by completed writes (get-tag plus put-data)")
	clientRetries = obs.Default.Counter("ares_client_retries_total",
		"get-data attempts retried after quorum failures")
	clientBackoffs = obs.Default.Counter("ares_client_backoff_events_total",
		"Paced retry delays slept before a get-data re-attempt")
)

// registerHostGauges points the host-level state gauges at h. A process
// that hosts several nodes (tests, simnet) re-registers per host; the
// most recent host wins the name, which is exact for the one-host
// ares-server process /metrics serves.
func registerHostGauges(h *Host) {
	obs.Default.GaugeFunc("ares_host_materialized_states",
		"Live (key, config) state entries across keyed services",
		func() int64 { return int64(h.MaterializedStates()) })
	obs.Default.GaugeFunc("ares_host_retired_states",
		"(key, config) state entries retired by lifecycle GC",
		h.RetiredStates)
	obs.Default.GaugeFunc("ares_host_service_instances",
		"Registered service instances on this host",
		func() int64 { return int64(h.ServiceInstances()) })
	obs.Default.GaugeFunc("ares_host_retired_configs",
		"Configurations holding tombstone redirects",
		func() int64 { return int64(h.RetiredConfigs()) })
}
