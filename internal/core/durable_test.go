package core

// End-to-end durability tests over the real services: a cluster journals
// under a temp dir, a host is crash-restarted (RestartHost — the old host
// object and its volatile state discarded), and recovered state must answer
// exactly as the live state did.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/keystate"
	"github.com/ares-storage/ares/internal/recon"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

func durableCluster(t *testing.T, c0 cfg.Configuration) *Cluster {
	t.Helper()
	cluster, err := NewCluster(c0, transport.NewSimnet())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	if err := cluster.EnableDurability(t.TempDir(), keystate.WithFsync(false)); err != nil {
		t.Fatal(err)
	}
	return cluster
}

// TestDurableRestartRecoversAcknowledgedWrites pins the tentpole across both
// store algorithms: acknowledged writes survive a full crash-restart of
// every server — each restart discards the host object entirely and rebuilds
// from WAL + snapshot — and a fresh reader sees the last written value.
func TestDurableRestartRecoversAcknowledgedWrites(t *testing.T) {
	t.Parallel()
	for _, alg := range []struct {
		name string
		c0   cfg.Configuration
	}{
		{"abd", abdConfig("c0", "da", 3)},
		{"treas", treasConfig("c0", "dt", 5, 3, 2)},
	} {
		alg := alg
		t.Run(alg.name, func(t *testing.T) {
			t.Parallel()
			cluster := durableCluster(t, alg.c0)
			ctx := context.Background()
			w, err := cluster.NewClient("w1")
			if err != nil {
				t.Fatal(err)
			}
			var lastTag interface{ String() string }
			for i := 0; i < 5; i++ {
				wTag, err := w.Write(ctx, types.Value(fmt.Sprintf("v%d", i)))
				if err != nil {
					t.Fatal(err)
				}
				lastTag = wTag
			}
			// Crash-restart EVERY server: nothing survives in memory.
			for _, s := range alg.c0.Servers {
				if _, err := cluster.RestartHost(s); err != nil {
					t.Fatal(err)
				}
			}
			r, err := cluster.NewClient("r1")
			if err != nil {
				t.Fatal(err)
			}
			pair, err := r.Read(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if string(pair.Value) != "v4" {
				t.Fatalf("after restart read %q (tag %v), want v4 (tag %v)", pair.Value, pair.Tag, lastTag)
			}
		})
	}
}

// TestDurableRestartWithoutDurabilityIsAmnesiac pins the honest-restart
// semantics on its own: with durability NOT enabled, RestartHost must lose
// the victim's state — the opposite of the old EvRestart bug where a
// "restarted" process kept its memory.
func TestDurableRestartWithoutDurabilityIsAmnesiac(t *testing.T) {
	t.Parallel()
	c0 := abdConfig("c0", "amn", 3)
	cluster, err := NewCluster(c0, transport.NewSimnet())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ctx := context.Background()
	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(ctx, types.Value("volatile")); err != nil {
		t.Fatal(err)
	}
	victim := c0.Servers[0]
	h, _ := cluster.Host(victim)
	if h.MaterializedStates() == 0 {
		t.Fatal("victim had no state before restart")
	}
	h2, err := cluster.RestartHost(victim)
	if err != nil {
		t.Fatal(err)
	}
	if n := h2.MaterializedStates(); n != 0 {
		t.Fatalf("amnesiac restart kept %d states", n)
	}
}

// TestDurableReconfigAndRetirementSurviveRestart runs a reconfiguration
// (ABD → ABD on the same server set), restarts every server, and asserts
// (a) the written value is still readable after the walk and the restarts
// and (b) the retirement tombstones did not evaporate — a lagging client
// must keep getting redirected, never rematerialized v₀ state.
func TestDurableReconfigAndRetirementSurviveRestart(t *testing.T) {
	t.Parallel()
	const key = "rw"
	c0 := abdConfig("dur/rw/c0", "rw", 3)
	c0.Key = key
	c1 := abdConfig("dur/rw/c1", "rw", 3) // same servers, new configuration
	c1.Key = key
	cluster := durableCluster(t, c0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	w, err := cluster.NewClient("w1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(ctx, types.Value("before-recon")); err != nil {
		t.Fatal(err)
	}

	rc, err := cluster.NewReconfigurer("rec1", recon.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Reconfig(ctx, c1); err != nil {
		t.Fatal(err)
	}
	// Finalization gossip (and with it, retirement) is asynchronous: wait
	// until every server has tombstoned (key, c0) before pulling the plug.
	tombstoned := func() bool {
		for _, s := range c0.Servers {
			h, _ := cluster.Host(s)
			if _, ok := h.Resolver().RetiredSuccessor(key, c0.ID); !ok {
				return false
			}
		}
		return true
	}
	for deadline := time.Now().Add(5 * time.Second); !tombstoned(); {
		if time.Now().After(deadline) {
			t.Fatal("reconfiguration never retired (key, c0) on every server")
		}
		time.Sleep(10 * time.Millisecond)
	}

	for _, s := range c0.Servers {
		if _, err := cluster.RestartHost(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range c0.Servers {
		h, _ := cluster.Host(s)
		if rs, ok := h.Resolver().RetiredSuccessor(key, c0.ID); !ok {
			t.Fatalf("server %s forgot the retirement of %s", s, c0.ID)
		} else if rs != c1.ID {
			t.Fatalf("server %s recovered successor %s, want %s", s, rs, c1.ID)
		}
	}

	r, err := cluster.NewClient("r1")
	if err != nil {
		t.Fatal(err)
	}
	pair, err := r.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(pair.Value) != "before-recon" {
		t.Fatalf("after reconfig+restart read %q, want before-recon", pair.Value)
	}
}
