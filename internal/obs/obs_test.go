package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ares_test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("ares_test_ops_total", "ops"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}

	g := r.Gauge("ares_test_depth", "depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	r.GaugeFunc("ares_test_depth", "depth", func() int64 { return 42 })
	if got := g.Load(); got != 42 {
		t.Fatalf("func gauge = %d, want 42", got)
	}
	g.SetFunc(nil)
	if got := g.Load(); got != 5 {
		t.Fatalf("reverted gauge = %d, want 5", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ares_test_x", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("ares_test_x", "x")
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ares_test_lat_seconds", "lat", []int64{100, 1000, 10000})
	for _, v := range []int64{50, 100, 101, 999, 5000, 99999} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 1, 1} // <=100, <=1000, <=10000, +Inf
	for i, n := range want {
		if s.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], n, s)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 50+100+101+999+5000+99999 {
		t.Fatalf("sum = %d", s.Sum)
	}
	if q := s.Quantile(0.5); q != 1000 {
		t.Fatalf("p50 = %d, want 1000", q)
	}
	// p99 lands in the +Inf bucket -> last finite bound.
	if q := s.Quantile(0.99); q != 10000 {
		t.Fatalf("p99 = %d, want 10000", q)
	}
	if q := (HistSnapshot{}).Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
}

// TestScrapeUnderLoad is the -race scrape-under-load contract: concurrent
// writers hammer a counter and a histogram while a scraper loops over
// Prometheus renders and snapshots. Counters must be monotone scrape over
// scrape, and histogram snapshots must never tear: with every observation
// equal to V, a snapshot's bucket-derived Count must always cover its Sum
// (Sum is loaded first), and Count*V >= Sum exactly.
func TestScrapeUnderLoad(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ares_test_load_total", "load")
	const obsV = 1000
	h := r.Histogram("ares_test_load_seconds", "load", []int64{500, 1500, 5000})

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				c.Inc()
				h.Observe(obsV)
			}
		}()
	}

	deadline := time.Now().Add(200 * time.Millisecond)
	var lastCount, lastHist int64
	scrapes := 0
	for time.Now().Before(deadline) {
		var sb strings.Builder
		r.WritePrometheus(&sb)
		if !strings.Contains(sb.String(), "ares_test_load_total") {
			t.Fatal("scrape lost the counter")
		}

		snap := r.Snapshot()
		cur := snap.Counters["ares_test_load_total"]
		if cur < lastCount {
			t.Fatalf("counter went backwards: %d -> %d", lastCount, cur)
		}
		lastCount = cur

		hs := snap.Histograms["ares_test_load_seconds"]
		if hs.Count < lastHist {
			t.Fatalf("histogram count went backwards: %d -> %d", lastHist, hs.Count)
		}
		lastHist = hs.Count
		var bucketTotal int64
		for _, n := range hs.Counts {
			bucketTotal += n
		}
		if bucketTotal != hs.Count {
			t.Fatalf("torn snapshot: Count %d != bucket total %d", hs.Count, bucketTotal)
		}
		if hs.Count*obsV < hs.Sum {
			t.Fatalf("torn snapshot: %d observations cannot account for sum %d",
				hs.Count, hs.Sum)
		}
		scrapes++
	}
	stop.Store(true)
	wg.Wait()
	if scrapes < 10 {
		t.Fatalf("only %d scrapes completed", scrapes)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ares_test_msgs_total", "messages").Add(3)
	r.Counter(`ares_test_frames_total{bucket="1"}`, "frames").Add(2)
	r.Counter(`ares_test_frames_total{bucket="2"}`, "frames").Add(5)
	r.Gauge("ares_test_live", "live states").Set(9)
	h := r.Histogram(`ares_test_lat_seconds{phase="abd/get-tag"}`, "latency",
		[]int64{1_000_000, 1_000_000_000})
	h.Observe(500_000)
	h.Observe(2_000_000_000)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE ares_test_msgs_total counter\n",
		"ares_test_msgs_total 3\n",
		`ares_test_frames_total{bucket="1"} 2` + "\n",
		`ares_test_frames_total{bucket="2"} 5` + "\n",
		"# TYPE ares_test_live gauge\n",
		"ares_test_live 9\n",
		"# TYPE ares_test_lat_seconds histogram\n",
		`ares_test_lat_seconds_bucket{phase="abd/get-tag",le="0.001"} 1` + "\n",
		`ares_test_lat_seconds_bucket{phase="abd/get-tag",le="1"} 1` + "\n",
		`ares_test_lat_seconds_bucket{phase="abd/get-tag",le="+Inf"} 2` + "\n",
		`ares_test_lat_seconds_count{phase="abd/get-tag"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One HELP/TYPE block per base name, even with two labeled series.
	if n := strings.Count(out, "# TYPE ares_test_frames_total"); n != 1 {
		t.Fatalf("frames_total TYPE blocks = %d, want 1", n)
	}
}

func TestCounterDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ares_test_delta_total", "d")
	c.Add(10)
	before := r.Snapshot()
	c.Add(7)
	r.Counter("ares_test_new_total", "n").Add(3)
	d := CounterDelta(before, r.Snapshot())
	if d["ares_test_delta_total"] != 7 || d["ares_test_new_total"] != 3 {
		t.Fatalf("delta = %v", d)
	}
	if _, ok := d["ares_test_zero"]; ok {
		t.Fatalf("zero deltas must be dropped: %v", d)
	}
}

// The hot path must not allocate: instrument handles are resolved once,
// then Add/Observe are pure atomics.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ares_test_alloc_total", "a")
	h := r.Histogram("ares_test_alloc_seconds", "a", nil)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123_456) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("ares_bench_total", "b")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("ares_bench_seconds", "b", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(750_000)
		}
	})
}
