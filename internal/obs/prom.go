package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// splitName separates a registered name into its Prometheus base name and
// the inner label list (without braces): "a_total{k=\"v\"}" -> ("a_total",
// "k=\"v\"").
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// joinLabels merges an instrument's own labels with extra rendered pairs
// (histogram "le") into one {…} block, or "" when both are empty.
func joinLabels(own, extra string) string {
	switch {
	case own == "" && extra == "":
		return ""
	case own == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + own + "}"
	default:
		return "{" + own + "," + extra + "}"
	}
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4). Instruments sharing a base name
// share one HELP/TYPE block; histograms render cumulative buckets with
// le labels in seconds, plus _sum (seconds) and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	lastBase := ""
	for _, m := range r.sorted() {
		base, labels := splitName(m.name)
		if base != lastBase {
			typ := "counter"
			switch m.kind {
			case kindGauge:
				typ = "gauge"
			case kindHist:
				typ = "histogram"
			}
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", base, m.help, base, typ)
			lastBase = base
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s%s %d\n", base, joinLabels(labels, ""), m.c.Load())
		case kindGauge:
			fmt.Fprintf(w, "%s%s %d\n", base, joinLabels(labels, ""), m.g.Load())
		case kindHist:
			s := m.h.Snapshot()
			var cum int64
			for i, n := range s.Counts {
				cum += n
				le := "+Inf"
				if i < len(s.Bounds) {
					le = formatSeconds(s.Bounds[i])
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n",
					base, joinLabels(labels, `le="`+le+`"`), cum)
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", base, joinLabels(labels, ""),
				formatSeconds(s.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", base, joinLabels(labels, ""), cum)
		}
	}
}

// formatSeconds renders a nanosecond quantity as seconds with no
// trailing-zero noise ("0.00025", "1", "2.5").
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}
