// Package obs is the process-wide observability core: one registry of
// named instruments — counters, gauges, and fixed-bucket latency
// histograms — that every layer (transport, keystate, core, adaptive,
// store) registers into instead of keeping hand-rolled stat structs.
//
// Design constraints, in order:
//
//  1. Zero-dependency. The registry is scraped as Prometheus text and as
//     a JSON snapshot; nothing here imports outside the standard library.
//  2. Zero-alloc, lock-free hot path. An instrument is looked up (or
//     created) once, held in a package-level var at the call site, and
//     from then on every Add/Observe is a plain atomic op. The registry
//     lock is only taken at registration and scrape time.
//  3. Torn-free reads. A scrape never blocks writers and never observes
//     an impossible state: histogram snapshots load the running sum
//     BEFORE the bucket counts, so the derived count is always >= what
//     the sum accounts for, and counters are single atomics (monotone by
//     construction between resets).
//
// Instrument names follow the Prometheus convention
// (ares_<layer>_<what>_<unit>), with an optional brace-delimited label
// set that is part of the registered name string — e.g.
// "ares_phase_seconds{phase=\"abd/get-data\"}". Instruments sharing a
// base name share one HELP/TYPE block in the exposition output.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. Reset exists only
// so legacy Stats views (transport.ResetCodecStats) keep their contract;
// scrapers should treat a decrease as a reset.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset stores zero. Only legacy reset paths should call this.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an instantaneous value: either set/added directly, or backed
// by a callback installed with SetFunc (polled at scrape time).
type Gauge struct {
	v  atomic.Int64
	fn atomic.Pointer[func() int64]
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetFunc makes the gauge report fn() at read time instead of the stored
// value. Passing nil reverts to the stored value. The previous function,
// if any, is replaced — components that re-register (tests constructing
// several stores in one process) simply win the name.
func (g *Gauge) SetFunc(fn func() int64) {
	if fn == nil {
		g.fn.Store(nil)
		return
	}
	g.fn.Store(&fn)
}

// Load returns the gauge's current value.
func (g *Gauge) Load() int64 {
	if fn := g.fn.Load(); fn != nil {
		return (*fn)()
	}
	return g.v.Load()
}

// Histogram is a fixed-bound bucket histogram of int64 observations
// (latencies are observed in nanoseconds). Observation is two atomic
// adds; there is no lock and no allocation.
type Histogram struct {
	bounds  []int64 // upper bounds, ascending; implicit +Inf bucket after
	buckets []atomic.Int64
	sum     atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed nanoseconds since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// Reset zeroes all buckets and the sum. Only legacy reset paths use it.
func (h *Histogram) Reset() {
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistSnapshot is a point-in-time view of a histogram. Count is derived
// as the sum of the bucket counts, so it can never disagree with them.
// Because Sum is loaded first, Sum never accounts for more observations
// than Count covers.
type HistSnapshot struct {
	Bounds []int64 `json:"bounds"` // upper bounds (ns); +Inf implicit
	Counts []int64 `json:"counts"` // per-bucket, len(Bounds)+1
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Snapshot captures the histogram without blocking writers.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Sum:    h.sum.Load(), // before the buckets: see HistSnapshot
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Counts[i] = n
		s.Count += n
	}
	return s
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1)
// from the bucket counts: the upper bound of the bucket where the
// cumulative count crosses q*total. Samples in the +Inf bucket report the
// last finite bound (a floor, but a finite one). Zero observations
// report 0.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range s.Counts {
		cum += n
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// DefLatencyBounds are the default latency bucket upper bounds in
// nanoseconds: 50µs to 2.5s in a coarse log scale. Wide enough for
// loopback RTTs and fsync stalls alike at 16 buckets total.
var DefLatencyBounds = []int64{
	50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000,
	25_000_000, 50_000_000, 100_000_000, 250_000_000,
	500_000_000, 1_000_000_000, 2_500_000_000,
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHist
)

type metric struct {
	name string // full registered name, possibly with {labels}
	help string
	kind kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named instruments. Get-or-create methods are idempotent:
// the first registration wins, later calls with the same name return the
// same instrument (and panic on a kind mismatch — that is a programming
// error, not a runtime condition).
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Default is the process-wide registry every package-level instrument
// registers into; ares-server scrapes it on /metrics.
var Default = NewRegistry()

func (r *Registry) get(name, help string, k kind) *metric {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if ok {
		if m.kind != k {
			panic("obs: instrument " + name + " re-registered with a different kind")
		}
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != k {
			panic("obs: instrument " + name + " re-registered with a different kind")
		}
		return m
	}
	m = &metric{name: name, help: help, kind: k}
	switch k {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHist:
		m.h = &Histogram{}
	}
	r.metrics[name] = m
	return m
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.get(name, help, kindCounter).c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.get(name, help, kindGauge).g
}

// GaugeFunc registers a callback-backed gauge. Re-registering the same
// name replaces the callback (last writer wins).
func (r *Registry) GaugeFunc(name, help string, fn func() int64) *Gauge {
	g := r.get(name, help, kindGauge).g
	g.SetFunc(fn)
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given bucket upper bounds (nil means DefLatencyBounds). Bounds are
// fixed at first registration; later calls ignore the argument.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if ok {
		if m.kind != kindHist {
			panic("obs: instrument " + name + " re-registered with a different kind")
		}
		return m.h
	}
	if bounds == nil {
		bounds = DefLatencyBounds
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kindHist {
			panic("obs: instrument " + name + " re-registered with a different kind")
		}
		return m.h
	}
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	r.metrics[name] = &metric{name: name, help: help, kind: kindHist, h: h}
	return h
}

// sorted returns the metrics ordered by name, under the read lock.
func (r *Registry) sorted() []*metric {
	r.mu.RLock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Snapshot is a point-in-time copy of every instrument, used by the
// admin JSON endpoint and by per-phase bench attribution.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered instrument.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistSnapshot),
	}
	for _, m := range r.sorted() {
		switch m.kind {
		case kindCounter:
			s.Counters[m.name] = m.c.Load()
		case kindGauge:
			s.Gauges[m.name] = m.g.Load()
		case kindHist:
			s.Histograms[m.name] = m.h.Snapshot()
		}
	}
	return s
}

// CounterDelta returns cur's counters minus prev's, dropping zeros —
// the per-phase attribution the bench suite records.
func CounterDelta(prev, cur Snapshot) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range cur.Counters {
		if d := v - prev.Counters[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}
