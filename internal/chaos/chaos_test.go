package chaos

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/core"
	"github.com/ares-storage/ares/internal/history"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// requireLinearizable fails the test with full replay instructions when a
// verdict is not clean — the scenario name + seed line the satellite task
// demands on any chaos failure.
func requireLinearizable(t *testing.T, v Verdict) {
	t.Helper()
	if v.Linearizable {
		return
	}
	for _, kv := range v.Keys {
		for _, viol := range kv.Violations {
			t.Errorf("scenario %s seed %d key %s: %s", v.Scenario, v.Seed, kv.Key, viol)
		}
	}
	t.Fatalf("scenario %s seed %d: NOT linearizable (%d ops, %d incomplete); replay: %s",
		v.Scenario, v.Seed, v.Ops, v.Incomplete, v.Replay())
}

// TestChaosMatrix runs every built-in scenario once at smoke duration.
// Override the seed with ARES_CHAOS_SEED to replay a failure exactly.
func TestChaosMatrix(t *testing.T) {
	seed := SeedFromEnv(7)
	for _, sc := range Matrix() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			v, err := Run(sc, Options{Seed: seed, Logf: t.Logf})
			if err != nil {
				t.Fatalf("scenario %s seed %d: %v", sc.Name, seed, err)
			}
			requireLinearizable(t, v)
			if v.Ops < 10 {
				t.Fatalf("scenario %s seed %d: only %d ops recorded — the workload barely ran", sc.Name, seed, v.Ops)
			}
			if len(sc.Chain) > 0 && v.Reconfigs == 0 {
				t.Errorf("scenario %s seed %d: no reconfiguration completed (%d errors)", sc.Name, seed, v.ReconfigErrors)
			}
			if sc.AdaptiveProfiles != nil && v.AutoReconfigs == 0 {
				t.Errorf("scenario %s seed %d: adaptive controller never reconfigured a key (%d reconfig errors) — the workload shift went unnoticed",
					sc.Name, seed, v.ReconfigErrors)
			}
			if v.StateBoundExceeded {
				t.Errorf("scenario %s seed %d: lifecycle GC bound blown: %d retained states across %d keys (bound %d per key, %d retired); replay: %s",
					sc.Name, seed, v.ServerStates, sc.Keys, sc.MaxStatesPerKey, v.RetiredStates, v.Replay())
			}
			if sc.MaxStatesPerKey > 0 && v.RetiredStates == 0 && v.Reconfigs+v.AutoReconfigs > 0 {
				t.Errorf("scenario %s seed %d: %d reconfigs completed but no state was retired — GC never fired", sc.Name, seed, v.Reconfigs+v.AutoReconfigs)
			}
			t.Logf("%s: %d ops, %d incomplete, %d op errors, %d reconfigs (%d auto), verdict via %s",
				sc.Name, v.Ops, v.Incomplete, v.OpErrors, v.Reconfigs, v.AutoReconfigs, v.Keys[0].Method)
		})
	}
}

// TestChaosSoak is the long variant: every scenario stretched 3×. Kept out
// of -short (and CI runs it under -race in the full-suite step).
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	seed := SeedFromEnv(21)
	for _, sc := range Matrix() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			v, err := Run(sc, Options{Seed: seed, Stretch: 3, Logf: t.Logf})
			if err != nil {
				t.Fatalf("scenario %s seed %d: %v", sc.Name, seed, err)
			}
			requireLinearizable(t, v)
		})
	}
}

// TestBrokenClientCaught is the checker's negative control: a reader with
// the write-back phase disabled (raw get-data, never put-data) violates
// atomicity under concurrent writes, and the verdict MUST say so. A checker
// that lets this pass verifies nothing.
func TestBrokenClientCaught(t *testing.T) {
	seed := SeedFromEnv(7)
	for attempt := 0; attempt < 3; attempt++ {
		if brokenClientFlagged(t, seed+int64(attempt)) {
			return
		}
	}
	t.Fatalf("broken write-back-free reader was never flagged in 3 runs — the checker accepts non-atomic histories")
}

// brokenClientFlagged runs one cluster with a normal writer and a reader
// that skips write-back, reporting whether the checker flagged the history.
func brokenClientFlagged(t *testing.T, seed int64) bool {
	t.Helper()
	c0 := abdTemplate("broken", 5)
	c0.ID = "broken/c0"
	net := transport.NewSimnet(transport.WithDelayRange(0, time.Millisecond), transport.WithSeed(seed))
	defer net.Close()
	cluster, err := core.NewCluster(c0, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	// Make the writer's messages to all servers but the first slow: each
	// written value lands on s1 ~30ms before it reaches anywhere else, so
	// every write has a wide in-flight window in which only one replica
	// holds the new value. A write-back-free reader sampling majorities
	// during that window sees the new value exactly when its quorum draw
	// includes s1 — and regresses on the next draw that misses it.
	for _, s := range c0.Servers[1:] {
		net.SetLinkFaults("bw1", s, transport.LinkFaults{
			Extra: transport.DelayRange{Min: 25 * time.Millisecond, Max: 35 * time.Millisecond},
		})
	}

	writer, err := cluster.NewClientFor("bw1", c0)
	if err != nil {
		t.Fatal(err)
	}
	// The broken reader: a raw DAP client used without the A1 template's
	// propagate phase — exactly "write-back disabled".
	brokenRead, err := cluster.Registry().New(c0, net.Client("br1"))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rec := history.NewRecorder()
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for seq := 0; ; seq++ {
			select {
			case <-stop:
				return
			default:
			}
			v := types.Value(fmt.Sprintf("bw1/%d", seq))
			p := rec.BeginWrite("bw1", v)
			tg, err := writer.Write(ctx, v)
			if err != nil {
				p.Fail()
				return
			}
			p.Done(tg, v)
		}
	}()
	deadline := time.Now().Add(1200 * time.Millisecond)
	for time.Now().Before(deadline) {
		p := rec.BeginRead("br1")
		pair, err := brokenRead.GetData(ctx)
		if err != nil {
			p.Fail()
			continue
		}
		p.Done(pair.Tag, pair.Value)
	}
	close(stop)
	<-writerDone

	rep := history.Verify(rec.Ops(), history.CheckOptions{})
	t.Logf("broken-client run seed %d: %d ops via %s, linearizable=%v", seed, rep.Ops, rep.Method, rep.Linearizable)
	return !rep.Linearizable
}

// TestScheduleOrderingAndStretch pins the schedule's pure-value semantics:
// events fire in At order regardless of slice order, and stretch scales
// offsets.
func TestScheduleOrderingAndStretch(t *testing.T) {
	t.Parallel()
	s := Schedule{
		{At: 30 * time.Millisecond, Kind: EvRestart, Target: "s1"},
		{At: 10 * time.Millisecond, Kind: EvCrash, Target: "s1"},
	}
	sorted := s.sorted()
	if sorted[0].Kind != EvCrash || sorted[1].Kind != EvRestart {
		t.Fatalf("sorted order = %v", sorted)
	}
	if s[0].Kind != EvRestart {
		t.Fatal("sorted must not mutate the original schedule")
	}
	stretched := s.stretch(2)
	if stretched[1].At != 20*time.Millisecond {
		t.Fatalf("stretch: At = %v, want 20ms", stretched[1].At)
	}
	if s[1].At != 10*time.Millisecond {
		t.Fatal("stretch must not mutate the original schedule")
	}
}

// TestScheduleAppliesAgainstNetwork runs a crash/restart timeline against a
// real Simnet and observes the mutations land, including that EvRestart
// routes through the fabric's restart hook before delivery resumes.
func TestScheduleAppliesAgainstNetwork(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	var restarted []types.ProcessID
	fabric := Fabric{Net: net, Restart: func(id types.ProcessID) error {
		restarted = append(restarted, id)
		return nil
	}}
	s := Schedule{
		{At: 0, Kind: EvCrash, Target: "s1"},
		{At: 20 * time.Millisecond, Kind: EvRestart, Target: "s1"},
		{At: 10 * time.Millisecond, Kind: EvBlockLink, From: "a", To: "b"},
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.run(time.Now(), stop, fabric, func(string, ...any) {})
	}()
	<-done
	if net.Crashed("s1") {
		t.Fatal("s1 should have been restarted by the final event")
	}
	if len(restarted) != 1 || restarted[0] != "s1" {
		t.Fatalf("restart hook saw %v, want [s1]", restarted)
	}
	if !net.LinkBlocked("a", "b") {
		t.Fatal("a → b should be blocked")
	}
	close(stop)
}

// TestRestartWithoutHookRefused pins EvRestart's honesty contract: without a
// restart hook there is no process rebuild, and the event must refuse to
// degrade into the old preserve-state behavior. EvRestartPreserveState is
// the explicit way to ask for that.
func TestRestartWithoutHookRefused(t *testing.T) {
	t.Parallel()
	net := transport.NewSimnet()
	net.Crash("s1")
	ev := Event{Kind: EvRestart, Target: "s1"}
	if err := ev.apply(Fabric{Net: net}); err == nil {
		t.Fatal("EvRestart without a restart hook must error")
	}
	if !net.Crashed("s1") {
		t.Fatal("a refused restart must leave the process crashed")
	}
	keep := Event{Kind: EvRestartPreserveState, Target: "s1"}
	if err := keep.apply(Fabric{Net: net}); err != nil {
		t.Fatal(err)
	}
	if net.Crashed("s1") {
		t.Fatal("EvRestartPreserveState should clear the crash flag")
	}
}

func TestSeedFromEnv(t *testing.T) {
	t.Setenv("ARES_CHAOS_SEED", "42")
	if got := SeedFromEnv(7); got != 42 {
		t.Fatalf("SeedFromEnv = %d, want 42", got)
	}
	t.Setenv("ARES_CHAOS_SEED", "not-a-number")
	if got := SeedFromEnv(7); got != 7 {
		t.Fatalf("SeedFromEnv with junk = %d, want default 7", got)
	}
}

// TestFindScenario covers the lookup the bench CLI uses.
func TestFindScenario(t *testing.T) {
	t.Parallel()
	if _, ok := Find("minority-partition"); !ok {
		t.Fatal("minority-partition missing from the matrix")
	}
	if _, ok := Find("no-such-scenario"); ok {
		t.Fatal("Find invented a scenario")
	}
	if len(Matrix()) < 6 {
		t.Fatalf("matrix has %d scenarios, acceptance demands ≥ 6", len(Matrix()))
	}
	seen := map[string]bool{}
	for _, sc := range Matrix() {
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Schedule == nil {
			t.Fatalf("scenario %q has no fault schedule — it is not adversarial", sc.Name)
		}
	}
}
