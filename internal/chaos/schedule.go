// Package chaos is the adversarial execution harness: a deterministic,
// seed-reproducible fault scheduler driving declarative fault schedules
// against the simulated network while concurrent multi-key workloads and a
// background reconfigurer exercise the ARES protocols, ending every run in
// a value-based linearizability verdict (internal/history.Verify).
//
// The determinism contract: a schedule is a pure value — a list of
// (virtual-time offset, mutation) pairs applied in offset order — and all
// probabilistic behaviour (message drop/duplication sampling, delay draws)
// flows from the single RNG seeded by Options.Seed. Re-running a scenario
// with the same seed replays the same fault timeline and the same fault
// sampling; goroutine interleaving still varies with the OS scheduler, so
// a replay reproduces the adversarial conditions rather than a bit-exact
// execution. On any failure the runner reports the scenario name and seed,
// and the ARES_CHAOS_SEED environment variable (see SeedFromEnv) pins the
// seed for replay.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// EventKind names one fault-schedule mutation.
type EventKind string

// The schedule mutations, each mapping to a Simnet hook.
const (
	// EvPartition cuts every link between groups A and B, both directions.
	EvPartition EventKind = "partition"
	// EvHeal undoes a partition of the same groups.
	EvHeal EventKind = "heal"
	// EvBlockLink blocks the one-way link From → To.
	EvBlockLink EventKind = "block-link"
	// EvUnblockLink re-opens the one-way link From → To.
	EvUnblockLink EventKind = "unblock-link"
	// EvCrash crash-fails Target (a kill: the network stops delivering to
	// and from it; see Simnet.Crash).
	EvCrash EventKind = "crash"
	// EvRestart recovers Target like a real process restart: the fabric's
	// restart hook discards the victim's volatile state and rebuilds it —
	// from WAL + snapshot recovery on a durable cluster, amnesiac otherwise
	// — before the network resumes delivery. It requires a restart hook;
	// schedules driven against a bare network must use
	// EvRestartPreserveState.
	EvRestart EventKind = "restart"
	// EvRestartPreserveState recovers Target with its in-memory state
	// untouched — the process never really died, it was only unreachable.
	// This is the old EvRestart behavior, kept for amnesia-free scenarios;
	// it says nothing about durability.
	EvRestartPreserveState EventKind = "restart-preserve-state"
	// EvLinkFaults installs Faults on the one-way link From → To.
	EvLinkFaults EventKind = "link-faults"
	// EvDefaultFaults installs Faults on every link without an override.
	EvDefaultFaults EventKind = "default-faults"
	// EvClearFaults removes all drop/dup/delay faults (links stay blocked
	// and crashed processes stay crashed — those have their own events).
	EvClearFaults EventKind = "clear-faults"
)

// Event is one timed mutation of the network. At is an offset on the run's
// virtual timeline (0 = workload start); which other fields matter depends
// on Kind.
type Event struct {
	At   time.Duration `json:"at"`
	Kind EventKind     `json:"kind"`

	// A and B are the process groups of a partition/heal.
	A []types.ProcessID `json:"a,omitempty"`
	B []types.ProcessID `json:"b,omitempty"`
	// From and To address a one-way link.
	From types.ProcessID `json:"from,omitempty"`
	To   types.ProcessID `json:"to,omitempty"`
	// Target is the process of a crash/restart.
	Target types.ProcessID `json:"target,omitempty"`
	// Faults parameterizes link-faults and default-faults events.
	Faults transport.LinkFaults `json:"faults,omitempty"`
}

// Fabric is the execution substrate a schedule mutates: the simulated
// network plus the hook through which a restart rebuilds a server process.
type Fabric struct {
	// Net is the simulated network every fault lands on.
	Net *transport.Simnet
	// Restart rebuilds the process for an EvRestart: the runner wires it to
	// core.Cluster.RestartHost, which discards the old host object (all
	// volatile keyed state) and recovers from the durability directory — or
	// comes back amnesiac on a non-durable cluster. Nil means EvRestart
	// cannot be honored (schedules against a bare network use
	// EvRestartPreserveState instead).
	Restart func(types.ProcessID) error
}

// apply executes the mutation against the fabric.
func (e Event) apply(f Fabric) error {
	net := f.Net
	switch e.Kind {
	case EvPartition:
		net.Partition(e.A, e.B)
	case EvHeal:
		net.Heal(e.A, e.B)
	case EvBlockLink:
		net.BlockLink(e.From, e.To)
	case EvUnblockLink:
		net.UnblockLink(e.From, e.To)
	case EvCrash:
		net.Crash(e.Target)
	case EvRestart:
		// Rebuild the process first, then resume delivery: a recovered host
		// must replay its logs before its first envelope, exactly like a real
		// server replaying before its listener accepts.
		if f.Restart == nil {
			return fmt.Errorf("chaos: EvRestart for %s needs a restart hook (use EvRestartPreserveState for bare-network schedules)", e.Target)
		}
		if err := f.Restart(e.Target); err != nil {
			return fmt.Errorf("chaos: restarting %s: %w", e.Target, err)
		}
		net.Restart(e.Target)
	case EvRestartPreserveState:
		net.Restart(e.Target)
	case EvLinkFaults:
		net.SetLinkFaults(e.From, e.To, e.Faults)
	case EvDefaultFaults:
		net.SetDefaultLinkFaults(e.Faults)
	case EvClearFaults:
		net.ClearLinkFaults()
	default:
		return fmt.Errorf("chaos: unknown event kind %q", e.Kind)
	}
	return nil
}

// String renders the event for logs.
func (e Event) String() string {
	switch e.Kind {
	case EvPartition, EvHeal:
		return fmt.Sprintf("t=%v %s %v | %v", e.At, e.Kind, e.A, e.B)
	case EvBlockLink, EvUnblockLink:
		return fmt.Sprintf("t=%v %s %s → %s", e.At, e.Kind, e.From, e.To)
	case EvCrash, EvRestart, EvRestartPreserveState:
		return fmt.Sprintf("t=%v %s %s", e.At, e.Kind, e.Target)
	case EvLinkFaults:
		return fmt.Sprintf("t=%v %s %s → %s drop=%.2f dup=%.2f extra=[%v,%v]",
			e.At, e.Kind, e.From, e.To, e.Faults.Drop, e.Faults.Dup, e.Faults.Extra.Min, e.Faults.Extra.Max)
	case EvDefaultFaults:
		return fmt.Sprintf("t=%v %s drop=%.2f dup=%.2f extra=[%v,%v]",
			e.At, e.Kind, e.Faults.Drop, e.Faults.Dup, e.Faults.Extra.Min, e.Faults.Extra.Max)
	default:
		return fmt.Sprintf("t=%v %s", e.At, e.Kind)
	}
}

// Schedule is a declarative fault timeline. Order in the slice is
// irrelevant; events fire in At order.
type Schedule []Event

// sorted returns the events in firing order without mutating s.
func (s Schedule) sorted() Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// stretch scales every event offset by factor (for soak runs that stretch
// scenario durations).
func (s Schedule) stretch(factor float64) Schedule {
	if factor == 1 {
		return s
	}
	out := make(Schedule, len(s))
	copy(out, s)
	for i := range out {
		out[i].At = time.Duration(float64(out[i].At) * factor)
	}
	return out
}

// run applies the schedule on the virtual timeline anchored at start,
// stopping early when stop closes. Applied events are reported through
// logf. It is the scheduler's goroutine body; deterministic given the
// schedule (timer jitter shifts an event by scheduler latency, never
// reorders it: events are applied in At order regardless).
func (s Schedule) run(start time.Time, stop <-chan struct{}, f Fabric, logf func(string, ...any)) {
	for _, ev := range s.sorted() {
		wait := time.Until(start.Add(ev.At))
		if wait > 0 {
			select {
			case <-stop:
				return
			case <-time.After(wait):
			}
		} else {
			select {
			case <-stop:
				return
			default:
			}
		}
		if err := ev.apply(f); err != nil {
			logf("chaos: %v", err)
			continue
		}
		logf("chaos: %s", ev)
	}
}
