package chaos

import (
	"fmt"
	"time"

	"github.com/ares-storage/ares/internal/adaptive"
	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// Env is what a scenario's schedule builder gets to aim faults at: the
// process IDs the runner will actually deploy.
type Env struct {
	// Servers are the members of the initial (template) configuration.
	Servers []types.ProcessID
	// AllServers additionally includes every server of the reconfiguration
	// chain.
	AllServers []types.ProcessID
	// Clients are the client-side processes: workload writers/readers and
	// the per-key reconfigurers.
	Clients []types.ProcessID
}

// WorkloadPhase is one consecutive segment of a scenario's workload window
// with its own value sizing and pacing — the mechanism behind workload-shift
// scenarios, where the interesting adversity is the change itself.
type WorkloadPhase struct {
	// Frac is the phase's share of the run duration, normalized over all
	// phases (1/1/2 splits the window 25/25/50).
	Frac float64
	// ValueBytes pads writer values up to this size; the unique
	// writer/sequence prefix survives the padding, so value-based
	// linearizability checking is unaffected. Zero writes the bare prefix.
	ValueBytes int
	// WritePace and ReadPace insert a sleep between one client's operations
	// (zero = unpaced): hot phases hammer, cold phases trickle.
	WritePace, ReadPace time.Duration
}

// Scenario declares one adversarial execution: a deployment shape, a
// concurrent multi-key workload, an optional reconfiguration walk, and a
// fault schedule running against all of it.
type Scenario struct {
	// Name identifies the scenario in verdicts and CI matrices.
	Name string
	// Description says what adversity the scenario creates.
	Description string
	// Template is the per-key initial configuration; the runner derives
	// each key's ID from it.
	Template cfg.Configuration
	// Chain is the reconfiguration walk each key's register performs
	// during the run (IDs derived per key); empty means no reconfig.
	Chain []cfg.Configuration
	// Keys is the number of independent registers driven concurrently.
	Keys int
	// ReconfigKeys caps how many keys run the Chain walk (0 = every key).
	// High-cardinality scenarios use it to keep the run timeboxed while all
	// keys still exercise keyed routing under the scenario's faults.
	ReconfigKeys int
	// Writers and Readers are the client counts per key.
	Writers, Readers int
	// Duration is the workload window (scaled by Options.Stretch).
	Duration time.Duration
	// Delay is the network's base [d, D] one-way delay.
	Delay transport.DelayRange
	// OpTimeout bounds each operation so faults stall an attempt, not the
	// workload; timed-out writes are recorded as incomplete.
	OpTimeout time.Duration
	// Durable runs the cluster with the keystate durability layer under a
	// temporary data directory: every server journals its mutations, and an
	// EvRestart rebuilds the victim from WAL + snapshot recovery. Without it
	// an EvRestart comes back amnesiac (honest, but quorum-unsafe — a
	// scenario asserting linearizability across a restart must be Durable).
	Durable bool
	// Batching routes simulated delivery through the cross-key envelope
	// coalescing seam (transport.WithSimBatching): concurrent requests to
	// one destination are packed through the real FrameBatch codec before
	// dispatch. Scenarios set it to prove coalescing preserves per-key
	// linearizability under the same faults.
	Batching bool
	// MaxStatesPerKey, when positive, asserts the configuration-lifecycle GC
	// after the run: the per-server (key, config) state entries retained
	// across the cluster, divided by the key count, must not exceed this
	// bound. A reconfiguration-churn scenario sets it well below the
	// ungarbage-collected total (O(walks) states) and above the live window
	// (O(live configs)), so a GC regression flips the verdict.
	MaxStatesPerKey int
	// Phases splits the workload window into consecutive segments with their
	// own value sizing and pacing (see WorkloadPhase); empty keeps the
	// uniform small-value hammer.
	Phases []WorkloadPhase
	// AdaptiveProfiles, when non-nil, runs the telemetry-fed controller
	// against the workload: each key is sampled live and automatically
	// reconfigured to the profile of its current class. Profiles may reuse
	// the template's servers or name additional ones (deployed by the
	// runner). A class without a profile keeps the key where it is.
	AdaptiveProfiles map[adaptive.Class]cfg.Configuration
	// AdaptivePolicy tunes the controller's thresholds and hysteresis; the
	// zero value takes adaptive.Policy defaults (tuned for production
	// cadences — scenarios usually shrink Cooldown and ConfirmWindows).
	AdaptivePolicy adaptive.Policy
	// AdaptiveInterval is the controller tick; zero defaults to 100ms.
	AdaptiveInterval time.Duration
	// Schedule builds the fault timeline for the deployed processes; nil
	// means a fault-free run.
	Schedule func(env Env) Schedule
}

// servers builds n process IDs with a prefix.
func servers(prefix string, n int) []types.ProcessID {
	out := make([]types.ProcessID, n)
	for i := range out {
		out[i] = types.ProcessID(fmt.Sprintf("%s-s%d", prefix, i+1))
	}
	return out
}

// treasTemplate builds a TREAS [n, k] per-key configuration template.
func treasTemplate(prefix string, n, k, delta int) cfg.Configuration {
	return cfg.Configuration{Algorithm: cfg.TREAS, Servers: servers(prefix, n), K: k, Delta: delta}
}

// abdTemplate builds an ABD n-replica per-key configuration template.
func abdTemplate(prefix string, n int) cfg.Configuration {
	return cfg.Configuration{Algorithm: cfg.ABD, Servers: servers(prefix, n)}
}

// abdSubset builds an ABD configuration on the first n of a prefix's `of`
// servers — an adaptive profile that shrinks a key onto a slice of the
// deployment instead of naming new machines.
func abdSubset(prefix string, n, of int) cfg.Configuration {
	return cfg.Configuration{Algorithm: cfg.ABD, Servers: servers(prefix, of)[:n]}
}

// Matrix returns the built-in scenario matrix — the adversarial executions
// CI pins. Every entry finishes in under a second at Stretch 1 and ends in
// a value-based linearizability verdict.
func Matrix() []Scenario {
	return []Scenario{
		{
			Name:        "minority-partition",
			Description: "two of five ABD replicas partitioned away mid-run, then healed; operations must stay live and atomic throughout",
			Template:    abdTemplate("mp", 5),
			Keys:        2, Writers: 2, Readers: 2,
			Duration: 800 * time.Millisecond,
			Delay:    transport.DelayRange{Max: time.Millisecond},
			Schedule: func(env Env) Schedule {
				minority := env.Servers[3:]
				rest := append(append([]types.ProcessID{}, env.Servers[:3]...), env.Clients...)
				return Schedule{
					{At: 200 * time.Millisecond, Kind: EvPartition, A: minority, B: rest},
					{At: 600 * time.Millisecond, Kind: EvHeal, A: minority, B: rest},
				}
			},
		},
		{
			Name:        "majority-partition-heal",
			Description: "clients lose the server majority for a window (operations stall, writes go incomplete), then the partition heals; safety must hold across the stall",
			Template:    abdTemplate("mjp", 5),
			Keys:        2, Writers: 2, Readers: 2,
			Duration:  900 * time.Millisecond,
			Delay:     transport.DelayRange{Max: time.Millisecond},
			OpTimeout: 150 * time.Millisecond,
			Schedule: func(env Env) Schedule {
				majority := env.Servers[:3]
				return Schedule{
					{At: 250 * time.Millisecond, Kind: EvPartition, A: majority, B: env.Clients},
					{At: 550 * time.Millisecond, Kind: EvHeal, A: majority, B: env.Clients},
				}
			},
		},
		{
			Name:        "asymmetric-link",
			Description: "one-way link losses: one client's requests to a server vanish while another server's responses to a second client vanish; quorums must route around both",
			Template:    treasTemplate("asym", 5, 3, 8),
			Keys:        2, Writers: 2, Readers: 2,
			Duration: 800 * time.Millisecond,
			Delay:    transport.DelayRange{Max: time.Millisecond},
			Schedule: func(env Env) Schedule {
				s := Schedule{
					{At: 150 * time.Millisecond, Kind: EvBlockLink, From: env.Clients[0], To: env.Servers[0]},
					{At: 650 * time.Millisecond, Kind: EvUnblockLink, From: env.Clients[0], To: env.Servers[0]},
				}
				if len(env.Clients) > 1 {
					s = append(s,
						Event{At: 150 * time.Millisecond, Kind: EvBlockLink, From: env.Servers[1], To: env.Clients[1]},
						Event{At: 650 * time.Millisecond, Kind: EvUnblockLink, From: env.Servers[1], To: env.Clients[1]},
					)
				}
				return s
			},
		},
		{
			Name: "kill-and-recover-during-write",
			Description: "a TREAS server is killed mid-run with writes in flight and later restarts from WAL + snapshot recovery — " +
				"its volatile state is discarded, acknowledged pre-crash writes must survive from disk, and linearizability is verified across the restart",
			Template: treasTemplate("crw", 5, 3, 8),
			Keys:     2, Writers: 3, Readers: 2,
			Durable:  true,
			Duration: 800 * time.Millisecond,
			Delay:    transport.DelayRange{Max: time.Millisecond},
			Schedule: func(env Env) Schedule {
				victim := env.Servers[len(env.Servers)-1]
				return Schedule{
					{At: 250 * time.Millisecond, Kind: EvCrash, Target: victim},
					{At: 500 * time.Millisecond, Kind: EvRestart, Target: victim},
				}
			},
		},
		{
			Name: "crash-restart-preserve-state",
			Description: "the legacy restart semantics, now explicit: a TREAS server becomes unreachable mid-run and recovers with its " +
				"in-memory state untouched (the process never died) — the amnesia-free control for kill-and-recover-during-write",
			Template: treasTemplate("crp", 5, 3, 8),
			Keys:     2, Writers: 3, Readers: 2,
			Duration: 800 * time.Millisecond,
			Delay:    transport.DelayRange{Max: time.Millisecond},
			Schedule: func(env Env) Schedule {
				victim := env.Servers[len(env.Servers)-1]
				return Schedule{
					{At: 250 * time.Millisecond, Kind: EvCrash, Target: victim},
					{At: 500 * time.Millisecond, Kind: EvRestartPreserveState, Target: victim},
				}
			},
		},
		{
			Name:        "reconfig-under-drop",
			Description: "the configuration sequence walks TREAS [5,3] → ABD 5 → TREAS [7,4] while every link drops 10% of messages",
			Template:    treasTemplate("rud", 5, 3, 8),
			Chain: []cfg.Configuration{
				abdTemplate("rud-b", 5),
				treasTemplate("rud-c", 7, 4, 8),
			},
			Keys: 2, Writers: 2, Readers: 2,
			Duration: time.Second,
			Delay:    transport.DelayRange{Max: time.Millisecond},
			Schedule: func(env Env) Schedule {
				return Schedule{
					{At: 0, Kind: EvDefaultFaults, Faults: transport.LinkFaults{Drop: 0.10}},
					{At: 900 * time.Millisecond, Kind: EvClearFaults},
				}
			},
		},
		{
			Name:        "treas-shard-loss",
			Description: "a TREAS [7,3] register permanently loses k−1 = 2 coded shards to crashes; the remaining five servers still form quorums and decode",
			Template:    treasTemplate("tsl", 7, 3, 8),
			Keys:        2, Writers: 2, Readers: 2,
			Duration: 800 * time.Millisecond,
			Delay:    transport.DelayRange{Max: time.Millisecond},
			Schedule: func(env Env) Schedule {
				return Schedule{
					{At: 250 * time.Millisecond, Kind: EvCrash, Target: env.Servers[5]},
					{At: 400 * time.Millisecond, Kind: EvCrash, Target: env.Servers[6]},
				}
			},
		},
		{
			Name:        "keyed-1k-partition-reconfig",
			Description: "1000 independent keys routed through one keyed service stack while a minority partition opens and heals and 16 keys walk a reconfiguration; every key gets its own linearizability verdict",
			Template:    abdTemplate("k1k", 5),
			Chain: []cfg.Configuration{
				treasTemplate("k1k-b", 5, 3, 8),
			},
			Keys: 1000, ReconfigKeys: 16, Writers: 1, Readers: 1,
			Duration: 600 * time.Millisecond,
			// A wide delay range paces each client's op rate so a thousand
			// concurrent registers stay within a timeboxed run.
			Delay:     transport.DelayRange{Min: 2 * time.Millisecond, Max: 8 * time.Millisecond},
			OpTimeout: 2 * time.Second,
			Schedule: func(env Env) Schedule {
				minority := env.Servers[3:]
				rest := append(append([]types.ProcessID{}, env.Servers[:3]...), env.Clients...)
				return Schedule{
					{At: 150 * time.Millisecond, Kind: EvPartition, A: minority, B: rest},
					{At: 450 * time.Millisecond, Kind: EvHeal, A: minority, B: rest},
				}
			},
		},
		{
			Name: "reconfig-churn-gc",
			Description: "each key's register walks 8 reconfigurations (TREAS↔ABD on one server set) under 5% message drop; " +
				"finalization-driven GC must keep per-server state O(live configs) while every key stays linearizable " +
				"and late calls on retired configurations get redirected, never fresh v0 state",
			Template: treasTemplate("rcg", 5, 3, 4),
			Chain: []cfg.Configuration{
				abdTemplate("rcg", 5),
				treasTemplate("rcg", 5, 3, 4),
				abdTemplate("rcg", 5),
				treasTemplate("rcg", 5, 3, 4),
				abdTemplate("rcg", 5),
				treasTemplate("rcg", 5, 3, 4),
				abdTemplate("rcg", 5),
				treasTemplate("rcg", 5, 3, 4),
			},
			Keys: 3, Writers: 1, Readers: 1,
			Duration:  1500 * time.Millisecond,
			Delay:     transport.DelayRange{Max: time.Millisecond},
			OpTimeout: 400 * time.Millisecond,
			// Without GC a completed 8-walk chain retains ~9 configs ×
			// (DAP + pointer + acceptor) × 5 servers ≈ 130 states per key.
			// The live window is ~15 at rest but spans up to ~3 configs per
			// key when the deadline cuts a walk mid-flight (pending successor
			// + its not-yet-retired predecessor + the tail), ≈ 45–50. The
			// bound sits between that and the no-GC total.
			MaxStatesPerKey: 70,
			Schedule: func(env Env) Schedule {
				return Schedule{
					{At: 100 * time.Millisecond, Kind: EvDefaultFaults, Faults: transport.LinkFaults{Drop: 0.05}},
					{At: 1200 * time.Millisecond, Kind: EvClearFaults},
				}
			},
		},
		{
			Name: "batched-coalescing",
			Description: "64 keys' quorum phases coalesce through shared FrameBatch frames (the TCP writer-path seam mirrored in Simnet) while a minority partition opens and heals; " +
				"cross-key batching and the one-round read fast path must preserve per-key linearizability",
			Template: abdTemplate("bat", 5),
			Keys:     64, Writers: 1, Readers: 2,
			Batching: true,
			Duration: 600 * time.Millisecond,
			Delay:    transport.DelayRange{Max: 2 * time.Millisecond},
			Schedule: func(env Env) Schedule {
				minority := env.Servers[3:]
				rest := append(append([]types.ProcessID{}, env.Servers[:3]...), env.Clients...)
				return Schedule{
					{At: 150 * time.Millisecond, Kind: EvPartition, A: minority, B: rest},
					{At: 450 * time.Millisecond, Kind: EvHeal, A: minority, B: rest},
				}
			},
		},
		{
			Name:        "dup-delay-spike",
			Description: "20% of requests delivered twice plus delay spikes beyond [d, D] for the middle of the run; idempotence and timing assumptions under stress",
			Template:    treasTemplate("dds", 5, 3, 8),
			Keys:        2, Writers: 2, Readers: 2,
			Duration: 800 * time.Millisecond,
			Delay:    transport.DelayRange{Max: time.Millisecond},
			Schedule: func(env Env) Schedule {
				spike := transport.LinkFaults{
					Dup:   0.20,
					Extra: transport.DelayRange{Min: 500 * time.Microsecond, Max: 2 * time.Millisecond},
				}
				return Schedule{
					{At: 200 * time.Millisecond, Kind: EvDefaultFaults, Faults: spike},
					{At: 600 * time.Millisecond, Kind: EvClearFaults},
				}
			},
		},
		{
			Name: "adaptive-mix-flip",
			Description: "the workload flips mid-run from hammering 64B values to trickling 16KiB values; the telemetry controller must move each key " +
				"TREAS→ABD3 for the hot small phase and back to a wide TREAS for the large phase, with linearizability verified across every automatic reconfiguration",
			Template: treasTemplate("amf", 5, 3, 8),
			Keys:     2, Writers: 2, Readers: 2,
			Duration: 1600 * time.Millisecond,
			Delay:    transport.DelayRange{Max: time.Millisecond},
			Phases: []WorkloadPhase{
				{Frac: 1, ValueBytes: 64},
				{Frac: 1, ValueBytes: 16 << 10, WritePace: 10 * time.Millisecond, ReadPace: 10 * time.Millisecond},
			},
			AdaptiveProfiles: map[adaptive.Class]cfg.Configuration{
				adaptive.ClassDefault:   treasTemplate("amf", 5, 3, 8),
				adaptive.ClassSmallHot:  abdSubset("amf", 3, 5),
				adaptive.ClassLargeCold: treasTemplate("amf", 5, 3, 8),
				adaptive.ClassFaulty:    abdTemplate("amf", 5),
			},
			AdaptivePolicy: adaptive.Policy{
				SmallObjectBytes: 512, LargeObjectBytes: 4096, HotOps: 8,
				ConfirmWindows: 2, Cooldown: 150 * time.Millisecond,
			},
			AdaptiveInterval: 80 * time.Millisecond,
			MaxStatesPerKey:  70,
			Schedule: func(env Env) Schedule {
				// A one-way link loss mid-run: quorums route around it in both
				// the narrow ABD and the wide TREAS configurations without
				// inflating the fault signal into a ClassFaulty flip.
				return Schedule{
					{At: 300 * time.Millisecond, Kind: EvBlockLink, From: env.Clients[0], To: env.Servers[0]},
					{At: 700 * time.Millisecond, Kind: EvUnblockLink, From: env.Clients[0], To: env.Servers[0]},
				}
			},
		},
		{
			Name: "adaptive-fault-spike",
			Description: "a steady small-value workload suffers a 25% message-drop spike; the controller must escalate keys to the maximum-redundancy " +
				"ABD 5 profile while the spike lasts and step back down after it clears — availability-driven reconfiguration under the same faults it reacts to",
			Template: treasTemplate("afs", 5, 3, 8),
			Keys:     2, Writers: 2, Readers: 2,
			Duration:  1400 * time.Millisecond,
			Delay:     transport.DelayRange{Max: time.Millisecond},
			OpTimeout: 200 * time.Millisecond,
			Phases: []WorkloadPhase{
				{Frac: 1, ValueBytes: 64},
			},
			AdaptiveProfiles: map[adaptive.Class]cfg.Configuration{
				adaptive.ClassDefault:   treasTemplate("afs", 5, 3, 8),
				adaptive.ClassSmallHot:  abdSubset("afs", 3, 5),
				adaptive.ClassLargeCold: treasTemplate("afs", 5, 3, 8),
				adaptive.ClassFaulty:    abdTemplate("afs", 5),
			},
			AdaptivePolicy: adaptive.Policy{
				SmallObjectBytes: 512, LargeObjectBytes: 4096, HotOps: 8, FaultRatio: 0.15,
				ConfirmWindows: 2, Cooldown: 120 * time.Millisecond,
			},
			AdaptiveInterval: 70 * time.Millisecond,
			MaxStatesPerKey:  70,
			Schedule: func(env Env) Schedule {
				return Schedule{
					{At: 400 * time.Millisecond, Kind: EvDefaultFaults, Faults: transport.LinkFaults{Drop: 0.25}},
					{At: 900 * time.Millisecond, Kind: EvClearFaults},
				}
			},
		},
		{
			Name: "adaptive-size-growth-gc",
			Description: "values flip small→large→small→large across four phases, driving ~4 automatic reconfigurations per key; the controller's churn " +
				"must stay inside the lifecycle-GC envelope — retained per-key state bounded below the keep-everything total while every key stays linearizable",
			Template: abdTemplate("asg", 5),
			Keys:     3, Writers: 1, Readers: 1,
			Duration: 1800 * time.Millisecond,
			Delay:    transport.DelayRange{Max: time.Millisecond},
			Phases: []WorkloadPhase{
				{Frac: 1, ValueBytes: 64},
				{Frac: 1, ValueBytes: 16 << 10, WritePace: 8 * time.Millisecond, ReadPace: 8 * time.Millisecond},
				{Frac: 1, ValueBytes: 64},
				{Frac: 1, ValueBytes: 16 << 10, WritePace: 8 * time.Millisecond, ReadPace: 8 * time.Millisecond},
			},
			AdaptiveProfiles: map[adaptive.Class]cfg.Configuration{
				adaptive.ClassDefault:   abdTemplate("asg", 5),
				adaptive.ClassSmallHot:  abdSubset("asg", 3, 5),
				adaptive.ClassLargeCold: treasTemplate("asg", 5, 3, 8),
				adaptive.ClassFaulty:    abdTemplate("asg", 5),
			},
			AdaptivePolicy: adaptive.Policy{
				SmallObjectBytes: 512, LargeObjectBytes: 4096, HotOps: 8,
				ConfirmWindows: 2, Cooldown: 150 * time.Millisecond,
			},
			AdaptiveInterval: 80 * time.Millisecond,
			// ~4 moves per key retain ≈ 5 configs × 3 services × 5 servers ≈ 75
			// states per key with GC off; the live window is ≈ 15 at rest and up
			// to ≈ 45 with a move mid-flight at the deadline. The bound sits
			// between, so controller churn escaping the GC envelope flips the
			// verdict (reconfig-churn-gc stays the high-churn GC detector).
			MaxStatesPerKey: 55,
			Schedule: func(env Env) Schedule {
				minority := env.Servers[3:]
				rest := append(append([]types.ProcessID{}, env.Servers[:3]...), env.Clients...)
				return Schedule{
					{At: 200 * time.Millisecond, Kind: EvPartition, A: minority, B: rest},
					{At: 400 * time.Millisecond, Kind: EvHeal, A: minority, B: rest},
				}
			},
		},
	}
}

// Find returns the named scenario from the matrix.
func Find(name string) (Scenario, bool) {
	for _, sc := range Matrix() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
