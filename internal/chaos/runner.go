package chaos

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ares-storage/ares/internal/adaptive"
	"github.com/ares-storage/ares/internal/cfg"
	"github.com/ares-storage/ares/internal/core"
	"github.com/ares-storage/ares/internal/history"
	"github.com/ares-storage/ares/internal/keystate"
	"github.com/ares-storage/ares/internal/recon"
	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// Options tunes one chaos run.
type Options struct {
	// Seed drives every probabilistic choice (delay draws, drop/dup
	// sampling). Zero means 1. Override from the environment with
	// SeedFromEnv for replays.
	Seed int64
	// Stretch scales the scenario's duration and schedule offsets
	// (soak runs use > 1). Zero means 1.
	Stretch float64
	// Logf receives progress and applied-event lines; nil discards them.
	Logf func(format string, args ...any)
}

// KeyVerdict is the per-register outcome of a run.
type KeyVerdict struct {
	Key          string   `json:"key"`
	Ops          int      `json:"ops"`
	Incomplete   int      `json:"incomplete"`
	Method       string   `json:"method"`
	Steps        int      `json:"steps,omitempty"`
	Note         string   `json:"note,omitempty"`
	Linearizable bool     `json:"linearizable"`
	Violations   []string `json:"violations,omitempty"`
	// Class is the adaptive controller's final class for the key (adaptive
	// scenarios only).
	Class string `json:"class,omitempty"`
}

// Verdict is the machine-readable outcome of one chaos run: what ran, under
// which seed, and whether every key's history was linearizable.
type Verdict struct {
	Scenario       string  `json:"scenario"`
	Description    string  `json:"description,omitempty"`
	Seed           int64   `json:"seed"`
	Stretch        float64 `json:"stretch"`
	DurationMS     int64   `json:"duration_ms"`
	Ops            int     `json:"ops"`
	OpErrors       int     `json:"op_errors"`
	Incomplete     int     `json:"incomplete"`
	Reconfigs      int     `json:"reconfigs"`
	ReconfigErrors int     `json:"reconfig_errors"`
	// AutoReconfigs counts reconfigurations the adaptive controller applied
	// on its own (telemetry-driven, no scripted chain).
	AutoReconfigs int  `json:"auto_reconfigs,omitempty"`
	Linearizable  bool `json:"linearizable"`
	// ServerStates and RetiredStates account the configuration-lifecycle GC:
	// live (key, config) state entries retained across the cluster's servers
	// at the end of the run, and entries garbage-collected during it.
	// StateBoundExceeded is set when the scenario declares MaxStatesPerKey
	// and the retained states blow it — a GC regression, reported as a
	// failed verdict alongside linearizability.
	ServerStates       int          `json:"server_states"`
	RetiredStates      int64        `json:"retired_states"`
	StateBoundExceeded bool         `json:"state_bound_exceeded,omitempty"`
	Keys               []KeyVerdict `json:"keys"`
}

// Replay renders the command that reproduces this run's adversarial
// conditions exactly: same scenario, same seed, same duration stretch.
func (v Verdict) Replay() string {
	cmd := fmt.Sprintf("ARES_CHAOS_SEED=%d go run ./cmd/ares-bench -chaos -scenario %s", v.Seed, v.Scenario)
	if v.Stretch != 1 {
		cmd += fmt.Sprintf(" -stretch %g", v.Stretch)
	}
	return cmd
}

// SeedFromEnv returns the seed pinned in the ARES_CHAOS_SEED environment
// variable, or def when unset/unparsable — the replay hook every chaos test
// and the -chaos bench suite route their seed through.
func SeedFromEnv(def int64) int64 {
	if s := os.Getenv("ARES_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

// Run executes one scenario: deploy the cluster, start the multi-key
// workload and the background reconfiguration walk, fire the fault
// schedule, and check every key's recorded history for value-based
// linearizability. The returned error covers setup problems only; protocol
// misbehaviour surfaces in the Verdict.
func Run(sc Scenario, opt Options) (Verdict, error) {
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	stretch := opt.Stretch
	if stretch <= 0 {
		stretch = 1
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	duration := time.Duration(float64(sc.Duration) * stretch)
	if duration <= 0 {
		duration = 500 * time.Millisecond
	}
	opTimeout := sc.OpTimeout
	if opTimeout <= 0 {
		opTimeout = 250 * time.Millisecond
	}
	keys := sc.Keys
	if keys <= 0 {
		keys = 1
	}
	writers, readers := sc.Writers, sc.Readers
	if writers <= 0 {
		writers = 1
	}
	if readers <= 0 {
		readers = 1
	}

	// Workload phases: normalize the declared fractions over the (stretched)
	// duration into absolute boundaries, so workers can look up their current
	// phase from elapsed time alone.
	type phaseWindow struct {
		until time.Duration
		WorkloadPhase
	}
	var phases []phaseWindow
	if len(sc.Phases) > 0 {
		total := 0.0
		for _, p := range sc.Phases {
			if p.Frac > 0 {
				total += p.Frac
			} else {
				total++
			}
		}
		acc := time.Duration(0)
		for _, p := range sc.Phases {
			f := p.Frac
			if f <= 0 {
				f = 1
			}
			acc += time.Duration(float64(duration) * f / total)
			phases = append(phases, phaseWindow{until: acc, WorkloadPhase: p})
		}
	}
	phaseAt := func(elapsed time.Duration) WorkloadPhase {
		for _, w := range phases {
			if elapsed < w.until {
				return w.WorkloadPhase
			}
		}
		if len(phases) > 0 {
			return phases[len(phases)-1].WorkloadPhase
		}
		return WorkloadPhase{}
	}
	// padValue grows a unique op value to the current phase's size; the
	// prefix keeps it unique, so value-based history checking still works.
	padValue := func(prefix string, n int) types.Value {
		if n <= len(prefix) {
			return types.Value(prefix)
		}
		return types.Value(prefix + "/" + strings.Repeat(".", n-len(prefix)-1))
	}

	netOpts := []transport.SimnetOption{
		transport.WithDelayRange(sc.Delay.Min, sc.Delay.Max),
		transport.WithSeed(seed),
	}
	if sc.Batching {
		netOpts = append(netOpts, transport.WithSimBatching())
	}
	net := transport.NewSimnet(netOpts...)
	defer net.Close()

	root := sc.Template
	root.ID = cfg.ID("chaos/" + sc.Name + "/root")
	cluster, err := core.NewCluster(root, net)
	if err != nil {
		return Verdict{}, fmt.Errorf("chaos: deploying %s: %w", sc.Name, err)
	}
	if sc.Durable {
		// Durable scenarios journal under a run-scoped directory so an
		// EvRestart recovers from disk. Fsync off: the run survives process
		// kills (what EvRestart models), not machine crashes, and chaos runs
		// are timeboxed. Enable before chain hosts join so every server —
		// current and future — journals.
		dir, err := os.MkdirTemp("", "ares-chaos-"+sc.Name+"-*")
		if err != nil {
			return Verdict{}, fmt.Errorf("chaos: data dir for %s: %w", sc.Name, err)
		}
		defer os.RemoveAll(dir)
		if err := cluster.EnableDurability(dir, keystate.WithFsync(false)); err != nil {
			return Verdict{}, fmt.Errorf("chaos: enabling durability for %s: %w", sc.Name, err)
		}
	}
	for _, tmpl := range sc.Chain {
		for _, s := range tmpl.Servers {
			cluster.AddHost(s)
		}
	}
	// adaptiveClasses iterates profile classes in a fixed order so host
	// deployment and env construction are deterministic under a seed.
	adaptiveClasses := []adaptive.Class{adaptive.ClassDefault, adaptive.ClassSmallHot, adaptive.ClassLargeCold, adaptive.ClassFaulty}
	if sc.AdaptiveProfiles != nil {
		for _, class := range adaptiveClasses {
			for _, s := range sc.AdaptiveProfiles[class].Servers {
				cluster.AddHost(s)
			}
		}
	}
	fabric := Fabric{
		Net: net,
		Restart: func(id types.ProcessID) error {
			_, err := cluster.RestartHost(id)
			return err
		},
	}

	// reconfigures reports whether key k runs the reconfiguration walk:
	// all chain scenarios do unless ReconfigKeys caps the walk to the first
	// N keys (the timebox for high-cardinality scenarios, where the point
	// of the remaining keys is keyed routing, not a thousand walks).
	reconfigures := func(k int) bool {
		if len(sc.Chain) == 0 {
			return false
		}
		return sc.ReconfigKeys <= 0 || k < sc.ReconfigKeys
	}

	// Deterministic process naming, so schedules can aim at clients.
	keyName := func(k int) string { return fmt.Sprintf("k%d", k) }
	var clients []types.ProcessID
	writerID := func(k, i int) types.ProcessID { return types.ProcessID(fmt.Sprintf("cw%d-%s", i, keyName(k))) }
	readerID := func(k, i int) types.ProcessID { return types.ProcessID(fmt.Sprintf("cr%d-%s", i, keyName(k))) }
	reconID := func(k int) types.ProcessID { return types.ProcessID("g-" + keyName(k)) }
	autoReconID := func(k int) types.ProcessID { return types.ProcessID("ag-" + keyName(k)) }
	for k := 0; k < keys; k++ {
		for i := 0; i < writers; i++ {
			clients = append(clients, writerID(k, i))
		}
		for i := 0; i < readers; i++ {
			clients = append(clients, readerID(k, i))
		}
		if reconfigures(k) {
			clients = append(clients, reconID(k))
		}
		if sc.AdaptiveProfiles != nil {
			clients = append(clients, autoReconID(k))
		}
	}
	env := Env{
		Servers:    append([]types.ProcessID(nil), sc.Template.Servers...),
		AllServers: append([]types.ProcessID(nil), sc.Template.Servers...),
		Clients:    clients,
	}
	for _, tmpl := range sc.Chain {
		env.AllServers = append(env.AllServers, tmpl.Servers...)
	}
	if sc.AdaptiveProfiles != nil {
		for _, class := range adaptiveClasses {
			env.AllServers = append(env.AllServers, sc.AdaptiveProfiles[class].Servers...)
		}
	}
	var schedule Schedule
	if sc.Schedule != nil {
		schedule = sc.Schedule(env).stretch(stretch)
	}

	// One register per key, each with its own configuration chain — all
	// derived from a single template installed once. Per-key server state
	// materializes lazily on the keys' first operations (keyed routing), so
	// scenario setup is O(1) in the key count.
	tmpl := sc.Template
	tmpl.ID = cfg.ID(fmt.Sprintf("chaos/%s/%s/c0", sc.Name, cfg.KeyPlaceholder))
	if err := cluster.InstallConfiguration(tmpl); err != nil {
		return Verdict{}, fmt.Errorf("chaos: installing template for %s: %w", sc.Name, err)
	}
	keyConf := func(k int) cfg.Configuration {
		return tmpl.ForKey(keyName(k))
	}
	recorders := make([]*history.Recorder, keys)
	for k := 0; k < keys; k++ {
		recorders[k] = history.NewRecorder()
	}

	ctx, cancel := context.WithTimeout(context.Background(), duration+15*time.Second)
	defer cancel()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var opErrs, reconfigs, reconfigErrs, autoReconfigs atomic.Int64

	reconTimeout := 4 * opTimeout
	if reconTimeout < time.Second {
		reconTimeout = time.Second
	}

	// Adaptive plumbing: the workload records per-key telemetry into the
	// sampler; the controller drains it each tick and reconfigures keys
	// through their own reconfiguration clients.
	var sampler *adaptive.Sampler
	var autoRecon map[string]*recon.Client
	var autoGen atomic.Int64
	if sc.AdaptiveProfiles != nil {
		sampler = adaptive.NewSampler()
		autoRecon = make(map[string]*recon.Client, keys)
	}

	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	// pace sleeps the current phase's inter-op delay, cut short by stop.
	pace := func(d time.Duration) {
		if d <= 0 {
			return
		}
		select {
		case <-stop:
		case <-time.After(d):
		}
	}
	// setupFail aborts a partially-launched run: without the close, already
	// started workload goroutines would spin on instant ctx failures for
	// the life of the process.
	setupFail := func(err error) (Verdict, error) {
		close(stop)
		wg.Wait()
		return Verdict{}, err
	}

	workStart := time.Now()
	for k := 0; k < keys; k++ {
		k := k
		key := keyName(k)
		rec := recorders[k]
		conf := keyConf(k)
		// opSink attributes round/retry telemetry to the key (adaptive runs).
		opSink := func(c *core.Client) {
			if sampler == nil {
				return
			}
			c.SetOpSink(func(st core.OpStats) {
				if st.Read {
					sampler.RecordReadRounds(key, st.Rounds, st.FastPath)
				}
				sampler.RecordRetries(key, st.Retries)
			})
		}
		for i := 0; i < writers; i++ {
			id := writerID(k, i)
			client, err := cluster.NewClientFor(id, conf)
			if err != nil {
				return setupFail(err)
			}
			opSink(client)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for seq := 0; !stopped(); seq++ {
					ph := phaseAt(time.Since(workStart))
					v := padValue(fmt.Sprintf("%s/%d", id, seq), ph.ValueBytes)
					p := rec.BeginWrite(id, v)
					opCtx, opCancel := context.WithTimeout(ctx, opTimeout)
					opStart := time.Now()
					t, err := client.Write(opCtx, v)
					opCancel()
					if err != nil {
						p.Fail() // unacknowledged: may or may not have taken effect
						opErrs.Add(1)
						if sampler != nil {
							sampler.RecordFailure(key)
						}
						continue
					}
					p.Done(t, v)
					if sampler != nil {
						sampler.RecordWrite(key, len(v), time.Since(opStart))
					}
					pace(ph.WritePace)
				}
			}()
		}
		for i := 0; i < readers; i++ {
			id := readerID(k, i)
			client, err := cluster.NewClientFor(id, conf)
			if err != nil {
				return setupFail(err)
			}
			opSink(client)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stopped() {
					ph := phaseAt(time.Since(workStart))
					p := rec.BeginRead(id)
					opCtx, opCancel := context.WithTimeout(ctx, opTimeout)
					opStart := time.Now()
					pair, err := client.Read(opCtx)
					opCancel()
					if err != nil {
						p.Fail()
						opErrs.Add(1)
						if sampler != nil {
							sampler.RecordFailure(key)
						}
						continue
					}
					p.Done(pair.Tag, pair.Value)
					if sampler != nil {
						sampler.RecordRead(key, len(pair.Value), time.Since(opStart))
					}
					pace(ph.ReadPace)
				}
			}()
		}
		if sc.AdaptiveProfiles != nil {
			g, err := cluster.NewReconfigurerFor(autoReconID(k), conf, recon.Options{DirectTransfer: true})
			if err != nil {
				return setupFail(err)
			}
			autoRecon[key] = g
		}
		if reconfigures(k) {
			g, err := cluster.NewReconfigurerFor(reconID(k), conf, recon.Options{DirectTransfer: true})
			if err != nil {
				return setupFail(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				step := duration / time.Duration(len(sc.Chain)+1)
				for ci, tmpl := range sc.Chain {
					select {
					case <-stop:
						return
					case <-time.After(step):
					}
					target := tmpl
					target.ID = cfg.ID(fmt.Sprintf("chaos/%s/%s/c%d", sc.Name, keyName(k), ci+1))
					for attempt := 0; attempt < 10; attempt++ {
						opCtx, opCancel := context.WithTimeout(ctx, reconTimeout)
						_, err := g.Reconfig(opCtx, target)
						opCancel()
						// A retry after a partially-failed attempt may find
						// the proposal already in the sequence (consensus and
						// put-config landed; a later phase was cut off). The
						// configuration is reachable — readers/writers and
						// the next reconfig finish the propagation — so the
						// walk moves on.
						if err == nil || errors.Is(err, recon.ErrSameConfiguration) {
							reconfigs.Add(1)
							logf("chaos: %s: key %s reconfigured to %s", sc.Name, keyName(k), target.ID)
							break
						}
						reconfigErrs.Add(1)
						logf("chaos: %s: key %s reconfig to %s attempt %d: %v", sc.Name, keyName(k), target.ID, attempt+1, err)
						if stopped() {
							return
						}
					}
				}
			}()
		}
	}

	// The controller closes the loop: drain telemetry, classify, and move
	// confirmed keys to their class profile through that key's own
	// reconfiguration client — exactly the walk the scripted Chain performs,
	// but decided by the live workload.
	var controller *adaptive.Controller
	if sc.AdaptiveProfiles != nil {
		apply := func(applyCtx context.Context, key string, class adaptive.Class) error {
			profile, ok := sc.AdaptiveProfiles[class]
			if !ok || len(profile.Servers) == 0 {
				return nil // class accepted; no profile to move to
			}
			g := autoRecon[key]
			if g == nil {
				return nil
			}
			target := profile
			target.ID = cfg.ID(fmt.Sprintf("chaos/%s/%s/auto%d", sc.Name, key, autoGen.Add(1)))
			opCtx, opCancel := context.WithTimeout(applyCtx, reconTimeout)
			defer opCancel()
			_, err := g.Reconfig(opCtx, target)
			// Same tolerance as the scripted walk: a retried attempt may find
			// the proposal already decided — the configuration is reachable.
			if err == nil || errors.Is(err, recon.ErrSameConfiguration) {
				autoReconfigs.Add(1)
				logf("chaos: %s: key %s auto-reconfigured to %s (%s)", sc.Name, key, target.ID, class)
				return nil
			}
			reconfigErrs.Add(1)
			return err
		}
		controller = adaptive.NewController(sampler, sc.AdaptivePolicy, apply,
			adaptive.WithLogf(func(format string, args ...any) { logf("chaos: "+sc.Name+": "+format, args...) }))
		interval := sc.AdaptiveInterval
		if interval <= 0 {
			interval = 100 * time.Millisecond
		}
		controller.Start(ctx, interval)
	}

	start := time.Now()
	schedDone := make(chan struct{})
	go func() {
		defer close(schedDone)
		schedule.run(start, stop, fabric, logf)
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	<-schedDone
	if controller != nil {
		controller.Stop()
	}

	// Lifecycle GC accounting. Finalization gossip is asynchronous, so give
	// the cluster a short window to settle onto the bound before reading the
	// retained-state count.
	states := cluster.MaterializedStates()
	if sc.MaxStatesPerKey > 0 {
		settleDeadline := time.Now().Add(2 * time.Second)
		for states > sc.MaxStatesPerKey*keys && time.Now().Before(settleDeadline) {
			time.Sleep(25 * time.Millisecond)
			states = cluster.MaterializedStates()
		}
	}

	verdict := Verdict{
		Scenario:       sc.Name,
		Description:    sc.Description,
		Seed:           seed,
		Stretch:        stretch,
		DurationMS:     time.Since(start).Milliseconds(),
		OpErrors:       int(opErrs.Load()),
		Reconfigs:      int(reconfigs.Load()),
		ReconfigErrors: int(reconfigErrs.Load()),
		AutoReconfigs:  int(autoReconfigs.Load()),
		Linearizable:   true,
		ServerStates:   states,
		RetiredStates:  cluster.RetiredStates(),
	}
	if sc.MaxStatesPerKey > 0 && states > sc.MaxStatesPerKey*keys {
		verdict.StateBoundExceeded = true
	}
	for k := 0; k < keys; k++ {
		ops := recorders[k].Ops()
		rep := history.Verify(ops, history.CheckOptions{})
		// Report the executed workload, not the checker's (soundly pruned)
		// view: the verdict must reflect how adversarial the run was.
		incomplete := 0
		for _, op := range ops {
			if op.Incomplete {
				incomplete++
			}
		}
		kv := KeyVerdict{
			Key:          keyName(k),
			Ops:          len(ops),
			Incomplete:   incomplete,
			Method:       string(rep.Method),
			Steps:        rep.Steps,
			Note:         rep.Note,
			Linearizable: rep.Linearizable,
		}
		if controller != nil {
			kv.Class = controller.Class(keyName(k)).String()
		}
		for _, viol := range rep.Violations {
			kv.Violations = append(kv.Violations, viol.Error())
		}
		verdict.Ops += len(ops)
		verdict.Incomplete += incomplete
		if !rep.Linearizable {
			verdict.Linearizable = false
		}
		verdict.Keys = append(verdict.Keys, kv)
	}
	logf("chaos: %s: %d ops (%d incomplete, %d op errors, %d reconfigs, %d auto) linearizable=%v states=%d retired=%d seed=%d",
		sc.Name, verdict.Ops, verdict.Incomplete, verdict.OpErrors, verdict.Reconfigs, verdict.AutoReconfigs,
		verdict.Linearizable, verdict.ServerStates, verdict.RetiredStates, seed)
	return verdict, nil
}
