package workload

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

// Store is the multi-object surface a MultiDriver exercises — satisfied by
// the public ares.ObjectStore and by test fakes.
type Store interface {
	Put(ctx context.Context, key string, v types.Value) error
	Get(ctx context.Context, key string) (types.Value, error)
}

// BatchStore is a Store that also supports batched operations; the driver
// uses the batch entry points when BatchSize > 1.
type BatchStore interface {
	Store
	MultiPut(ctx context.Context, kv map[string]types.Value) error
	MultiGet(ctx context.Context, keys ...string) (map[string]types.Value, error)
}

// KeyChooser selects the next key index for one worker. Implementations
// are not safe for concurrent use: give each worker its own chooser.
type KeyChooser interface {
	Next() int
}

// UniformChooser draws keys uniformly from [0, n).
type UniformChooser struct {
	n   int
	rng *rand.Rand
}

// NewUniformChooser returns a uniform chooser over n keys.
func NewUniformChooser(n int, seed int64) *UniformChooser {
	if n < 1 {
		n = 1
	}
	return &UniformChooser{n: n, rng: rand.New(rand.NewSource(seed))}
}

// Next implements KeyChooser.
func (u *UniformChooser) Next() int { return u.rng.Intn(u.n) }

// ZipfianChooser draws keys from the YCSB-style zipfian distribution over
// [0, n): key 0 is the hottest, with skew parameter theta in (0, 1) —
// theta 0.99 is the YCSB default. It implements Gray et al.'s rejection-free
// quick zipfian ("Quickly generating billion-record synthetic databases"),
// which is also the generator YCSB itself ships.
type ZipfianChooser struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

// NewZipfianChooser returns a zipfian chooser over n keys with the given
// theta. Theta values outside (0, 1) are clamped to the YCSB default 0.99.
func NewZipfianChooser(n int, theta float64, seed int64) *ZipfianChooser {
	if n < 1 {
		n = 1
	}
	if theta <= 0 || theta >= 1 {
		theta = 0.99
	}
	z := &ZipfianChooser{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zeta(n, theta),
		rng:   rand.New(rand.NewSource(seed)),
	}
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements KeyChooser.
func (z *ZipfianChooser) Next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// MultiStats aggregates a multi-key driver run.
type MultiStats struct {
	Stats
	// Batches counts the batched MultiPut/MultiGet calls issued (zero when
	// the driver runs key-at-a-time).
	Batches int
	// KeysTouched counts the distinct keys operated on.
	KeysTouched int
}

// MultiDriver runs a closed-loop YCSB-style workload over a multi-object
// store: each worker repeatedly picks keys (uniform or zipfian), then
// issues a read or a write according to WriteRatio — one key at a time, or
// in batches of BatchSize through MultiGet/MultiPut when the store supports
// them.
type MultiDriver struct {
	Workers    int
	WriteRatio float64
	Duration   time.Duration
	ValueSize  int
	Keys       int
	// Theta > 0 selects the zipfian distribution with that skew; zero (or
	// out-of-range) values select the uniform distribution.
	Theta float64
	// BatchSize > 1 issues operations in batches of that many distinct keys
	// through the store's MultiGet/MultiPut; the store must then implement
	// BatchStore.
	BatchSize int
	Seed      int64
	// OnLatency, when set, observes every successful operation's latency; a
	// batched call contributes one sample covering the whole batch. It must
	// be safe for concurrent use.
	OnLatency func(write bool, d time.Duration)
}

// chooser builds the per-worker key chooser.
func (d MultiDriver) chooser(worker int) KeyChooser {
	seed := d.Seed + int64(worker)*7919
	if d.Theta > 0 {
		return NewZipfianChooser(d.Keys, d.Theta, seed)
	}
	return NewUniformChooser(d.Keys, seed)
}

// Key renders the canonical key name for index i.
func Key(i int) string { return fmt.Sprintf("key-%06d", i) }

// Run drives the store until Duration elapses or ctx is cancelled, and
// returns aggregate stats.
func (d MultiDriver) Run(ctx context.Context, store Store) (MultiStats, error) {
	if d.Workers < 1 {
		return MultiStats{}, fmt.Errorf("workload: %d workers", d.Workers)
	}
	if d.Keys < 1 {
		return MultiStats{}, fmt.Errorf("workload: key space of %d", d.Keys)
	}
	batcher, _ := store.(BatchStore)
	if d.BatchSize > 1 && batcher == nil {
		return MultiStats{}, fmt.Errorf("workload: batch size %d but store lacks MultiPut/MultiGet", d.BatchSize)
	}
	runCtx := ctx
	var cancel context.CancelFunc
	if d.Duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, d.Duration)
		defer cancel()
	}

	var (
		mu      sync.Mutex
		total   MultiStats
		touched = make(map[int]bool)
		wg      sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < d.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var (
				keys = d.chooser(w)
				gen  = NewValueGenerator(d.ValueSize, d.Seed+int64(w))
				// The write-decision stream mixes in a constant so it never
				// shares a seed with the worker's key chooser (worker 0's
				// otherwise would, locking write decisions to key choice).
				rng     = rand.New(rand.NewSource(d.Seed ^ 0x9e3779b9 ^ int64(w)<<16))
				local   MultiStats
				localKs = make(map[int]bool)
			)
			for seq := 0; runCtx.Err() == nil; seq++ {
				write := rng.Float64() < d.WriteRatio
				if d.BatchSize > 1 {
					d.runBatch(runCtx, batcher, keys, gen, seq, write, &local, localKs)
				} else {
					d.runSingle(runCtx, store, keys, gen, seq, write, &local, localKs)
				}
			}
			mu.Lock()
			total.Reads += local.Reads
			total.Writes += local.Writes
			total.ReadErrs += local.ReadErrs
			total.WriteErrs += local.WriteErrs
			total.Batches += local.Batches
			for k := range localKs {
				touched[k] = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	total.Elapsed = time.Since(start)
	total.KeysTouched = len(touched)
	return total, nil
}

// runSingle issues one key-at-a-time operation.
func (d MultiDriver) runSingle(ctx context.Context, store Store, keys KeyChooser, gen *ValueGenerator, seq int, write bool, local *MultiStats, touched map[int]bool) {
	idx := keys.Next()
	touched[idx] = true
	key := Key(idx)
	opStart := time.Now()
	if write {
		if err := store.Put(ctx, key, gen.Next(seq)); err != nil {
			if ctx.Err() == nil {
				local.WriteErrs++
			}
			return
		}
		local.Writes++
	} else {
		if _, err := store.Get(ctx, key); err != nil {
			if ctx.Err() == nil {
				local.ReadErrs++
			}
			return
		}
		local.Reads++
	}
	if d.OnLatency != nil {
		d.OnLatency(write, time.Since(opStart))
	}
}

// partialBatchError is the shape of a batch store's partial-failure error
// (ares.BatchError satisfies it): only the named keys failed, the rest of
// the batch completed. Matched structurally so this package needs no
// dependency on the public API.
type partialBatchError interface {
	error
	FailedKeys() []string
}

// batchFailures splits a batch error into (failed, succeeded) operation
// counts over a batch of size n. A partial-failure error charges only the
// keys it names; any other error charges the whole batch.
func batchFailures(err error, n int) (failed, succeeded int) {
	var pe partialBatchError
	if errors.As(err, &pe) {
		failed = len(pe.FailedKeys())
		if failed > n {
			failed = n
		}
		return failed, n - failed
	}
	return n, 0
}

// runBatch issues one MultiPut/MultiGet over BatchSize distinct keys.
func (d MultiDriver) runBatch(ctx context.Context, store BatchStore, keys KeyChooser, gen *ValueGenerator, seq int, write bool, local *MultiStats, touched map[int]bool) {
	picked := make([]string, 0, d.BatchSize)
	seen := make(map[int]bool, d.BatchSize)
	for len(picked) < d.BatchSize && len(seen) < d.Keys {
		idx := keys.Next()
		if seen[idx] {
			continue
		}
		seen[idx] = true
		touched[idx] = true
		picked = append(picked, Key(idx))
	}
	opStart := time.Now()
	var err error
	if write {
		kv := make(map[string]types.Value, len(picked))
		for i, k := range picked {
			kv[k] = gen.Next(seq*d.BatchSize + i)
		}
		err = store.MultiPut(ctx, kv)
	} else {
		_, err = store.MultiGet(ctx, picked...)
	}
	if err != nil {
		if ctx.Err() != nil {
			return
		}
		// A partial failure still completed (and counts) the other keys;
		// its latency is failure-dominated, so no sample is recorded.
		failed, succeeded := batchFailures(err, len(picked))
		if write {
			local.WriteErrs += failed
			local.Writes += succeeded
		} else {
			local.ReadErrs += failed
			local.Reads += succeeded
		}
		local.Batches++
		return
	}
	if write {
		local.Writes += len(picked)
	} else {
		local.Reads += len(picked)
	}
	local.Batches++
	if d.OnLatency != nil {
		d.OnLatency(write, time.Since(opStart))
	}
}
