package workload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

// fakeStore is an in-memory Store/BatchStore that counts calls and can fail
// a chosen key.
type fakeStore struct {
	mu        sync.Mutex
	data      map[string]types.Value
	puts      int
	gets      int
	multiPuts int
	multiGets int
	failKey   string
}

func newFakeStore() *fakeStore {
	return &fakeStore{data: make(map[string]types.Value)}
}

func (f *fakeStore) Put(ctx context.Context, key string, v types.Value) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if key == f.failKey {
		return errors.New("injected")
	}
	f.puts++
	f.data[key] = v
	return nil
}

func (f *fakeStore) Get(ctx context.Context, key string) (types.Value, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if key == f.failKey {
		return nil, errors.New("injected")
	}
	f.gets++
	return f.data[key], nil
}

func (f *fakeStore) MultiPut(ctx context.Context, kv map[string]types.Value) error {
	f.mu.Lock()
	f.multiPuts++
	f.mu.Unlock()
	for k, v := range kv {
		if err := f.Put(ctx, k, v); err != nil {
			return err
		}
	}
	return nil
}

func (f *fakeStore) MultiGet(ctx context.Context, keys ...string) (map[string]types.Value, error) {
	f.mu.Lock()
	f.multiGets++
	f.mu.Unlock()
	out := make(map[string]types.Value, len(keys))
	for _, k := range keys {
		v, err := f.Get(ctx, k)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

func TestUniformChooserCoversKeySpace(t *testing.T) {
	t.Parallel()
	u := NewUniformChooser(8, 1)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		k := u.Next()
		if k < 0 || k >= 8 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) != 8 {
		t.Fatalf("uniform chooser visited %d/8 keys", len(seen))
	}
}

func TestZipfianChooserSkewAndRange(t *testing.T) {
	t.Parallel()
	const n, draws = 100, 20000
	z := NewZipfianChooser(n, 0.99, 7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k < 0 || k >= n {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Key 0 must be the hottest by a wide margin, and the head must
	// dominate: the top 10 keys of a theta=0.99 zipfian carry well over
	// half the mass.
	var head int
	for _, c := range counts[:10] {
		head += c
	}
	if head < draws/2 {
		t.Fatalf("top-10 keys drew %d/%d operations; distribution not skewed", head, draws)
	}
	if counts[0] < counts[n-1] {
		t.Fatalf("tail key hotter than head: %d vs %d", counts[n-1], counts[0])
	}
}

func TestZipfianChooserDeterministic(t *testing.T) {
	t.Parallel()
	a := NewZipfianChooser(50, 0.99, 3)
	b := NewZipfianChooser(50, 0.99, 3)
	for i := 0; i < 100; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

func TestMultiDriverMixAndKeyAccounting(t *testing.T) {
	t.Parallel()
	store := newFakeStore()
	d := MultiDriver{
		Workers: 3, WriteRatio: 0.5, Duration: 50 * time.Millisecond,
		ValueSize: 16, Keys: 16, Seed: 1,
	}
	stats, err := d.Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reads == 0 || stats.Writes == 0 {
		t.Fatalf("mix not exercised: %+v", stats)
	}
	if stats.KeysTouched < 2 || stats.KeysTouched > 16 {
		t.Fatalf("KeysTouched = %d", stats.KeysTouched)
	}
	if stats.Batches != 0 {
		t.Fatalf("key-at-a-time run recorded %d batches", stats.Batches)
	}
}

func TestMultiDriverBatchedUsesBatchStore(t *testing.T) {
	t.Parallel()
	store := newFakeStore()
	var latencies int
	var mu sync.Mutex
	d := MultiDriver{
		Workers: 2, WriteRatio: 0.5, Duration: 50 * time.Millisecond,
		ValueSize: 16, Keys: 64, BatchSize: 8, Seed: 2,
		OnLatency: func(write bool, _ time.Duration) {
			mu.Lock()
			latencies++
			mu.Unlock()
		},
	}
	stats, err := d.Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batches == 0 {
		t.Fatal("no batches issued")
	}
	store.mu.Lock()
	mp, mg := store.multiPuts, store.multiGets
	store.mu.Unlock()
	if mp+mg != stats.Batches {
		t.Fatalf("store saw %d batch calls, stats say %d", mp+mg, stats.Batches)
	}
	if stats.Ops() < stats.Batches {
		t.Fatalf("ops %d < batches %d", stats.Ops(), stats.Batches)
	}
	mu.Lock()
	defer mu.Unlock()
	if latencies != stats.Batches {
		t.Fatalf("latency hook fired %d times for %d batches", latencies, stats.Batches)
	}
}

func TestMultiDriverBatchRequiresBatchStore(t *testing.T) {
	t.Parallel()
	// A Store-only implementation must be rejected when batching is asked for.
	plain := struct{ Store }{newFakeStore()}
	d := MultiDriver{Workers: 1, Keys: 4, BatchSize: 4, Duration: time.Millisecond}
	if _, err := d.Run(context.Background(), plain); err == nil {
		t.Fatal("batched run over non-batch store accepted")
	}
}

func TestMultiDriverZipfianConcentratesLoad(t *testing.T) {
	t.Parallel()
	store := newFakeStore()
	d := MultiDriver{
		Workers: 2, WriteRatio: 0.2, Duration: 50 * time.Millisecond,
		ValueSize: 8, Keys: 1000, Theta: 0.99, Seed: 3,
	}
	stats, err := d.Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ops() == 0 {
		t.Fatal("no operations")
	}
	// With theta=0.99 over 1000 keys the working set stays far below the
	// key space.
	if stats.KeysTouched > stats.Ops() {
		t.Fatalf("touched %d keys in %d ops", stats.KeysTouched, stats.Ops())
	}
}

func TestMultiDriverErrorAccounting(t *testing.T) {
	t.Parallel()
	store := newFakeStore()
	store.failKey = Key(0)
	d := MultiDriver{
		Workers: 1, WriteRatio: 1.0, Duration: 30 * time.Millisecond,
		ValueSize: 8, Keys: 2, Seed: 4,
	}
	stats, err := d.Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WriteErrs == 0 {
		t.Fatal("failing key produced no write errors")
	}
}

// fakePartialError mimics ares.BatchError: a batch error naming only the
// keys that failed.
type fakePartialError struct{ keys []string }

func (e *fakePartialError) Error() string        { return "partial failure" }
func (e *fakePartialError) FailedKeys() []string { return e.keys }

// partialStore fails exactly one key of every MultiPut with a
// partial-failure error.
type partialStore struct {
	*fakeStore
}

func (p *partialStore) MultiPut(ctx context.Context, kv map[string]types.Value) error {
	var victim string
	for k := range kv {
		victim = k
		break
	}
	for k, v := range kv {
		if k == victim {
			continue
		}
		if err := p.Put(ctx, k, v); err != nil {
			return err
		}
	}
	return &fakePartialError{keys: []string{victim}}
}

func TestMultiDriverPartialBatchFailureAccounting(t *testing.T) {
	t.Parallel()
	store := &partialStore{fakeStore: newFakeStore()}
	const batch = 8
	d := MultiDriver{
		Workers: 1, WriteRatio: 1.0, Duration: 30 * time.Millisecond,
		ValueSize: 8, Keys: 64, BatchSize: batch, Seed: 5,
	}
	stats, err := d.Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batches == 0 {
		t.Fatal("no batches issued")
	}
	// Each batch fails exactly one key and completes the other seven.
	if stats.WriteErrs != stats.Batches {
		t.Fatalf("WriteErrs = %d for %d partial batches, want one per batch", stats.WriteErrs, stats.Batches)
	}
	if want := stats.Batches * (batch - 1); stats.Writes != want {
		t.Fatalf("Writes = %d, want %d (the non-failed keys of each batch)", stats.Writes, want)
	}
}

func TestBatchFailuresTotalVsPartial(t *testing.T) {
	t.Parallel()
	if f, s := batchFailures(errors.New("boom"), 16); f != 16 || s != 0 {
		t.Fatalf("opaque error: failed=%d succeeded=%d", f, s)
	}
	if f, s := batchFailures(&fakePartialError{keys: []string{"a", "b"}}, 16); f != 2 || s != 14 {
		t.Fatalf("partial error: failed=%d succeeded=%d", f, s)
	}
	// A wrapped partial error still matches.
	wrapped := fmt.Errorf("outer: %w", &fakePartialError{keys: []string{"a"}})
	if f, s := batchFailures(wrapped, 4); f != 1 || s != 3 {
		t.Fatalf("wrapped partial error: failed=%d succeeded=%d", f, s)
	}
}

func TestMultiDriverValidation(t *testing.T) {
	t.Parallel()
	if _, err := (MultiDriver{Workers: 0, Keys: 1}).Run(context.Background(), newFakeStore()); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := (MultiDriver{Workers: 1, Keys: 0}).Run(context.Background(), newFakeStore()); err == nil {
		t.Fatal("empty key space accepted")
	}
}
