package workload

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

func TestValueGeneratorSizeAndMarker(t *testing.T) {
	t.Parallel()
	g := NewValueGenerator(128, 42)
	v := g.Next(7)
	if len(v) != 128 {
		t.Fatalf("len = %d", len(v))
	}
	if !strings.HasPrefix(string(v), "#00000007#") {
		t.Fatalf("marker missing: %q", v[:16])
	}
}

func TestValueGeneratorDeterministic(t *testing.T) {
	t.Parallel()
	a := NewValueGenerator(64, 1).Next(0)
	b := NewValueGenerator(64, 1).Next(0)
	if !a.Equal(b) {
		t.Fatal("same seed produced different values")
	}
	c := NewValueGenerator(64, 2).Next(0)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical values")
	}
}

func TestValueGeneratorTinyValues(t *testing.T) {
	t.Parallel()
	g := NewValueGenerator(4, 1)
	v := g.Next(123456)
	if len(v) != 4 {
		t.Fatalf("len = %d", len(v))
	}
}

func TestValueGeneratorConcurrent(t *testing.T) {
	t.Parallel()
	g := NewValueGenerator(32, 9)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if len(g.Next(j)) != 32 {
					t.Error("wrong size")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// fakeClient counts operations and can inject failures.
type fakeClient struct {
	mu       sync.Mutex
	writes   int
	reads    int
	failNext bool
}

func (f *fakeClient) WriteValue(ctx context.Context, v types.Value) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failNext {
		f.failNext = false
		return errors.New("injected")
	}
	f.writes++
	return nil
}

func (f *fakeClient) ReadValue(ctx context.Context) (types.Value, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reads++
	return types.Value("x"), nil
}

func TestDriverRunsMix(t *testing.T) {
	t.Parallel()
	clients := []Client{&fakeClient{}, &fakeClient{}}
	d := Driver{Workers: 2, WriteRatio: 0.5, Duration: 50 * time.Millisecond, ValueSize: 16, Seed: 1}
	stats, err := d.Run(context.Background(), clients)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ops() == 0 {
		t.Fatal("no operations completed")
	}
	if stats.Reads == 0 || stats.Writes == 0 {
		t.Fatalf("mix not exercised: %+v", stats)
	}
	if stats.Throughput() <= 0 {
		t.Fatalf("throughput = %f", stats.Throughput())
	}
}

func TestDriverWriteOnly(t *testing.T) {
	t.Parallel()
	c := &fakeClient{}
	d := Driver{Workers: 1, WriteRatio: 1.0, Duration: 20 * time.Millisecond, ValueSize: 8, Seed: 2}
	stats, err := d.Run(context.Background(), []Client{c})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reads != 0 {
		t.Fatalf("write-only run performed %d reads", stats.Reads)
	}
	if stats.Writes == 0 {
		t.Fatal("no writes")
	}
}

func TestDriverCountsErrors(t *testing.T) {
	t.Parallel()
	c := &fakeClient{failNext: true}
	d := Driver{Workers: 1, WriteRatio: 1.0, Duration: 20 * time.Millisecond, ValueSize: 8, Seed: 3}
	stats, err := d.Run(context.Background(), []Client{c})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WriteErrs != 1 {
		t.Fatalf("write errors = %d, want 1", stats.WriteErrs)
	}
}

func TestDriverValidatesClientCount(t *testing.T) {
	t.Parallel()
	d := Driver{Workers: 3}
	if _, err := d.Run(context.Background(), []Client{&fakeClient{}}); err == nil {
		t.Fatal("mismatched client count accepted")
	}
}

func TestDriverHonorsCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := Driver{Workers: 1, WriteRatio: 0.5, ValueSize: 8, Seed: 4} // no Duration: runs until ctx
	stats, err := d.Run(ctx, []Client{&fakeClient{}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ops() != 0 {
		t.Fatalf("cancelled run performed %d ops", stats.Ops())
	}
}

func TestStatsAccessors(t *testing.T) {
	t.Parallel()
	s := Stats{Reads: 3, Writes: 2, Elapsed: time.Second}
	if s.Ops() != 5 {
		t.Fatalf("Ops = %d", s.Ops())
	}
	if s.Throughput() != 5.0 {
		t.Fatalf("Throughput = %f", s.Throughput())
	}
	if (Stats{}).Throughput() != 0 {
		t.Fatal("zero stats throughput not 0")
	}
}
