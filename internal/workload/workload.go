// Package workload generates the value payloads and closed-loop operation
// drivers used by the evaluation harness: deterministic pseudo-random values
// of a configured size and worker pools issuing reads/writes at a chosen
// mix, mirroring the YCSB-style load the paper's evaluation setting implies.
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/ares-storage/ares/internal/types"
)

// ValueGenerator produces deterministic pseudo-random values of fixed size.
// It is safe for concurrent use.
type ValueGenerator struct {
	mu   sync.Mutex
	rng  *rand.Rand
	size int
}

// NewValueGenerator returns a generator of size-byte values seeded for
// reproducibility.
func NewValueGenerator(size int, seed int64) *ValueGenerator {
	return &ValueGenerator{rng: rand.New(rand.NewSource(seed)), size: size}
}

// Next returns a fresh value. Values embed a sequence marker so corrupted
// reads are distinguishable from stale ones in debugging output.
func (g *ValueGenerator) Next(seq int) types.Value {
	v := make(types.Value, g.size)
	g.mu.Lock()
	g.rng.Read(v)
	g.mu.Unlock()
	marker := fmt.Sprintf("#%08d#", seq)
	copy(v, marker[:minInt(len(marker), len(v))])
	return v
}

// Size returns the configured value size.
func (g *ValueGenerator) Size() int { return g.size }

// Stats aggregates a driver run.
type Stats struct {
	Reads     int
	Writes    int
	ReadErrs  int
	WriteErrs int
	Elapsed   time.Duration
}

// Ops returns total successful operations.
func (s Stats) Ops() int { return s.Reads + s.Writes }

// Throughput returns successful operations per second.
func (s Stats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Ops()) / s.Elapsed.Seconds()
}

// Client is the operation surface a driver exercises — satisfied by the
// public ares.Client and by internal test fakes.
type Client interface {
	WriteValue(ctx context.Context, v types.Value) error
	ReadValue(ctx context.Context) (types.Value, error)
}

// Driver runs a closed-loop workload: each worker issues one operation at a
// time, choosing writes with probability writeRatio.
type Driver struct {
	Workers    int
	WriteRatio float64
	Duration   time.Duration
	ValueSize  int
	Seed       int64
}

// Run drives the clients (one per worker; len(clients) must equal Workers)
// until Duration elapses or ctx is cancelled, and returns aggregate stats.
func (d Driver) Run(ctx context.Context, clients []Client) (Stats, error) {
	if len(clients) != d.Workers {
		return Stats{}, fmt.Errorf("workload: %d clients for %d workers", len(clients), d.Workers)
	}
	runCtx := ctx
	var cancel context.CancelFunc
	if d.Duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, d.Duration)
		defer cancel()
	}

	var (
		mu    sync.Mutex
		total Stats
		wg    sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < d.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := NewValueGenerator(d.ValueSize, d.Seed+int64(w))
			rng := rand.New(rand.NewSource(d.Seed ^ int64(w)<<16))
			var local Stats
			for seq := 0; ; seq++ {
				if runCtx.Err() != nil {
					break
				}
				if rng.Float64() < d.WriteRatio {
					if err := clients[w].WriteValue(runCtx, gen.Next(seq)); err != nil {
						if runCtx.Err() != nil {
							break // cancellation, not a protocol failure
						}
						local.WriteErrs++
					} else {
						local.Writes++
					}
				} else {
					if _, err := clients[w].ReadValue(runCtx); err != nil {
						if runCtx.Err() != nil {
							break
						}
						local.ReadErrs++
					} else {
						local.Reads++
					}
				}
			}
			mu.Lock()
			total.Reads += local.Reads
			total.Writes += local.Writes
			total.ReadErrs += local.ReadErrs
			total.WriteErrs += local.WriteErrs
			mu.Unlock()
		}()
	}
	wg.Wait()
	total.Elapsed = time.Since(start)
	return total, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
