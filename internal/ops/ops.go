// Package ops is the server's operational HTTP surface: Prometheus
// /metrics over the obs registry, net/http/pprof, a nuclio-style
// readiness probe (/healthz answers 503 until WAL recovery completes and
// the data plane is listening), and a small JSON admin API exposing the
// configuration chain, per-key state, and manual reconfigure/retire/
// forget verbs.
//
// The package is hook-based — it knows nothing about hosts or stores.
// The ares root package binds the hooks to a live Server; tests bind
// them to stubs. Every admin verb the hooks implement routes through the
// ordinary client paths (read-config, Paxos reconfiguration, lifecycle
// GC), so the admin API can never put a server into a state normal
// operation couldn't.
package ops

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/ares-storage/ares/internal/obs"
)

// AdminHooks implement the admin verbs. A nil hook disables its route
// (404). Hooks return a JSON-marshalable result; errors render as
// {"ok":false,"error":...} with status 500 (or 400 for bad input,
// signaled by BadRequestError).
type AdminHooks struct {
	// Chain reports key's configuration chain (a read-config through the
	// ordinary recon path).
	Chain func(ctx context.Context, key string) (any, error)
	// KeyState reports the server-local view of key: materialized
	// (key, config) state per family, retirement info, adaptive class.
	KeyState func(key string) (any, error)
	// Reconfigure proposes spec (a spec.Parse configuration string) as
	// key's next configuration through the ordinary Paxos path.
	Reconfigure func(ctx context.Context, key, spec string) (any, error)
	// Retire re-proposes key's current configuration parameters under a
	// fresh ID, so the predecessor retires through ordinary finalization GC.
	Retire func(ctx context.Context, key string) (any, error)
	// Forget drops cached per-key client state (mirrors ObjectStore.Forget).
	Forget func(key string) (any, error)
}

// BadRequestError marks a hook failure as the caller's fault (HTTP 400).
type BadRequestError struct{ Msg string }

func (e BadRequestError) Error() string { return e.Msg }

// Server is one ops surface. All fields are optional except Registry;
// a nil Ready reads as always-ready.
type Server struct {
	Registry *obs.Registry
	// Ready gates /healthz: the nuclio lifecycle idiom is that the ops
	// listener comes up first (so probes can distinguish "starting" from
	// "dead") and readiness flips only after recovery + data-plane bind.
	Ready func() bool
	// Info, when set, contributes identity fields to GET /admin/info.
	Info  func() map[string]any
	Admin AdminHooks

	// AdminTimeout bounds one admin verb's context (default 30s).
	AdminTimeout time.Duration
}

// Handler builds the ops mux. Routes:
//
//	GET  /metrics            Prometheus text exposition
//	GET  /metrics.json       registry snapshot as JSON
//	GET  /healthz            200 "ok" when ready, 503 "starting" before
//	     /debug/pprof/...    net/http/pprof
//	GET  /admin/info         identity + readiness
//	GET  /admin/chain?key=K
//	GET  /admin/keystate?key=K
//	POST /admin/reconfigure?key=K&spec=S
//	POST /admin/retire?key=K
//	POST /admin/forget?key=K
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Registry.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Ready != nil && !s.Ready() {
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/admin/info", func(w http.ResponseWriter, r *http.Request) {
		info := map[string]any{"ready": s.Ready == nil || s.Ready()}
		if s.Info != nil {
			for k, v := range s.Info() {
				info[k] = v
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "result": info})
	})
	s.adminVerb(mux, "/admin/chain", http.MethodGet, func(ctx context.Context, r *http.Request) (any, error) {
		if s.Admin.Chain == nil {
			return nil, errNotConfigured
		}
		return s.Admin.Chain(ctx, r.FormValue("key"))
	})
	s.adminVerb(mux, "/admin/keystate", http.MethodGet, func(_ context.Context, r *http.Request) (any, error) {
		if s.Admin.KeyState == nil {
			return nil, errNotConfigured
		}
		return s.Admin.KeyState(r.FormValue("key"))
	})
	s.adminVerb(mux, "/admin/reconfigure", http.MethodPost, func(ctx context.Context, r *http.Request) (any, error) {
		if s.Admin.Reconfigure == nil {
			return nil, errNotConfigured
		}
		return s.Admin.Reconfigure(ctx, r.FormValue("key"), r.FormValue("spec"))
	})
	s.adminVerb(mux, "/admin/retire", http.MethodPost, func(ctx context.Context, r *http.Request) (any, error) {
		if s.Admin.Retire == nil {
			return nil, errNotConfigured
		}
		return s.Admin.Retire(ctx, r.FormValue("key"))
	})
	s.adminVerb(mux, "/admin/forget", http.MethodPost, func(_ context.Context, r *http.Request) (any, error) {
		if s.Admin.Forget == nil {
			return nil, errNotConfigured
		}
		return s.Admin.Forget(r.FormValue("key"))
	})
	return mux
}

var errNotConfigured = BadRequestError{Msg: "verb not available on this server"}

// adminVerb wires one hook route with method checking, key validation,
// timeout, and uniform JSON rendering.
func (s *Server) adminVerb(mux *http.ServeMux, path, method string, fn func(ctx context.Context, r *http.Request) (any, error)) {
	mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			writeJSON(w, http.StatusMethodNotAllowed,
				map[string]any{"ok": false, "error": "use " + method})
			return
		}
		if r.FormValue("key") == "" {
			writeJSON(w, http.StatusBadRequest,
				map[string]any{"ok": false, "error": "missing ?key="})
			return
		}
		timeout := s.AdminTimeout
		if timeout <= 0 {
			timeout = 30 * time.Second
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		result, err := fn(ctx, r)
		if err != nil {
			status := http.StatusInternalServerError
			if _, ok := err.(BadRequestError); ok {
				status = http.StatusBadRequest
			}
			writeJSON(w, status, map[string]any{"ok": false, "error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "result": result})
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Serve runs the ops surface on l until the returned stop function is
// called. Connection lifetimes get modest hard bounds: this is a
// diagnostics listener, not a data plane.
func Serve(l net.Listener, s *Server) (stop func()) {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() { _ = srv.Serve(l) }()
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
}

// Listen binds addr and serves the ops surface on it, returning the bound
// address (addr may use port 0) and a stop function.
func Listen(addr string, s *Server) (bound string, stop func(), err error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	return l.Addr().String(), Serve(l, s), nil
}
