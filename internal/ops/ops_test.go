package ops

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/ares-storage/ares/internal/obs"
)

func testServer(ready *atomic.Bool) *Server {
	r := obs.NewRegistry()
	r.Counter("ares_test_ops_total", "ops").Add(7)
	return &Server{
		Registry: r,
		Ready:    ready.Load,
		Info:     func() map[string]any { return map[string]any{"id": "s1"} },
	}
}

// TestHealthzGating is the satellite's readiness contract: the listener
// answers while the server is still recovering, but /healthz must say
// 503 until the ready flag flips — and /metrics must work the whole time.
func TestHealthzGating(t *testing.T) {
	var ready atomic.Bool
	ts := httptest.NewServer(testServer(&ready).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-recovery healthz = %d, want 503", resp.StatusCode)
	}

	// Metrics are scrapeable even before readiness (a starting server's
	// recovery counters are exactly what an operator wants to watch).
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ares_test_ops_total 7") {
		t.Fatalf("metrics during startup: status=%d body=%q", resp.StatusCode, body)
	}

	ready.Store(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("post-recovery healthz: status=%d body=%q", resp.StatusCode, body)
	}
}

func TestPprofIndexServes(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	ts := httptest.NewServer(testServer(&ready).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: status=%d", resp.StatusCode)
	}
}

type verbResp struct {
	OK     bool            `json:"ok"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

func doVerb(t *testing.T, method, u string, form url.Values) (int, verbResp) {
	t.Helper()
	var (
		resp *http.Response
		err  error
	)
	if method == http.MethodPost {
		resp, err = http.PostForm(u, form)
	} else {
		resp, err = http.Get(u + "?" + form.Encode())
	}
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vr verbResp
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatalf("decoding %s: %v", u, err)
	}
	return resp.StatusCode, vr
}

// TestAdminVerbs exercises each verb's routing, method enforcement, key
// validation, and error mapping against stub hooks.
func TestAdminVerbs(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	s := testServer(&ready)
	var gotKey, gotSpec string
	s.Admin = AdminHooks{
		Chain: func(_ context.Context, key string) (any, error) {
			return map[string]any{"key": key, "chain": []string{"c0", "c1"}}, nil
		},
		KeyState: func(key string) (any, error) {
			if key == "missing" {
				return nil, BadRequestError{Msg: "unknown key"}
			}
			return map[string]any{"key": key}, nil
		},
		Reconfigure: func(_ context.Context, key, spec string) (any, error) {
			gotKey, gotSpec = key, spec
			if spec == "" {
				return nil, BadRequestError{Msg: "missing spec"}
			}
			return map[string]any{"applied": true}, nil
		},
		Retire: func(_ context.Context, key string) (any, error) {
			return nil, errors.New("quorum unavailable")
		},
		Forget: func(key string) (any, error) {
			return map[string]any{"dropped": true}, nil
		},
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, vr := doVerb(t, http.MethodGet, ts.URL+"/admin/chain", url.Values{"key": {"k1"}})
	if status != 200 || !vr.OK || !strings.Contains(string(vr.Result), "c1") {
		t.Fatalf("chain: status=%d resp=%+v", status, vr)
	}

	// Missing key is a 400 before the hook runs.
	status, vr = doVerb(t, http.MethodGet, ts.URL+"/admin/chain", url.Values{})
	if status != 400 || vr.OK {
		t.Fatalf("chain without key: status=%d resp=%+v", status, vr)
	}

	// Wrong method is rejected.
	status, vr = doVerb(t, http.MethodGet, ts.URL+"/admin/reconfigure", url.Values{"key": {"k"}})
	if status != http.StatusMethodNotAllowed || vr.OK {
		t.Fatalf("GET reconfigure: status=%d resp=%+v", status, vr)
	}

	status, vr = doVerb(t, http.MethodPost, ts.URL+"/admin/reconfigure",
		url.Values{"key": {"k2"}, "spec": {"id=c9;alg=abd;servers=s1,s2,s3"}})
	if status != 200 || !vr.OK || gotKey != "k2" || !strings.Contains(gotSpec, "alg=abd") {
		t.Fatalf("reconfigure: status=%d resp=%+v key=%q spec=%q", status, vr, gotKey, gotSpec)
	}

	// Hook BadRequestError maps to 400, other errors to 500.
	status, vr = doVerb(t, http.MethodGet, ts.URL+"/admin/keystate", url.Values{"key": {"missing"}})
	if status != 400 || vr.Error != "unknown key" {
		t.Fatalf("keystate missing: status=%d resp=%+v", status, vr)
	}
	status, vr = doVerb(t, http.MethodPost, ts.URL+"/admin/retire", url.Values{"key": {"k"}})
	if status != 500 || vr.Error != "quorum unavailable" {
		t.Fatalf("retire: status=%d resp=%+v", status, vr)
	}

	status, vr = doVerb(t, http.MethodPost, ts.URL+"/admin/forget", url.Values{"key": {"k"}})
	if status != 200 || !vr.OK {
		t.Fatalf("forget: status=%d resp=%+v", status, vr)
	}

	// A verb without a hook is a 400 naming the problem.
	s2 := testServer(&ready)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	status, vr = doVerb(t, http.MethodGet, ts2.URL+"/admin/chain", url.Values{"key": {"k"}})
	if status != 400 || vr.OK {
		t.Fatalf("unhooked chain: status=%d resp=%+v", status, vr)
	}
}

func TestListenAndMetricsJSON(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	addr, stop, err := Listen("127.0.0.1:0", testServer(&ready))
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["ares_test_ops_total"] != 7 {
		t.Fatalf("snapshot = %+v", snap.Counters)
	}
}
