// Value-based linearizability checking (Wing–Gong / Lowe's just-in-time
// linearization search) for single-register histories.
//
// The tag-based Check is sound only against the tag discipline: a buggy
// implementation that attaches a *fresh* tag to a *stale* value sails
// through it. Verify instead decides the real question — do the observed
// values admit a legal sequential order consistent with real time? — by
// searching over linearization points:
//
//	state ← initial value; repeatedly pick a "minimal" operation (one whose
//	call event precedes every unlinearized return), apply it to the state
//	(a write sets the value, a read must see it), and recurse; backtrack at
//	a return event that cannot be passed.
//
// The search memoizes (linearized-set, state) pairs (Lowe's optimization),
// so its cost is bounded by the number of distinct frontier sets — in
// practice near-linear for histories whose concurrency window is small
// (ops overlap only with their contemporaries), exponential only in the
// window width w: O(n · 2^w) cached configurations. CheckOptions bounds
// both the history size and the step budget; past either bound Verify
// falls back to the tag-based Check so every run still ends in a verdict.
//
// Incomplete writes (invoked, never acknowledged) carry a +∞ return time:
// the search may linearize them at any point after invocation, and a
// leftover incomplete write can always be appended at the end of the order
// (nothing observes the register afterwards), so they never cause false
// alarms yet still legitimize reads that observed them.
package history

import (
	"fmt"
	"math"
	"sort"
)

// CheckOptions bounds Verify's value-based search.
type CheckOptions struct {
	// MaxOps is the largest history the value-based search accepts;
	// larger histories are checked with the tag-based Check instead.
	// Zero means the default (4096).
	MaxOps int
	// MaxSteps is the search-step budget; an exhausted budget falls back
	// to the tag-based Check. Zero means the default (5,000,000).
	MaxSteps int
}

// Default search bounds.
const (
	DefaultMaxOps   = 4096
	DefaultMaxSteps = 5_000_000
)

// Method names the checking algorithm that produced a verdict.
type Method string

// The checking methods.
const (
	// MethodWingGong is the value-based linearizability search.
	MethodWingGong Method = "wing-gong"
	// MethodTag is the tag-ordering check (fallback for oversized or
	// search-budget-exhausted histories).
	MethodTag Method = "tag"
)

// Report is the outcome of Verify.
type Report struct {
	// Method is the algorithm that produced the verdict.
	Method Method
	// Linearizable is the verdict.
	Linearizable bool
	// Ops counts the operations checked; Incomplete of them were
	// unacknowledged writes.
	Ops        int
	Incomplete int
	// Steps is the number of search steps the value-based phase used.
	Steps int
	// Note carries diagnostics (e.g. why a fallback happened).
	Note string
	// Violations describes what failed (empty when Linearizable).
	Violations []Violation
}

// Verify checks a single-register history for linearizability by value,
// falling back to the tag-based Check when the history exceeds the search
// bounds. The empty history is linearizable.
func Verify(ops []Op, opts CheckOptions) Report {
	if opts.MaxOps <= 0 {
		opts.MaxOps = DefaultMaxOps
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = DefaultMaxSteps
	}

	// Incomplete reads observe nothing and constrain nothing; drop them.
	// Incomplete writes whose value no completed read returned are dropped
	// too: such a write can always be linearized at the very end of any
	// legal order (nothing observes the register after it), and removing
	// it never changes another read's legality — the write latest-before
	// any read is unaffected, since that write is never the unread one.
	// This pruning is what keeps fault-heavy histories (hundreds of
	// timed-out writes) inside the search budget: only the incomplete
	// writes that were actually observed stay open-ended.
	readVals := make(map[string]bool)
	for _, op := range ops {
		if op.Kind == Read && !op.Incomplete {
			readVals[string(op.Value)] = true
		}
	}
	filtered := make([]Op, 0, len(ops))
	incomplete := 0
	for _, op := range ops {
		if op.Incomplete {
			if op.Kind != Write || !readVals[string(op.Value)] {
				continue
			}
			incomplete++
		}
		filtered = append(filtered, op)
	}
	rep := Report{Method: MethodWingGong, Ops: len(filtered), Incomplete: incomplete}
	if len(filtered) == 0 {
		rep.Linearizable = true
		return rep
	}
	if len(filtered) > opts.MaxOps {
		return tagFallback(filtered, rep, fmt.Sprintf("history of %d ops exceeds MaxOps=%d", len(filtered), opts.MaxOps))
	}

	// Intern values; id 0 is the register's initial (empty) value.
	valID := map[string]int{"": 0}
	intern := func(v []byte) int {
		id, ok := valID[string(v)]
		if !ok {
			id = len(valID)
			valID[string(v)] = id
		}
		return id
	}
	// Event times are durations from a common base rather than UnixNano:
	// time.Sub preserves the monotonic reading time.Now stamped, so a
	// wall-clock step (NTP) during a recorded run cannot invert the
	// real-time order the search depends on.
	base := filtered[0].Invoke
	written := map[int]bool{0: true}
	w := make([]wglOp, len(filtered))
	for i, op := range filtered {
		w[i] = wglOp{
			kind: op.Kind,
			val:  intern(op.Value),
			call: op.Invoke.Sub(base).Nanoseconds(),
			ret:  math.MaxInt64,
		}
		if !op.Incomplete {
			w[i].ret = op.Respond.Sub(base).Nanoseconds()
		}
		if op.Kind == Write {
			written[w[i].val] = true
		}
	}

	// Fast pre-check: a read may only return a value some write (complete
	// or incomplete) actually carried, or the initial value. A value from
	// nowhere can never linearize; report it directly with its culprit.
	for i, op := range w {
		if op.kind == Read && !written[op.val] {
			rep.Violations = append(rep.Violations, Violation{
				Rule:   "read-validity",
				Detail: fmt.Sprintf("read by %s returned value %q that no write carried", filtered[i].Client, filtered[i].Value),
				First:  filtered[i],
			})
		}
	}
	if len(rep.Violations) > 0 {
		return rep
	}

	verdict, steps, culprit := wglSearch(w, opts.MaxSteps)
	rep.Steps = steps
	switch verdict {
	case wglOK:
		rep.Linearizable = true
	case wglViolation:
		op := filtered[culprit]
		rep.Violations = append(rep.Violations, Violation{
			Rule: "linearizability",
			Detail: fmt.Sprintf("%s by %s (value %q, tag %v) admits no legal linearization point",
				op.Kind, op.Client, op.Value, op.Tag),
			First: op,
		})
	case wglInconclusive:
		return tagFallback(filtered, rep, fmt.Sprintf("search budget of %d steps exhausted", opts.MaxSteps))
	}
	return rep
}

// tagFallback produces a tag-based verdict for histories the search cannot
// afford.
func tagFallback(ops []Op, rep Report, why string) Report {
	rep.Method = MethodTag
	rep.Note = why
	rep.Violations = Check(ops)
	rep.Linearizable = len(rep.Violations) == 0
	return rep
}

// wglOp is one operation in the search's compact form.
type wglOp struct {
	kind      Kind
	val       int   // interned value: written (writes) or returned (reads)
	call, ret int64 // event times; ret is MaxInt64 for incomplete writes
}

// Search outcomes.
type wglVerdict uint8

const (
	wglOK wglVerdict = iota
	wglViolation
	wglInconclusive
)

// entryNode is one call or return event in the doubly-linked event list.
type entryNode struct {
	prev, next *entryNode
	op         int
	call       bool
	match      *entryNode // call → its return entry; nil for incomplete ops
}

// wglSearch runs the memoized linearization search. It returns the
// verdict, the steps used, and — for a violation — the index of the
// operation at the first impassable return event.
func wglSearch(ops []wglOp, maxSteps int) (wglVerdict, int, int) {
	type event struct {
		t    int64
		call bool
		op   int
	}
	events := make([]event, 0, 2*len(ops))
	for i, op := range ops {
		events = append(events, event{t: op.call, call: true, op: i})
		if op.ret != math.MaxInt64 {
			events = append(events, event{t: op.ret, call: false, op: i})
		}
	}
	// Calls sort before returns at equal timestamps: ties are treated as
	// concurrency, which only admits more orders (no false positives).
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].call && !events[j].call
	})

	head := &entryNode{} // sentinel
	prev := head
	calls := make(map[int]*entryNode, len(ops))
	for _, ev := range events {
		n := &entryNode{prev: prev, op: ev.op, call: ev.call}
		prev.next = n
		if ev.call {
			calls[ev.op] = n
		} else {
			calls[ev.op].match = n
		}
		prev = n
	}

	words := (len(ops) + 63) / 64
	linearized := make([]uint64, words)
	cache := newWglCache()
	state := 0 // initial value
	type frame struct {
		entry     *entryNode
		prevState int
	}
	var stack []frame

	lift := func(e *entryNode) {
		e.prev.next = e.next
		if e.next != nil {
			e.next.prev = e.prev
		}
		if m := e.match; m != nil {
			m.prev.next = m.next
			if m.next != nil {
				m.next.prev = m.prev
			}
		}
	}
	unlift := func(e *entryNode) {
		if m := e.match; m != nil {
			m.prev.next = m
			if m.next != nil {
				m.next.prev = m
			}
		}
		e.prev.next = e
		if e.next != nil {
			e.next.prev = e
		}
	}

	steps := 0
	entry := head.next
	for {
		steps++
		if steps > maxSteps {
			return wglInconclusive, steps, 0
		}
		if head.next == nil {
			return wglOK, steps, 0 // every event consumed: a legal order exists
		}
		if entry != nil && entry.call {
			op := ops[entry.op]
			newState, legal := state, true
			if op.kind == Write {
				newState = op.val
			} else if op.val != state {
				legal = false
			}
			if legal {
				linearized[entry.op/64] |= 1 << (entry.op % 64)
				if cache.insert(linearized, newState) {
					stack = append(stack, frame{entry: entry, prevState: state})
					state = newState
					lift(entry)
					entry = head.next
					continue
				}
				linearized[entry.op/64] &^= 1 << (entry.op % 64)
			}
			entry = entry.next
			continue
		}
		// A return event (or the end of the list) that cannot be passed:
		// undo the most recent tentative linearization, or report.
		if len(stack) == 0 {
			culprit := head.next.op
			if entry != nil {
				culprit = entry.op
			}
			return wglViolation, steps, culprit
		}
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		state = fr.prevState
		linearized[fr.entry.op/64] &^= 1 << (fr.entry.op % 64)
		unlift(fr.entry)
		entry = fr.entry.next
	}
}

// wglCache memoizes (linearized-set, state) configurations. Keys collide
// only on full equality: the hash buckets hold the actual bitsets.
type wglCache struct {
	buckets map[uint64][]wglCacheRec
}

type wglCacheRec struct {
	bits  []uint64
	state int
}

func newWglCache() *wglCache {
	return &wglCache{buckets: make(map[uint64][]wglCacheRec)}
}

// insert adds the configuration and reports whether it was new.
func (c *wglCache) insert(bits []uint64, state int) bool {
	const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211
	h := uint64(fnvOffset)
	for _, w := range bits {
		h = (h ^ w) * fnvPrime
	}
	h = (h ^ uint64(state)) * fnvPrime
	for _, rec := range c.buckets[h] {
		if rec.state != state {
			continue
		}
		equal := true
		for i := range bits {
			if rec.bits[i] != bits[i] {
				equal = false
				break
			}
		}
		if equal {
			return false
		}
	}
	c.buckets[h] = append(c.buckets[h], wglCacheRec{bits: append([]uint64(nil), bits...), state: state})
	return true
}
