package history

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/types"
)

// mkInc builds an incomplete write invoked at start (no response ever).
func mkInc(client string, start int, t tag.Tag, v string) Op {
	op := mk(Write, client, start, start, t, v)
	op.Respond = time.Time{}
	op.Incomplete = true
	return op
}

// goldenHistory is one corpus entry: a hand-written history with a known
// verdict. The corpus guards against a checker that accepts everything —
// every buggy entry MUST be flagged — and against one that rejects valid
// concurrency — every linearizable entry MUST pass.
type goldenHistory struct {
	name         string
	ops          []Op
	linearizable bool
	// tagCheckPasses marks histories the old tag-based checker wrongly
	// accepts — the stale-value-under-fresh-tag class that motivated the
	// value-based checker.
	tagCheckPasses bool
}

func goldenCorpus() []goldenHistory {
	return []goldenHistory{
		// ---- histories that MUST be flagged ----
		{
			// The motivating bug: a read returns the OLD value under a
			// fresh tag (higher than every write's). Tag order looks
			// perfect; the value is stale.
			name: "stale-read-fresh-tag",
			ops: []Op{
				mk(Write, "w1", 0, 10, tg(1, "w1"), "a"),
				mk(Write, "w1", 20, 30, tg(2, "w1"), "b"),
				mk(Read, "r1", 40, 50, tg(3, "w1"), "a"), // stale value, fresh tag
			},
			linearizable:   false,
			tagCheckPasses: true,
		},
		{
			// Lost update: the second write's value vanishes — every
			// subsequent read observes only the first.
			name: "lost-update",
			ops: []Op{
				mk(Write, "w1", 0, 10, tg(1, "w1"), "a"),
				mk(Write, "w2", 20, 30, tg(2, "w2"), "b"),
				mk(Read, "r1", 40, 50, tg(2, "w2"), "b"),
				mk(Read, "r1", 60, 70, tg(3, "w2"), "a"), // b's update lost
			},
			linearizable:   false,
			tagCheckPasses: true,
		},
		{
			// Non-monotonic read: r1 sees the in-flight write, r2 (strictly
			// after r1) sees the older value again.
			name: "non-monotonic-read",
			ops: []Op{
				mk(Write, "w1", 0, 10, tg(1, "w1"), "a"),
				mk(Write, "w1", 20, 200, tg(2, "w1"), "b"), // long in-flight write
				mk(Read, "r1", 30, 40, tg(2, "w1"), "b"),
				mk(Read, "r2", 50, 60, tg(1, "w1"), "a"),
			},
			linearizable: false,
		},
		{
			// Split-brain write: two concurrent writes both "win" — reads
			// oscillate between them after both completed, which no single
			// order of the two writes explains.
			name: "split-brain-write",
			ops: []Op{
				mk(Write, "w1", 0, 100, tg(1, "w1"), "a"),
				mk(Write, "w2", 0, 100, tg(1, "w2"), "b"),
				mk(Read, "r1", 110, 120, tg(1, "w1"), "a"),
				mk(Read, "r1", 130, 140, tg(1, "w2"), "b"),
				mk(Read, "r1", 150, 160, tg(1, "w1"), "a"),
			},
			linearizable: false,
		},
		{
			// A value no write ever carried.
			name: "value-from-nowhere",
			ops: []Op{
				mk(Write, "w1", 0, 10, tg(1, "w1"), "a"),
				mk(Read, "r1", 20, 30, tg(1, "w1"), "z"),
			},
			linearizable: false,
		},
		{
			// Initial value re-observed after a completed overwrite.
			name: "resurrected-initial-value",
			ops: []Op{
				mk(Write, "w1", 0, 10, tg(1, "w1"), "a"),
				mk(Read, "r1", 20, 30, tag.Zero, ""),
			},
			linearizable: false,
		},

		// ---- histories that MUST pass ----
		{
			name: "sequential",
			ops: []Op{
				mk(Write, "w1", 0, 10, tg(1, "w1"), "a"),
				mk(Read, "r1", 20, 30, tg(1, "w1"), "a"),
				mk(Write, "w1", 40, 50, tg(2, "w1"), "b"),
				mk(Read, "r1", 60, 70, tg(2, "w1"), "b"),
			},
			linearizable:   true,
			tagCheckPasses: true,
		},
		{
			// A read concurrent with a write may return either value; two
			// concurrent reads may even split — one old, one new — as long
			// as neither precedes the other.
			name: "concurrent-read-split",
			ops: []Op{
				mk(Write, "w1", 0, 10, tg(1, "w1"), "a"),
				mk(Write, "w1", 20, 100, tg(2, "w1"), "b"),
				mk(Read, "r1", 30, 90, tg(2, "w1"), "b"),
				mk(Read, "r2", 40, 95, tg(1, "w1"), "a"),
			},
			linearizable:   true,
			tagCheckPasses: true,
		},
		{
			// Reading an incomplete write's value is legal: the write may
			// have taken effect even though its writer never heard back.
			name: "read-of-incomplete-write",
			ops: []Op{
				mk(Write, "w1", 0, 10, tg(1, "w1"), "a"),
				mkInc("w2", 20, tag.Tag{}, "b"),
				mk(Read, "r1", 30, 40, tg(2, "w2"), "b"),
				mk(Read, "r1", 50, 60, tg(2, "w2"), "b"),
			},
			linearizable:   true,
			tagCheckPasses: true,
		},
		{
			// An incomplete write that never takes effect is also legal.
			name: "incomplete-write-no-effect",
			ops: []Op{
				mk(Write, "w1", 0, 10, tg(1, "w1"), "a"),
				mkInc("w2", 20, tag.Tag{}, "b"),
				mk(Read, "r1", 30, 40, tg(1, "w1"), "a"),
			},
			linearizable:   true,
			tagCheckPasses: true,
		},
		{
			// The initial (empty) value is readable while the first write
			// is still in flight.
			name: "initial-value-under-concurrent-write",
			ops: []Op{
				mk(Write, "w1", 0, 100, tg(1, "w1"), "a"),
				mk(Read, "r1", 10, 20, tag.Zero, ""),
				mk(Read, "r2", 110, 120, tg(1, "w1"), "a"),
			},
			linearizable:   true,
			tagCheckPasses: true,
		},
		{
			// Requires actually reordering concurrent ops: r1 must
			// linearize before w2 even though w2 was invoked first.
			name: "reorder-concurrent-ops",
			ops: []Op{
				mk(Write, "w1", 0, 10, tg(1, "w1"), "a"),
				mk(Write, "w2", 20, 100, tg(2, "w2"), "b"),
				mk(Read, "r1", 30, 40, tg(1, "w1"), "a"),
				mk(Read, "r2", 50, 60, tg(2, "w2"), "b"),
			},
			linearizable: true,
		},
	}
}

func TestGoldenCorpus(t *testing.T) {
	t.Parallel()
	for _, g := range goldenCorpus() {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			rep := Verify(g.ops, CheckOptions{})
			if rep.Method != MethodWingGong {
				t.Fatalf("method = %s, want wing-gong for a %d-op history", rep.Method, len(g.ops))
			}
			if rep.Linearizable != g.linearizable {
				t.Fatalf("linearizable = %v, want %v (violations: %v)", rep.Linearizable, g.linearizable, rep.Violations)
			}
			if !g.linearizable && len(rep.Violations) == 0 {
				t.Fatal("non-linearizable verdict must carry at least one violation")
			}
		})
	}
}

// TestValueCheckerStrictlyStrongerThanTagCheck pins the motivation: the
// corpus entries marked tagCheckPasses are accepted by the tag-based
// checker, yet the buggy ones among them are caught by Verify.
func TestValueCheckerStrictlyStrongerThanTagCheck(t *testing.T) {
	t.Parallel()
	caught := 0
	for _, g := range goldenCorpus() {
		if !g.tagCheckPasses {
			continue
		}
		if v := Check(g.ops); len(v) != 0 {
			t.Errorf("%s: tag check flagged %v, corpus says it passes", g.name, v)
		}
		if !g.linearizable {
			if rep := Verify(g.ops, CheckOptions{}); rep.Linearizable {
				t.Errorf("%s: value checker missed a bug the corpus requires it to catch", g.name)
			} else {
				caught++
			}
		}
	}
	if caught == 0 {
		t.Fatal("corpus has no tag-passing bug caught by the value checker; it no longer guards anything")
	}
}

func TestVerifyEmptyHistory(t *testing.T) {
	t.Parallel()
	rep := Verify(nil, CheckOptions{})
	if !rep.Linearizable || rep.Ops != 0 {
		t.Fatalf("empty history: %+v", rep)
	}
}

func TestVerifyFallsBackOnOversizedHistory(t *testing.T) {
	t.Parallel()
	var ops []Op
	for i := 0; i < 20; i++ {
		v := fmt.Sprintf("v%d", i)
		ops = append(ops, mk(Write, "w1", i*20, i*20+10, tg(int64(i+1), "w1"), v))
	}
	rep := Verify(ops, CheckOptions{MaxOps: 10})
	if rep.Method != MethodTag {
		t.Fatalf("method = %s, want tag fallback above MaxOps", rep.Method)
	}
	if !rep.Linearizable {
		t.Fatalf("tag fallback flagged a clean history: %v", rep.Violations)
	}
	if !strings.Contains(rep.Note, "MaxOps") {
		t.Fatalf("note %q should explain the fallback", rep.Note)
	}
}

func TestVerifyFallsBackOnStepBudget(t *testing.T) {
	t.Parallel()
	// Many identical-window concurrent writes plus contradictory
	// post-quiescence reads: proving non-linearizability requires
	// exploring the write orders, which exhausts a tiny step budget.
	var ops []Op
	for i := 0; i < 12; i++ {
		w := fmt.Sprintf("w%d", i)
		ops = append(ops, mk(Write, w, 0, 1000, tg(1, w), fmt.Sprintf("v%d", i)))
	}
	ops = append(ops,
		mk(Read, "r1", 2000, 2010, tg(1, "w0"), "v0"),
		mk(Read, "r1", 2020, 2030, tg(1, "w1"), "v1"),
	)
	rep := Verify(ops, CheckOptions{MaxSteps: 50})
	if rep.Method != MethodTag {
		t.Fatalf("method = %s, want tag fallback on exhausted budget (steps=%d)", rep.Method, rep.Steps)
	}
}

// TestVerifyLongSequentialHistoryIsCheap guards the complexity claim: a
// mostly-sequential history must check in near-linear steps, not blow the
// budget.
func TestVerifyLongSequentialHistoryIsCheap(t *testing.T) {
	t.Parallel()
	var ops []Op
	for i := 0; i < 2000; i++ {
		v := fmt.Sprintf("v%d", i)
		ops = append(ops, mk(Write, "w1", i*20, i*20+10, tg(int64(i+1), "w1"), v))
		ops = append(ops, mk(Read, "r1", i*20+12, i*20+18, tg(int64(i+1), "w1"), v))
	}
	rep := Verify(ops, CheckOptions{})
	if !rep.Linearizable || rep.Method != MethodWingGong {
		t.Fatalf("sequential history: %+v", rep)
	}
	if rep.Steps > 10*len(ops) {
		t.Fatalf("steps = %d for %d ops; search should be near-linear on sequential histories", rep.Steps, len(ops))
	}
}

// TestRecorderIncompleteWrites exercises the Begin/Done/Fail surface.
func TestRecorderIncompleteWrites(t *testing.T) {
	t.Parallel()
	rec := NewRecorder()

	p := rec.BeginWrite("w1", types.Value("a"))
	p.Done(tg(1, "w1"), types.Value("a"))

	// A failed write is retained as incomplete.
	p = rec.BeginWrite("w1", types.Value("b"))
	p.Fail()

	// A failed read is dropped.
	q := rec.BeginRead("r1")
	q.Fail()

	// An abandoned write (neither Done nor Fail) still surfaces.
	rec.BeginWrite("w2", types.Value("c"))

	ops := rec.Ops()
	if len(ops) != 3 {
		t.Fatalf("ops = %d, want 3 (completed a, incomplete b, abandoned c)", len(ops))
	}
	var complete, incomplete int
	for _, op := range ops {
		if op.Incomplete {
			incomplete++
			if op.Respond != (time.Time{}) {
				t.Fatal("incomplete op must not carry a response time")
			}
		} else {
			complete++
		}
	}
	if complete != 1 || incomplete != 2 {
		t.Fatalf("complete = %d incomplete = %d, want 1 and 2", complete, incomplete)
	}
	if rep := Verify(ops, CheckOptions{}); !rep.Linearizable {
		t.Fatalf("history with incomplete writes should pass: %v", rep.Violations)
	}
}
