package history

import (
	"strings"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/types"
)

// mk builds an op spanning [start, end] milliseconds on a shared timeline.
func mk(kind Kind, client string, start, end int, t tag.Tag, v string) Op {
	base := time.Unix(1700000000, 0)
	return Op{
		Kind:    kind,
		Client:  types.ProcessID(client),
		Invoke:  base.Add(time.Duration(start) * time.Millisecond),
		Respond: base.Add(time.Duration(end) * time.Millisecond),
		Tag:     t,
		Value:   types.Value(v),
	}
}

func tg(z int64, w string) tag.Tag { return tag.Tag{Z: z, W: types.ProcessID(w)} }

func TestEmptyHistoryIsAtomic(t *testing.T) {
	t.Parallel()
	if v := Check(nil); len(v) != 0 {
		t.Fatalf("violations = %v", v)
	}
}

func TestSequentialHistoryAtomic(t *testing.T) {
	t.Parallel()
	ops := []Op{
		mk(Write, "w1", 0, 10, tg(1, "w1"), "a"),
		mk(Read, "r1", 20, 30, tg(1, "w1"), "a"),
		mk(Write, "w1", 40, 50, tg(2, "w1"), "b"),
		mk(Read, "r1", 60, 70, tg(2, "w1"), "b"),
	}
	if v := Check(ops); len(v) != 0 {
		t.Fatalf("violations = %v", v)
	}
}

func TestStaleReadDetected(t *testing.T) {
	t.Parallel()
	ops := []Op{
		mk(Write, "w1", 0, 10, tg(1, "w1"), "a"),
		mk(Write, "w1", 20, 30, tg(2, "w1"), "b"),
		mk(Read, "r1", 40, 50, tg(1, "w1"), "a"), // stale: write (2) precedes
	}
	v := Check(ops)
	if len(v) == 0 {
		t.Fatal("stale read not detected")
	}
	if v[0].Rule != "real-time-order" {
		t.Fatalf("rule = %s", v[0].Rule)
	}
}

func TestConcurrentReadMayReturnEitherValue(t *testing.T) {
	t.Parallel()
	// The read overlaps the second write: both old and new values are legal.
	old := []Op{
		mk(Write, "w1", 0, 10, tg(1, "w1"), "a"),
		mk(Write, "w1", 20, 40, tg(2, "w1"), "b"),
		mk(Read, "r1", 25, 35, tg(1, "w1"), "a"),
	}
	if v := Check(old); len(v) != 0 {
		t.Fatalf("concurrent read of old value flagged: %v", v)
	}
	fresh := []Op{
		mk(Write, "w1", 0, 10, tg(1, "w1"), "a"),
		mk(Write, "w1", 20, 40, tg(2, "w1"), "b"),
		mk(Read, "r1", 25, 35, tg(2, "w1"), "b"),
	}
	if v := Check(fresh); len(v) != 0 {
		t.Fatalf("concurrent read of new value flagged: %v", v)
	}
}

func TestReadValueMismatchDetected(t *testing.T) {
	t.Parallel()
	ops := []Op{
		mk(Write, "w1", 0, 10, tg(1, "w1"), "real"),
		mk(Read, "r1", 20, 30, tg(1, "w1"), "forged"),
	}
	v := Check(ops)
	if len(v) == 0 || v[0].Rule != "read-validity" {
		t.Fatalf("violations = %v", v)
	}
}

func TestDuplicateWriteTagsDetected(t *testing.T) {
	t.Parallel()
	ops := []Op{
		mk(Write, "w1", 0, 10, tg(1, "w1"), "a"),
		mk(Write, "w2", 20, 30, tg(1, "w1"), "b"),
	}
	v := Check(ops)
	if len(v) == 0 || v[0].Rule != "write-tag-uniqueness" {
		t.Fatalf("violations = %v", v)
	}
}

func TestNonIncreasingWriteTagsDetected(t *testing.T) {
	t.Parallel()
	ops := []Op{
		mk(Write, "w1", 0, 10, tg(5, "w1"), "a"),
		mk(Write, "w2", 20, 30, tg(3, "w2"), "b"),
	}
	v := Check(ops)
	if len(v) == 0 {
		t.Fatal("non-increasing sequential write tags not detected")
	}
}

func TestReadsRegressDetected(t *testing.T) {
	t.Parallel()
	ops := []Op{
		mk(Read, "r1", 0, 10, tg(5, "w1"), ""),
		mk(Read, "r2", 20, 30, tg(3, "w1"), ""),
	}
	// Reads of tags with no matching write are allowed (concurrent writers),
	// but the regression between sequential reads is not.
	found := false
	for _, vi := range Check(ops) {
		if vi.Rule == "real-time-order" {
			found = true
		}
	}
	if !found {
		t.Fatal("regressing sequential reads not detected")
	}
}

func TestInitialValueRead(t *testing.T) {
	t.Parallel()
	good := []Op{mk(Read, "r1", 0, 10, tag.Zero, "")}
	if v := Check(good); len(v) != 0 {
		t.Fatalf("initial read flagged: %v", v)
	}
	bad := []Op{mk(Read, "r1", 0, 10, tag.Zero, "phantom")}
	if v := Check(bad); len(v) == 0 {
		t.Fatal("t0 read with non-initial value not detected")
	}
}

func TestReadOfIncompleteWriteAllowed(t *testing.T) {
	t.Parallel()
	// A read may return a tag whose write never completed (failed writer):
	// no violation as long as ordering rules hold.
	ops := []Op{
		mk(Read, "r1", 0, 10, tg(7, "ghost-writer"), "half-written"),
	}
	if v := Check(ops); len(v) != 0 {
		t.Fatalf("read of incomplete write flagged: %v", v)
	}
}

func TestRecorder(t *testing.T) {
	t.Parallel()
	rec := NewRecorder()
	done := rec.Start(Write, "w1")
	time.Sleep(time.Millisecond)
	done(tg(1, "w1"), types.Value("v"))

	if rec.Len() != 1 {
		t.Fatalf("Len = %d", rec.Len())
	}
	op := rec.Ops()[0]
	if op.Kind != Write || op.Client != "w1" || string(op.Value) != "v" {
		t.Fatalf("op = %+v", op)
	}
	if !op.Invoke.Before(op.Respond) {
		t.Fatal("invoke not before respond")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	t.Parallel()
	rec := NewRecorder()
	doneCh := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { doneCh <- struct{}{} }()
			done := rec.Start(Read, types.ProcessID("r"))
			done(tg(int64(i), "w"), nil)
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-doneCh
	}
	if rec.Len() != 8 {
		t.Fatalf("Len = %d", rec.Len())
	}
}

func TestViolationError(t *testing.T) {
	t.Parallel()
	v := Violation{Rule: "x", Detail: "y"}
	if !strings.Contains(v.Error(), "x") || !strings.Contains(v.Error(), "y") {
		t.Fatalf("Error() = %q", v.Error())
	}
}

func TestKindString(t *testing.T) {
	t.Parallel()
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("kind strings wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown kind should render numerically")
	}
}
