// Package history records operation histories of the replicated register
// and checks them against the atomicity definition of §2 (properties A1–A3).
//
// Two checkers are provided. Verify is the primary one: a value-based
// Wing–Gong linearizability search (wgl.go) that decides whether the reads
// and writes, as values over real time, admit a legal sequential order — it
// catches a stale value smuggled under a fresh tag, which no tag-only check
// can. Check is the older tag-based checker, exploiting the tag structure
// of every algorithm in this library (Lemma 20): each completed operation
// carries the tag it wrote or returned, and atomicity of a tag-based
// history reduces to:
//
//   - Real-time/tag consistency: if π1 completes before π2 begins, then
//     tag(π1) ≤ tag(π2), strictly when π1 is a write (A1, A2).
//   - Write-tag uniqueness: distinct writes carry distinct tags (A2).
//   - Read validity: a read's value is the value written by the write
//     carrying the same tag, or the initial value at t0 (A3).
//
// Verify falls back to Check for histories too large for the search.
// Recording is concurrency-safe; checking runs after the fact.
package history

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ares-storage/ares/internal/tag"
	"github.com/ares-storage/ares/internal/types"
)

// Kind distinguishes reads from writes.
type Kind uint8

// Operation kinds. Enums start at one to catch zero-value misuse.
const (
	Read Kind = iota + 1
	Write
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Op is one operation in a history. A completed operation has both Invoke
// and Respond stamped; an operation whose response never arrived (the
// client timed out, crashed, or the run ended) has Incomplete set and a
// zero Respond — it may or may not have taken effect, and the value-based
// checker treats it as free to linearize at any point after Invoke.
type Op struct {
	Kind    Kind
	Client  types.ProcessID
	Invoke  time.Time
	Respond time.Time
	Tag     tag.Tag
	Value   types.Value
	// Incomplete marks a write whose outcome is unknown (invoked, never
	// acknowledged). Reads that fail are simply dropped — an unanswered
	// read constrains nothing.
	Incomplete bool
}

// Recorder accumulates operations from concurrent clients, including
// writes that were invoked but never acknowledged — the operations a
// fault-injected run inevitably produces, and exactly the ones a sound
// linearizability verdict must account for.
type Recorder struct {
	mu      sync.Mutex
	ops     []Op
	pending map[int64]*Op
	nextID  int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{pending: make(map[int64]*Op)}
}

// PendingOp is an operation that has been invoked but not yet resolved.
// Exactly one of Done or Fail should be called; an abandoned PendingOp
// whose write value is known still surfaces in Ops as incomplete.
type PendingOp struct {
	r  *Recorder
	id int64
}

// begin registers a pending op. knownValue marks writes whose value was
// captured at invocation (required for the op to count as incomplete later).
func (r *Recorder) begin(kind Kind, client types.ProcessID, v types.Value, knownValue bool) *PendingOp {
	op := &Op{
		Kind:       kind,
		Client:     client,
		Invoke:     time.Now(),
		Value:      v.Clone(),
		Incomplete: knownValue, // resolved by Done; stays set if abandoned
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.nextID
	r.nextID++
	r.pending[id] = op
	return &PendingOp{r: r, id: id}
}

// BeginWrite registers a write invocation carrying its value. If the write
// is never acknowledged (Fail, or neither Done nor Fail by snapshot time),
// it is recorded as incomplete: it may have taken effect.
func (r *Recorder) BeginWrite(client types.ProcessID, v types.Value) *PendingOp {
	return r.begin(Write, client, v, true)
}

// BeginRead registers a read invocation. A read that fails or is abandoned
// is discarded — it observed nothing and constrains nothing.
func (r *Recorder) BeginRead(client types.ProcessID) *PendingOp {
	return r.begin(Read, client, nil, false)
}

// Done resolves the operation as completed with its tag and value, stamping
// the response time.
func (p *PendingOp) Done(t tag.Tag, v types.Value) {
	r := p.r
	r.mu.Lock()
	defer r.mu.Unlock()
	op, ok := r.pending[p.id]
	if !ok {
		return
	}
	delete(r.pending, p.id)
	op.Respond = time.Now()
	op.Tag = t
	op.Value = v.Clone()
	op.Incomplete = false
	r.ops = append(r.ops, *op)
}

// Fail resolves the operation as unacknowledged: writes with a known value
// are recorded as incomplete (they may have taken effect), everything else
// is dropped.
func (p *PendingOp) Fail() {
	r := p.r
	r.mu.Lock()
	defer r.mu.Unlock()
	op, ok := r.pending[p.id]
	if !ok {
		return
	}
	delete(r.pending, p.id)
	if op.Kind == Write && op.Incomplete {
		r.ops = append(r.ops, *op)
	}
}

// Start stamps an invocation and returns a closure that records the
// completed operation with its response time. Usage:
//
//	done := rec.Start(history.Write, "w1")
//	tag, err := client.Write(ctx, v)
//	if err == nil { done(tag, v) }
//
// Operations whose closure is never called are dropped entirely (the write
// value is unknown at invocation) and leave no recorder state behind;
// fault-injected workloads should use BeginWrite/BeginRead so
// unacknowledged writes are retained as incomplete.
func (r *Recorder) Start(kind Kind, client types.ProcessID) func(tag.Tag, types.Value) {
	invoke := time.Now()
	return func(t tag.Tag, v types.Value) {
		op := Op{
			Kind:    kind,
			Client:  client,
			Invoke:  invoke,
			Respond: time.Now(),
			Tag:     t,
			Value:   v.Clone(),
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		r.ops = append(r.ops, op)
	}
}

// Ops returns a snapshot of the recorded operations: all resolved ones plus
// any still-pending writes with known values (as incomplete).
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops), len(r.ops)+len(r.pending))
	copy(out, r.ops)
	for _, op := range r.pending {
		if op.Kind == Write && op.Incomplete {
			out = append(out, *op)
		}
	}
	return out
}

// Len returns the number of resolved recorded operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// Violation describes one atomicity violation found in a history.
type Violation struct {
	Rule   string
	Detail string
	First  Op
	Second Op
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("atomicity violation (%s): %s", v.Rule, v.Detail)
}

// Check verifies the recorded history against A1–A3 and returns every
// violation found (empty means the history is atomic). Incomplete
// operations are skipped: they carry no tag, and an unacknowledged write
// cannot violate a tag-ordering rule.
func Check(ops []Op) []Violation {
	var violations []Violation

	// Sort by invocation time for deterministic reporting; correctness uses
	// the precedes relation, not this order.
	sorted := make([]Op, 0, len(ops))
	for _, op := range ops {
		if !op.Incomplete {
			sorted = append(sorted, op)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Invoke.Before(sorted[j].Invoke) })

	// A2 half: distinct writes carry distinct tags.
	writesByTag := make(map[tag.Tag]Op)
	for _, op := range sorted {
		if op.Kind != Write {
			continue
		}
		if prev, ok := writesByTag[op.Tag]; ok {
			violations = append(violations, Violation{
				Rule:   "write-tag-uniqueness",
				Detail: fmt.Sprintf("writes by %s and %s share tag %v", prev.Client, op.Client, op.Tag),
				First:  prev,
				Second: op,
			})
			continue
		}
		writesByTag[op.Tag] = op
	}

	// A3: every read returns the value of the write with its tag (or the
	// initial value at t0).
	for _, op := range sorted {
		if op.Kind != Read {
			continue
		}
		if op.Tag == tag.Zero {
			if len(op.Value) != 0 {
				violations = append(violations, Violation{
					Rule:   "read-validity",
					Detail: fmt.Sprintf("read by %s returned tag t0 with non-initial value %q", op.Client, op.Value),
					First:  op,
				})
			}
			continue
		}
		w, ok := writesByTag[op.Tag]
		if !ok {
			// The write may be incomplete (its writer crashed or is still
			// running): a read is allowed to return a concurrent write's
			// value. Only flag tags no write could have produced — those
			// with an empty writer ID.
			if op.Tag.W == "" {
				violations = append(violations, Violation{
					Rule:   "read-validity",
					Detail: fmt.Sprintf("read by %s returned tag %v with no possible writer", op.Client, op.Tag),
					First:  op,
				})
			}
			continue
		}
		if !w.Value.Equal(op.Value) {
			violations = append(violations, Violation{
				Rule:   "read-validity",
				Detail: fmt.Sprintf("read by %s returned %q for tag %v, but the write stored %q", op.Client, op.Value, op.Tag, w.Value),
				First:  w,
				Second: op,
			})
		}
	}

	// A1/A2 real-time order: for π1 → π2 (π1 responds before π2 invokes),
	// tag(π1) ≤ tag(π2); strict when π1 is a write (Lemma 20).
	for i, first := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			second := sorted[j]
			if !first.Respond.Before(second.Invoke) {
				continue // concurrent: no constraint
			}
			switch {
			case first.Kind == Write && !first.Tag.Less(second.Tag) && second.Kind == Write:
				violations = append(violations, Violation{
					Rule:   "real-time-order",
					Detail: fmt.Sprintf("write %v precedes write %v but tags do not increase", first.Tag, second.Tag),
					First:  first,
					Second: second,
				})
			case first.Kind == Write && second.Kind == Read && second.Tag.Less(first.Tag):
				violations = append(violations, Violation{
					Rule:   "real-time-order",
					Detail: fmt.Sprintf("read returned tag %v older than preceding write %v", second.Tag, first.Tag),
					First:  first,
					Second: second,
				})
			case first.Kind == Read && second.Tag.Less(first.Tag):
				violations = append(violations, Violation{
					Rule:   "real-time-order",
					Detail: fmt.Sprintf("%s returned tag %v older than preceding read's %v", second.Kind, second.Tag, first.Tag),
					First:  first,
					Second: second,
				})
			}
		}
	}
	return violations
}
