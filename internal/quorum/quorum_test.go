package quorum

import (
	"testing"
	"testing/quick"
)

func TestMajoritySizes(t *testing.T) {
	t.Parallel()
	cases := []struct {
		n, size, tolerates int
	}{
		{1, 1, 0}, {2, 2, 0}, {3, 2, 1}, {4, 3, 1}, {5, 3, 2}, {7, 4, 3}, {11, 6, 5},
	}
	for _, tc := range cases {
		s, err := Majority(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Size() != tc.size {
			t.Errorf("Majority(%d).Size() = %d, want %d", tc.n, s.Size(), tc.size)
		}
		if s.Tolerates() != tc.tolerates {
			t.Errorf("Majority(%d).Tolerates() = %d, want %d", tc.n, s.Tolerates(), tc.tolerates)
		}
	}
}

func TestMajorityIntersects(t *testing.T) {
	t.Parallel()
	for n := 1; n <= 50; n++ {
		s := MustMajority(n)
		if s.Intersection() < 1 {
			t.Errorf("Majority(%d) intersection = %d, want >= 1", n, s.Intersection())
		}
	}
}

func TestThresholdSizes(t *testing.T) {
	t.Parallel()
	cases := []struct {
		n, k, size int
	}{
		{3, 2, 3}, // ⌈5/2⌉
		{5, 3, 4}, // ⌈8/2⌉
		{5, 4, 5}, // ⌈9/2⌉
		{9, 6, 8}, // ⌈15/2⌉
		{11, 8, 10},
	}
	for _, tc := range cases {
		s, err := Threshold(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if s.Size() != tc.size {
			t.Errorf("Threshold(%d,%d).Size() = %d, want %d", tc.n, tc.k, s.Size(), tc.size)
		}
	}
}

// TestThresholdIntersectionProperty verifies the key TREAS safety fact: any
// two ⌈(n+k)/2⌉ quorums overlap in at least k servers, so a tag written to
// one quorum appears in >= k lists of any later quorum (Lemma 5's counting).
func TestThresholdIntersectionProperty(t *testing.T) {
	t.Parallel()
	f := func(nRaw, kRaw uint8) bool {
		n := 1 + int(nRaw)%20
		k := 1 + int(kRaw)%n
		s, err := Threshold(n, k)
		if err != nil {
			return false
		}
		return s.Intersection() >= k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestThresholdFaultTolerance checks Theorem 9's resilience: with k > n/3,
// the system tolerates f <= (n-k)/2 crashes.
func TestThresholdFaultTolerance(t *testing.T) {
	t.Parallel()
	for n := 2; n <= 30; n++ {
		for k := 1; k <= n; k++ {
			s := MustThreshold(n, k)
			if want := (n - k) / 2; s.Tolerates() != want {
				t.Errorf("Threshold(%d,%d).Tolerates() = %d, want %d", n, k, s.Tolerates(), want)
			}
		}
	}
}

func TestInvalidParameters(t *testing.T) {
	t.Parallel()
	if _, err := Majority(0); err == nil {
		t.Error("Majority(0) succeeded")
	}
	if _, err := Threshold(3, 0); err == nil {
		t.Error("Threshold(3,0) succeeded")
	}
	if _, err := Threshold(3, 4); err == nil {
		t.Error("Threshold(3,4) succeeded")
	}
}

func TestSatisfied(t *testing.T) {
	t.Parallel()
	s := MustMajority(5)
	if s.Satisfied(2) {
		t.Error("2 of 5 satisfied a majority")
	}
	if !s.Satisfied(3) {
		t.Error("3 of 5 did not satisfy a majority")
	}
}

func TestMustPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("MustMajority(0) did not panic")
		}
	}()
	MustMajority(0)
}

func TestString(t *testing.T) {
	t.Parallel()
	if got := MustMajority(3).String(); got != "quorum(n=3, size=2)" {
		t.Fatalf("String() = %q", got)
	}
}
