// Package quorum implements the quorum systems configurations declare (§2):
// majority quorums for replication-based algorithms and the reconfiguration
// service, and ⌈(n+k)/2⌉ threshold quorums for the erasure-coded TREAS
// algorithm.
//
// A System answers two questions: how many responses suffice for an action
// to complete, and how many server crashes the system tolerates.
package quorum

import (
	"fmt"
)

// System describes a quorum system over n servers.
type System struct {
	n    int
	size int
}

// Majority returns the majority quorum system over n servers: quorums of
// ⌊n/2⌋+1, tolerating f = ⌈n/2⌉-1 crashes. Any two quorums intersect.
func Majority(n int) (System, error) {
	if n < 1 {
		return System{}, fmt.Errorf("quorum: n = %d must be positive", n)
	}
	return System{n: n, size: n/2 + 1}, nil
}

// Threshold returns the ⌈(n+k)/2⌉ quorum system TREAS uses (Alg. 2): any two
// quorums intersect in at least k servers, which is what makes a tag written
// to one quorum decodable by any subsequent reader quorum.
func Threshold(n, k int) (System, error) {
	if n < 1 || k < 1 || k > n {
		return System{}, fmt.Errorf("quorum: invalid threshold parameters n=%d k=%d", n, k)
	}
	return System{n: n, size: (n + k + 1) / 2}, nil
}

// MustMajority is Majority that panics on invalid n; for constant parameters.
func MustMajority(n int) System {
	s, err := Majority(n)
	if err != nil {
		panic(err)
	}
	return s
}

// MustThreshold is Threshold that panics on invalid parameters.
func MustThreshold(n, k int) System {
	s, err := Threshold(n, k)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the total number of servers the system is defined over.
func (s System) N() int { return s.n }

// Size returns the number of responses that constitute a quorum.
func (s System) Size() int { return s.size }

// Tolerates returns the maximum number of crash failures under which a
// quorum remains available: n - size.
func (s System) Tolerates() int { return s.n - s.size }

// Intersection returns the guaranteed overlap between any two quorums:
// 2·size - n. For Majority this is >= 1; for Threshold(n, k) it is >= k.
func (s System) Intersection() int { return 2*s.size - s.n }

// Satisfied reports whether got responses complete a quorum access.
func (s System) Satisfied(got int) bool { return got >= s.size }

// String renders the system for logs and errors.
func (s System) String() string {
	return fmt.Sprintf("quorum(n=%d, size=%d)", s.n, s.size)
}
