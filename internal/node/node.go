// Package node implements the server process: a container that hosts one
// service instance per (service, configuration) pair and dispatches inbound
// requests to them.
//
// ARES separates client processes (readers, writers, reconfigurers) from
// server processes (§4: "ARES adopts a client-server architecture"). A
// single node participates in many configurations at once during a
// reconfiguration, so services are keyed by configuration identifier.
// Installing a configuration on its member nodes instantiates the store
// service (ABD/TREAS/LDR), the reconfiguration pointer service, and the
// consensus acceptor.
package node

import (
	"errors"
	"fmt"
	"sync"

	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// Service handles the messages of one protocol instance on one node.
// Implementations must be safe for concurrent use: the transport invokes
// handlers from many goroutines.
type Service interface {
	// Handle processes a message of the given type and returns the response
	// body to be encoded, or an error surfaced to the caller.
	Handle(from types.ProcessID, msgType string, payload []byte) (any, error)
}

// ServiceFunc adapts a function to Service.
type ServiceFunc func(from types.ProcessID, msgType string, payload []byte) (any, error)

// Handle implements Service.
func (f ServiceFunc) Handle(from types.ProcessID, msgType string, payload []byte) (any, error) {
	return f(from, msgType, payload)
}

// ErrNoService reports a request for a service instance the node does not
// host — typically a configuration not yet installed here.
var ErrNoService = errors.New("node: no such service instance")

// Node is a server process hosting service instances.
type Node struct {
	id types.ProcessID

	mu       sync.RWMutex
	services map[serviceKey]Service
}

type serviceKey struct {
	service string
	config  string
}

// New constructs an empty node for process id.
func New(id types.ProcessID) *Node {
	return &Node{
		id:       id,
		services: make(map[serviceKey]Service),
	}
}

// ID returns the node's process identifier.
func (n *Node) ID() types.ProcessID { return n.id }

// Install registers svc as the handler for (service, configID). Installing
// over an existing instance is ignored and reported false: configuration
// installation is idempotent, and the first installation wins so state is
// never silently discarded.
func (n *Node) Install(service string, configID string, svc Service) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := serviceKey{service: service, config: configID}
	if _, exists := n.services[key]; exists {
		return false
	}
	n.services[key] = svc
	return true
}

// Lookup returns the installed service instance, if any.
func (n *Node) Lookup(service, configID string) (Service, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	svc, ok := n.services[serviceKey{service: service, config: configID}]
	return svc, ok
}

// Services returns the number of installed service instances (for tests and
// introspection).
func (n *Node) Services() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.services)
}

var _ transport.Handler = (*Node)(nil)

// HandleRequest implements transport.Handler by dispatching to the addressed
// service instance.
func (n *Node) HandleRequest(from types.ProcessID, req transport.Request) transport.Response {
	svc, ok := n.Lookup(req.Service, req.Config)
	if !ok {
		return transport.ErrResponse(fmt.Errorf("%w: %s/%s at %s", ErrNoService, req.Service, req.Config, n.id))
	}
	body, err := svc.Handle(from, req.Type, req.Payload)
	if err != nil {
		return transport.ErrResponse(err)
	}
	if body == nil {
		return transport.OKResponse(nil)
	}
	payload, err := transport.Marshal(body)
	if err != nil {
		return transport.ErrResponse(err)
	}
	return transport.OKResponse(payload)
}
