// Package node implements the server process: a container that hosts one
// keyed service instance per protocol family and dispatches inbound requests
// to them on (service, key, configuration).
//
// ARES separates client processes (readers, writers, reconfigurers) from
// server processes (§4: "ARES adopts a client-server architecture"). The
// paper's composability claim (§1) makes every object key an independent
// register with its own configuration chain; hosting a service stack per
// (key, configuration) would cost O(keys) instances and installation
// round-trips. Instead a node hosts exactly one instance per algorithm
// family (ABD, TREAS, LDR, the reconfiguration pointer service, the
// consensus acceptor), and each instance materializes per-(key, config)
// state lazily inside a striped-lock map on the first message that names the
// pair. Node-scoped services (the control service) remain addressable by an
// exact (service, config) pair.
package node

import (
	"errors"
	"fmt"
	"sync"

	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

// Service handles the messages of one node-scoped protocol instance.
// Implementations must be safe for concurrent use: the transport invokes
// handlers from many goroutines.
type Service interface {
	// Handle processes a message of the given type and returns the response
	// body to be encoded, or an error surfaced to the caller.
	Handle(from types.ProcessID, msgType string, payload []byte) (any, error)
}

// ServiceFunc adapts a function to Service.
type ServiceFunc func(from types.ProcessID, msgType string, payload []byte) (any, error)

// Handle implements Service.
func (f ServiceFunc) Handle(from types.ProcessID, msgType string, payload []byte) (any, error) {
	return f(from, msgType, payload)
}

// KeyedService handles the messages of one protocol family across the whole
// keyspace: the request envelope's key and configuration select (and on
// first touch create) the addressed state. Implementations must be safe for
// concurrent use and must reject (key, config) pairs they cannot resolve.
type KeyedService interface {
	HandleKeyed(from types.ProcessID, key, configID, msgType string, payload []byte) (any, error)
}

// KeyedServiceFunc adapts a function to KeyedService.
type KeyedServiceFunc func(from types.ProcessID, key, configID, msgType string, payload []byte) (any, error)

// HandleKeyed implements KeyedService.
func (f KeyedServiceFunc) HandleKeyed(from types.ProcessID, key, configID, msgType string, payload []byte) (any, error) {
	return f(from, key, configID, msgType, payload)
}

// ErrNoService reports a request for a service the node does not host —
// an unknown protocol family, or a node-scoped configuration not installed
// here.
var ErrNoService = errors.New("node: no such service instance")

// Node is a server process hosting service instances.
type Node struct {
	id types.ProcessID

	mu       sync.RWMutex
	services map[serviceKey]Service
	keyed    map[string]KeyedService
}

type serviceKey struct {
	service string
	config  string
}

// New constructs an empty node for process id.
func New(id types.ProcessID) *Node {
	return &Node{
		id:       id,
		services: make(map[serviceKey]Service),
		keyed:    make(map[string]KeyedService),
	}
}

// ID returns the node's process identifier.
func (n *Node) ID() types.ProcessID { return n.id }

// Install registers svc as the node-scoped handler for (service, configID).
// Installing over an existing instance is ignored and reported false:
// installation is idempotent, and the first installation wins so state is
// never silently discarded.
func (n *Node) Install(service string, configID string, svc Service) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := serviceKey{service: service, config: configID}
	if _, exists := n.services[key]; exists {
		return false
	}
	n.services[key] = svc
	return true
}

// InstallKeyed registers svc as the handler for every (key, config) of one
// protocol family. Like Install, the first installation wins.
func (n *Node) InstallKeyed(service string, svc KeyedService) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.keyed[service]; exists {
		return false
	}
	n.keyed[service] = svc
	return true
}

// Uninstall removes the node-scoped instance under (service, configID),
// reporting whether one was installed.
func (n *Node) Uninstall(service, configID string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := serviceKey{service: service, config: configID}
	if _, exists := n.services[key]; !exists {
		return false
	}
	delete(n.services, key)
	return true
}

// UninstallKeyed removes the keyed instance for a protocol family,
// reporting whether one was installed.
func (n *Node) UninstallKeyed(service string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.keyed[service]; !exists {
		return false
	}
	delete(n.keyed, service)
	return true
}

// Lookup returns the node-scoped service instance, if any.
func (n *Node) Lookup(service, configID string) (Service, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	svc, ok := n.services[serviceKey{service: service, config: configID}]
	return svc, ok
}

// LookupKeyed returns the keyed service hosting a protocol family, if any.
func (n *Node) LookupKeyed(service string) (KeyedService, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	svc, ok := n.keyed[service]
	return svc, ok
}

// Services returns the number of hosted service instances — keyed family
// instances plus node-scoped instances. This is the quantity that stays O(1)
// in the number of keys (for tests and introspection).
func (n *Node) Services() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.services) + len(n.keyed)
}

var _ transport.Handler = (*Node)(nil)

// HandleRequest implements transport.Handler by dispatching to the addressed
// service. A keyed family instance takes precedence; node-scoped instances
// are matched on the exact (service, config) pair.
func (n *Node) HandleRequest(from types.ProcessID, req transport.Request) transport.Response {
	n.mu.RLock()
	keyed, hasKeyed := n.keyed[req.Service]
	var svc Service
	var hasExact bool
	if !hasKeyed {
		svc, hasExact = n.services[serviceKey{service: req.Service, config: req.Config}]
	}
	n.mu.RUnlock()

	var body any
	var err error
	switch {
	case hasKeyed:
		body, err = keyed.HandleKeyed(from, req.Key, req.Config, req.Type, req.Payload)
	case hasExact:
		body, err = svc.Handle(from, req.Type, req.Payload)
	default:
		return transport.ErrResponse(fmt.Errorf("%w: %s/%s (key %q) at %s", ErrNoService, req.Service, req.Config, req.Key, n.id))
	}
	if err != nil {
		return transport.ErrResponse(err)
	}
	if body == nil {
		return transport.OKResponse(nil)
	}
	payload, err := transport.Marshal(body)
	if err != nil {
		return transport.ErrResponse(err)
	}
	return transport.OKResponse(payload)
}
