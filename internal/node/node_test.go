package node

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

func TestDispatch(t *testing.T) {
	t.Parallel()
	n := New("s1")
	n.Install("svc", "c0", ServiceFunc(func(from types.ProcessID, msgType string, payload []byte) (any, error) {
		return struct{ Echo string }{Echo: msgType + ":" + string(payload)}, nil
	}))

	resp := n.HandleRequest("c1", transport.Request{Service: "svc", Config: "c0", Type: "ping", Payload: []byte("x")})
	if !resp.OK {
		t.Fatalf("response not ok: %s", resp.Err)
	}
	var out struct{ Echo string }
	if err := transport.Unmarshal(resp.Payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.Echo != "ping:x" {
		t.Fatalf("echo = %q", out.Echo)
	}
}

func TestDispatchUnknownService(t *testing.T) {
	t.Parallel()
	n := New("s1")
	resp := n.HandleRequest("c1", transport.Request{Service: "ghost", Config: "c9", Type: "x"})
	if resp.OK {
		t.Fatal("request to missing service succeeded")
	}
	if !strings.Contains(resp.Err, "no such service") {
		t.Fatalf("error = %q", resp.Err)
	}
}

func TestDispatchServiceError(t *testing.T) {
	t.Parallel()
	n := New("s1")
	n.Install("svc", "c0", ServiceFunc(func(types.ProcessID, string, []byte) (any, error) {
		return nil, errors.New("store offline")
	}))
	resp := n.HandleRequest("c1", transport.Request{Service: "svc", Config: "c0"})
	if resp.OK || !strings.Contains(resp.Err, "store offline") {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestNilBodyMeansEmptyOK(t *testing.T) {
	t.Parallel()
	n := New("s1")
	n.Install("svc", "c0", ServiceFunc(func(types.ProcessID, string, []byte) (any, error) {
		return nil, nil // plain ACK
	}))
	resp := n.HandleRequest("c1", transport.Request{Service: "svc", Config: "c0"})
	if !resp.OK || len(resp.Payload) != 0 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestInstallIdempotent(t *testing.T) {
	t.Parallel()
	n := New("s1")
	first := ServiceFunc(func(types.ProcessID, string, []byte) (any, error) {
		return struct{ V int }{1}, nil
	})
	second := ServiceFunc(func(types.ProcessID, string, []byte) (any, error) {
		return struct{ V int }{2}, nil
	})
	if !n.Install("svc", "c0", first) {
		t.Fatal("first install reported false")
	}
	if n.Install("svc", "c0", second) {
		t.Fatal("second install reported true; must not replace state")
	}
	resp := n.HandleRequest("c1", transport.Request{Service: "svc", Config: "c0"})
	var out struct{ V int }
	if err := transport.Unmarshal(resp.Payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.V != 1 {
		t.Fatal("second install replaced the first service instance")
	}
}

func TestPerConfigIsolation(t *testing.T) {
	t.Parallel()
	n := New("s1")
	for _, c := range []string{"c0", "c1"} {
		c := c
		n.Install("svc", c, ServiceFunc(func(types.ProcessID, string, []byte) (any, error) {
			return struct{ C string }{C: c}, nil
		}))
	}
	resp := n.HandleRequest("x", transport.Request{Service: "svc", Config: "c1"})
	var out struct{ C string }
	if err := transport.Unmarshal(resp.Payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.C != "c1" {
		t.Fatalf("dispatched to config %q, want c1", out.C)
	}
	if n.Services() != 2 {
		t.Fatalf("Services() = %d, want 2", n.Services())
	}
}

func TestConcurrentInstallAndDispatch(t *testing.T) {
	t.Parallel()
	n := New("s1")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfgID := string(rune('a' + i))
			n.Install("svc", cfgID, ServiceFunc(func(types.ProcessID, string, []byte) (any, error) {
				return nil, nil
			}))
			resp := n.HandleRequest("c", transport.Request{Service: "svc", Config: cfgID})
			if !resp.OK {
				t.Errorf("dispatch to %s failed: %s", cfgID, resp.Err)
			}
		}()
	}
	wg.Wait()
}

func TestKeyedDispatchRoutesKeyAndConfig(t *testing.T) {
	t.Parallel()
	n := New("s1")
	n.InstallKeyed("store", KeyedServiceFunc(func(_ types.ProcessID, key, configID, msgType string, _ []byte) (any, error) {
		return struct{ K, C, T string }{K: key, C: configID, T: msgType}, nil
	}))
	resp := n.HandleRequest("c1", transport.Request{Service: "store", Key: "obj-9", Config: "store/obj-9/c0", Type: "get"})
	if !resp.OK {
		t.Fatalf("keyed dispatch failed: %s", resp.Err)
	}
	var out struct{ K, C, T string }
	if err := transport.Unmarshal(resp.Payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.K != "obj-9" || out.C != "store/obj-9/c0" || out.T != "get" {
		t.Fatalf("routed coordinates = %+v", out)
	}
}

func TestKeyedTakesPrecedenceOverExact(t *testing.T) {
	t.Parallel()
	// One family name must resolve to one handler: a keyed family instance
	// shadows any exact (service, config) leftovers.
	n := New("s1")
	n.Install("svc", "c0", ServiceFunc(func(types.ProcessID, string, []byte) (any, error) {
		return struct{ From string }{"exact"}, nil
	}))
	n.InstallKeyed("svc", KeyedServiceFunc(func(types.ProcessID, string, string, string, []byte) (any, error) {
		return struct{ From string }{"keyed"}, nil
	}))
	resp := n.HandleRequest("c1", transport.Request{Service: "svc", Config: "c0"})
	var out struct{ From string }
	if err := transport.Unmarshal(resp.Payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.From != "keyed" {
		t.Fatalf("dispatched to %q, want keyed", out.From)
	}
}

func TestKeyedInstallIdempotentAndUninstall(t *testing.T) {
	t.Parallel()
	n := New("s1")
	first := KeyedServiceFunc(func(types.ProcessID, string, string, string, []byte) (any, error) {
		return struct{ V int }{1}, nil
	})
	second := KeyedServiceFunc(func(types.ProcessID, string, string, string, []byte) (any, error) {
		return struct{ V int }{2}, nil
	})
	if !n.InstallKeyed("svc", first) {
		t.Fatal("first InstallKeyed reported false")
	}
	if n.InstallKeyed("svc", second) {
		t.Fatal("second InstallKeyed reported true; must not replace state")
	}
	if n.Services() != 1 {
		t.Fatalf("Services = %d, want 1", n.Services())
	}
	if !n.UninstallKeyed("svc") || n.UninstallKeyed("svc") {
		t.Fatal("UninstallKeyed semantics broken")
	}
	resp := n.HandleRequest("c1", transport.Request{Service: "svc", Key: "k", Config: "c0"})
	if resp.OK || !errors.Is(errorFromResponse(resp), ErrNoService) && !strings.Contains(resp.Err, "no such service") {
		t.Fatalf("dispatch after uninstall = %+v", resp)
	}
}

// errorFromResponse converts a failed response back to an error-ish for
// matching; transport deliberately flattens errors to strings on the wire.
func errorFromResponse(resp transport.Response) error {
	if resp.OK {
		return nil
	}
	return errors.New(resp.Err)
}

func TestUnknownKeyAndConfigErrorPaths(t *testing.T) {
	t.Parallel()
	n := New("s1")
	// Keyed service mimicking the real ones: it rejects unknown configs.
	n.InstallKeyed("store", KeyedServiceFunc(func(_ types.ProcessID, key, configID, _ string, _ []byte) (any, error) {
		if configID != "store/"+key+"/c0" {
			return nil, errors.New("unknown configuration " + configID + " for key " + key)
		}
		return nil, nil
	}))
	// Well-formed key/config pair: served.
	if resp := n.HandleRequest("c", transport.Request{Service: "store", Key: "a", Config: "store/a/c0"}); !resp.OK {
		t.Fatalf("valid keyed request rejected: %s", resp.Err)
	}
	// Key/config mismatch: surfaced as a service error naming both.
	resp := n.HandleRequest("c", transport.Request{Service: "store", Key: "b", Config: "store/a/c0"})
	if resp.OK || !strings.Contains(resp.Err, "key b") {
		t.Fatalf("mismatched key = %+v", resp)
	}
	// Unknown family: node-level ErrNoService naming the key.
	resp = n.HandleRequest("c", transport.Request{Service: "ghost", Key: "a", Config: "store/a/c0"})
	if resp.OK || !strings.Contains(resp.Err, "no such service") || !strings.Contains(resp.Err, `"a"`) {
		t.Fatalf("unknown family = %+v", resp)
	}
}

// TestConcurrentKeyedInstallDispatchUninstall is the keyed-envelope race
// test: installs, dispatches across many (key, config) pairs, uninstalls,
// and node-scoped traffic all proceed concurrently (run under -race).
func TestConcurrentKeyedInstallDispatchUninstall(t *testing.T) {
	t.Parallel()
	n := New("s1")
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Installer/uninstaller loops on two family names.
	for _, svc := range []string{"fam-a", "fam-b"} {
		svc := svc
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n.InstallKeyed(svc, KeyedServiceFunc(func(types.ProcessID, string, string, string, []byte) (any, error) {
					return nil, nil
				}))
				if i%3 == 0 {
					n.UninstallKeyed(svc)
				}
			}
		}()
	}
	// Node-scoped churn on the exact map.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			n.Install("ctl", "node", ServiceFunc(func(types.ProcessID, string, []byte) (any, error) {
				return nil, nil
			}))
			if i%5 == 0 {
				n.Uninstall("ctl", "node")
			}
		}
	}()
	// Dispatchers across keys and families; any outcome is fine (service
	// present or not), it just must not race or panic.
	for d := 0; d < 4; d++ {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				svc := "fam-a"
				if i%2 == 0 {
					svc = "fam-b"
				}
				key := string(rune('a' + (i+d)%8))
				n.HandleRequest("c", transport.Request{Service: svc, Key: key, Config: "store/" + key + "/c0"})
				n.Services()
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}
