package node

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/ares-storage/ares/internal/transport"
	"github.com/ares-storage/ares/internal/types"
)

func TestDispatch(t *testing.T) {
	t.Parallel()
	n := New("s1")
	n.Install("svc", "c0", ServiceFunc(func(from types.ProcessID, msgType string, payload []byte) (any, error) {
		return struct{ Echo string }{Echo: msgType + ":" + string(payload)}, nil
	}))

	resp := n.HandleRequest("c1", transport.Request{Service: "svc", Config: "c0", Type: "ping", Payload: []byte("x")})
	if !resp.OK {
		t.Fatalf("response not ok: %s", resp.Err)
	}
	var out struct{ Echo string }
	if err := transport.Unmarshal(resp.Payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.Echo != "ping:x" {
		t.Fatalf("echo = %q", out.Echo)
	}
}

func TestDispatchUnknownService(t *testing.T) {
	t.Parallel()
	n := New("s1")
	resp := n.HandleRequest("c1", transport.Request{Service: "ghost", Config: "c9", Type: "x"})
	if resp.OK {
		t.Fatal("request to missing service succeeded")
	}
	if !strings.Contains(resp.Err, "no such service") {
		t.Fatalf("error = %q", resp.Err)
	}
}

func TestDispatchServiceError(t *testing.T) {
	t.Parallel()
	n := New("s1")
	n.Install("svc", "c0", ServiceFunc(func(types.ProcessID, string, []byte) (any, error) {
		return nil, errors.New("store offline")
	}))
	resp := n.HandleRequest("c1", transport.Request{Service: "svc", Config: "c0"})
	if resp.OK || !strings.Contains(resp.Err, "store offline") {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestNilBodyMeansEmptyOK(t *testing.T) {
	t.Parallel()
	n := New("s1")
	n.Install("svc", "c0", ServiceFunc(func(types.ProcessID, string, []byte) (any, error) {
		return nil, nil // plain ACK
	}))
	resp := n.HandleRequest("c1", transport.Request{Service: "svc", Config: "c0"})
	if !resp.OK || len(resp.Payload) != 0 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestInstallIdempotent(t *testing.T) {
	t.Parallel()
	n := New("s1")
	first := ServiceFunc(func(types.ProcessID, string, []byte) (any, error) {
		return struct{ V int }{1}, nil
	})
	second := ServiceFunc(func(types.ProcessID, string, []byte) (any, error) {
		return struct{ V int }{2}, nil
	})
	if !n.Install("svc", "c0", first) {
		t.Fatal("first install reported false")
	}
	if n.Install("svc", "c0", second) {
		t.Fatal("second install reported true; must not replace state")
	}
	resp := n.HandleRequest("c1", transport.Request{Service: "svc", Config: "c0"})
	var out struct{ V int }
	if err := transport.Unmarshal(resp.Payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.V != 1 {
		t.Fatal("second install replaced the first service instance")
	}
}

func TestPerConfigIsolation(t *testing.T) {
	t.Parallel()
	n := New("s1")
	for _, c := range []string{"c0", "c1"} {
		c := c
		n.Install("svc", c, ServiceFunc(func(types.ProcessID, string, []byte) (any, error) {
			return struct{ C string }{C: c}, nil
		}))
	}
	resp := n.HandleRequest("x", transport.Request{Service: "svc", Config: "c1"})
	var out struct{ C string }
	if err := transport.Unmarshal(resp.Payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.C != "c1" {
		t.Fatalf("dispatched to config %q, want c1", out.C)
	}
	if n.Services() != 2 {
		t.Fatalf("Services() = %d, want 2", n.Services())
	}
}

func TestConcurrentInstallAndDispatch(t *testing.T) {
	t.Parallel()
	n := New("s1")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfgID := string(rune('a' + i))
			n.Install("svc", cfgID, ServiceFunc(func(types.ProcessID, string, []byte) (any, error) {
				return nil, nil
			}))
			resp := n.HandleRequest("c", transport.Request{Service: "svc", Config: cfgID})
			if !resp.OK {
				t.Errorf("dispatch to %s failed: %s", cfgID, resp.Err)
			}
		}()
	}
	wg.Wait()
}
